// Command dashbench regenerates every table and figure of the paper's
// evaluation section (§VII) on the scaled-down TPC-H workloads:
//
//	dashbench -experiment table2   # dataset sizes (Table II)
//	dashbench -experiment table3   # application queries (Table III)
//	dashbench -experiment fig10    # SW vs INT crawl+index time per phase
//	dashbench -experiment table4   # fragment graph build stats
//	dashbench -experiment fig11    # top-k search latency sweep
//	dashbench -experiment parallel # concurrent search throughput scaling
//	dashbench -experiment sharded  # partitioned serving: scatter-gather + routed applies
//	dashbench -experiment ablation # naive page index vs fragment index
//	dashbench -experiment all      # everything above
//
// Absolute numbers differ from the paper (in-process MapReduce on scaled
// data, not a 4-node Hadoop cluster); the shapes — who wins, where the
// crossovers fall — are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/crawl"
	"repro/internal/fragindex"
	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/tpch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dashbench:", err)
		os.Exit(1)
	}
}

type config struct {
	experiment string
	scales     []tpch.Scale
	seed       int64
	bandSize   int
	reduce     int
	netMBps    int
}

func run(args []string) error {
	fs := flag.NewFlagSet("dashbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "table1|table2|table3|fig10|table4|fig11|ablation|all")
	scaleName := fs.String("scale", "all", "small|medium|large|all")
	seed := fs.Int64("seed", 42, "dataset generator seed")
	bandSize := fs.Int("searches", 30, "keywords per hot/warm/cold band (paper: 30)")
	reduce := fs.Int("reduce", 0, "reduce tasks per MR job (0 = GOMAXPROCS)")
	netMBps := fs.Int("netmbps", 20, "modeled effective cluster transport MB/s for Fig. 10")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := config{experiment: *experiment, seed: *seed, bandSize: *bandSize,
		reduce: *reduce, netMBps: *netMBps}
	if *scaleName == "all" {
		cfg.scales = tpch.Scales()
	} else {
		s, err := tpch.ScaleByName(*scaleName)
		if err != nil {
			return err
		}
		cfg.scales = []tpch.Scale{s}
	}

	ctx := context.Background()
	experiments := map[string]func(context.Context, config) error{
		"table1":   table1,
		"table2":   table2,
		"table3":   table3,
		"fig10":    fig10,
		"table4":   table4,
		"fig11":    fig11,
		"parallel": parallelThroughput,
		"sharded":  shardedThroughput,
		"ablation": ablation,
		"coverage": coverage,
	}
	if cfg.experiment == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig10", "table4", "fig11", "parallel", "sharded", "ablation", "coverage"} {
			if err := experiments[name](ctx, cfg); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := experiments[cfg.experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", cfg.experiment)
	}
	return fn(ctx, cfg)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// table1 prints the experiment parameter grid (paper Table I).
func table1(_ context.Context, cfg config) error {
	header("Table I — experiment parameters")
	ks, ss := harness.Fig11Grid()
	fmt.Printf("datasets:            small, medium, large\n")
	fmt.Printf("application queries: Q1, Q2, Q3\n")
	fmt.Printf("k (results):         %v\n", ks)
	fmt.Printf("s (page threshold):  %v\n", ss)
	fmt.Printf("keywords:            cold (bottom 10%%), warm (middle 10%%), hot (top 10%%), %d each\n", cfg.bandSize)
	return nil
}

// table2 prints per-relation dataset sizes (paper Table II).
func table2(_ context.Context, cfg config) error {
	header("Table II — datasets (rows / encoded bytes)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tR\tN\tC\tO\tL\tP")
	for _, scale := range cfg.scales {
		db := tpch.Generate(scale, cfg.seed)
		cells := map[string]string{}
		for _, st := range db.Stats() {
			cells[st.Name] = fmt.Sprintf("%d/%s", st.Rows, byteSize(st.Bytes))
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", scale.Name,
			cells["region"], cells["nation"], cells["customer"],
			cells["orders"], cells["lineitem"], cells["part"])
	}
	return w.Flush()
}

// table3 prints the application queries (paper Table III).
func table3(_ context.Context, _ config) error {
	header("Table III — application queries")
	for _, name := range tpch.QueryNames() {
		app, err := tpch.App(name)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", name, app.Query)
	}
	return nil
}

// fig10 reproduces the crawl+index elapsed-time comparison with per-phase
// breakdown (paper Fig. 10). Two elapsed columns are reported: the measured
// in-process wall time, and a modeled cluster time that adds the shuffle
// volume divided by an effective inter-node bandwidth — the transmission
// cost a Hadoop deployment pays that an in-process engine does not. The
// paper's SW-vs-INT ordering is a statement about that shuffled volume.
func fig10(ctx context.Context, cfg config) error {
	header("Fig. 10 — database crawling and fragment indexing (SW vs INT)")
	fmt.Printf("modeled cluster column = measured + shuffleBytes/%dMBps effective transport\n",
		cfg.netMBps)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tquery\talg\tmeasured\tmodeled-cluster\tphase1\tphase2\tphase3\tshuffleMB")
	opts := crawl.Options{ReduceTasks: cfg.reduce}
	for _, scale := range cfg.scales {
		for _, qname := range tpch.QueryNames() {
			wl := harness.Workload{Scale: scale, Seed: cfg.seed, Query: qname}
			db, app, err := wl.Setup()
			if err != nil {
				return err
			}
			for _, alg := range []crawl.Algorithm{crawl.AlgStepwise, crawl.AlgIntegrated} {
				_, row, err := harness.RunCrawl(ctx, db, app, alg, opts, scale.Name)
				if err != nil {
					return err
				}
				modeled := row.Total + time.Duration(
					float64(row.ShuffledBytes)/(float64(cfg.netMBps)*1e6)*float64(time.Second))
				fmt.Fprintf(w, "%s\t%s\t%s\t%v\t%v\t%s\t%s\t%s\t%.1f\n",
					scale.Name, qname, shortAlg(alg), row.Total.Round(time.Millisecond),
					modeled.Round(time.Millisecond),
					phaseCell(row, 0), phaseCell(row, 1), phaseCell(row, 2),
					float64(row.ShuffledBytes)/1e6)
			}
		}
	}
	return w.Flush()
}

// table4 reproduces the fragment-graph construction stats (paper Table IV):
// build time, fragment count, and average keywords per fragment for each
// query on the medium dataset (or the selected scales).
func table4(ctx context.Context, cfg config) error {
	header("Table IV — fragment graph building (per query)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tquery\tbuild time\t#fragments\tavg #keywords")
	for _, scale := range cfg.scales {
		for _, qname := range tpch.QueryNames() {
			wl := harness.Workload{Scale: scale, Seed: cfg.seed, Query: qname}
			db, app, err := wl.Setup()
			if err != nil {
				return err
			}
			out, _, err := harness.RunCrawl(ctx, db, app, crawl.AlgIntegrated,
				crawl.Options{ReduceTasks: cfg.reduce}, scale.Name)
			if err != nil {
				return err
			}
			bound, err := app.Bound()
			if err != nil {
				return err
			}
			_, row, err := harness.BuildGraph(out, bound, qname)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%.1f\n",
				scale.Name, qname, row.BuildTime.Round(time.Microsecond),
				row.Fragments, row.AvgKeywords)
		}
	}
	return w.Flush()
}

// fig11 reproduces the top-k search latency sweep (paper Fig. 11): Q2 on
// the selected scale(s), cold/warm/hot keyword bands, k × s grid.
func fig11(ctx context.Context, cfg config) error {
	header("Fig. 11 — top-k search latency (Q2)")
	for _, scale := range cfg.scales {
		wl := harness.Workload{Scale: scale, Seed: cfg.seed, Query: "Q2"}
		engine, _, _, err := harness.PrepareEngine(ctx, wl, crawl.Options{ReduceTasks: cfg.reduce})
		if err != nil {
			return err
		}
		bands := harness.KeywordBands(engine.Snapshot(), cfg.bandSize)
		ks, ss := harness.Fig11Grid()
		points, err := harness.RunSearchSweep(engine, bands, ks, ss)
		if err != nil {
			return err
		}
		fmt.Printf("dataset %s: %d fragments, %d keywords\n",
			scale.Name, engine.Snapshot().NumFragments(), engine.Snapshot().NumKeywords())
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "band\ts\tk=1\tk=5\tk=10\tk=20")
		for _, band := range []string{"cold", "warm", "hot"} {
			for _, s := range ss {
				cells := map[int]time.Duration{}
				for _, p := range points {
					if p.Band == band && p.S == s {
						cells[p.K] = p.Avg
					}
				}
				fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\n", band, s,
					cells[1].Round(time.Microsecond), cells[5].Round(time.Microsecond),
					cells[10].Round(time.Microsecond), cells[20].Round(time.Microsecond))
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// parallelThroughput measures concurrent search scaling: a fixed batch of
// requests drawn from all three keyword temperature bands, evaluated over
// 1..GOMAXPROCS worker goroutines sharing one engine via ParallelSearch.
// This is the serving-path headroom number: QPS at each worker count and
// the speedup over serial evaluation.
func parallelThroughput(ctx context.Context, cfg config) error {
	header("Parallel — concurrent search throughput (Q2)")
	for _, scale := range cfg.scales {
		wl := harness.Workload{Scale: scale, Seed: cfg.seed, Query: "Q2"}
		engine, _, _, err := harness.PrepareEngine(ctx, wl, crawl.Options{ReduceTasks: cfg.reduce})
		if err != nil {
			return err
		}
		bands := harness.KeywordBands(engine.Snapshot(), cfg.bandSize)
		var reqs []search.Request
		for _, kws := range [][]string{bands.Cold, bands.Warm, bands.Hot} {
			for _, kw := range kws {
				reqs = append(reqs, search.Request{Keywords: []string{kw}, K: 10, SizeThreshold: 200})
			}
		}
		if len(reqs) == 0 {
			continue
		}
		// Repeat the band mix so each measurement runs long enough to time.
		for len(reqs) < 256 {
			reqs = append(reqs, reqs...)
		}
		fmt.Printf("dataset %s: %d requests over shared engine\n", scale.Name, len(reqs))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "workers\telapsed\tQPS\tspeedup")
		var serial time.Duration
		workerCounts := []int{1, 2, 4, 8}
		if n := runtime.GOMAXPROCS(0); n > 8 {
			workerCounts = append(workerCounts, n)
		}
		for _, workers := range workerCounts {
			start := time.Now()
			for _, br := range engine.ParallelSearch(context.Background(), reqs, workers) {
				if br.Err != nil {
					return br.Err
				}
			}
			elapsed := time.Since(start)
			if workers == 1 {
				serial = elapsed
			}
			speedup := float64(serial) / float64(elapsed)
			fmt.Fprintf(w, "%d\t%v\t%.0f\t%.2fx\n", workers,
				elapsed.Round(time.Millisecond),
				float64(len(reqs))/elapsed.Seconds(), speedup)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// shardedThroughput measures partitioned serving (Q2): the same request
// batch evaluated by a single-index engine and by sharded scatter-gather
// engines at growing shard counts, plus routed apply throughput — the
// multi-core scaling story in one table. On a single-core host the shard
// counts land near parity; the structure (per-shard publish cycles, no
// global write lock) is what scales on real hardware.
func shardedThroughput(ctx context.Context, cfg config) error {
	header("Sharded — partitioned serving throughput (Q2)")
	for _, scale := range cfg.scales {
		wl := harness.Workload{Scale: scale, Seed: cfg.seed, Query: "Q2"}
		db, app, err := wl.Setup()
		if err != nil {
			return err
		}
		out, _, err := harness.RunCrawl(ctx, db, app, crawl.AlgIntegrated,
			crawl.Options{ReduceTasks: cfg.reduce}, scale.Name)
		if err != nil {
			return err
		}
		bound, err := app.Bound()
		if err != nil {
			return err
		}
		spec, err := fragindex.SpecFromBound(bound)
		if err != nil {
			return err
		}
		buildIndex := func() (*fragindex.Index, error) { return fragindex.Build(out, spec) }

		idx, err := buildIndex()
		if err != nil {
			return err
		}
		single := search.New(idx, app)
		bands := harness.KeywordBands(single.Snapshot(), cfg.bandSize)
		var reqs []search.Request
		for _, kws := range [][]string{bands.Cold, bands.Warm, bands.Hot} {
			for _, kw := range kws {
				reqs = append(reqs, search.Request{Keywords: []string{kw}, K: 10, SizeThreshold: 200})
			}
		}
		if len(reqs) == 0 {
			continue
		}
		for len(reqs) < 256 {
			reqs = append(reqs, reqs...)
		}
		ids, err := out.Fragments()
		if err != nil {
			return err
		}
		counts := make(map[string]map[string]int64)
		for kw, ps := range out.Inverted {
			for _, p := range ps {
				m, ok := counts[p.FragKey]
				if !ok {
					m = make(map[string]int64)
					counts[p.FragKey] = m
				}
				m[kw] = p.TF
			}
		}
		const applyBatch = 100
		makeDeltas := func(round int) []crawl.Delta {
			ds := make([]crawl.Delta, applyBatch)
			for j := range ds {
				id := ids[(round*applyBatch+j)%len(ids)]
				key := id.Key()
				ds[j] = crawl.Delta{Changes: []crawl.FragmentChange{{
					Op: crawl.OpUpdateFragment, ID: id,
					TermCounts: counts[key], TotalTerms: out.FragmentTerms[key],
				}}}
			}
			return ds
		}
		const applyRounds = 20

		fmt.Printf("dataset %s: %d requests, apply batches of %d updates\n",
			scale.Name, len(reqs), applyBatch)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "engine\tsearch elapsed\tQPS\tapply elapsed\tchanges/s")

		// Single-index baseline: ParallelSearch + single-writer ApplyBatch.
		start := time.Now()
		for _, br := range single.ParallelSearch(context.Background(), reqs, 0) {
			if br.Err != nil {
				return br.Err
			}
		}
		searchElapsed := time.Since(start)
		baseIdx, err := buildIndex()
		if err != nil {
			return err
		}
		baseLive := fragindex.NewLive(baseIdx)
		start = time.Now()
		for r := 0; r < applyRounds; r++ {
			if _, err := baseLive.ApplyBatch(context.Background(), makeDeltas(r)); err != nil {
				return err
			}
		}
		applyElapsed := time.Since(start)
		fmt.Fprintf(w, "single\t%v\t%.0f\t%v\t%.0f\n",
			searchElapsed.Round(time.Millisecond), float64(len(reqs))/searchElapsed.Seconds(),
			applyElapsed.Round(time.Millisecond),
			float64(applyRounds*applyBatch)/applyElapsed.Seconds())

		for _, shards := range []int{1, 4, 16} {
			sidx, err := buildIndex()
			if err != nil {
				return err
			}
			live, err := fragindex.NewShardedLive(sidx, shards)
			if err != nil {
				return err
			}
			se := search.NewSharded(live, app)
			start := time.Now()
			for _, br := range se.ParallelSearch(context.Background(), reqs, 0) {
				if br.Err != nil {
					return br.Err
				}
			}
			searchElapsed := time.Since(start)
			start = time.Now()
			for r := 0; r < applyRounds; r++ {
				if _, err := live.ApplyBatch(context.Background(), makeDeltas(r)); err != nil {
					return err
				}
			}
			applyElapsed := time.Since(start)
			fmt.Fprintf(w, "shards=%d\t%v\t%.0f\t%v\t%.0f\n", shards,
				searchElapsed.Round(time.Millisecond), float64(len(reqs))/searchElapsed.Seconds(),
				applyElapsed.Round(time.Millisecond),
				float64(applyRounds*applyBatch)/applyElapsed.Seconds())
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// ablation compares the naive whole-page index (§IV's "intuitive approach")
// with Dash's fragment index on the small dataset, and reports result
// redundancy for both.
func ablation(ctx context.Context, cfg config) error {
	header("Ablation — naive page index vs fragment index (Q1, small)")
	wl := harness.Workload{Scale: tpch.Small, Seed: cfg.seed, Query: "Q1"}
	db, app, err := wl.Setup()
	if err != nil {
		return err
	}
	out, _, err := harness.RunCrawl(ctx, db, app, crawl.AlgIntegrated,
		crawl.Options{ReduceTasks: cfg.reduce}, "small")
	if err != nil {
		return err
	}
	bound, err := app.Bound()
	if err != nil {
		return err
	}
	spec, err := fragindex.SpecFromBound(bound)
	if err != nil {
		return err
	}

	fragStart := time.Now()
	idx, err := fragindex.Build(out, spec)
	if err != nil {
		return err
	}
	fragTime := time.Since(fragStart)

	naive, err := baseline.BuildNaive(out, spec, baseline.NaiveOptions{})
	if err != nil {
		return err
	}
	ns := naive.Stats()

	var fragPostings int
	for _, kw := range idx.Keywords() {
		fragPostings += idx.DF(kw)
	}
	fmt.Printf("fragment index: %d fragments, %d postings, build %v\n",
		idx.NumFragments(), fragPostings, fragTime.Round(time.Microsecond))
	fmt.Printf("naive pages:    %d pages, %d postings, %d indexed terms, build %v\n",
		ns.Pages, ns.Postings, ns.IndexedTerms, ns.BuildTime.Round(time.Microsecond))
	fmt.Printf("blowup:         %.1fx pages over fragments, %.1fx postings\n",
		float64(ns.Pages)/float64(idx.NumFragments()),
		float64(ns.Postings)/float64(fragPostings))

	// Result redundancy for a concentrated (cold) keyword: its content
	// lives in few fragments, so the naive index's top pages are the many
	// overlapping intervals containing them — the P1 ⊂ P2 problem of §I.
	bands := harness.KeywordBands(idx.Snapshot(), 5)
	if len(bands.Cold) > 0 {
		kw := bands.Cold[0]
		naiveTop := naive.Search([]string{kw}, 10)
		fmt.Printf("naive top-10 redundancy (keyword %q): %.2f (Jaccard)\n",
			kw, baseline.Redundancy(naiveTop))
		engine := search.New(idx, app)
		rs, err := engine.Search(context.Background(), search.Request{Keywords: []string{kw}, K: 10, SizeThreshold: 100})
		if err != nil {
			return err
		}
		fmt.Printf("dash top-%d redundancy: 0.00 by construction (overlap exclusion), %d results\n",
			len(rs), len(rs))
	}
	return nil
}

// coverage quantifies §I's collection argument: trial-query probing and
// proxy-cache harvesting versus Dash's database crawling, measured as web
// application invocations spent and fragment coverage achieved.
func coverage(ctx context.Context, cfg config) error {
	header("Coverage — §I collection approaches vs database crawling (Q1, small)")
	wl := harness.Workload{Scale: tpch.Small, Seed: cfg.seed, Query: "Q1"}
	db, app, err := wl.Setup()
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "approach\tinvocations\tpages\tempty\tduplicate\tfragment coverage")

	for _, budget := range []int{100, 1000, 10000} {
		c, err := baseline.NewCollector(db, app)
		if err != nil {
			return err
		}
		total, err := c.TotalFragments()
		if err != nil {
			return err
		}
		stats, err := c.ProbeCrawl(cfg.seed, budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "probe (budget %d)\t%d\t%d\t%d\t%d\t%d/%d (%.0f%%)\n",
			budget, stats.Invocations, stats.Pages, stats.EmptyResults,
			stats.DuplicatePages, stats.CoveredFragments, total,
			100*float64(stats.CoveredFragments)/float64(total))
	}
	for _, users := range []int{1000} {
		c, err := baseline.NewCollector(db, app)
		if err != nil {
			return err
		}
		total, err := c.TotalFragments()
		if err != nil {
			return err
		}
		stats, err := c.CacheCrawl(cfg.seed, users)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "proxy cache (%d user queries)\t%d\t%d\t%d\t%d\t%d/%d (%.0f%%)\n",
			users, stats.Invocations, stats.Pages, stats.EmptyResults,
			stats.DuplicatePages, stats.CoveredFragments, total,
			100*float64(stats.CoveredFragments)/float64(total))
	}

	// Dash: zero application invocations, complete coverage.
	out, _, err := harness.RunCrawl(ctx, db, app, crawl.AlgIntegrated,
		crawl.Options{ReduceTasks: cfg.reduce}, "small")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dash database crawl\t0\t–\t0\t0\t%d/%d (100%%)\n",
		len(out.FragmentTerms), len(out.FragmentTerms))
	return w.Flush()
}

func shortAlg(a crawl.Algorithm) string {
	if a == crawl.AlgStepwise {
		return "SW"
	}
	return "INT"
}

func phaseCell(row harness.CrawlRow, i int) string {
	if i >= len(row.Phases) {
		return "-"
	}
	p := row.Phases[i]
	return fmt.Sprintf("%s=%v", p.Name, p.Metrics.Wall.Round(time.Millisecond))
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
