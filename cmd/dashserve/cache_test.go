package main

// Serving-under-load handler tests: the X-Cache response header flips
// miss -> hit -> (publish) -> miss, admission shedding answers structured
// 503 envelopes with Retry-After, the per-client in-flight cap answers
// 429, and the whole surface stays consistent under -race stress of
// concurrent clients against a publishing writer.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	dash "repro"
)

// TestV1SearchXCache: a repeated /v1/search answers from the cache
// (X-Cache: hit) with a byte-identical body, and a publish through
// /v1/admin/apply flips the same query back to a miss.
func TestV1SearchXCache(t *testing.T) {
	mux, _ := testMuxCfg(t, serveConfig{searchTimeout: 5 * time.Second},
		dash.WithResultCache(1<<20))

	first := get(t, mux, "/v1/search?q=burger&k=3&s=20")
	if first.Code != http.StatusOK {
		t.Fatalf("first search: status %d, body %q", first.Code, first.Body.String())
	}
	if xc := first.Header().Get("X-Cache"); xc != "miss" {
		t.Fatalf("first search X-Cache = %q, want miss", xc)
	}
	second := get(t, mux, "/v1/search?q=burger&k=3&s=20")
	if xc := second.Header().Get("X-Cache"); xc != "hit" {
		t.Fatalf("repeat search X-Cache = %q, want hit", xc)
	}
	if second.Body.String() != first.Body.String() {
		t.Fatalf("cached body differs from uncached:\n%q\nvs\n%q",
			second.Body.String(), first.Body.String())
	}

	// A publish supersedes the pinned epochs: the very next identical
	// query must re-run against the new snapshot.
	upd := `{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":7},"total":7}]}`
	if rec := postJSON(t, mux, "/v1/admin/apply", upd); rec.Code != http.StatusOK {
		t.Fatalf("apply: status %d, body %q", rec.Code, rec.Body.String())
	}
	third := get(t, mux, "/v1/search?q=burger&k=3&s=20")
	if xc := third.Header().Get("X-Cache"); xc != "miss" {
		t.Fatalf("post-publish X-Cache = %q, want miss", xc)
	}

	// Without a cache the header reports bypass.
	plain, _ := testMux(t)
	if rec := get(t, plain, "/v1/search?q=burger&k=3&s=20"); rec.Header().Get("X-Cache") != "bypass" {
		t.Errorf("uncached engine X-Cache = %q, want bypass", rec.Header().Get("X-Cache"))
	}
}

// TestV1BatchXCache: the batch header aggregates — hit only when every
// slot was served from cache.
func TestV1BatchXCache(t *testing.T) {
	mux, _ := testMuxCfg(t, serveConfig{searchTimeout: 5 * time.Second},
		dash.WithResultCache(1<<20))

	// Warm one of the two slots individually: the batch is still a miss.
	get(t, mux, "/v1/search?q=burger&k=2&s=20")
	rec := get(t, mux, "/v1/search:batch?q=burger&q=coffee&k=2&s=20")
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d, body %q", rec.Code, rec.Body.String())
	}
	if xc := rec.Header().Get("X-Cache"); xc != "miss" {
		t.Errorf("half-warm batch X-Cache = %q, want miss", xc)
	}
	again := get(t, mux, "/v1/search:batch?q=burger&q=coffee&k=2&s=20")
	if xc := again.Header().Get("X-Cache"); xc != "hit" {
		t.Errorf("fully-warm batch X-Cache = %q, want hit", xc)
	}
	if again.Body.String() != rec.Body.String() {
		t.Error("cached batch body differs from uncached")
	}
}

// TestV1SearchOverload: when admission control judges the remaining
// deadline budget insufficient, the search sheds with a structured 503
// overloaded envelope and a Retry-After header — on both the single and
// the batch route.
func TestV1SearchOverload(t *testing.T) {
	// The floor sits between the 50ms shrunken budget and the 5s server
	// ceiling, so ?timeout_ms=50 is doomed but a default request is not.
	mux, _ := testMuxCfg(t, serveConfig{searchTimeout: 5 * time.Second},
		dash.WithAdmissionControl(dash.AdmissionOptions{MinBudget: time.Second}))

	rec := get(t, mux, "/v1/search?q=burger&k=2&s=20&timeout_ms=50")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("doomed search: status %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "overloaded" {
		t.Errorf("doomed search: code %q, want overloaded", code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	}
	if xc := rec.Header().Get("X-Cache"); xc != "bypass" {
		t.Errorf("shed search X-Cache = %q, want bypass", xc)
	}

	rec = get(t, mux, "/v1/search:batch?q=burger&q=coffee&timeout_ms=50")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("doomed batch: status %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "overloaded" {
		t.Errorf("doomed batch: code %q, want overloaded", code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("batch 503 without Retry-After")
	}

	// With an ample budget the same engine serves normally.
	if rec := get(t, mux, "/v1/search?q=burger&k=2&s=20"); rec.Code != http.StatusOK {
		t.Errorf("ample budget: status %d, body %q", rec.Code, rec.Body.String())
	}
}

// TestPerClientCap: the middleware caps concurrent searches per client —
// a second in-flight search from the same client answers 429
// too_many_requests with Retry-After, other clients and non-search routes
// are unaffected, and the slot frees on completion.
func TestPerClientCap(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("block") == "1" {
			entered <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})
	h := withRequestMiddleware(inner, newClientLimiter(1), nil, nil)

	do := func(url, client string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("X-Client-ID", client)
		h.ServeHTTP(rec, req)
		return rec
	}

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- do("/v1/search?q=burger&block=1", "alice") }()
	<-entered // alice's first search is now holding her only slot

	if rec := do("/v1/search?q=coffee", "alice"); rec.Code != http.StatusTooManyRequests {
		t.Errorf("saturated client: status %d, want 429", rec.Code)
	} else {
		if code := errorCode(t, rec); code != "too_many_requests" {
			t.Errorf("saturated client: code %q", code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	}
	if rec := do("/v1/search?q=coffee", "bob"); rec.Code != http.StatusOK {
		t.Errorf("other client: status %d, want 200", rec.Code)
	}
	if rec := do("/v1/admin/stats", "alice"); rec.Code != http.StatusOK {
		t.Errorf("non-search route capped: status %d, want 200", rec.Code)
	}

	close(release)
	if rec := <-done; rec.Code != http.StatusOK {
		t.Errorf("blocked search: status %d, want 200", rec.Code)
	}
	if rec := do("/v1/search?q=coffee", "alice"); rec.Code != http.StatusOK {
		t.Errorf("slot not released: status %d, want 200", rec.Code)
	}
}

// TestServeLoadStress races concurrent clients against a publishing
// writer over the full middleware + cache + admission stack (run with
// -race): every response is one of 200/429/503, error envelopes are
// structured, and 429/503 responses carry Retry-After.
func TestServeLoadStress(t *testing.T) {
	mux, _ := testMuxCfg(t, serveConfig{searchTimeout: 5 * time.Second, perClientInFlight: 2},
		dash.WithResultCache(256<<10),
		dash.WithAdmissionControl(dash.AdmissionOptions{MaxInFlight: 8}))

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			upd := fmt.Sprintf(
				`{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":%d},"total":%d}]}`,
				2+i%5, 2+i%5)
			if rec := postJSON(t, mux, "/v1/admin/apply", upd); rec.Code != http.StatusOK {
				t.Errorf("writer: status %d, body %q", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	queries := []string{"burger", "coffee", "pizza", "burger+coffee"}
	var clients sync.WaitGroup
	for c := 0; c < 6; c++ {
		clients.Add(1)
		go func(c int) {
			defer clients.Done()
			client := fmt.Sprintf("client-%d", c%3) // 2 goroutines share each id
			for i := 0; i < 60; i++ {
				url := fmt.Sprintf("/v1/search?q=%s&k=3&s=20", queries[i%len(queries)])
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet, url, nil)
				req.Header.Set("X-Client-ID", client)
				mux.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					if xc := rec.Header().Get("X-Cache"); xc != "hit" && xc != "miss" {
						t.Errorf("200 with X-Cache %q", xc)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if errorCode(t, rec) == "" || rec.Header().Get("Retry-After") == "" {
						t.Errorf("%d without envelope/Retry-After: %q", rec.Code, rec.Body.String())
					}
				default:
					t.Errorf("unexpected status %d: %q", rec.Code, rec.Body.String())
				}
			}
		}(c)
	}
	clients.Wait()
	close(stop)
	writer.Wait()
}
