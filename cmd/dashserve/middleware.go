package main

// middleware.go is the one request-scoped middleware every dashserve
// request passes: an X-Request-ID response header, an access-log line,
// and panic-to-500 recovery, so a panicking handler answers a structured
// 500 instead of killing the connection silently.

import (
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures what a handler wrote so the access log and the
// panic recovery know where the response stands.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code, sr.wrote = code, true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.code, sr.wrote = http.StatusOK, true
	}
	return sr.ResponseWriter.Write(b)
}

// newRequestID returns a 16-hex-char random identifier — unique enough to
// correlate one access-log line with one client-reported failure.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000" // degraded, never fatal
	}
	return hex.EncodeToString(b[:])
}

// withRequestMiddleware wraps the whole mux. Ordering matters: the
// recovery must see the panic before the connection unwinds, and the log
// line must record the status the handler (or the recovery) settled on.
func withRequestMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := newRequestID()
		w.Header().Set("X-Request-ID", id)
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The standard way for a handler to abort the
					// connection on purpose; not ours to swallow.
					panic(p)
				}
				log.Printf("panic id=%s %s %s: %v\n%s",
					id, r.Method, r.URL.RequestURI(), p, debug.Stack())
				if !sr.wrote {
					writeError(sr, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			code := sr.code
			if !sr.wrote {
				code = http.StatusOK
			}
			log.Printf("%s %s -> %d (%s) id=%s",
				r.Method, r.URL.RequestURI(), code,
				time.Since(start).Round(time.Microsecond), id)
		}()
		next.ServeHTTP(sr, r)
	})
}
