package main

// middleware.go is the one request-scoped middleware every dashserve
// request passes: an X-Request-ID response header, a per-client in-flight
// cap on search routes (429 + Retry-After past it), an access-log line,
// and panic-to-500 recovery, so a panicking handler answers a structured
// 500 instead of killing the connection silently.

import (
	"crypto/rand"
	"encoding/hex"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// statusRecorder captures what a handler wrote so the access log and the
// panic recovery know where the response stands.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code, sr.wrote = code, true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.code, sr.wrote = http.StatusOK, true
	}
	return sr.ResponseWriter.Write(b)
}

// clientLimiter caps concurrently served search requests per client — the
// per-client half of overload protection (the process-wide half lives in
// dash.WithAdmissionControl). One greedy client saturating its cap gets
// 429s while everyone else keeps their full budget; the engine-level cap
// alone would let that client crowd the others out.
type clientLimiter struct {
	max      int
	mu       sync.Mutex
	inflight map[string]int
}

// newClientLimiter returns nil for max <= 0 — the "no cap" sentinel the
// middleware checks.
func newClientLimiter(max int) *clientLimiter {
	if max <= 0 {
		return nil
	}
	return &clientLimiter{max: max, inflight: make(map[string]int)}
}

// acquire admits one request for the client, reporting false at the cap.
func (cl *clientLimiter) acquire(key string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.inflight[key] >= cl.max {
		return false
	}
	cl.inflight[key]++
	return true
}

func (cl *clientLimiter) release(key string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if n := cl.inflight[key] - 1; n > 0 {
		cl.inflight[key] = n
	} else {
		delete(cl.inflight, key)
	}
}

// clientKey identifies the requesting client: an explicit X-Client-ID
// header when present (load balancers and tests set it), else the remote
// host without the ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// isSearchRoute reports whether the path is a search endpoint (versioned
// or legacy) — the per-client cap covers the query-serving routes only;
// admin and demo routes stay uncapped so operators can always inspect an
// overloaded server.
func isSearchRoute(path string) bool {
	return strings.HasPrefix(path, "/v1/search") ||
		path == "/search" || path == "/batch"
}

// newRequestID returns a 16-hex-char random identifier — unique enough to
// correlate one access-log line with one client-reported failure.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000" // degraded, never fatal
	}
	return hex.EncodeToString(b[:])
}

// withRequestMiddleware wraps the whole mux. Ordering matters: the
// recovery must see the panic before the connection unwinds, the log
// line must record the status the handler (or the recovery) settled on,
// and the per-client cap rejects before the handler allocates anything —
// a capped-out client's requests cost map lookups, nothing more. limiter
// may be nil (no per-client cap). durState feeds the access log's
// durability field (an atomic read per line); retryAfter429 prices the
// Retry-After hint for capped-out clients from the engine's observed
// search latency — roughly when one of the client's own slots frees up —
// instead of a made-up constant.
func withRequestMiddleware(next http.Handler, limiter *clientLimiter, durState func() string, retryAfter429 func() string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := newRequestID()
		w.Header().Set("X-Request-ID", id)
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The standard way for a handler to abort the
					// connection on purpose; not ours to swallow.
					panic(p)
				}
				log.Printf("panic id=%s %s %s: %v\n%s",
					id, r.Method, r.URL.RequestURI(), p, debug.Stack())
				if !sr.wrote {
					writeError(sr, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			code := sr.code
			if !sr.wrote {
				code = http.StatusOK
			}
			cache := sr.Header().Get("X-Cache")
			if cache == "" {
				cache = "-"
			}
			dur := "-"
			if durState != nil {
				dur = durState()
			}
			log.Printf("%s %s -> %d (%s) id=%s cache=%s durability=%s",
				r.Method, r.URL.RequestURI(), code,
				time.Since(start).Round(time.Microsecond), id, cache, dur)
		}()
		if limiter != nil && isSearchRoute(r.URL.Path) {
			key := clientKey(r)
			if !limiter.acquire(key) {
				hint := "1"
				if retryAfter429 != nil {
					hint = retryAfter429()
				}
				sr.Header().Set("Retry-After", hint)
				writeError(sr, http.StatusTooManyRequests, "too_many_requests",
					"per-client in-flight search limit reached; retry later")
				return
			}
			defer limiter.release(key)
		}
		next.ServeHTTP(sr, r)
	})
}
