package main

// health.go is dashserve's liveness/readiness surface and the Retry-After
// arithmetic for backpressure responses. Liveness (/v1/healthz) answers
// 200 whenever the process can answer HTTP at all; readiness (/v1/readyz)
// reflects what the server can usefully do: ready, degraded (durability
// lost, reads still served — deliberately still 200 so load balancers
// keep routing searches), or shutting down (503 — drain new traffic).
// Retry-After hints are computed from actual server state, never a
// constant: degraded writes report the prober's next data-dir test,
// overload sheds report the admission controller's EWMA search latency.

import (
	"math"
	"net/http"
	"strconv"
	"time"

	dash "repro"
)

// v1Healthz answers GET /v1/healthz: pure liveness. Degraded durability
// and shutdown drains do not fail it — restarting the process would not
// help either condition.
func (s *server) v1Healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

// v1Readyz answers GET /v1/readyz: readiness for traffic. While draining
// it answers 503 so balancers stop sending new requests; while durability
// is degraded it answers 200 with a "degraded" body — searches still
// serve from published snapshots, only durable writes are refused — plus
// the prober's next-attempt hint so operators see when recovery may land.
func (s *server) v1Readyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{"status": "shutting_down"})
		return
	}
	if s.health != nil && s.health.DurabilityState() == dash.DurabilityDegraded {
		writeJSON(w, map[string]any{
			"status":           "degraded",
			"next_probe_in_ms": s.health.DurabilityProbeIn().Milliseconds(),
		})
		return
	}
	// Replicas advertise their tail state here — the block the leader-side
	// read router polls for per-shard applied epochs. A severed stream is
	// "degraded" but still 200: the replica keeps serving its last applied
	// (stale but consistent) view, which is exactly the bounded-staleness
	// contract's degraded mode.
	if rr, ok := s.eng.(dash.ReplicationReporter); ok {
		rs := rr.ReplicationStats()
		status := "ready"
		if rs.State != "tailing" {
			status = "degraded"
		}
		writeJSON(w, map[string]any{"status": status, "replication": rs})
		return
	}
	writeJSON(w, map[string]any{"status": "ready"})
}

// markDraining flips readiness to shutting-down; main calls it right
// before the graceful Shutdown drain.
func (s *server) markDraining() { s.draining.Store(true) }

// durabilityState names the serving handle's durability state for the
// access log: "-" for non-durable handles (an atomic read either way —
// never a per-shard lock on the request path).
func (s *server) durabilityState() string {
	if s.health == nil {
		return "-"
	}
	return string(s.health.DurabilityState())
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, clamped to [1, 60]: never 0 (which invites an immediate retry
// storm) and never so long a client gives up on a transient condition.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

// degradedRetryAfter hints when a degraded write is worth retrying: the
// prober's next data-dir test — before that fires, recovery cannot have
// happened, so retrying sooner is guaranteed wasted work.
func (s *server) degradedRetryAfter() string {
	if s.health != nil {
		if d := s.health.DurabilityProbeIn(); d > 0 {
			return retryAfterSeconds(d)
		}
	}
	return "1"
}

// overloadRetryAfter hints when a shed search is worth retrying: the
// admission controller's EWMA of one uncached search — roughly when an
// in-flight slot frees up. Before the first observation (or without
// admission control) it falls back to 1s.
func (s *server) overloadRetryAfter() string {
	st := s.eng.Stats()
	if st.Admission != nil && st.Admission.EstCostNs > 0 {
		return retryAfterSeconds(time.Duration(st.Admission.EstCostNs))
	}
	return "1"
}
