package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dash "repro"
	"repro/internal/harness"
	"repro/internal/relation"
)

// testMux builds the full handler surface over the fooddb dataset, the
// same wiring run() performs — two shards through dash.Open, so routing
// and the sharded stats/apply paths are exercised — small enough for
// handler tests.
func testMux(t *testing.T) (http.Handler, dash.Handle) {
	t.Helper()
	return testMuxCfg(t, serveConfig{searchTimeout: 5 * time.Second})
}

// testMuxCfg is testMux with explicit serve configuration and optional
// extra engine options (result cache, admission control).
func testMuxCfg(t *testing.T, cfg serveConfig, extra ...dash.Option) (http.Handler, dash.Handle) {
	t.Helper()
	db, app, err := harness.Fooddb()
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := dash.Build(context.Background(), db, app, dash.BuildOptions{
		Algorithm: dash.AlgReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	engine, err := dash.Open(context.Background(), idx, app, append([]dash.Option{dash.WithShards(2)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	mux, _ := newMux(engine, app, db, bound.SelAttrKinds(), cfg)
	return mux, engine
}

func get(t *testing.T, mux http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func postJSON(t *testing.T, mux http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	mux.ServeHTTP(rec, req)
	return rec
}

// errorCode extracts the structured envelope's code, failing if the body
// is not an envelope.
func errorCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body not an envelope: %v (%q)", err, rec.Body.String())
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("envelope missing code/message: %q", rec.Body.String())
	}
	return body.Error.Code
}

type searchResponse struct {
	Query   string `json:"query"`
	Count   int    `json:"count"`
	Results []struct {
		URL   string  `json:"url"`
		Query string  `json:"query_string"`
		Score float64 `json:"score"`
	} `json:"results"`
}

// TestV1SearchHandler covers /v1/search: a good query returns JSON
// results; malformed parameters are 400 invalid_argument envelopes naming
// the parameter; a request with no usable keywords is a 422.
func TestV1SearchHandler(t *testing.T) {
	mux, _ := testMux(t)

	rec := get(t, mux, "/v1/search?q=burger&k=2&s=20")
	if rec.Code != http.StatusOK {
		t.Fatalf("good search: status %d, body %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}
	if rec.Header().Get("Deprecation") != "" {
		t.Error("/v1 route carries a Deprecation header")
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("search response not JSON: %v", err)
	}
	if resp.Query != "burger" || resp.Count != 2 || len(resp.Results) != 2 {
		t.Fatalf("search response = %+v, want 2 burger results", resp)
	}
	if !strings.Contains(resp.Results[0].URL, "c=American") {
		t.Errorf("top URL = %q", resp.Results[0].URL)
	}

	if rec := get(t, mux, "/v1/search"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: status %d, want 400", rec.Code)
	} else if errorCode(t, rec) != "invalid_argument" {
		t.Errorf("missing q: code %q", errorCode(t, rec))
	}

	for _, bad := range []struct{ url, param string }{
		{"/v1/search?q=burger&k=abc", "k"},
		{"/v1/search?q=burger&k=0", "k"},
		{"/v1/search?q=burger&s=-5", "s"},
		{"/v1/search?q=burger&s=12x", "s"},
		{"/v1/search?q=burger&limit=x", "limit"},
		{"/v1/search?q=burger&timeout_ms=abc", "timeout_ms"},
		{"/v1/search?q=burger&timeout_ms=0", "timeout_ms"},
	} {
		rec := get(t, mux, bad.url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad.url, rec.Code)
			continue
		}
		var body errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: not an envelope: %q", bad.url, rec.Body.String())
		}
		if body.Error.Code != "invalid_argument" || !strings.Contains(body.Error.Message, bad.param+" parameter") {
			t.Errorf("%s: envelope %+v does not name parameter %q", bad.url, body.Error, bad.param)
		}
	}

	// limit=0 is the engine's documented "full posting lists" sentinel —
	// explicitly serializing it must not 400.
	if rec := get(t, mux, "/v1/search?q=burger&k=2&s=20&limit=0"); rec.Code != http.StatusOK {
		t.Errorf("limit=0: status %d, want 200 (%s)", rec.Code, rec.Body.String())
	}

	// Whitespace-only q is well-formed HTTP but yields no keywords: the
	// engine rejects it, mapped to 422.
	rec = get(t, mux, "/v1/search?q=%20%20")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("blank q: status %d, want 422 (%s)", rec.Code, rec.Body.String())
	} else if errorCode(t, rec) != "validation_failed" {
		t.Errorf("blank q: code %q", errorCode(t, rec))
	}
}

// TestV1SearchTimeouts covers the context mappings: a request whose
// deadline already fired answers 504 deadline_exceeded, an abandoned
// client answers 499.
func TestV1SearchTimeouts(t *testing.T) {
	mux, _ := testMux(t)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/search?q=burger", nil).WithContext(expired))
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("expired deadline: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	} else if errorCode(t, rec) != "deadline_exceeded" {
		t.Errorf("expired deadline: code %q", errorCode(t, rec))
	}

	gone, cancelGone := context.WithCancel(context.Background())
	cancelGone()
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/search?q=burger", nil).WithContext(gone))
	if rec.Code != statusClientClosedRequest {
		t.Errorf("cancelled client: status %d, want 499 (%s)", rec.Code, rec.Body.String())
	} else if errorCode(t, rec) != "client_closed_request" {
		t.Errorf("cancelled client: code %q", errorCode(t, rec))
	}
}

// TestRequestContextClamp: ?timeout_ms= may shrink the per-request
// budget but never raise it past the server's — otherwise one query
// parameter would void the -search-timeout protection. With no budget
// (the admin apply path), the client value is taken as-is.
func TestRequestContextClamp(t *testing.T) {
	s := &server{cfg: serveConfig{searchTimeout: 100 * time.Millisecond}}
	deadlineWithin := func(raw string, budget, max time.Duration) {
		t.Helper()
		r := httptest.NewRequest(http.MethodGet, "/v1/search?q=x"+raw, nil)
		ctx, cancel, err := s.requestContext(r, budget)
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		defer cancel()
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatalf("%s: no deadline", raw)
		}
		if remaining := time.Until(dl); remaining > max {
			t.Errorf("%s: deadline %v out, want <= %v", raw, remaining, max)
		}
	}
	deadlineWithin("", s.cfg.searchTimeout, 100*time.Millisecond)
	deadlineWithin("&timeout_ms=10", s.cfg.searchTimeout, 10*time.Millisecond)
	// A client asking for an hour still gets the server's 100ms ceiling.
	deadlineWithin("&timeout_ms=3600000", s.cfg.searchTimeout, 100*time.Millisecond)
	// No budget (admin): the explicit value is honored.
	deadlineWithin("&timeout_ms=3600000", 0, time.Hour)
	r := httptest.NewRequest(http.MethodGet, "/v1/admin/apply", nil)
	ctx, cancel, err := s.requestContext(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("no-budget request without timeout_ms carries a deadline")
	}
}

// TestLegacyRoutesDelegate: the pre-/v1 routes answer byte-identical
// payloads through the same handlers and carry the deprecation headers.
func TestLegacyRoutesDelegate(t *testing.T) {
	mux, _ := testMux(t)
	for _, route := range []struct{ legacy, v1 string }{
		{"/search?q=burger&k=2&s=20", "/v1/search?q=burger&k=2&s=20"},
		{"/batch?q=burger&q=coffee&k=3", "/v1/search:batch?q=burger&q=coffee&k=3"},
		{"/admin/stats", "/v1/admin/stats"},
	} {
		legacy := get(t, mux, route.legacy)
		v1 := get(t, mux, route.v1)
		if legacy.Code != http.StatusOK || v1.Code != http.StatusOK {
			t.Fatalf("%s/%s: status %d/%d", route.legacy, route.v1, legacy.Code, v1.Code)
		}
		if legacy.Body.String() != v1.Body.String() {
			t.Errorf("%s and %s disagree:\n%s\nvs\n%s",
				route.legacy, route.v1, legacy.Body.String(), v1.Body.String())
		}
		if legacy.Header().Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", route.legacy)
		}
		if link := legacy.Header().Get("Link"); !strings.Contains(link, "successor-version") {
			t.Errorf("%s: Link header = %q", route.legacy, link)
		}
		if v1.Header().Get("Deprecation") != "" {
			t.Errorf("%s: v1 route carries Deprecation", route.v1)
		}
	}
	// The legacy apply route delegates too (checked separately: POST).
	rec := postJSON(t, mux, "/admin/apply", "{}")
	if rec.Code != http.StatusUnprocessableEntity || rec.Header().Get("Deprecation") != "true" {
		t.Errorf("legacy apply: status %d, Deprecation %q", rec.Code, rec.Header().Get("Deprecation"))
	}
}

// TestV1BatchHandler covers the JSON batch endpoint, including parameter
// validation shared with /v1/search and the per-entry error shape.
func TestV1BatchHandler(t *testing.T) {
	mux, _ := testMux(t)

	rec := get(t, mux, "/v1/search:batch?q=burger&q=coffee&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("good batch: status %d, body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Queries []struct {
			Query   string `json:"query"`
			Error   string `json:"error"`
			Results []struct {
				URL string `json:"url"`
			} `json:"results"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch response not JSON: %v", err)
	}
	if len(resp.Queries) != 2 {
		t.Fatalf("batch returned %d entries, want 2", len(resp.Queries))
	}
	if resp.Queries[0].Error != "" || len(resp.Queries[0].Results) == 0 {
		t.Errorf("burger entry = %+v", resp.Queries[0])
	}

	if rec := get(t, mux, "/v1/search:batch"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: status %d, want 400", rec.Code)
	}
	rec = get(t, mux, "/v1/search:batch?q=burger&k=nope")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad k: status %d, want 400", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "k parameter") {
		t.Errorf("bad k: body %q does not name k", rec.Body.String())
	}
}

// TestV1ApplyHandler covers /v1/admin/apply: method and body validation
// with the structured codes, a plain single-delta apply, and batch mode
// coalescing several deltas into one publish.
func TestV1ApplyHandler(t *testing.T) {
	mux, engine := testMux(t)

	rec := get(t, mux, "/v1/admin/apply")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}
	if rec := postJSON(t, mux, "/v1/admin/apply", "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", rec.Code)
	} else if errorCode(t, rec) != "invalid_argument" {
		t.Errorf("bad JSON: code %q", errorCode(t, rec))
	}
	if rec := postJSON(t, mux, "/v1/admin/apply", "{}"); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("empty delta: status %d, want 422", rec.Code)
	} else if errorCode(t, rec) != "validation_failed" {
		t.Errorf("empty delta: code %q", errorCode(t, rec))
	}
	bad := `{"changes":[{"op":"sideways","id":["American","10"]}]}`
	if rec := postJSON(t, mux, "/v1/admin/apply", bad); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown op: status %d, want 422", rec.Code)
	}

	// One explicit update publishes one snapshot.
	before := engine.Stats()
	upd := `{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":3},"total":3}]}`
	rec = postJSON(t, mux, "/v1/admin/apply", upd)
	if rec.Code != http.StatusOK {
		t.Fatalf("update: status %d, body %q", rec.Code, rec.Body.String())
	}
	var st dash.ApplyReport
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total.Updated != 1 || st.Total.Deltas != 1 || len(st.PerShard) != 1 {
		t.Errorf("update stats = %+v", st)
	}
	mid := engine.Stats()
	if mid.Publishes != before.Publishes+1 {
		t.Errorf("publishes %d -> %d, want +1", before.Publishes, mid.Publishes)
	}

	// Batch mode: three deltas — two updates and an insert+remove pair
	// that cancels out — fold into a single publish.
	batch := `{"batch":[
		{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":2},"total":2}]},
		{"changes":[{"op":"insert","id":["Nordic","3"],"terms":{"herring":1},"total":1}]},
		{"changes":[{"op":"remove","id":["Nordic","3"]}]}
	]}`
	rec = postJSON(t, mux, "/v1/admin/apply", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch apply: status %d, body %q", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total.Deltas != 3 || st.Total.Updated != 1 || st.Total.Inserted != 0 || st.Total.Removed != 0 {
		t.Errorf("batch stats = %+v (want 3 deltas folded to 1 update)", st)
	}
	after := engine.Stats()
	if after.Publishes != mid.Publishes+1 {
		t.Errorf("batch publishes %d -> %d, want +1", mid.Publishes, after.Publishes)
	}
	if engine.(*dash.ShardedLiveEngine).Live().Has(dash.FragmentID{relation.String("Nordic"), relation.Int(3)}) {
		t.Error("cancelled insert reached the index")
	}
}

// TestV1StatsHandler covers /v1/admin/stats: the unified EngineStats
// shape with topology, aggregate, and one per-shard entry per shard.
func TestV1StatsHandler(t *testing.T) {
	mux, engine := testMux(t)
	rec := get(t, mux, "/v1/admin/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var st dash.EngineStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if st.Topology != "sharded" || st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats topology/shards/per_shard = %s/%d/%d, want sharded/2/2",
			st.Topology, st.Shards, len(st.PerShard))
	}
	want := engine.Stats()
	if st.Fragments != want.Fragments || st.Fragments == 0 {
		t.Errorf("stats fragments = %d, want %d (> 0)", st.Fragments, want.Fragments)
	}
}

// TestHomePage: the human demo moved to / — a form without q, rendered
// results with q, and a structured 404 for unknown routes.
func TestHomePage(t *testing.T) {
	mux, _ := testMux(t)
	if rec := get(t, mux, "/"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "<form") {
		t.Errorf("home form: status %d, body %q", rec.Code, rec.Body.String())
	}
	rec := get(t, mux, "/?q=burger&k=2&s=20")
	if rec.Code != http.StatusOK {
		t.Fatalf("home search: status %d, body %q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "db-pages") {
		t.Errorf("home search response missing results page: %q", rec.Body.String())
	}
	if rec := get(t, mux, "/no/such/route"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route: status %d, want 404", rec.Code)
	} else if errorCode(t, rec) != "not_found" {
		t.Errorf("unknown route: code %q", errorCode(t, rec))
	}
}

// TestMiddlewareRecovery: a panicking handler answers a structured 500
// with the request id instead of killing the connection silently.
func TestMiddlewareRecovery(t *testing.T) {
	h := withRequestMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}), nil, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if errorCode(t, rec) != "internal" {
		t.Errorf("panic envelope code = %q", errorCode(t, rec))
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("panic response missing X-Request-ID")
	}
}

// TestPprofOptIn: the profiling surface exists only when the flag opts in.
func TestPprofOptIn(t *testing.T) {
	mux, _ := testMuxCfg(t, serveConfig{searchTimeout: 5 * time.Second})
	if rec := get(t, mux, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", rec.Code)
	}
	withPprof, _ := testMuxCfg(t, serveConfig{withPprof: true, searchTimeout: 5 * time.Second})
	if rec := get(t, withPprof, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", rec.Code)
	}
}

// TestV1ApplyQueueFlush covers the deferred maintenance modes on
// /v1/admin/apply: "queue" buffers without publishing, "flush" publishes
// the whole queue as one coalesced batch, and the malformed combinations
// (queue+recrawl, flush+deltas, empty queue, unknown mode) are 422s.
func TestV1ApplyQueueFlush(t *testing.T) {
	mux, engine := testMux(t)
	before := engine.Stats()

	rec := postJSON(t, mux, "/v1/admin/apply",
		`{"mode":"queue","changes":[{"op":"insert","id":["Nordic","3"],"terms":{"herring":2},"total":2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("queue: status %d, body %q", rec.Code, rec.Body.String())
	}
	var q struct {
		Queued  int `json:"queued"`
		Pending int `json:"pending"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Queued != 1 || q.Pending != 1 {
		t.Errorf("queue response %+v, want 1 queued / 1 pending", q)
	}
	rec = postJSON(t, mux, "/v1/admin/apply",
		`{"mode":"queue","changes":[{"op":"update","id":["American","10"],"terms":{"burger":5},"total":5}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("queue #2: status %d, body %q", rec.Code, rec.Body.String())
	}
	json.Unmarshal(rec.Body.Bytes(), &q)
	if q.Pending != 2 {
		t.Errorf("queue #2 pending = %d, want 2", q.Pending)
	}

	// Nothing published yet: the queued insert is invisible and the
	// publish counter is unchanged.
	mid := engine.Stats()
	if mid.Publishes != before.Publishes || mid.Queued != 2 {
		t.Errorf("after queueing: publishes %d->%d, queued %d", before.Publishes, mid.Publishes, mid.Queued)
	}
	if engine.(*dash.ShardedLiveEngine).Live().Has(dash.FragmentID{relation.String("Nordic"), relation.Int(3)}) {
		t.Error("queued insert reached the served index before flush")
	}

	for name, body := range map[string]string{
		"queue with recrawl": `{"mode":"queue","recrawl":[["American","10"]]}`,
		"empty queue":        `{"mode":"queue"}`,
		"flush with deltas":  `{"mode":"flush","changes":[{"op":"remove","id":["Nordic","3"]}]}`,
		"unknown mode":       `{"mode":"sideways","changes":[{"op":"remove","id":["Nordic","3"]}]}`,
	} {
		if rec := postJSON(t, mux, "/v1/admin/apply", body); rec.Code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422 (body %q)", name, rec.Code, rec.Body.String())
		} else if errorCode(t, rec) != "validation_failed" {
			t.Errorf("%s: code %q", name, errorCode(t, rec))
		}
	}

	rec = postJSON(t, mux, "/v1/admin/apply", `{"mode":"flush"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("flush: status %d, body %q", rec.Code, rec.Body.String())
	}
	var st dash.ApplyReport
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total.Deltas != 2 || st.Total.Inserted != 1 || st.Total.Updated != 1 {
		t.Errorf("flush report %+v, want 2 deltas / 1 insert / 1 update", st.Total)
	}
	after := engine.Stats()
	if after.Queued != 0 {
		t.Errorf("post-flush queued = %d, want 0", after.Queued)
	}
	if !engine.(*dash.ShardedLiveEngine).Live().Has(dash.FragmentID{relation.String("Nordic"), relation.Int(3)}) {
		t.Error("flushed insert missing from the served index")
	}
}

// durableMux is testMux over a durable engine rooted in a temp data dir.
func durableMux(t *testing.T) (http.Handler, dash.Handle) {
	t.Helper()
	db, app, err := harness.Fooddb()
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := dash.Build(context.Background(), db, app, dash.BuildOptions{Algorithm: dash.AlgReference})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	engine, err := dash.Open(context.Background(), idx, app, dash.WithShards(2), dash.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.(io.Closer).Close() })
	mux, _ := newMux(engine, app, db, bound.SelAttrKinds(), serveConfig{searchTimeout: 5 * time.Second})
	return mux, engine
}

// TestV1StatsDurability: /v1/admin/stats grows a "durability" block only
// when the serving handle is durable; the legacy payload stays
// byte-identical otherwise.
func TestV1StatsDurability(t *testing.T) {
	plain, _ := testMux(t)
	if body := get(t, plain, "/v1/admin/stats").Body.String(); strings.Contains(body, "durability") {
		t.Errorf("plain stats leak a durability block: %q", body)
	}

	mux, _ := durableMux(t)
	rec := postJSON(t, mux, "/v1/admin/apply",
		`{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":3},"total":3}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("durable apply: status %d, body %q", rec.Code, rec.Body.String())
	}
	var st struct {
		dash.EngineStats
		Durability *dash.DurabilityStats `json:"durability"`
	}
	if err := json.Unmarshal(get(t, mux, "/v1/admin/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil {
		t.Fatal("durable stats missing the durability block")
	}
	if st.Durability.Shards != 2 || st.Durability.SyncMode != string(dash.SyncAlways) || st.Durability.JournalRecords != 1 {
		t.Errorf("durability block %+v, want 2 shards / always / 1 journal record", st.Durability)
	}
}
