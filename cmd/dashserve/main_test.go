package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	dash "repro"
	"repro/internal/harness"
	"repro/internal/relation"
)

// testMux builds the full handler surface over the fooddb dataset, the
// same wiring run() performs — two shards, so routing and the sharded
// stats/apply paths are exercised — small enough for handler tests.
func testMux(t *testing.T) (*http.ServeMux, *dash.ShardedLiveEngine) {
	t.Helper()
	return testMuxPprof(t, false)
}

// testMuxPprof is testMux with the profiling surface toggled.
func testMuxPprof(t *testing.T, withPprof bool) (*http.ServeMux, *dash.ShardedLiveEngine) {
	t.Helper()
	db, app, err := harness.Fooddb()
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := dash.Build(context.Background(), db, app, dash.BuildOptions{
		Algorithm: dash.AlgReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	engine, err := dash.NewShardedLiveEngine(idx, app, 2)
	if err != nil {
		t.Fatal(err)
	}
	return newMux(engine, app, db, bound.SelAttrKinds(), withPprof), engine
}

func get(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func postJSON(t *testing.T, mux *http.ServeMux, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	mux.ServeHTTP(rec, req)
	return rec
}

// TestSearchHandler covers the HTML search endpoint: a good query renders
// results; malformed or non-positive numeric parameters are 400s naming
// the parameter instead of silently serving default-k results.
func TestSearchHandler(t *testing.T) {
	mux, _ := testMux(t)

	if rec := get(t, mux, "/search?q=burger&k=2&s=20"); rec.Code != http.StatusOK {
		t.Fatalf("good search: status %d, body %q", rec.Code, rec.Body.String())
	} else if !strings.Contains(rec.Body.String(), "db-pages") {
		t.Errorf("search response missing results page: %q", rec.Body.String())
	}

	if rec := get(t, mux, "/search"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: status %d, want 400", rec.Code)
	}

	for _, bad := range []struct{ url, param string }{
		{"/search?q=burger&k=abc", "k"},
		{"/search?q=burger&k=0", "k"},
		{"/search?q=burger&s=-5", "s"},
		{"/search?q=burger&s=12x", "s"},
	} {
		rec := get(t, mux, bad.url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad.url, rec.Code)
			continue
		}
		if body := rec.Body.String(); !strings.Contains(body, bad.param+" parameter") {
			t.Errorf("%s: body %q does not name parameter %q", bad.url, body, bad.param)
		}
	}
}

// TestBatchHandler covers the JSON batch endpoint, including parameter
// validation shared with /search.
func TestBatchHandler(t *testing.T) {
	mux, _ := testMux(t)

	rec := get(t, mux, "/batch?q=burger&q=coffee&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("good batch: status %d, body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Queries []struct {
			Query   string `json:"query"`
			Error   string `json:"error"`
			Results []struct {
				URL string `json:"url"`
			} `json:"results"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch response not JSON: %v", err)
	}
	if len(resp.Queries) != 2 {
		t.Fatalf("batch returned %d entries, want 2", len(resp.Queries))
	}
	if resp.Queries[0].Error != "" || len(resp.Queries[0].Results) == 0 {
		t.Errorf("burger entry = %+v", resp.Queries[0])
	}

	if rec := get(t, mux, "/batch"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: status %d, want 400", rec.Code)
	}
	rec = get(t, mux, "/batch?q=burger&k=nope")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad k: status %d, want 400", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "k parameter") {
		t.Errorf("bad k: body %q does not name k", rec.Body.String())
	}
}

// TestApplyHandler covers /admin/apply: method and body validation, a
// plain single-delta apply, and batch mode coalescing several deltas into
// one publish.
func TestApplyHandler(t *testing.T) {
	mux, engine := testMux(t)

	rec := get(t, mux, "/admin/apply")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}
	if rec := postJSON(t, mux, "/admin/apply", "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", rec.Code)
	}
	if rec := postJSON(t, mux, "/admin/apply", "{}"); rec.Code != http.StatusBadRequest {
		t.Errorf("empty delta: status %d, want 400", rec.Code)
	}
	bad := `{"changes":[{"op":"sideways","id":["American","10"]}]}`
	if rec := postJSON(t, mux, "/admin/apply", bad); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", rec.Code)
	}

	// One explicit update publishes one snapshot.
	before := engine.Stats()
	upd := `{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":3},"total":3}]}`
	rec = postJSON(t, mux, "/admin/apply", upd)
	if rec.Code != http.StatusOK {
		t.Fatalf("update: status %d, body %q", rec.Code, rec.Body.String())
	}
	var st dash.ShardedApplyStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total.Updated != 1 || st.Total.Deltas != 1 || len(st.PerShard) != 1 {
		t.Errorf("update stats = %+v", st)
	}
	mid := engine.Stats()
	if mid.Publishes != before.Publishes+1 {
		t.Errorf("publishes %d -> %d, want +1", before.Publishes, mid.Publishes)
	}

	// Batch mode: three deltas — two updates and an insert+remove pair
	// that cancels out — fold into a single publish.
	batch := `{"batch":[
		{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":2},"total":2}]},
		{"changes":[{"op":"insert","id":["Nordic","3"],"terms":{"herring":1},"total":1}]},
		{"changes":[{"op":"remove","id":["Nordic","3"]}]}
	]}`
	rec = postJSON(t, mux, "/admin/apply", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch apply: status %d, body %q", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total.Deltas != 3 || st.Total.Updated != 1 || st.Total.Inserted != 0 || st.Total.Removed != 0 {
		t.Errorf("batch stats = %+v (want 3 deltas folded to 1 update)", st)
	}
	after := engine.Stats()
	if after.Publishes != mid.Publishes+1 {
		t.Errorf("batch publishes %d -> %d, want +1", mid.Publishes, after.Publishes)
	}
	if engine.Live().Has(dash.FragmentID{relation.String("Nordic"), relation.Int(3)}) {
		t.Error("cancelled insert reached the index")
	}
}

// TestStatsHandler covers /admin/stats on a sharded engine: the aggregate
// plus one per-shard entry per shard, each carrying its own epoch.
func TestStatsHandler(t *testing.T) {
	mux, engine := testMux(t)
	rec := get(t, mux, "/admin/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var st dash.ShardedLiveStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats shards = %d, per_shard = %d, want 2/2", st.Shards, len(st.PerShard))
	}
	want := engine.Stats()
	if st.Fragments != want.Fragments || st.Fragments == 0 {
		t.Errorf("stats fragments = %d, want %d (> 0)", st.Fragments, want.Fragments)
	}
}

// TestPprofOptIn: the profiling surface exists only when the flag opts in.
func TestPprofOptIn(t *testing.T) {
	mux, _ := testMuxPprof(t, false)
	if rec := get(t, mux, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", rec.Code)
	}
	withPprof, _ := testMuxPprof(t, true)
	if rec := get(t, withPprof, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", rec.Code)
	}
}
