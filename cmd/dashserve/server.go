package main

// server.go is dashserve's HTTP surface: the versioned /v1 JSON API over
// the dash.Handle contract, the deprecated unversioned delegates, and the
// human-facing HTML demo page at /.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	dash "repro"
	"repro/internal/relation"
	"repro/internal/webapp"
)

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request abandoned by its own client before the response was ready.
const statusClientClosedRequest = 499

// serveConfig carries the handler-level knobs from flags to newMux.
type serveConfig struct {
	withPprof bool
	// searchTimeout is the default per-request search budget; 0 disables
	// the server-side deadline. ?timeout_ms= overrides it per request.
	searchTimeout time.Duration
	// perClientInFlight caps concurrently served search requests per
	// client (X-Client-ID header, else remote host); 0 disables the cap.
	// Excess requests answer 429 with Retry-After (see middleware.go).
	perClientInFlight int
}

// server binds the handlers to the serving contract. Handlers only ever
// use dash.Handle — Searcher for reads, Maintainer for admin writes — so
// the surface is identical whatever topology Open picked. health is the
// handle's cheap durability-state surface (nil for non-durable handles);
// draining flips readiness off for the graceful-shutdown window.
type server struct {
	eng      dash.Handle
	app      *webapp.Application
	db       *dash.Database
	kinds    []relation.Kind
	cfg      serveConfig
	health   dash.DurabilityHealth
	draining atomic.Bool
}

// newMux assembles the full HTTP surface over a serving handle and wraps
// it in the request middleware (X-Request-ID, access log, panic-to-500).
// Split out of run so handler tests can drive it with httptest against a
// small dataset. The returned server carries the readiness state main
// flips when shutdown begins.
func newMux(eng dash.Handle, app *webapp.Application, db *dash.Database, kinds []relation.Kind, cfg serveConfig) (http.Handler, *server) {
	s := &server{eng: eng, app: app, db: db, kinds: kinds, cfg: cfg}
	if dh, ok := eng.(dash.DurabilityHealth); ok {
		s.health = dh
	}
	mux := http.NewServeMux()
	mux.Handle("/app", app.Handler())
	if cfg.withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// The versioned JSON API.
	mux.HandleFunc("/v1/search", s.v1Search)
	mux.HandleFunc("/v1/search:batch", s.v1SearchBatch)
	mux.HandleFunc("/v1/admin/stats", s.v1AdminStats)
	mux.HandleFunc("/v1/admin/apply", s.v1AdminApply)
	mux.HandleFunc("/v1/healthz", s.v1Healthz)
	mux.HandleFunc("/v1/readyz", s.v1Readyz)

	// Durable handles expose the replication transport replicas bootstrap
	// from and tail (snapshot manifest + ranged fetch + journal long-poll).
	if rep, ok := eng.(dash.Replicable); ok {
		mux.Handle(dash.ReplicationPrefix+"/",
			http.StripPrefix(dash.ReplicationPrefix, rep.ReplicationHandler()))
	}

	// Pre-/v1 routes delegate to the same handlers under a deprecation
	// header: existing JSON clients keep working byte-for-byte and see
	// where to migrate. One deliberate break, per the API redesign:
	// /search now answers the same JSON as /v1/search — the HTML demo it
	// used to render lives at / instead — and /batch lost its top-level
	// "elapsed" field (timing moved to the X-Elapsed header so bodies are
	// deterministic).
	mux.HandleFunc("/search", deprecated(s.v1Search, "/v1/search"))
	mux.HandleFunc("/batch", deprecated(s.v1SearchBatch, "/v1/search:batch"))
	mux.HandleFunc("/admin/stats", deprecated(s.v1AdminStats, "/v1/admin/stats"))
	mux.HandleFunc("/admin/apply", deprecated(s.v1AdminApply, "/v1/admin/apply"))

	// The human demo page.
	mux.HandleFunc("/", s.home)

	return withRequestMiddleware(mux, newClientLimiter(cfg.perClientInFlight),
		s.durabilityState, s.overloadRetryAfter), s
}

// deprecated marks a legacy route: same handler, plus the standard
// deprecation headers pointing at the successor.
func deprecated(h http.HandlerFunc, successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// errorBody is the /v1 structured error envelope.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(errorBody{Error: errorInfo{Code: code, Message: message}}); err != nil {
		log.Printf("encode error body: %v", err)
	}
}

// writeEngineError maps an engine or context error onto the envelope:
// context errors are the caller's own signals (504 when the per-request
// budget fired, 499 when the client went away); an admission-control shed
// or a degraded durable write is a 503 with a Retry-After hint computed
// from actual server state (nothing is wrong with the request — see
// health.go for the arithmetic); a write after Close means the server is
// going away; and everything else from a well-formed request is a
// validation failure.
func (s *server) writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dash.ErrReplicaReadOnly):
		// 421 Misdirected Request: this process is a replica; the write
		// belongs on the leader.
		writeError(w, http.StatusMisdirectedRequest, "not_leader", err.Error())
	case errors.Is(err, dash.ErrReplicaBehind):
		// Forwarding to the leader already failed (or was disabled): the
		// replica cannot satisfy the requested epoch yet. Retry shortly —
		// the tail loop is pulling the gap.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "replica_behind", err.Error())
	case errors.Is(err, dash.ErrDurabilityDegraded):
		w.Header().Set("Retry-After", s.degradedRetryAfter())
		writeError(w, http.StatusServiceUnavailable, "durability_degraded", err.Error())
	case errors.Is(err, dash.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", err.Error())
	case errors.Is(err, dash.ErrOverloaded):
		w.Header().Set("Retry-After", s.overloadRetryAfter())
		writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, "client_closed_request", err.Error())
	default:
		writeError(w, http.StatusUnprocessableEntity, "validation_failed", err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

// writeJSONStatus is writeJSON with an explicit non-200 status (the
// readiness probe's shutting-down answer).
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

// requestContext derives the handler context: the client's own context
// (so a dropped connection cancels the request) bounded by ?timeout_ms=
// or, absent that, the given budget (0: no server-side deadline).
// timeout_ms must be a positive integer when present, and when the
// handler has a budget it is a ceiling — a client may shrink its own
// deadline but never raise it past the server's, otherwise one query
// parameter would void the -search-timeout latency protection. Search
// handlers pass the -search-timeout budget; the admin apply handler
// passes 0 — a long recrawl is legitimate maintenance work, and imposing
// the search budget on it would routinely abort applies mid-flight
// (leaving sharded applies partially published, per the documented
// per-shard atomicity).
func (s *server) requestContext(r *http.Request, budget time.Duration) (context.Context, context.CancelFunc, error) {
	timeout := budget
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("invalid timeout_ms parameter %q: want a positive integer", raw)
		}
		asked := time.Duration(ms) * time.Millisecond
		if budget <= 0 || asked < budget {
			timeout = asked
		}
	}
	if timeout <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// pageJSON is one suggested db-page in API responses.
type pageJSON struct {
	URL   string  `json:"url"`
	Query string  `json:"query_string"`
	Score float64 `json:"score"`
	Size  int64   `json:"size"`
}

func pagesJSON(results []dash.Result) []pageJSON {
	out := make([]pageJSON, 0, len(results))
	for _, res := range results {
		out = append(out, pageJSON{
			URL: res.URL, Query: res.QueryString, Score: res.Score, Size: res.Size,
		})
	}
	return out
}

// searchParams parses the shared q/k/s/limit/min_epoch search parameters.
// k and s must be positive; limit accepts 0, the engine's documented
// "read full posting lists" sentinel. min_epoch is the bounded-staleness
// directive: the minimum published epoch the serving view must have
// reached (routing layers forward a request the local view cannot
// satisfy; 0, the default, accepts the configured staleness bound).
func searchParams(r *http.Request) (queries []string, req dash.Request, err error) {
	k, err := intParam(r, "k", 5, 1)
	if err != nil {
		return nil, dash.Request{}, err
	}
	sz, err := intParam(r, "s", 100, 1)
	if err != nil {
		return nil, dash.Request{}, err
	}
	limit, err := intParam(r, "limit", 0, 0)
	if err != nil {
		return nil, dash.Request{}, err
	}
	var minEpoch uint64
	if raw := r.URL.Query().Get("min_epoch"); raw != "" {
		if minEpoch, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return nil, dash.Request{}, fmt.Errorf("invalid min_epoch parameter %q: want a non-negative integer", raw)
		}
	}
	return r.URL.Query()["q"], dash.Request{K: k, SizeThreshold: sz, CandidateLimit: limit, MinEpoch: minEpoch}, nil
}

// Forwarding headers for routed reads. A routed request is re-issued
// byte-for-byte against the chosen peer and its response streamed back
// unmodified, so a forwarded response is byte-identical to a local one;
// hdrForwarded is the single-hop loop guard (a forwarded request is never
// forwarded again), and hdrServedBy tells clients where the read ran.
const (
	hdrForwarded = "X-Dash-Forwarded"
	hdrServedBy  = "X-Dash-Served-By"
)

// proxyClient carries forwarded reads. No global timeout: the handler
// context (search budget + client disconnect) bounds each forward.
var proxyClient = &http.Client{}

// routeSearch consults the engine's placement decision for one read:
// replica handles forward requests they cannot satisfy back to the
// leader, routing leaders place eligible reads on a qualifying replica.
// Requests already forwarded once are always served locally.
func (s *server) routeSearch(r *http.Request, req dash.Request) (string, bool) {
	rt, ok := s.eng.(dash.SearchRouter)
	if !ok || r.Header.Get(hdrForwarded) != "" {
		return "", false
	}
	return rt.RouteSearch(req)
}

// forwardSearch re-issues the request against target and streams the
// response back byte-for-byte. An unreachable target answers 502 — except
// on a replica, where the local (stale but consistent) view is the
// documented degraded answer, so the caller retries locally instead.
func (s *server) forwardSearch(w http.ResponseWriter, r *http.Request, target string) bool {
	url := strings.TrimRight(target, "/") + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, "bad_route_target", err.Error())
		return true
	}
	req.Header = r.Header.Clone()
	req.Header.Set(hdrForwarded, "1")
	resp, err := proxyClient.Do(req)
	if err != nil {
		return false
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			log.Printf("forward body close: %v", cerr)
		}
	}()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	h.Set(hdrServedBy, strings.TrimRight(target, "/"))
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		log.Printf("forward copy: %v", err)
	}
	return true
}

// v1Search answers GET /v1/search?q=…&k=…&s=…&limit=…&timeout_ms=….
// The response body is deterministic for a given index state (timing goes
// to the X-Elapsed header), so the legacy delegate answers byte-identical
// payloads.
func (s *server) v1Search(w http.ResponseWriter, r *http.Request) {
	queries, base, err := searchParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	if len(queries) == 0 || queries[0] == "" {
		writeError(w, http.StatusBadRequest, "invalid_argument", "missing q parameter")
		return
	}
	ctx, cancel, err := s.requestContext(r, s.cfg.searchTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	defer cancel()
	base.Keywords = strings.Fields(queries[0])
	if target, route := s.routeSearch(r, base); route && s.forwardSearch(w, r, target) {
		return
	}
	start := time.Now()
	results, status, err := s.search(ctx, base)
	w.Header().Set("X-Cache", string(status))
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	w.Header().Set("X-Elapsed", time.Since(start).Round(time.Microsecond).String())
	writeJSON(w, map[string]any{
		"query":   queries[0],
		"count":   len(results),
		"results": pagesJSON(results),
	})
}

// search runs one query through the handle, reporting the cache outcome:
// handles opened with a result cache answer hit/miss per request, others
// always "bypass" — so the X-Cache header is present either way and a
// client can tell "no cache configured" from "missed".
func (s *server) search(ctx context.Context, req dash.Request) ([]dash.Result, dash.CacheStatus, error) {
	if cs, ok := s.eng.(dash.CachedSearcher); ok {
		return cs.SearchStatus(ctx, req)
	}
	results, err := s.eng.Search(ctx, req)
	return results, dash.CacheBypass, err
}

// searchBatch is search's batch form; the aggregate status is "hit" only
// when every entry was answered from the cache.
func (s *server) searchBatch(ctx context.Context, reqs []dash.Request) ([]dash.BatchResult, dash.CacheStatus) {
	if cs, ok := s.eng.(dash.CachedSearcher); ok {
		return cs.SearchBatchStatus(ctx, reqs)
	}
	return s.eng.SearchBatch(ctx, reqs), dash.CacheBypass
}

// v1SearchBatch answers GET /v1/search:batch?q=…&q=…&k=…&s=… — every q is
// one search, all pinned to the same index state via SearchBatch. Per-query
// engine failures are reported per entry; a request-level cancellation or
// deadline fails the whole call with 499/504.
func (s *server) v1SearchBatch(w http.ResponseWriter, r *http.Request) {
	queries, base, err := searchParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	if len(queries) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_argument", "missing q parameters")
		return
	}
	ctx, cancel, err := s.requestContext(r, s.cfg.searchTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	defer cancel()
	if target, route := s.routeSearch(r, base); route && s.forwardSearch(w, r, target) {
		return
	}
	reqs := make([]dash.Request, len(queries))
	for i, q := range queries {
		reqs[i] = base
		reqs[i].Keywords = strings.Fields(q)
	}
	start := time.Now()
	batch, status := s.searchBatch(ctx, reqs)
	w.Header().Set("X-Cache", string(status))
	// A deadline or disconnect that actually cost results shows up in the
	// per-entry errors (abandoned slots carry ctx.Err()); a deadline that
	// fires after the last slot completed lost nothing, so re-polling ctx
	// here would throw away a fully successful batch. Fail the whole call
	// only when some entry was genuinely cut short by the context — or
	// when admission control shed the batch outright (every slot carries
	// ErrOverloaded, which must answer 503, not a 200 of error entries).
	for _, br := range batch {
		if br.Err != nil && (errors.Is(br.Err, context.DeadlineExceeded) || errors.Is(br.Err, context.Canceled) || errors.Is(br.Err, dash.ErrOverloaded)) {
			s.writeEngineError(w, br.Err)
			return
		}
	}
	type entryJSON struct {
		Query   string     `json:"query"`
		Error   string     `json:"error,omitempty"`
		Results []pageJSON `json:"results"`
	}
	entries := make([]entryJSON, len(batch))
	for i, br := range batch {
		entries[i].Query = queries[i]
		if br.Err != nil {
			entries[i].Error = br.Err.Error()
			entries[i].Results = []pageJSON{}
			continue
		}
		entries[i].Results = pagesJSON(br.Results)
	}
	w.Header().Set("X-Elapsed", time.Since(start).Round(time.Microsecond).String())
	writeJSON(w, map[string]any{"queries": entries})
}

// v1AdminStats answers GET /v1/admin/stats with the unified EngineStats
// shape (topology, aggregate counters, per-shard detail when sharded).
// Durable handles fill the "durability" block themselves — journal,
// checkpoint, and recovery counters plus the health state machine — so
// without -data-dir the field is omitted and legacy payloads stay
// byte-identical.
func (s *server) v1AdminStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.Stats())
}

// v1AdminApply answers POST /v1/admin/apply: explicit fragment changes
// and/or targeted partition re-crawls, optionally batched into one
// publish. Malformed JSON is a 400; a well-formed request the engine
// cannot apply is a 422.
func (s *server) v1AdminApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST a JSON delta")
		return
	}
	// No default budget for maintenance: only an explicit ?timeout_ms=
	// bounds an apply (see requestContext).
	ctx, cancel, err := s.requestContext(r, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	defer cancel()
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", fmt.Sprintf("bad delta JSON: %v", err))
		return
	}
	stats, err := s.handleApply(ctx, req)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeJSON(w, stats)
}

// changeJSON is one explicit fragment mutation with precomputed statistics.
type changeJSON struct {
	Op    string           `json:"op"` // insert | remove | update
	ID    []string         `json:"id"` // selection values, WHERE order
	Terms map[string]int64 `json:"terms,omitempty"`
	Total int64            `json:"total,omitempty"`
}

// deltaRequest is one delta's worth of maintenance: explicit fragment
// changes and/or partitions to re-crawl.
type deltaRequest struct {
	Changes []changeJSON `json:"changes"`
	// Recrawl lists fragment identifiers whose partitions should be
	// re-executed against the database; the op (insert/remove/update) is
	// derived from what the partition and the index currently hold.
	Recrawl [][]string `json:"recrawl"`
}

// applyRequest is the /v1/admin/apply body: one delta at the top level,
// and/or a batch of deltas coalesced into a single publish.
type applyRequest struct {
	deltaRequest
	// Batch holds additional deltas. When present, everything in the
	// request — the top-level delta included — is folded into one
	// published snapshot (changes to the same fragment coalesce; see
	// dash.Maintainer.ApplyBatch).
	Batch []deltaRequest `json:"batch"`
	// Mode selects deferred maintenance: "" (or "apply") publishes now,
	// "queue" buffers the request's explicit changes for a later flush
	// without publishing, and "flush" publishes everything queued so far as
	// one coalesced batch. Queued deltas flow through the same (journaled,
	// when durable) publish path at flush time.
	Mode string `json:"mode,omitempty"`
}

// handleApply validates, derives, and applies one admin maintenance
// request through the Maintainer contract. The whole request — derivation
// included — runs under the engine's maintenance serialization. The
// deferred modes ("queue"/"flush") require a topology implementing
// dash.Queuer — both live topologies do.
func (s *server) handleApply(ctx context.Context, req applyRequest) (any, error) {
	entries := append([]deltaRequest{req.deltaRequest}, req.Batch...)
	var (
		deltas []dash.Delta
		ids    []dash.FragmentID
		empty  = true
	)
	for _, e := range entries {
		if len(e.Changes) == 0 && len(e.Recrawl) == 0 {
			continue
		}
		empty = false
		d, err := parseDelta(e.Changes, s.kinds)
		if err != nil {
			return nil, err
		}
		if len(d.Changes) > 0 {
			deltas = append(deltas, d)
		}
		for _, raw := range e.Recrawl {
			id, err := parseID(raw, s.kinds)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
	}
	switch req.Mode {
	case "", "apply":
	case "queue":
		q, ok := s.eng.(dash.Queuer)
		if !ok {
			return nil, errors.New("serving topology does not support queued deltas")
		}
		if len(ids) > 0 {
			return nil, errors.New(`"mode":"queue" takes explicit changes only: a recrawl derives against the current index, which defeats deferral`)
		}
		if empty {
			return nil, errors.New("empty delta: provide changes to queue")
		}
		n := 0
		for _, d := range deltas {
			n = q.Queue(d)
		}
		return map[string]any{"queued": len(deltas), "pending": n}, nil
	case "flush":
		q, ok := s.eng.(dash.Queuer)
		if !ok {
			return nil, errors.New("serving topology does not support queued deltas")
		}
		if !empty {
			return nil, errors.New(`"mode":"flush" takes no deltas: it publishes what is already queued`)
		}
		return q.Flush(ctx)
	default:
		return nil, fmt.Errorf("unknown mode %q: want apply, queue, or flush", req.Mode)
	}
	if empty {
		return nil, errors.New("empty delta: provide changes, recrawl, and/or batch")
	}
	if len(req.Batch) > 0 {
		// Batch mode: every delta folds into one published snapshot.
		return s.eng.RecrawlBatch(ctx, s.db, ids, deltas)
	}
	var extra dash.Delta
	if len(deltas) > 0 {
		extra = deltas[0]
	}
	return s.eng.RecrawlWith(ctx, s.db, ids, extra)
}

// parseDelta converts explicit JSON changes into a typed delta.
func parseDelta(changes []changeJSON, kinds []relation.Kind) (dash.Delta, error) {
	var d dash.Delta
	for _, ch := range changes {
		id, err := parseID(ch.ID, kinds)
		if err != nil {
			return dash.Delta{}, err
		}
		fc := dash.FragmentChange{ID: id, TermCounts: ch.Terms, TotalTerms: ch.Total}
		switch ch.Op {
		case "insert":
			fc.Op = dash.OpInsertFragment
		case "remove":
			fc.Op = dash.OpRemoveFragment
		case "update":
			fc.Op = dash.OpUpdateFragment
		default:
			return dash.Delta{}, fmt.Errorf("unknown op %q", ch.Op)
		}
		d.Changes = append(d.Changes, fc)
	}
	return d, nil
}

// parseID converts string selection values into a typed fragment
// identifier using the query's selection-attribute kinds.
func parseID(raw []string, kinds []relation.Kind) (dash.FragmentID, error) {
	if len(raw) != len(kinds) {
		return nil, fmt.Errorf("id %v has %d values, want %d", raw, len(raw), len(kinds))
	}
	id := make(dash.FragmentID, len(raw))
	for i, s := range raw {
		v, err := relation.ParseAs(s, kinds[i])
		if err != nil {
			return nil, fmt.Errorf("id value %q: %w", s, err)
		}
		id[i] = v
	}
	return id, nil
}

// intParam reads an integer query parameter of at least min, returning
// def when it is absent. A malformed or out-of-range value is an error
// naming the parameter, which handlers surface as HTTP 400 — silently
// substituting the default would serve wrong-shaped results for a typo'd
// request.
func intParam(r *http.Request, name string, def, min int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < min {
		kind := "positive"
		if min == 0 {
			kind = "non-negative"
		}
		return 0, fmt.Errorf("invalid %s parameter %q: want a %s integer", name, raw, kind)
	}
	return n, nil
}

var resultsTemplate = template.Must(template.New("results").Parse(`<!DOCTYPE html>
<html><head><title>Dash results for {{.Query}}</title></head><body>
<h1>Dash: db-pages for “{{.Query}}”</h1>
<ol>
{{range .Results}}<li><a href="{{.Href}}">{{.Label}}</a> — score {{printf "%.6f" .Score}}, {{.Size}} keywords</li>
{{end}}</ol>
<p>{{.Elapsed}} over {{.Fragments}} fragments (epoch {{.Epoch}})</p>
</body></html>
`))

var homeTemplate = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>Dash</title></head><body>
<h1>Dash: search db-pages</h1>
<form action="/" method="get">
<input type="text" name="q" placeholder="keywords…" autofocus>
<input type="submit" value="Search">
</form>
<p>JSON API under <code>/v1</code>: <code>/v1/search?q=…</code>,
<code>/v1/search:batch?q=…&amp;q=…</code>, <code>/v1/admin/stats</code>,
<code>/v1/admin/apply</code>.</p>
</body></html>
`))

type resultRow struct {
	Href  string
	Label string
	Score float64
	Size  int64
}

// home renders the human demo page: a search form at /, results for /?q=….
func (s *server) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, "not_found", "no such route (JSON API lives under /v1)")
		return
	}
	q := r.URL.Query().Get("q")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if q == "" {
		if err := homeTemplate.Execute(w, nil); err != nil {
			log.Printf("render: %v", err)
		}
		return
	}
	queries, base, err := searchParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := s.requestContext(r, s.cfg.searchTimeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	base.Keywords = strings.Fields(queries[0])
	start := time.Now()
	results, err := s.eng.Search(ctx, base)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return
	}
	rows := make([]resultRow, 0, len(results))
	for _, res := range results {
		rows = append(rows, resultRow{
			// Rewrite the application's base URL onto this server
			// so links work in the demo.
			Href:  "/app?" + res.QueryString,
			Label: res.URL,
			Score: res.Score,
			Size:  res.Size,
		})
	}
	// The portable Handle contract has no snapshot pinning, so the
	// footer's fragment count and epoch describe the serving index around
	// the request, not the exact versions the search pinned — a publish
	// landing mid-request can skew them by one version. The JSON API
	// carries no such footer; this is demo-page garnish.
	st := s.eng.Stats()
	err = resultsTemplate.Execute(w, map[string]any{
		"Query":     q,
		"Results":   rows,
		"Elapsed":   time.Since(start).Round(time.Microsecond).String(),
		"Fragments": st.Fragments,
		"Epoch":     st.MaxEpoch,
	})
	if err != nil {
		log.Printf("render: %v", err)
	}
}
