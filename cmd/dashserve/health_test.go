package main

// Health/readiness surface tests: liveness vs readiness semantics,
// degraded-mode serving over HTTP (reads 200, writes 503 with the typed
// code and a prober-derived Retry-After), the shutting-down drain, and
// the Retry-After arithmetic for 429/503 backpressure responses.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	dash "repro"
	"repro/internal/faultfs"
	"repro/internal/harness"
	"repro/internal/relation"
)

// testFaultServer builds the dashserve surface over a durable fooddb
// engine writing through a fault injector, returning the pieces the
// health tests drive: the handler, the server (for draining and the
// Retry-After helpers), the engine handle, and the injector.
func testFaultServer(t *testing.T, extra ...dash.Option) (http.Handler, *server, dash.Handle, *faultfs.Injector) {
	t.Helper()
	db, app, err := harness.Fooddb()
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := dash.Build(context.Background(), db, app, dash.BuildOptions{
		Algorithm: dash.AlgReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(faultfs.OS)
	opts := append([]dash.Option{
		dash.WithShards(2),
		dash.WithDataDir(t.TempDir()),
		dash.WithDurableFS(inj),
		dash.WithDurabilityRetry(dash.DurabilityRetryPolicy{
			MaxRetries:       1,
			Backoff:          time.Millisecond,
			MaxBackoff:       2 * time.Millisecond,
			FailureThreshold: 2,
			ProbeInterval:    10 * time.Millisecond,
			MaxProbeInterval: 25 * time.Millisecond,
		}),
	}, extra...)
	engine, err := dash.Open(context.Background(), idx, app, opts...)
	if err != nil {
		t.Fatal(err)
	}
	mux, srv := newMux(engine, app, db, bound.SelAttrKinds(), serveConfig{searchTimeout: 5 * time.Second})
	return mux, srv, engine, inj
}

// degradeEngine breaks the injected disk and applies writes until the
// engine trips to degraded.
func degradeEngine(t *testing.T, h dash.Handle, inj *faultfs.Injector) {
	t.Helper()
	health := h.(dash.DurabilityHealth)
	inj.Break(nil)
	d := dash.Delta{Changes: []dash.FragmentChange{{
		Op: dash.OpUpdateFragment, ID: dash.FragmentID{relation.String("American"), relation.Int(10)},
		TermCounts: map[string]int64{"burger": 9}, TotalTerms: 9,
	}}}
	for i := 0; health.DurabilityState() != dash.DurabilityDegraded; i++ {
		if _, err := h.Apply(context.Background(), d); err == nil {
			t.Fatal("apply succeeded on a broken disk")
		}
		if i > 10 {
			t.Fatalf("engine did not degrade after %d failed applies", i)
		}
	}
}

// bodyStatus decodes the {"status": ...} readiness body.
func bodyStatus(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readiness body not JSON: %v (%q)", err, rec.Body.String())
	}
	return body.Status
}

// TestHealthzReadyzLifecycle drives the full probe lifecycle: ready while
// healthy, degraded-but-200 while durability is lost (liveness unmoved),
// ready again after recovery, and 503 shutting_down once draining.
func TestHealthzReadyzLifecycle(t *testing.T) {
	mux, srv, engine, inj := testFaultServer(t)
	health := engine.(dash.DurabilityHealth)

	if rec := get(t, mux, "/v1/healthz"); rec.Code != http.StatusOK || bodyStatus(t, rec) != "ok" {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, mux, "/v1/readyz"); rec.Code != http.StatusOK || bodyStatus(t, rec) != "ready" {
		t.Fatalf("readyz: %d %q", rec.Code, rec.Body.String())
	}

	degradeEngine(t, engine, inj)
	rec := get(t, mux, "/v1/readyz")
	if rec.Code != http.StatusOK || bodyStatus(t, rec) != "degraded" {
		t.Fatalf("degraded readyz: %d %q, want 200 degraded", rec.Code, rec.Body.String())
	}
	var ready struct {
		NextProbeInMS *int64 `json:"next_probe_in_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil || ready.NextProbeInMS == nil {
		t.Errorf("degraded readyz body %q lacks next_probe_in_ms", rec.Body.String())
	}
	// Liveness is orthogonal: a degraded process must not be restarted.
	if rec := get(t, mux, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Errorf("degraded healthz: %d", rec.Code)
	}

	inj.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for health.DurabilityState() != dash.DurabilityHealthy {
		if time.Now().After(deadline) {
			t.Fatal("engine did not recover")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rec := get(t, mux, "/v1/readyz"); bodyStatus(t, rec) != "ready" {
		t.Fatalf("post-recovery readyz: %q", rec.Body.String())
	}

	srv.markDraining()
	rec = get(t, mux, "/v1/readyz")
	if rec.Code != http.StatusServiceUnavailable || bodyStatus(t, rec) != "shutting_down" {
		t.Fatalf("draining readyz: %d %q, want 503 shutting_down", rec.Code, rec.Body.String())
	}
	// Draining still serves searches (in-flight drain, not a hard stop) and
	// stays live.
	if rec := get(t, mux, "/v1/healthz"); rec.Code != http.StatusOK {
		t.Errorf("draining healthz: %d", rec.Code)
	}
}

// TestDegradedWritesOverHTTP: while durability is degraded, reads serve
// 200, admin stats expose the degraded block, and writes answer 503 with
// the durability_degraded code and a prober-derived Retry-After — then
// recovery restores the write path.
func TestDegradedWritesOverHTTP(t *testing.T) {
	mux, _, engine, inj := testFaultServer(t)
	health := engine.(dash.DurabilityHealth)
	degradeEngine(t, engine, inj)

	// Reads keep serving from published snapshots.
	if rec := get(t, mux, "/v1/search?q=burger&k=2&s=20"); rec.Code != http.StatusOK {
		t.Fatalf("degraded search: %d %q", rec.Code, rec.Body.String())
	}

	upd := `{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":7},"total":7}]}`
	rec := postJSON(t, mux, "/v1/admin/apply", upd)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded apply: %d %q, want 503", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "durability_degraded" {
		t.Errorf("degraded apply code %q, want durability_degraded", code)
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Errorf("degraded apply Retry-After %q, want integer seconds in [1,60]", ra)
	}

	// The stats surface carries the durability block.
	stats := get(t, mux, "/v1/admin/stats")
	var st struct {
		Durability *struct {
			State        string `json:"state"`
			Degradations uint64 `json:"degradations"`
		} `json:"durability"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if st.Durability == nil || st.Durability.State != "degraded" || st.Durability.Degradations != 1 {
		t.Errorf("stats durability block %+v, want degraded/1", st.Durability)
	}

	inj.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for health.DurabilityState() != dash.DurabilityHealthy {
		if time.Now().After(deadline) {
			t.Fatal("engine did not recover")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rec := postJSON(t, mux, "/v1/admin/apply", upd); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery apply: %d %q", rec.Code, rec.Body.String())
	}
}

// TestRetryAfterSeconds pins the clamp arithmetic: never 0 (retry
// storms), never past 60s (client giveups), always whole seconds
// rounded up.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{300 * time.Millisecond, "1"},
		{1001 * time.Millisecond, "2"},
		{59*time.Second + time.Millisecond, "60"},
		{10 * time.Minute, "60"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestRetryAfterFromState: the 429 and overload-503 Retry-After hints are
// derived from live server state — the middleware consults the provided
// pricing func, and overloadRetryAfter reflects the admission EWMA once
// one search has been observed.
func TestRetryAfterFromState(t *testing.T) {
	// Middleware: the 429 hint is whatever the pricing func says.
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler reached past a saturated limiter")
	})
	limiter := newClientLimiter(1)
	if !limiter.acquire("10.0.0.1") { // saturate the client's single slot
		t.Fatal("acquire failed")
	}
	h := withRequestMiddleware(blocked, limiter, nil, func() string { return "7" })
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/search?q=burger", nil)
	req.Header.Set("X-Client-ID", "10.0.0.1")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated client: %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "7" {
		t.Errorf("429 Retry-After = %q, want the priced hint 7", ra)
	}

	// overloadRetryAfter: "1" before any observation, EWMA-derived after.
	mux, srv, _ := muxWithServer(t, dash.WithAdmissionControl(dash.AdmissionOptions{}))
	if got := srv.overloadRetryAfter(); got != "1" {
		t.Errorf("cold overloadRetryAfter = %q, want fallback 1", got)
	}
	if rec := get(t, mux, "/v1/search?q=burger&k=2&s=20"); rec.Code != http.StatusOK {
		t.Fatalf("warmup search: %d", rec.Code)
	}
	st := srv.eng.Stats()
	if st.Admission == nil || st.Admission.EstCostNs == 0 {
		t.Fatal("admission EWMA not seeded by the warmup search")
	}
	want := retryAfterSeconds(time.Duration(st.Admission.EstCostNs))
	if got := srv.overloadRetryAfter(); got != want {
		t.Errorf("overloadRetryAfter = %q, want EWMA-derived %q", got, want)
	}
}

// muxWithServer is testMuxCfg, keeping the server for direct inspection.
func muxWithServer(t *testing.T, extra ...dash.Option) (http.Handler, *server, dash.Handle) {
	t.Helper()
	db, app, err := harness.Fooddb()
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := dash.Build(context.Background(), db, app, dash.BuildOptions{
		Algorithm: dash.AlgReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	engine, err := dash.Open(context.Background(), idx, app,
		append([]dash.Option{dash.WithShards(2)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	mux, srv := newMux(engine, app, db, bound.SelAttrKinds(), serveConfig{searchTimeout: 5 * time.Second})
	return mux, srv, engine
}
