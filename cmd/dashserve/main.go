// Command dashserve hosts the full Dash demo in one process: the target web
// application serving db-pages, and the Dash search endpoint suggesting
// db-page URLs for keyword queries.
//
//	dashserve -addr :8080 -dataset fooddb
//
// Then:
//
//	curl 'http://localhost:8080/app?c=American&l=10&u=15'   # a db-page
//	curl 'http://localhost:8080/search?q=burger&k=2&s=20'   # Dash results
//	curl 'http://localhost:8080/batch?q=burger&q=coffee'    # JSON batch
//
// One search.Engine is shared by every request: net/http serves each
// request on its own goroutine, and the engine's read path is race-free
// (pooled per-goroutine scratch, lock-free index reads), so no
// serialization is needed. /batch additionally fans each request's
// queries out over ParallelSearch.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/crawl"
	"repro/internal/harness"
	"repro/internal/relation"
	"repro/internal/search"
	"repro/internal/tpch"
	"repro/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dashserve:", err)
		os.Exit(1)
	}
}

var resultsTemplate = template.Must(template.New("results").Parse(`<!DOCTYPE html>
<html><head><title>Dash results for {{.Query}}</title></head><body>
<h1>Dash: db-pages for “{{.Query}}”</h1>
<ol>
{{range .Results}}<li><a href="{{.Href}}">{{.Label}}</a> — score {{printf "%.6f" .Score}}, {{.Size}} keywords</li>
{{end}}</ol>
<p>{{.Elapsed}} over {{.Fragments}} fragments</p>
</body></html>
`))

type resultRow struct {
	Href  string
	Label string
	Score float64
	Size  int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("dashserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataset := fs.String("dataset", "fooddb", "fooddb | small | medium | large")
	query := fs.String("query", "Q2", "application query for TPC-H datasets")
	seed := fs.Int64("seed", 42, "dataset generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	db, app, err := setup(*dataset, *query, *seed)
	if err != nil {
		return err
	}
	log.Printf("crawling %s…", db.Name)
	out, _, err := harness.RunCrawl(context.Background(), db, app,
		crawl.AlgIntegrated, crawl.Options{}, *dataset)
	if err != nil {
		return err
	}
	bound, err := app.Bound()
	if err != nil {
		return err
	}
	idx, _, err := harness.BuildGraph(out, bound, app.Name)
	if err != nil {
		return err
	}
	engine := search.New(idx, app)
	log.Printf("index ready: %d fragments, %d keywords", idx.NumFragments(), idx.NumKeywords())

	mux := http.NewServeMux()
	mux.Handle("/app", app.Handler())
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		k := intParam(r, "k", 5)
		s := intParam(r, "s", 100)
		start := time.Now()
		results, err := engine.Search(search.Request{
			Keywords: strings.Fields(q), K: k, SizeThreshold: s,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rows := make([]resultRow, 0, len(results))
		for _, res := range results {
			rows = append(rows, resultRow{
				// Rewrite the application's base URL onto this server
				// so links work in the demo.
				Href:  "/app?" + res.QueryString,
				Label: res.URL,
				Score: res.Score,
				Size:  res.Size,
			})
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		err = resultsTemplate.Execute(w, map[string]any{
			"Query":     q,
			"Results":   rows,
			"Elapsed":   time.Since(start).Round(time.Microsecond).String(),
			"Fragments": idx.NumFragments(),
		})
		if err != nil {
			log.Printf("render: %v", err)
		}
	})

	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		queries := r.URL.Query()["q"]
		if len(queries) == 0 {
			http.Error(w, "missing q parameters", http.StatusBadRequest)
			return
		}
		k := intParam(r, "k", 5)
		s := intParam(r, "s", 100)
		reqs := make([]search.Request, len(queries))
		for i, q := range queries {
			reqs[i] = search.Request{Keywords: strings.Fields(q), K: k, SizeThreshold: s}
		}
		start := time.Now()
		batch := engine.ParallelSearch(reqs, 0)
		type pageJSON struct {
			URL   string  `json:"url"`
			Query string  `json:"query_string"`
			Score float64 `json:"score"`
			Size  int64   `json:"size"`
		}
		type entryJSON struct {
			Query   string     `json:"query"`
			Error   string     `json:"error,omitempty"`
			Results []pageJSON `json:"results"`
		}
		entries := make([]entryJSON, len(batch))
		for i, br := range batch {
			entries[i].Query = queries[i]
			entries[i].Results = make([]pageJSON, 0, len(br.Results))
			if br.Err != nil {
				entries[i].Error = br.Err.Error()
				continue
			}
			for _, res := range br.Results {
				entries[i].Results = append(entries[i].Results, pageJSON{
					URL: res.URL, Query: res.QueryString, Score: res.Score, Size: res.Size,
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		err := json.NewEncoder(w).Encode(map[string]any{
			"elapsed": time.Since(start).String(),
			"queries": entries,
		})
		if err != nil {
			log.Printf("encode: %v", err)
		}
	})

	log.Printf("serving on %s (web app at /app, search at /search?q=…, batch at /batch?q=…&q=…)", *addr)
	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return server.ListenAndServe()
}

func intParam(r *http.Request, name string, def int) int {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

func setup(dataset, query string, seed int64) (*relation.Database, *webapp.Application, error) {
	if dataset == "fooddb" {
		return harness.Fooddb()
	}
	scale, err := tpch.ScaleByName(dataset)
	if err != nil {
		return nil, nil, err
	}
	return harness.Workload{Scale: scale, Seed: seed, Query: query}.Setup()
}
