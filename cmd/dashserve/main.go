// Command dashserve hosts the full Dash demo in one process: the target web
// application serving db-pages, and the Dash search API suggesting db-page
// URLs for keyword queries.
//
//	dashserve -addr :8080 -dataset fooddb -shards 4
//
// Then:
//
//	curl 'http://localhost:8080/app?c=American&l=10&u=15'      # a db-page
//	curl 'http://localhost:8080/v1/search?q=burger&k=2&s=20'   # Dash results
//	curl 'http://localhost:8080/v1/search:batch?q=burger&q=coffee'
//	curl 'http://localhost:8080/v1/admin/stats'                # serving index stats
//	curl -d '{"recrawl":[["American","9"]]}' http://localhost:8080/v1/admin/apply
//	curl -d '{"batch":[{"changes":[...]},{"recrawl":[...]}]}' \
//	     http://localhost:8080/v1/admin/apply                  # one publish
//	open 'http://localhost:8080/?q=burger'                     # human demo page
//
// # The /v1 JSON API
//
// Every /v1 endpoint speaks JSON and maps failures to a structured error
// envelope {"error":{"code","message"}}: 400 invalid_argument for
// malformed syntax (bad numeric parameters, unparseable JSON), 422
// validation_failed for well-formed requests the engine rejects (no
// keywords, unknown delta op, a change that cannot apply), 499
// client_closed_request when the caller goes away mid-request, 504
// deadline_exceeded when the per-request budget runs out, 503 overloaded
// (with Retry-After) when admission control sheds a search the engine
// cannot serve inside its deadline, and 429 too_many_requests (with
// Retry-After) when one client exceeds its -per-client-inflight cap.
// Searches are
// cancellable end to end: the handler context carries a deadline —
// -search-timeout is the server ceiling, ?timeout_ms= may shrink a
// request's budget below it (never raise it) — and
// the engine stops cooperatively when it fires, so a runaway hot-keyword
// query cannot hold the connection past its budget.
//
// The pre-/v1 routes (/search, /batch, /admin/stats, /admin/apply) remain
// as thin delegates to the same handlers and answer with a
// "Deprecation: true" header plus a Link to their successor.
//
// # Serving under load
//
// -cache-bytes (default 32 MiB) puts an epoch-keyed result cache in front
// of the engine: hot queries are answered without re-running the search,
// responses are byte-identical to uncached ones (the cache key pins the
// exact snapshot epochs), and a publish invalidates only the entries it
// supersedes. Search responses carry X-Cache: hit|miss|bypass, the
// access log records it, and /v1/admin/stats grows a "cache" block.
// -max-inflight adds deadline-aware admission control (searches that
// cannot finish inside their remaining budget, or beyond the cap, shed
// fast with 503), and -per-client-inflight caps each client's concurrent
// searches in the middleware (429). See ARCHITECTURE.md "Serving under
// load".
//
// Every request passes one middleware: an X-Request-ID response header, an
// access-log line, and panic-to-500 recovery — a panicking handler answers
// a structured 500 instead of killing the connection silently.
//
// Every request pins immutable snapshots (one atomic load per shard), so
// searches never block on or get torn by index maintenance. /v1/admin/apply
// folds changes into the next snapshot — explicit fragment changes and/or a
// targeted re-crawl of the named partitions — and publishes atomically; its
// batch mode coalesces a list of deltas into a single publish. A background
// goroutine periodically garbage-collects tombstoned refs by publishing a
// compacted snapshot once enough removals accumulate.
//
// The index is served through dash.Open — the engine behind the handlers is
// the portable Searcher/Maintainer contract, so the handlers never name a
// topology: -shards N picks the sharded engine (default 1, the single live
// index), and /v1/admin/stats reports whichever shape is serving.
//
// # Durable serving
//
// -data-dir makes serving crash-safe: every published delta is journaled
// to a per-shard write-ahead log before the snapshot swap acknowledges it,
// and each shard's state is checkpointed as a versioned, checksummed
// snapshot generation. On a fresh directory the index is built from
// -dataset and seeded to disk; on an initialized directory the crawl is
// skipped entirely and serving resumes from the recovered state — exactly
// the last acknowledged publish, surviving kill -9. -sync picks the
// journal discipline ("always" fsyncs inside every publish, the default;
// "interval" batches fsyncs every -sync-interval), /v1/admin/apply's
// "mode":"queue"/"flush" defers publishes into one journaled batch, and
// /v1/admin/stats grows a "durability" block (journal, checkpoint, and
// recovery counters) when -data-dir is set.
//
// # Degraded serving & health
//
// With -data-dir the server rides out disk faults instead of crashing:
// transient journal/checkpoint failures retry with capped exponential
// backoff (-durability-retries), and after -durability-failure-threshold
// consecutive failures the server degrades — searches keep serving from
// published snapshots, while /v1/admin/apply answers 503 with code
// "durability_degraded" and a Retry-After derived from the background
// prober's next disk re-test (-durability-probe-interval, backing off).
// A successful probe triggers automatic recovery: the poisoned journal is
// sealed at the last acknowledged record, a fresh checkpoint re-baselines
// every shard, and writes resume without a restart.
//
// Two probe endpoints expose this: /v1/healthz is pure liveness (200
// whenever the process answers HTTP — degradation does not fail it), and
// /v1/readyz is readiness (200 "ready" normally; 200 "degraded" while
// durability is lost, since reads still serve; 503 "shutting_down" once
// the drain starts). The access log carries durability=healthy|degraded
// per request and /v1/admin/stats' "durability" block reports the state
// machine's counters (retries, degradations, probes, recoveries).
//
// -pprof opts into net/http/pprof under /debug/pprof/ for profiling the
// serving path; it is off by default so the profiling surface is never
// exposed unintentionally.
//
// The server shuts down gracefully on SIGINT/SIGTERM: readiness flips to
// shutting-down first, then in-flight searches drain before the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	dash "repro"
	"repro/internal/crawl"
	"repro/internal/harness"
	"repro/internal/relation"
	"repro/internal/tpch"
	"repro/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dashserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dashserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataset := fs.String("dataset", "fooddb", "fooddb | small | medium | large")
	query := fs.String("query", "Q2", "application query for TPC-H datasets")
	seed := fs.Int64("seed", 42, "dataset generator seed")
	gcInterval := fs.Duration("gc-interval", 30*time.Second, "snapshot GC period (0 disables)")
	gcRatio := fs.Float64("gc-ratio", 0.25, "tombstoned-ref share that triggers snapshot GC")
	shards := fs.Int("shards", 1, "serving index shard count (partitioned by equality-group key)")
	searchTimeout := fs.Duration("search-timeout", 10*time.Second,
		"per-request search budget (0 disables; ?timeout_ms= may shrink it per request, never raise it)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in profiling)")
	dataDir := fs.String("data-dir", "",
		"durable data directory: publishes journal to disk before acknowledging and restarts recover the last acknowledged state (empty: in-memory only)")
	syncMode := fs.String("sync", "always", "journal sync policy with -data-dir: always | interval")
	syncEvery := fs.Duration("sync-interval", 100*time.Millisecond,
		"background journal fsync period for -sync interval")
	cacheBytes := fs.Int64("cache-bytes", 32<<20,
		"epoch-keyed result cache byte budget (0 disables; responses carry X-Cache: hit|miss|bypass)")
	maxInflight := fs.Int("max-inflight", 0,
		"process-wide concurrent search cap with deadline-aware shedding: excess or doomed searches answer 503 + Retry-After (0 disables)")
	perClient := fs.Int("per-client-inflight", 0,
		"concurrent search cap per client (X-Client-ID header, else remote host): excess answers 429 + Retry-After (0 disables)")
	durRetries := fs.Int("durability-retries", 2,
		"retries per failed durable append/checkpoint with -data-dir (capped exponential backoff; negative disables)")
	durThreshold := fs.Int("durability-failure-threshold", 2,
		"consecutive post-retry durable failures before the server degrades (reads keep serving, writes answer 503 durability_degraded)")
	durProbe := fs.Duration("durability-probe-interval", 500*time.Millisecond,
		"first degraded-mode disk re-probe delay; failed probes back off exponentially")
	replicaOf := fs.String("replica-of", "",
		"leader base URL: serve as a journal-tailing read replica — bootstrap from the leader's newest snapshots, tail its journal, refuse writes (incompatible with -data-dir)")
	replicas := fs.String("replicas", "",
		"comma-separated replica base URLs for leader-side bounded-staleness read routing (requires -data-dir)")
	stalenessEpochs := fs.Int("staleness-epochs", dash.DefaultStalenessBound,
		"bounded-staleness contract: max epochs a replica may lag and still serve reads with no explicit min_epoch (negative: unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})

	db, app, err := setup(*dataset, *query, *seed)
	if err != nil {
		return err
	}
	bound, err := app.Bound()
	if err != nil {
		return err
	}

	var engine dash.Handle
	if *replicaOf != "" {
		// Replica mode: no crawl, no local durability — the serving state
		// is a mirror of the leader's, bootstrapped from its newest
		// snapshots and kept current by tailing its journal. The same
		// -dataset/-query/-seed must be given as the leader's so URL
		// formulation agrees.
		if *dataDir != "" {
			return fmt.Errorf("-replica-of is incompatible with -data-dir: a replica mirrors the leader's durable state instead of keeping its own")
		}
		if *replicas != "" {
			return fmt.Errorf("-replicas is a leader-side flag; a -replica-of process routes unsatisfiable reads back to its leader already")
		}
		log.Printf("bootstrapping replica of %s…", *replicaOf)
		engine, err = dash.OpenReplica(context.Background(), *replicaOf, app,
			dash.WithReplicaStaleness(*stalenessEpochs),
			dash.WithReplicaLog(log.Printf))
		if err != nil {
			return err
		}
	} else {
		// The handlers only ever see the Searcher/Maintainer contract; the
		// shard count is a construction-time concern. With -data-dir an
		// initialized directory recovers the persisted index — no crawl at all,
		// and its committed shard count pins the topology unless -shards
		// explicitly disagrees (which is an error, not a silent repartition).
		var opts []dash.Option
		recovering := *dataDir != "" && dash.IsInitialized(*dataDir)
		if !recovering || shardsSet {
			opts = append(opts, dash.WithShards(*shards))
		}
		if *dataDir != "" {
			opts = append(opts,
				dash.WithDataDir(*dataDir),
				dash.WithSyncPolicy(dash.SyncPolicy{Mode: dash.SyncMode(*syncMode), Interval: *syncEvery}),
				dash.WithDurabilityRetry(dash.DurabilityRetryPolicy{
					MaxRetries:       *durRetries,
					FailureThreshold: *durThreshold,
					ProbeInterval:    *durProbe,
				}))
		}
		if *cacheBytes > 0 {
			opts = append(opts, dash.WithResultCache(*cacheBytes))
		}
		if *maxInflight > 0 {
			opts = append(opts, dash.WithAdmissionControl(dash.AdmissionOptions{MaxInFlight: *maxInflight}))
		}
		if *replicas != "" {
			urls := strings.Split(*replicas, ",")
			opts = append(opts, dash.WithReplicas(urls...), dash.WithStalenessBound(*stalenessEpochs))
		}
		var idx *dash.Index
		if recovering {
			log.Printf("recovering index from %s…", *dataDir)
		} else {
			log.Printf("crawling %s…", db.Name)
			out, _, err := harness.RunCrawl(context.Background(), db, app,
				crawl.AlgIntegrated, crawl.Options{}, *dataset)
			if err != nil {
				return err
			}
			idx, _, err = harness.BuildGraph(out, bound, app.Name)
			if err != nil {
				return err
			}
		}
		engine, err = dash.Open(context.Background(), idx, app, opts...)
		if err != nil {
			return err
		}
	}
	if closer, ok := engine.(io.Closer); ok {
		// Closing a durable engine flushes unsynced journal appends; an
		// error here means acknowledged applies may not have reached disk.
		defer func() {
			if err := closer.Close(); err != nil {
				log.Printf("engine close: %v", err)
			}
		}()
	}
	st := engine.Stats()
	log.Printf("index ready: %d fragments, topology %s over %d shard(s)",
		st.Fragments, st.Topology, st.Shards)
	if dr, ok := engine.(dash.DurabilityReporter); ok {
		ds := dr.DurabilityStats()
		if ds.Recovered {
			for _, ri := range ds.Recovery {
				log.Printf("recovery: shard %d at epoch %d (snapshot %d, %d journal records replayed, fallback=%v, truncated_tail=%v)",
					ri.Shard, ri.FinalEpoch, ri.SnapshotEpoch, ri.ReplayedRecords, ri.Fallback, ri.TruncatedTail)
			}
		} else {
			log.Printf("durability: seeded fresh data dir %s (%d shard(s), sync=%s)",
				ds.Dir, ds.Shards, ds.SyncMode)
		}
	}

	handler, srv := newMux(engine, app, db, bound.SelAttrKinds(), serveConfig{
		withPprof:         *pprofFlag,
		searchTimeout:     *searchTimeout,
		perClientInFlight: *perClient,
	})

	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Snapshot GC: removals leave tombstoned refs in every later version;
	// once their share crosses the threshold, publish a compacted snapshot.
	// Replicas never compact locally: a local GC would advance epochs
	// outside the leader's sequence — they inherit compaction through
	// re-bootstrap instead.
	if *gcInterval > 0 && *replicaOf == "" {
		go func() {
			ticker := time.NewTicker(*gcInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					ran, err := engine.CompactIfNeeded(ctx, *gcRatio)
					if err != nil {
						log.Printf("snapshot gc: %v", err)
					} else if ran > 0 {
						st := engine.Stats()
						log.Printf("snapshot gc: %d shard(s) compacted to %d fragments (max epoch %d)",
							ran, st.Fragments, st.MaxEpoch)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (web app at /app, JSON API under /v1, demo page at /?q=…)", *addr)
		errc <- server.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests…")
	// Flip readiness first so balancers stop routing new traffic while the
	// in-flight requests drain (liveness stays green throughout).
	srv.markDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

func setup(dataset, query string, seed int64) (*relation.Database, *webapp.Application, error) {
	if dataset == "fooddb" {
		return harness.Fooddb()
	}
	scale, err := tpch.ScaleByName(dataset)
	if err != nil {
		return nil, nil, err
	}
	return harness.Workload{Scale: scale, Seed: seed, Query: query}.Setup()
}
