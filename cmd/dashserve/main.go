// Command dashserve hosts the full Dash demo in one process: the target web
// application serving db-pages, and the Dash search endpoint suggesting
// db-page URLs for keyword queries.
//
//	dashserve -addr :8080 -dataset fooddb -shards 4
//
// Then:
//
//	curl 'http://localhost:8080/app?c=American&l=10&u=15'   # a db-page
//	curl 'http://localhost:8080/search?q=burger&k=2&s=20'   # Dash results
//	curl 'http://localhost:8080/batch?q=burger&q=coffee'    # JSON batch
//	curl 'http://localhost:8080/admin/stats'                # serving index stats
//	curl -d '{"recrawl":[["American","9"]]}' http://localhost:8080/admin/apply
//	curl -d '{"batch":[{"changes":[...]},{"recrawl":[...]}]}' \
//	     http://localhost:8080/admin/apply                  # one publish
//
// Every request pins immutable snapshots (one atomic load per shard), so
// searches never block on or get torn by index maintenance. /admin/apply folds changes into the next
// snapshot — either explicit fragment changes or a targeted re-crawl of
// the named partitions — and publishes it atomically; its batch mode
// accepts a list of deltas and coalesces them into a single publish
// (changes to the same fragment fold first: an insert a later delta
// removes never touches the index). /admin/stats reports the serving
// epoch, publish counters, and maintenance history. A background goroutine
// periodically garbage-collects tombstoned refs by publishing a compacted
// snapshot once enough removals accumulate.
//
// Malformed numeric query parameters (k, s) are rejected with HTTP 400
// naming the offending parameter — a typo'd ?k=abc fails loudly instead of
// quietly serving default-k results.
//
// The index is served through a dash.ShardedLiveEngine: -shards N
// partitions the fragment space by equality-group key across N independent
// publish cycles (default 1), searches scatter-gather over one pinned
// snapshot per shard with corpus-wide IDF, and /admin/apply routes deltas
// to their shards and applies them concurrently. /admin/stats reports the
// aggregate plus each shard's epoch, pending queue, and publish counters.
//
// -pprof opts into net/http/pprof under /debug/pprof/ for profiling the
// serving path; it is off by default so the profiling surface is never
// exposed unintentionally.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight searches
// drain before the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	dash "repro"
	"repro/internal/crawl"
	"repro/internal/harness"
	"repro/internal/relation"
	"repro/internal/search"
	"repro/internal/tpch"
	"repro/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dashserve:", err)
		os.Exit(1)
	}
}

var resultsTemplate = template.Must(template.New("results").Parse(`<!DOCTYPE html>
<html><head><title>Dash results for {{.Query}}</title></head><body>
<h1>Dash: db-pages for “{{.Query}}”</h1>
<ol>
{{range .Results}}<li><a href="{{.Href}}">{{.Label}}</a> — score {{printf "%.6f" .Score}}, {{.Size}} keywords</li>
{{end}}</ol>
<p>{{.Elapsed}} over {{.Fragments}} fragments (epoch {{.Epoch}})</p>
</body></html>
`))

type resultRow struct {
	Href  string
	Label string
	Score float64
	Size  int64
}

func run(args []string) error {
	fs := flag.NewFlagSet("dashserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataset := fs.String("dataset", "fooddb", "fooddb | small | medium | large")
	query := fs.String("query", "Q2", "application query for TPC-H datasets")
	seed := fs.Int64("seed", 42, "dataset generator seed")
	gcInterval := fs.Duration("gc-interval", 30*time.Second, "snapshot GC period (0 disables)")
	gcRatio := fs.Float64("gc-ratio", 0.25, "tombstoned-ref share that triggers snapshot GC")
	shards := fs.Int("shards", 1, "serving index shard count (partitioned by equality-group key)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in profiling)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	db, app, err := setup(*dataset, *query, *seed)
	if err != nil {
		return err
	}
	log.Printf("crawling %s…", db.Name)
	out, _, err := harness.RunCrawl(context.Background(), db, app,
		crawl.AlgIntegrated, crawl.Options{}, *dataset)
	if err != nil {
		return err
	}
	bound, err := app.Bound()
	if err != nil {
		return err
	}
	idx, _, err := harness.BuildGraph(out, bound, app.Name)
	if err != nil {
		return err
	}
	engine, err := dash.NewShardedLiveEngine(idx, app, *shards)
	if err != nil {
		return err
	}
	st := engine.Stats()
	log.Printf("index ready: %d fragments over %d shard(s)", st.Fragments, st.Shards)

	mux := newMux(engine, app, db, bound.SelAttrKinds(), *pprofFlag)

	server := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Snapshot GC: removals leave tombstoned refs in every later version;
	// once their share crosses the threshold, publish a compacted snapshot.
	if *gcInterval > 0 {
		go func() {
			ticker := time.NewTicker(*gcInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					ran, err := engine.CompactIfNeeded(*gcRatio)
					if err != nil {
						log.Printf("snapshot gc: %v", err)
					} else if ran > 0 {
						st := engine.Stats()
						log.Printf("snapshot gc: %d shard(s) compacted to %d fragments (max epoch %d)",
							ran, st.Fragments, st.MaxEpoch)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (web app at /app, search at /search?q=…, batch at /batch?q=…&q=…, admin at /admin/stats and /admin/apply)", *addr)
		errc <- server.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// newMux assembles the demo's HTTP surface over a sharded live engine.
// Split out of run so handler tests can drive it with httptest against a
// small dataset. withPprof opts the net/http/pprof handlers into the mux.
func newMux(engine *dash.ShardedLiveEngine, app *webapp.Application, db *dash.Database, kinds []relation.Kind, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/app", app.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		k, err := intParam(r, "k", 5)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s, err := intParam(r, "s", 100)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		// Pin one snapshot per shard for the whole request so the rendered
		// fragment count and epoch describe exactly the versions searched.
		snaps := engine.Pin()
		results, err := engine.SearchPinned(snaps, search.Request{
			Keywords: strings.Fields(q), K: k, SizeThreshold: s,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fragments, epoch := 0, uint64(0)
		for _, snap := range snaps {
			fragments += snap.NumFragments()
			if e := snap.Epoch(); e > epoch {
				epoch = e
			}
		}
		rows := make([]resultRow, 0, len(results))
		for _, res := range results {
			rows = append(rows, resultRow{
				// Rewrite the application's base URL onto this server
				// so links work in the demo.
				Href:  "/app?" + res.QueryString,
				Label: res.URL,
				Score: res.Score,
				Size:  res.Size,
			})
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		err = resultsTemplate.Execute(w, map[string]any{
			"Query":     q,
			"Results":   rows,
			"Elapsed":   time.Since(start).Round(time.Microsecond).String(),
			"Fragments": fragments,
			"Epoch":     epoch,
		})
		if err != nil {
			log.Printf("render: %v", err)
		}
	})

	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		queries := r.URL.Query()["q"]
		if len(queries) == 0 {
			http.Error(w, "missing q parameters", http.StatusBadRequest)
			return
		}
		k, err := intParam(r, "k", 5)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s, err := intParam(r, "s", 100)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reqs := make([]search.Request, len(queries))
		for i, q := range queries {
			reqs[i] = search.Request{Keywords: strings.Fields(q), K: k, SizeThreshold: s}
		}
		start := time.Now()
		batch := engine.ParallelSearch(reqs, 0)
		type pageJSON struct {
			URL   string  `json:"url"`
			Query string  `json:"query_string"`
			Score float64 `json:"score"`
			Size  int64   `json:"size"`
		}
		type entryJSON struct {
			Query   string     `json:"query"`
			Error   string     `json:"error,omitempty"`
			Results []pageJSON `json:"results"`
		}
		entries := make([]entryJSON, len(batch))
		for i, br := range batch {
			entries[i].Query = queries[i]
			entries[i].Results = make([]pageJSON, 0, len(br.Results))
			if br.Err != nil {
				entries[i].Error = br.Err.Error()
				continue
			}
			for _, res := range br.Results {
				entries[i].Results = append(entries[i].Results, pageJSON{
					URL: res.URL, Query: res.QueryString, Score: res.Score, Size: res.Size,
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		err = json.NewEncoder(w).Encode(map[string]any{
			"elapsed": time.Since(start).String(),
			"queries": entries,
		})
		if err != nil {
			log.Printf("encode: %v", err)
		}
	})

	mux.HandleFunc("/admin/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(engine.Stats()); err != nil {
			log.Printf("encode: %v", err)
		}
	})

	mux.HandleFunc("/admin/apply", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a JSON delta", http.StatusMethodNotAllowed)
			return
		}
		stats, err := handleApply(engine, db, kinds, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(stats); err != nil {
			log.Printf("encode: %v", err)
		}
	})

	return mux
}

// changeJSON is one explicit fragment mutation with precomputed statistics.
type changeJSON struct {
	Op    string           `json:"op"` // insert | remove | update
	ID    []string         `json:"id"` // selection values, WHERE order
	Terms map[string]int64 `json:"terms,omitempty"`
	Total int64            `json:"total,omitempty"`
}

// deltaRequest is one delta's worth of maintenance: explicit fragment
// changes and/or partitions to re-crawl.
type deltaRequest struct {
	Changes []changeJSON `json:"changes"`
	// Recrawl lists fragment identifiers whose partitions should be
	// re-executed against the database; the op (insert/remove/update) is
	// derived from what the partition and the index currently hold.
	Recrawl [][]string `json:"recrawl"`
}

// applyRequest is the /admin/apply body: one delta at the top level,
// and/or a batch of deltas coalesced into a single publish.
type applyRequest struct {
	deltaRequest
	// Batch holds additional deltas. When present, everything in the
	// request — the top-level delta included — is folded into one
	// published snapshot (changes to the same fragment coalesce; see
	// dash.LiveEngine.ApplyBatch).
	Batch []deltaRequest `json:"batch"`
}

// handleApply parses, derives, and applies one admin maintenance request.
func handleApply(engine *dash.ShardedLiveEngine, db *dash.Database, kinds []relation.Kind, r *http.Request) (dash.ShardedApplyStats, error) {
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return dash.ShardedApplyStats{}, fmt.Errorf("bad delta JSON: %w", err)
	}
	entries := append([]deltaRequest{req.deltaRequest}, req.Batch...)
	var (
		deltas []dash.Delta
		ids    []dash.FragmentID
		empty  = true
	)
	for _, e := range entries {
		if len(e.Changes) == 0 && len(e.Recrawl) == 0 {
			continue
		}
		empty = false
		d, err := parseDelta(e.Changes, kinds)
		if err != nil {
			return dash.ShardedApplyStats{}, err
		}
		if len(d.Changes) > 0 {
			deltas = append(deltas, d)
		}
		for _, raw := range e.Recrawl {
			id, err := parseID(raw, kinds)
			if err != nil {
				return dash.ShardedApplyStats{}, err
			}
			ids = append(ids, id)
		}
	}
	if empty {
		return dash.ShardedApplyStats{}, errors.New("empty delta: provide changes, recrawl, and/or batch")
	}
	// The whole request — derivation included — runs under the engine's
	// maintenance lock, serialized with any concurrent admin request.
	if len(req.Batch) > 0 {
		// Batch mode: every delta folds into one published snapshot.
		return engine.RecrawlBatch(db, ids, deltas)
	}
	var extra dash.Delta
	if len(deltas) > 0 {
		extra = deltas[0]
	}
	return engine.RecrawlWith(db, ids, extra)
}

// parseDelta converts explicit JSON changes into a typed delta.
func parseDelta(changes []changeJSON, kinds []relation.Kind) (dash.Delta, error) {
	var d dash.Delta
	for _, ch := range changes {
		id, err := parseID(ch.ID, kinds)
		if err != nil {
			return dash.Delta{}, err
		}
		fc := dash.FragmentChange{ID: id, TermCounts: ch.Terms, TotalTerms: ch.Total}
		switch ch.Op {
		case "insert":
			fc.Op = dash.OpInsertFragment
		case "remove":
			fc.Op = dash.OpRemoveFragment
		case "update":
			fc.Op = dash.OpUpdateFragment
		default:
			return dash.Delta{}, fmt.Errorf("unknown op %q", ch.Op)
		}
		d.Changes = append(d.Changes, fc)
	}
	return d, nil
}

// parseID converts string selection values into a typed fragment
// identifier using the query's selection-attribute kinds.
func parseID(raw []string, kinds []relation.Kind) (dash.FragmentID, error) {
	if len(raw) != len(kinds) {
		return nil, fmt.Errorf("id %v has %d values, want %d", raw, len(raw), len(kinds))
	}
	id := make(dash.FragmentID, len(raw))
	for i, s := range raw {
		v, err := relation.ParseAs(s, kinds[i])
		if err != nil {
			return nil, fmt.Errorf("id value %q: %w", s, err)
		}
		id[i] = v
	}
	return id, nil
}

// intParam reads a positive integer query parameter, returning def when it
// is absent. A malformed or non-positive value is an error naming the
// parameter, which handlers surface as HTTP 400 — silently substituting
// the default would serve wrong-shaped results for a typo'd request.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid %s parameter %q: want a positive integer", name, raw)
	}
	return n, nil
}

func setup(dataset, query string, seed int64) (*relation.Database, *webapp.Application, error) {
	if dataset == "fooddb" {
		return harness.Fooddb()
	}
	scale, err := tpch.ScaleByName(dataset)
	if err != nil {
		return nil, nil, err
	}
	return harness.Workload{Scale: scale, Seed: seed, Query: query}.Setup()
}
