package main

// HTTP-layer replication tests: the /v1/replication mount, min_epoch
// parsing, the replica serving surface (read-only writes, readiness
// report), and bounded-staleness forwarding with its loop guard.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dash "repro"
	"repro/internal/harness"
)

// leaderAndReplicaMux boots a durable leader mux behind a real httptest
// server (the replica needs a live transport to bootstrap over) and a
// replica mux tailing it. Returns both muxes and the leader's base URL.
func leaderAndReplicaMux(t *testing.T, shards int) (leaderMux http.Handler, replicaMux http.Handler, leaderURL string) {
	t.Helper()
	db, app, err := harness.Fooddb()
	if err != nil {
		t.Fatal(err)
	}
	idx, _, err := dash.Build(context.Background(), db, app, dash.BuildOptions{Algorithm: dash.AlgReference})
	if err != nil {
		t.Fatal(err)
	}
	bound0, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	leaderEng, err := dash.Open(context.Background(), idx, app,
		dash.WithShards(shards), dash.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leaderEng.(interface{ Close() error }).Close() })
	leaderMux, _ = newMux(leaderEng, app, db, bound0.SelAttrKinds(), serveConfig{searchTimeout: 5 * time.Second})
	srv := httptest.NewServer(leaderMux)
	t.Cleanup(srv.Close)
	rep, err := dash.OpenReplica(context.Background(), srv.URL, app,
		dash.WithReplicaPoll(100*time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	replicaMux, _ = newMux(rep, app, db, bound.SelAttrKinds(), serveConfig{searchTimeout: 5 * time.Second})
	waitServeConverged(t, leaderMux, replicaMux)
	return leaderMux, replicaMux, srv.URL
}

// waitServeConverged polls both admin stats until the replica's applied
// epochs reach the leader's durable epochs.
func waitServeConverged(t *testing.T, leaderMux, replicaMux http.Handler) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var leader struct {
			Durability *struct {
				PerShard []struct {
					DurableEpoch uint64 `json:"durable_epoch"`
				} `json:"per_shard"`
			} `json:"durability"`
		}
		var replica struct {
			Replication *struct {
				PerShard []struct {
					AppliedEpoch uint64 `json:"applied_epoch"`
				} `json:"per_shard"`
			} `json:"replication"`
		}
		if err := json.Unmarshal(get(t, leaderMux, "/v1/admin/stats").Body.Bytes(), &leader); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(get(t, replicaMux, "/v1/admin/stats").Body.Bytes(), &replica); err != nil {
			t.Fatal(err)
		}
		ok := leader.Durability != nil && replica.Replication != nil &&
			len(leader.Durability.PerShard) == len(replica.Replication.PerShard)
		if ok {
			for i := range leader.Durability.PerShard {
				if replica.Replication.PerShard[i].AppliedEpoch != leader.Durability.PerShard[i].DurableEpoch {
					ok = false
					break
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("serving pair never converged:\nleader %+v\nreplica %+v", leader, replica)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationMount: durable engines expose /v1/replication; in-memory
// engines do not.
func TestReplicationMount(t *testing.T) {
	mux, _ := durableMux(t)
	rec := get(t, mux, dash.ReplicationPrefix+"/manifest")
	if rec.Code != http.StatusOK {
		t.Fatalf("manifest: status %d, body %q", rec.Code, rec.Body.String())
	}
	var man struct {
		Shards   int `json:"shards"`
		PerShard []struct {
			DurableEpoch uint64 `json:"durable_epoch"`
			Snapshots    []struct {
				Epoch uint64 `json:"epoch"`
				Size  int64  `json:"size"`
			} `json:"snapshots"`
		} `json:"per_shard"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &man); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if man.Shards != 2 || len(man.PerShard) != 2 || len(man.PerShard[0].Snapshots) == 0 {
		t.Errorf("manifest = %+v, want 2 shards with snapshots", man)
	}

	plain, _ := testMux(t)
	if rec := get(t, plain, dash.ReplicationPrefix+"/manifest"); rec.Code != http.StatusNotFound {
		t.Errorf("in-memory engine serves replication: status %d", rec.Code)
	}
}

// TestSearchMinEpochParam: min_epoch parses into the request and rejects
// garbage with a 400 naming the parameter. A satisfiable bound on a
// non-routing engine is a no-op.
func TestSearchMinEpochParam(t *testing.T) {
	mux, _ := testMux(t)
	if rec := get(t, mux, "/v1/search?q=burger&k=2&s=20&min_epoch=1"); rec.Code != http.StatusOK {
		t.Errorf("min_epoch=1: status %d, body %q", rec.Code, rec.Body.String())
	}
	rec := get(t, mux, "/v1/search?q=burger&min_epoch=-3")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("min_epoch=-3: status %d, want 400", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "min_epoch parameter") {
		t.Errorf("min_epoch error %q does not name the parameter", rec.Body.String())
	}
}

// TestReplicaServing: the full two-process shape in-process — a replica
// bootstrapped over HTTP answers /v1/search byte-identically to its
// leader, refuses writes with 421 not_leader, and advertises its tail on
// /v1/readyz and /v1/admin/stats.
func TestReplicaServing(t *testing.T) {
	leaderMux, replicaMux, _ := leaderAndReplicaMux(t, 2)

	// Mutate through the leader's public API, then re-converge.
	rec := postJSON(t, leaderMux, "/v1/admin/apply",
		`{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":7},"total":7}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("leader apply: status %d, body %q", rec.Code, rec.Body.String())
	}
	waitServeConverged(t, leaderMux, replicaMux)

	for _, q := range []string{"burger", "coffee", "burger&q=noodles", "zzz-absent"} {
		url := "/v1/search?q=" + q + "&k=3&s=20"
		lrec, rrec := get(t, leaderMux, url), get(t, replicaMux, url)
		if lrec.Code != http.StatusOK || rrec.Code != http.StatusOK {
			t.Fatalf("%s: status leader %d / replica %d", url, lrec.Code, rrec.Code)
		}
		if lrec.Body.String() != rrec.Body.String() {
			t.Errorf("%s: bodies diverge\nleader  %s\nreplica %s", url, lrec.Body.String(), rrec.Body.String())
		}
	}

	// Writes on the replica redirect to the leader with 421.
	rec = postJSON(t, replicaMux, "/v1/admin/apply",
		`{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":1},"total":1}]}`)
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("replica write: status %d, want 421 (body %q)", rec.Code, rec.Body.String())
	}
	if errorCode(t, rec) != "not_leader" {
		t.Errorf("replica write code = %q", errorCode(t, rec))
	}

	// Readiness advertises the tail state for routing leaders to poll.
	var ready struct {
		Status      string `json:"status"`
		Replication *struct {
			State      string `json:"state"`
			MinApplied uint64 `json:"min_applied_epoch"`
		} `json:"replication"`
	}
	rec = get(t, replicaMux, "/v1/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("replica readyz: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || ready.Replication == nil || ready.Replication.State != "tailing" {
		t.Errorf("replica readyz = %+v (replication %+v)", ready, ready.Replication)
	}
}

// TestReplicaForwardsUnsatisfiableReads: a min_epoch the replica has not
// applied forwards to the leader (X-Dash-Served-By names it); the
// forwarded-request loop guard instead surfaces 503 replica_behind.
func TestReplicaForwardsUnsatisfiableReads(t *testing.T) {
	// One shard: MinApplied tracks the single journal, so a low min_epoch
	// really is satisfiable locally (a never-written shard pins the 2-shard
	// leader's minimum at its seed epoch). One apply moves the epoch off 0
	// so a positive bound can be satisfiable at all.
	leaderMux, replicaMux, leaderURL := leaderAndReplicaMux(t, 1)
	rec0 := postJSON(t, leaderMux, "/v1/admin/apply",
		`{"changes":[{"op":"update","id":["American","10"],"terms":{"burger":4},"total":4}]}`)
	if rec0.Code != http.StatusOK {
		t.Fatalf("leader apply: status %d, body %q", rec0.Code, rec0.Body.String())
	}
	waitServeConverged(t, leaderMux, replicaMux)

	var stats struct {
		Replication *struct {
			MinApplied uint64 `json:"min_applied_epoch"`
		} `json:"replication"`
	}
	if err := json.Unmarshal(get(t, replicaMux, "/v1/admin/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	future := stats.Replication.MinApplied + 100000
	url := fmt.Sprintf("/v1/search?q=burger&k=2&s=20&min_epoch=%d", future)

	// The leader serves forwarded reads from its own (newest) view, so the
	// replica proxies rather than failing the client.
	rec := get(t, replicaMux, url)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded read: status %d, body %q", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(hdrServedBy); got != strings.TrimRight(leaderURL, "/") {
		t.Errorf("served-by = %q, want leader %q", got, leaderURL)
	}

	// A request already carrying the forwarded marker must not bounce
	// again: the replica answers 503 replica_behind with a retry hint.
	req := httptest.NewRequest(http.MethodGet, url, nil)
	req.Header.Set(hdrForwarded, "1")
	loop := httptest.NewRecorder()
	replicaMux.ServeHTTP(loop, req)
	if loop.Code != http.StatusServiceUnavailable {
		t.Fatalf("loop-guarded read: status %d, want 503 (body %q)", loop.Code, loop.Body.String())
	}
	if errorCode(t, loop) != "replica_behind" {
		t.Errorf("loop-guarded code = %q", errorCode(t, loop))
	}
	if loop.Header().Get("Retry-After") == "" {
		t.Error("replica_behind response missing Retry-After")
	}

	// A satisfiable min_epoch is served locally: no served-by marker.
	local := get(t, replicaMux, "/v1/search?q=burger&k=2&s=20&min_epoch=1")
	if local.Code != http.StatusOK || local.Header().Get(hdrServedBy) != "" {
		t.Errorf("local read: status %d, served-by %q", local.Code, local.Header().Get(hdrServedBy))
	}
}
