// Command dashvet runs the project's invariant analyzers (internal/lint)
// together with the stock go vet suite. It is the mechanical guard for
// the serving-path contracts: every search pins exactly one snapshot
// (snapshotescape), the serving path is ctx-first (ctxfirst), lock-free
// fields are touched only atomically (atomicfield), and no error is
// silently discarded (droppederr).
//
// Usage:
//
//	dashvet [-stockvet=false] [packages]
//
// Packages default to ./... relative to the enclosing module root. Any
// finding — from dashvet's own analyzers or from go vet — exits 1, so
// `make lint` and CI fail fast on an invariant break. Suppress a
// deliberate violation with //lint:ignore <analyzer> <justification>
// (see ARCHITECTURE.md, "Static analysis & invariants").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	stockvet := flag.Bool("stockvet", true, "also run the stock `go vet` analyzers over the same packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dashvet [-stockvet=false] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dashvet:", err)
		os.Exit(2)
	}

	failed := false
	if *stockvet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Dir = root
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dashvet:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dashvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so dashvet can run from any subdirectory like go vet does.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
