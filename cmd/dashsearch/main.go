// Command dashsearch answers top-k keyword searches over an index written
// by dashcrawl:
//
//	dashsearch -index search.idx -dataset fooddb -k 2 -s 20 burger
//	dashsearch -index q2.idx -dataset medium -query Q2 -k 5 -s 200 cato7
//
// The dataset/query flags rebuild the web application so result URLs can be
// formulated (the index itself stores only fragments).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fragindex"
	"repro/internal/harness"
	"repro/internal/relation"
	"repro/internal/search"
	"repro/internal/tpch"
	"repro/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dashsearch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dashsearch", flag.ContinueOnError)
	indexPath := fs.String("index", "dash.idx", "index file written by dashcrawl")
	dataset := fs.String("dataset", "fooddb", "fooddb | small | medium | large")
	query := fs.String("query", "Q2", "application query for TPC-H datasets")
	seed := fs.Int64("seed", 42, "dataset generator seed (must match dashcrawl)")
	k := fs.Int("k", 5, "number of db-page URLs to return")
	s := fs.Int("s", 100, "db-page size threshold (keywords)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	keywords := fs.Args()
	if len(keywords) == 0 {
		return fmt.Errorf("no keywords given")
	}

	f, err := os.Open(*indexPath)
	if err != nil {
		return err
	}
	//lint:ignore droppederr file is opened read-only; Close cannot lose data
	defer f.Close()
	idx, err := fragindex.Load(f)
	if err != nil {
		return err
	}

	_, app, err := setup(*dataset, *query, *seed)
	if err != nil {
		return err
	}
	engine := search.New(idx, app)

	start := time.Now()
	results, err := engine.Search(context.Background(), search.Request{
		Keywords: keywords, K: *k, SizeThreshold: *s,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("%d result(s) in %v over %d fragments\n",
		len(results), elapsed, idx.NumFragments())
	for i, r := range results {
		fmt.Printf("%2d. %-60s score=%.6f size=%d fragments=%d\n",
			i+1, r.URL, r.Score, r.Size, len(r.Fragments))
	}
	return nil
}

func setup(dataset, query string, seed int64) (*relation.Database, *webapp.Application, error) {
	if dataset == "fooddb" {
		return harness.Fooddb()
	}
	scale, err := tpch.ScaleByName(dataset)
	if err != nil {
		return nil, nil, err
	}
	return harness.Workload{Scale: scale, Seed: seed, Query: query}.Setup()
}
