// Command benchjson converts `go test -bench` text output into JSON so the
// repository can track its performance trajectory in version control:
//
//	go test -run '^$' -bench Fig11 -benchmem . > bench.txt
//	benchjson -o BENCH_search.json < bench.txt
//
// Each benchmark line becomes one object with the parsed ns/op, B/op, and
// allocs/op plus any ReportMetric extras; `make bench` wires this up.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchLine struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	lines, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(lines); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if w != os.Stdout {
		// The output file is written data: a Close error (ENOSPC at
		// flush, NFS write-back) means the JSON on disk is incomplete.
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// parse reads `go test -bench` output: lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op   9.9 extra/op
func parse(r *os.File) ([]benchLine, error) {
	var out []benchLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		bl := benchLine{Name: fields[0], Iterations: iters}
		// value/unit pairs follow.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				bl.NsPerOp = v
			case "B/op":
				n := int64(v)
				bl.BytesPerOp = &n
			case "allocs/op":
				n := int64(v)
				bl.AllocsPerOp = &n
			default:
				if bl.Metrics == nil {
					bl.Metrics = make(map[string]float64)
				}
				bl.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, bl)
	}
	return out, sc.Err()
}
