// Command dashcrawl crawls a database for one web application and writes
// the fragment index to disk:
//
//	dashcrawl -dataset fooddb -out search.idx
//	dashcrawl -dataset medium -query Q2 -alg stepwise -out q2.idx
//
// Datasets: fooddb (the paper's running example) or a TPC-H scale
// (small/medium/large) with -query Q1|Q2|Q3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/crawl"
	"repro/internal/harness"
	"repro/internal/relation"
	"repro/internal/tpch"
	"repro/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dashcrawl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dashcrawl", flag.ContinueOnError)
	dataset := fs.String("dataset", "fooddb", "fooddb | small | medium | large")
	query := fs.String("query", "Q2", "application query for TPC-H datasets (Q1|Q2|Q3)")
	alg := fs.String("alg", "integrated", "crawl algorithm: stepwise | integrated")
	seed := fs.Int64("seed", 42, "dataset generator seed")
	out := fs.String("out", "dash.idx", "output index file")
	reduce := fs.Int("reduce", 0, "reduce tasks per MR job (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	db, app, err := setup(*dataset, *query, *seed)
	if err != nil {
		return err
	}
	var algorithm crawl.Algorithm
	switch *alg {
	case "stepwise":
		algorithm = crawl.AlgStepwise
	case "integrated":
		algorithm = crawl.AlgIntegrated
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	fmt.Printf("crawling %s with %s (%s)…\n", db.Name, app.Name, algorithm)
	output, row, err := harness.RunCrawl(context.Background(), db, app, algorithm,
		crawl.Options{ReduceTasks: *reduce}, *dataset)
	if err != nil {
		return err
	}
	for _, p := range row.Phases {
		fmt.Printf("  %-9s %8v  shuffle %6.1f MB\n", p.Name,
			p.Metrics.Wall.Round(time.Millisecond),
			float64(p.Metrics.IntermediateBytes)/1e6)
	}

	bound, err := app.Bound()
	if err != nil {
		return err
	}
	idx, graphRow, err := harness.BuildGraph(output, bound, app.Name)
	if err != nil {
		return err
	}
	fmt.Printf("fragment index: %d fragments, %d keywords, %d graph edges (built in %v)\n",
		idx.NumFragments(), idx.NumKeywords(), idx.NumEdges(),
		graphRow.BuildTime.Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	//lint:ignore droppederr error-path backstop only; the success path checks the explicit Close below
	defer f.Close()
	if err := idx.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	return nil
}

// setup resolves a dataset name into a database and bound application.
func setup(dataset, query string, seed int64) (*relation.Database, *webapp.Application, error) {
	if dataset == "fooddb" {
		return harness.Fooddb()
	}
	scale, err := tpch.ScaleByName(dataset)
	if err != nil {
		return nil, nil, err
	}
	return harness.Workload{Scale: scale, Seed: seed, Query: query}.Setup()
}
