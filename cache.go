package dash

// Serving-layer result caching and admission control: the optional layer
// Open wraps around any topology when WithResultCache and/or
// WithAdmissionControl are given. The cache memoizes finished result
// lists keyed by (canonical request, pinned epoch vector) — epoch-swap
// publishes make invalidation free, and on sharded topologies the key
// pins only the shards a query actually touches, so a publish on one
// shard leaves hot entries for the others valid. Singleflight collapses
// concurrent identical misses into one search; admission control sheds
// searches that cannot finish inside their deadline (or exceed the
// in-flight cap) with a fast ErrOverloaded instead of queueing them to
// time out. See internal/search/cache.go and admission.go for the
// mechanisms, ARCHITECTURE.md "Serving under load" for the policy.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/search"
)

// Serving-layer re-exports.
type (
	// CacheStats reports the result cache's counters (EngineStats.Cache).
	CacheStats = search.CacheStats
	// AdmissionOptions configures WithAdmissionControl.
	AdmissionOptions = search.AdmissionOptions
	// AdmissionStats reports the admission controller's counters
	// (EngineStats.Admission).
	AdmissionStats = search.AdmissionStats
)

// ErrOverloaded reports that admission control shed the search; the
// caller should retry later. The /v1 HTTP layer maps it to 503 with a
// Retry-After header.
var ErrOverloaded = search.ErrOverloaded

// CacheStatus classifies how a search was answered, for surfaces (like
// the /v1 X-Cache header) that report cache effectiveness per request.
type CacheStatus string

const (
	// CacheHit: answered from the result cache (or by sharing a
	// concurrent identical search) — no expansion loop ran for this call.
	CacheHit CacheStatus = "hit"
	// CacheMiss: this call ran the search and (on success) populated the
	// cache.
	CacheMiss CacheStatus = "miss"
	// CacheBypass: no result cache is configured on the handle, or the
	// request was shed before reaching it.
	CacheBypass CacheStatus = "bypass"
)

// CachedSearcher is the status-reporting search surface of handles opened
// with WithResultCache. Plain Search/SearchBatch remain the contract;
// these variants additionally report how each call was answered.
type CachedSearcher interface {
	// SearchStatus is Search plus the cache outcome.
	SearchStatus(ctx context.Context, req Request) ([]Result, CacheStatus, error)
	// SearchBatchStatus is SearchBatch plus the batch-aggregate outcome:
	// CacheHit when every request was answered from the cache, CacheMiss
	// when any request ran a search.
	SearchBatchStatus(ctx context.Context, reqs []Request) ([]BatchResult, CacheStatus)
}

// WithResultCache bounds an epoch-keyed result cache of roughly maxBytes
// of stored results in front of the topology's search path. Cached
// responses are byte-identical to uncached ones (the key pins the exact
// snapshot epochs the result was computed from), a publish is never
// served stale results (a new epoch is a new key), and N concurrent
// identical misses run one search (singleflight). The returned handle
// additionally implements CachedSearcher.
func WithResultCache(maxBytes int64) Option {
	return func(c *openConfig) error {
		if maxBytes <= 0 {
			return fmt.Errorf("dash: WithResultCache(%d): byte budget must be > 0", maxBytes)
		}
		c.cacheBytes = maxBytes
		return nil
	}
}

// WithAdmissionControl sheds searches the engine cannot serve usefully:
// requests whose remaining deadline budget is below the estimated cost of
// one uncached search, and requests beyond opts.MaxInFlight concurrently
// admitted ones, fail fast with ErrOverloaded instead of queueing to time
// out. Pairs with WithResultCache — cache hits are answered before
// budget shedding would matter, and only uncached searches feed the cost
// estimator.
func WithAdmissionControl(opts AdmissionOptions) Option {
	return func(c *openConfig) error {
		if opts.MaxInFlight < 0 {
			return fmt.Errorf("dash: WithAdmissionControl: MaxInFlight %d must be >= 0", opts.MaxInFlight)
		}
		if opts.MinBudget < 0 {
			return fmt.Errorf("dash: WithAdmissionControl: MinBudget %v must be >= 0", opts.MinBudget)
		}
		c.admission = &opts
		return nil
	}
}

// servingCore is the snapshot-pinned search surface of one topology — the
// three operations the cached wrapper needs that the Handle contract does
// not expose: pin a consistent read view, run one already-normalized
// request against it, and read the handle's request defaults. Built by
// coreFor via type switch on Open's concrete handles.
type servingCore struct {
	// pin resolves the current read view, one snapshot per shard
	// (unsharded topologies: a single-element set).
	pin func() []*Snapshot
	// run answers one request against a pinned view. The request must
	// already carry the handle's CandidateLimit default: run goes
	// straight to the engine, bypassing the handle-level fill.
	run       func(ctx context.Context, snaps []*Snapshot, req Request) ([]Result, error)
	workers   int
	candLimit int
}

// coreFor extracts a servingCore from one of Open's concrete handles
// (unwrapping the durable layer, whose search path is its inner
// topology's).
func coreFor(h Handle) (servingCore, bool) {
	switch t := h.(type) {
	case *staticHandle:
		return servingCore{
			pin: func() []*Snapshot { return []*Snapshot{t.engine.Snapshot()} },
			run: func(ctx context.Context, snaps []*Snapshot, req Request) ([]Result, error) {
				return t.engine.SearchSnapshot(ctx, snaps[0], req)
			},
			workers:   t.workers,
			candLimit: t.candLimit,
		}, true
	case *LiveEngine:
		return servingCore{
			pin: func() []*Snapshot { return []*Snapshot{t.live.Snapshot()} },
			run: func(ctx context.Context, snaps []*Snapshot, req Request) ([]Result, error) {
				return t.engine.SearchSnapshot(ctx, snaps[0], req)
			},
			workers:   t.workers,
			candLimit: t.candLimit,
		}, true
	case *ShardedLiveEngine:
		return servingCore{
			pin:       t.engine.Pin,
			run:       t.engine.SearchPinned,
			workers:   t.workers,
			candLimit: t.candLimit,
		}, true
	case *durableHandle:
		core, ok := coreFor(t.Handle)
		return core, ok
	}
	return servingCore{}, false
}

// wrapServing layers the configured result cache and admission controller
// over a freshly opened handle. With neither configured the handle passes
// through untouched (so default Open keeps returning the concrete
// topology types). The wrapper preserves exactly the inner handle's
// optional capabilities: Queuer for the live topologies, plus
// Checkpointer/DurabilityReporter/Closer for durable handles — a cached
// static handle does not suddenly claim Queue/Flush.
func wrapServing(h Handle, cfg openConfig) (Handle, error) {
	if cfg.cacheBytes <= 0 && cfg.admission == nil {
		return h, nil
	}
	core, ok := coreFor(h)
	if !ok {
		return nil, fmt.Errorf("dash: cannot layer a result cache over %T", h)
	}
	ch := cachedHandle{inner: h, core: core}
	if cfg.cacheBytes > 0 {
		ch.cache = search.NewResultCache(cfg.cacheBytes)
	}
	if cfg.admission != nil {
		ch.ac = search.NewAdmissionController(*cfg.admission)
	}
	if d, ok := h.(*durableHandle); ok {
		return &cachedDurable{cachedQueuer: cachedQueuer{cachedHandle: ch, q: d}, d: d}, nil
	}
	if q, ok := h.(Queuer); ok {
		return &cachedQueuer{cachedHandle: ch, q: q}, nil
	}
	return &ch, nil
}

// cachedHandle implements the Handle contract over an inner topology:
// searches go through the admission controller and result cache,
// maintenance delegates to the inner handle and sweeps superseded cache
// entries after every call.
type cachedHandle struct {
	inner Handle
	core  servingCore
	cache *search.ResultCache // nil: admission only
	ac    *search.AdmissionController
}

// orBackground tolerates a nil context at the API boundary so a forgotten
// ctx degrades to "not cancellable" instead of a panic inside the cache
// and admission layers.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Search answers through the cache (see SearchStatus).
func (ch *cachedHandle) Search(ctx context.Context, req Request) ([]Result, error) {
	res, _, err := ch.SearchStatus(ctx, req)
	return res, err
}

// SearchStatus answers one top-k query through admission control and the
// result cache, reporting how. The returned slice may be shared with
// other cache readers: treat it as immutable.
func (ch *cachedHandle) SearchStatus(ctx context.Context, req Request) ([]Result, CacheStatus, error) {
	ctx = orBackground(ctx)
	if ch.ac != nil {
		deadline, ok := ctx.Deadline()
		release, err := ch.ac.Admit(deadline, ok)
		if err != nil {
			return nil, CacheBypass, err
		}
		defer release()
	}
	// Fill the handle default before normalizing: normalization folds the
	// explicit-unlimited negative spelling to 0, which the fill must not
	// then overwrite.
	req = search.NormalizeRequest(fillCandidateLimit(req, ch.core.candLimit))
	if ch.cache == nil {
		res, err := ch.runObserved(ctx, ch.core.pin(), req)
		return res, CacheBypass, err
	}
	snaps := ch.core.pin()
	pins := search.PinEpochs(nil, snaps, req.Keywords)
	key := search.CacheKey(req, pins)
	res, outcome, err := ch.cache.Do(ctx, key, pins, func(ctx context.Context) ([]Result, error) {
		return ch.runObserved(ctx, snaps, req)
	})
	if err != nil {
		return nil, CacheMiss, err
	}
	if outcome == search.CacheMiss {
		return res, CacheMiss, nil
	}
	return res, CacheHit, nil
}

// runObserved runs one uncached search and feeds its wall time to the
// admission cost estimator.
func (ch *cachedHandle) runObserved(ctx context.Context, snaps []*Snapshot, req Request) ([]Result, error) {
	start := time.Now()
	res, err := ch.core.run(ctx, snaps, req)
	if err == nil && ch.ac != nil {
		ch.ac.Observe(time.Since(start))
	}
	return res, err
}

// SearchBatch answers through the cache (see SearchBatchStatus).
func (ch *cachedHandle) SearchBatch(ctx context.Context, reqs []Request) []BatchResult {
	out, _ := ch.SearchBatchStatus(ctx, reqs)
	return out
}

// SearchBatchStatus evaluates a batch through the cache: the whole batch
// pins one read view (every request observes the same index state, the
// SearchBatch contract), each request resolves its own cache entry, and
// misses fan out over the handle's worker pool. Admission is per batch —
// one admitted batch holds one in-flight slot, and a shed batch fails
// every slot with ErrOverloaded.
func (ch *cachedHandle) SearchBatchStatus(ctx context.Context, reqs []Request) ([]BatchResult, CacheStatus) {
	ctx = orBackground(ctx)
	out := make([]BatchResult, len(reqs))
	status := CacheBypass
	if ch.cache != nil {
		status = CacheHit
	}
	if len(reqs) == 0 {
		return out, status
	}
	if ch.ac != nil {
		deadline, ok := ctx.Deadline()
		release, err := ch.ac.Admit(deadline, ok)
		if err != nil {
			for i := range out {
				out[i].Err = err
			}
			return out, CacheBypass
		}
		defer release()
	}
	if ch.cache == nil {
		// Admission-only wrapper: the inner handle's batch path already
		// pins once and fans out.
		return ch.inner.SearchBatch(ctx, reqs), CacheBypass
	}
	snaps := ch.core.pin()
	var mu sync.Mutex // guards status demotion across workers
	workers := ch.core.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					out[i].Err = err
					continue
				}
				req := search.NormalizeRequest(fillCandidateLimit(reqs[i], ch.core.candLimit))
				pins := search.PinEpochs(nil, snaps, req.Keywords)
				key := search.CacheKey(req, pins)
				res, outcome, err := ch.cache.Do(ctx, key, pins, func(ctx context.Context) ([]Result, error) {
					return ch.runObserved(ctx, snaps, req)
				})
				out[i].Results, out[i].Err = res, err
				if outcome == search.CacheMiss {
					mu.Lock()
					status = CacheMiss
					mu.Unlock()
				}
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, status
}

// Stats reports the inner topology's serving stats with the cache and
// admission counters attached.
func (ch *cachedHandle) Stats() EngineStats {
	st := ch.inner.Stats()
	if ch.cache != nil {
		cs := ch.cache.Stats()
		st.Cache = &cs
	}
	if ch.ac != nil {
		as := ch.ac.Stats()
		st.Admission = &as
	}
	return st
}

// sweep drops cache entries pinning epochs the current read view has
// superseded. Run after every maintenance call; correctness never depends
// on it (a superseded epoch can never reappear in a lookup key), it just
// returns the capacity early.
func (ch *cachedHandle) sweep() {
	if ch.cache == nil {
		return
	}
	snaps := ch.core.pin()
	epochs := make([]uint64, len(snaps))
	for i, s := range snaps {
		epochs[i] = s.Epoch()
	}
	ch.cache.Sweep(epochs)
}

// Maintenance: delegate, then sweep. The sweep runs whether or not the
// call succeeded — a batched apply can have published on some shards
// before failing on another.

func (ch *cachedHandle) Apply(ctx context.Context, d Delta) (ApplyReport, error) {
	rep, err := ch.inner.Apply(ctx, d)
	ch.sweep()
	return rep, err
}

func (ch *cachedHandle) ApplyBatch(ctx context.Context, ds []Delta) (ApplyReport, error) {
	rep, err := ch.inner.ApplyBatch(ctx, ds)
	ch.sweep()
	return rep, err
}

func (ch *cachedHandle) Recrawl(ctx context.Context, db *Database, ids []FragmentID) (ApplyReport, error) {
	rep, err := ch.inner.Recrawl(ctx, db, ids)
	ch.sweep()
	return rep, err
}

func (ch *cachedHandle) RecrawlWith(ctx context.Context, db *Database, ids []FragmentID, extra Delta) (ApplyReport, error) {
	rep, err := ch.inner.RecrawlWith(ctx, db, ids, extra)
	ch.sweep()
	return rep, err
}

func (ch *cachedHandle) RecrawlBatch(ctx context.Context, db *Database, ids []FragmentID, ds []Delta) (ApplyReport, error) {
	rep, err := ch.inner.RecrawlBatch(ctx, db, ids, ds)
	ch.sweep()
	return rep, err
}

func (ch *cachedHandle) CompactIfNeeded(ctx context.Context, maxDeadRatio float64) (int, error) {
	n, err := ch.inner.CompactIfNeeded(ctx, maxDeadRatio)
	ch.sweep()
	return n, err
}

// cachedQueuer adds the Queuer capability when the inner handle has it
// (the live topologies and durable handles).
type cachedQueuer struct {
	cachedHandle
	q Queuer
}

// Queue buffers a delta on the inner handle; nothing publishes, so the
// cache needs no sweep yet.
func (cq *cachedQueuer) Queue(d Delta) int { return cq.q.Queue(d) }

// Flush publishes the queued batch and sweeps superseded cache entries.
func (cq *cachedQueuer) Flush(ctx context.Context) (ApplyReport, error) {
	rep, err := cq.q.Flush(ctx)
	cq.sweep()
	return rep, err
}

// cachedDurable adds the durable capabilities (Checkpointer,
// DurabilityReporter, io.Closer) when wrapping a durable handle.
type cachedDurable struct {
	cachedQueuer
	d *durableHandle
}

func (cd *cachedDurable) Checkpoint(ctx context.Context) error { return cd.d.Checkpoint(ctx) }

func (cd *cachedDurable) DurabilityStats() DurabilityStats { return cd.d.DurabilityStats() }

func (cd *cachedDurable) DurabilityState() DurabilityState { return cd.d.DurabilityState() }

func (cd *cachedDurable) DurabilityProbeIn() time.Duration { return cd.d.DurabilityProbeIn() }

func (cd *cachedDurable) Close() error { return cd.d.Close() }
