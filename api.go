package dash

// This file is the public serving contract: the Searcher/Maintainer
// interfaces every topology implements, and dash.Open — the one entry
// point that picks a topology (static, live, or sharded) from functional
// options, so call sites depend on the contract and swap topologies
// without rewrites.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/faultfs"
	"repro/internal/search"
)

// Searcher is the read contract every serving topology implements:
// Engine, MultiEngine, LiveEngine, and ShardedLiveEngine all answer the
// same three calls, so callers written against Searcher swap topologies
// freely. Every search takes a context first; an already-cancelled ctx
// returns ctx.Err() without touching a snapshot, and a cancellation or
// deadline arriving mid-search is honored cooperatively (a bounded number
// of heap pops after the signal — see the search package docs).
type Searcher interface {
	// Search answers one top-k query against the current index state.
	Search(ctx context.Context, req Request) ([]Result, error)
	// SearchBatch answers a batch of queries concurrently, all pinned to
	// one consistent index state; out[i] answers reqs[i]. Slots abandoned
	// by a cancellation carry ctx.Err().
	SearchBatch(ctx context.Context, reqs []Request) []BatchResult
	// Stats summarizes the serving index in the unified shape.
	Stats() EngineStats
}

// Maintainer is the write contract of the live topologies (LiveEngine and
// ShardedLiveEngine — the handles Open returns): fold database changes
// into the serving index while searches keep running. Every method takes a
// context and every apply is transactional per publish cycle — a
// cancellation, like any other error, publishes nothing in the failing
// cycle (see ShardedLiveIndex for the cross-shard contract).
type Maintainer interface {
	// Apply folds one delta into the index and publishes atomically.
	Apply(ctx context.Context, d Delta) (ApplyReport, error)
	// ApplyBatch coalesces a sequence of deltas into one publish per
	// touched publish cycle.
	ApplyBatch(ctx context.Context, ds []Delta) (ApplyReport, error)
	// Recrawl re-executes the application query for the given fragment
	// partitions only, derives the resulting delta, and publishes it.
	Recrawl(ctx context.Context, db *Database, ids []FragmentID) (ApplyReport, error)
	// RecrawlWith combines a targeted re-crawl with explicit extra changes
	// in one transactional delta.
	RecrawlWith(ctx context.Context, db *Database, ids []FragmentID, extra Delta) (ApplyReport, error)
	// RecrawlBatch combines a targeted re-crawl with a batch of explicit
	// deltas; everything coalesces into one publish per touched cycle.
	RecrawlBatch(ctx context.Context, db *Database, ids []FragmentID, ds []Delta) (ApplyReport, error)
	// CompactIfNeeded runs the snapshot garbage collector, returning how
	// many publish cycles compacted.
	CompactIfNeeded(ctx context.Context, maxDeadRatio float64) (int, error)
}

// Handle is the full serving contract Open returns: searches and
// maintenance over one index, whatever topology the options picked.
type Handle interface {
	Searcher
	Maintainer
}

// ErrReadOnly is returned by every Maintainer method of a handle opened
// with WithReadOnly.
var ErrReadOnly = errors.New("dash: read-only handle: maintenance not supported")

// openConfig accumulates functional options; zero values are the
// defaults.
type openConfig struct {
	shards     int // 0 or 1: single live index; > 1: sharded
	workers    int // <= 0: GOMAXPROCS (the clampWorkers convention)
	compactNum int // posting-compaction threshold; 0/0: keep the default
	compactDen int
	candLimit  int // default Request.CandidateLimit when a request has none
	readOnly   bool
	dataDir    string // non-empty: durable serving rooted here
	syncPolicy SyncPolicy
	retry      DurabilityRetryPolicy    // zero value: durable defaults
	fsys       faultfs.FS               // nil: the real os package
	cacheBytes int64                    // > 0: epoch-keyed result cache budget
	admission  *search.AdmissionOptions // non-nil: deadline-aware shedding
	replicaURLs    []string             // non-empty: bounded-staleness read routing
	stalenessBound int64                // routing default bound; < 0: unbounded
}

// Option configures Open.
type Option func(*openConfig) error

// WithShards partitions the index across n independent publish cycles
// (n > 1 selects the sharded topology; n == 1, the default, a single live
// index). See ARCHITECTURE.md for the routing and equivalence contract.
func WithShards(n int) Option {
	return func(c *openConfig) error {
		if n < 1 {
			return fmt.Errorf("dash: WithShards(%d): shard count must be >= 1", n)
		}
		c.shards = n
		return nil
	}
}

// WithWorkers bounds the worker pool batch searches and the sharded
// scatter fan out over (n <= 0 means GOMAXPROCS, the default).
func WithWorkers(n int) Option {
	return func(c *openConfig) error {
		c.workers = n
		return nil
	}
}

// WithPostingCompaction tunes the lazy posting-list compaction threshold
// to num/den (default 1/4): a posting list is rewritten once at least
// num/den of its entries are dead. See Index.SetPostingCompaction.
func WithPostingCompaction(num, den int) Option {
	return func(c *openConfig) error {
		if num < 1 || den < 1 || num > den {
			return fmt.Errorf("dash: WithPostingCompaction(%d, %d): want 0 < num <= den", num, den)
		}
		c.compactNum, c.compactDen = num, den
		return nil
	}
}

// WithCandidateLimit caps postings read per keyword for every request that
// leaves Request.CandidateLimit at 0 (which otherwise means "read full
// lists"). A server-side guard against hot-keyword latency. A request can
// override the handle default either way: any positive CandidateLimit
// replaces it, and a negative one explicitly requests full posting lists
// (the engine treats every non-positive limit as unlimited).
func WithCandidateLimit(n int) Option {
	return func(c *openConfig) error {
		if n < 0 {
			return fmt.Errorf("dash: WithCandidateLimit(%d): limit must be >= 0", n)
		}
		c.candLimit = n
		return nil
	}
}

// WithReadOnly opens the static topology: searches run against the index
// frozen at Open time and every Maintainer method returns ErrReadOnly.
// The cheapest choice when the corpus never changes (no publish machinery
// at all). Incompatible with WithShards > 1.
func WithReadOnly() Option {
	return func(c *openConfig) error {
		c.readOnly = true
		return nil
	}
}

// WithDataDir makes the handle durable, rooted at dir: every publish
// journals its delta to disk before the swap that acknowledges it, and
// reopening the same directory recovers exactly the last acknowledged
// state. A fresh directory is seeded from the index passed to Open; an
// initialized one is recovered, idx must be nil, and the committed shard
// count pins the topology (see IsInitialized). Incompatible with
// WithReadOnly. The returned handle additionally implements Checkpointer,
// DurabilityReporter, and io.Closer.
func WithDataDir(dir string) Option {
	return func(c *openConfig) error {
		if dir == "" {
			return fmt.Errorf("dash: WithDataDir: empty directory")
		}
		c.dataDir = dir
		return nil
	}
}

// WithSyncPolicy selects the journal sync discipline for WithDataDir
// (default: SyncAlways). SyncInterval trades the durability of the last
// interval's acknowledgements for append throughput.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *openConfig) error {
		c.syncPolicy = p
		return nil
	}
}

// WithDurabilityRetry tunes how a WithDataDir handle survives disk
// faults: transient append/checkpoint failures retry with capped
// exponential backoff; after FailureThreshold consecutive failures the
// handle degrades — searches keep serving, durable mutations fail fast
// with ErrDurabilityDegraded — until the background prober restores the
// data directory to service. The zero value means the durable defaults.
func WithDurabilityRetry(p DurabilityRetryPolicy) Option {
	return func(c *openConfig) error {
		c.retry = p
		return nil
	}
}

// WithDurableFS substitutes the filesystem the durable store writes
// through — the chaos-testing seam (faultfs.NewInjector wraps faultfs.OS
// with a programmable fault schedule). Only meaningful with WithDataDir;
// nil means the real os package.
func WithDurableFS(fsys faultfs.FS) Option {
	return func(c *openConfig) error {
		c.fsys = fsys
		return nil
	}
}

// WithReplicas layers bounded-staleness read routing over a durable
// leader handle: the handle polls each replica's readiness report and its
// RouteSearch (see SearchRouter) places reads with no explicit MinEpoch on
// any replica within DefaultStalenessBound epochs of the leader's current
// epoch, falling back to serving locally when none qualifies. Requires
// WithDataDir (replicas bootstrap from the leader's snapshots and tail its
// journal). urls are replica base URLs (dashserve processes started with
// -replica-of pointing back at this leader).
func WithReplicas(urls ...string) Option {
	return func(c *openConfig) error {
		if len(urls) == 0 {
			return fmt.Errorf("dash: WithReplicas: no replica URLs")
		}
		c.replicaURLs = urls
		if c.stalenessBound == 0 {
			c.stalenessBound = DefaultStalenessBound
		}
		return nil
	}
}

// WithStalenessBound overrides the default routing bound WithReplicas
// applies to requests that carry no explicit MinEpoch: a replica must be
// within `epochs` epochs of the leader's current epoch to serve them.
// Negative means unbounded — any healthy replica qualifies.
func WithStalenessBound(epochs int) Option {
	return func(c *openConfig) error {
		if epochs == 0 {
			return fmt.Errorf("dash: WithStalenessBound(0): a zero bound would route nothing; use a positive bound or negative for unbounded")
		}
		c.stalenessBound = int64(epochs)
		return nil
	}
}

// Open wraps a built index for serving behind the one public contract,
// picking the topology from the options:
//
//   - WithReadOnly: a static engine over the index frozen at Open time.
//   - default (or WithShards(1)): a single LiveEngine — epoch-swap
//     snapshots, one publish cycle.
//   - WithShards(n > 1): a ShardedLiveEngine — the fragment space
//     partitioned by equality-group key, scatter-gather searches,
//     per-shard publish cycles.
//
// Every topology answers Search/SearchBatch/Stats identically (byte-equal
// results for the same corpus — the equivalence tests pin this down), so
// the choice is purely operational: write rate and core count.
//
// Open takes ownership of idx: all further access must go through the
// returned Handle. app may be nil when URL formulation is not needed.
//
// ctx bounds the open itself — chiefly durable recovery and seeding, which
// read and replay on-disk state shard by shard. A nil ctx is tolerated and
// degrades to "not cancellable". ctx is not retained by the handle.
func Open(ctx context.Context, idx *Index, app *Application, opts ...Option) (Handle, error) {
	ctx = orBackground(ctx)
	var cfg openConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.readOnly && cfg.shards > 1 {
		return nil, fmt.Errorf("dash: WithReadOnly is incompatible with WithShards(%d)", cfg.shards)
	}
	if cfg.dataDir != "" {
		if cfg.readOnly {
			return nil, fmt.Errorf("dash: WithDataDir is incompatible with WithReadOnly")
		}
		if cfg.compactNum > 0 && idx != nil {
			if err := idx.SetPostingCompaction(cfg.compactNum, cfg.compactDen); err != nil {
				return nil, err
			}
		}
		h, err := openDurable(ctx, idx, app, cfg)
		if err != nil {
			return nil, err
		}
		if h, err = wrapServing(h, cfg); err != nil {
			return nil, err
		}
		if len(cfg.replicaURLs) > 0 {
			return wrapReplicas(h, cfg)
		}
		return h, nil
	}
	if len(cfg.replicaURLs) > 0 {
		return nil, fmt.Errorf("dash: WithReplicas requires WithDataDir (replicas tail the durable journal)")
	}
	if idx == nil {
		return nil, fmt.Errorf("dash: Open with a nil index (only a durable reopen serves without one)")
	}
	if cfg.compactNum > 0 {
		if err := idx.SetPostingCompaction(cfg.compactNum, cfg.compactDen); err != nil {
			return nil, err
		}
	}
	var h Handle
	switch {
	case cfg.readOnly:
		h = &staticHandle{
			engine:    search.New(idx.Freeze(), app),
			workers:   cfg.workers,
			candLimit: cfg.candLimit,
		}
	case cfg.shards > 1:
		se, err := NewShardedLiveEngine(idx, app, cfg.shards)
		if err != nil {
			return nil, err
		}
		se.engine.MaxFanout = cfg.workers
		se.workers = cfg.workers
		se.candLimit = cfg.candLimit
		h = se
	default:
		le := NewLiveEngine(idx, app)
		le.workers = cfg.workers
		le.candLimit = cfg.candLimit
		h = le
	}
	return wrapServing(h, cfg)
}

// fillCandidateLimit applies a handle-level default CandidateLimit to
// requests that leave the field at 0. A negative request value is the
// explicit opt-out — it passes through untouched, and the engine reads
// full posting lists for any non-positive limit.
func fillCandidateLimit(req Request, limit int) Request {
	if req.CandidateLimit == 0 && limit > 0 {
		req.CandidateLimit = limit
	}
	return req
}

// fillCandidateLimits is fillCandidateLimit over a batch; it copies only
// when a request actually changes, so the common no-default path passes
// the caller's slice through untouched.
func fillCandidateLimits(reqs []Request, limit int) []Request {
	if limit <= 0 {
		return reqs
	}
	out := reqs
	copied := false
	for i, req := range reqs {
		if req.CandidateLimit != 0 {
			continue
		}
		if !copied {
			out = append([]Request(nil), reqs...)
			copied = true
		}
		out[i].CandidateLimit = limit
	}
	return out
}

// staticHandle is the read-only topology behind Open(WithReadOnly): a
// plain engine over one frozen snapshot, with every Maintainer method
// refusing.
type staticHandle struct {
	engine    *Engine
	workers   int
	candLimit int
}

func (h *staticHandle) Search(ctx context.Context, req Request) ([]Result, error) {
	return h.engine.Search(ctx, fillCandidateLimit(req, h.candLimit))
}

func (h *staticHandle) SearchBatch(ctx context.Context, reqs []Request) []BatchResult {
	return h.engine.ParallelSearch(ctx, fillCandidateLimits(reqs, h.candLimit), h.workers)
}

func (h *staticHandle) Stats() EngineStats { return h.engine.Stats() }

func (h *staticHandle) Apply(context.Context, Delta) (ApplyReport, error) {
	return ApplyReport{}, ErrReadOnly
}

func (h *staticHandle) ApplyBatch(context.Context, []Delta) (ApplyReport, error) {
	return ApplyReport{}, ErrReadOnly
}

func (h *staticHandle) Recrawl(context.Context, *Database, []FragmentID) (ApplyReport, error) {
	return ApplyReport{}, ErrReadOnly
}

func (h *staticHandle) RecrawlWith(context.Context, *Database, []FragmentID, Delta) (ApplyReport, error) {
	return ApplyReport{}, ErrReadOnly
}

func (h *staticHandle) RecrawlBatch(context.Context, *Database, []FragmentID, []Delta) (ApplyReport, error) {
	return ApplyReport{}, ErrReadOnly
}

func (h *staticHandle) CompactIfNeeded(context.Context, float64) (int, error) {
	return 0, ErrReadOnly
}
