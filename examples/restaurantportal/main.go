// Restaurantportal demonstrates the full deployment loop over live HTTP:
// it hosts the Search web application (the db-page generator), lets Dash
// crawl its backing database, runs a keyword search, then actually FETCHES
// the top suggested URL from the running server and verifies the returned
// db-page contains the queried keyword — the end-to-end promise of the
// paper's architecture (Fig. 4).
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	dash "repro"
	"repro/internal/fooddb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := fooddb.New()

	// Host the target web application on a local port.
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	baseURL := "http://" + listener.Addr().String() + "/Search"

	app, err := dash.Analyze(fooddb.ServletSource, baseURL)
	if err != nil {
		return err
	}
	if err := app.Bind(db); err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/Search", app.Handler())
	server := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := server.Serve(listener); err != http.ErrServerClosed {
			log.Printf("server: %v", err)
		}
	}()
	defer server.Close()
	fmt.Printf("web application serving db-pages at %s\n", baseURL)

	// Dash crawls the application's database (not the website!).
	idx, stats, err := dash.Build(context.Background(), db, app, dash.BuildOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("crawled %d fragments without issuing a single HTTP request\n", stats.Fragments)

	// Keyword search: the result is a URL on the live server.
	engine := dash.NewEngine(idx, app)
	const keyword = "burger"
	results, err := engine.Search(context.Background(), dash.Request{
		Keywords: []string{keyword}, K: 2, SizeThreshold: 20,
	})
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no results for %q", keyword)
	}
	for i, r := range results {
		fmt.Printf("result %d: %s (score %.4f)\n", i+1, r.URL, r.Score)
	}

	// Fetch the top URL and prove the db-page really contains the keyword.
	resp, err := http.Get(results[0].URL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", results[0].URL, resp.StatusCode)
	}
	page := string(body)
	hits := strings.Count(strings.ToLower(page), keyword)
	if hits == 0 {
		return fmt.Errorf("suggested page does not contain %q — reproduction broken", keyword)
	}
	fmt.Printf("\nfetched %s\n", results[0].URL)
	fmt.Printf("HTTP %d, %d bytes, %q occurs %d times — the suggested URL generates the promised db-page\n",
		resp.StatusCode, len(body), keyword, hits)

	// Show a slice of the generated HTML table.
	if i := strings.Index(page, "<table"); i >= 0 {
		end := i + 400
		if end > len(page) {
			end = len(page)
		}
		fmt.Printf("\npage excerpt:\n%s…\n", page[i:end])
	}
	return nil
}
