// Quickstart walks the paper's running example end to end on the fooddb
// database (Fig. 2): analyze the Search servlet (Fig. 3), crawl the
// database into db-page fragments (Fig. 5), inspect the inverted fragment
// index (Fig. 6) and fragment graph (Fig. 9), and run the Example 7 top-k
// search for "burger".
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dash "repro"
	"repro/internal/fooddb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Reverse-engineer the web application (paper §III, Example 2).
	app, err := dash.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		return err
	}
	fmt.Printf("analyzed application %q\n", app.Name)
	fmt.Printf("  reconstructed query: %s\n", app.Query)
	fmt.Printf("  query-string bindings:")
	for _, b := range app.Bindings {
		fmt.Printf(" %s→$%s", b.Field, b.Param)
	}
	fmt.Println()

	// 2. Crawl the database and build the fragment index (paper §V).
	db := fooddb.New()
	if err := app.Bind(db); err != nil {
		return err
	}
	idx, stats, err := dash.Build(context.Background(), db, app, dash.BuildOptions{
		Algorithm: dash.AlgIntegrated,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ncrawled %d fragments, %d keywords, %d graph edges (crawl %v, index %v)\n",
		stats.Fragments, stats.Keywords, stats.GraphEdges,
		stats.CrawlTime.Round(time.Microsecond), stats.IndexTime.Round(time.Microsecond))
	fmt.Println("fragments (Fig. 5 / Fig. 9 node weights):")
	for ref := 0; ref < stats.Fragments; ref++ {
		meta, err := idx.Meta(dash.FragRef(ref))
		if err != nil {
			return err
		}
		fmt.Printf("  %-15s %2d keywords\n", meta.ID, meta.Terms)
	}

	// 3. Top-k search (paper §VI, Example 7): keyword "burger", k=2, s=20.
	engine := dash.NewEngine(idx, app)
	results, err := engine.Search(context.Background(), dash.Request{
		Keywords: []string{"burger"}, K: 2, SizeThreshold: 20,
	})
	if err != nil {
		return err
	}
	fmt.Println("\ntop-2 db-pages for \"burger\" (s=20):")
	for i, r := range results {
		fmt.Printf("  %d. %s (score %.4f, %d keywords)\n", i+1, r.URL, r.Score, r.Size)
	}

	// 4. The suggested URLs really generate pages with the keyword: run
	// the application for the top query string.
	page, err := app.Execute(results[0].QueryString)
	if err != nil {
		return err
	}
	fmt.Printf("\ndb-page %s has %d rows:\n", results[0].QueryString, page.Len())
	for _, row := range page.Rows {
		fmt.Printf("  %v\n", row)
	}
	return nil
}
