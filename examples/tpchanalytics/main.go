// Tpchanalytics runs the paper's evaluation workload at small scale: it
// generates a TPC-H-like dataset, crawls application query Q2 with both the
// stepwise and the integrated algorithm (paper §V), compares their phase
// costs, and then exercises top-k search across hot, warm, and cold
// keywords (paper §VII-B).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dash "repro"
	"repro/internal/harness"
	"repro/internal/tpch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	scale := tpch.Small
	db := tpch.Generate(scale, 42)
	fmt.Printf("dataset %s:\n", db.Name)
	for _, st := range db.Stats() {
		fmt.Printf("  %-10s %7d rows %10d bytes\n", st.Name, st.Rows, st.Bytes)
	}

	app, err := tpch.App("Q2")
	if err != nil {
		return err
	}
	if err := app.Bind(db); err != nil {
		return err
	}
	fmt.Printf("\napplication %s: %s\n", app.Name, app.Query)

	// Crawl with both algorithms and compare (Fig. 10 at one cell).
	var idx *dash.Index
	for _, alg := range []dash.Algorithm{dash.AlgStepwise, dash.AlgIntegrated} {
		built, stats, err := dash.Build(ctx, db, app, dash.BuildOptions{Algorithm: alg})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: %v crawl + %v index, %d fragments\n",
			alg, stats.CrawlTime.Round(time.Millisecond),
			stats.IndexTime.Round(time.Millisecond), stats.Fragments)
		for _, p := range stats.Phases {
			fmt.Printf("  %-9s %8v  %6.1f MB shuffled\n", p.Name,
				p.Metrics.Wall.Round(time.Millisecond),
				float64(p.Metrics.IntermediateBytes)/1e6)
		}
		idx = built
	}

	// Keyword temperature sweep (Fig. 11 at one cell).
	engine := dash.NewEngine(idx, app)
	bands := harness.KeywordBands(idx.Snapshot(), 10)
	fmt.Printf("\nsearch latency by keyword temperature (k=10, s=200):\n")
	for _, band := range []struct {
		name string
		kws  []string
	}{{"cold", bands.Cold}, {"warm", bands.Warm}, {"hot", bands.Hot}} {
		var total time.Duration
		var results int
		for _, kw := range band.kws {
			start := time.Now()
			rs, err := engine.Search(context.Background(), dash.Request{
				Keywords: []string{kw}, K: 10, SizeThreshold: 200,
			})
			if err != nil {
				return err
			}
			total += time.Since(start)
			results += len(rs)
		}
		fmt.Printf("  %-5s avg %10v  (%d keywords, %.1f results each; example %q df=%d)\n",
			band.name, (total / time.Duration(len(band.kws))).Round(time.Microsecond),
			len(band.kws), float64(results)/float64(len(band.kws)),
			band.kws[0], idx.DF(band.kws[0]))
	}

	// One concrete search, URLs included.
	kw := bands.Hot[0]
	results, err := engine.Search(context.Background(), dash.Request{Keywords: []string{kw}, K: 3, SizeThreshold: 200})
	if err != nil {
		return err
	}
	fmt.Printf("\ntop-3 db-pages for hot keyword %q:\n", kw)
	for i, r := range results {
		fmt.Printf("  %d. %s (score %.6f, %d keywords)\n", i+1, r.URL, r.Score, r.Size)
	}
	return nil
}
