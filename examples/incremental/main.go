// Incremental demonstrates fragment-index maintenance under database
// updates — the paper's first future-work item (§VIII): "some efficient
// update mechanisms that can efficiently update (affected portions of) a
// fragment index are desirable".
//
// A new customer comment is inserted into fooddb. Instead of re-crawling
// everything, Dash recomputes only the affected fragment (by executing the
// application query for that fragment's selection values) and patches the
// index in place: postings, node weight, and graph edges all stay
// consistent, and searches immediately see the new content.
package main

import (
	"context"
	"fmt"
	"log"

	dash "repro"
	"repro/internal/fooddb"
	"repro/internal/fragment"
	"repro/internal/relation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := fooddb.New()
	app, err := dash.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		return err
	}
	if err := app.Bind(db); err != nil {
		return err
	}
	idx, stats, err := dash.Build(context.Background(), db, app, dash.BuildOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("initial index: %d fragments, %d keywords\n", stats.Fragments, stats.Keywords)

	engine := dash.NewEngine(idx, app)
	before, err := engine.Search(dash.Request{Keywords: []string{"froyo"}, K: 5, SizeThreshold: 5})
	if err != nil {
		return err
	}
	fmt.Printf("search \"froyo\" before update: %d results\n", len(before))

	// A customer posts a new comment on Bond's Cafe (rid 7, an American
	// restaurant with budget 9).
	comments, err := db.Table("comment")
	if err != nil {
		return err
	}
	err = comments.Append(relation.Row{
		relation.Int(207), relation.Int(7), relation.Int(120),
		relation.String("Great froyo dessert"), relation.String("03/12"),
	})
	if err != nil {
		return err
	}
	fmt.Println("\ninserted comment 207: \"Great froyo dessert\" on Bond's Cafe")

	// Only the (American, 9) fragment is affected. Recompute it by
	// executing the application query pinned to the fragment's selection
	// values, and patch the index.
	affected := fragment.ID{relation.String("American"), relation.Int(9)}
	bound, err := app.Bound()
	if err != nil {
		return err
	}
	rows, err := bound.Execute(db, map[string]relation.Value{
		"cuisine": relation.String("American"),
		"min":     relation.Int(9),
		"max":     relation.Int(9),
	})
	if err != nil {
		return err
	}
	counts := make(map[string]int64)
	var total int64
	for _, row := range rows.Rows {
		perRow := make(map[string]int)
		for _, v := range row {
			total += int64(fragment.CountTokens(v, perRow))
		}
		for kw, c := range perRow {
			counts[kw] += int64(c)
		}
	}
	if err := idx.UpdateFragment(affected, counts, total); err != nil {
		return err
	}
	fmt.Printf("patched fragment %s: now %d keywords (was 8)\n", affected, total)
	fmt.Printf("index still has %d fragments, %d graph edges — only one fragment touched\n",
		idx.NumFragments(), idx.NumEdges())

	// The new content is searchable instantly.
	after, err := engine.Search(dash.Request{Keywords: []string{"froyo"}, K: 5, SizeThreshold: 5})
	if err != nil {
		return err
	}
	fmt.Printf("\nsearch \"froyo\" after update: %d result(s)\n", len(after))
	for _, r := range after {
		fmt.Printf("  %s (score %.4f)\n", r.URL, r.Score)
	}

	// And the suggested URL serves the fresh comment.
	page, err := app.Execute(after[0].QueryString)
	if err != nil {
		return err
	}
	fmt.Printf("\ndb-page %s now renders %d rows, including the new comment:\n",
		after[0].QueryString, page.Len())
	for _, row := range page.Rows {
		fmt.Printf("  %v\n", row)
	}
	return nil
}
