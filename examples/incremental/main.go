// Incremental demonstrates online fragment-index maintenance — the paper's
// first future-work item (§VIII: "some efficient update mechanisms that can
// efficiently update (affected portions of) a fragment index are
// desirable") — under live query traffic.
//
// The index is served through a dash.LiveEngine built on epoch-swap
// snapshots: searcher goroutines stream top-k queries, each pinned to an
// immutable snapshot resolved with one atomic load, while the writer
// mutates the fooddb database and calls Recrawl, which re-executes the
// application query for the affected partitions only, derives a Delta
// (insert/remove/update per fragment), and atomically publishes the
// patched index version. A snapshot pinned before the update keeps
// answering with the old contents — repeatable reads for free — while new
// searches see the fresh comment immediately.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	dash "repro"
	"repro/internal/fooddb"
	"repro/internal/relation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := fooddb.New()
	app, err := dash.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		return err
	}
	if err := app.Bind(db); err != nil {
		return err
	}
	idx, stats, err := dash.Build(context.Background(), db, app, dash.BuildOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("initial index: %d fragments, %d keywords\n", stats.Fragments, stats.Keywords)

	ctx := context.Background()
	// Open picks the live (epoch-swap) topology by default; the concrete
	// type is asserted because this example also demonstrates explicit
	// snapshot pinning, which is outside the portable Handle contract.
	opened, err := dash.Open(ctx, idx, app)
	if err != nil {
		return err
	}
	engine := opened.(*dash.LiveEngine)
	froyo := dash.Request{Keywords: []string{"froyo"}, K: 5, SizeThreshold: 5}

	before, err := engine.Search(ctx, froyo)
	if err != nil {
		return err
	}
	fmt.Printf("search \"froyo\" before update: %d results\n", len(before))

	// Pin the pre-update version: everything searched through it stays
	// byte-identical no matter what is published later.
	pinned := engine.Snapshot()

	// Query traffic keeps flowing while the index is maintained: searcher
	// goroutines hammer the live engine and count how many of their
	// answers came from the post-update index version.
	var (
		searches   atomic.Int64
		sawFresh   atomic.Int64
		searcherWG sync.WaitGroup
	)
	for g := 0; g < 4; g++ {
		searcherWG.Add(1)
		go func() {
			defer searcherWG.Done()
			for i := 0; i < 500; i++ {
				rs, err := engine.Search(context.Background(), froyo)
				if err != nil {
					panic(err)
				}
				searches.Add(1)
				if len(rs) > 0 {
					sawFresh.Add(1)
				}
			}
		}()
	}

	// A customer posts a new comment on Bond's Cafe (rid 7, an American
	// restaurant with budget 9) — the database changes under the index.
	comments, err := db.Table("comment")
	if err != nil {
		return err
	}
	err = comments.Append(relation.Row{
		relation.Int(207), relation.Int(7), relation.Int(120),
		relation.String("Great froyo dessert"), relation.String("03/12"),
	})
	if err != nil {
		return err
	}
	fmt.Println("\ninserted comment 207: \"Great froyo dessert\" on Bond's Cafe")

	// Only the (American, 9) partition is affected. Recrawl re-executes the
	// application query pinned to it, derives the delta, and swaps in the
	// patched snapshot — while the searchers above keep running.
	affected := dash.FragmentID{relation.String("American"), relation.Int(9)}
	applied, err := engine.Recrawl(ctx, db, []dash.FragmentID{affected})
	if err != nil {
		return err
	}
	fmt.Printf("recrawled partition %s: %d updated, cloned %d posting lists in %d shards (epoch %d)\n",
		affected, applied.Total.Updated, applied.Total.ClonedLists, applied.Total.ClonedShards, applied.Total.Epoch)
	st := engine.Stats()
	fmt.Printf("index still has %d fragments — only one partition touched\n", st.Fragments)

	searcherWG.Wait()
	fmt.Printf("served %d searches concurrently with the update (%d saw the new content)\n",
		searches.Load(), sawFresh.Load())

	// New searches see the fresh comment instantly…
	after, err := engine.Search(ctx, froyo)
	if err != nil {
		return err
	}
	fmt.Printf("\nsearch \"froyo\" after update: %d result(s)\n", len(after))
	for _, r := range after {
		fmt.Printf("  %s (score %.4f)\n", r.URL, r.Score)
	}

	// …while the pinned pre-update snapshot still answers with the old
	// contents (repeatable reads across index versions).
	old, err := engine.Engine().SearchSnapshot(ctx, pinned, froyo)
	if err != nil {
		return err
	}
	fmt.Printf("pinned pre-update snapshot (epoch %d) still returns %d results\n",
		pinned.Epoch(), len(old))

	// And the suggested URL serves the fresh comment.
	page, err := app.Execute(after[0].QueryString)
	if err != nil {
		return err
	}
	fmt.Printf("\ndb-page %s now renders %d rows, including the new comment:\n",
		after[0].QueryString, page.Len())
	for _, row := range page.Rows {
		fmt.Printf("  %v\n", row)
	}
	return nil
}
