// Replicated demonstrates the replicated serving tier: a durable leader
// exposing its replication transport, two journal-tailing read replicas
// bootstrapped from the leader's snapshots, and bounded-staleness read
// routing across the fleet.
//
// The walk-through:
//
//  1. Open a durable leader over fooddb and mount its replication
//     handler (snapshot bootstrap + journal tail) under /v1/replication.
//  2. Boot two replicas with dash.OpenReplica. Each bootstraps from the
//     leader's newest checkpoint, tails the journal, and serves searches
//     byte-identical to the leader at the same epoch.
//  3. Apply mutations on the leader and watch both replicas converge.
//  4. The lagging-replica scenario: sever replica B's transport, keep
//     mutating, and watch the leader's router stop placing reads on B
//     once it lags past the staleness bound — then sever A as well and
//     watch routing fall back to the leader itself. B keeps serving its
//     stale-but-consistent view the whole time.
//  5. Heal B and watch it re-converge without a restart.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	dash "repro"
	"repro/internal/fooddb"
	"repro/internal/relation"
)

// severableTransport fails every request while severed — the example's
// stand-in for a network partition between replica and leader.
type severableTransport struct{ severed atomic.Bool }

func (s *severableTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if s.severed.Load() {
		return nil, errors.New("network partition (demo)")
	}
	return http.DefaultTransport.RoundTrip(r)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	db := fooddb.New()
	app, err := dash.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		return err
	}
	if err := app.Bind(db); err != nil {
		return err
	}
	idx, _, err := dash.Build(ctx, db, app, dash.BuildOptions{Algorithm: dash.AlgReference})
	if err != nil {
		return err
	}

	// The replicas' readiness endpoints must exist before the leader's
	// router starts polling them, and the replicas need the leader's URL
	// to bootstrap — so reserve the replica listeners first.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	// 1. Durable leader with bounded-staleness routing over the fleet: a
	// read with no explicit min_epoch may land on any replica within 2
	// epochs of the leader's current epoch.
	dir, err := os.MkdirTemp("", "dash-replicated-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	leader, err := dash.Open(ctx, idx, app,
		dash.WithDataDir(dir),
		dash.WithReplicas(urlA, urlB),
		dash.WithStalenessBound(2))
	if err != nil {
		return err
	}
	defer leader.(interface{ Close() error }).Close()

	leaderMux := http.NewServeMux()
	leaderMux.Handle(dash.ReplicationPrefix+"/",
		http.StripPrefix(dash.ReplicationPrefix, leader.(dash.Replicable).ReplicationHandler()))
	lnLeader, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go http.Serve(lnLeader, leaderMux)
	leaderURL := "http://" + lnLeader.Addr().String()
	fmt.Printf("leader serving replication at %s%s\n", leaderURL, dash.ReplicationPrefix)

	// 2. Two replicas: A on a healthy link, B behind a severable one.
	bTransport := &severableTransport{}
	repA, err := dash.OpenReplica(ctx, leaderURL, app,
		dash.WithReplicaPoll(200*time.Millisecond, 20*time.Millisecond))
	if err != nil {
		return err
	}
	defer repA.Close()
	repB, err := dash.OpenReplica(ctx, leaderURL, app,
		dash.WithReplicaPoll(200*time.Millisecond, 20*time.Millisecond),
		dash.WithReplicaTransport(&http.Client{Transport: bTransport}))
	if err != nil {
		return err
	}
	defer repB.Close()
	srvA := serveReadyz(lnA, repA)
	defer srvA.Close()
	srvB := serveReadyz(lnB, repB)
	defer srvB.Close()
	fmt.Printf("replica A at %s, replica B at %s (bootstrapped from leader snapshots)\n", urlA, urlB)

	// 3. Mutate through the leader; the journal tail carries the deltas.
	for i := 0; i < 3; i++ {
		if _, err := leader.Apply(ctx, insertDelta(i)); err != nil {
			return err
		}
	}
	waitConverged("A", repA, leader)
	waitConverged("B", repB, leader)
	showSearch("leader ", leader)
	showSearch("replica A", repA)
	showSearch("replica B", repB)

	// 4. The lagging replica: partition B, wait until its tail loop has
	// actually hit the partition (an in-flight long-poll can still carry
	// records), then keep writing. The staleness bound is 2 epochs, so
	// after 4 more mutations B no longer qualifies.
	fmt.Println("\n-- partitioning replica B, applying 4 more mutations --")
	bTransport.severed.Store(true)
	waitSevered(repB)
	for i := 3; i < 7; i++ {
		if _, err := leader.Apply(ctx, insertDelta(i)); err != nil {
			return err
		}
	}
	waitConverged("A", repA, leader)
	showRouting(leader, "B lags past the bound: reads placed on A only", true)

	// B still serves — its last applied view, consistent if stale.
	showSearch("replica B (stale)", repB)

	// Take A down entirely (its readiness endpoint stops answering):
	// nobody qualifies, and the router reports fallback — the leader
	// serves its own reads.
	srvA.Close()
	repA.Close()
	waitUnhealthy(leader, urlA)
	showRouting(leader, "no replica qualifies: bounded-staleness falls back to the leader", false)

	// 5. Heal the partition: B re-converges from its cursor, no restart.
	fmt.Println("\n-- healing replica B --")
	bTransport.severed.Store(false)
	waitConverged("B", repB, leader)
	showSearch("replica B (healed)", repB)
	return nil
}

// serveReadyz publishes a replica's tail report the way dashserve's
// /v1/readyz does — the shape the leader-side router polls. Returns the
// server so the demo can take the endpoint down (Close also severs
// keep-alive connections, which closing the listener alone would not).
func serveReadyz(ln net.Listener, rep *dash.ReplicaEngine) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":      "ready",
			"replication": rep.ReplicationStats(),
		})
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv
}

func insertDelta(i int) dash.Delta {
	return dash.Delta{Changes: []dash.FragmentChange{{
		Op:         dash.OpInsertFragment,
		ID:         dash.FragmentID{relation.String("Nordic"), relation.Int(int64(100 + i))},
		TermCounts: map[string]int64{"herring": int64(i + 1), "rye": 1},
		TotalTerms: int64(i + 2),
	}}}
}

func waitConverged(name string, rep *dash.ReplicaEngine, leader dash.Handle) {
	lead := leader.(dash.DurabilityReporter).DurabilityStats().PerShard[0].DurableEpoch
	for rep.ReplicationStats().MinApplied < lead {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("replica %s converged at epoch %d\n", name, rep.ReplicationStats().MinApplied)
}

func waitSevered(rep *dash.ReplicaEngine) {
	for rep.ReplicationStats().State != "severed" {
		time.Sleep(20 * time.Millisecond)
	}
}

// waitUnhealthy blocks until the leader's router notices a replica
// stopped answering readiness polls.
func waitUnhealthy(leader dash.Handle, url string) {
	for {
		for _, rs := range leader.Stats().Replicas.Replicas {
			if rs.URL == url && !rs.Healthy {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func showSearch(name string, s dash.Searcher) {
	results, err := s.Search(context.Background(), dash.Request{
		Keywords: []string{"herring"}, K: 3, SizeThreshold: 25,
	})
	if err != nil {
		fmt.Printf("%s: search failed: %v\n", name, err)
		return
	}
	fmt.Printf("%s: %d results for \"herring\"", name, len(results))
	if len(results) > 0 {
		fmt.Printf(", top %s (score %.3f)", results[0].URL, results[0].Score)
	}
	fmt.Println()
}

// showRouting polls the leader's placement decision until the router's
// ~500ms readiness poll catches up with the world and the decision takes
// the expected shape, then prints where a default-bound read would run.
func showRouting(leader dash.Handle, caption string, expectProxy bool) {
	router := leader.(dash.SearchRouter)
	deadline := time.Now().Add(10 * time.Second)
	for {
		target, proxy := router.RouteSearch(dash.Request{})
		if proxy == expectProxy || time.Now().After(deadline) {
			if proxy {
				fmt.Printf("routing: %s -> replica %s\n", caption, target)
			} else {
				fmt.Printf("routing: %s -> served locally by the leader\n", caption)
			}
			stats := leader.Stats().Replicas
			fmt.Printf("  fleet: ")
			for _, rs := range stats.Replicas {
				fmt.Printf("[%s healthy=%v applied=%d] ", rs.URL, rs.Healthy, rs.MinApplied)
			}
			fmt.Printf("(routed=%d fallback=%d)\n", stats.Routed, stats.Fallback)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
