// Package dash is a search engine for database-generated dynamic web pages
// (db-pages), reproducing "Dash: A Novel Search Engine for Database-
// Generated Dynamic Web Pages" (Lee, Bankar, Zheng, Chow, Wang — ICDCS
// 2012).
//
// Db-pages are created on the fly by a web application from a backend
// database in response to query strings, so conventional crawlers never see
// them. Dash instead reverse-engineers the application: Analyze extracts
// its parameterized project-select-join query from servlet-style source;
// Build crawls the database with MapReduce-based algorithms, deriving
// disjoint db-page fragments and a fragment index (inverted fragment index
// + fragment graph); and Engine.Search assembles fragments into the k most
// relevant db-pages, returning the URLs that regenerate them.
//
// Quickstart:
//
//	app, _ := dash.Analyze(servletSource, "http://example.com/Search")
//	_ = app.Bind(db)
//	idx, stats, _ := dash.Build(ctx, db, app, dash.BuildOptions{})
//	engine := dash.NewEngine(idx, app)
//	results, _ := engine.Search(dash.Request{
//	    Keywords: []string{"burger"}, K: 2, SizeThreshold: 20,
//	})
//	for _, r := range results {
//	    fmt.Println(r.URL) // e.g. http://example.com/Search?c=American&l=10&u=12
//	}
package dash

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/crawl"
	"repro/internal/fragindex"
	"repro/internal/relation"
	"repro/internal/search"
	"repro/internal/webapp"
)

// Re-exported types: the facade is intentionally thin so downstream code
// can also import the internal packages' documentation vocabulary.
type (
	// Application is an analyzed web application: its parameterized PSJ
	// query plus bidirectional query-string logic.
	Application = webapp.Application
	// Binding maps an HTTP query-string field to a query parameter.
	Binding = webapp.Binding
	// Index is the fragment index (inverted fragment index + fragment
	// graph).
	Index = fragindex.Index
	// Engine answers top-k db-page searches.
	Engine = search.Engine
	// MultiEngine federates search across applications sharing a
	// database.
	MultiEngine = search.MultiEngine
	// Request parameterizes one search: keywords W, result count k, and
	// db-page size threshold s.
	Request = search.Request
	// Result is one suggested db-page with its URL and relevance score.
	Result = search.Result
	// FragRef identifies a fragment within an Index.
	FragRef = fragindex.FragRef
)

// Algorithm selects the crawling/indexing strategy.
type Algorithm string

// Available crawl algorithms. AlgReference crawls without MapReduce using
// the in-process relational evaluator — the right choice for small embedded
// deployments; the MR algorithms reproduce the paper's §V and scale with
// cores.
const (
	AlgStepwise   Algorithm = Algorithm(crawl.AlgStepwise)
	AlgIntegrated Algorithm = Algorithm(crawl.AlgIntegrated)
	AlgReference  Algorithm = "reference"
)

// Database is the relational substrate Dash crawls; construct one with the
// relation package or a generator like internal/tpch.
type Database = relation.Database

// BuildOptions configures Build.
type BuildOptions struct {
	// Algorithm defaults to AlgIntegrated (the paper's fastest).
	Algorithm Algorithm
	// Parallelism, MapTasks, and ReduceTasks tune the MapReduce engine;
	// zero values default to GOMAXPROCS.
	Parallelism int
	MapTasks    int
	ReduceTasks int
}

// BuildStats reports what Build produced and what it cost.
type BuildStats struct {
	Algorithm Algorithm
	// Phases carries per-phase MapReduce metrics (empty for
	// AlgReference): SW-Jn/SW-Grp/SW-Idx or INT-Jn/INT-Ext/INT-Cnsd.
	Phases     []crawl.Phase
	Fragments  int
	Keywords   int
	GraphEdges int
	// CrawlTime covers database crawling and fragment derivation;
	// IndexTime covers fragment-index (graph) construction.
	CrawlTime time.Duration
	IndexTime time.Duration
}

// Analyze reverse-engineers a servlet-style web application source into an
// Application (paper §III). Call Application.Bind with the database before
// Build.
func Analyze(src, baseURL string) (*Application, error) {
	return webapp.Analyze(src, baseURL)
}

// Build crawls the database and constructs the application's fragment
// index (paper §V). The application must be bound to db.
func Build(ctx context.Context, db *Database, app *Application, opts BuildOptions) (*Index, *BuildStats, error) {
	bound, err := app.Bound()
	if err != nil {
		return nil, nil, err
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = AlgIntegrated
	}
	copts := crawl.Options{
		Parallelism: opts.Parallelism,
		MapTasks:    opts.MapTasks,
		ReduceTasks: opts.ReduceTasks,
	}
	crawlStart := time.Now()
	var out *crawl.Output
	switch alg {
	case AlgStepwise:
		out, err = crawl.Stepwise(ctx, db, bound, copts)
	case AlgIntegrated:
		out, err = crawl.Integrated(ctx, db, bound, copts)
	case AlgReference:
		out, err = crawl.Reference(db, bound)
	default:
		return nil, nil, fmt.Errorf("dash: unknown algorithm %q", alg)
	}
	if err != nil {
		return nil, nil, err
	}
	crawlTime := time.Since(crawlStart)

	spec, err := fragindex.SpecFromBound(bound)
	if err != nil {
		return nil, nil, err
	}
	idxStart := time.Now()
	idx, err := fragindex.Build(out, spec)
	if err != nil {
		return nil, nil, err
	}
	stats := &BuildStats{
		Algorithm:  alg,
		Phases:     out.Phases,
		Fragments:  idx.NumFragments(),
		Keywords:   idx.NumKeywords(),
		GraphEdges: idx.NumEdges(),
		CrawlTime:  crawlTime,
		IndexTime:  time.Since(idxStart),
	}
	return idx, stats, nil
}

// NewEngine creates a search engine over a built index. app may be nil when
// URL formulation is not needed.
func NewEngine(idx *Index, app *Application) *Engine {
	return search.New(idx, app)
}

// NewMultiEngine federates several engines (applications sharing a
// database) with duplicate-content elimination.
func NewMultiEngine(engines ...*Engine) *MultiEngine {
	return search.NewMulti(engines...)
}

// SaveIndex serializes an index (gob encoding).
func SaveIndex(idx *Index, w io.Writer) error { return idx.Save(w) }

// LoadIndex deserializes an index written by SaveIndex.
func LoadIndex(r io.Reader) (*Index, error) { return fragindex.Load(r) }
