// Package dash is a search engine for database-generated dynamic web pages
// (db-pages), reproducing "Dash: A Novel Search Engine for Database-
// Generated Dynamic Web Pages" (Lee, Bankar, Zheng, Chow, Wang — ICDCS
// 2012).
//
// Db-pages are created on the fly by a web application from a backend
// database in response to query strings, so conventional crawlers never see
// them. Dash instead reverse-engineers the application: Analyze extracts
// its parameterized project-select-join query from servlet-style source;
// Build crawls the database with MapReduce-based algorithms, deriving
// disjoint db-page fragments and a fragment index (inverted fragment index
// + fragment graph); and Engine.Search assembles fragments into the k most
// relevant db-pages, returning the URLs that regenerate them.
//
// Quickstart:
//
//	app, _ := dash.Analyze(servletSource, "http://example.com/Search")
//	_ = app.Bind(db)
//	idx, stats, _ := dash.Build(ctx, db, app, dash.BuildOptions{})
//	eng, _ := dash.Open(ctx, idx, app) // takes ownership of idx
//	results, _ := eng.Search(ctx, dash.Request{
//	    Keywords: []string{"burger"}, K: 2, SizeThreshold: 20,
//	})
//	for _, r := range results {
//	    fmt.Println(r.URL) // e.g. http://example.com/Search?c=American&l=10&u=12
//	}
//
// # One contract, three topologies
//
// Open returns a Handle — the Searcher + Maintainer contract — and picks
// the serving topology from its options: a read-only engine over a frozen
// snapshot (WithReadOnly), a single live index absorbing deltas under
// query traffic (the default), or a sharded index scattering searches and
// routing writes across independent publish cycles (WithShards(n)). Call
// sites written against the contract swap topologies without rewrites,
// and every topology returns byte-identical results for the same corpus.
// Every method takes a context.Context first: searches honor cancellation
// cooperatively mid-assembly, batch fan-outs abandon queued work, and a
// cancelled apply publishes nothing in the failing cycle.
//
// # Serving while the database changes
//
// A db-page index is only useful while it tracks the database, so the
// default topology serves lock-free searches against immutable epoch-swap
// snapshots while a writer folds database changes into the next snapshot
// and publishes it atomically. Searches in flight keep their pinned
// snapshot; new searches see the new version.
//
//	live, _ := dash.Open(ctx, idx, app) // takes ownership of idx
//	go serve(live)                 // live.Search from any goroutine
//
//	// Rows changed in the database: re-crawl only the affected
//	// partitions and swap in the patched index version.
//	report, _ := live.Recrawl(ctx, db, []dash.FragmentID{
//	    {relation.String("American"), relation.Int(9)},
//	})
//	fmt.Println(report.Total.Updated, "fragments refreshed")
//
// Recrawl derives a Delta (insert/remove/update per fragment) by executing
// the application query pinned to each affected partition; Apply publishes
// a Delta built by any other means. Both are transactional: on error —
// a cancelled context included — the serving snapshot is unchanged.
//
// When changes arrive faster than they must become visible, batch them:
// ApplyBatch (or the Queue/Flush pair) coalesces any number of deltas into
// one published snapshot, paying a single publish — and a single
// copy-on-write pass over each touched fragment — for the whole batch.
//
// # Scaling across cores: sharded serving
//
// When one index can no longer absorb the write rate — or one snapshot
// walk per query leaves cores idle — partition it:
//
//	sharded, _ := dash.Open(ctx, idx, app, dash.WithShards(8))
//
// Fragments are routed to shards by their equality-group key, so db-page
// assembly never crosses shards; searches scatter over one pinned snapshot
// per shard with corpus-wide IDF and gather a global top-k identical to
// the single-index answer, while deltas route to their shards and apply
// concurrently with no global write lock. See ARCHITECTURE.md's "Public
// API" section for the full topology-selection rules.
package dash

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/crawl"
	"repro/internal/fragindex"
	"repro/internal/fragment"
	"repro/internal/relation"
	"repro/internal/search"
	"repro/internal/webapp"
)

// Re-exported types: the facade is intentionally thin so downstream code
// can also import the internal packages' documentation vocabulary.
type (
	// Application is an analyzed web application: its parameterized PSJ
	// query plus bidirectional query-string logic.
	Application = webapp.Application
	// Binding maps an HTTP query-string field to a query parameter.
	Binding = webapp.Binding
	// Index is the fragment index (inverted fragment index + fragment
	// graph).
	Index = fragindex.Index
	// Engine answers top-k db-page searches.
	Engine = search.Engine
	// MultiEngine federates search across applications sharing a
	// database.
	MultiEngine = search.MultiEngine
	// Request parameterizes one search: keywords W, result count k, and
	// db-page size threshold s.
	Request = search.Request
	// Result is one suggested db-page with its URL and relevance score.
	Result = search.Result
	// BatchResult is one request's outcome within a SearchBatch.
	BatchResult = search.BatchResult
	// MultiResult pairs a Result with the application that produced it
	// (MultiEngine.SearchApps).
	MultiResult = search.MultiResult
	// EngineStats is the unified serving-stats shape every topology's
	// Stats() answers.
	EngineStats = search.Stats
	// FragRef identifies a fragment within an Index.
	FragRef = fragindex.FragRef
	// Snapshot is one immutable version of a fragment index; the whole
	// search read path runs against it lock-free.
	Snapshot = fragindex.Snapshot
	// LiveIndex serves snapshots while absorbing deltas (epoch swap).
	LiveIndex = fragindex.LiveIndex
	// ShardedLiveIndex partitions the fragment space across independent
	// LiveIndex shards (group-key routing, per-shard publish cycles).
	ShardedLiveIndex = fragindex.ShardedLiveIndex
	// ShardedApplyStats reports a routed apply: summed totals plus what
	// each touched shard published.
	ShardedApplyStats = fragindex.ShardedApplyStats
	// ShardedLiveStats aggregates per-shard serving statistics.
	ShardedLiveStats = fragindex.ShardedLiveStats
	// FragmentID identifies a fragment: its selection-attribute values.
	FragmentID = fragment.ID
	// Delta is a batch of fragment changes derived from database updates.
	Delta = crawl.Delta
	// FragmentChange is one fragment's insert/remove/update within a Delta.
	FragmentChange = crawl.FragmentChange
	// ApplyStats reports what one delta application did and cost.
	ApplyStats = fragindex.ApplyStats
	// ApplyReport is the Maintainer contract's uniform apply result:
	// summed totals plus, for sharded topologies, what each touched shard
	// published (PerShard is nil for a single publish cycle).
	ApplyReport = fragindex.ShardedApplyStats
	// LiveStats summarizes a serving index and its maintenance history.
	LiveStats = fragindex.LiveStats
)

// Delta change operations, re-exported for building Deltas by hand.
const (
	OpInsertFragment = crawl.OpInsertFragment
	OpRemoveFragment = crawl.OpRemoveFragment
	OpUpdateFragment = crawl.OpUpdateFragment
)

// Algorithm selects the crawling/indexing strategy.
type Algorithm string

// Available crawl algorithms. AlgReference crawls without MapReduce using
// the in-process relational evaluator — the right choice for small embedded
// deployments; the MR algorithms reproduce the paper's §V and scale with
// cores.
const (
	AlgStepwise   Algorithm = Algorithm(crawl.AlgStepwise)
	AlgIntegrated Algorithm = Algorithm(crawl.AlgIntegrated)
	AlgReference  Algorithm = "reference"
)

// Database is the relational substrate Dash crawls; construct one with the
// relation package or a generator like internal/tpch.
type Database = relation.Database

// BuildOptions configures Build.
type BuildOptions struct {
	// Algorithm defaults to AlgIntegrated (the paper's fastest).
	Algorithm Algorithm
	// Parallelism, MapTasks, and ReduceTasks tune the MapReduce engine;
	// zero values default to GOMAXPROCS.
	Parallelism int
	MapTasks    int
	ReduceTasks int
}

// BuildStats reports what Build produced and what it cost.
type BuildStats struct {
	Algorithm Algorithm
	// Phases carries per-phase MapReduce metrics (empty for
	// AlgReference): SW-Jn/SW-Grp/SW-Idx or INT-Jn/INT-Ext/INT-Cnsd.
	Phases     []crawl.Phase
	Fragments  int
	Keywords   int
	GraphEdges int
	// CrawlTime covers database crawling and fragment derivation;
	// IndexTime covers fragment-index (graph) construction.
	CrawlTime time.Duration
	IndexTime time.Duration
}

// Analyze reverse-engineers a servlet-style web application source into an
// Application (paper §III). Call Application.Bind with the database before
// Build.
func Analyze(src, baseURL string) (*Application, error) {
	return webapp.Analyze(src, baseURL)
}

// Build crawls the database and constructs the application's fragment
// index (paper §V). The application must be bound to db.
func Build(ctx context.Context, db *Database, app *Application, opts BuildOptions) (*Index, *BuildStats, error) {
	bound, err := app.Bound()
	if err != nil {
		return nil, nil, err
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = AlgIntegrated
	}
	copts := crawl.Options{
		Parallelism: opts.Parallelism,
		MapTasks:    opts.MapTasks,
		ReduceTasks: opts.ReduceTasks,
	}
	crawlStart := time.Now()
	var out *crawl.Output
	switch alg {
	case AlgStepwise:
		out, err = crawl.Stepwise(ctx, db, bound, copts)
	case AlgIntegrated:
		out, err = crawl.Integrated(ctx, db, bound, copts)
	case AlgReference:
		out, err = crawl.Reference(db, bound)
	default:
		return nil, nil, fmt.Errorf("dash: unknown algorithm %q", alg)
	}
	if err != nil {
		return nil, nil, err
	}
	crawlTime := time.Since(crawlStart)

	spec, err := fragindex.SpecFromBound(bound)
	if err != nil {
		return nil, nil, err
	}
	idxStart := time.Now()
	idx, err := fragindex.Build(out, spec)
	if err != nil {
		return nil, nil, err
	}
	stats := &BuildStats{
		Algorithm:  alg,
		Phases:     out.Phases,
		Fragments:  idx.NumFragments(),
		Keywords:   idx.NumKeywords(),
		GraphEdges: idx.NumEdges(),
		CrawlTime:  crawlTime,
		IndexTime:  time.Since(idxStart),
	}
	return idx, stats, nil
}

// NewEngine creates a search engine over a built index. app may be nil when
// URL formulation is not needed.
//
// Deprecated: construct serving engines through Open — NewEngine remains
// for direct, mutable-index use (tests, offline tooling) and for callers
// that need the concrete type.
func NewEngine(idx *Index, app *Application) *Engine {
	return search.New(idx, app)
}

// NewMultiEngine federates several engines (applications sharing a
// database) with duplicate-content elimination.
func NewMultiEngine(engines ...*Engine) *MultiEngine {
	return search.NewMulti(engines...)
}

// report lifts a single-cycle ApplyStats into the Maintainer contract's
// uniform shape (no per-shard breakdown: there is one publish cycle).
func report(st ApplyStats) ApplyReport { return ApplyReport{Total: st} }

// LiveEngine pairs a LiveIndex with a search engine: lock-free top-k
// searches against the current published snapshot, plus the single-writer
// maintenance API that folds database changes into the next snapshot. All
// methods are safe for concurrent use: Apply, Recrawl, and RecrawlWith
// serialize among themselves, including Recrawl's delta derivation — two
// concurrent recrawls of the same partition cannot misclassify each
// other's in-flight inserts or removals.
type LiveEngine struct {
	// mu serializes the whole maintenance cycle (derive + apply), so delta
	// classification always runs against the latest published snapshot.
	mu     sync.Mutex
	live   *fragindex.LiveIndex
	engine *search.Engine
	app    *Application
	// workers and candLimit carry Open's WithWorkers/WithCandidateLimit
	// defaults (zero: runtime-chosen workers, full posting lists).
	workers   int
	candLimit int
}

// NewLiveEngine wraps a built index for online serving. It takes ownership
// of idx: all further access must go through the LiveEngine. app may be
// nil when URL formulation is not needed.
//
// Deprecated: construct through Open, which picks this topology by
// default and configures it with functional options.
func NewLiveEngine(idx *Index, app *Application) *LiveEngine {
	live := fragindex.NewLive(idx)
	return &LiveEngine{live: live, engine: search.New(live, app), app: app}
}

// Search answers a top-k query against the current snapshot.
func (le *LiveEngine) Search(ctx context.Context, req Request) ([]Result, error) {
	return le.engine.Search(ctx, fillCandidateLimit(req, le.candLimit))
}

// SearchBatch evaluates a batch of requests concurrently over the
// handle's worker pool, all pinned to one snapshot.
func (le *LiveEngine) SearchBatch(ctx context.Context, reqs []Request) []BatchResult {
	return le.engine.ParallelSearch(ctx, fillCandidateLimits(reqs, le.candLimit), le.workers)
}

// ParallelSearch evaluates a batch of requests concurrently over an
// explicit worker count, all pinned to one snapshot.
func (le *LiveEngine) ParallelSearch(ctx context.Context, reqs []Request, workers int) []BatchResult {
	return le.engine.ParallelSearch(ctx, fillCandidateLimits(reqs, le.candLimit), workers)
}

// Engine returns the underlying search engine (for MultiEngine federation
// or snapshot-pinned searches via SearchSnapshot).
func (le *LiveEngine) Engine() *Engine { return le.engine }

// Live returns the underlying live index (stats, explicit snapshots,
// compaction).
func (le *LiveEngine) Live() *LiveIndex { return le.live }

// Snapshot returns the current published index version.
func (le *LiveEngine) Snapshot() *Snapshot { return le.live.Snapshot() }

// Apply folds a delta into the index and atomically publishes the result.
// A cancelled ctx publishes nothing and returns ctx.Err().
func (le *LiveEngine) Apply(ctx context.Context, d Delta) (ApplyReport, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	st, err := le.live.Apply(ctx, d)
	if err != nil {
		return ApplyReport{}, err
	}
	return report(st), nil
}

// ApplyBatch coalesces a sequence of deltas and publishes their net effect
// as one snapshot — one publish for the whole batch instead of one per
// delta (see fragindex.LiveIndex.ApplyBatch for the folding rules).
func (le *LiveEngine) ApplyBatch(ctx context.Context, ds []Delta) (ApplyReport, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	st, err := le.live.ApplyBatch(ctx, ds)
	if err != nil {
		return ApplyReport{}, err
	}
	return report(st), nil
}

// Queue buffers a delta for a later batched publish without applying it,
// returning the queue length. Flush drains the queue as one publish.
func (le *LiveEngine) Queue(d Delta) int { return le.live.Queue(d) }

// Flush applies every queued delta as one batched publish.
func (le *LiveEngine) Flush(ctx context.Context) (ApplyReport, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	st, err := le.live.Flush(ctx)
	if err != nil {
		return ApplyReport{}, err
	}
	return report(st), nil
}

// Stats summarizes the serving index and its maintenance history in the
// unified shape; LiveStats has the single-index report.
func (le *LiveEngine) Stats() EngineStats { return le.engine.Stats() }

// LiveStats is the single-index maintenance report (the unified Stats
// carries the same numbers).
func (le *LiveEngine) LiveStats() LiveStats { return le.live.Stats() }

// CompactIfNeeded runs the snapshot garbage collector, returning 1 when
// the publish cycle compacted.
func (le *LiveEngine) CompactIfNeeded(ctx context.Context, maxDeadRatio float64) (int, error) {
	ran, err := le.live.CompactIfNeeded(ctx, maxDeadRatio)
	if err != nil {
		return 0, err
	}
	if ran {
		return 1, nil
	}
	return 0, nil
}

// SetPostingCompaction tunes the posting-list compaction threshold (see
// fragindex.Index.SetPostingCompaction).
func (le *LiveEngine) SetPostingCompaction(num, den int) error {
	return le.live.SetPostingCompaction(num, den)
}

// Recrawl re-executes the application query for the given fragment
// partitions only — not the whole database — derives the resulting Delta
// (inserts, removals, updates), and publishes it. This is the paper's
// §VIII "efficient update mechanism" end to end: after database rows
// change, pass every fragment identifier whose partition is affected.
func (le *LiveEngine) Recrawl(ctx context.Context, db *Database, ids []FragmentID) (ApplyReport, error) {
	return le.RecrawlWith(ctx, db, ids, Delta{})
}

// RecrawlWith combines a targeted re-crawl with explicit extra changes and
// applies everything as one transactional delta. Derivation runs under the
// same lock as the apply and classifies against the latest published
// snapshot, so concurrent maintenance calls observe each other's results
// instead of racing. A ctx cancelled during derivation or apply publishes
// nothing.
func (le *LiveEngine) RecrawlWith(ctx context.Context, db *Database, ids []FragmentID, extra Delta) (ApplyReport, error) {
	if len(ids) > 0 && le.app == nil {
		return ApplyReport{}, fmt.Errorf("dash: Recrawl needs an application bound to the engine")
	}
	le.mu.Lock()
	defer le.mu.Unlock()
	d := Delta{
		SelAttrs: extra.SelAttrs,
		Changes:  append([]FragmentChange(nil), extra.Changes...),
	}
	if len(ids) > 0 {
		derived, err := le.deriveLocked(ctx, db, ids)
		if err != nil {
			return ApplyReport{}, err
		}
		if d.SelAttrs == nil {
			d.SelAttrs = derived.SelAttrs
		}
		d.Changes = append(d.Changes, derived.Changes...)
	}
	st, err := le.live.Apply(ctx, d)
	if err != nil {
		return ApplyReport{}, err
	}
	return report(st), nil
}

// RecrawlBatch combines a targeted re-crawl with a batch of explicit
// deltas and publishes everything as one coalesced snapshot: the derived
// re-crawl delta joins ds and the whole batch pays a single publish.
// Unlike sequential Apply calls, changes to the same fragment across the
// batch are folded first (an insert a later delta removes never touches
// the index). Derivation runs under the maintenance lock like RecrawlWith.
func (le *LiveEngine) RecrawlBatch(ctx context.Context, db *Database, ids []FragmentID, ds []Delta) (ApplyReport, error) {
	if len(ids) > 0 && le.app == nil {
		return ApplyReport{}, fmt.Errorf("dash: Recrawl needs an application bound to the engine")
	}
	le.mu.Lock()
	defer le.mu.Unlock()
	batch := append([]Delta(nil), ds...)
	if len(ids) > 0 {
		derived, err := le.deriveLocked(ctx, db, ids)
		if err != nil {
			return ApplyReport{}, err
		}
		batch = append(batch, derived)
	}
	st, err := le.live.ApplyBatch(ctx, batch)
	if err != nil {
		return ApplyReport{}, err
	}
	return report(st), nil
}

// deriveLocked re-crawls the given partitions against the latest published
// snapshot. Caller holds le.mu.
func (le *LiveEngine) deriveLocked(ctx context.Context, db *Database, ids []FragmentID) (Delta, error) {
	bound, err := le.app.Bound()
	if err != nil {
		return Delta{}, err
	}
	return crawl.DeriveDelta(ctx, db, bound, ids, le.live.Snapshot().Has)
}

// ShardedLiveEngine is the partitioned serving path: the fragment space is
// split across independent LiveIndex shards (hash of the equality-group
// key, so db-page assembly never crosses shards), searches scatter-gather
// over one pinned snapshot per shard with corpus-wide IDF, and maintenance
// deltas route to their shards and apply concurrently — no global write
// lock. With shards == 1 it behaves like a LiveEngine; with more it scales
// both reads and writes across cores. Like LiveEngine, maintenance calls
// serialize among themselves so delta classification always runs against
// the latest published state.
type ShardedLiveEngine struct {
	mu     sync.Mutex
	live   *fragindex.ShardedLiveIndex
	engine *search.ShardedEngine
	app    *Application
	// workers and candLimit carry Open's WithWorkers/WithCandidateLimit
	// defaults (zero: runtime-chosen workers, full posting lists).
	workers   int
	candLimit int
	// pendMu guards the engine-level delta queue (Queue/Flush); deltas are
	// buffered unrouted and partition across shards only at Flush.
	pendMu  sync.Mutex
	pending []Delta
}

// NewShardedLiveEngine partitions a built index across the given number of
// shards for online serving. It takes ownership of idx: all further access
// must go through the ShardedLiveEngine. app may be nil when URL
// formulation is not needed.
//
// Deprecated: construct through Open(idx, app, WithShards(n)).
func NewShardedLiveEngine(idx *Index, app *Application, shards int) (*ShardedLiveEngine, error) {
	live, err := fragindex.NewShardedLive(idx, shards)
	if err != nil {
		return nil, err
	}
	return &ShardedLiveEngine{live: live, engine: search.NewSharded(live, app), app: app}, nil
}

// Search answers a top-k query against the shards' current snapshots.
func (se *ShardedLiveEngine) Search(ctx context.Context, req Request) ([]Result, error) {
	return se.engine.Search(ctx, fillCandidateLimit(req, se.candLimit))
}

// Pin resolves one snapshot per shard; SearchPinned runs a request against
// such a pinned set for repeatable reads.
func (se *ShardedLiveEngine) Pin() []*Snapshot { return se.engine.Pin() }

// SearchPinned answers a top-k query against an explicitly pinned shard
// snapshot set (from Pin).
func (se *ShardedLiveEngine) SearchPinned(ctx context.Context, snaps []*Snapshot, req Request) ([]Result, error) {
	return se.engine.SearchPinned(ctx, snaps, fillCandidateLimit(req, se.candLimit))
}

// SearchBatch evaluates a batch of requests concurrently over the
// handle's worker pool, all pinned to one shard snapshot set.
func (se *ShardedLiveEngine) SearchBatch(ctx context.Context, reqs []Request) []BatchResult {
	return se.engine.ParallelSearch(ctx, fillCandidateLimits(reqs, se.candLimit), se.workers)
}

// ParallelSearch evaluates a batch of requests concurrently over an
// explicit worker count, all pinned to one shard snapshot set.
func (se *ShardedLiveEngine) ParallelSearch(ctx context.Context, reqs []Request, workers int) []BatchResult {
	return se.engine.ParallelSearch(ctx, fillCandidateLimits(reqs, se.candLimit), workers)
}

// Engine returns the underlying scatter-gather engine.
func (se *ShardedLiveEngine) Engine() *search.ShardedEngine { return se.engine }

// Live returns the underlying sharded index (per-shard access, stats,
// compaction).
func (se *ShardedLiveEngine) Live() *ShardedLiveIndex { return se.live }

// NumShards returns the shard count.
func (se *ShardedLiveEngine) NumShards() int { return se.live.NumShards() }

// Stats aggregates the per-shard serving statistics in the unified shape
// (PerShard carries each shard's own report). Queued includes the
// engine-level queue, which buffers unrouted deltas until Flush.
func (se *ShardedLiveEngine) Stats() EngineStats {
	st := se.engine.Stats()
	st.Queued += se.Pending()
	return st
}

// ShardStats is the sharded-index maintenance report (the unified Stats
// carries the same numbers).
func (se *ShardedLiveEngine) ShardStats() ShardedLiveStats { return se.live.Stats() }

// Apply routes a delta's changes to their shards and applies them
// concurrently (transactional per shard; see
// fragindex.ShardedLiveIndex.Apply for the cross-shard contract).
func (se *ShardedLiveEngine) Apply(ctx context.Context, d Delta) (ApplyReport, error) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.live.Apply(ctx, d)
}

// ApplyBatch coalesces a sequence of deltas and applies the net changes
// concurrently across shards — one publish per touched shard for the whole
// batch.
func (se *ShardedLiveEngine) ApplyBatch(ctx context.Context, ds []Delta) (ApplyReport, error) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.live.ApplyBatch(ctx, ds)
}

// Queue buffers a delta for a later batched publish without applying it,
// returning the queue length. Like LiveEngine.Queue it never blocks on
// the writer — only the short queue lock — so producers can enqueue while
// an earlier Flush is still publishing.
func (se *ShardedLiveEngine) Queue(d Delta) int {
	se.pendMu.Lock()
	defer se.pendMu.Unlock()
	se.pending = append(se.pending, d)
	return len(se.pending)
}

// Pending returns the number of queued deltas awaiting Flush.
func (se *ShardedLiveEngine) Pending() int {
	se.pendMu.Lock()
	defer se.pendMu.Unlock()
	return len(se.pending)
}

// Flush drains the queue and applies everything as one coalesced, routed
// batch — each touched shard pays one publish. An already-cancelled ctx
// fails before the drain, leaving the queue intact; after the drain the
// batch is gone whether or not the apply succeeds (the LiveIndex.Flush
// contract).
func (se *ShardedLiveEngine) Flush(ctx context.Context) (ApplyReport, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return ApplyReport{}, err
		}
	}
	se.pendMu.Lock()
	batch := se.pending
	se.pending = nil
	se.pendMu.Unlock()
	return se.ApplyBatch(ctx, batch)
}

// CompactIfNeeded runs the snapshot garbage collector on every shard,
// returning how many compacted.
func (se *ShardedLiveEngine) CompactIfNeeded(ctx context.Context, maxDeadRatio float64) (int, error) {
	return se.live.CompactIfNeeded(ctx, maxDeadRatio)
}

// SetPostingCompaction tunes every shard's posting-list compaction
// threshold (see fragindex.Index.SetPostingCompaction).
func (se *ShardedLiveEngine) SetPostingCompaction(num, den int) error {
	return se.live.SetPostingCompaction(num, den)
}

// Recrawl re-executes the application query for the given fragment
// partitions, derives the delta, and applies it routed across shards.
func (se *ShardedLiveEngine) Recrawl(ctx context.Context, db *Database, ids []FragmentID) (ApplyReport, error) {
	return se.RecrawlWith(ctx, db, ids, Delta{})
}

// RecrawlWith combines a targeted re-crawl with explicit extra changes and
// applies everything as one routed delta. Derivation runs under the
// maintenance lock and classifies against the latest published shard
// snapshots.
func (se *ShardedLiveEngine) RecrawlWith(ctx context.Context, db *Database, ids []FragmentID, extra Delta) (ApplyReport, error) {
	if len(ids) > 0 && se.app == nil {
		return ApplyReport{}, fmt.Errorf("dash: Recrawl needs an application bound to the engine")
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	d := Delta{
		SelAttrs: extra.SelAttrs,
		Changes:  append([]FragmentChange(nil), extra.Changes...),
	}
	if len(ids) > 0 {
		derived, err := se.deriveLocked(ctx, db, ids)
		if err != nil {
			return ApplyReport{}, err
		}
		if d.SelAttrs == nil {
			d.SelAttrs = derived.SelAttrs
		}
		d.Changes = append(d.Changes, derived.Changes...)
	}
	return se.live.Apply(ctx, d)
}

// RecrawlBatch combines a targeted re-crawl with a batch of explicit
// deltas; the whole batch coalesces and each touched shard pays one
// publish.
func (se *ShardedLiveEngine) RecrawlBatch(ctx context.Context, db *Database, ids []FragmentID, ds []Delta) (ApplyReport, error) {
	if len(ids) > 0 && se.app == nil {
		return ApplyReport{}, fmt.Errorf("dash: Recrawl needs an application bound to the engine")
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	batch := append([]Delta(nil), ds...)
	if len(ids) > 0 {
		derived, err := se.deriveLocked(ctx, db, ids)
		if err != nil {
			return ApplyReport{}, err
		}
		batch = append(batch, derived)
	}
	return se.live.ApplyBatch(ctx, batch)
}

// deriveLocked re-crawls the given partitions against the latest published
// shard snapshots. Caller holds se.mu.
func (se *ShardedLiveEngine) deriveLocked(ctx context.Context, db *Database, ids []FragmentID) (Delta, error) {
	bound, err := se.app.Bound()
	if err != nil {
		return Delta{}, err
	}
	return crawl.DeriveDelta(ctx, db, bound, ids, se.live.Has)
}

// SaveIndex serializes an index (gob encoding).
func SaveIndex(idx *Index, w io.Writer) error { return idx.Save(w) }

// LoadIndex deserializes an index written by SaveIndex.
func LoadIndex(r io.Reader) (*Index, error) { return fragindex.Load(r) }
