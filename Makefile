# Dash reproduction build targets.

GO ?= go

.PHONY: build test race vet lint bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/search/ ./internal/fragindex/ ./cmd/dashserve/

vet:
	$(GO) vet ./...

# lint runs dashvet — the project's invariant analyzers (snapshotescape,
# ctxfirst, atomicfield, droppederr; see internal/lint and
# ARCHITECTURE.md "Static analysis & invariants") — together with the
# stock go vet suite. Any finding fails the target.
lint:
	$(GO) run ./cmd/dashvet ./...

# bench regenerates the tracked search-path performance snapshot: the
# Fig. 11 top-k sweep, the context-overhead guard (the cooperative
# cancellation poll must sit within noise of a background-ctx run), the
# parallel-throughput scaling benchmark, the live-mutation-under-load
# benchmark, the snapshot-publish-cost benchmark (chunked metadata +
# batched applies), the sharded serving benchmarks (scatter-gather
# search + routed applies at S = 1/4/16 vs the single-index baseline),
# the durable apply benchmark (journal off vs interval vs always), and
# the serving-under-load benchmark (result-cache hit-rate sweep, cached
# vs uncached hot path, open-loop 2x-overload shedding percentiles),
# with allocation counts, converted to BENCH_search.json so the perf
# trajectory is diffable PR over PR.
bench:
	$(GO) test -run '^$$' -bench 'Fig11|SearchContextOverhead|ParallelSearchThroughput|LiveMutationUnderLoad|ApplyPublishCost|ShardedSearchThroughput|ShardedApplyThroughput|DurableApplyThroughput|ServeOverload' -benchmem -count 1 . > BENCH_search.txt
	$(GO) run ./cmd/benchjson -o BENCH_search.json < BENCH_search.txt
	@rm -f BENCH_search.txt
	@echo wrote BENCH_search.json
