package faultfs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected marks every fault an Injector raises. Injected errors wrap
// both ErrInjected and the scheduled errno, so callers can test either
// `errors.Is(err, faultfs.ErrInjected)` or `errors.Is(err, syscall.ENOSPC)`.
var ErrInjected = errors.New("faultfs: injected fault")

// Op names one class of filesystem operation for rule matching.
type Op string

const (
	// OpAny matches every operation.
	OpAny Op = ""
	// OpOpen covers Open and OpenFile.
	OpOpen Op = "open"
	// OpRead covers File.Read and FS.ReadFile.
	OpRead Op = "read"
	// OpReadDir covers FS.ReadDir.
	OpReadDir Op = "readdir"
	// OpStat covers FS.Stat.
	OpStat Op = "stat"
	// OpWrite covers File.Write, File.WriteAt and FS.WriteFile.
	OpWrite Op = "write"
	// OpSync covers File.Sync (files and directories alike).
	OpSync Op = "sync"
	// OpClose covers File.Close.
	OpClose Op = "close"
	// OpRename covers FS.Rename.
	OpRename Op = "rename"
	// OpRemove covers FS.Remove and FS.RemoveAll.
	OpRemove Op = "remove"
	// OpMkdir covers FS.MkdirAll.
	OpMkdir Op = "mkdir"
	// OpTruncate covers FS.Truncate and File.Truncate.
	OpTruncate Op = "truncate"
)

// Rule is one entry in a fault schedule. A rule matches operations by
// class and path substring; After/Count window which matches fire; the
// fault fields say what happens when it does. Matching is counted per
// rule in operation order under one lock, so a schedule replays
// identically run after run.
type Rule struct {
	// Op selects the operation class (OpAny matches all).
	Op Op
	// Path, when non-empty, must be a substring of the operation's path.
	Path string
	// After skips the first After matching operations.
	After int
	// Count fires for at most Count matches past After; 0 means forever.
	Count int
	// AfterBytes arms the rule only once that many bytes have passed
	// through matching write operations — the "disk fills up" schedule.
	AfterBytes int64
	// Err is the error to inject (wrapped in ErrInjected). Nil defaults
	// to syscall.EIO, unless the rule is latency-only (Delay set, no
	// Torn), in which case the operation proceeds after the sleep.
	Err error
	// Torn makes a failing write a short write: the first half of the
	// payload reaches the inner file, then the error returns — the torn
	// tail recovery must cut.
	Torn bool
	// Delay sleeps before the operation runs (or fails).
	Delay time.Duration
}

// latencyOnly reports whether the rule delays without failing.
func (r Rule) latencyOnly() bool { return r.Err == nil && !r.Torn && r.Delay > 0 }

// Event is one transcript entry: an operation the injector saw and what
// it did to it.
type Event struct {
	Seq   int    `json:"seq"`
	Op    Op     `json:"op"`
	Path  string `json:"path"`
	Bytes int    `json:"bytes,omitempty"`
	// Fault is the injected error ("" when the op passed through).
	Fault string `json:"fault,omitempty"`
	// Rule is the index of the schedule rule that fired (-1: none, or
	// the Break toggle).
	Rule int `json:"rule"`
}

// maxTranscript bounds the transcript so a runaway loop cannot hold the
// whole run's history; the newest events win.
const maxTranscript = 1 << 16

type ruleState struct {
	rule    Rule
	matched int   // matching ops seen (once armed)
	bytes   int64 // bytes through matching writes (AfterBytes arming)
}

// Injector wraps an FS with a programmable fault schedule. All decisions
// are made under one lock in operation order, so a fixed schedule over a
// deterministic workload injects exactly the same faults every run.
type Injector struct {
	inner FS

	mu         sync.Mutex
	rules      []*ruleState
	broken     error // non-nil: every mutating op fails (Break/Heal)
	seq        int
	injected   uint64
	transcript []Event
	dropped    int
}

// NewInjector wraps inner (OS when nil) with an empty schedule.
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS
	}
	return &Injector{inner: inner}
}

// SetRules replaces the schedule and resets per-rule counters.
func (i *Injector) SetRules(rules ...Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = make([]*ruleState, len(rules))
	for k, r := range rules {
		i.rules[k] = &ruleState{rule: r}
	}
}

// Break fails every mutating operation (writes, syncs, renames, removes,
// mkdirs, truncates, and opens with write intent) with err (EIO when
// nil) until Heal. Reads keep working — a broken disk is still a
// readable disk, which is exactly the degraded-serving contract.
func (i *Injector) Break(err error) {
	if err == nil {
		err = syscall.EIO
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.broken = err
}

// Heal clears a Break; scheduled rules keep applying.
func (i *Injector) Heal() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.broken = nil
}

// Broken reports whether the injector is currently in the Break state.
func (i *Injector) Broken() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.broken != nil
}

// Injected returns how many faults have been raised so far.
func (i *Injector) Injected() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}

// Transcript returns a copy of the recorded operation log.
func (i *Injector) Transcript() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Event, len(i.transcript))
	copy(out, i.transcript)
	return out
}

// WriteTranscript dumps the transcript as JSON lines — the artifact the
// chaos CI step uploads so a failing schedule can be replayed by hand.
func (i *Injector) WriteTranscript(w io.Writer) error {
	events := i.Transcript()
	i.mu.Lock()
	dropped := i.dropped
	i.mu.Unlock()
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, `{"dropped_oldest":%d}`+"\n", dropped); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// verdict is what decide resolved for one operation.
type verdict struct {
	delay time.Duration
	err   error
	torn  bool
}

// decide consults the Break state and the schedule for one operation,
// records the transcript event, and returns what to do. nbytes is the
// write payload size (0 otherwise); mutating marks operations a Break
// should fail.
func (i *Injector) decide(op Op, path string, nbytes int, mutating bool) verdict {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.seq++
	ev := Event{Seq: i.seq, Op: op, Path: path, Bytes: nbytes, Rule: -1}
	v := verdict{}
	switch {
	case i.broken != nil && mutating:
		v.err = fmt.Errorf("%s %s: %w: %w", op, path, ErrInjected, i.broken)
	default:
		for k, st := range i.rules {
			r := st.rule
			if r.Op != OpAny && r.Op != op {
				continue
			}
			if r.Path != "" && !strings.Contains(path, r.Path) {
				continue
			}
			if r.AfterBytes > 0 {
				if op != OpWrite {
					continue
				}
				if st.bytes < r.AfterBytes {
					st.bytes += int64(nbytes)
					continue
				}
			}
			n := st.matched
			st.matched++
			if n < r.After {
				continue
			}
			if r.Count > 0 && n >= r.After+r.Count {
				continue
			}
			v.delay = r.Delay
			if r.latencyOnly() {
				ev.Rule = k
				break
			}
			cause := r.Err
			if cause == nil {
				cause = syscall.EIO
			}
			v.err = fmt.Errorf("%s %s: %w: %w", op, path, ErrInjected, cause)
			v.torn = r.Torn
			ev.Rule = k
			break
		}
	}
	if v.err != nil {
		i.injected++
		ev.Fault = v.err.Error()
	}
	if len(i.transcript) >= maxTranscript {
		i.transcript = i.transcript[1:]
		i.dropped++
	}
	i.transcript = append(i.transcript, ev)
	return v
}

// run applies a verdict around a passthrough operation.
func (v verdict) run(op func() error) error {
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return v.err
	}
	return op()
}

func writeIntent(flag int) bool {
	return flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0
}

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	v := i.decide(OpOpen, name, 0, writeIntent(flag))
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return nil, v.err
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{i: i, path: name, inner: f}, nil
}

func (i *Injector) Open(name string) (File, error) {
	v := i.decide(OpOpen, name, 0, false)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return nil, v.err
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{i: i, path: name, inner: f}, nil
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	v := i.decide(OpRead, name, 0, false)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return nil, v.err
	}
	return i.inner.ReadFile(name)
}

func (i *Injector) WriteFile(name string, data []byte, perm fs.FileMode) error {
	v := i.decide(OpWrite, name, len(data), true)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		if v.torn && len(data) > 0 {
			// The torn fault's contract is exactly "some bytes reached
			// the file, then the error"; the injected error supersedes.
			//lint:ignore droppederr the injected error is what the caller must see; the partial write is the fault being modeled
			_ = i.inner.WriteFile(name, data[:(len(data)+1)/2], perm)
		}
		return v.err
	}
	return i.inner.WriteFile(name, data, perm)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	return i.decide(OpRename, oldpath, 0, true).run(func() error {
		return i.inner.Rename(oldpath, newpath)
	})
}

func (i *Injector) Remove(name string) error {
	return i.decide(OpRemove, name, 0, true).run(func() error { return i.inner.Remove(name) })
}

func (i *Injector) RemoveAll(path string) error {
	return i.decide(OpRemove, path, 0, true).run(func() error { return i.inner.RemoveAll(path) })
}

func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return i.decide(OpMkdir, path, 0, true).run(func() error { return i.inner.MkdirAll(path, perm) })
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	v := i.decide(OpReadDir, name, 0, false)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return nil, v.err
	}
	return i.inner.ReadDir(name)
}

func (i *Injector) Stat(name string) (fs.FileInfo, error) {
	v := i.decide(OpStat, name, 0, false)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return nil, v.err
	}
	return i.inner.Stat(name)
}

func (i *Injector) Truncate(name string, size int64) error {
	return i.decide(OpTruncate, name, 0, true).run(func() error {
		return i.inner.Truncate(name, size)
	})
}

// injFile routes file-level operations back through the injector.
type injFile struct {
	i     *Injector
	path  string
	inner File
}

func (f *injFile) Read(p []byte) (int, error) {
	v := f.i.decide(OpRead, f.path, 0, false)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		return 0, v.err
	}
	return f.inner.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	v := f.i.decide(OpWrite, f.path, len(p), true)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		if v.torn && len(p) > 0 {
			// Half the payload lands before the error — a real torn write.
			//lint:ignore droppederr the injected error is what the caller must see; the partial write is the fault being modeled
			n, _ := f.inner.Write(p[:(len(p)+1)/2])
			return n, v.err
		}
		return 0, v.err
	}
	return f.inner.Write(p)
}

func (f *injFile) WriteAt(p []byte, off int64) (int, error) {
	v := f.i.decide(OpWrite, f.path, len(p), true)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		if v.torn && len(p) > 0 {
			//lint:ignore droppederr the injected error is what the caller must see; the partial write is the fault being modeled
			n, _ := f.inner.WriteAt(p[:(len(p)+1)/2], off)
			return n, v.err
		}
		return 0, v.err
	}
	return f.inner.WriteAt(p, off)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *injFile) Sync() error {
	return f.i.decide(OpSync, f.path, 0, true).run(f.inner.Sync)
}

func (f *injFile) Truncate(size int64) error {
	return f.i.decide(OpTruncate, f.path, 0, true).run(func() error { return f.inner.Truncate(size) })
}

func (f *injFile) Close() error {
	return f.i.decide(OpClose, f.path, 0, false).run(f.inner.Close)
}

func (f *injFile) Name() string { return f.path }

// ParseSchedule parses the compact schedule syntax used by child-process
// chaos tests (and documented in CONTRIBUTING.md): semicolon-separated
// rules of the form
//
//	op[.mode][~pathsub]@after[xcount]
//
// where op is a rule Op name ("any" for OpAny), mode is eio (default),
// enospc or torn, pathsub filters by path substring, after skips that
// many matches, and count bounds how many fire (absent: forever).
//
//	sync@5            every fsync after the first 5 fails with EIO
//	sync@5x4          fsyncs 6-9 fail, later ones succeed
//	write.torn@3x1    the 4th write is torn: half the bytes land, then EIO
//	write.enospc@0    every write fails with ENOSPC
//	sync~shard-0000@2 fsyncs under shard-0000 fail from the 3rd on
func ParseSchedule(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, window, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faultfs: rule %q: missing @after", part)
		}
		var r Rule
		head, pathsub, hasPath := strings.Cut(head, "~")
		if hasPath {
			r.Path = pathsub
		}
		opName, mode, hasMode := strings.Cut(head, ".")
		switch Op(opName) {
		case OpOpen, OpRead, OpReadDir, OpStat, OpWrite, OpSync, OpClose, OpRename, OpRemove, OpMkdir, OpTruncate:
			r.Op = Op(opName)
		default:
			if opName != "any" {
				return nil, fmt.Errorf("faultfs: rule %q: unknown op %q", part, opName)
			}
			r.Op = OpAny
		}
		if hasMode {
			switch mode {
			case "eio":
				r.Err = syscall.EIO
			case "enospc":
				r.Err = syscall.ENOSPC
			case "torn":
				r.Torn = true
			default:
				return nil, fmt.Errorf("faultfs: rule %q: unknown mode %q", part, mode)
			}
		}
		afterStr, countStr, hasCount := strings.Cut(window, "x")
		after, err := strconv.Atoi(afterStr)
		if err != nil || after < 0 {
			return nil, fmt.Errorf("faultfs: rule %q: bad after %q", part, afterStr)
		}
		r.After = after
		if hasCount {
			count, err := strconv.Atoi(countStr)
			if err != nil || count < 1 {
				return nil, fmt.Errorf("faultfs: rule %q: bad count %q", part, countStr)
			}
			r.Count = count
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultfs: empty schedule %q", spec)
	}
	return rules, nil
}
