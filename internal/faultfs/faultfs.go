// Package faultfs is the filesystem seam the durable layer writes
// through. Production code uses OS, a zero-cost passthrough to the os
// package; chaos tests substitute an Injector, which wraps any FS with a
// programmable, deterministic fault schedule — fail the Nth write,
// ENOSPC after a byte budget, EIO on fsync, torn short-writes, per-op
// latency — so disk-failure behavior is reproduced exactly, never
// approximated with sleeps or real broken disks.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the durable layer needs from an open
// file: sequential reads/writes, positioned header patching, fsync, and
// tail truncation.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// WriteAt patches bytes at an absolute offset (snapshot headers are
	// written last over a placeholder).
	WriteAt(p []byte, off int64) (int, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate cuts the file to size (torn journal tails).
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the durable layer touches. Every data-dir
// operation — journal appends, snapshot writes, manifest commits,
// directory fsyncs, generation pruning — goes through one of these
// methods, so a single injected implementation controls the whole
// durability path.
type FS interface {
	// OpenFile generalizes open: journals and snapshot temp files use
	// create/truncate flags, recovery reopens existing journals RDWR.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens for reading — also used on directories for syncDir.
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
}

// OS is the production FS: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
