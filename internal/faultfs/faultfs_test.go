package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "f.txt")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("H"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "Hello" {
		t.Fatalf("read %q, want %q", b, "Hello")
	}
	if _, err := OS.Stat(path); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Rename(path, path+".new"); err != nil {
		t.Fatal(err)
	}
	if err := OS.Truncate(path+".new", 1); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(path + ".new"); err != nil {
		t.Fatal(err)
	}
	if err := OS.RemoveAll(filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectNthWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpWrite, After: 2, Count: 1})
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 4; i++ {
		_, err := f.Write([]byte("x"))
		if i == 2 {
			if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
				t.Fatalf("write %d: err = %v, want injected EIO", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := inj.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestInjectENOSPCAfterBytes(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpWrite, AfterBytes: 10, Err: syscall.ENOSPC})
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// 3 x 4 bytes pass (the budget is consumed at 12 >= 10 only after the
	// write that crossed it), then everything fails with ENOSPC.
	var failedAt int
	for i := 0; i < 6; i++ {
		if _, err := f.Write([]byte("abcd")); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("write %d: err = %v, want ENOSPC", i, err)
			}
			failedAt = i
			break
		}
	}
	if failedAt != 3 {
		t.Fatalf("first failure at write %d, want 3", failedAt)
	}
}

func TestInjectTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpWrite, Torn: true, Count: 1})
	path := filepath.Join(dir, "f")
	f, err := inj.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n != 5 {
		t.Fatalf("short write landed %d bytes, want 5", n)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("file holds %q, want torn prefix %q", b, "01234")
	}
}

func TestInjectSyncAndPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpSync, Path: "shard-0000"})
	good, err := inj.OpenFile(filepath.Join(dir, "shard-0001.wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	bad, err := inj.OpenFile(filepath.Join(dir, "shard-0000.wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := good.Sync(); err != nil {
		t.Fatalf("unmatched path failed: %v", err)
	}
	if err := bad.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("matched path: err = %v, want injected", err)
	}
}

func TestInjectLatencyOnly(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpWrite, Delay: 30 * time.Millisecond, Count: 1})
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("latency-only rule must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("write returned in %v, want the scheduled delay", d)
	}
}

func TestBreakHeal(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	path := filepath.Join(dir, "f")
	if err := inj.WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj.Break(nil)
	if !inj.Broken() {
		t.Fatal("Broken() = false after Break")
	}
	if err := inj.WriteFile(path, []byte("no"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("write while broken: err = %v, want injected", err)
	}
	if err := inj.Rename(path, path+".x"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename while broken: err = %v, want EIO", err)
	}
	// Reads keep working on a broken disk.
	if _, err := inj.ReadFile(path); err != nil {
		t.Fatalf("read while broken: %v", err)
	}
	if _, err := inj.Stat(path); err != nil {
		t.Fatalf("stat while broken: %v", err)
	}
	inj.Heal()
	if err := inj.WriteFile(path, []byte("ok2"), 0o644); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestTranscriptDeterministic(t *testing.T) {
	run := func() []Event {
		dir := t.TempDir()
		inj := NewInjector(OS)
		inj.SetRules(Rule{Op: OpSync, After: 1})
		f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 3; i++ {
			//lint:ignore droppederr the schedule injects failures on purpose; the transcript records them
			_, _ = f.Write([]byte("x"))
			//lint:ignore droppederr same: the transcript is the assertion target
			_ = f.Sync()
		}
		return inj.Transcript()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ea, eb := a[i], b[i]
		// Paths differ per TempDir; compare the decision, not the path.
		if ea.Op != eb.Op || ea.Rule != eb.Rule || (ea.Fault == "") != (eb.Fault == "") {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	var faults int
	for _, e := range a {
		if e.Fault != "" {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("injected %d faults, want 2 (syncs 2 and 3)", faults)
	}
}

func TestWriteTranscript(t *testing.T) {
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpStat, Count: 1})
	if _, err := inj.Stat("/nonexistent"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	var buf bytes.Buffer
	if err := inj.WriteTranscript(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"op":"stat"`) || !strings.Contains(out, "injected fault") {
		t.Fatalf("transcript missing expected fields: %s", out)
	}
}

func TestParseSchedule(t *testing.T) {
	rules, err := ParseSchedule("sync@5; write.torn@3x1; write.enospc~shard-0000@0x2; any@7")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(rules))
	}
	if rules[0].Op != OpSync || rules[0].After != 5 || rules[0].Count != 0 || rules[0].Err != nil {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if !rules[1].Torn || rules[1].After != 3 || rules[1].Count != 1 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if !errors.Is(rules[2].Err, syscall.ENOSPC) || rules[2].Path != "shard-0000" {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	if rules[3].Op != OpAny || rules[3].After != 7 {
		t.Fatalf("rule 3 = %+v", rules[3])
	}
	for _, bad := range []string{"", "sync", "sync@-1", "sync@2x0", "warp@1", "sync.lol@1"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", bad)
		}
	}
}
