package baseline

import (
	"errors"
	"testing"

	"repro/internal/fooddb"
	"repro/internal/tpch"
	"repro/internal/webapp"
)

func fooddbCollector(t *testing.T) *Collector {
	t.Helper()
	db := fooddb.New()
	app, err := webapp.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(db, app)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	return c
}

func TestCollectorDomains(t *testing.T) {
	c := fooddbCollector(t)
	if len(c.eqVals) != 2 { // American, Thai
		t.Errorf("eq domain = %v", c.eqVals)
	}
	if len(c.rangeVals) != 4 { // 9, 10, 12, 18
		t.Errorf("range domain = %v", c.rangeVals)
	}
	total, err := c.TotalFragments()
	if err != nil || total != 5 {
		t.Errorf("TotalFragments = %d, %v; want 5", total, err)
	}
}

func TestProbeCrawlWastesInvocations(t *testing.T) {
	c := fooddbCollector(t)
	stats, err := c.ProbeCrawl(1, 200)
	if err != nil {
		t.Fatalf("ProbeCrawl: %v", err)
	}
	if stats.Invocations != 200 {
		t.Errorf("invocations = %d", stats.Invocations)
	}
	// §I: probing generates many valueless pages — duplicates and empties
	// dominate the budget.
	if stats.DuplicatePages+stats.EmptyResults < stats.Pages {
		t.Errorf("expected waste to dominate: %+v", stats)
	}
	// fooddb only admits 2×10 = 20 possible (eq, interval) probes; 200
	// invocations certainly re-generate pages.
	if stats.DuplicatePages == 0 {
		t.Errorf("no duplicates after 200 probes: %+v", stats)
	}
	// With this much budget on a tiny domain, coverage is complete —
	// probing *can* cover small sites, at absurd invocation cost.
	if stats.CoveredFragments != 5 {
		t.Errorf("covered = %d, want 5", stats.CoveredFragments)
	}
}

func TestProbeCrawlSmallBudgetIncomplete(t *testing.T) {
	// On a larger domain (TPC-H Q1: 5 regions × ~hundreds of balances), a
	// small probe budget cannot cover all fragments — §I's completeness
	// argument.
	db := tpch.Generate(tpch.Scale{Name: "t", Customers: 300, OrdersPerCust: 2, LinesPerOrder: 2, Parts: 50}, 3)
	app, err := tpch.App("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(db, app)
	if err != nil {
		t.Fatal(err)
	}
	total, err := c.TotalFragments()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.ProbeCrawl(7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoveredFragments >= total {
		t.Errorf("40 probes covered all %d fragments — domain too small for the test", total)
	}
	t.Logf("probe coverage: %d/%d fragments with %d invocations",
		stats.CoveredFragments, total, stats.Invocations)
}

func TestCacheCrawlBiasedCoverage(t *testing.T) {
	db := tpch.Generate(tpch.Scale{Name: "t", Customers: 300, OrdersPerCust: 2, LinesPerOrder: 2, Parts: 50}, 3)
	app, err := tpch.App("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(db, app)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.CacheCrawl(11, 100)
	if err != nil {
		t.Fatalf("CacheCrawl: %v", err)
	}
	total, err := c.TotalFragments()
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoveredFragments == 0 {
		t.Error("cache crawl covered nothing")
	}
	if stats.CoveredFragments >= total {
		t.Errorf("cache of 100 user queries covered all %d fragments — bias missing", total)
	}
	if stats.Pages == 0 || len(c.Pages()) != stats.Pages {
		t.Errorf("pages = %d, stats = %+v", len(c.Pages()), stats)
	}
}

func TestCollectorRejectsNoRangeQuery(t *testing.T) {
	db := fooddb.New()
	src := `class Eq extends HttpServlet {
		String c = q.getParameter("c");
		Query = "SELECT name FROM restaurant WHERE cuisine = '" + c + "'";
	}`
	app, err := webapp.Analyze(src, "http://x/Eq")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollector(db, app); !errors.Is(err, ErrNoRange) {
		t.Errorf("err = %v, want ErrNoRange", err)
	}
}

func TestCollectedPagesCarryTerms(t *testing.T) {
	c := fooddbCollector(t)
	if _, err := c.ProbeCrawl(5, 50); err != nil {
		t.Fatal(err)
	}
	pages := c.Pages()
	if len(pages) == 0 {
		t.Fatal("no pages collected")
	}
	for _, p := range pages {
		if p.Rows == 0 || len(p.Terms) == 0 {
			t.Errorf("page %s: rows=%d terms=%d", p.QueryString, p.Rows, len(p.Terms))
		}
	}
}
