package baseline

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fooddb"
	"repro/internal/fragindex"
	"repro/internal/psj"
)

func fooddbCrawl(t *testing.T) (*crawl.Output, fragindex.Spec) {
	t.Helper()
	db := fooddb.New()
	b, err := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := crawl.Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fragindex.SpecFromBound(b)
	if err != nil {
		t.Fatal(err)
	}
	return out, spec
}

// TestNaivePageEnumeration: fooddb has the American group with 4 range
// values (4·5/2 = 10 pages) and Thai with 1 (1 page): 11 pages total.
func TestNaivePageEnumeration(t *testing.T) {
	out, spec := fooddbCrawl(t)
	n, err := BuildNaive(out, spec, NaiveOptions{})
	if err != nil {
		t.Fatalf("BuildNaive: %v", err)
	}
	st := n.Stats()
	if st.Pages != 11 {
		t.Errorf("pages = %d, want 11", st.Pages)
	}
	// Overlap blow-up: indexed terms far exceed the 51 distinct fragment
	// terms (each overlap is re-indexed).
	if st.IndexedTerms <= 51 {
		t.Errorf("indexed terms = %d, want > 51 (overlap cost)", st.IndexedTerms)
	}
	if st.Postings == 0 || st.BuildTime <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNaiveMaxPagesCap(t *testing.T) {
	out, spec := fooddbCrawl(t)
	_, err := BuildNaive(out, spec, NaiveOptions{MaxPages: 5})
	if !errors.Is(err, ErrTooManyPages) {
		t.Errorf("cap err = %v", err)
	}
}

// TestNaiveSearchReturnsRedundantPages reproduces the §I motivation: for
// "burger", P1-style and P2-style pages both score and the top-k is full of
// overlapping results (positive Jaccard redundancy).
func TestNaiveSearchReturnsRedundantPages(t *testing.T) {
	out, spec := fooddbCrawl(t)
	n, err := BuildNaive(out, spec, NaiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results := n.Search([]string{"burger"}, 5)
	if len(results) != 5 {
		t.Fatalf("results = %d, want 5", len(results))
	}
	if r := Redundancy(results); r <= 0 {
		t.Errorf("redundancy = %v, want > 0 (overlapping pages in top-k)", r)
	}
	// Scores descending.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Errorf("scores not sorted at %d", i)
		}
	}
	// Unknown keyword yields nothing.
	if got := n.Search([]string{"zanzibar"}, 3); len(got) != 0 {
		t.Errorf("unknown keyword results = %v", got)
	}
}

func TestRedundancyEdgeCases(t *testing.T) {
	if got := Redundancy(nil); got != 0 {
		t.Errorf("Redundancy(nil) = %v", got)
	}
	one := []PageResult{{Page: Page{Fragments: []fragindex.FragRef{1}}}}
	if got := Redundancy(one); got != 0 {
		t.Errorf("Redundancy(single) = %v", got)
	}
	two := []PageResult{
		{Page: Page{Fragments: []fragindex.FragRef{1, 2}}},
		{Page: Page{Fragments: []fragindex.FragRef{1, 2}}},
	}
	if got := Redundancy(two); got != 1 {
		t.Errorf("Redundancy(identical) = %v, want 1", got)
	}
}

// TestRelationalKeywordSearchSectionII reproduces the §II example: keyword
// "burger" over fooddb yields exactly three results — restaurant 001 joined
// with comment 201, and comments 202 and 205 standing alone without any
// restaurant context (the related work's defect).
func TestRelationalKeywordSearchSectionII(t *testing.T) {
	db := fooddb.New()
	results, err := RelationalKeywordSearch(db, []string{"burger"})
	if err != nil {
		t.Fatalf("RelationalKeywordSearch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3: %+v", len(results), results)
	}
	var joined, standalone []JoinedResult
	for _, r := range results {
		if len(r.Relations) == 2 {
			joined = append(joined, r)
		} else {
			standalone = append(standalone, r)
		}
	}
	if len(joined) != 1 || len(standalone) != 2 {
		t.Fatalf("joined = %d standalone = %d, want 1 and 2", len(joined), len(standalone))
	}
	// The joined result is Burger Queen ⋈ "Burger experts".
	if joined[0].Relations[0] != "restaurant" || joined[0].Relations[1] != "comment" {
		t.Errorf("joined relations = %v", joined[0].Relations)
	}
	if got := joined[0].Rows[0][1].AsString(); got != "Burger Queen" {
		t.Errorf("joined restaurant = %q", got)
	}
	// The standalone results are the comment records 202 and 205 — with
	// no restaurant name anywhere (the §II defect).
	var cids []int64
	for _, r := range standalone {
		if r.Relations[0] != "comment" {
			t.Errorf("standalone from %s, want comment", r.Relations[0])
			continue
		}
		cids = append(cids, r.Rows[0][0].AsInt())
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	if len(cids) != 2 || cids[0] != 202 || cids[1] != 205 {
		t.Errorf("standalone comment ids = %v, want [202 205]", cids)
	}
}

func TestRelationalKeywordSearchMultipleKeywords(t *testing.T) {
	db := fooddb.New()
	results, err := RelationalKeywordSearch(db, []string{"coffee", "james"})
	if err != nil {
		t.Fatal(err)
	}
	// comment 206 ("Nice coffee") matches; customer 171 (James) matches;
	// they join through the uid FK. Restaurant 007 does not contain
	// either keyword, so no restaurant context appears.
	foundJoin := false
	for _, r := range results {
		if len(r.Relations) == 2 {
			foundJoin = true
			rels := strings.Join(r.Relations, "+")
			if rels != "customer+comment" {
				t.Errorf("join = %s, want customer+comment", rels)
			}
		}
		for _, rel := range r.Relations {
			if rel == "restaurant" {
				t.Error("restaurant matched but contains neither keyword")
			}
		}
	}
	if !foundJoin {
		t.Error("expected comment⋈customer join")
	}
}

func TestRelationalKeywordSearchNoMatches(t *testing.T) {
	db := fooddb.New()
	results, err := RelationalKeywordSearch(db, []string{"zanzibar"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("results = %v, want none", results)
	}
}
