package baseline

import (
	"sort"
	"strings"

	"repro/internal/fragment"
	"repro/internal/relation"
)

// MatchedRecord is one record containing a queried keyword.
type MatchedRecord struct {
	Relation string
	Row      relation.Row
}

// JoinedResult is one relational-keyword-search result: either a single
// matched record or matched records joined through a foreign key (§II's
// "linked through referential constraints").
type JoinedResult struct {
	Relations []string
	Rows      []relation.Row // aligned with Relations
}

// ContainsKeyword reports whether any attribute of the row contains any of
// the (lower-case) keywords as a token.
func ContainsKeyword(row relation.Row, keywords map[string]bool) bool {
	for _, v := range row {
		for _, tok := range fragment.Tokenize(v) {
			if keywords[tok] {
				return true
			}
		}
	}
	return false
}

// RelationalKeywordSearch implements the two-step related-work recipe of
// §II: (i) locate records whose attributes contain queried keywords, then
// (ii) join matched records pairwise along foreign keys. Matched records
// that join are reported together; the rest are reported alone. On the
// paper's fooddb example with keyword "burger" this returns exactly the
// three §II results — two bare comments (no restaurant context) and one
// restaurant⋈comment pair.
func RelationalKeywordSearch(db *relation.Database, keywords []string) ([]JoinedResult, error) {
	kwSet := make(map[string]bool, len(keywords))
	for _, w := range keywords {
		for _, f := range strings.Fields(strings.ToLower(w)) {
			kwSet[f] = true
		}
	}

	// Step (i): per-relation matches.
	matched := make(map[string][]relation.Row)
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return nil, err
		}
		for _, row := range t.Rows {
			if ContainsKeyword(row, kwSet) {
				matched[name] = append(matched[name], row)
			}
		}
	}

	// Step (ii): join matched records along each foreign key.
	used := make(map[string]map[int]bool) // relation -> row identity (index in matched)
	mark := func(rel string, idx int) {
		m, ok := used[rel]
		if !ok {
			m = make(map[int]bool)
			used[rel] = m
		}
		m[idx] = true
	}
	var results []JoinedResult
	for _, fk := range db.ForeignKeys() {
		fromRows, toRows := matched[fk.FromTable], matched[fk.ToTable]
		if len(fromRows) == 0 || len(toRows) == 0 {
			continue
		}
		fromT, err := db.Table(fk.FromTable)
		if err != nil {
			return nil, err
		}
		toT, err := db.Table(fk.ToTable)
		if err != nil {
			return nil, err
		}
		fi := fromT.Schema.ColumnIndex(fk.FromCol)
		ti := toT.Schema.ColumnIndex(fk.ToCol)
		if fi < 0 || ti < 0 {
			continue
		}
		for fIdx, fr := range fromRows {
			for tIdx, tr := range toRows {
				if !fr[fi].IsNull() && fr[fi].Equal(tr[ti]) {
					results = append(results, JoinedResult{
						Relations: []string{fk.ToTable, fk.FromTable},
						Rows:      []relation.Row{tr, fr},
					})
					mark(fk.FromTable, fIdx)
					mark(fk.ToTable, tIdx)
				}
			}
		}
	}
	// Standalone matches: records not consumed by any join.
	names := db.TableNames()
	sort.Strings(names)
	for _, rel := range names {
		for i, row := range matched[rel] {
			if !used[rel][i] {
				results = append(results, JoinedResult{
					Relations: []string{rel},
					Rows:      []relation.Row{row},
				})
			}
		}
	}
	return results, nil
}
