package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
	"repro/internal/webapp"
)

// This file implements the two db-page collection approaches existing
// search engines use (paper §I), as coverage baselines against Dash's
// database crawling:
//
//   - ProbeCrawl: submit trial query strings to the web application
//     ("surfacing", Madhavan et al.) — it must invoke the application for
//     every probe, generates many valueless pages, and still cannot
//     guarantee completeness;
//   - CacheCrawl: harvest pages cached by proxies/servers for organic user
//     queries — coverage is limited to what users happened to request.
//
// Both return CollectionStats so experiments can quantify the §I claims:
// application invocations consumed, duplicate/empty pages generated, and
// fragment coverage achieved versus Dash's complete derivation.

// ErrNoRange is returned when the application's query lacks the range
// attribute structure the probing strategies assume.
var ErrNoRange = errors.New("baseline: application query has no range attribute")

// CollectedPage is one db-page obtained by invoking the web application.
type CollectedPage struct {
	QueryString string
	Rows        int
	// Terms holds the page's keyword counts (used to index the page).
	Terms map[string]int
}

// CollectionStats quantifies a collection run.
type CollectionStats struct {
	Invocations    int // web application executions consumed
	Pages          int // distinct non-empty pages collected
	EmptyResults   int // invocations that produced empty pages
	DuplicatePages int // invocations that produced an already-seen page
	// CoveredFragments counts distinct db-page fragments touched by at
	// least one collected page — the completeness measure relative to
	// Dash, which by construction covers all of them.
	CoveredFragments int
}

// Collector drives a web application to gather db-pages. It evaluates
// queries through the bound application (equivalent to invoking the HTTP
// handler, minus rendering).
type Collector struct {
	app   *webapp.Application
	db    *relation.Database
	bound *psj.Bound

	eqAttr, rangeAttr string
	eqVals, rangeVals []relation.Value

	seen  map[string]bool // content signature -> seen
	stats CollectionStats
	pages []CollectedPage
}

// NewCollector prepares a collector for a bound application whose query has
// exactly one equality attribute and one range attribute (the paper's
// workload shape).
func NewCollector(db *relation.Database, app *webapp.Application) (*Collector, error) {
	bound, err := app.Bound()
	if err != nil {
		return nil, err
	}
	eq := bound.EqAttrCols()
	rng := bound.RangeAttrCols()
	if len(eq) != 1 || len(rng) != 1 {
		return nil, fmt.Errorf("%w: eq=%v range=%v", ErrNoRange, eq, rng)
	}
	c := &Collector{
		app:       app,
		db:        db,
		bound:     bound,
		eqAttr:    eq[0],
		rangeAttr: rng[0],
		seen:      make(map[string]bool),
	}
	// Domain discovery: a prober can realistically learn plausible
	// values from visible pages or dictionaries; we give it the true
	// value domains, which only makes the baseline stronger.
	if c.eqVals, err = domainOf(db, bound, eq[0]); err != nil {
		return nil, err
	}
	if c.rangeVals, err = domainOf(db, bound, rng[0]); err != nil {
		return nil, err
	}
	return c, nil
}

// domainOf returns the sorted distinct values of a selection attribute from
// its owning relation.
func domainOf(db *relation.Database, bound *psj.Bound, col string) ([]relation.Value, error) {
	for _, li := range bound.Leaves {
		t, err := db.Table(li.Relation)
		if err != nil {
			return nil, err
		}
		if t.Schema.HasColumn(col) {
			return t.DistinctValues(col)
		}
	}
	return nil, fmt.Errorf("baseline: attribute %s not found", col)
}

// invoke executes one trial query string and records the outcome.
func (c *Collector) invoke(eq, lo, hi relation.Value) error {
	c.stats.Invocations++
	params, err := c.app.PageParams(map[string]relation.Value{c.eqAttr: eq}, lo, hi)
	if err != nil {
		return err
	}
	result, err := c.bound.Execute(c.db, params)
	if err != nil {
		return err
	}
	if result.Len() == 0 {
		c.stats.EmptyResults++
		return nil
	}
	// Content signature: the rows themselves (a real crawler hashes the
	// HTML; equal rows render equal pages).
	sig := pageContentSignature(result)
	if c.seen[sig] {
		c.stats.DuplicatePages++
		return nil
	}
	c.seen[sig] = true

	qs, err := c.app.FormatQueryString(params)
	if err != nil {
		return err
	}
	page := CollectedPage{QueryString: qs, Rows: result.Len(), Terms: make(map[string]int)}
	for _, row := range result.Rows {
		for _, v := range row {
			fragment.CountTokens(v, page.Terms)
		}
	}
	c.pages = append(c.pages, page)
	c.stats.Pages++
	return nil
}

func pageContentSignature(t *relation.Table) string {
	var sig []byte
	for _, row := range t.Rows {
		sig = relation.AppendRow(sig, row)
	}
	return string(sig)
}

// ProbeCrawl submits `budget` random trial query strings (random equality
// value, random range interval) — the surfacing approach of §I. It stops
// early only when the budget is exhausted; completeness is not guaranteed
// at any budget.
func (c *Collector) ProbeCrawl(seed int64, budget int) (CollectionStats, error) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < budget; i++ {
		eq := c.eqVals[r.Intn(len(c.eqVals))]
		a, b := r.Intn(len(c.rangeVals)), r.Intn(len(c.rangeVals))
		if a > b {
			a, b = b, a
		}
		if err := c.invoke(eq, c.rangeVals[a], c.rangeVals[b]); err != nil {
			return CollectionStats{}, err
		}
	}
	return c.finish()
}

// CacheCrawl simulates harvesting a proxy/server cache populated by
// `users` organic queries: users favour popular equality values (Zipf) and
// narrow ranges, so the cache covers a biased, incomplete slice of pages.
func (c *Collector) CacheCrawl(seed int64, users int) (CollectionStats, error) {
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, 1.3, 1.0, uint64(len(c.eqVals)-1))
	for i := 0; i < users; i++ {
		eq := c.eqVals[int(zipf.Uint64())]
		a := r.Intn(len(c.rangeVals))
		width := r.Intn(3) // users ask narrow ranges
		b := a + width
		if b >= len(c.rangeVals) {
			b = len(c.rangeVals) - 1
		}
		if err := c.invoke(eq, c.rangeVals[a], c.rangeVals[b]); err != nil {
			return CollectionStats{}, err
		}
	}
	return c.finish()
}

// finish computes fragment coverage over the collected pages.
func (c *Collector) finish() (CollectionStats, error) {
	covered := make(map[string]bool)
	for _, p := range c.pages {
		params, err := c.app.ParseQueryString(p.QueryString)
		if err != nil {
			return CollectionStats{}, err
		}
		lo, hi, eq, err := c.pageBox(params)
		if err != nil {
			return CollectionStats{}, err
		}
		for _, rv := range c.rangeVals {
			if rv.Compare(lo) >= 0 && rv.Compare(hi) <= 0 {
				covered[relation.Key([]relation.Value{eq, rv})] = true
			}
		}
	}
	// Only count fragments that actually exist (non-empty).
	existing, err := c.existingFragments()
	if err != nil {
		return CollectionStats{}, err
	}
	n := 0
	for key := range covered {
		if existing[key] {
			n++
		}
	}
	c.stats.CoveredFragments = n
	return c.stats, nil
}

// pageBox extracts the (eq, lo, hi) box of a collected page.
func (c *Collector) pageBox(params map[string]relation.Value) (lo, hi, eq relation.Value, err error) {
	for _, cond := range c.bound.Conds {
		v := params[cond.Param]
		switch {
		case cond.Op == psj.OpEQ:
			eq = v
		case cond.Op == psj.OpGE:
			lo = v
		case cond.Op == psj.OpLE:
			hi = v
		}
	}
	if eq.IsNull() && lo.IsNull() {
		return lo, hi, eq, fmt.Errorf("baseline: page box incomplete")
	}
	return lo, hi, eq, nil
}

// existingFragments enumerates the true fragment identifiers, i.e. the
// ground truth Dash derives completely.
func (c *Collector) existingFragments() (map[string]bool, error) {
	joined, err := c.bound.JoinAll(c.db)
	if err != nil {
		return nil, err
	}
	ei := joined.Schema.ColumnIndex(c.eqAttr)
	ri := joined.Schema.ColumnIndex(c.rangeAttr)
	if ei < 0 || ri < 0 {
		return nil, fmt.Errorf("baseline: selection attributes missing from join")
	}
	out := make(map[string]bool)
	for _, row := range joined.Rows {
		if row[ei].IsNull() || row[ri].IsNull() {
			continue
		}
		out[relation.Key([]relation.Value{row[ei], row[ri]})] = true
	}
	return out, nil
}

// TotalFragments returns the ground-truth fragment count, for computing
// coverage ratios.
func (c *Collector) TotalFragments() (int, error) {
	existing, err := c.existingFragments()
	if err != nil {
		return 0, err
	}
	return len(existing), nil
}

// Pages returns the collected pages sorted by query string (stable output
// for tests and reports).
func (c *Collector) Pages() []CollectedPage {
	out := append([]CollectedPage(nil), c.pages...)
	sort.Slice(out, func(i, j int) bool { return out[i].QueryString < out[j].QueryString })
	return out
}
