// Package baseline implements the approaches Dash is compared against.
//
// NaivePageIndex is the "intuitive approach" of paper §IV: materialize
// every db-page a web application can generate and index whole pages in a
// conventional inverted file. It works, but page contents overlap heavily —
// the page count is quadratic in the number of range values per equality
// group — which is exactly the storage and redundancy cost db-page
// fragments avoid.
//
// RelationalKeywordSearch is the DISCOVER-style related work of §II:
// keyword matches on individual records joined through foreign keys. Its
// §II defects (missing context, uninterpretable partial tuples) are
// observable in its results.
package baseline

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/crawl"
	"repro/internal/fragindex"
	"repro/internal/fragment"
)

// ErrTooManyPages is returned when page enumeration exceeds the configured
// cap (naive materialization explodes on real datasets — that is the point).
var ErrTooManyPages = errors.New("baseline: page enumeration exceeds MaxPages")

// Page is one materialized db-page: a contiguous fragment interval.
type Page struct {
	Fragments []fragindex.FragRef
	Terms     int64
}

// NaiveOptions bounds page enumeration.
type NaiveOptions struct {
	// MaxPages caps the number of materialized pages (0 = unlimited).
	// Exceeding it returns ErrTooManyPages, demonstrating infeasibility.
	MaxPages int
}

// NaiveStats reports what materialization cost.
type NaiveStats struct {
	Pages        int
	Postings     int   // inverted-file entries (page, keyword) pairs
	IndexedTerms int64 // Σ page sizes: every overlap re-indexed
	BuildTime    time.Duration
}

// NaivePageIndex is a conventional inverted file over whole db-pages.
type NaivePageIndex struct {
	idx      *fragindex.Index // fragment metadata source
	pages    []Page
	inverted map[string][]pagePosting
	stats    NaiveStats
}

type pagePosting struct {
	page int
	tf   int64
}

// BuildNaive materializes every db-page derivable from the fragment set:
// for each equality group, every contiguous range interval [lo,hi] is one
// page (the query strings a user could submit, up to range-value
// granularity). Page term statistics are accumulated from the crawl output.
func BuildNaive(out *crawl.Output, spec fragindex.Spec, opts NaiveOptions) (*NaivePageIndex, error) {
	start := time.Now()
	idx, err := fragindex.Build(out, spec)
	if err != nil {
		return nil, err
	}
	n := &NaivePageIndex{idx: idx, inverted: make(map[string][]pagePosting)}

	// Per-fragment term counts, rebuilt from the inverted lists.
	counts := make(map[fragindex.FragRef]map[string]int64)
	for kw, ps := range out.Inverted {
		for _, p := range ps {
			id, err := fragment.ParseID(p.FragKey)
			if err != nil {
				return nil, err
			}
			ref, ok := idx.Lookup(id)
			if !ok {
				return nil, fmt.Errorf("baseline: posting for unknown fragment %s", id)
			}
			m, ok := counts[ref]
			if !ok {
				m = make(map[string]int64)
				counts[ref] = m
			}
			m[kw] += p.TF
		}
	}

	// Enumerate pages group by group.
	seenGroup := make(map[fragindex.FragRef]bool)
	var refs []fragindex.FragRef
	for i := 0; i < len(out.FragmentTerms); i++ {
		refs = append(refs, fragindex.FragRef(i))
	}
	for _, ref := range refs {
		if seenGroup[ref] {
			continue
		}
		members, _, err := idx.GroupMembers(ref)
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			seenGroup[m] = true
		}
		for lo := 0; lo < len(members); lo++ {
			pageTerms := make(map[string]int64)
			var size int64
			for hi := lo; hi < len(members); hi++ {
				meta, err := idx.Meta(members[hi])
				if err != nil {
					return nil, err
				}
				size += meta.Terms
				for kw, c := range counts[members[hi]] {
					pageTerms[kw] += c
				}
				if opts.MaxPages > 0 && len(n.pages) >= opts.MaxPages {
					return nil, fmt.Errorf("%w: %d", ErrTooManyPages, opts.MaxPages)
				}
				page := Page{Terms: size}
				page.Fragments = append([]fragindex.FragRef(nil), members[lo:hi+1]...)
				pid := len(n.pages)
				n.pages = append(n.pages, page)
				for kw, c := range pageTerms {
					n.inverted[kw] = append(n.inverted[kw], pagePosting{page: pid, tf: c})
					n.stats.Postings++
				}
				n.stats.IndexedTerms += size
			}
		}
	}
	// Sort each list by TF descending, as a conventional inverted file.
	for kw := range n.inverted {
		list := n.inverted[kw]
		sort.Slice(list, func(i, j int) bool {
			if list[i].tf != list[j].tf {
				return list[i].tf > list[j].tf
			}
			return list[i].page < list[j].page
		})
	}
	n.stats.Pages = len(n.pages)
	n.stats.BuildTime = time.Since(start)
	return n, nil
}

// Stats returns materialization statistics.
func (n *NaivePageIndex) Stats() NaiveStats { return n.stats }

// Index returns the underlying fragment index (for metadata lookups).
func (n *NaivePageIndex) Index() *fragindex.Index { return n.idx }

// PageResult is one naive search hit.
type PageResult struct {
	Page  Page
	Score float64
}

// Search returns the top-k pages by TF/IDF, conventional-style: pages are
// independent documents, IDF = 1/(pages containing w). Because overlapping
// pages index the same underlying records, near-duplicates flood the top-k
// — the §IV quality problem Dash's fragments remove.
func (n *NaivePageIndex) Search(keywords []string, k int) []PageResult {
	type agg struct {
		score float64
	}
	scores := make(map[int]*agg)
	for _, w := range keywords {
		list := n.inverted[w]
		if len(list) == 0 {
			continue
		}
		idf := 1 / float64(len(list))
		for _, p := range list {
			a, ok := scores[p.page]
			if !ok {
				a = &agg{}
				scores[p.page] = a
			}
			if n.pages[p.page].Terms > 0 {
				a.score += float64(p.tf) / float64(n.pages[p.page].Terms) * idf
			}
		}
	}
	out := make([]PageResult, 0, len(scores))
	for pid, a := range scores {
		out = append(out, PageResult{Page: n.pages[pid], Score: a.score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return len(out[i].Page.Fragments) < len(out[j].Page.Fragments)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Redundancy measures content overlap among results: the average Jaccard
// similarity of fragment sets over all result pairs (0 = disjoint results,
// 1 = identical). Dash's overlap-excluding top-k scores 0 by construction.
func Redundancy(results []PageResult) float64 {
	if len(results) < 2 {
		return 0
	}
	sets := make([]map[fragindex.FragRef]bool, len(results))
	for i, r := range results {
		sets[i] = make(map[fragindex.FragRef]bool, len(r.Page.Fragments))
		for _, f := range r.Page.Fragments {
			sets[i][f] = true
		}
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			inter := 0
			for f := range sets[i] {
				if sets[j][f] {
					inter++
				}
			}
			union := len(sets[i]) + len(sets[j]) - inter
			if union > 0 {
				sum += float64(inter) / float64(union)
			}
			pairs++
		}
	}
	return sum / float64(pairs)
}
