package search

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fooddb"
	"repro/internal/fragindex"
	"repro/internal/fragment"
	"repro/internal/relation"
	"repro/internal/webapp"
)

// fooddbLiveEngine builds a LiveIndex-backed engine over the fooddb stack.
func fooddbLiveEngine(t *testing.T) (*Engine, *fragindex.LiveIndex) {
	t.Helper()
	db := fooddb.New()
	app, err := webapp.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	out, err := crawl.Reference(db, bound)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fragindex.SpecFromBound(bound)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fragindex.Build(out, spec)
	if err != nil {
		t.Fatal(err)
	}
	live := fragindex.NewLive(idx)
	return New(live, app), live
}

// TestConcurrentSearchWithLiveApply mixes 32 searcher goroutines with a
// concurrent writer publishing deltas through the LiveIndex (run under
// -race in CI). Every search must succeed, and — the epoch-swap
// guarantee — re-running a search on the snapshot it pinned must
// reproduce its answer exactly, no matter how many versions the writer
// published in between.
func TestConcurrentSearchWithLiveApply(t *testing.T) {
	e, live := fooddbLiveEngine(t)
	queries := stressQueries()

	const searchers = 32
	const iters = 40
	var searcherWG, writerWG sync.WaitGroup
	errc := make(chan error, searchers+1)
	stop := make(chan struct{})

	for g := 0; g < searchers; g++ {
		searcherWG.Add(1)
		go func(g int) {
			defer searcherWG.Done()
			for it := 0; it < iters; it++ {
				req := queries[(g+it)%len(queries)]
				snap := live.Snapshot()
				rs, err := e.SearchSnapshot(context.Background(), snap, req)
				if err != nil {
					errc <- fmt.Errorf("searcher %d: %v", g, err)
					return
				}
				again, err := e.SearchSnapshot(context.Background(), snap, req)
				if err != nil {
					errc <- fmt.Errorf("searcher %d re-run: %v", g, err)
					return
				}
				if !reflect.DeepEqual(rs, again) {
					errc <- fmt.Errorf("searcher %d: pinned snapshot not repeatable", g)
					return
				}
			}
		}(g)
	}

	// The writer churns one fragment's contents and inserts/removes
	// another while the searchers run.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		target := fragment.ID{relation.String("American"), relation.Int(10)}
		extra := fragment.ID{relation.String("Fusion"), relation.Int(99)}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d := crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: crawl.OpUpdateFragment, ID: target,
				TermCounts: map[string]int64{"burger": 2, "queen": 1, fmt.Sprintf("v%d", i%5): 1},
				TotalTerms: 4,
			}}}
			if _, err := live.Apply(context.Background(), d); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
			op := crawl.OpInsertFragment
			if i%2 == 1 {
				op = crawl.OpRemoveFragment
			}
			d = crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: op, ID: extra,
				TermCounts: map[string]int64{"fusion": 1}, TotalTerms: 1,
			}}}
			if op == crawl.OpRemoveFragment {
				d.Changes[0].TermCounts, d.Changes[0].TotalTerms = nil, 0
			}
			if _, err := live.Apply(context.Background(), d); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
			if i%8 == 7 {
				if _, err := live.CompactIfNeeded(context.Background(), 0.3); err != nil {
					errc <- fmt.Errorf("writer compact: %v", err)
					return
				}
			}
		}
	}()

	// Keep the writer publishing for the searchers' whole lifetime, then
	// stop it.
	searcherWG.Wait()
	close(stop)
	writerWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPinnedSnapshotPropertyIdenticalResults is the repeatable-reads
// property test: results computed on a pinned snapshot are byte-identical
// before and after arbitrary later mutations are published, while fresh
// snapshots see the new contents.
func TestPinnedSnapshotPropertyIdenticalResults(t *testing.T) {
	e, live := fooddbLiveEngine(t)
	queries := stressQueries()

	pinned := live.Snapshot()
	want := make([][]Result, len(queries))
	for i, q := range queries {
		rs, err := e.SearchSnapshot(context.Background(), pinned, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want[i] = rs
	}

	// Publish a pile of mutations: update every fragment, insert new ones,
	// remove one, compact.
	for i := 0; i < pinned.NumRefs(); i++ {
		m, err := pinned.Meta(fragindex.FragRef(i))
		if err != nil || !m.Alive {
			continue
		}
		d := crawl.Delta{Changes: []crawl.FragmentChange{{
			Op: crawl.OpUpdateFragment, ID: m.ID,
			TermCounts: map[string]int64{"rewritten": 3, "burger": 1}, TotalTerms: 4,
		}}}
		if _, err := live.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	d := crawl.Delta{Changes: []crawl.FragmentChange{
		{Op: crawl.OpInsertFragment, ID: fragment.ID{relation.String("Fusion"), relation.Int(1)},
			TermCounts: map[string]int64{"burger": 9}, TotalTerms: 9},
		{Op: crawl.OpRemoveFragment, ID: fragment.ID{relation.String("Thai"), relation.Int(10)}},
	}}
	if _, err := live.Apply(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if _, err := live.CompactIfNeeded(context.Background(), 0.01); err != nil {
		t.Fatal(err)
	}

	for i, q := range queries {
		rs, err := e.SearchSnapshot(context.Background(), pinned, q)
		if err != nil {
			t.Fatalf("query %d after mutations: %v", i, err)
		}
		if !reflect.DeepEqual(rs, want[i]) {
			t.Errorf("query %d: pinned snapshot results changed after publications", i)
		}
	}
	// Sanity: the live view did change.
	fresh, err := e.Search(context.Background(), Request{Keywords: []string{"rewritten"}, K: 10, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) == 0 {
		t.Error("published mutations invisible to fresh snapshots")
	}
	if got, _ := e.SearchSnapshot(context.Background(), pinned, Request{Keywords: []string{"rewritten"}, K: 10, SizeThreshold: 1}); len(got) != 0 {
		t.Error("pinned snapshot sees post-pin keyword")
	}
}
