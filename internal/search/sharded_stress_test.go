package search

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fragindex"
)

// TestConcurrentShardedSearchWithWriters is the sharded serving path under
// fire (run with -race in CI): 32 searcher goroutines scatter-gather over a
// ShardedLiveIndex while four writers stream routed update deltas over
// disjoint fragment sets and a garbage collector runs per-shard
// compactions. Every search must succeed, and — the per-shard pinning
// guarantee — re-running a search against the exact snapshot set it pinned
// must reproduce its answer byte for byte, no matter how many versions the
// writers published in between.
func TestConcurrentShardedSearchWithWriters(t *testing.T) {
	const groups, members = 64, 6
	r := rand.New(rand.NewSource(99))
	changes := randomCorpus(r, groups, members)
	live, err := fragindex.NewShardedLive(buildFrom(t, changes), 8)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSharded(live, nil)

	var queries []Request
	for _, kw := range corpusVocab {
		queries = append(queries,
			Request{Keywords: []string{kw}, K: 5, SizeThreshold: 25},
			Request{Keywords: []string{kw, "ale"}, K: 3, SizeThreshold: 40, RequireAll: true},
		)
	}

	const searchers = 32
	const writers = 4
	const iters = 30
	errc := make(chan error, searchers+writers+1)
	var wg sync.WaitGroup

	// Writers: update-only churn through the routed apply path. No
	// fragment is ever inserted or removed, so insert-vs-update
	// classification cannot race even though the writers' fragment sets
	// overlap; the per-shard single-writer locks serialize the rest.
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			wrand := rand.New(rand.NewSource(int64(1000 + wr)))
			for it := 0; it < iters; it++ {
				var ds []crawl.Delta
				for n := 0; n < 6; n++ {
					ch := changes[wrand.Intn(len(changes))]
					ds = append(ds, crawl.Delta{Changes: []crawl.FragmentChange{{
						Op: crawl.OpUpdateFragment, ID: ch.id,
						TermCounts: map[string]int64{corpusVocab[wrand.Intn(len(corpusVocab))]: int64(1 + it%4)},
						TotalTerms: int64(3 + it%5),
					}}})
				}
				if _, err := live.ApplyBatch(context.Background(), ds); err != nil {
					errc <- fmt.Errorf("writer %d: %v", wr, err)
					return
				}
			}
		}(wr)
	}

	// Searchers: scatter-gather plus pinned-set repeatability.
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				req := queries[(g+it)%len(queries)]
				snaps := se.Pin()
				first, err := se.SearchPinned(context.Background(), snaps, req)
				if err != nil {
					errc <- fmt.Errorf("searcher %d: %v", g, err)
					return
				}
				again, err := se.SearchPinned(context.Background(), snaps, req)
				if err != nil {
					errc <- fmt.Errorf("searcher %d re-run: %v", g, err)
					return
				}
				if d := diffResults(first, again); d != "" {
					errc <- fmt.Errorf("searcher %d: pinned set not repeatable: %s", g, d)
					return
				}
				if _, err := se.Search(context.Background(), req); err != nil {
					errc <- fmt.Errorf("searcher %d live: %v", g, err)
					return
				}
			}
		}(g)
	}

	// Compactor: per-shard snapshot GC racing the writers and searchers.
	stopGC := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-stopGC:
				return
			default:
			}
			if _, err := live.CompactIfNeeded(context.Background(), 0.2); err != nil {
				errc <- fmt.Errorf("compactor: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stopGC)
	gcWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The structure must still be coherent: the update-only churn never
	// changed the population, and a fresh search works.
	if st := live.Stats(); st.Fragments != len(changes) {
		t.Errorf("fragments after stress = %d, want %d", st.Fragments, len(changes))
	}
	if _, err := se.Search(context.Background(), queries[0]); err != nil {
		t.Errorf("post-stress search: %v", err)
	}
}
