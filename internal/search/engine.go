// Package search implements Dash's top-k db-page search (paper §VI,
// Algorithm 1). Given queried keywords W, a result count k, and a db-page
// size threshold s, it looks up relevant fragments in the inverted fragment
// index, assembles them into db-pages along fragment-graph edges, and
// returns the k most relevant pages as URLs that would regenerate them.
//
// Relevance follows the paper's modified TF/IDF: since db-pages are never
// materialized, IDF of keyword w is approximated as 1/DF(w) over fragments,
// and a page's TF for w is its occurrence count divided by its total
// keyword count. Merging the queue head with a neighbour yields a mediant
// of fractions, so a page's score stays bounded by the densest fragment it
// absorbs — but absorbing a denser neighbour can raise it, so Algorithm
// 1's early termination is greedy: the first k pages emitted are not
// always the k best the full enumeration would produce (see the
// ShardedEngine notes on how the scatter-gather merge interacts with
// this).
//
// # Performance
//
// The scoring core is allocation-free in steady state. Each query borrows
// a searchScratch from a sync.Pool holding every transient structure
// Algorithm 1 needs:
//
//   - Candidate fragments get dense ordinals in discovery order; their
//     per-keyword occurrence counts live in two flat arenas (numCandidates
//     × numKeywords int64s) instead of a map of per-fragment slices. The
//     seed arena keeps the pristine vectors expansion gain-lookups read;
//     the candidate arena holds the vectors expansions mutate.
//   - candidate structs are pooled in one backing slice; the priority
//     queue is a hand-rolled typed heap over pointers into it, so there is
//     no container/heap interface boxing and no per-push allocation.
//   - Page identity is a packed uint64 of the interval's endpoint refs
//     (FragRefs are int32), not an fmt.Sprintf string.
//   - Fragment refs are validated once when a candidate is seeded, and
//     seeding captures the group path with its parallel node weights
//     (fragindex.Snapshot.GroupPath); the expansion inner loop walks
//     members and weights off the path itself, touching no fragment
//     metadata and re-error-checking nothing per step.
//
// Only per-result work (URL formulation, the returned slice) allocates.
//
// # Cancellation
//
// Every search takes a context.Context first, like every other method on
// the serving path. A context that is already cancelled when Search is
// called returns ctx.Err() before the snapshot is even resolved; a
// cancellation or deadline that arrives mid-search is observed
// cooperatively — the assembly loop polls ctx.Err() once every
// ctxCheckInterval heap pops, so a runaway query on a hot keyword stops
// within a bounded amount of work after the deadline instead of running to
// completion. The poll allocates nothing, so the scoring core stays
// alloc-free, and the interval keeps its cost below measurement noise on
// the hottest queries (see BenchmarkSearchContextOverhead).
//
// # Snapshot pinning
//
// An Engine reads the index through a Source, which resolves the current
// fragindex.Snapshot. Every Search pins exactly one snapshot up front —
// for a LiveIndex source that is a single atomic load — and runs the whole
// algorithm against it, so scoring, expansion, and dedup can never observe
// a torn index even while a writer publishes new versions concurrently.
// ParallelSearch pins one snapshot for the entire batch, so a batch is
// internally consistent too. Engines are safe for concurrent use by any
// number of goroutines: the snapshot read path is lock-free and scratch
// state is per-goroutine via the pool.
package search

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fragindex"
	"repro/internal/relation"
	"repro/internal/webapp"
)

// Errors returned by Search.
var (
	ErrNoKeywords = errors.New("search: no keywords given")
	ErrBadK       = errors.New("search: k must be positive")
)

// Source resolves the index version a request should run against. Three
// implementations exist: *fragindex.Index (a live view of a mutable index
// under the exclusive-mutation contract), *fragindex.LiveIndex (the
// current published version, one atomic load), and *fragindex.Snapshot
// itself (a permanently pinned version).
type Source interface {
	Snapshot() *fragindex.Snapshot
}

// Engine answers top-k searches over one application's fragment index.
// It is safe for concurrent use (see the package Snapshot pinning notes).
type Engine struct {
	src     Source
	app     *webapp.Application // nil: results carry no URLs
	scratch sync.Pool           // *searchScratch
}

// New creates an engine over an index source — a *fragindex.Index,
// *fragindex.LiveIndex, or pinned *fragindex.Snapshot. app may be nil when
// URL formulation is not needed (benchmarks measure pure search time that
// way).
func New(src Source, app *webapp.Application) *Engine {
	e := &Engine{src: src, app: app}
	e.scratch.New = func() any { return newScratch() }
	return e
}

// Source returns the engine's index source.
func (e *Engine) Source() Source { return e.src }

// Snapshot resolves the index version the next Search would pin.
func (e *Engine) Snapshot() *fragindex.Snapshot { return e.src.Snapshot() }

// Index returns the engine's mutable fragment index when the engine was
// constructed directly over one, and nil for snapshot or live sources.
func (e *Engine) Index() *fragindex.Index {
	idx, _ := e.src.(*fragindex.Index)
	return idx
}

// App returns the engine's application (may be nil).
func (e *Engine) App() *webapp.Application { return e.app }

// Request is one top-k search invocation.
type Request struct {
	Keywords []string
	K        int
	// SizeThreshold is the paper's s: pages smaller than s keep expanding
	// while fragments are available; pages at or above s stop growing.
	SizeThreshold int
	// AllowOverlap keeps results that share fragments with already
	// accepted results. The default (false) excludes them, following the
	// paper's observation that fragment-sharing pages are redundant.
	AllowOverlap bool
	// CandidateLimit caps how many postings are read per keyword when
	// positive; any non-positive value reads full lists. (0 is the
	// ordinary "unlimited" default; a negative value means the same to
	// the engine but survives handle-level defaults — dash.Open's
	// WithCandidateLimit only fills requests whose limit is exactly 0.)
	// Inverted lists are TF-descending, so reading only the
	// "initial part of Lw" (paper §II) trades a bounded amount of recall
	// for latency on hot keywords. IDF still uses the full DF.
	//
	// Contract: the kept prefix is exactly the CandidateLimit postings
	// that sort highest by (TF descending, ref ascending). The ref
	// tie-break makes the cut deterministic when many postings share the
	// cutoff TF — the same snapshot and request always seed the same
	// candidates, so repeated searches return identical results.
	CandidateLimit int
	// RequireAll keeps only pages containing every queried keyword
	// (conjunctive semantics); the default scores any matching keyword.
	RequireAll bool
	// MinEpoch is a bounded-staleness routing directive, not a query
	// parameter: the minimum published epoch the serving view must have
	// reached for this request. Routing layers (replica handles, the
	// leader-side read router) consult it to place the read; the engine
	// itself ignores it, and NormalizeRequest clears it so cached results
	// are shared across staleness bounds (a cache entry is already pinned
	// to the epoch set it was computed at).
	MinEpoch uint64
}

// Result is one suggested db-page.
type Result struct {
	// URL regenerates the db-page through the web application ("" when
	// the engine has no application bound).
	URL string
	// QueryString is the URL's query-string part.
	QueryString string
	// Score is the page's TF/IDF relevance.
	Score float64
	// Fragments lists the page's fragments in range order.
	Fragments []fragindex.FragRef
	// Size is the page's total keyword count.
	Size int64
	// EqValues and RangeLo/RangeHi describe the page's parameter box.
	EqValues         map[string]relation.Value
	RangeLo, RangeHi relation.Value
	// EqKey is the canonical encoding of the page's equality values — the
	// group identity the ranking tie-break and cross-shard merge use, and
	// a convenient grouping key for consumers.
	EqKey string
}

// candidate is a pending db-page: a contiguous interval of one equality
// group's members. weights mirrors members (the group path carries node
// weights), so expansion reads neighbour sizes off the path itself. gkey
// gives the priority queue a content-based identity for exact score ties:
// the queue's order must match the canonical result order (compareResults)
// so that truncating at K keeps the same pages a merge over shards would
// keep.
type candidate struct {
	members []fragindex.FragRef // the full group, shared
	weights []int64             // per member: total keyword count, shared
	lo, hi  int                 // inclusive interval within members
	occ     []int64             // per query keyword occurrences (arena slice)
	ord     int32               // dense ordinal of the seeding fragment
	size    int64
	score   float64
	gkey    string // the group's canonical equality key
}

// searchScratch holds every transient structure one Search needs. It is
// pooled so the scoring core allocates nothing in steady state; all
// fields are reset (lengths zeroed, maps cleared) between queries but
// keep their capacity.
type searchScratch struct {
	keywords []string
	idf      []float64
	refs     []fragindex.FragRef            // candidate ref per ordinal
	ordOf    map[fragindex.FragRef]int32    // candidate ref → dense ordinal
	seedOcc  []int64                        // pristine occ vectors, ord-major
	candOcc  []int64                        // expansion-mutated occ vectors
	cands    []candidate                    // one per ordinal
	heap     []*candidate                   // typed priority queue
	consumed []bool                         // per ordinal: absorbed by expansion
	used     map[fragindex.FragRef]struct{} // fragments in accepted results
	seen     map[uint64]struct{}            // emitted page signatures
	limited  []fragindex.Posting            // CandidateLimit truncation buffer
}

func newScratch() *searchScratch {
	return &searchScratch{
		ordOf: make(map[fragindex.FragRef]int32),
		used:  make(map[fragindex.FragRef]struct{}),
		seen:  make(map[uint64]struct{}),
	}
}

// reset prepares the scratch for reuse, keeping capacity.
func (s *searchScratch) reset() {
	s.keywords = s.keywords[:0]
	s.idf = s.idf[:0]
	s.refs = s.refs[:0]
	s.seedOcc = s.seedOcc[:0]
	s.candOcc = s.candOcc[:0]
	s.cands = s.cands[:0]
	s.heap = s.heap[:0]
	s.consumed = s.consumed[:0]
	s.limited = s.limited[:0]
	clear(s.ordOf)
	clear(s.used)
	clear(s.seen)
}

// growZero extends a slice by n zeroed int64s without a temporary.
func growZero(s []int64, n int) []int64 {
	if cap(s)-len(s) >= n {
		l := len(s)
		s = s[: l+n : cap(s)]
		clear(s[l:])
		return s
	}
	for i := 0; i < n; i++ {
		s = append(s, 0)
	}
	return s
}

// topTFPrefix returns the limit postings that sort highest by
// (TF descending, ref ascending) from a TF-descending list, without
// modifying ps (it may be a posting list shared with the snapshot). When
// the entries tied at the cutoff TF all fit, this is the plain prefix and
// costs nothing; otherwise the tie band is copied into the reusable
// scratch buffer and the band's smallest refs are selected (expected
// O(band), not a sort — the band on a hot keyword can dwarf the limit),
// so identical snapshots always seed identical candidate sets. Within the
// tie band the returned order is unspecified; the selected set is what
// the contract fixes. The result is valid until the next topTFPrefix call
// on the same scratch.
func (s *searchScratch) topTFPrefix(ps []fragindex.Posting, limit int) []fragindex.Posting {
	cut := ps[limit-1].TF
	// [a, b) is the band of postings tied at the cutoff TF.
	a := sort.Search(len(ps), func(i int) bool { return ps[i].TF <= cut })
	b := sort.Search(len(ps), func(i int) bool { return ps[i].TF < cut })
	if b <= limit {
		return ps[:limit] // no excess ties; the prefix is already exact
	}
	s.limited = append(s.limited[:0], ps[:b]...)
	selectSmallestRefs(s.limited[a:], limit-a)
	return s.limited[:limit]
}

// selectSmallestRefs partially partitions band (all entries tied on TF) so
// its first need entries are the ones with the smallest refs — Hoare
// quickselect, expected O(len(band)).
func selectSmallestRefs(band []fragindex.Posting, need int) {
	lo, hi := 0, len(band)-1
	for lo < hi {
		pivot := band[(lo+hi)/2].Frag
		i, j := lo, hi
		for i <= j {
			for band[i].Frag < pivot {
				i++
			}
			for band[j].Frag > pivot {
				j--
			}
			if i <= j {
				band[i], band[j] = band[j], band[i]
				i++
				j--
			}
		}
		switch {
		case need-1 <= j:
			hi = j
		case need-1 >= i:
			lo = i
		default:
			return
		}
	}
}

// candLess orders the priority queue: best score first, then the
// deterministic content-based tie-break — smaller page, then the group's
// canonical equality key, then the page's interval position on the group
// path. The tie-break deliberately mirrors compareResults (group members
// are range-ordered, so path positions order like range values) and never
// consults ref numbering: when the K-th result slot falls inside a band of
// exactly tied pages, the pages kept are a function of page content alone,
// so a sharded scatter-gather (whose shards number refs independently)
// truncates to the same top-k a single index does. The key comparison only
// runs on exact (score, size) ties.
func candLess(a, b *candidate) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.size != b.size {
		return a.size < b.size
	}
	if a.gkey != b.gkey {
		return a.gkey < b.gkey
	}
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	return a.hi < b.hi
}

// heapPush and heapPop implement a typed binary heap over s.heap —
// identical ordering to container/heap but without interface boxing.
func (s *searchScratch) heapPush(c *candidate) {
	s.heap = append(s.heap, c)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !candLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *searchScratch) heapPop() *candidate {
	h := s.heap
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && candLess(h[r], h[l]) {
			child = r
		}
		if !candLess(h[child], h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// ctxCheckInterval is how many heap pops the assembly loop runs between
// cooperative ctx.Err() polls. A poll is cheap but not free — the standard
// cancelCtx takes an uncontended mutex in Err() — and a pop is a few
// nanoseconds, so polling too densely shows up on the Fig11 hot band.
// 1024 keeps the poll below measurement noise (BenchmarkSearchContextOverhead
// pins this) while still bounding how far past a cancellation a search can
// run to microseconds of expansion work.
const ctxCheckInterval = 1024

// orBackground tolerates a nil context at the API boundary so a forgotten
// ctx degrades to "not cancellable" instead of a panic deep in the loop.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Search runs Algorithm 1 against the source's current snapshot and
// returns at most req.K results ordered by descending relevance. An
// already-cancelled ctx returns ctx.Err() without resolving the snapshot;
// a cancellation mid-search is honored within ctxCheckInterval heap pops.
func (e *Engine) Search(ctx context.Context, req Request) ([]Result, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.searchSnapshot(ctx, e.src.Snapshot(), req, nil)
}

// SearchSnapshot runs Algorithm 1 pinned to an explicit snapshot — the
// batch APIs use it to keep multi-query requests internally consistent,
// and callers can hold a snapshot across calls for repeatable reads while
// later versions are published. Cancellation behaves as in Search.
func (e *Engine) SearchSnapshot(ctx context.Context, idx *fragindex.Snapshot, req Request) ([]Result, error) {
	return e.searchSnapshot(orBackground(ctx), idx, req, nil)
}

// searchSnapshot is SearchSnapshot with an optional IDF override:
// globalIDF, when non-nil, supplies the IDF per normalized keyword —
// aligned with normalizeKeywords(req.Keywords) order — in place of the
// snapshot's own 1/DF. The sharded scatter-gather passes corpus-wide IDF
// aggregated over the pinned shard snapshots here, so per-shard scores are
// byte-identical to a single-index run over the union of the shards.
func (e *Engine) searchSnapshot(ctx context.Context, idx *fragindex.Snapshot, req Request, globalIDF []float64) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := e.scratch.Get().(*searchScratch)
	defer e.scratch.Put(s)
	s.reset()

	s.keywords = normalizeKeywords(s.keywords, req.Keywords)
	if len(s.keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if req.K <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, req.K)
	}
	if globalIDF != nil && len(globalIDF) != len(s.keywords) {
		return nil, fmt.Errorf("search: %d IDF overrides for %d normalized keywords",
			len(globalIDF), len(s.keywords))
	}
	nk := len(s.keywords)

	// Line 1: fragments relevant to W, with precomputed IDF weights and
	// per-fragment occurrence vectors in the flat seed arena. Seeding a hot
	// keyword walks its whole posting list, so the ctx is polled once per
	// keyword here too.
	for i, w := range s.keywords {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ps, idf := idx.PostingsIDF(w)
		if globalIDF != nil {
			idf = globalIDF[i]
		}
		s.idf = append(s.idf, idf)
		if req.CandidateLimit > 0 && len(ps) > req.CandidateLimit {
			// TF-descending lists make the prefix the highest-TF
			// fragments — the paper's partial inverted-list read. Ties at
			// the cutoff TF are broken by ascending ref so the kept set
			// is a deterministic function of the snapshot (see the
			// Request.CandidateLimit contract).
			ps = s.topTFPrefix(ps, req.CandidateLimit)
		}
		for _, p := range ps {
			ord, ok := s.ordOf[p.Frag]
			if !ok {
				ord = int32(len(s.refs))
				s.ordOf[p.Frag] = ord
				s.refs = append(s.refs, p.Frag)
				s.seedOcc = growZero(s.seedOcc, nk)
			}
			s.seedOcc[int(ord)*nk+i] += p.TF
		}
	}
	if len(s.refs) == 0 {
		return nil, nil // no relevant fragments, empty result
	}

	// Validate every candidate ref once; after this the hot loop uses the
	// index's unchecked accessors. Postings only hands out live refs, so a
	// failure here means the index broke its own invariant — surfaced as
	// an error rather than scored as a silent zero-weight page.
	for _, ref := range s.refs {
		if !idx.AliveRef(ref) {
			return nil, fmt.Errorf("%w: posting ref %d", fragindex.ErrNoFragment, ref)
		}
	}

	// Line 2: seed the priority queue with single-fragment pages. The
	// candidate backing slice is sized up front so heap pointers into it
	// stay valid; candidate occ vectors are copies of the seed vectors
	// (expansion mutates them, gain lookups need the originals).
	numOrds := len(s.refs)
	s.candOcc = growZero(s.candOcc, numOrds*nk)
	copy(s.candOcc, s.seedOcc)
	if cap(s.cands) < numOrds {
		s.cands = make([]candidate, numOrds)
	} else {
		s.cands = s.cands[:numOrds]
	}
	if cap(s.consumed) >= numOrds {
		s.consumed = s.consumed[:numOrds]
		clear(s.consumed)
	} else {
		s.consumed = make([]bool, numOrds)
	}
	for ord, ref := range s.refs {
		members, weights, gkey, pos, err := idx.GroupPath(ref)
		if err != nil {
			return nil, err
		}
		c := &s.cands[ord]
		*c = candidate{
			members: members,
			weights: weights,
			lo:      pos,
			hi:      pos,
			occ:     s.candOcc[ord*nk : (ord+1)*nk],
			ord:     int32(ord),
			size:    weights[pos],
			gkey:    gkey,
		}
		c.score = score(c.occ, c.size, s.idf)
		s.heapPush(c)
	}

	var out []Result

	// Lines 4-9: assemble pages best-first. The loop is where an expensive
	// query spends its time (a pop either expands a page or emits one), so
	// this is where cancellation is polled: once every ctxCheckInterval
	// pops.
	pops := 0
	for len(s.heap) > 0 && len(out) < req.K {
		pops++
		if pops%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		c := s.heapPop()
		if c.lo == c.hi && s.consumed[c.ord] {
			continue // seed absorbed into an earlier expansion (line 8)
		}
		if e.expandable(c, req.SizeThreshold) {
			e.expand(c, s, nk)
			s.heapPush(c)
			continue
		}
		// Line 6-7: not expandable — emit.
		sig := packRefs(c.members[c.lo], c.members[c.hi])
		if _, ok := s.seen[sig]; ok {
			continue
		}
		s.seen[sig] = struct{}{}
		if req.RequireAll && !hasAll(c.occ) {
			continue
		}
		if !req.AllowOverlap {
			overlap := false
			for i := c.lo; i <= c.hi; i++ {
				if _, ok := s.used[c.members[i]]; ok {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for i := c.lo; i <= c.hi; i++ {
				s.used[c.members[i]] = struct{}{}
			}
		}
		res, err := e.resultFor(idx, c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	sortResults(out)
	return out, nil
}

// compareResults is the canonical result order: score descending, then
// size ascending, then the page's parameter box (canonical equality key,
// then range interval). It mirrors candLess exactly — group members are
// range-ordered, so candLess's path positions order like the interval here
// — and is a total order over distinct pages that depends only on page
// content, never on internal ref numbering, so the order is identical
// across snapshots, compactions, and shard layouts. The sharded
// scatter-gather relies on this: per-shard top-k lists sorted this way
// merge into exactly the list a single-index engine over the union of the
// shards returns. (The one unordered case: distinct intervals over
// duplicate range values can share a parameter box — but such pages
// regenerate the same URL, so their relative order is immaterial at the
// API surface.)
func compareResults(a, b *Result) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	}
	switch {
	case a.Size < b.Size:
		return -1
	case a.Size > b.Size:
		return 1
	}
	switch {
	case a.EqKey < b.EqKey:
		return -1
	case a.EqKey > b.EqKey:
		return 1
	}
	if c := a.RangeLo.Compare(b.RangeLo); c != 0 {
		return c
	}
	return a.RangeHi.Compare(b.RangeHi)
}

// sortResults orders results canonically (see compareResults).
func sortResults(out []Result) {
	sort.SliceStable(out, func(i, j int) bool { return compareResults(&out[i], &out[j]) < 0 })
}

// expandable implements line 6's test:  is smaller than s and a neighbour
// fragment exists.
func (e *Engine) expandable(c *candidate, s int) bool {
	if c.size >= int64(s) {
		return false
	}
	return c.lo > 0 || c.hi < len(c.members)-1
}

// gainOf returns a neighbour's weighted occurrence gain (0 when the
// fragment carries none of the queried keywords) and its dense ordinal
// (-1 when it is not a candidate).
func (e *Engine) gainOf(ref fragindex.FragRef, s *searchScratch, nk int) (float64, int32) {
	ord, ok := s.ordOf[ref]
	if !ok {
		return 0, -1
	}
	return weighted(s.seedOcc[int(ord)*nk:int(ord+1)*nk], s.idf), ord
}

// expand grows the page by its best neighbour: relevant fragments are
// favoured (highest added weighted occurrence), then smaller fragments.
// An absorbed relevant seed is marked consumed so its queue entry dies.
// Neighbour refs and weights come straight off the candidate's group path
// (seeded via GroupPath), so the inner loop never dereferences fragment
// metadata.
func (e *Engine) expand(c *candidate, s *searchScratch, nk int) {
	var (
		bestOrd    int32
		bestGain   float64
		bestWeight int64
		bestLeft   bool
	)
	if c.lo > 0 {
		bestGain, bestOrd = e.gainOf(c.members[c.lo-1], s, nk)
		bestWeight = c.weights[c.lo-1]
		bestLeft = true
	}
	if c.hi < len(c.members)-1 {
		w := c.weights[c.hi+1]
		gain, ord := e.gainOf(c.members[c.hi+1], s, nk)
		if !bestLeft || gain > bestGain || (gain == bestGain && w < bestWeight) {
			bestOrd, bestGain, bestWeight, bestLeft = ord, gain, w, false
		}
	}
	if bestLeft {
		c.lo--
	} else {
		c.hi++
	}
	c.size += bestWeight
	if bestOrd >= 0 {
		occ := s.seedOcc[int(bestOrd)*nk : int(bestOrd+1)*nk]
		for i := range c.occ {
			c.occ[i] += occ[i]
		}
		s.consumed[bestOrd] = true
	}
	c.score = score(c.occ, c.size, s.idf)
}

// score computes Σ_w (occ_w / size) × IDF_w.
func score(occ []int64, size int64, idf []float64) float64 {
	if size == 0 {
		return 0
	}
	return weighted(occ, idf) / float64(size)
}

// hasAll reports whether every queried keyword occurs in the page.
func hasAll(occ []int64) bool {
	for _, n := range occ {
		if n == 0 {
			return false
		}
	}
	return true
}

// weighted computes Σ_w occ_w × IDF_w (occ may be nil for an irrelevant
// fragment).
func weighted(occ []int64, idf []float64) float64 {
	var sum float64
	for i, n := range occ {
		sum += float64(n) * idf[i]
	}
	return sum
}

// resultFor formulates the page's parameter box and URL (line 10).
func (e *Engine) resultFor(idx *fragindex.Snapshot, c *candidate) (Result, error) {
	frags := make([]fragindex.FragRef, 0, c.hi-c.lo+1)
	for i := c.lo; i <= c.hi; i++ {
		frags = append(frags, c.members[i])
	}
	eqVals, err := idx.EqValues(frags[0])
	if err != nil {
		return Result{}, err
	}
	lo, err := idx.RangeValue(frags[0])
	if err != nil {
		return Result{}, err
	}
	hi, err := idx.RangeValue(frags[len(frags)-1])
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Score:     c.score,
		Fragments: frags,
		Size:      c.size,
		EqValues:  eqVals,
		RangeLo:   lo,
		RangeHi:   hi,
		EqKey:     c.gkey,
	}
	if e.app != nil {
		params, err := e.app.PageParams(eqVals, lo, hi)
		if err != nil {
			return Result{}, err
		}
		res.QueryString, err = e.app.FormatQueryString(params)
		if err != nil {
			return Result{}, err
		}
		res.URL, err = e.app.FormatURL(params)
		if err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// packRefs identifies a page by its fragment interval endpoints packed
// into one uint64 (frag refs are int32 and globally unique, so the pair
// pins the page down without an fmt.Sprintf key).
func packRefs(lo, hi fragindex.FragRef) uint64 {
	return uint64(uint32(lo))<<32 | uint64(uint32(hi))
}

// normalizeKeywords lower-cases, splits, deduplicates, and sorts query
// keywords into dst (reused across queries) — the one canonical keyword
// form the whole serving path agrees on. Sorting makes the internal
// keyword order (and with it every occurrence vector and floating-point
// score summation) a function of the keyword *set*, never the order the
// caller happened to write, so any permutation of the same keywords
// returns byte-identical results — the property the epoch-keyed result
// cache relies on to collapse equal-meaning requests onto one entry
// (see NormalizeRequest). Typical queries are a handful of words, where
// a linear-scan dedup is allocation-free; past dedupScanLimit distinct
// keywords it falls back to a map so a huge user-supplied query string
// stays linear, not quadratic.
const dedupScanLimit = 24

func normalizeKeywords(dst []string, words []string) []string {
	dst = dedupKeywords(dst, words)
	sort.Strings(dst)
	return dst
}

func dedupKeywords(dst []string, words []string) []string {
	var seen map[string]struct{}
	for _, w := range words {
		for _, f := range strings.Fields(strings.ToLower(w)) {
			if seen != nil {
				if _, dup := seen[f]; !dup {
					seen[f] = struct{}{}
					dst = append(dst, f)
				}
				continue
			}
			dup := false
			for _, have := range dst {
				if have == f {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, f)
				if len(dst) > dedupScanLimit {
					seen = make(map[string]struct{}, 2*len(dst))
					for _, have := range dst {
						seen[have] = struct{}{}
					}
				}
			}
		}
	}
	return dst
}
