// Package search implements Dash's top-k db-page search (paper §VI,
// Algorithm 1). Given queried keywords W, a result count k, and a db-page
// size threshold s, it looks up relevant fragments in the inverted fragment
// index, assembles them into db-pages along fragment-graph edges, and
// returns the k most relevant pages as URLs that would regenerate them.
//
// Relevance follows the paper's modified TF/IDF: since db-pages are never
// materialized, IDF of keyword w is approximated as 1/DF(w) over fragments,
// and a page's TF for w is its occurrence count divided by its total
// keyword count. Merging the queue head with a neighbour yields a mediant
// of fractions, so scores are non-increasing along expansions — the
// monotonicity Algorithm 1's early termination relies on.
package search

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fragindex"
	"repro/internal/relation"
	"repro/internal/webapp"
)

// Errors returned by Search.
var (
	ErrNoKeywords = errors.New("search: no keywords given")
	ErrBadK       = errors.New("search: k must be positive")
)

// Engine answers top-k searches over one application's fragment index.
type Engine struct {
	idx *fragindex.Index
	app *webapp.Application // nil: results carry no URLs
}

// New creates an engine. app may be nil when URL formulation is not needed
// (benchmarks measure pure search time that way).
func New(idx *fragindex.Index, app *webapp.Application) *Engine {
	return &Engine{idx: idx, app: app}
}

// Index returns the engine's fragment index.
func (e *Engine) Index() *fragindex.Index { return e.idx }

// App returns the engine's application (may be nil).
func (e *Engine) App() *webapp.Application { return e.app }

// Request is one top-k search invocation.
type Request struct {
	Keywords []string
	K        int
	// SizeThreshold is the paper's s: pages smaller than s keep expanding
	// while fragments are available; pages at or above s stop growing.
	SizeThreshold int
	// AllowOverlap keeps results that share fragments with already
	// accepted results. The default (false) excludes them, following the
	// paper's observation that fragment-sharing pages are redundant.
	AllowOverlap bool
	// CandidateLimit caps how many postings are read per keyword
	// (0 = all). Inverted lists are TF-descending, so reading only the
	// "initial part of Lw" (paper §II) trades a bounded amount of recall
	// for latency on hot keywords. IDF still uses the full DF.
	CandidateLimit int
	// RequireAll keeps only pages containing every queried keyword
	// (conjunctive semantics); the default scores any matching keyword.
	RequireAll bool
}

// Result is one suggested db-page.
type Result struct {
	// URL regenerates the db-page through the web application ("" when
	// the engine has no application bound).
	URL string
	// QueryString is the URL's query-string part.
	QueryString string
	// Score is the page's TF/IDF relevance.
	Score float64
	// Fragments lists the page's fragments in range order.
	Fragments []fragindex.FragRef
	// Size is the page's total keyword count.
	Size int64
	// EqValues and RangeLo/RangeHi describe the page's parameter box.
	EqValues         map[string]relation.Value
	RangeLo, RangeHi relation.Value
}

// candidate is a pending db-page: a contiguous interval of one equality
// group's members.
type candidate struct {
	members []fragindex.FragRef // the full group, shared
	lo, hi  int                 // inclusive interval within members
	occ     []int64             // per query keyword occurrence counts
	size    int64
	score   float64
	seed    fragindex.FragRef // originating fragment (for removal tracking)
}

type pageHeap []*candidate

func (h pageHeap) Len() int { return len(h) }
func (h pageHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	// Deterministic tie-break: smaller page first, then seed order.
	if h[i].size != h[j].size {
		return h[i].size < h[j].size
	}
	return h[i].seed < h[j].seed
}
func (h pageHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pageHeap) Push(x any)   { *h = append(*h, x.(*candidate)) }
func (h *pageHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return item
}

// Search runs Algorithm 1 and returns at most req.K results ordered by
// descending relevance.
func (e *Engine) Search(req Request) ([]Result, error) {
	keywords := normalizeKeywords(req.Keywords)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if req.K <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, req.K)
	}

	// Line 1: fragments relevant to W, with IDF weights and per-fragment
	// occurrence vectors.
	idf := make([]float64, len(keywords))
	occOf := make(map[fragindex.FragRef][]int64)
	for i, w := range keywords {
		ps := e.idx.Postings(w)
		if len(ps) == 0 {
			continue
		}
		idf[i] = 1 / float64(len(ps))
		if req.CandidateLimit > 0 && len(ps) > req.CandidateLimit {
			// TF-descending lists make the prefix the highest-TF
			// fragments — the paper's partial inverted-list read.
			ps = ps[:req.CandidateLimit]
		}
		for _, p := range ps {
			v, ok := occOf[p.Frag]
			if !ok {
				v = make([]int64, len(keywords))
				occOf[p.Frag] = v
			}
			v[i] += p.TF
		}
	}
	if len(occOf) == 0 {
		return nil, nil // no relevant fragments, empty result
	}

	// Line 2: seed the priority queue with single-fragment pages.
	q := make(pageHeap, 0, len(occOf))
	for ref, occ := range occOf {
		meta, err := e.idx.Meta(ref)
		if err != nil {
			return nil, err
		}
		members, pos, err := e.idx.GroupMembers(ref)
		if err != nil {
			return nil, err
		}
		c := &candidate{
			members: members,
			lo:      pos,
			hi:      pos,
			// Copy: expansion mutates the candidate's vector, while
			// occOf's entries must stay pristine for gain lookups.
			occ:  append([]int64(nil), occ...),
			size: meta.Terms,
			seed: ref,
		}
		c.score = score(c.occ, c.size, idf)
		q = append(q, c)
	}
	heap.Init(&q)

	consumed := make(map[fragindex.FragRef]bool) // seeds used in expansions
	used := make(map[fragindex.FragRef]bool)     // fragments inside accepted results
	seen := make(map[string]bool)                // emitted page signatures
	var out []Result

	// Lines 4-9: assemble pages best-first.
	for q.Len() > 0 && len(out) < req.K {
		c := heap.Pop(&q).(*candidate)
		if c.lo == c.hi && consumed[c.members[c.lo]] {
			continue // seed absorbed into an earlier expansion (line 8)
		}
		if e.expandable(c, req.SizeThreshold) {
			e.expand(c, occOf, idf, consumed)
			heap.Push(&q, c)
			continue
		}
		// Line 6-7: not expandable — emit.
		sig := pageSignature(c)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		if req.RequireAll && !hasAll(c.occ) {
			continue
		}
		if !req.AllowOverlap {
			overlap := false
			for i := c.lo; i <= c.hi; i++ {
				if used[c.members[i]] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for i := c.lo; i <= c.hi; i++ {
				used[c.members[i]] = true
			}
		}
		res, err := e.resultFor(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// expandable implements line 6's test:  is smaller than s and a neighbour
// fragment exists.
func (e *Engine) expandable(c *candidate, s int) bool {
	if c.size >= int64(s) {
		return false
	}
	return c.lo > 0 || c.hi < len(c.members)-1
}

// expand grows the page by its best neighbour: relevant fragments are
// favoured (highest added weighted occurrence), then smaller fragments.
// An absorbed relevant seed is marked consumed so its queue entry dies.
func (e *Engine) expand(c *candidate, occOf map[fragindex.FragRef][]int64,
	idf []float64, consumed map[fragindex.FragRef]bool) {

	type option struct {
		ref   fragindex.FragRef
		left  bool
		gain  float64
		terms int64
	}
	var opts []option
	if c.lo > 0 {
		ref := c.members[c.lo-1]
		meta, _ := e.idx.Meta(ref)
		opts = append(opts, option{ref: ref, left: true, gain: weighted(occOf[ref], idf), terms: meta.Terms})
	}
	if c.hi < len(c.members)-1 {
		ref := c.members[c.hi+1]
		meta, _ := e.idx.Meta(ref)
		opts = append(opts, option{ref: ref, left: false, gain: weighted(occOf[ref], idf), terms: meta.Terms})
	}
	best := opts[0]
	if len(opts) == 2 {
		o := opts[1]
		if o.gain > best.gain || (o.gain == best.gain && o.terms < best.terms) {
			best = o
		}
	}
	if best.left {
		c.lo--
	} else {
		c.hi++
	}
	meta, _ := e.idx.Meta(best.ref)
	c.size += meta.Terms
	if occ, ok := occOf[best.ref]; ok {
		for i := range c.occ {
			c.occ[i] += occ[i]
		}
		consumed[best.ref] = true
	}
	c.score = score(c.occ, c.size, idf)
}

// score computes Σ_w (occ_w / size) × IDF_w.
func score(occ []int64, size int64, idf []float64) float64 {
	if size == 0 {
		return 0
	}
	return weighted(occ, idf) / float64(size)
}

// hasAll reports whether every queried keyword occurs in the page.
func hasAll(occ []int64) bool {
	for _, n := range occ {
		if n == 0 {
			return false
		}
	}
	return true
}

// weighted computes Σ_w occ_w × IDF_w (occ may be nil for an irrelevant
// fragment).
func weighted(occ []int64, idf []float64) float64 {
	var sum float64
	for i, n := range occ {
		sum += float64(n) * idf[i]
	}
	return sum
}

// resultFor formulates the page's parameter box and URL (line 10).
func (e *Engine) resultFor(c *candidate) (Result, error) {
	frags := make([]fragindex.FragRef, 0, c.hi-c.lo+1)
	for i := c.lo; i <= c.hi; i++ {
		frags = append(frags, c.members[i])
	}
	eqVals, err := e.idx.EqValues(frags[0])
	if err != nil {
		return Result{}, err
	}
	lo, err := e.idx.RangeValue(frags[0])
	if err != nil {
		return Result{}, err
	}
	hi, err := e.idx.RangeValue(frags[len(frags)-1])
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Score:     c.score,
		Fragments: frags,
		Size:      c.size,
		EqValues:  eqVals,
		RangeLo:   lo,
		RangeHi:   hi,
	}
	if e.app != nil {
		params, err := e.app.PageParams(eqVals, lo, hi)
		if err != nil {
			return Result{}, err
		}
		res.QueryString, err = e.app.FormatQueryString(params)
		if err != nil {
			return Result{}, err
		}
		res.URL, err = e.app.FormatURL(params)
		if err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// pageSignature identifies a page by its fragment interval endpoints (frag
// refs are globally unique, so the pair pins the page down).
func pageSignature(c *candidate) string {
	return fmt.Sprintf("%d:%d", c.members[c.lo], c.members[c.hi])
}

// normalizeKeywords lower-cases, splits, and deduplicates query keywords.
func normalizeKeywords(words []string) []string {
	var out []string
	seen := make(map[string]bool, len(words))
	for _, w := range words {
		for _, f := range strings.Fields(strings.ToLower(w)) {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}
