package search

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionCapacity: the in-flight cap admits exactly MaxInFlight
// concurrent searches; releases free slots.
func TestAdmissionCapacity(t *testing.T) {
	ac := NewAdmissionController(AdmissionOptions{MaxInFlight: 2})
	rel1, err := ac.Admit(time.Time{}, false)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := ac.Admit(time.Time{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Admit(time.Time{}, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third admit err = %v, want ErrOverloaded", err)
	}
	rel1()
	rel3, err := ac.Admit(time.Time{}, false)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	rel3()
	st := ac.Stats()
	if st.Admitted != 3 || st.ShedCapacity != 1 || st.InFlight != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAdmissionBudget: a request whose remaining deadline is below the
// cost floor is shed; deadline-free requests are never budget-shed; the
// EWMA estimate raises the floor past MinBudget.
func TestAdmissionBudget(t *testing.T) {
	ac := NewAdmissionController(AdmissionOptions{MinBudget: 10 * time.Millisecond})

	if _, err := ac.Admit(time.Now().Add(time.Millisecond), true); !errors.Is(err, ErrOverloaded) {
		t.Errorf("1ms budget under a 10ms floor admitted: %v", err)
	}
	if rel, err := ac.Admit(time.Now().Add(time.Second), true); err != nil {
		t.Errorf("ample budget shed: %v", err)
	} else {
		rel()
	}
	if rel, err := ac.Admit(time.Time{}, false); err != nil {
		t.Errorf("deadline-free request shed: %v", err)
	} else {
		rel()
	}

	// Observed slow searches raise the floor above MinBudget.
	for i := 0; i < 64; i++ {
		ac.Observe(200 * time.Millisecond)
	}
	if est := ac.Stats().EstCostNs; est < int64(100*time.Millisecond) {
		t.Fatalf("EWMA estimate %dns did not converge toward observations", est)
	}
	if _, err := ac.Admit(time.Now().Add(50*time.Millisecond), true); !errors.Is(err, ErrOverloaded) {
		t.Errorf("50ms budget under a ~200ms estimate admitted: %v", err)
	}
	if st := ac.Stats(); st.ShedBudget < 2 {
		t.Errorf("shed_budget = %d, want >= 2", st.ShedBudget)
	}
}

// TestAdmissionConcurrent exercises the atomic in-flight accounting under
// churn (run with -race): the cap is never exceeded observably, and the
// counter returns to zero.
func TestAdmissionConcurrent(t *testing.T) {
	const cap = 4
	ac := NewAdmissionController(AdmissionOptions{MaxInFlight: cap})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rel, err := ac.Admit(time.Time{}, false)
				if err != nil {
					continue
				}
				if n := ac.Stats().InFlight; n > cap {
					t.Errorf("in-flight %d exceeds cap %d", n, cap)
				}
				rel()
			}
		}()
	}
	wg.Wait()
	if st := ac.Stats(); st.InFlight != 0 {
		t.Errorf("in-flight %d after drain, want 0", st.InFlight)
	}
}
