package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNormalizeRequestCanonical: normalization is idempotent and folds
// every spelling of the same request — keyword order, duplicates, case,
// multi-word strings, the negative explicit-unlimited CandidateLimit —
// onto one canonical form.
func TestNormalizeRequestCanonical(t *testing.T) {
	base := NormalizeRequest(Request{Keywords: []string{"burger", "coffee"}, K: 3, SizeThreshold: 20})
	for _, kws := range [][]string{
		{"coffee", "burger"},
		{"burger", "coffee", "burger"},
		{"Coffee", "BURGER"},
		{"coffee burger"},
		{"burger", "", "coffee"},
	} {
		got := NormalizeRequest(Request{Keywords: kws, K: 3, SizeThreshold: 20})
		if !reflect.DeepEqual(got, base) {
			t.Errorf("NormalizeRequest(%q) = %+v, want %+v", kws, got, base)
		}
	}
	if again := NormalizeRequest(base); !reflect.DeepEqual(again, base) {
		t.Errorf("normalization not idempotent: %+v -> %+v", base, again)
	}
	if got := NormalizeRequest(Request{Keywords: []string{"a"}, K: 1, CandidateLimit: -5}); got.CandidateLimit != 0 {
		t.Errorf("negative CandidateLimit folded to %d, want 0", got.CandidateLimit)
	}
	if got := NormalizeRequest(Request{Keywords: []string{"a"}, K: 1, CandidateLimit: 7}); got.CandidateLimit != 7 {
		t.Errorf("positive CandidateLimit = %d, want 7", got.CandidateLimit)
	}
}

// TestNormalizeRequestPreservesResults is the satellite property test:
// normalizing a request never changes what a search returns —
// byte-identical results for every permutation/duplication of the keyword
// list, which is exactly what lets the cache key on the canonical form.
func TestNormalizeRequestPreservesResults(t *testing.T) {
	e := fooddbEngine(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	words := []string{"burger", "coffee", "pizza", "thai", "sushi"}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(len(words))
		kws := make([]string, 0, n+2)
		for i := 0; i < n; i++ {
			kws = append(kws, words[rng.Intn(len(words))])
		}
		req := Request{Keywords: kws, K: 1 + rng.Intn(5), SizeThreshold: 10 + rng.Intn(40)}
		raw, rawErr := e.Search(ctx, req)
		norm, normErr := e.Search(ctx, NormalizeRequest(req))
		if !errors.Is(rawErr, normErr) && (rawErr == nil) != (normErr == nil) {
			t.Fatalf("trial %d (%q): raw err %v, normalized err %v", trial, kws, rawErr, normErr)
		}
		if !reflect.DeepEqual(raw, norm) {
			t.Fatalf("trial %d (%q): normalized request changed results:\nraw:  %+v\nnorm: %+v",
				trial, kws, raw, norm)
		}
	}
}

// TestCacheKeyDistinguishes: the key separates every request dimension
// and the pinned epochs, and collapses equal-meaning requests.
func TestCacheKeyDistinguishes(t *testing.T) {
	pins := []EpochPin{{Shard: 0, Epoch: 3}}
	base := NormalizeRequest(Request{Keywords: []string{"a", "b"}, K: 2, SizeThreshold: 10})
	keys := map[string]string{}
	add := func(name string, req Request, p []EpochPin) {
		k := CacheKey(NormalizeRequest(req), p)
		if prev, ok := keys[k]; ok {
			t.Errorf("%s collides with %s: %q", name, prev, k)
		}
		keys[k] = name
	}
	add("base", base, pins)
	add("k", Request{Keywords: []string{"a", "b"}, K: 3, SizeThreshold: 10}, pins)
	add("s", Request{Keywords: []string{"a", "b"}, K: 2, SizeThreshold: 11}, pins)
	add("limit", Request{Keywords: []string{"a", "b"}, K: 2, SizeThreshold: 10, CandidateLimit: 4}, pins)
	add("overlap", Request{Keywords: []string{"a", "b"}, K: 2, SizeThreshold: 10, AllowOverlap: true}, pins)
	add("requireAll", Request{Keywords: []string{"a", "b"}, K: 2, SizeThreshold: 10, RequireAll: true}, pins)
	add("keywords", Request{Keywords: []string{"a", "c"}, K: 2, SizeThreshold: 10}, pins)
	add("epoch", base, []EpochPin{{Shard: 0, Epoch: 4}})
	add("shard", base, []EpochPin{{Shard: 1, Epoch: 3}})
	add("two shards", base, []EpochPin{{Shard: 0, Epoch: 3}, {Shard: 1, Epoch: 3}})

	// Equal-meaning spellings share one key.
	if a, b := CacheKey(NormalizeRequest(Request{Keywords: []string{"b", "a", "B"}, K: 2, SizeThreshold: 10}), pins),
		CacheKey(base, pins); a != b {
		t.Errorf("permuted keywords keyed differently: %q vs %q", a, b)
	}
	// Keyword boundaries are not ambiguous ("ab"+"c" vs "a"+"bc").
	if a, b := CacheKey(NormalizeRequest(Request{Keywords: []string{"ab", "c"}, K: 2, SizeThreshold: 10}), pins),
		CacheKey(NormalizeRequest(Request{Keywords: []string{"a", "bc"}, K: 2, SizeThreshold: 10}), pins); a == b {
		t.Errorf("keyword boundary ambiguity: %q", a)
	}
}

func testResults(n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = Result{URL: fmt.Sprintf("http://x/%d", i), Score: float64(n - i)}
	}
	return out
}

// TestResultCacheLRU: capacity is enforced by least-recently-used
// eviction, Get refreshes recency, and an entry larger than a shard's
// whole budget is not stored.
func TestResultCacheLRU(t *testing.T) {
	// One shard's budget is maxBytes/16; size entries so ~2 fit per shard.
	c := NewResultCache(16 * 600)
	pins := []EpochPin{{Shard: 0, Epoch: 1}}
	res := testResults(1) // cost ≈ 64 + 160 + len(url) ≈ 236

	// Find three keys landing in the same shard so eviction is forced.
	shard0 := c.shardFor("probe")
	var keys []string
	for i := 0; len(keys) < 3 && i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == shard0 {
			keys = append(keys, k)
		}
	}
	if len(keys) < 3 {
		t.Fatal("could not find colliding shard keys")
	}

	c.Put(keys[0], pins, res)
	c.Put(keys[1], pins, res)
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("keys[0] missing before capacity")
	}
	// keys[0] is now most recent; inserting keys[2] must evict keys[1].
	c.Put(keys[2], pins, res)
	if _, ok := c.Get(keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Error("fresh entry missing")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("eviction not counted")
	}
	if st.Bytes > st.Capacity {
		t.Errorf("resident %d bytes over capacity %d", st.Bytes, st.Capacity)
	}

	// An entry that alone exceeds the per-shard budget is refused.
	c.Put("huge", pins, testResults(100))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry was stored")
	}
}

// TestResultCacheSingleflight: N concurrent identical misses run the
// search once; the rest share the leader's result.
func TestResultCacheSingleflight(t *testing.T) {
	c := NewResultCache(1 << 20)
	pins := []EpochPin{{Shard: 0, Epoch: 1}}
	res := testResults(2)

	var calls atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})
	fn := func(context.Context) ([]Result, error) {
		calls.Add(1)
		close(started)
		<-gate
		return res, nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	outcomes := make([]CacheOutcome, waiters)
	errs := make([]error, waiters)
	got := make([][]Result, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], outcomes[i], errs[i] = c.Do(context.Background(), "hot", pins, fn)
		}(i)
	}
	<-started // the leader is inside fn; give followers time to queue up
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("search ran %d times, want 1", n)
	}
	miss, shared := 0, 0
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], res) {
			t.Fatalf("waiter %d got %+v", i, got[i])
		}
		switch outcomes[i] {
		case CacheMiss:
			miss++
		case CacheCollapsed, CacheHit:
			shared++
		}
	}
	if miss != 1 || shared != waiters-1 {
		t.Errorf("outcomes: %d miss, %d shared; want 1 and %d", miss, shared, waiters-1)
	}

	// And the result is now cached: a later Do is a plain hit.
	if _, outcome, err := c.Do(context.Background(), "hot", pins, fn); err != nil || outcome != CacheHit {
		t.Errorf("post-flight Do = %v outcome %v, want cached hit", err, outcome)
	}
}

// TestResultCacheLeaderCancellation: a leader failing with its own
// context error does not poison waiters — a follower with a live context
// retries (becoming the next leader) and succeeds.
func TestResultCacheLeaderCancellation(t *testing.T) {
	c := NewResultCache(1 << 20)
	pins := []EpochPin{{Shard: 0, Epoch: 1}}
	res := testResults(1)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFn := make(chan struct{})
	var calls atomic.Int32
	fn := func(ctx context.Context) ([]Result, error) {
		calls.Add(1)
		select {
		case inFn <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
			return res, nil
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(leaderCtx, "k", pins, fn)
	}()
	<-inFn
	// The follower starts while the leader is in flight, then the leader's
	// context is cancelled.
	done := make(chan struct{})
	var followerRes []Result
	var followerErr error
	go func() {
		defer close(done)
		followerRes, _, followerErr = c.Do(context.Background(), "k", pins, fn)
	}()
	time.Sleep(2 * time.Millisecond)
	cancelLeader()
	wg.Wait()
	<-done

	if !errors.Is(leaderErr, context.Canceled) {
		t.Errorf("leader err = %v, want context.Canceled", leaderErr)
	}
	if followerErr != nil {
		t.Fatalf("follower err = %v, want retry success", followerErr)
	}
	if !reflect.DeepEqual(followerRes, res) {
		t.Errorf("follower got %+v", followerRes)
	}
}

// TestResultCacheSweep: entries pinning superseded epochs are reclaimed;
// entries whose pins all match the current vector survive.
func TestResultCacheSweep(t *testing.T) {
	c := NewResultCache(1 << 20)
	res := testResults(1)
	c.Put("fresh", []EpochPin{{Shard: 0, Epoch: 2}, {Shard: 2, Epoch: 5}}, res)
	c.Put("stale", []EpochPin{{Shard: 1, Epoch: 3}}, res)
	c.Put("mixed", []EpochPin{{Shard: 0, Epoch: 2}, {Shard: 1, Epoch: 3}}, res)

	// Current epochs: shard 1 has advanced past 3.
	if n := c.Sweep([]uint64{2, 4, 5}); n != 2 {
		t.Errorf("swept %d entries, want 2", n)
	}
	if _, ok := c.Get("fresh"); !ok {
		t.Error("current-epoch entry swept")
	}
	if _, ok := c.Get("stale"); ok {
		t.Error("superseded entry survived sweep")
	}
	if _, ok := c.Get("mixed"); ok {
		t.Error("partially superseded entry survived sweep")
	}
	if st := c.Stats(); st.Swept != 2 || st.Entries != 1 {
		t.Errorf("stats after sweep: %+v", st)
	}
}

// TestPinEpochs: single-snapshot sets always pin shard 0; sharded sets
// pin exactly the shards where some queried keyword occurs, and a publish
// making a shard newly relevant changes the recomputed pin set (the
// property that keeps sparse keys sound).
func TestPinEpochs(t *testing.T) {
	_, se := fooddbSharded(t, 3)
	snaps := se.Pin()

	kws := normalizeKeywords(nil, []string{"burger"})
	pins := PinEpochs(nil, snaps, kws)
	if len(pins) == 0 {
		t.Fatal("no pins for an indexed keyword")
	}
	for _, p := range pins {
		if snaps[p.Shard].DF("burger") == 0 {
			t.Errorf("pinned shard %d has no postings", p.Shard)
		}
		if p.Epoch != snaps[p.Shard].Epoch() {
			t.Errorf("pin epoch %d != snapshot epoch %d", p.Epoch, snaps[p.Shard].Epoch())
		}
	}
	for si, snap := range snaps {
		if snap.DF("burger") > 0 {
			found := false
			for _, p := range pins {
				if p.Shard == si {
					found = true
				}
			}
			if !found {
				t.Errorf("shard %d holds the keyword but was not pinned", si)
			}
		}
	}

	// A keyword nowhere in the corpus pins nothing.
	if pins := PinEpochs(nil, snaps, []string{"xyzzy-absent"}); len(pins) != 0 {
		t.Errorf("absent keyword pinned %v", pins)
	}

	// Single-snapshot sets skip the DF probe: always [{0, epoch}].
	single := snaps[:1]
	if pins := PinEpochs(nil, single, []string{"xyzzy-absent"}); len(pins) != 1 || pins[0].Shard != 0 || pins[0].Epoch != single[0].Epoch() {
		t.Errorf("single-snapshot pins = %v", pins)
	}
}
