package search

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchResult is one request's outcome within a batch search.
type BatchResult struct {
	Results []Result
	Err     error
}

// clampWorkers resolves a worker-count knob to an effective pool size:
// zero and negative values mean "let the runtime decide" (GOMAXPROCS).
// Every concurrency entry point — ParallelSearch, MultiEngine.Search, the
// ShardedEngine scatter — resolves its knob through this one helper, so
// the <= 0 convention cannot drift between call sites.
func clampWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runPool runs run(0) … run(n-1) over at most `workers` goroutines:
// exactly the classic shared-counter worker pool, extracted once so every
// fan-out in this package (request batches, the federated engine scatter,
// the sharded scatter) keeps identical scheduling and the single-worker
// fast path stays goroutine-free. Callers own per-index cancellation
// checks inside run — the pool itself always drains all n indices.
func runPool(n, workers int, run func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// SearchBatch evaluates a batch of requests concurrently with a
// runtime-chosen worker count — the Searcher-contract form of
// ParallelSearch. out[i] answers reqs[i]; the whole batch is pinned to one
// snapshot.
func (e *Engine) SearchBatch(ctx context.Context, reqs []Request) []BatchResult {
	return e.ParallelSearch(ctx, reqs, 0)
}

// ParallelSearch evaluates N requests over at most `workers` goroutines
// sharing this engine (workers <= 0 means GOMAXPROCS). Results come back
// positionally — out[i] answers reqs[i] — and each slot is exactly what a
// serial e.Search(ctx, reqs[i]) would have returned, since the engine's
// read path is race-free and every worker borrows its own pooled scratch.
//
// The whole batch is pinned to one snapshot, resolved once up front: even
// with a writer publishing new index versions mid-batch, every request
// observes the same index state, as if the batch had run serially at the
// moment the call was made.
//
// Cancelling ctx abandons the requests still queued: in-flight searches
// stop at their next cooperative check, and every slot that had not
// completed carries ctx.Err(). An already-cancelled ctx touches no
// snapshot and marks every slot.
//
// This is the batch serving primitive: cmd/dashserve answers multi-query
// requests through it, and cmd/dashbench's parallel experiment measures
// its throughput scaling.
func (e *Engine) ParallelSearch(ctx context.Context, reqs []Request, workers int) []BatchResult {
	ctx = orBackground(ctx)
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	snap := e.src.Snapshot()
	runPool(len(reqs), clampWorkers(workers), func(i int) {
		if err := ctx.Err(); err != nil {
			out[i].Err = err // abandoned: queued behind the cancellation
			return
		}
		out[i].Results, out[i].Err = e.SearchSnapshot(ctx, snap, reqs[i])
	})
	return out
}
