package search

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchResult is one request's outcome within a ParallelSearch batch.
type BatchResult struct {
	Results []Result
	Err     error
}

// clampWorkers resolves a worker-count knob to an effective pool size:
// zero and negative values mean "let the runtime decide" (GOMAXPROCS).
// Every concurrency entry point — ParallelSearch, MultiEngine.Search, the
// ShardedEngine scatter — resolves its knob through this one helper, so
// the <= 0 convention cannot drift between call sites.
func clampWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ParallelSearch evaluates N requests over at most `workers` goroutines
// sharing this engine (workers <= 0 means GOMAXPROCS). Results come back
// positionally — out[i] answers reqs[i] — and each slot is exactly what a
// serial e.Search(reqs[i]) would have returned, since the engine's read
// path is race-free and every worker borrows its own pooled scratch.
//
// The whole batch is pinned to one snapshot, resolved once up front: even
// with a writer publishing new index versions mid-batch, every request
// observes the same index state, as if the batch had run serially at the
// moment the call was made.
//
// This is the batch serving primitive: cmd/dashserve answers multi-query
// requests through it, and cmd/dashbench's parallel experiment measures
// its throughput scaling.
func (e *Engine) ParallelSearch(reqs []Request, workers int) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	snap := e.src.Snapshot()
	workers = clampWorkers(workers)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers == 1 {
		for i := range reqs {
			out[i].Results, out[i].Err = e.SearchSnapshot(snap, reqs[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				out[i].Results, out[i].Err = e.SearchSnapshot(snap, reqs[i])
			}
		}()
	}
	wg.Wait()
	return out
}
