package search

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// stressQueries is a mixed workload over the fooddb fixture: different
// keywords, k, s, and option combinations, so concurrent searches exercise
// every scratch-reuse path.
func stressQueries() []Request {
	return []Request{
		{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20},
		{Keywords: []string{"burger"}, K: 10, SizeThreshold: 1},
		{Keywords: []string{"burger", "fries", "coffee"}, K: 10, SizeThreshold: 15},
		{Keywords: []string{"burger", "fries"}, K: 1, SizeThreshold: 1},
		{Keywords: []string{"burger"}, K: 5, SizeThreshold: 10000},
		{Keywords: []string{"coffee"}, K: 3, SizeThreshold: 30, AllowOverlap: true},
		{Keywords: []string{"burger", "fries"}, K: 4, SizeThreshold: 25, RequireAll: true},
		{Keywords: []string{"thai"}, K: 2, SizeThreshold: 50, CandidateLimit: 2},
		{Keywords: []string{"zanzibar"}, K: 3, SizeThreshold: 10},
	}
}

// TestConcurrentSearchStress hammers one shared Engine from 32 goroutines
// (run under -race in CI): every goroutine must see exactly the serial
// answer for every query, and the pooled scratch state must never leak
// between concurrent searches.
func TestConcurrentSearchStress(t *testing.T) {
	e := fooddbEngine(t)
	queries := stressQueries()

	// Serial ground truth, computed before any concurrency.
	want := make([][]Result, len(queries))
	for i, q := range queries {
		rs, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		want[i] = rs
	}

	const goroutines = 32
	const iters = 50
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(queries)
				rs, err := e.Search(context.Background(), queries[i])
				if err != nil {
					errc <- fmt.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				if !reflect.DeepEqual(rs, want[i]) {
					errc <- fmt.Errorf("goroutine %d query %d: results diverged from serial", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentMultiEngineStress drives the federated engine's concurrent
// fan-out from 32 goroutines and checks the deterministic merge: every
// call returns exactly the same result list.
func TestConcurrentMultiEngineStress(t *testing.T) {
	m := NewMulti(fooddbEngine(t), fooddbEngine(t))
	req := Request{Keywords: []string{"burger"}, K: 10, SizeThreshold: 1}
	want, err := m.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				rs, err := m.Search(context.Background(), req)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(rs, want) {
					errc <- fmt.Errorf("goroutine %d: nondeterministic merge", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestParallelSearchMatchesSerial: the batch API returns positionally what
// serial Search returns, at every worker count.
func TestParallelSearchMatchesSerial(t *testing.T) {
	e := fooddbEngine(t)
	queries := stressQueries()
	want := make([][]Result, len(queries))
	for i, q := range queries {
		rs, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rs
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		batch := e.ParallelSearch(context.Background(), queries, workers)
		if len(batch) != len(queries) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(batch), len(queries))
		}
		for i, br := range batch {
			if br.Err != nil {
				t.Fatalf("workers=%d request %d: %v", workers, i, br.Err)
			}
			if !reflect.DeepEqual(br.Results, want[i]) {
				t.Errorf("workers=%d request %d diverged from serial", workers, i)
			}
		}
	}
	if got := e.ParallelSearch(context.Background(), nil, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	// Request errors surface per slot, not as a batch failure.
	batch := e.ParallelSearch(context.Background(), []Request{{Keywords: []string{"burger"}, K: 0}}, 2)
	if batch[0].Err == nil {
		t.Error("bad request did not surface its error")
	}
}

// TestSearchAllocsRegression pins the steady-state allocation budget of the
// scoring core. The seed implementation spent ~90 allocs on this query;
// the pooled-arena core must stay under half that. The budget has slack
// over the measured value (~20: per-result URL formulation plus the
// returned slice) so GC-driven pool evictions don't flake the test.
func TestSearchAllocsRegression(t *testing.T) {
	e := fooddbEngine(t)
	req := Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20}
	// Warm the scratch pool.
	if _, err := e.Search(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// Measure with a real cancellable context — the serving path always
	// carries one — so the cooperative ctx polling is part of what the
	// budget pins.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.Search(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 45 // seed: ~90 allocs for this query
	if avg > budget {
		t.Errorf("Search allocates %.1f/op, budget %d", avg, budget)
	}
}
