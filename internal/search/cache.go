package search

// Epoch-keyed result caching (the Mitos-style results cache in front of
// the query evaluator). Heavy traffic is skewed: the same hot queries
// arrive over and over while the snapshot epoch rarely moves, yet every
// one re-runs the full seeding + expansion loop. ResultCache memoizes
// finished result lists keyed by (canonical Request, pinned epoch vector):
//
//   - The request half of the key is NormalizeRequest's canonical form, so
//     "Coffee burger" and "burger coffee" share one entry.
//   - The epoch half is the per-shard epoch vector of the shards the query
//     actually touches, captured from the pinned snapshot set at lookup
//     time. Epoch-swap publishes make invalidation free: a publish bumps
//     the shard's epoch, every later lookup computes a key containing the
//     new epoch, and the stale entry simply can never be hit again. A
//     publish that makes a previously irrelevant shard relevant (a delta
//     inserting a queried keyword there) changes the *active set* the
//     lookup computes, which changes the key the same way — entries are
//     never explicitly invalidated, and no lookup can observe a
//     pre-publish result under a post-publish epoch.
//   - Stale entries are reclaimed by capacity eviction (sharded bounded
//     LRU) plus an explicit post-publish Sweep that drops every entry
//     pinning a superseded epoch.
//
// Singleflight rides on top: N concurrent identical misses run the
// expansion loop once and share the one result (Do), so a thundering herd
// on a hot query costs one search, not N.
//
// Cached result slices are shared between callers and MUST be treated as
// immutable — exactly like the snapshots they were computed from.

import (
	"context"
	"hash/maphash"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fragindex"
)

// NormalizeRequest returns req in its canonical form: keywords
// lower-cased, field-split, deduplicated, and sorted (the engine's own
// normalization — see normalizeKeywords), and any negative CandidateLimit
// folded to 0 (the engine treats every non-positive limit as "read full
// posting lists", so the two spellings are one request). The engine
// normalizes keywords identically on every search, so a normalized
// request returns byte-identical results to its raw form — which is what
// lets the result cache key equal-meaning requests to one entry. Callers
// that apply a handle-level default CandidateLimit must fold it in
// *before* normalizing, since normalization erases the "explicitly
// unlimited" negative spelling a default would otherwise overwrite.
func NormalizeRequest(req Request) Request {
	req.Keywords = normalizeKeywords(make([]string, 0, len(req.Keywords)), req.Keywords)
	if req.CandidateLimit < 0 {
		req.CandidateLimit = 0
	}
	// MinEpoch is a routing directive, not query semantics: by the time a
	// request reaches an engine the placement decision has been made, and
	// the cache key's epoch pins already guarantee a hit is at least as
	// fresh as the view that admitted the request.
	req.MinEpoch = 0
	return req
}

// EpochPin records that a query's pinned view included one shard at one
// epoch. The pin vector of a request is the cache key's epoch half and
// what Sweep checks entries against.
type EpochPin struct {
	Shard int
	Epoch uint64
}

// CacheKey builds the cache key for a normalized request and its pinned
// epoch vector. req must already be in NormalizeRequest's canonical form;
// pins must be in ascending shard order (PinEpochs produces them so).
// Distinct requests, and the same request over different pinned epochs,
// map to distinct keys.
func CacheKey(req Request, pins []EpochPin) string {
	var b strings.Builder
	n := 0
	for _, w := range req.Keywords {
		n += len(w) + 1
	}
	b.Grow(n + 16*len(pins) + 32)
	for _, w := range req.Keywords {
		b.WriteString(w)
		b.WriteByte(0)
	}
	b.WriteByte(1)
	b.WriteString(strconv.Itoa(req.K))
	b.WriteByte(1)
	b.WriteString(strconv.Itoa(req.SizeThreshold))
	b.WriteByte(1)
	limit := req.CandidateLimit
	if limit < 0 {
		limit = 0
	}
	b.WriteString(strconv.Itoa(limit))
	b.WriteByte(1)
	if req.AllowOverlap {
		b.WriteByte('O')
	}
	if req.RequireAll {
		b.WriteByte('A')
	}
	b.WriteByte(1)
	for _, p := range pins {
		b.WriteString(strconv.Itoa(p.Shard))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(p.Epoch, 10))
		b.WriteByte(',')
	}
	return b.String()
}

// CacheOutcome classifies how one Do call was answered.
type CacheOutcome int

const (
	// CacheMiss: this call ran the search itself.
	CacheMiss CacheOutcome = iota
	// CacheHit: answered from a stored entry, no search ran.
	CacheHit
	// CacheCollapsed: answered by sharing a concurrent identical call's
	// in-flight search (singleflight) — a hit at the HTTP surface, counted
	// separately so the collapse rate is observable.
	CacheCollapsed
)

// CacheStats is the counter snapshot a ResultCache reports (surfaced
// through the unified EngineStats and /v1/admin/stats).
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Collapsed uint64 `json:"collapsed"`
	Evictions uint64 `json:"evictions"`
	Swept     uint64 `json:"swept"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Capacity  int64  `json:"capacity_bytes"`
}

// cacheEntry is one stored result list on its shard's LRU list.
type cacheEntry struct {
	key        string
	res        []Result
	pins       []EpochPin
	cost       int64
	prev, next *cacheEntry // LRU links; head = most recently used
}

// cacheShard is one lock domain of the cache: a map plus an intrusive
// LRU list, bounded by its slice of the byte budget.
type cacheShard struct {
	mu         sync.Mutex
	max        int64
	bytes      int64
	entries    map[string]*cacheEntry
	head, tail *cacheEntry
}

// numCacheShards spreads hot-key lock traffic; 16 keeps contention
// negligible at any realistic core count while the per-shard byte budget
// stays coarse enough to hold whole result lists.
const numCacheShards = 16

// ResultCache is a sharded, bounded, epoch-keyed LRU result cache with a
// singleflight layer (Do). Safe for concurrent use.
type ResultCache struct {
	shards   [numCacheShards]cacheShard
	seed     maphash.Seed
	capacity int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	collapsed atomic.Uint64
	evictions atomic.Uint64
	swept     atomic.Uint64

	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// flightCall is one in-flight search other identical requests wait on.
type flightCall struct {
	done chan struct{}
	res  []Result
	err  error
}

// NewResultCache creates a cache bounded to roughly maxBytes of stored
// results (estimated — see entryCost). maxBytes <= 0 returns nil, the
// "no cache" sentinel every method tolerates.
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		return nil
	}
	c := &ResultCache{
		seed:     maphash.MakeSeed(),
		capacity: maxBytes,
		flight:   make(map[string]*flightCall),
	}
	per := maxBytes / numCacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].max = per
		c.shards[i].entries = make(map[string]*cacheEntry)
	}
	return c
}

func (c *ResultCache) shardFor(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%numCacheShards]
}

// Get returns the entry stored under key, if any, marking it most
// recently used. The returned slice is shared: callers must not mutate it.
func (c *ResultCache) Get(key string) ([]Result, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		sh.moveToFront(e)
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.res, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores res under key, evicting least-recently-used entries to stay
// within the shard's byte budget. An entry larger than the whole budget
// is simply not stored.
func (c *ResultCache) Put(key string, pins []EpochPin, res []Result) {
	cost := entryCost(key, res)
	sh := c.shardFor(key)
	if cost > sh.max {
		return
	}
	sh.mu.Lock()
	if old, ok := sh.entries[key]; ok {
		sh.remove(old)
	}
	e := &cacheEntry{key: key, res: res, pins: pins, cost: cost}
	sh.entries[key] = e
	sh.pushFront(e)
	sh.bytes += cost
	evicted := 0
	for sh.bytes > sh.max && sh.tail != nil && sh.tail != e {
		victim := sh.tail
		sh.remove(victim)
		delete(sh.entries, victim.key)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Do answers one request through the cache: a stored entry is a hit; a
// miss runs fn exactly once across all concurrent identical misses
// (singleflight) and stores a successful result under key. fn runs with
// the caller's ctx; a waiter whose own ctx expires stops waiting with
// ctx.Err(). A leader failure caused by the leader's *own* context does
// not poison waiters — they retry (and typically become the next leader)
// because their contexts may still be live. The returned slice is shared
// and must not be mutated.
func (c *ResultCache) Do(ctx context.Context, key string, pins []EpochPin, fn func(context.Context) ([]Result, error)) ([]Result, CacheOutcome, error) {
	for {
		if res, ok := c.Get(key); ok {
			return res, CacheHit, nil
		}
		c.flightMu.Lock()
		if fc, ok := c.flight[key]; ok {
			c.flightMu.Unlock()
			select {
			case <-fc.done:
			case <-ctx.Done():
				return nil, CacheMiss, ctx.Err()
			}
			if fc.err == nil {
				c.collapsed.Add(1)
				return fc.res, CacheCollapsed, nil
			}
			if fc.err == context.Canceled || fc.err == context.DeadlineExceeded {
				// The leader's own deadline or client fired, not ours:
				// retry under our (still live) context.
				if ctx.Err() != nil {
					return nil, CacheMiss, ctx.Err()
				}
				continue
			}
			// A genuine engine failure is the same for every caller of
			// this key (validation, index invariant): share it.
			return nil, CacheMiss, fc.err
		}
		fc := &flightCall{done: make(chan struct{})}
		c.flight[key] = fc
		c.flightMu.Unlock()

		fc.res, fc.err = fn(ctx)
		c.flightMu.Lock()
		delete(c.flight, key)
		c.flightMu.Unlock()
		if fc.err == nil {
			c.Put(key, pins, fc.res)
		}
		close(fc.done)
		return fc.res, CacheMiss, fc.err
	}
}

// Sweep removes every entry pinning a superseded epoch: current[i] is
// shard i's serving epoch, and an entry survives only if each of its pins
// still matches. Run after a publish — such entries' keys can never be
// produced by a lookup again, so this is pure capacity hygiene, not a
// correctness requirement. Returns how many entries were dropped.
func (c *ResultCache) Sweep(current []uint64) int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			for _, p := range e.pins {
				if p.Shard < len(current) && p.Epoch != current[p.Shard] {
					sh.remove(e)
					delete(sh.entries, e.key)
					total++
					break
				}
			}
		}
		sh.mu.Unlock()
	}
	if total > 0 {
		c.swept.Add(uint64(total))
	}
	return total
}

// Stats snapshots the cache's counters and occupancy.
func (c *ResultCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Evictions: c.evictions.Load(),
		Swept:     c.swept.Load(),
		Capacity:  c.capacity,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// moveToFront, pushFront, remove: the intrusive LRU list. Callers hold
// sh.mu.
func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// remove unlinks e and releases its cost (the map delete is the
// caller's, which knows the key).
func (sh *cacheShard) remove(e *cacheEntry) {
	sh.unlink(e)
	sh.bytes -= e.cost
}

// entryCost estimates an entry's resident bytes: the key, the fixed
// Result struct, its strings, the fragment slice, and a flat allowance
// per equality value. An estimate is all the budget needs — the point is
// that N cached pages cost O(N × page), not that the sum matches the
// allocator byte for byte.
func entryCost(key string, res []Result) int64 {
	cost := int64(len(key)) + 64
	for i := range res {
		r := &res[i]
		cost += 160 // struct, slice headers, map header
		cost += int64(len(r.URL) + len(r.QueryString) + len(r.EqKey))
		cost += int64(4 * len(r.Fragments))
		cost += int64(48 * len(r.EqValues))
	}
	return cost
}

// PinEpochs computes the epoch half of a request's cache key from its
// pinned snapshot set: the pin vector holds, in ascending shard order,
// every shard where at least one queried keyword occurs (DF > 0) — the
// shards whose content the result can depend on. keywords must be the
// normalized set the search will run with. Recomputing the active set at
// every lookup is what makes sparse pinning sound: a publish that makes
// a previously irrelevant shard relevant changes the set this computes,
// hence the key. With a single snapshot the vector is always
// [{0, epoch}] — the DF probe buys nothing when there is nothing to
// skip. dst is reused (append semantics) so steady-state lookups don't
// allocate.
func PinEpochs(dst []EpochPin, snaps []*fragindex.Snapshot, keywords []string) []EpochPin {
	dst = dst[:0]
	if len(snaps) == 1 {
		return append(dst, EpochPin{Shard: 0, Epoch: snaps[0].Epoch()})
	}
	for si, snap := range snaps {
		for _, w := range keywords {
			if snap.DF(w) > 0 {
				dst = append(dst, EpochPin{Shard: si, Epoch: snap.Epoch()})
				break
			}
		}
	}
	return dst
}
