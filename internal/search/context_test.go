package search

// Cancellation semantics of the context-first serving API: pre-cancelled
// contexts fail fast without touching a snapshot, mid-search
// cancellations are observed within the cooperative-check bound, batch
// and scatter fan-outs abandon queued work, and a -race stress mixes
// cancelled searchers with a publishing writer.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crawl"
	"repro/internal/fragindex"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// countingSource wraps a Source and counts snapshot resolutions, so tests
// can assert a failed-fast search never touched the index.
type countingSource struct {
	src  Source
	hits atomic.Int64
}

func (c *countingSource) Snapshot() *fragindex.Snapshot {
	c.hits.Add(1)
	return c.src.Snapshot()
}

// errAfter is a context whose Err() starts failing after a fixed number
// of polls — a deterministic stand-in for "the deadline fires mid-search"
// that lets the test count exactly how far the search ran past it.
type errAfter struct {
	context.Context
	remaining atomic.Int64
	calls     atomic.Int64
}

var errDeadline = errors.New("search test: simulated deadline")

func newErrAfter(polls int64) *errAfter {
	ea := &errAfter{Context: context.Background()}
	ea.remaining.Store(polls)
	return ea
}

func (ea *errAfter) Err() error {
	ea.calls.Add(1)
	if ea.remaining.Add(-1) < 0 {
		return errDeadline
	}
	return nil
}

// TestSearchPreCancelledTouchesNothing: a Search whose ctx is already
// cancelled returns ctx.Err() before the snapshot is even resolved.
func TestSearchPreCancelledTouchesNothing(t *testing.T) {
	e := fooddbEngine(t)
	src := &countingSource{src: e.Source()}
	counted := New(src, e.App())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := counted.Search(ctx, Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Errorf("cancelled search returned results: %v", rs)
	}
	if n := src.hits.Load(); n != 0 {
		t.Errorf("cancelled search resolved %d snapshots, want 0", n)
	}
}

// bigExpansionEngine builds a single-group corpus whose search pops the
// heap far more than ctxCheckInterval times: many relevant fragments in
// one long chain, a huge K, and a size threshold that keeps every page
// expanding for many steps.
func bigExpansionEngine(t *testing.T, members int) (*Engine, Request) {
	t.Helper()
	idx, err := fragindex.New(fragindex.Spec{
		SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < members; i++ {
		id := fragment.ID{relation.String("g"), relation.Int(int64(i))}
		if _, err := idx.InsertFragment(id, map[string]int64{"kw": 1}, 2); err != nil {
			t.Fatal(err)
		}
	}
	req := Request{Keywords: []string{"kw"}, K: members, SizeThreshold: members, AllowOverlap: true}
	return New(idx, nil), req
}

// TestSearchCooperativeCancellationBound: a cancellation that fires
// mid-assembly stops the search within ctxCheckInterval heap pops — the
// loop polls Err() once per interval, so after the poll that first fails
// the search must return without another poll's worth of work.
func TestSearchCooperativeCancellationBound(t *testing.T) {
	e, req := bigExpansionEngine(t, 600)

	// Sanity: uncancelled, the same query succeeds and polls the ctx many
	// times (i.e. the workload really crosses the check interval).
	okCtx := newErrAfter(1 << 30)
	if _, err := e.Search(okCtx, req); err != nil {
		t.Fatal(err)
	}
	polls := okCtx.calls.Load()
	if polls < 5 {
		t.Fatalf("workload too small: only %d ctx polls", polls)
	}

	// Let a few polls succeed, then fail: the search must surface exactly
	// the fake deadline, and quickly — one more poll after the first
	// failing one would mean the loop ignored it.
	ea := newErrAfter(3)
	_, err := e.Search(ea, req)
	if !errors.Is(err, errDeadline) {
		t.Fatalf("err = %v, want the simulated deadline", err)
	}
	if calls := ea.calls.Load(); calls != 4 {
		t.Errorf("search polled ctx %d times after arming at 3, want exactly 4 (stop at first failure)", calls)
	}
}

// TestSearchDeadlineMidExpansion drives the real context machinery: a
// deadline short enough to fire mid-assembly returns DeadlineExceeded
// (not a partial result) once the workload is large enough to cross it.
func TestSearchDeadlineMidExpansion(t *testing.T) {
	e, req := bigExpansionEngine(t, 2000)
	for attempt := 0; attempt < 20; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
		_, err := e.Search(ctx, req)
		cancel()
		if err == nil {
			continue // the box was fast enough this round; try again
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		return
	}
	t.Skip("search never outlived a 50µs deadline on this machine")
}

// TestParallelSearchCancelledAbandonsQueue: a pre-cancelled batch marks
// every slot with ctx.Err() and resolves no snapshot.
func TestParallelSearchCancelledAbandonsQueue(t *testing.T) {
	e := fooddbEngine(t)
	src := &countingSource{src: e.Source()}
	counted := New(src, e.App())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20}
	}
	for _, br := range counted.ParallelSearch(ctx, reqs, 4) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("slot err = %v, want context.Canceled", br.Err)
		}
		if br.Results != nil {
			t.Fatalf("cancelled slot carries results")
		}
	}
	if n := src.hits.Load(); n != 0 {
		t.Errorf("cancelled batch resolved %d snapshots, want 0", n)
	}
}

// TestShardedSearchCancelled: the scatter-gather front door fails fast on
// a pre-cancelled ctx and returns the caller's own error unwrapped.
func TestShardedSearchCancelled(t *testing.T) {
	_, sharded := fooddbSharded(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sharded.Search(ctx, Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search err = %v, want context.Canceled", err)
	}
	snaps := sharded.Pin()
	if _, err := sharded.SearchPinned(ctx, snaps, Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchPinned err = %v, want context.Canceled", err)
	}
	for _, br := range sharded.ParallelSearch(ctx, make([]Request, 4), 2) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("batch slot err = %v, want context.Canceled", br.Err)
		}
	}
}

// TestMultiEngineCancelled: the federated fan-out fails fast too.
func TestMultiEngineCancelled(t *testing.T) {
	m := NewMulti(fooddbEngine(t), fooddbEngine(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Search(ctx, Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search err = %v, want context.Canceled", err)
	}
	for _, br := range m.SearchBatch(ctx, make([]Request, 3)) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("batch slot err = %v, want context.Canceled", br.Err)
		}
	}
}

// TestNilContextTolerated: a nil ctx degrades to Background everywhere
// instead of panicking deep in the loop.
func TestNilContextTolerated(t *testing.T) {
	e := fooddbEngine(t)
	//lint:ignore SA1012 the API boundary explicitly tolerates nil
	rs, err := e.Search(nil, Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20})
	if err != nil || len(rs) != 2 {
		t.Fatalf("nil-ctx search = %d results, err %v", len(rs), err)
	}
}

// TestLiveApplyCancelled: a cancelled maintenance ctx publishes nothing —
// pre-cancelled fails before the fold, and a cancellation arriving
// between changes rolls the builder back to the published snapshot.
func TestLiveApplyCancelled(t *testing.T) {
	_, live := fooddbLiveEngine(t)
	before := live.Snapshot()
	beforeStats := live.Stats()

	change := func(i int) crawl.FragmentChange {
		return crawl.FragmentChange{
			Op:         crawl.OpInsertFragment,
			ID:         fragment.ID{relation.String("Nordic"), relation.Int(int64(i))},
			TermCounts: map[string]int64{"herring": 1}, TotalTerms: 1,
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := live.Apply(ctx, crawl.Delta{Changes: []crawl.FragmentChange{change(0)}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Apply err = %v", err)
	}

	// Mid-apply: allow the entry checks and the first change, then fail.
	// Apply polls at entry (2 checks: Apply + applyLocked's per-change),
	// so arm the fake ctx to fail partway through a 64-change delta.
	ea := newErrAfter(10)
	var changes []crawl.FragmentChange
	for i := 0; i < 64; i++ {
		changes = append(changes, change(i))
	}
	if _, err := live.Apply(ea, crawl.Delta{Changes: changes}); !errors.Is(err, errDeadline) {
		t.Fatalf("mid-apply cancellation err = %v", err)
	}

	if live.Snapshot() != before {
		t.Fatal("cancelled applies published a snapshot")
	}
	if got := live.Stats(); got != beforeStats {
		t.Errorf("cancelled applies moved stats: %+v -> %+v", beforeStats, got)
	}
	// The rollback left the builder consistent: the same delta applies
	// cleanly afterwards.
	if _, err := live.Apply(context.Background(), crawl.Delta{Changes: changes}); err != nil {
		t.Fatalf("apply after rollback: %v", err)
	}
	if !live.Snapshot().Has(fragment.ID{relation.String("Nordic"), relation.Int(63)}) {
		t.Error("post-rollback apply not visible")
	}

	// A pre-cancelled Flush must not drain the queue: the buffered deltas
	// survive for a later Flush instead of being silently dropped.
	live.Queue(crawl.Delta{Changes: []crawl.FragmentChange{{
		Op: crawl.OpRemoveFragment,
		ID: fragment.ID{relation.String("Nordic"), relation.Int(63)},
	}}})
	if _, err := live.Flush(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Flush err = %v", err)
	}
	if n := live.Pending(); n != 1 {
		t.Fatalf("pre-cancelled Flush drained the queue: %d pending, want 1", n)
	}
	if _, err := live.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after cancellation: %v", err)
	}
	if live.Snapshot().Has(fragment.ID{relation.String("Nordic"), relation.Int(63)}) {
		t.Error("queued removal was lost")
	}
}

// TestCancelStressUnderPublishes is the -race stress for the new ctx
// plumbing: 16 searcher goroutines run with aggressively short deadlines
// (and random hard cancels) while a writer keeps publishing snapshots and
// compacting. Every outcome must be a clean result or a context error —
// never a torn read, never a panic.
func TestCancelStressUnderPublishes(t *testing.T) {
	eng, live := fooddbLiveEngine(t)

	const (
		searchers = 16
		perG      = 200
	)
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		cancelled atomic.Int64
	)
	writerStop := make(chan struct{})

	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				// A third of the searches get an effectively unbounded
				// budget (they must complete), the rest an aggressive one
				// that often fires mid-search.
				budget := time.Duration(r.Intn(200)) * time.Microsecond
				if i%3 == 0 {
					budget = time.Minute
				}
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				if i%3 != 0 && r.Intn(4) == 0 {
					cancel() // hard cancel before the search even starts
				}
				_, err := eng.Search(ctx, Request{
					Keywords: []string{"burger"}, K: 2, SizeThreshold: 20,
				})
				cancel()
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					cancelled.Add(1)
				default:
					panic(fmt.Sprintf("searcher %d: unexpected error %v", g, err))
				}
			}
		}(g)
	}

	// The writer publishes until every searcher is done.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		id := fragment.ID{relation.String("American"), relation.Int(10)}
		for i := 0; ; i++ {
			select {
			case <-writerStop:
				return
			default:
			}
			d := crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: crawl.OpUpdateFragment, ID: id,
				TermCounts: map[string]int64{"burger": int64(1 + i%5)}, TotalTerms: int64(1 + i%5),
			}}}
			if _, err := live.Apply(context.Background(), d); err != nil {
				panic(err)
			}
			if i%50 == 49 {
				if _, err := live.CompactIfNeeded(context.Background(), 0.5); err != nil {
					panic(err)
				}
			}
		}
	}()
	wg.Wait()
	close(writerStop)
	<-writerDone
	if completed.Load() == 0 {
		t.Error("no search ever completed under the stress deadlines")
	}
	t.Logf("completed %d searches, %d cancelled, %d publishes",
		completed.Load(), cancelled.Load(), live.Stats().Publishes)
}
