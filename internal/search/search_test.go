package search

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fooddb"
	"repro/internal/fragindex"
	"repro/internal/relation"
	"repro/internal/webapp"
)

// fooddbEngine wires the full stack: analyze servlet → crawl → index →
// engine.
func fooddbEngine(t *testing.T) *Engine {
	t.Helper()
	db := fooddb.New()
	app, err := webapp.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	bound, err := app.Bound()
	if err != nil {
		t.Fatal(err)
	}
	out, err := crawl.Reference(db, bound)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	spec, err := fragindex.SpecFromBound(bound)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fragindex.Build(out, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return New(idx, app)
}

// TestExample7 reproduces the paper's top-k walk-through: keyword "burger",
// k=2, s=20 yields the merged page (American,(10,12)) and the single
// fragment page (Thai,10), with exactly the URLs of Example 7.
func TestExample7(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	urls := []string{results[0].URL, results[1].URL}
	sort.Strings(urls)
	want := []string{
		"http://www.example.com/Search?c=American&l=10&u=12",
		"http://www.example.com/Search?c=Thai&l=10&u=10",
	}
	if urls[0] != want[0] || urls[1] != want[1] {
		t.Errorf("urls = %v, want %v", urls, want)
	}

	// Scores match the example's arithmetic: merged page TF = 3/25,
	// Thai page TF = 1/10, both scaled by IDF(burger) = 1/3.
	for _, r := range results {
		switch r.URL {
		case want[0]:
			if math.Abs(r.Score-(3.0/25.0)/3.0) > 1e-12 {
				t.Errorf("merged page score = %v, want %v", r.Score, (3.0/25.0)/3.0)
			}
			if r.Size != 25 || len(r.Fragments) != 2 {
				t.Errorf("merged page size = %d frags = %d", r.Size, len(r.Fragments))
			}
			if !r.RangeLo.Equal(relation.Int(10)) || !r.RangeHi.Equal(relation.Int(12)) {
				t.Errorf("merged range = [%v,%v]", r.RangeLo, r.RangeHi)
			}
		case want[1]:
			if math.Abs(r.Score-(1.0/10.0)/3.0) > 1e-12 {
				t.Errorf("thai score = %v, want %v", r.Score, (1.0/10.0)/3.0)
			}
		}
	}
	// Results are score-descending: merged page (0.04) above Thai (0.0333).
	if results[0].Score < results[1].Score {
		t.Error("results not sorted by score")
	}
}

// TestExpansionPrefersRelevantNeighbor: from (American,10), expansion picks
// relevant (American,12) over irrelevant (American,9).
func TestExpansionPrefersRelevantNeighbor(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 1, SizeThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	r := results[0]
	if !r.RangeLo.Equal(relation.Int(10)) || !r.RangeHi.Equal(relation.Int(12)) {
		t.Errorf("expansion went to [%v,%v], want [10,12]", r.RangeLo, r.RangeHi)
	}
}

// TestSmallThresholdNoExpansion: with s=1, every relevant fragment is
// returned as its own page.
func TestSmallThresholdNoExpansion(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 10, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 single-fragment pages", len(results))
	}
	for _, r := range results {
		if len(r.Fragments) != 1 {
			t.Errorf("page %s has %d fragments, want 1", r.URL, len(r.Fragments))
		}
		if !r.RangeLo.Equal(r.RangeHi) {
			t.Errorf("single page range [%v,%v]", r.RangeLo, r.RangeHi)
		}
	}
	// Best single page is (American,10) with TF 2/8.
	if results[0].QueryString != "c=American&l=10&u=10" {
		t.Errorf("top page = %s", results[0].QueryString)
	}
}

// TestLargeThresholdMergesWholeGroup: with a huge s, the American group
// merges completely (9..18) and Thai merges its single fragment.
func TestLargeThresholdMergesWholeGroup(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 5, SizeThreshold: 10000})
	if err != nil {
		t.Fatal(err)
	}
	var gotAmerican bool
	for _, r := range results {
		if r.EqValues["cuisine"].Equal(relation.String("American")) {
			gotAmerican = true
			if !r.RangeLo.Equal(relation.Int(9)) || !r.RangeHi.Equal(relation.Int(18)) {
				t.Errorf("american page range [%v,%v], want [9,18]", r.RangeLo, r.RangeHi)
			}
			if r.Size != 8+8+17+8 {
				t.Errorf("american page size = %d, want 41", r.Size)
			}
		}
	}
	if !gotAmerican {
		t.Error("no American page returned")
	}
}

// TestOverlapExclusion: with overlap exclusion (default), the same fragment
// never appears in two results; with AllowOverlap, it may.
func TestOverlapExclusion(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{Keywords: []string{"burger", "fries", "coffee"}, K: 10, SizeThreshold: 15})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[fragindex.FragRef]bool)
	for _, r := range results {
		for _, f := range r.Fragments {
			if seen[f] {
				t.Fatalf("fragment %d in two results", f)
			}
			seen[f] = true
		}
	}
}

func TestMultipleKeywords(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{Keywords: []string{"burger", "fries"}, K: 1, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	// Candidates: (American,10) scores (2/8)(1/3) ≈ 0.0833 on burger
	// alone; (American,12) scores (1/17)(1/3) + (1/17)(1/1) ≈ 0.0784
	// on both keywords. The denser burger fragment wins.
	want := (2.0 / 8.0) * (1.0 / 3.0)
	if math.Abs(results[0].Score-want) > 1e-12 {
		t.Errorf("score = %v, want %v", results[0].Score, want)
	}
	if results[0].QueryString != "c=American&l=10&u=10" {
		t.Errorf("top = %s", results[0].QueryString)
	}
}

func TestNoMatches(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{Keywords: []string{"zanzibar"}, K: 3, SizeThreshold: 10})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(results) != 0 {
		t.Errorf("results = %v, want none", results)
	}
}

func TestRequestValidation(t *testing.T) {
	e := fooddbEngine(t)
	if _, err := e.Search(context.Background(), Request{K: 3, SizeThreshold: 1}); !errors.Is(err, ErrNoKeywords) {
		t.Errorf("no keywords err = %v", err)
	}
	if _, err := e.Search(context.Background(), Request{Keywords: []string{" "}, K: 3}); !errors.Is(err, ErrNoKeywords) {
		t.Errorf("blank keywords err = %v", err)
	}
	if _, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
}

func TestKeywordNormalization(t *testing.T) {
	e := fooddbEngine(t)
	a, err := e.Search(context.Background(), Request{Keywords: []string{"BURGER"}, K: 2, SizeThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Search(context.Background(), Request{Keywords: []string{" burger  burger "}, K: 2, SizeThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0].URL != b[0].URL || a[0].Score != b[0].Score {
		t.Errorf("case/duplicate normalization changed results: %v vs %v", a, b)
	}
}

// TestPropScoresMonotoneNonIncreasing: for any keyword present in the index
// and any k/s, returned scores are achievable and sorted descending, every
// page's keyword occurrences are consistent with its score, and every page
// is a contiguous interval in one group.
func TestPropScoresMonotoneNonIncreasing(t *testing.T) {
	e := fooddbEngine(t)
	kws := e.Index().Keywords()
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		kw := kws[r.Intn(len(kws))]
		k := 1 + r.Intn(4)
		s := 1 + r.Intn(50)
		results, err := e.Search(context.Background(), Request{Keywords: []string{kw}, K: k, SizeThreshold: s})
		if err != nil {
			t.Fatalf("Search(%q,k=%d,s=%d): %v", kw, k, s, err)
		}
		if len(results) > k {
			t.Fatalf("too many results: %d > %d", len(results), k)
		}
		for i, res := range results {
			if i > 0 && res.Score > results[i-1].Score+1e-12 {
				t.Fatalf("scores not descending for %q: %v then %v",
					kw, results[i-1].Score, res.Score)
			}
			if res.Size <= 0 {
				t.Fatalf("page size = %d", res.Size)
			}
			// Recompute the score from the index.
			var occ, size int64
			for _, f := range res.Fragments {
				meta, err := e.Index().Meta(f)
				if err != nil {
					t.Fatal(err)
				}
				size += meta.Terms
				for _, p := range e.Index().Postings(kw) {
					if p.Frag == f {
						occ += p.TF
					}
				}
			}
			want := float64(occ) / float64(size) / float64(e.Index().DF(kw))
			if math.Abs(res.Score-want) > 1e-9 {
				t.Fatalf("%q page score = %v, recomputed %v", kw, res.Score, want)
			}
		}
	}
}

// TestSearchAfterIndexUpdate exercises the future-work update path end to
// end: update a fragment and search again.
func TestSearchAfterIndexUpdate(t *testing.T) {
	e := fooddbEngine(t)
	ten, ok := e.Index().Lookup(mustID(t, e, "(American,10)"))
	if !ok {
		t.Fatal("missing (American,10)")
	}
	meta, _ := e.Index().Meta(ten)
	// The burger comments were deleted: fragment shrinks to 4 terms.
	err := e.Index().UpdateFragment(meta.ID, map[string]int64{
		"burger": 1, "queen": 1, "10": 1, "4.3": 1,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 3, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	// s=1: three single-fragment pages; the updated fragment now scores
	// 1/4 × 1/3 and stays on top.
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	if results[0].QueryString != "c=American&l=10&u=10" {
		t.Errorf("top = %s", results[0].QueryString)
	}
	if math.Abs(results[0].Score-(1.0/4.0)/3.0) > 1e-12 {
		t.Errorf("top score = %v", results[0].Score)
	}
}

// mustID finds a fragment ID by display name.
func mustID(t *testing.T, e *Engine, name string) (id []relation.Value) {
	t.Helper()
	for i := 0; ; i++ {
		meta, err := e.Index().Meta(fragindex.FragRef(i))
		if err != nil {
			t.Fatalf("fragment %s not found", name)
		}
		if meta.Alive && meta.ID.String() == name {
			return meta.ID
		}
	}
}

// TestMultiEngineDeduplicates: two applications over fooddb with the same
// selection attributes produce content-duplicate pages; the multi engine
// keeps one.
func TestMultiEngineDeduplicates(t *testing.T) {
	e1 := fooddbEngine(t)

	// A second application: same query shape, different projections/URL.
	db := fooddb.New()
	src := `
public class Listing extends HttpServlet {
  public void doGet(HttpServletRequest q, HttpServletResponse p) {
    String cuisine = q.getParameter("cui");
    String lo = q.getParameter("from");
    String hi = q.getParameter("to");
    Query = "SELECT name, comment FROM (restaurant LEFT JOIN comment) LEFT JOIN customer " +
        "WHERE (cuisine = '" + cuisine + "') AND (budget BETWEEN " + lo + " AND " + hi + ")";
    output(p, cn.createStatement().executeQuery(Query));
  }
}`
	app2, err := webapp.Analyze(src, "http://www.example.com/Listing")
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := app2.Bind(db); err != nil {
		t.Fatal(err)
	}
	bound2, _ := app2.Bound()
	out2, err := crawl.Reference(db, bound2)
	if err != nil {
		t.Fatal(err)
	}
	spec2, _ := fragindex.SpecFromBound(bound2)
	idx2, err := fragindex.Build(out2, spec2)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(idx2, app2)

	m := NewMulti(e1, e2)
	if len(m.Engines()) != 2 {
		t.Fatal("engines not registered")
	}
	results, err := m.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 10, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Without dedup each app returns 3 pages for "burger"; identical
	// (cuisine, budget-interval) compositions collapse.
	sigs := make(map[string]int)
	for _, r := range results {
		sigs[r.EqValues["cuisine"].Text()+r.RangeLo.Text()+r.RangeHi.Text()]++
	}
	for sig, n := range sigs {
		if n > 1 {
			t.Errorf("content %s appears %d times", sig, n)
		}
	}
	if len(results) != 3 {
		t.Errorf("deduped results = %d, want 3", len(results))
	}
}
