package search

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/fragindex"
	"repro/internal/webapp"
)

// ShardedEngine answers top-k searches over a partitioned serving index
// (fragindex.ShardedLiveIndex). A query pins one snapshot per shard (one
// atomic load each), scatters the existing zero-allocation scoring core
// across the shards on a bounded worker pool, and gather-merges the
// per-shard top-k lists into a global top-k.
//
// # Global IDF
//
// Dash's relevance uses IDF ≈ 1/DF over fragments. A shard only sees its
// own fragments, so per-shard DF would skew scores by shard layout. The
// engine therefore aggregates DF across the pinned shard snapshots at
// query seeding — DF_global(w) = Σ_shard DF_shard(w), an O(keywords ×
// shards) prefix per query — and passes 1/DF_global into every shard's
// scoring run. This makes sharded scores byte-identical to a single-index
// engine over the same corpus (the alternative, a periodically merged
// global stats table, would amortize the prefix but serve stale IDF
// between refreshes; exactness was chosen and is what the equivalence
// property tests pin down).
//
// # Determinism and single-index equivalence
//
// Equality groups never straddle shards (fragindex routing), so every
// db-page is assembled wholly inside one shard, its score is the exact
// float sequence a single-index run computes (same occurrence vectors,
// same global IDF), and the shard-local overlap/dedup decisions match a
// single-index run's. Per-shard result lists arrive in the canonical
// content-based order (compareResults — which the in-engine priority queue
// tie-break mirrors), and the merge re-sorts their concatenation with the
// same order. Consequently a sharded search is byte-identical to a
// single-index search — scores, order, parameter boxes — at S = 1 always,
// and at any S whenever K does not truncate the result stream.
//
// When K does truncate, the two sides cut differently by design:
// Algorithm 1's emission is greedy (an expansion can absorb a denser
// neighbour and raise a page's score, so the first K pages emitted are
// not always the K best), and the scatter-gather sees each shard's first
// K before ranking while a single index stops after K pages globally. The
// merged result is never worse: every returned page still carries the
// byte-exact single-index score, and the merge ranks over at least as
// many emitted pages. Request.CandidateLimit is similarly per-shard: it
// bounds postings read per keyword per shard, so a truncated sharded
// search may seed a different candidate set than a truncated single-index
// search.
//
// A ShardedEngine is safe for concurrent use by any number of goroutines.
type ShardedEngine struct {
	live    *fragindex.ShardedLiveIndex
	engines []*Engine
	app     *webapp.Application
	scratch sync.Pool // *shardedScratch
	// MaxFanout bounds how many shards one Search scatters over
	// concurrently (<= 0 means GOMAXPROCS). Set it before serving
	// traffic; it is not synchronized with in-flight searches.
	MaxFanout int
}

// shardedScratch pools the scatter bookkeeping one sharded query needs, so
// at S=1 the scatter adds no steady-state allocations over a single-index
// Search (only the returned results allocate, as in Engine).
type shardedScratch struct {
	kws    []string
	idf    []float64
	active []int
	per    [][]Result
	errs   []error
}

func (s *shardedScratch) reset() {
	s.kws = s.kws[:0]
	s.idf = s.idf[:0]
	s.active = s.active[:0]
	s.per = s.per[:0]
	s.errs = s.errs[:0]
}

// release drops the per-shard result and error references before the
// scratch returns to the pool, so an idle pooled scratch never pins the
// last query's pages (the caller's returned slice is unaffected — only
// the scratch's pointers to it are cleared).
func (s *shardedScratch) release() {
	clear(s.per)
	clear(s.errs)
}

// NewSharded creates a scatter-gather engine over a sharded live index.
// app may be nil when URL formulation is not needed.
func NewSharded(live *fragindex.ShardedLiveIndex, app *webapp.Application) *ShardedEngine {
	se := &ShardedEngine{live: live, app: app}
	se.scratch.New = func() any { return new(shardedScratch) }
	se.engines = make([]*Engine, live.NumShards())
	for i := range se.engines {
		se.engines[i] = New(live.Shard(i), app)
	}
	return se
}

// Live returns the underlying sharded index.
func (se *ShardedEngine) Live() *fragindex.ShardedLiveIndex { return se.live }

// App returns the engine's application (may be nil).
func (se *ShardedEngine) App() *webapp.Application { return se.app }

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.engines) }

// Pin resolves the current snapshot of every shard — the read view one
// query (or one batch) runs against. Each snapshot is immutable, so a
// caller may hold the pinned set across calls for repeatable reads while
// the shards publish newer versions.
func (se *ShardedEngine) Pin() []*fragindex.Snapshot { return se.live.PinAll() }

// Search pins every shard's current snapshot and runs the request against
// the pinned set (see SearchPinned). An already-cancelled ctx returns
// ctx.Err() without pinning.
func (se *ShardedEngine) Search(ctx context.Context, req Request) ([]Result, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return se.SearchPinned(ctx, se.Pin(), req)
}

// SearchPinned runs one request against an explicitly pinned shard
// snapshot set (from Pin): seeds global IDF over the set, scatters the
// scoring core across shards on the worker pool, and merges the per-shard
// top-k lists into the canonical global top-k. A cancelled ctx abandons
// the shards still queued — in-flight shard runs stop at their next
// cooperative check — and the call returns ctx.Err().
func (se *ShardedEngine) SearchPinned(ctx context.Context, snaps []*fragindex.Snapshot, req Request) ([]Result, error) {
	return se.searchPinned(orBackground(ctx), snaps, req, clampWorkers(se.MaxFanout))
}

func (se *ShardedEngine) searchPinned(ctx context.Context, snaps []*fragindex.Snapshot, req Request, workers int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(snaps) != len(se.engines) {
		return nil, fmt.Errorf("search: pinned %d snapshots for %d shards", len(snaps), len(se.engines))
	}
	s := se.scratch.Get().(*shardedScratch)
	defer func() {
		s.release()
		se.scratch.Put(s)
	}()
	s.reset()

	s.kws = normalizeKeywords(s.kws, req.Keywords)
	kws := s.kws
	if len(kws) == 0 {
		return nil, ErrNoKeywords
	}
	if req.K <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, req.K)
	}
	// Global DF, summed over the pinned set; the per-shard runs score with
	// 1/DF_global instead of their shard-local IDF. The same pass finds the
	// shards worth scattering to: a shard where every queried keyword has
	// zero DF can only return an empty list, so it is skipped outright —
	// a cold keyword's query touches one shard, not all S.
	idf := s.idf
	if cap(idf) < len(kws) {
		idf = make([]float64, len(kws))
	} else {
		idf = idf[:len(kws)]
		clear(idf)
	}
	s.idf = idf
	for si, snap := range snaps {
		relevant := false
		for i, w := range kws {
			df := snap.DF(w)
			if df > 0 {
				idf[i] += float64(df)
				relevant = true
			}
		}
		if relevant {
			s.active = append(s.active, si)
		}
	}
	active := s.active
	for i, df := range idf {
		if df > 0 {
			idf[i] = 1 / df
		}
	}
	// Hand the shards the already-normalized keywords: normalization is
	// idempotent (a canonical — deduped, sorted — list normalizes to
	// itself), so each shard's scratch aligns with the idf slice.
	req.Keywords = kws

	n := len(active)
	per := s.per
	if cap(per) < n {
		per = make([][]Result, n)
	} else {
		per = per[:n] // entries were cleared by release before pooling
	}
	s.per = per
	errs := s.errs
	if cap(errs) < n {
		errs = make([]error, n)
	} else {
		errs = errs[:n]
	}
	s.errs = errs
	runPool(n, workers, func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err // abandoned: this shard was queued behind the cancellation
			return
		}
		si := active[i]
		per[i], errs[i] = se.engines[si].searchSnapshot(ctx, snaps[si], req, idf)
	})
	for i, err := range errs {
		if err != nil {
			// A cancellation is the caller's own signal, not a shard
			// failure — return it unwrapped so errors.Is works directly.
			if err == context.Canceled || err == context.DeadlineExceeded || err == ctx.Err() {
				return nil, err
			}
			return nil, fmt.Errorf("search: shard %d: %w", active[i], err)
		}
	}
	// Gather. One active shard — every S=1 query, and any-S queries whose
	// keywords live on one shard — needs no merge at all: its list is
	// already canonically ordered and freshly allocated, so hand it back
	// truncated. Otherwise sort the concatenation with the same total
	// order the per-shard lists arrived in, which merges deterministically
	// (at most K results per shard survive, so this is O(S·K log(S·K)) on
	// tiny inputs, not a hot-path cost).
	if n == 1 {
		out := per[0]
		if len(out) > req.K {
			out = out[:req.K:req.K]
		}
		return out, nil
	}
	var all []Result
	for _, rs := range per {
		all = append(all, rs...)
	}
	sortResults(all)
	if len(all) > req.K {
		all = all[:req.K:req.K]
	}
	return all, nil
}

// SearchBatch evaluates a batch of requests concurrently with a
// runtime-chosen worker count — the Searcher-contract form of
// ParallelSearch. out[i] answers reqs[i]; the whole batch is pinned to one
// shard snapshot set.
func (se *ShardedEngine) SearchBatch(ctx context.Context, reqs []Request) []BatchResult {
	return se.ParallelSearch(ctx, reqs, 0)
}

// ParallelSearch evaluates N requests over at most `workers` goroutines
// (workers <= 0 means GOMAXPROCS). The whole batch is pinned to one shard
// snapshot set, so every request observes the same index state; out[i]
// answers reqs[i] exactly as a serial Search would have. Parallelism comes
// from the batch — each request's scatter runs sequentially inside its
// worker, which keeps the goroutine count bounded by `workers` and the
// merge deterministic. Cancelling ctx abandons queued requests; abandoned
// slots carry ctx.Err().
func (se *ShardedEngine) ParallelSearch(ctx context.Context, reqs []Request, workers int) []BatchResult {
	ctx = orBackground(ctx)
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	snaps := se.Pin()
	runPool(len(reqs), clampWorkers(workers), func(i int) {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			return
		}
		out[i].Results, out[i].Err = se.searchPinned(ctx, snaps, reqs[i], 1)
	})
	return out
}
