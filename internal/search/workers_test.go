package search

import (
	"context"
	"runtime"
	"testing"
)

// TestClampWorkers: the one shared helper behind every worker-count knob —
// zero and negatives resolve to GOMAXPROCS, positives pass through. The
// regression this pins: ParallelSearch, MultiEngine.Search, and the
// ShardedEngine scatter/batch paths all route through clampWorkers, so a
// <= 0 knob can never reach a pool-size computation as "no workers".
func TestClampWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ in, want int }{
		{0, procs}, {-1, procs}, {-100, procs}, {1, 1}, {3, 3}, {procs + 7, procs + 7},
	} {
		if got := clampWorkers(tc.in); got != tc.want {
			t.Errorf("clampWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestParallelSearchNegativeWorkers: a negative worker knob behaves like
// the GOMAXPROCS default end to end and returns correct results.
func TestParallelSearchNegativeWorkers(t *testing.T) {
	e := fooddbEngine(t)
	reqs := []Request{
		{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20},
		{Keywords: []string{"coffee"}, K: 3, SizeThreshold: 10},
	}
	want := e.ParallelSearch(context.Background(), reqs, 1)
	for _, workers := range []int{0, -5} {
		got := e.ParallelSearch(context.Background(), reqs, workers)
		for i := range want {
			if got[i].Err != nil || want[i].Err != nil {
				t.Fatalf("workers=%d: errs %v %v", workers, got[i].Err, want[i].Err)
			}
			if len(got[i].Results) != len(want[i].Results) {
				t.Fatalf("workers=%d req %d: %d vs %d results",
					workers, i, len(got[i].Results), len(want[i].Results))
			}
			for j := range want[i].Results {
				if got[i].Results[j].URL != want[i].Results[j].URL ||
					got[i].Results[j].Score != want[i].Results[j].Score {
					t.Errorf("workers=%d req %d result %d differs", workers, i, j)
				}
			}
		}
	}
}

// TestMultiEngineNegativeFanout: MultiEngine shares the same clamp.
func TestMultiEngineNegativeFanout(t *testing.T) {
	m := NewMulti(fooddbEngine(t), fooddbEngine(t))
	m.MaxFanout = -3
	results, err := m.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 5, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results through negative fanout")
	}
}
