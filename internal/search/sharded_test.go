package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fooddb"
	"repro/internal/fragindex"
	"repro/internal/fragment"
	"repro/internal/relation"
	"repro/internal/webapp"
)

// corpusSpec is the synthetic shape used by the equivalence tests: groups
// keyed by one equality attribute, members ordered by a range attribute.
var corpusSpec = fragindex.Spec{SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v"}

// corpusChange is one insert in the deterministic build sequence (and the
// unit random maintenance deltas are made of).
type corpusChange struct {
	id     fragment.ID
	counts map[string]int64
	total  int64
}

// corpusVocab is the closed keyword vocabulary random corpora draw from;
// small enough that queries hit crowded posting lists with score ties.
var corpusVocab = []string{"ale", "bun", "cod", "dip", "egg", "fig", "gin", "ham"}

// randomCorpus generates fragments in identifier order (ascending group,
// ascending range value) — the same arrival order fragindex.Build and the
// sharded partition pass use, so single and sharded builds assign refs in
// the same relative order.
func randomCorpus(r *rand.Rand, groups, maxMembers int) []corpusChange {
	var out []corpusChange
	for g := 0; g < groups; g++ {
		members := 1 + r.Intn(maxMembers)
		for v := 0; v < members; v++ {
			counts := make(map[string]int64)
			var total int64
			for _, kw := range corpusVocab {
				if r.Intn(3) == 0 {
					tf := int64(1 + r.Intn(3))
					counts[kw] = tf
					total += tf
				}
			}
			total += int64(1 + r.Intn(6)) // keywords outside the query vocabulary
			out = append(out, corpusChange{
				id:     fragment.ID{relation.String(fmt.Sprintf("g%03d", g)), relation.Int(int64(v))},
				counts: counts,
				total:  total,
			})
		}
	}
	return out
}

func buildFrom(t testing.TB, changes []corpusChange) *fragindex.Index {
	t.Helper()
	idx, err := fragindex.New(corpusSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range changes {
		if _, err := idx.InsertFragment(ch.id, ch.counts, ch.total); err != nil {
			t.Fatal(err)
		}
	}
	return idx
}

// resultKey flattens the content identity of one result for comparison.
func resultKey(r Result) string {
	return fmt.Sprintf("eq=%v range=[%s,%s] score=%v size=%d frags=%d",
		r.EqValues, r.RangeLo.Text(), r.RangeHi.Text(), r.Score, r.Size, len(r.Fragments))
}

// diffResults reports the first difference between two result lists
// (scores compared exactly — the sharded path must reproduce the single
// index's float operations bit for bit).
func diffResults(single, sharded []Result) string {
	if len(single) != len(sharded) {
		return fmt.Sprintf("len %d vs %d", len(single), len(sharded))
	}
	for i := range single {
		if resultKey(single[i]) != resultKey(sharded[i]) {
			return fmt.Sprintf("result %d:\n  single  %s\n  sharded %s",
				i, resultKey(single[i]), resultKey(sharded[i]))
		}
	}
	return ""
}

// TestShardedEquivalenceProperty pins the documented equivalence contract
// down over random corpora, random maintenance deltas, and random requests
// (CandidateLimit 0, the knob documented as per-shard):
//
//   - At S = 1, and at any S when K does not truncate (exhaustK covers
//     every possible page), sharded results are byte-identical to the
//     single-index engine: scores, order, parameter boxes.
//   - At S ∈ {3, 8} with a truncating K, every sharded result must appear
//     in the exhaustive single-index list with a byte-identical score
//     (per-shard assembly computes the exact single-index floats), the
//     list stays canonically ordered, and the count matches
//     min(K, total): per-shard greedy cutoffs may pick a different — never
//     smaller — page set than the single engine's greedy cutoff, which is
//     the documented divergence.
//
// The corpus generator keeps range values unique within a group, so the
// canonical content order is total over distinct pages.
func TestShardedEquivalenceProperty(t *testing.T) {
	const exhaustK = 100000
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		changes := randomCorpus(r, 12+r.Intn(20), 6)
		single := New(fragindex.NewLive(buildFrom(t, changes)), nil)
		shardCounts := []int{1, 3, 8}
		var shardeds []*ShardedEngine
		for _, s := range shardCounts {
			live, err := fragindex.NewShardedLive(buildFrom(t, changes), s)
			if err != nil {
				t.Fatal(err)
			}
			shardeds = append(shardeds, NewSharded(live, nil))
		}

		step := func(round int) {
			for q := 0; q < 20; q++ {
				nk := 1 + r.Intn(3)
				kws := make([]string, nk)
				for i := range kws {
					kws[i] = corpusVocab[r.Intn(len(corpusVocab))]
				}
				req := Request{
					Keywords:      kws,
					K:             exhaustK,
					SizeThreshold: 1 + r.Intn(40),
					AllowOverlap:  r.Intn(2) == 0,
					RequireAll:    r.Intn(4) == 0,
				}
				exhaustive, err := single.Search(context.Background(), req)
				if err != nil {
					t.Fatalf("trial %d round %d: single: %v", trial, round, err)
				}
				// Non-truncating K: byte-identical at every shard count.
				for i, se := range shardeds {
					got, err := se.Search(context.Background(), req)
					if err != nil {
						t.Fatalf("trial %d round %d: shards=%d: %v", trial, round, shardCounts[i], err)
					}
					if d := diffResults(exhaustive, got); d != "" {
						t.Fatalf("trial %d round %d req %+v: shards=%d diverges: %s",
							trial, round, req, shardCounts[i], d)
					}
				}
				// Truncating K: S=1 stays byte-identical to the single
				// engine; S>1 returns min(K, total) canonically ordered
				// pages drawn from the exhaustive list with exact scores.
				small := req
				small.K = 1 + r.Intn(6)
				want, err := single.Search(context.Background(), small)
				if err != nil {
					t.Fatal(err)
				}
				inExhaustive := make(map[string]bool, len(exhaustive))
				for _, res := range exhaustive {
					inExhaustive[resultKey(res)] = true
				}
				for i, se := range shardeds {
					got, err := se.Search(context.Background(), small)
					if err != nil {
						t.Fatal(err)
					}
					if shardCounts[i] == 1 {
						if d := diffResults(want, got); d != "" {
							t.Fatalf("trial %d round %d req %+v: shards=1 diverges: %s",
								trial, round, small, d)
						}
						continue
					}
					wantLen := min(small.K, len(exhaustive))
					if len(got) != wantLen {
						t.Fatalf("trial %d round %d req %+v shards=%d: %d results, want %d",
							trial, round, small, shardCounts[i], len(got), wantLen)
					}
					for j, res := range got {
						if !inExhaustive[resultKey(res)] {
							t.Fatalf("trial %d round %d req %+v shards=%d: result %d (%s) not in exhaustive list",
								trial, round, small, shardCounts[i], j, resultKey(res))
						}
						if j > 0 && compareResults(&got[j-1], &got[j]) > 0 {
							t.Fatalf("trial %d round %d shards=%d: results out of canonical order at %d",
								trial, round, shardCounts[i], j)
						}
					}
				}
			}
		}

		step(0)

		// Random maintenance: updates of existing fragments, removals, and
		// inserts of fresh range values, applied identically to every
		// engine, then re-checked.
		live := changes
		for round := 1; round <= 2; round++ {
			var ds []crawl.Delta
			for n := 0; n < 10 && len(live) > 4; n++ {
				switch r.Intn(3) {
				case 0: // update
					at := r.Intn(len(live))
					fresh := randomCorpus(r, 1, 1)[0]
					live[at].counts, live[at].total = fresh.counts, fresh.total
					ds = append(ds, crawl.Delta{Changes: []crawl.FragmentChange{{
						Op: crawl.OpUpdateFragment, ID: live[at].id,
						TermCounts: live[at].counts, TotalTerms: live[at].total,
					}}})
				case 1: // remove
					at := r.Intn(len(live))
					ds = append(ds, crawl.Delta{Changes: []crawl.FragmentChange{{
						Op: crawl.OpRemoveFragment, ID: live[at].id,
					}}})
					live = append(live[:at], live[at+1:]...)
				default: // insert into a fresh group so ids never collide
					fresh := randomCorpus(r, 1, 1)[0]
					fresh.id = fragment.ID{
						relation.String(fmt.Sprintf("n%03d_%d", trial, round*100+n)),
						relation.Int(0),
					}
					live = append(live, fresh)
					ds = append(ds, crawl.Delta{Changes: []crawl.FragmentChange{{
						Op: crawl.OpInsertFragment, ID: fresh.id,
						TermCounts: fresh.counts, TotalTerms: fresh.total,
					}}})
				}
			}
			if _, err := single.Source().(*fragindex.LiveIndex).ApplyBatch(context.Background(), ds); err != nil {
				t.Fatalf("trial %d: single apply: %v", trial, err)
			}
			for _, se := range shardeds {
				if _, err := se.Live().ApplyBatch(context.Background(), ds); err != nil {
					t.Fatalf("trial %d: shards=%d apply: %v", trial, se.NumShards(), err)
				}
			}
			step(round)
		}
	}
}

// fooddbSharded builds single and sharded fooddb engines with the URL
// formulation bound, so equivalence covers the full Result surface.
func fooddbSharded(t *testing.T, shards int) (*Engine, *ShardedEngine) {
	t.Helper()
	build := func() (*fragindex.Index, *webapp.Application) {
		db := fooddb.New()
		app, err := webapp.Analyze(fooddb.ServletSource, fooddb.BaseURL)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Bind(db); err != nil {
			t.Fatal(err)
		}
		bound, err := app.Bound()
		if err != nil {
			t.Fatal(err)
		}
		out, err := crawl.Reference(db, bound)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := fragindex.SpecFromBound(bound)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := fragindex.Build(out, spec)
		if err != nil {
			t.Fatal(err)
		}
		return idx, app
	}
	idx1, app1 := build()
	idx2, app2 := build()
	live, err := fragindex.NewShardedLive(idx2, shards)
	if err != nil {
		t.Fatal(err)
	}
	return New(idx1, app1), NewSharded(live, app2)
}

// TestShardedFooddbMatchesSingle: the running example, URLs included,
// comes back identical through a 2-shard scatter-gather — and Example 7's
// concrete scores survive sharding (global IDF, not per-shard IDF).
func TestShardedFooddbMatchesSingle(t *testing.T) {
	single, sharded := fooddbSharded(t, 2)
	for _, req := range []Request{
		{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20},
		{Keywords: []string{"burger", "fries", "coffee"}, K: 10, SizeThreshold: 15},
		{Keywords: []string{"burger", "fries"}, K: 10, SizeThreshold: 1, RequireAll: true},
		{Keywords: []string{"zanzibar"}, K: 3, SizeThreshold: 10},
	} {
		want, err := single.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("req %+v: %d vs %d results", req, len(want), len(got))
		}
		for i := range want {
			if want[i].URL != got[i].URL || want[i].Score != got[i].Score || want[i].Size != got[i].Size {
				t.Errorf("req %+v result %d: single %s %v, sharded %s %v",
					req, i, want[i].URL, want[i].Score, got[i].URL, got[i].Score)
			}
		}
	}

	// Example 7's arithmetic: the merged American page scores
	// (3/25)·IDF(burger) with IDF = 1/3 over the whole corpus, no matter
	// how the three burger fragments split across shards.
	results, err := sharded.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 2, SizeThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if math.Abs(results[0].Score-(3.0/25.0)/3.0) > 1e-12 {
		t.Errorf("top score = %v, want %v", results[0].Score, (3.0/25.0)/3.0)
	}
}

// TestShardedGlobalIDF pins the DF aggregation down directly: a keyword
// whose fragments land on different shards must be scored with 1/DF_global
// — per-shard IDF (1/DF_shard) would inflate every score.
func TestShardedGlobalIDF(t *testing.T) {
	// 9 single-member groups sharing keyword "w"; any 3-shard routing
	// splits them somehow, and every split must yield IDF = 1/9.
	var changes []corpusChange
	for g := 0; g < 9; g++ {
		changes = append(changes, corpusChange{
			id:     fragment.ID{relation.String(fmt.Sprintf("g%03d", g)), relation.Int(0)},
			counts: map[string]int64{"w": 1},
			total:  2,
		})
	}
	live, err := fragindex.NewShardedLive(buildFrom(t, changes), 3)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSharded(live, nil)
	results, err := se.Search(context.Background(), Request{Keywords: []string{"w"}, K: 9, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("results = %d, want 9", len(results))
	}
	want := (1.0 / 2.0) * (1.0 / 9.0)
	for _, r := range results {
		if math.Abs(r.Score-want) > 1e-15 {
			t.Fatalf("score = %v, want %v (global IDF 1/9)", r.Score, want)
		}
	}
}

// TestShardedValidation: the scatter-gather front door enforces the same
// request contract as Engine.
func TestShardedValidation(t *testing.T) {
	live, err := fragindex.NewShardedLive(buildFrom(t, randomCorpus(rand.New(rand.NewSource(1)), 4, 3)), 2)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSharded(live, nil)
	if _, err := se.Search(context.Background(), Request{K: 3, SizeThreshold: 1}); !errors.Is(err, ErrNoKeywords) {
		t.Errorf("no keywords err = %v", err)
	}
	if _, err := se.Search(context.Background(), Request{Keywords: []string{"ale"}, K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := se.SearchPinned(context.Background(), se.Pin()[:1], Request{Keywords: []string{"ale"}, K: 1, SizeThreshold: 1}); err == nil {
		t.Error("short pinned set accepted")
	}
}

// TestShardedParallelSearchMatchesSearch: batch evaluation is positionally
// identical to serial evaluation, at every worker count.
func TestShardedParallelSearchMatchesSearch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	live, err := fragindex.NewShardedLive(buildFrom(t, randomCorpus(r, 20, 5)), 4)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSharded(live, nil)
	var reqs []Request
	for _, kw := range corpusVocab {
		reqs = append(reqs, Request{Keywords: []string{kw}, K: 5, SizeThreshold: 20})
	}
	var want [][]Result
	for _, req := range reqs {
		rs, err := se.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rs)
	}
	for _, workers := range []int{-1, 1, 3, 16} {
		for i, br := range se.ParallelSearch(context.Background(), reqs, workers) {
			if br.Err != nil {
				t.Fatalf("workers=%d req %d: %v", workers, i, br.Err)
			}
			if d := diffResults(want[i], br.Results); d != "" {
				t.Fatalf("workers=%d req %d diverges: %s", workers, i, d)
			}
		}
	}
}
