package search

import (
	"repro/internal/durable"
	"repro/internal/fragindex"
	"repro/internal/replic"
)

// Topology names reported by Stats — which serving shape answered.
const (
	TopologyStatic  = "static"  // a plain Engine over a built or pinned index
	TopologyLive    = "live"    // an Engine over a LiveIndex (epoch-swap serving)
	TopologySharded = "sharded" // a ShardedEngine scatter-gathering over shards
	TopologyMulti   = "multi"   // a MultiEngine federating applications
)

// Stats is the one serving-stats report every topology answers — the
// Searcher contract's Stats() shape. Fields that only one topology can
// fill stay at their zero value elsewhere: a static engine has no
// maintenance history, a multi engine no tombstones of its own. Counters
// are sums across shards (Keywords counts posting lists, so a keyword
// spanning k shards contributes k); MaxEpoch is the highest per-shard
// epoch, since shards advance independently.
type Stats struct {
	Topology       string  `json:"topology"`
	Shards         int     `json:"shards"`
	Engines        int     `json:"engines,omitempty"` // multi: federated applications
	Fragments      int     `json:"fragments"`
	Keywords       int     `json:"keywords"`
	TombstonedRefs int     `json:"tombstoned_refs"`
	AvgTerms       float64 `json:"avg_terms_per_fragment"`
	MaxEpoch       uint64  `json:"max_epoch"`
	DeltasApplied  uint64  `json:"deltas_applied"`
	Publishes      uint64  `json:"publishes"`
	Queued         int     `json:"queued_deltas"`
	Inserted       uint64  `json:"fragments_inserted"`
	Removed        uint64  `json:"fragments_removed"`
	Updated        uint64  `json:"fragments_updated"`
	Compactions    uint64  `json:"compactions"`
	// PerShard carries each shard's own serving stats (epoch, pending
	// queue, publish counters) in shard order; nil for unsharded
	// topologies.
	PerShard []fragindex.LiveStats `json:"per_shard,omitempty"`
	// Cache and Admission report the serving-layer result cache and
	// admission controller when the handle was opened with them
	// (dash.WithResultCache / WithAdmissionControl); nil otherwise.
	Cache     *CacheStats     `json:"cache,omitempty"`
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Durability reports the durable store's journal/checkpoint counters
	// and health state for handles opened with dash.WithDataDir; nil for
	// purely in-memory topologies.
	Durability *durable.Stats `json:"durability,omitempty"`
	// Replication reports a replica handle's tail state (applied epochs,
	// lag, sever/reconnect counters); nil on leaders and standalone
	// handles.
	Replication *replic.Stats `json:"replication,omitempty"`
	// Replicas reports a routing leader's per-replica placement state
	// (dash.WithReplicas); nil elsewhere.
	Replicas *replic.RouterStats `json:"replicas,omitempty"`
}

// statsFromLive maps a LiveIndex report onto the unified shape.
func statsFromLive(topology string, ls fragindex.LiveStats) Stats {
	return Stats{
		Topology:       topology,
		Shards:         1,
		Fragments:      ls.Fragments,
		Keywords:       ls.Keywords,
		TombstonedRefs: ls.TombstonedRefs,
		AvgTerms:       ls.AvgTerms,
		MaxEpoch:       ls.Epoch,
		DeltasApplied:  ls.DeltasApplied,
		Publishes:      ls.Publishes,
		Queued:         ls.Queued,
		Inserted:       ls.Inserted,
		Removed:        ls.Removed,
		Updated:        ls.Updated,
		Compactions:    ls.Compactions,
	}
}

// Stats summarizes the engine's serving index in the unified shape. For a
// LiveIndex source that is the full maintenance history; for a built or
// pinned index it describes the snapshot the next Search would pin.
func (e *Engine) Stats() Stats {
	if live, ok := e.src.(*fragindex.LiveIndex); ok {
		return statsFromLive(TopologyLive, live.Stats())
	}
	snap := e.src.Snapshot()
	return Stats{
		Topology:       TopologyStatic,
		Shards:         1,
		Fragments:      snap.NumFragments(),
		Keywords:       snap.NumKeywords(),
		TombstonedRefs: snap.NumRefs() - snap.NumFragments(),
		AvgTerms:       snap.AvgTermsPerFragment(),
		MaxEpoch:       snap.Epoch(),
	}
}

// Stats aggregates the per-shard serving statistics in the unified shape.
func (se *ShardedEngine) Stats() Stats {
	ss := se.live.Stats()
	return Stats{
		Topology:       TopologySharded,
		Shards:         ss.Shards,
		Fragments:      ss.Fragments,
		Keywords:       ss.KeywordLists,
		TombstonedRefs: ss.TombstonedRefs,
		AvgTerms:       ss.AvgTerms,
		MaxEpoch:       ss.MaxEpoch,
		DeltasApplied:  ss.DeltasApplied,
		Publishes:      ss.Publishes,
		Queued:         ss.Queued,
		Inserted:       ss.Inserted,
		Removed:        ss.Removed,
		Updated:        ss.Updated,
		Compactions:    ss.Compactions,
		PerShard:       ss.PerShard,
	}
}

// Stats sums the federated engines' reports: fragment and keyword counts
// add up (applications index disjoint fragment spaces), MaxEpoch is the
// highest across engines, and AvgTerms is the fragment-weighted mean.
func (m *MultiEngine) Stats() Stats {
	out := Stats{Topology: TopologyMulti, Engines: len(m.engines)}
	var terms float64
	for _, e := range m.engines {
		st := e.Stats()
		out.Shards += st.Shards
		out.Fragments += st.Fragments
		out.Keywords += st.Keywords
		out.TombstonedRefs += st.TombstonedRefs
		terms += st.AvgTerms * float64(st.Fragments)
		if st.MaxEpoch > out.MaxEpoch {
			out.MaxEpoch = st.MaxEpoch
		}
		out.DeltasApplied += st.DeltasApplied
		out.Publishes += st.Publishes
		out.Queued += st.Queued
		out.Inserted += st.Inserted
		out.Removed += st.Removed
		out.Updated += st.Updated
		out.Compactions += st.Compactions
	}
	if out.Fragments > 0 {
		out.AvgTerms = terms / float64(out.Fragments)
	}
	return out
}
