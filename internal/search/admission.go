package search

// Deadline-aware admission control (the policy behind dash.Open's
// WithAdmissionControl). Under overload, queueing a search that cannot
// finish inside its deadline wastes the engine's time twice: the doomed
// search holds a worker until the deadline fires, and the work it did is
// thrown away. The controller sheds instead: a request is rejected with
// ErrOverloaded — cheaply, before any pinning or seeding — when either
//
//   - the process-wide in-flight cap is reached (capacity shedding), or
//   - the request's remaining deadline budget is below the estimated cost
//     of one uncached search (budget shedding) — it would time out anyway,
//     so fail it in microseconds and let the client retry against a
//     less-loaded moment.
//
// The cost estimate is an EWMA of observed uncached search latencies,
// floored by MinBudget so a cold or idly-fast estimator doesn't admit
// requests with effectively no budget. Shed requests never touch the
// search path, which is what keeps rejected-request latency flat (the
// "fail fast" half of the overload criterion) while admitted requests
// keep the whole engine to themselves.

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports that admission control shed the search — the
// engine is at capacity or the request's deadline budget cannot cover an
// expected search. The caller should retry later (the HTTP layer maps
// this to 503 + Retry-After).
var ErrOverloaded = errors.New("search: overloaded")

// AdmissionOptions configures an AdmissionController.
type AdmissionOptions struct {
	// MaxInFlight caps concurrently admitted searches; <= 0 means no cap.
	MaxInFlight int
	// MinBudget floors the estimated-cost threshold: a request whose
	// remaining deadline is below max(MinBudget, estimated search cost)
	// is shed. <= 0 uses DefaultMinBudget.
	MinBudget time.Duration
}

// DefaultMinBudget is the floor under the budget threshold when
// AdmissionOptions.MinBudget is unset: even with a cold (zero) latency
// estimate, a request with under 1ms of remaining deadline is shed.
const DefaultMinBudget = time.Millisecond

// AdmissionStats is the counter snapshot an AdmissionController reports.
type AdmissionStats struct {
	Admitted     uint64 `json:"admitted"`
	ShedBudget   uint64 `json:"shed_budget"`
	ShedCapacity uint64 `json:"shed_capacity"`
	InFlight     int64  `json:"in_flight"`
	// EstCostNs is the current EWMA estimate of one uncached search, in
	// nanoseconds (0 until the first observation).
	EstCostNs int64 `json:"est_cost_ns"`
}

// AdmissionController implements the shedding policy. The zero value is
// not usable; construct with NewAdmissionController. Safe for concurrent
// use.
type AdmissionController struct {
	maxInFlight int64
	minBudget   int64 // ns

	inFlight atomic.Int64
	estNs    atomic.Int64 // EWMA of uncached search latency

	admitted     atomic.Uint64
	shedBudget   atomic.Uint64
	shedCapacity atomic.Uint64
}

// NewAdmissionController builds a controller from opts.
func NewAdmissionController(opts AdmissionOptions) *AdmissionController {
	min := opts.MinBudget
	if min <= 0 {
		min = DefaultMinBudget
	}
	return &AdmissionController{
		maxInFlight: int64(opts.MaxInFlight),
		minBudget:   int64(min),
	}
}

// Admit decides one search. deadline is the request's absolute deadline
// (ok=false when it has none — such requests are never budget-shed). On
// admission it returns a release func the caller must invoke when the
// search finishes; on shedding it returns ErrOverloaded and no release.
func (ac *AdmissionController) Admit(deadline time.Time, ok bool) (release func(), err error) {
	if ok {
		floor := ac.estNs.Load()
		if floor < ac.minBudget {
			floor = ac.minBudget
		}
		if time.Until(deadline) < time.Duration(floor) {
			ac.shedBudget.Add(1)
			return nil, ErrOverloaded
		}
	}
	if ac.maxInFlight > 0 {
		// Optimistic increment: briefly overshooting the cap between the
		// Add and the check is harmless — the loser decrements and sheds.
		if ac.inFlight.Add(1) > ac.maxInFlight {
			ac.inFlight.Add(-1)
			ac.shedCapacity.Add(1)
			return nil, ErrOverloaded
		}
		ac.admitted.Add(1)
		return func() { ac.inFlight.Add(-1) }, nil
	}
	ac.inFlight.Add(1)
	ac.admitted.Add(1)
	return func() { ac.inFlight.Add(-1) }, nil
}

// Observe feeds one finished *uncached* search's wall time into the cost
// estimator (est ← est·7/8 + d/8). Cache hits must not be observed —
// they would drag the estimate toward microseconds and admit doomed
// searches. The load-store race between concurrent observers loses an
// update occasionally, which an estimator can afford; a CAS loop cannot
// be justified on this path.
func (ac *AdmissionController) Observe(d time.Duration) {
	if d <= 0 {
		return
	}
	old := ac.estNs.Load()
	if old == 0 {
		ac.estNs.Store(int64(d))
		return
	}
	ac.estNs.Store(old - old/8 + int64(d)/8)
}

// Stats snapshots the controller's counters.
func (ac *AdmissionController) Stats() AdmissionStats {
	if ac == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Admitted:     ac.admitted.Load(),
		ShedBudget:   ac.shedBudget.Load(),
		ShedCapacity: ac.shedCapacity.Load(),
		InFlight:     ac.inFlight.Load(),
		EstCostNs:    ac.estNs.Load(),
	}
}
