package search

import (
	"context"
	"sort"
	"strings"

	"repro/internal/fragindex"
)

// MultiEngine federates top-k search across several web applications that
// share an underlying database — the paper's second future-work direction.
// Db-pages from different applications can carry the same content when the
// applications expose overlapping selection attributes; MultiEngine
// eliminates such duplicates by the pages' selection-value composition.
//
// SearchApps fans out to the per-application engines concurrently over a
// bounded worker pool (at most MaxFanout goroutines, default GOMAXPROCS)
// and merges deterministically: per-engine result sets are collected in
// engine registration order before the cross-application rank/dedup pass,
// so the output is identical to a sequential evaluation. Each per-engine
// search pins its own index snapshot, so every application's results are
// internally consistent even under concurrent index maintenance.
// Cancelling ctx abandons engines still queued; in-flight engine searches
// stop at their next cooperative check and the call returns ctx.Err().
type MultiEngine struct {
	engines []*Engine
	// MaxFanout bounds the number of engines searched concurrently
	// (<= 0 means GOMAXPROCS). Set it before serving traffic; it is not
	// synchronized with in-flight searches.
	MaxFanout int
}

// NewMulti creates a federated engine over the given per-application
// engines.
func NewMulti(engines ...*Engine) *MultiEngine {
	return &MultiEngine{engines: engines}
}

// MultiResult pairs a result with the application that produced it.
type MultiResult struct {
	Result
	AppName string
}

// Search runs the request against every application and merges the
// results — the Searcher-contract form of SearchApps, dropping the
// per-application attribution.
func (m *MultiEngine) Search(ctx context.Context, req Request) ([]Result, error) {
	merged, err := m.SearchApps(ctx, req)
	if err != nil {
		return nil, err
	}
	return stripAppNames(merged), nil
}

func stripAppNames(merged []MultiResult) []Result {
	out := make([]Result, len(merged))
	for i, r := range merged {
		out[i] = r.Result
	}
	return out
}

// SearchBatch evaluates a batch of requests, each a full federated
// search, concurrently over a MaxFanout-bounded pool. Like the other
// SearchBatch implementations, the whole batch observes one consistent
// index state: every engine's snapshot is pinned once up front, so two
// identical requests in one batch answer identically even while writers
// publish. out[i] answers reqs[i]; slots abandoned by a cancellation
// carry ctx.Err().
func (m *MultiEngine) SearchBatch(ctx context.Context, reqs []Request) []BatchResult {
	ctx = orBackground(ctx)
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	snaps := m.pin()
	runPool(len(reqs), clampWorkers(m.MaxFanout), func(i int) {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			return
		}
		// Each request fans out serially inside its worker so the total
		// goroutine count stays bounded by the batch pool.
		merged, err := m.searchAppsPinned(ctx, snaps, reqs[i], 1)
		if err != nil {
			out[i].Err = err
			return
		}
		out[i].Results = stripAppNames(merged)
	})
	return out
}

// pin resolves one snapshot per federated engine — the consistent read
// view a batch runs against.
func (m *MultiEngine) pin() []*fragindex.Snapshot {
	snaps := make([]*fragindex.Snapshot, len(m.engines))
	for i, e := range m.engines {
		snaps[i] = e.Snapshot()
	}
	return snaps
}

// SearchApps runs the request against every application concurrently and
// merges the results: pages are ranked by score across applications, and
// when two applications derive pages from the same fragment composition
// (identical selection attribute values), only the higher-scoring one is
// kept.
func (m *MultiEngine) SearchApps(ctx context.Context, req Request) ([]MultiResult, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.searchAppsPinned(ctx, m.pin(), req, clampWorkers(m.MaxFanout))
}

// searchAppsPinned runs one federated request against an explicit
// per-engine snapshot set (from pin).
func (m *MultiEngine) searchAppsPinned(ctx context.Context, snaps []*fragindex.Snapshot, req Request, workers int) ([]MultiResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	perEngine := make([][]Result, len(m.engines))
	errs := make([]error, len(m.engines))

	runPool(len(m.engines), workers, func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err // abandoned: queued behind the cancellation
			return
		}
		perEngine[i], errs[i] = m.engines[i].SearchSnapshot(ctx, snaps[i], req)
	})
	// Deterministic merge: engine order first, then the stable rank sort —
	// byte-for-byte the sequential evaluation's output.
	var all []MultiResult
	for i, rs := range perEngine {
		if errs[i] != nil {
			return nil, errs[i]
		}
		name := ""
		if e := m.engines[i]; e.app != nil {
			name = e.app.Name
		}
		for _, r := range rs {
			all = append(all, MultiResult{Result: r, AppName: name})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })

	seen := make(map[string]bool, len(all))
	out := make([]MultiResult, 0, req.K)
	for _, r := range all {
		sig := contentSignature(r)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, r)
		if len(out) == req.K {
			break
		}
	}
	return out, nil
}

// contentSignature captures the page's underlying record selection: its
// equality values plus range interval. Two applications projecting the same
// records produce pages with equal signatures. Built with a strings.Builder
// so a signature costs one allocation, not one per component.
func contentSignature(r MultiResult) string {
	keys := make([]string, 0, len(r.EqValues))
	for k := range r.EqValues {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(r.EqValues[k].Text())
		sb.WriteByte(';')
	}
	sb.WriteByte('[')
	sb.WriteString(r.RangeLo.Text())
	sb.WriteByte(',')
	sb.WriteString(r.RangeHi.Text())
	sb.WriteByte(']')
	return sb.String()
}

// Engines returns the federated engines (for inspection).
func (m *MultiEngine) Engines() []*Engine { return m.engines }
