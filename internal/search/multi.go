package search

import (
	"sort"
)

// MultiEngine federates top-k search across several web applications that
// share an underlying database — the paper's second future-work direction.
// Db-pages from different applications can carry the same content when the
// applications expose overlapping selection attributes; MultiEngine
// eliminates such duplicates by the pages' selection-value composition.
type MultiEngine struct {
	engines []*Engine
}

// NewMulti creates a federated engine over the given per-application
// engines.
func NewMulti(engines ...*Engine) *MultiEngine {
	return &MultiEngine{engines: engines}
}

// MultiResult pairs a result with the application that produced it.
type MultiResult struct {
	Result
	AppName string
}

// Search runs the request against every application and merges the results:
// pages are ranked by score across applications, and when two applications
// derive pages from the same fragment composition (identical selection
// attribute values), only the higher-scoring one is kept.
func (m *MultiEngine) Search(req Request) ([]MultiResult, error) {
	perApp := req
	var all []MultiResult
	for _, e := range m.engines {
		rs, err := e.Search(perApp)
		if err != nil {
			return nil, err
		}
		name := ""
		if e.app != nil {
			name = e.app.Name
		}
		for _, r := range rs {
			all = append(all, MultiResult{Result: r, AppName: name})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })

	seen := make(map[string]bool, len(all))
	out := make([]MultiResult, 0, req.K)
	for _, r := range all {
		sig := contentSignature(r)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, r)
		if len(out) == req.K {
			break
		}
	}
	return out, nil
}

// contentSignature captures the page's underlying record selection: its
// equality values plus range interval. Two applications projecting the same
// records produce pages with equal signatures.
func contentSignature(r MultiResult) string {
	keys := make([]string, 0, len(r.EqValues))
	for k := range r.EqValues {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sig := ""
	for _, k := range keys {
		sig += k + "=" + r.EqValues[k].Text() + ";"
	}
	sig += "[" + r.RangeLo.Text() + "," + r.RangeHi.Text() + "]"
	return sig
}

// Engines returns the federated engines (for inspection).
func (m *MultiEngine) Engines() []*Engine { return m.engines }
