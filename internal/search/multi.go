package search

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MultiEngine federates top-k search across several web applications that
// share an underlying database — the paper's second future-work direction.
// Db-pages from different applications can carry the same content when the
// applications expose overlapping selection attributes; MultiEngine
// eliminates such duplicates by the pages' selection-value composition.
//
// Search fans out to the per-application engines concurrently over a
// bounded worker pool (at most MaxFanout goroutines, default GOMAXPROCS)
// and merges deterministically: per-engine result sets are collected in
// engine registration order before the cross-application rank/dedup pass,
// so the output is identical to a sequential evaluation. Each per-engine
// search pins its own index snapshot, so every application's results are
// internally consistent even under concurrent index maintenance.
type MultiEngine struct {
	engines []*Engine
	// MaxFanout bounds the number of engines searched concurrently
	// (<= 0 means GOMAXPROCS). Set it before serving traffic; it is not
	// synchronized with in-flight searches.
	MaxFanout int
}

// NewMulti creates a federated engine over the given per-application
// engines.
func NewMulti(engines ...*Engine) *MultiEngine {
	return &MultiEngine{engines: engines}
}

// MultiResult pairs a result with the application that produced it.
type MultiResult struct {
	Result
	AppName string
}

// Search runs the request against every application concurrently and
// merges the results: pages are ranked by score across applications, and
// when two applications derive pages from the same fragment composition
// (identical selection attribute values), only the higher-scoring one is
// kept.
func (m *MultiEngine) Search(req Request) ([]MultiResult, error) {
	perEngine := make([][]Result, len(m.engines))
	errs := make([]error, len(m.engines))

	workers := clampWorkers(m.MaxFanout)
	if workers > len(m.engines) {
		workers = len(m.engines)
	}
	if workers <= 1 {
		for i, e := range m.engines {
			perEngine[i], errs[i] = e.Search(req)
		}
	} else {
		// Same worker-pool shape as ParallelSearch: exactly `workers`
		// goroutines pulling engine indices from a shared counter.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(m.engines) {
						return
					}
					perEngine[i], errs[i] = m.engines[i].Search(req)
				}
			}()
		}
		wg.Wait()
	}
	// Deterministic merge: engine order first, then the stable rank sort —
	// byte-for-byte the sequential evaluation's output.
	var all []MultiResult
	for i, rs := range perEngine {
		if errs[i] != nil {
			return nil, errs[i]
		}
		name := ""
		if e := m.engines[i]; e.app != nil {
			name = e.app.Name
		}
		for _, r := range rs {
			all = append(all, MultiResult{Result: r, AppName: name})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })

	seen := make(map[string]bool, len(all))
	out := make([]MultiResult, 0, req.K)
	for _, r := range all {
		sig := contentSignature(r)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, r)
		if len(out) == req.K {
			break
		}
	}
	return out, nil
}

// contentSignature captures the page's underlying record selection: its
// equality values plus range interval. Two applications projecting the same
// records produce pages with equal signatures. Built with a strings.Builder
// so a signature costs one allocation, not one per component.
func contentSignature(r MultiResult) string {
	keys := make([]string, 0, len(r.EqValues))
	for k := range r.EqValues {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(r.EqValues[k].Text())
		sb.WriteByte(';')
	}
	sb.WriteByte('[')
	sb.WriteString(r.RangeLo.Text())
	sb.WriteByte(',')
	sb.WriteString(r.RangeHi.Text())
	sb.WriteByte(']')
	return sb.String()
}

// Engines returns the federated engines (for inspection).
func (m *MultiEngine) Engines() []*Engine { return m.engines }
