package search

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fragindex"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// TestCandidateLimitPrefix: limiting candidates to 1 keeps only the
// highest-TF fragment per keyword as a seed.
func TestCandidateLimitPrefix(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{
		Keywords: []string{"burger"}, K: 10, SizeThreshold: 1, CandidateLimit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1 (only the top posting read)", len(results))
	}
	// The retained fragment is the highest-TF one: (American,10) with 2.
	if results[0].QueryString != "c=American&l=10&u=10" {
		t.Errorf("top = %s", results[0].QueryString)
	}
	// IDF still reflects the full DF (3 fragments), so the score matches
	// the unlimited run's top score.
	full, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 10, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Score != full[0].Score {
		t.Errorf("limited score %v != full score %v", results[0].Score, full[0].Score)
	}
}

func TestCandidateLimitLargerThanListIsNoop(t *testing.T) {
	e := fooddbEngine(t)
	limited, err := e.Search(context.Background(), Request{
		Keywords: []string{"burger"}, K: 5, SizeThreshold: 20, CandidateLimit: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Search(context.Background(), Request{Keywords: []string{"burger"}, K: 5, SizeThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != len(full) {
		t.Fatalf("limited = %d results, full = %d", len(limited), len(full))
	}
	for i := range full {
		if limited[i].URL != full[i].URL || limited[i].Score != full[i].Score {
			t.Errorf("result %d differs: %v vs %v", i, limited[i], full[i])
		}
	}
}

// TestCandidateLimitDeterministicTies: when the cutoff TF is tied across
// more postings than the limit admits, the kept prefix is the documented
// (TF desc, ref asc) total order — not whatever order the tie band happens
// to sit in — so truncated searches are a deterministic function of the
// snapshot. The index is built with insertion order deliberately opposed
// to ref order at equal TF (posting lists tie-break on identifier, so the
// tie band's ID order is ref-descending here).
func TestCandidateLimitDeterministicTies(t *testing.T) {
	idx, err := fragindex.New(fragindex.Spec{
		SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ten single-fragment groups sharing keyword "w" at TF 1; descending
	// identifier insertion gives ref 0 the largest identifier.
	const n = 10
	for i := 0; i < n; i++ {
		id := fragment.ID{relation.String(fmt.Sprintf("g%d", n-1-i)), relation.Int(0)}
		if _, err := idx.InsertFragment(id, map[string]int64{"w": 1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	e := New(idx, nil)
	req := Request{Keywords: []string{"w"}, K: n, SizeThreshold: 1, CandidateLimit: 3}
	results, err := e.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	seeded := map[fragindex.FragRef]bool{}
	for _, r := range results {
		for _, ref := range r.Fragments {
			seeded[ref] = true
		}
	}
	// The contract keeps the smallest refs of the tie band.
	for ref := fragindex.FragRef(0); ref < 3; ref++ {
		if !seeded[ref] {
			t.Errorf("ref %d missing from the truncated candidate set: %v", ref, seeded)
		}
	}
	// Repeated identical searches return identical results.
	again, err := e.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, again) {
		t.Errorf("truncated search not repeatable:\nfirst %+v\nagain %+v", results, again)
	}
	// A partial tie band — cutoff TF tied but some higher-TF postings
	// above it — keeps all higher-TF postings plus the smallest tied refs.
	top := fragment.ID{relation.String("zz-top"), relation.Int(0)}
	if _, err := idx.InsertFragment(top, map[string]int64{"w": 5}, 1); err != nil {
		t.Fatal(err)
	}
	topRef, _ := idx.Lookup(top)
	results, err = e.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	seeded = map[fragindex.FragRef]bool{}
	for _, r := range results {
		for _, ref := range r.Fragments {
			seeded[ref] = true
		}
	}
	if !seeded[topRef] || !seeded[0] || !seeded[1] {
		t.Errorf("partial band kept %v, want {%d, 0, 1}", seeded, topRef)
	}
}

// TestSelectSmallestRefsProperty: quickselect keeps exactly the need
// smallest refs for random bands, matching a reference sort.
func TestSelectSmallestRefsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.Intn(60)
		band := make([]fragindex.Posting, m)
		seen := map[fragindex.FragRef]bool{}
		for i := range band {
			ref := fragindex.FragRef(r.Intn(1000))
			for seen[ref] {
				ref = fragindex.FragRef(r.Intn(1000))
			}
			seen[ref] = true
			band[i] = fragindex.Posting{Frag: ref, TF: 1}
		}
		need := 1 + r.Intn(m)
		sorted := append([]fragindex.Posting(nil), band...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Frag < sorted[j].Frag })
		want := map[fragindex.FragRef]bool{}
		for _, p := range sorted[:need] {
			want[p.Frag] = true
		}
		selectSmallestRefs(band, need)
		for _, p := range band[:need] {
			if !want[p.Frag] {
				t.Fatalf("trial %d (m=%d need=%d): ref %d kept, not among smallest",
					trial, m, need, p.Frag)
			}
			delete(want, p.Frag)
		}
		if len(want) != 0 {
			t.Fatalf("trial %d: smallest refs missing: %v", trial, want)
		}
	}
}

// TestRequireAllConjunctive: "burger fries" with RequireAll only returns
// pages containing both; (Thai,10) has burger but no fries.
func TestRequireAllConjunctive(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{
		Keywords: []string{"burger", "fries"}, K: 10, SizeThreshold: 1, RequireAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1: %+v", len(results), results)
	}
	if !results[0].EqValues["cuisine"].Equal(relation.String("American")) ||
		!results[0].RangeLo.Equal(relation.Int(12)) {
		t.Errorf("conjunctive result = %+v", results[0])
	}

	// Without RequireAll the burger-only pages come back too.
	loose, err := e.Search(context.Background(), Request{
		Keywords: []string{"burger", "fries"}, K: 10, SizeThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) <= len(results) {
		t.Errorf("disjunctive results = %d, want more than %d", len(loose), len(results))
	}
}

// TestRequireAllSatisfiedByExpansion: neither (American,10) nor
// (American,9) alone has both "burger" and "coffee", but a page spanning
// 9..10 does — expansion can satisfy conjunctive queries.
func TestRequireAllSatisfiedByExpansion(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(context.Background(), Request{
		Keywords: []string{"burger", "coffee"}, K: 5, SizeThreshold: 17, RequireAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no conjunctive results")
	}
	found := false
	for _, r := range results {
		if r.RangeLo.Equal(relation.Int(9)) && r.RangeHi.Compare(relation.Int(10)) >= 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no merged page spanning 9..10: %+v", results)
	}
}
