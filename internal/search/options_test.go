package search

import (
	"testing"

	"repro/internal/relation"
)

// TestCandidateLimitPrefix: limiting candidates to 1 keeps only the
// highest-TF fragment per keyword as a seed.
func TestCandidateLimitPrefix(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(Request{
		Keywords: []string{"burger"}, K: 10, SizeThreshold: 1, CandidateLimit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1 (only the top posting read)", len(results))
	}
	// The retained fragment is the highest-TF one: (American,10) with 2.
	if results[0].QueryString != "c=American&l=10&u=10" {
		t.Errorf("top = %s", results[0].QueryString)
	}
	// IDF still reflects the full DF (3 fragments), so the score matches
	// the unlimited run's top score.
	full, err := e.Search(Request{Keywords: []string{"burger"}, K: 10, SizeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Score != full[0].Score {
		t.Errorf("limited score %v != full score %v", results[0].Score, full[0].Score)
	}
}

func TestCandidateLimitLargerThanListIsNoop(t *testing.T) {
	e := fooddbEngine(t)
	limited, err := e.Search(Request{
		Keywords: []string{"burger"}, K: 5, SizeThreshold: 20, CandidateLimit: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Search(Request{Keywords: []string{"burger"}, K: 5, SizeThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != len(full) {
		t.Fatalf("limited = %d results, full = %d", len(limited), len(full))
	}
	for i := range full {
		if limited[i].URL != full[i].URL || limited[i].Score != full[i].Score {
			t.Errorf("result %d differs: %v vs %v", i, limited[i], full[i])
		}
	}
}

// TestRequireAllConjunctive: "burger fries" with RequireAll only returns
// pages containing both; (Thai,10) has burger but no fries.
func TestRequireAllConjunctive(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(Request{
		Keywords: []string{"burger", "fries"}, K: 10, SizeThreshold: 1, RequireAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1: %+v", len(results), results)
	}
	if !results[0].EqValues["cuisine"].Equal(relation.String("American")) ||
		!results[0].RangeLo.Equal(relation.Int(12)) {
		t.Errorf("conjunctive result = %+v", results[0])
	}

	// Without RequireAll the burger-only pages come back too.
	loose, err := e.Search(Request{
		Keywords: []string{"burger", "fries"}, K: 10, SizeThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) <= len(results) {
		t.Errorf("disjunctive results = %d, want more than %d", len(loose), len(results))
	}
}

// TestRequireAllSatisfiedByExpansion: neither (American,10) nor
// (American,9) alone has both "burger" and "coffee", but a page spanning
// 9..10 does — expansion can satisfy conjunctive queries.
func TestRequireAllSatisfiedByExpansion(t *testing.T) {
	e := fooddbEngine(t)
	results, err := e.Search(Request{
		Keywords: []string{"burger", "coffee"}, K: 5, SizeThreshold: 17, RequireAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no conjunctive results")
	}
	found := false
	for _, r := range results {
		if r.RangeLo.Equal(relation.Int(9)) && r.RangeHi.Compare(relation.Int(10)) >= 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no merged page spanning 9..10: %+v", results)
	}
}
