package replic

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/durable"
)

const (
	// maxTailWait caps how long one tail long-poll parks on the leader.
	maxTailWait = 30 * time.Second
	// maxTailBytes caps one tail chunk regardless of what the client asks.
	maxTailBytes = 32 << 20

	// Cursor metadata headers on tail responses. The body is raw codec
	// frames, so the bookkeeping rides headers instead of an envelope.
	hdrNextEpoch    = "X-Dash-Next-Epoch"
	hdrDurableEpoch = "X-Dash-Durable-Epoch"
	hdrRecords      = "X-Dash-Records"
)

// Leader serves the /v1/replication surface from a durability Source.
// Mount it under Prefix (http.StripPrefix(Prefix, leader)).
type Leader struct {
	src Source
	mux *http.ServeMux
}

// NewLeader builds the replication handler over src.
func NewLeader(src Source) *Leader {
	l := &Leader{src: src, mux: http.NewServeMux()}
	l.mux.HandleFunc("/manifest", l.manifest)
	l.mux.HandleFunc("/snapshot", l.snapshot)
	l.mux.HandleFunc("/tail", l.tail)
	return l
}

func (l *Leader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "replication surface is read-only")
		return
	}
	l.mux.ServeHTTP(w, r)
}

// writeErr emits the same structured error envelope the /v1 surface uses.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//lint:ignore droppederr the response writer is one-way; an encode failure here has no recovery path
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"code": code, "message": msg},
	})
}

// buildManifest assembles the wire manifest from the source.
func buildManifest(src Source) *Manifest {
	spec := src.Spec()
	m := &Manifest{
		Format:    manifestFormat,
		Shards:    src.NumShards(),
		SelAttrs:  spec.SelAttrs,
		EqAttrs:   spec.EqAttrs,
		RangeAttr: spec.RangeAttr,
	}
	for i := 0; i < m.Shards; i++ {
		sm := ShardManifest{Shard: i}
		if e, err := src.DurableEpoch(i); err == nil {
			sm.DurableEpoch = e
		}
		if gens, err := src.SnapshotGens(i); err == nil {
			sm.Snapshots = gens
		}
		m.PerShard = append(m.PerShard, sm)
	}
	return m
}

func (l *Leader) manifest(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore droppederr the response writer is one-way; an encode failure here has no recovery path
	json.NewEncoder(w).Encode(buildManifest(l.src))
}

func (l *Leader) shardParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || shard < 0 || shard >= l.src.NumShards() {
		writeErr(w, http.StatusBadRequest, "bad_shard", fmt.Sprintf("shard must be in [0,%d)", l.src.NumShards()))
		return 0, false
	}
	return shard, true
}

// snapshot serves one snapshot generation byte-for-byte. ServeContent
// handles HEAD and Range requests, so a replica resumes an interrupted
// multi-gigabyte bootstrap fetch from the last byte it holds.
func (l *Leader) snapshot(w http.ResponseWriter, r *http.Request) {
	shard, ok := l.shardParam(w, r)
	if !ok {
		return
	}
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_epoch", "epoch must be a decimal uint64")
		return
	}
	f, _, err := l.src.OpenSnapshot(shard, epoch)
	if err != nil {
		writeErr(w, http.StatusNotFound, "snapshot_unavailable", err.Error())
		return
	}
	defer func() {
		//lint:ignore droppederr read-only fd teardown after the response is written; nothing to recover
		f.Close()
	}()
	w.Header().Set("Content-Type", "application/octet-stream")
	// The snapshot file is immutable once renamed into place (a new epoch
	// gets a new name), so a zero modtime — which disables time-based
	// caching — is the conservative choice.
	http.ServeContent(w, r, "", time.Time{}, f)
}

// tail serves journal records with epoch > from, framed with the record
// codec. With wait_ms and a caught-up cursor it parks until the shard's
// durable epoch advances (or the wait elapses), making the poll loop
// push-latency without a push channel.
func (l *Leader) tail(w http.ResponseWriter, r *http.Request) {
	shard, ok := l.shardParam(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_cursor", "from must be a decimal uint64")
		return
	}
	maxBytes := 0
	if v := q.Get("max_bytes"); v != "" {
		if maxBytes, err = strconv.Atoi(v); err != nil || maxBytes < 0 {
			writeErr(w, http.StatusBadRequest, "bad_max_bytes", "max_bytes must be a non-negative int")
			return
		}
	}
	if maxBytes <= 0 || maxBytes > maxTailBytes {
		maxBytes = maxTailBytes
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		ms, werr := strconv.Atoi(v)
		if werr != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, "bad_wait", "wait_ms must be a non-negative int")
			return
		}
		wait = min(time.Duration(ms)*time.Millisecond, maxTailWait)
	}

	ctx := r.Context()
	chunk, err := l.src.TailFrom(ctx, shard, from, maxBytes)
	if err == nil && chunk.Records == 0 && chunk.DurableEpoch <= from && wait > 0 {
		// Caught up: park until the durable epoch moves, then cut again.
		if _, werr := l.src.WaitForEpoch(ctx, shard, from, wait); werr == nil {
			chunk, err = l.src.TailFrom(ctx, shard, from, maxBytes)
		} else {
			err = werr
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away mid-poll; nothing useful to write.
			writeErr(w, 499, "client_closed", err.Error())
		case errors.Is(err, durable.ErrTailTruncated):
			// The cursor predates the retained journal chain — pruning or a
			// sealed/poisoned segment rotation ate the history. 410 tells
			// the replica to re-bootstrap from the newest checkpoint.
			writeErr(w, http.StatusGone, "tail_truncated", err.Error())
		default:
			// Disk faults behind the store's faultfs seam land here: the
			// tail is temporarily unservable, the stream is effectively
			// severed, and the replica retries with backoff.
			writeErr(w, http.StatusServiceUnavailable, "tail_unavailable", err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(hdrNextEpoch, strconv.FormatUint(chunk.Next, 10))
	w.Header().Set(hdrDurableEpoch, strconv.FormatUint(chunk.DurableEpoch, 10))
	w.Header().Set(hdrRecords, strconv.Itoa(chunk.Records))
	//lint:ignore droppederr the response writer is one-way; a short write surfaces client-side as a frame parse error
	w.Write(chunk.Frames)
}
