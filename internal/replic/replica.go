package replic

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crawl"
	"repro/internal/durable"
	"repro/internal/fragindex"
)

// Options tunes a replica's bootstrap and tail loops. The zero value is
// the production default.
type Options struct {
	// HTTPClient carries all replication traffic (nil: a dedicated client
	// with no global timeout). Tests substitute severable transports here —
	// the chaos seam on the replica side of the stream.
	HTTPClient *http.Client
	// PollWait is the tail long-poll duration (default 10s).
	PollWait time.Duration
	// MaxBytes bounds one tail chunk (default: leader's cap).
	MaxBytes int
	// Backoff / MaxBackoff shape reconnect delays after a severed stream
	// (defaults 100ms / 5s, exponential).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Logf, when set, receives replication lifecycle events.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff < o.Backoff {
		o.MaxBackoff = max(5*time.Second, o.Backoff)
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// shardTail is one shard's tail loop state. applied mirrors the live
// index's published epoch so stats and routing read it lock-free.
type shardTail struct {
	shard int
	live  *fragindex.LiveIndex

	applied      atomic.Uint64
	leaderEpoch  atomic.Uint64
	severed      atomic.Bool
	records      atomic.Uint64
	duplicates   atomic.Uint64
	reconnects   atomic.Uint64
	rebootstraps atomic.Uint64
	lastErr      atomic.Value // string
}

// Replica is a journal-tailing read replica of one leader: per-shard live
// indexes bootstrapped from the leader's snapshots and kept converged by
// tail loops. Reads go through Single/Sharded exactly like a local index;
// writes have no path — replicas are read-only by construction.
type Replica struct {
	leader string
	client *Client
	opts   Options

	spec    fragindex.Spec
	single  *fragindex.LiveIndex        // nil when sharded
	sharded *fragindex.ShardedLiveIndex // nil when single-shard
	shards  []*shardTail

	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Bootstrap builds a cold replica: fetch the manifest, restore every shard
// from its newest snapshot generation, publish, and start the tail loops.
// The ctx governs the bootstrap only; the tail loops run until Close.
func Bootstrap(ctx context.Context, leaderURL string, opts Options) (*Replica, error) {
	opts = opts.withDefaults()
	client := NewClient(leaderURL, opts.HTTPClient)
	man, err := client.Manifest(ctx)
	if err != nil {
		return nil, fmt.Errorf("replic: bootstrap manifest: %w", err)
	}
	r := &Replica{leader: leaderURL, client: client, opts: opts}
	builders := make([]*fragindex.Index, man.Shards)
	epochs := make([]uint64, man.Shards)
	for i := 0; i < man.Shards; i++ {
		dump, ferr := fetchNewestSnapshot(ctx, client, man, i)
		if ferr != nil {
			return nil, ferr
		}
		idx, rerr := fragindex.Restore(dump)
		if rerr != nil {
			return nil, fmt.Errorf("replic: restoring shard %d: %w", i, rerr)
		}
		builders[i] = idx
		epochs[i] = dump.Epoch
	}
	if man.Shards == 1 {
		r.single = fragindex.NewLive(builders[0])
		r.spec = builders[0].Spec()
	} else {
		sl, serr := fragindex.NewShardedLiveFrom(builders)
		if serr != nil {
			return nil, fmt.Errorf("replic: assembling sharded replica: %w", serr)
		}
		r.sharded = sl
		r.spec = sl.Spec()
	}
	tailCtx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	for i := 0; i < man.Shards; i++ {
		t := &shardTail{shard: i, live: r.liveShard(i)}
		t.applied.Store(epochs[i])
		t.leaderEpoch.Store(man.PerShard[i].DurableEpoch)
		r.shards = append(r.shards, t)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.tailLoop(tailCtx, t)
		}()
	}
	opts.Logf("replic: bootstrapped %d shard(s) from %s at epochs %v", man.Shards, leaderURL, epochs)
	return r, nil
}

// fetchNewestSnapshot walks a shard's snapshot generations newest-first
// until one fetches and verifies — the same fallback discipline the
// leader's own recovery applies to corrupt generations.
func fetchNewestSnapshot(ctx context.Context, client *Client, man *Manifest, shard int) (*fragindex.Dump, error) {
	gens := man.PerShard[shard].Snapshots
	if len(gens) == 0 {
		return nil, fmt.Errorf("replic: shard %d has no snapshot generations to bootstrap from", shard)
	}
	var errs []error
	for k := len(gens) - 1; k >= 0; k-- {
		dump, err := client.FetchSnapshot(ctx, shard, gens[k].Epoch)
		if err == nil {
			return dump, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		errs = append(errs, err)
	}
	return nil, fmt.Errorf("replic: shard %d: every snapshot generation failed to fetch: %w", shard, errors.Join(errs...))
}

func (r *Replica) liveShard(i int) *fragindex.LiveIndex {
	if r.single != nil {
		return r.single
	}
	return r.sharded.Shard(i)
}

// tailLoop keeps one shard converged: poll, apply, and on failure degrade
// to stale-but-serving with exponential backoff — reads never block on the
// stream. A truncated cursor re-bootstraps the shard in place.
func (r *Replica) tailLoop(ctx context.Context, t *shardTail) {
	backoff := r.opts.Backoff
	for ctx.Err() == nil {
		res, err := r.client.Tail(ctx, t.shard, t.applied.Load(), r.opts.PollWait, r.opts.MaxBytes)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, durable.ErrTailTruncated) {
				// The leader pruned past our cursor (checkpoints, or a
				// poisoned segment rotated away). Start over from its
				// newest checkpoint — no restart, readers keep the old
				// epoch until the swap.
				t.rebootstraps.Add(1)
				r.opts.Logf("replic: shard %d: tail truncated, re-bootstrapping", t.shard)
				if rerr := r.rebootstrapShard(ctx, t); rerr == nil {
					t.severed.Store(false)
					backoff = r.opts.Backoff
					continue
				} else {
					err = rerr
				}
			}
			// Severed: stale-but-serving until the stream heals.
			if !t.severed.Swap(true) {
				r.opts.Logf("replic: shard %d: stream severed: %v", t.shard, err)
			}
			t.lastErr.Store(err.Error())
			t.reconnects.Add(1)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			backoff = min(backoff*2, r.opts.MaxBackoff)
			continue
		}
		if t.severed.Swap(false) {
			r.opts.Logf("replic: shard %d: stream healed at epoch %d", t.shard, t.applied.Load())
		}
		backoff = r.opts.Backoff
		t.leaderEpoch.Store(res.DurableEpoch)
		if !r.applyRecords(ctx, t, res.Records) {
			continue
		}
		if len(res.Records) == 0 && res.DurableEpoch > t.applied.Load() {
			// Record-free durable advance: the leader's snapshot-GC
			// compaction bumps its epoch without journaling (no logical
			// change), so stamp the epoch to stay convergence-comparable.
			if _, aerr := t.live.ApplyReplicated(ctx, crawl.Delta{}, res.DurableEpoch); aerr == nil {
				t.applied.Store(res.DurableEpoch)
			}
		}
	}
}

// applyRecords folds tailed records in order. Records at or below the
// applied epoch are duplicate delivery (the reconnect re-poll includes the
// cursor boundary when clocks race) and are dropped, never re-applied —
// both here and by ApplyReplicated's own ErrStaleEpoch guard, so a bug in
// either layer cannot double-apply a delta. Returns false when the shard
// was re-bootstrapped mid-batch and the rest of the batch is obsolete.
func (r *Replica) applyRecords(ctx context.Context, t *shardTail, recs []durable.TailRecord) bool {
	for _, rec := range recs {
		if rec.Epoch <= t.applied.Load() {
			t.duplicates.Add(1)
			continue
		}
		if _, err := t.live.ApplyReplicated(ctx, rec.Delta, rec.Epoch); err != nil {
			if errors.Is(err, fragindex.ErrStaleEpoch) {
				t.duplicates.Add(1)
				continue
			}
			if ctx.Err() != nil {
				return false
			}
			// An apply failure means the stream no longer matches local
			// state (divergence). Rebuild from the leader's checkpoint
			// rather than serve corrupt results.
			t.lastErr.Store(err.Error())
			t.rebootstraps.Add(1)
			r.opts.Logf("replic: shard %d: apply failed (%v), re-bootstrapping", t.shard, err)
			//lint:ignore droppederr a failed re-bootstrap leaves the loop severed; the next iteration retries with backoff
			r.rebootstrapShard(ctx, t)
			return false
		}
		t.applied.Store(rec.Epoch)
		t.records.Add(1)
	}
	return true
}

// rebootstrapShard refetches the shard's newest snapshot and swaps it in
// via ResetTo. Readers observe one epoch jump; the tail resumes from the
// snapshot's epoch.
func (r *Replica) rebootstrapShard(ctx context.Context, t *shardTail) error {
	man, err := r.client.Manifest(ctx)
	if err != nil {
		return err
	}
	if t.shard >= len(man.PerShard) {
		return fmt.Errorf("replic: leader manifest lost shard %d", t.shard)
	}
	dump, err := fetchNewestSnapshot(ctx, r.client, man, t.shard)
	if err != nil {
		return err
	}
	if dump.Epoch <= t.applied.Load() {
		// Already at or past the newest checkpoint; nothing to swap. The
		// truncation that sent us here will resolve on the next poll.
		return nil
	}
	idx, err := fragindex.Restore(dump)
	if err != nil {
		return err
	}
	if err := t.live.ResetTo(idx); err != nil {
		return err
	}
	t.applied.Store(dump.Epoch)
	r.opts.Logf("replic: shard %d: re-bootstrapped at epoch %d", t.shard, dump.Epoch)
	return nil
}

// Leader returns the leader URL this replica tails.
func (r *Replica) Leader() string { return r.leader }

// Spec returns the replicated index spec.
func (r *Replica) Spec() fragindex.Spec { return r.spec }

// NumShards returns the replicated shard count.
func (r *Replica) NumShards() int { return len(r.shards) }

// Single returns the live index of a single-shard replica (nil when
// sharded); Sharded the sharded index (nil when single). Exactly one is
// non-nil — the facade builds its search engine over whichever exists.
func (r *Replica) Single() *fragindex.LiveIndex          { return r.single }
func (r *Replica) Sharded() *fragindex.ShardedLiveIndex  { return r.sharded }

// AppliedEpoch returns one shard's applied (published) epoch.
func (r *Replica) AppliedEpoch(shard int) uint64 {
	return r.shards[shard].applied.Load()
}

// MinApplied returns the minimum applied epoch across shards — the epoch
// bound a router can promise for reads served here.
func (r *Replica) MinApplied() uint64 {
	m := r.shards[0].applied.Load()
	for _, t := range r.shards[1:] {
		m = min(m, t.applied.Load())
	}
	return m
}

// MaxLag returns the worst shard's epoch lag behind the leader's last
// reported durable epoch (0 when converged or ahead of a stale report).
func (r *Replica) MaxLag() uint64 {
	var lag uint64
	for _, t := range r.shards {
		if l, a := t.leaderEpoch.Load(), t.applied.Load(); l > a {
			lag = max(lag, l-a)
		}
	}
	return lag
}

// Severed reports whether any shard's stream is currently severed.
func (r *Replica) Severed() bool {
	for _, t := range r.shards {
		if t.severed.Load() {
			return true
		}
	}
	return false
}

// ShardStats is one shard's replication report.
type ShardStats struct {
	Shard             int    `json:"shard"`
	AppliedEpoch      uint64 `json:"applied_epoch"`
	LeaderEpoch       uint64 `json:"leader_epoch"`
	Severed           bool   `json:"severed,omitempty"`
	RecordsApplied    uint64 `json:"records_applied"`
	DuplicatesDropped uint64 `json:"duplicates_dropped,omitempty"`
	Reconnects        uint64 `json:"reconnects,omitempty"`
	Rebootstraps      uint64 `json:"rebootstraps,omitempty"`
	LastError         string `json:"last_error,omitempty"`
}

// Stats is the replica's replication report, surfaced on /v1/readyz and
// /v1/admin/stats so routers can do bounded-staleness placement.
type Stats struct {
	Leader        string       `json:"leader"`
	State         string       `json:"state"` // tailing | severed | closed
	Shards        int          `json:"shards"`
	AppliedEpochs []uint64     `json:"applied_epochs"`
	MinApplied    uint64       `json:"min_applied_epoch"`
	MaxLag        uint64       `json:"max_lag_epochs"`
	PerShard      []ShardStats `json:"per_shard"`
}

// Stats assembles the replication report.
func (r *Replica) Stats() Stats {
	st := Stats{
		Leader:     r.leader,
		State:      "tailing",
		Shards:     len(r.shards),
		MinApplied: r.MinApplied(),
		MaxLag:     r.MaxLag(),
	}
	if r.Severed() {
		st.State = "severed"
	}
	if r.closed.Load() {
		st.State = "closed"
	}
	for _, t := range r.shards {
		ss := ShardStats{
			Shard:             t.shard,
			AppliedEpoch:      t.applied.Load(),
			LeaderEpoch:       t.leaderEpoch.Load(),
			Severed:           t.severed.Load(),
			RecordsApplied:    t.records.Load(),
			DuplicatesDropped: t.duplicates.Load(),
			Reconnects:        t.reconnects.Load(),
			Rebootstraps:      t.rebootstraps.Load(),
		}
		if msg, ok := t.lastErr.Load().(string); ok {
			ss.LastError = msg
		}
		st.AppliedEpochs = append(st.AppliedEpochs, ss.AppliedEpoch)
		st.PerShard = append(st.PerShard, ss)
	}
	return st
}

// Close stops the tail loops. Reads against the last published snapshots
// keep working; Close only ends convergence.
func (r *Replica) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.cancel()
	r.wg.Wait()
	return nil
}
