package replic

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterOptions tunes the replica health poller.
type RouterOptions struct {
	// HTTPClient carries readiness polls (nil: 2s-timeout client).
	HTTPClient *http.Client
	// Poll is the readiness poll period (default 500ms).
	Poll time.Duration
	// Path is the readiness endpoint on each replica (default /v1/readyz).
	Path string
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.Path == "" {
		o.Path = "/v1/readyz"
	}
	return o
}

// ReplicaStatus is one replica's last-polled routing state.
type ReplicaStatus struct {
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	MinApplied uint64 `json:"min_applied_epoch"`
	MaxLag     uint64 `json:"max_lag_epochs,omitempty"`
	LastError  string `json:"last_error,omitempty"`
}

// RouterStats is the router's report, surfaced under admin stats.
type RouterStats struct {
	Replicas []ReplicaStatus `json:"replicas"`
	Routed   uint64          `json:"routed_to_replicas"`
	Fallback uint64          `json:"fallback_to_leader"`
}

// Router does bounded-staleness read routing on the leader: it polls each
// replica's readiness report for applied epochs and picks, per request, a
// replica at-or-past the request's minimum epoch — falling back to the
// leader itself when none qualifies. Replicas that stop answering drop out
// of rotation until a poll succeeds again.
type Router struct {
	opts RouterOptions

	mu       sync.RWMutex
	replicas []*routedReplica

	rr       atomic.Uint64 // round-robin cursor
	routed   atomic.Uint64
	fallback atomic.Uint64

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type routedReplica struct {
	url        string
	healthy    atomic.Bool
	minApplied atomic.Uint64
	maxLag     atomic.Uint64
	lastErr    atomic.Value // string
}

// NewRouter starts a router over the given replica base URLs.
func NewRouter(urls []string, opts RouterOptions) *Router {
	r := &Router{opts: opts.withDefaults()}
	for _, u := range urls {
		r.replicas = append(r.replicas, &routedReplica{url: strings.TrimRight(u, "/")})
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.pollLoop(ctx)
	}()
	return r
}

// readyReport is the slice of a replica's readiness body the router needs.
type readyReport struct {
	Replication *struct {
		MinApplied uint64 `json:"min_applied_epoch"`
		MaxLag     uint64 `json:"max_lag_epochs"`
	} `json:"replication"`
}

func (r *Router) pollLoop(ctx context.Context) {
	// First sweep immediately so the router is useful right after start.
	r.pollAll(ctx)
	t := time.NewTicker(r.opts.Poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.pollAll(ctx)
		}
	}
}

func (r *Router) pollAll(ctx context.Context) {
	r.mu.RLock()
	replicas := r.replicas
	r.mu.RUnlock()
	var wg sync.WaitGroup
	for _, rep := range replicas {
		rep := rep // pre-1.22 loop-variable capture
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.pollOne(ctx, rep)
		}()
	}
	wg.Wait()
}

func (r *Router) pollOne(ctx context.Context, rep *routedReplica) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+r.opts.Path, nil)
	if err != nil {
		rep.healthy.Store(false)
		rep.lastErr.Store(err.Error())
		return
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		rep.healthy.Store(false)
		rep.lastErr.Store(err.Error())
		return
	}
	defer func() {
		//lint:ignore droppederr poll body teardown; the decoded report is what matters
		resp.Body.Close()
	}()
	var rr readyReport
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr); derr != nil {
		rep.healthy.Store(false)
		rep.lastErr.Store(derr.Error())
		return
	}
	// A replica answering readyz serves reads even while degraded/severed
	// (stale-but-serving); what gates routing is its applied epoch vs the
	// request's bound, not its stream health.
	if rr.Replication != nil {
		rep.minApplied.Store(rr.Replication.MinApplied)
		rep.maxLag.Store(rr.Replication.MaxLag)
	}
	rep.healthy.Store(resp.StatusCode == http.StatusOK)
	rep.lastErr.Store("")
}

// Pick returns a replica base URL whose applied epoch is at or past
// minEpoch, round-robin among qualifiers; ok is false when none qualifies
// and the read must be served by the leader.
func (r *Router) Pick(minEpoch uint64) (string, bool) {
	r.mu.RLock()
	replicas := r.replicas
	r.mu.RUnlock()
	n := len(replicas)
	if n == 0 {
		r.fallback.Add(1)
		return "", false
	}
	start := int(r.rr.Add(1) - 1)
	for i := 0; i < n; i++ {
		rep := replicas[(start+i)%n]
		if rep.healthy.Load() && rep.minApplied.Load() >= minEpoch {
			r.routed.Add(1)
			return rep.url, true
		}
	}
	r.fallback.Add(1)
	return "", false
}

// Stats reports per-replica routing state and the routed/fallback split.
func (r *Router) Stats() RouterStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := RouterStats{
		Routed:   r.routed.Load(),
		Fallback: r.fallback.Load(),
	}
	for _, rep := range r.replicas {
		rs := ReplicaStatus{
			URL:        rep.url,
			Healthy:    rep.healthy.Load(),
			MinApplied: rep.minApplied.Load(),
			MaxLag:     rep.maxLag.Load(),
		}
		if msg, ok := rep.lastErr.Load().(string); ok {
			rs.LastError = msg
		}
		st.Replicas = append(st.Replicas, rs)
	}
	return st
}

// Stop ends the poll loop.
func (r *Router) Stop() {
	r.cancel()
	r.wg.Wait()
}
