package replic

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/fragindex"
)

// snapshotFetchAttempts bounds how many times one bootstrap fetch resumes
// after a mid-body transport failure before giving up.
const snapshotFetchAttempts = 4

// Client speaks the /v1/replication surface. Safe for concurrent use.
type Client struct {
	base string // leader base URL + Prefix, no trailing slash
	hc   *http.Client
}

// NewClient builds a client for a leader's replication surface. base is
// the leader's root URL (e.g. "http://leader:8080"); nil hc uses a
// dedicated client with no overall timeout (tail requests long-poll, so a
// global timeout would sever healthy streams).
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/") + Prefix, hc: hc}
}

// apiError is a structured error from the leader's envelope.
type apiError struct {
	Status int
	Code   string
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("replic: leader returned %d %s: %s", e.Status, e.Code, e.Msg)
}

// decodeError turns a non-2xx response into an error, mapping the
// tail-truncated envelope onto durable.ErrTailTruncated so callers branch
// with errors.Is.
func decodeError(resp *http.Response) error {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	//lint:ignore droppederr a short or malformed error body still yields a useful error from the status line below
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	//lint:ignore droppederr a malformed error body still yields a useful error from the status line below
	json.Unmarshal(b, &env)
	if resp.StatusCode == http.StatusGone || env.Error.Code == "tail_truncated" {
		return fmt.Errorf("%w (leader: %s)", durable.ErrTailTruncated, env.Error.Message)
	}
	return &apiError{Status: resp.StatusCode, Code: env.Error.Code, Msg: env.Error.Message}
}

func (c *Client) get(ctx context.Context, path string, q url.Values, header http.Header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	return c.hc.Do(req)
}

// Manifest fetches the leader's replication manifest.
func (c *Client) Manifest(ctx context.Context) (*Manifest, error) {
	resp, err := c.get(ctx, "/manifest", url.Values{}, nil)
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore droppederr response body teardown; the decode result is what matters
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var m Manifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&m); err != nil {
		return nil, fmt.Errorf("replic: decoding manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("replic: unsupported manifest format %d", m.Format)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("replic: manifest reports %d shards", m.Shards)
	}
	return &m, nil
}

// FetchSnapshot downloads one snapshot generation and decodes it with full
// verification (durable.DecodeSnapshot re-checks every CRC, so transport
// corruption is caught exactly like disk corruption). A transport failure
// mid-body resumes with a Range request from the bytes already held.
func (c *Client) FetchSnapshot(ctx context.Context, shard int, epoch uint64) (*fragindex.Dump, error) {
	q := url.Values{
		"shard": {strconv.Itoa(shard)},
		"epoch": {strconv.FormatUint(epoch, 10)},
	}
	var buf []byte
	var lastErr error
	for attempt := 0; attempt < snapshotFetchAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var header http.Header
		wantPartial := len(buf) > 0
		if wantPartial {
			header = http.Header{"Range": {fmt.Sprintf("bytes=%d-", len(buf))}}
		}
		resp, err := c.get(ctx, "/snapshot", q, header)
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			// Full body (or the server ignored the range): restart the buffer.
			buf = buf[:0]
		case wantPartial && resp.StatusCode == http.StatusPartialContent:
		default:
			err := decodeError(resp)
			//lint:ignore droppederr already failing: the envelope error is returned; close is body teardown
			resp.Body.Close()
			return nil, err
		}
		b, rerr := io.ReadAll(resp.Body)
		//lint:ignore droppederr body teardown; a read error is handled via rerr below
		resp.Body.Close()
		buf = append(buf, b...)
		if rerr == nil {
			return durable.DecodeSnapshot(buf, fmt.Sprintf("shard %d epoch %d (fetched)", shard, epoch))
		}
		// Partial read: keep what arrived and resume from the cut.
		lastErr = rerr
	}
	return nil, fmt.Errorf("replic: fetching snapshot shard %d epoch %d: %w", shard, epoch, lastErr)
}

// TailResult is one decoded tail poll.
type TailResult struct {
	Records []durable.TailRecord
	// Next is the cursor for the next poll.
	Next uint64
	// DurableEpoch is the leader shard's durable epoch at the cut.
	DurableEpoch uint64
}

// Tail polls the leader for records after from, long-polling up to wait.
// A 410 from the leader surfaces as durable.ErrTailTruncated — the cursor
// fell off the retained journal chain and the shard must re-bootstrap.
func (c *Client) Tail(ctx context.Context, shard int, from uint64, wait time.Duration, maxBytes int) (*TailResult, error) {
	q := url.Values{
		"shard": {strconv.Itoa(shard)},
		"from":  {strconv.FormatUint(from, 10)},
	}
	if wait > 0 {
		q.Set("wait_ms", strconv.FormatInt(wait.Milliseconds(), 10))
	}
	if maxBytes > 0 {
		q.Set("max_bytes", strconv.Itoa(maxBytes))
	}
	resp, err := c.get(ctx, "/tail", q, nil)
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore droppederr response body teardown; the frame parse result is what matters
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxTailBytes+1))
	if err != nil {
		return nil, fmt.Errorf("replic: reading tail body: %w", err)
	}
	recs, err := durable.ParseTailFrames(body)
	if err != nil {
		return nil, err
	}
	res := &TailResult{Records: recs, Next: from}
	if v, perr := strconv.ParseUint(resp.Header.Get(hdrNextEpoch), 10, 64); perr == nil {
		res.Next = v
	}
	if v, perr := strconv.ParseUint(resp.Header.Get(hdrDurableEpoch), 10, 64); perr == nil {
		res.DurableEpoch = v
	}
	return res, nil
}
