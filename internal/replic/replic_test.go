package replic

// End-to-end replication tests over a real durable store and httptest
// transport: snapshot bootstrap, tail convergence, duplicate delivery on
// replay, sever/heal chaos, truncation-driven re-bootstrap, and the
// bounded-staleness router.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crawl"
	"repro/internal/durable"
	"repro/internal/fragindex"
	"repro/internal/fragment"
	"repro/internal/relation"
)

func testSpec() fragindex.Spec {
	return fragindex.Spec{SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v"}
}

func fid(g string, v int64) fragment.ID {
	return fragment.ID{relation.String(g), relation.Int(v)}
}

func seedIndex(t *testing.T, n int) *fragindex.Index {
	t.Helper()
	idx, err := fragindex.New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		counts := map[string]int64{"common": int64(i%3 + 1), fmt.Sprintf("w%d", i): 2}
		if _, err := idx.InsertFragment(fid(fmt.Sprintf("p%d", i%3), int64(i)), counts, int64(i+3)); err != nil {
			t.Fatal(err)
		}
	}
	return idx
}

func insDelta(id fragment.ID, counts map[string]int64, total int64) crawl.Delta {
	return crawl.Delta{Changes: []crawl.FragmentChange{{
		Op: crawl.OpInsertFragment, ID: id, TermCounts: counts, TotalTerms: total,
	}}}
}

// leaderHarness is a one-shard durable leader: a live index journaling
// every publish to a real store, served over httptest. The same
// apply-then-append discipline dash's durable handle uses.
type leaderHarness struct {
	t    *testing.T
	st   *durable.Store
	live *fragindex.LiveIndex
	srv  *httptest.Server
}

// newLeaderHarness seeds a store and serves its replication surface,
// optionally behind an extra middleware wrapping the leader handler.
func newLeaderHarness(t *testing.T, wrap func(http.Handler) http.Handler) *leaderHarness {
	t.Helper()
	idx := seedIndex(t, 4)
	st, err := durable.Open(context.Background(), t.TempDir(), durable.SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		st.Close()
		t.Fatal(err)
	}
	var h http.Handler = NewLeader(st)
	if wrap != nil {
		h = wrap(h)
	}
	mux := http.NewServeMux()
	mux.Handle(Prefix+"/", http.StripPrefix(Prefix, h))
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		if err := st.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	})
	return &leaderHarness{t: t, st: st, live: fragindex.NewLive(idx), srv: srv}
}

// apply publishes one delta on the leader and journals it — the durable
// epoch advances exactly like a production publish.
func (h *leaderHarness) apply(d crawl.Delta) uint64 {
	h.t.Helper()
	st, err := h.live.Apply(context.Background(), d)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.st.Append(context.Background(), 0, d, st.Epoch); err != nil {
		h.t.Fatal(err)
	}
	return st.Epoch
}

func (h *leaderHarness) checkpoint() {
	h.t.Helper()
	if err := h.st.Checkpoint(context.Background(), 0, h.live.Dump()); err != nil {
		h.t.Fatal(err)
	}
}

// fastOpts makes tail loops converge quickly in tests.
func fastOpts(hc *http.Client) Options {
	return Options{
		HTTPClient: hc,
		PollWait:   100 * time.Millisecond,
		Backoff:    5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBootstrapAndTailConvergence: a cold replica bootstraps from the
// newest snapshot, tails the journal, and converges to the leader's exact
// dump — including across a mid-stream checkpoint (journal rotation).
func TestBootstrapAndTailConvergence(t *testing.T) {
	h := newLeaderHarness(t, nil)
	preEpoch := h.apply(insDelta(fid("pre", 1), map[string]int64{"pre": 1}, 1))

	rep, err := Bootstrap(context.Background(), h.srv.URL, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if rep.NumShards() != 1 || rep.Single() == nil {
		t.Fatalf("replica shape: shards=%d", rep.NumShards())
	}
	waitFor(t, "pre-bootstrap record", func() bool { return rep.MinApplied() >= preEpoch })

	// Mutations landing while the replica tails, with a rotation between.
	var last uint64
	for i := 0; i < 3; i++ {
		last = h.apply(insDelta(fid("a", int64(i)), map[string]int64{"live": 1}, 1))
	}
	h.checkpoint()
	for i := 0; i < 3; i++ {
		last = h.apply(insDelta(fid("b", int64(i)), map[string]int64{"more": 1}, 1))
	}
	waitFor(t, "tail convergence", func() bool { return rep.MinApplied() == last })

	if got, want := rep.Single().Dump(), h.live.Dump(); !reflect.DeepEqual(got, want) {
		t.Error("converged replica dump diverged from leader")
	}
	st := rep.Stats()
	if st.State != "tailing" || st.MinApplied != last || st.PerShard[0].RecordsApplied < 6 {
		t.Errorf("stats = %+v", st)
	}
}

// replayTailOnce wraps the leader handler: after serving a tail response
// carrying records, the next tail request gets that previous response
// replayed verbatim — duplicate delivery, as after a reconnect race.
type replayTailOnce struct {
	inner http.Handler

	mu       sync.Mutex
	last     []byte
	lastHdr  http.Header
	armed    bool
	replayed bool
}

func (rt *replayTailOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/tail" {
		rt.inner.ServeHTTP(w, r)
		return
	}
	rt.mu.Lock()
	if rt.armed && rt.last != nil && !rt.replayed {
		body, hdr := rt.last, rt.lastHdr
		rt.replayed = true
		rt.mu.Unlock()
		for k, vs := range hdr {
			w.Header()[k] = vs
		}
		if _, err := w.Write(body); err != nil {
			panic(err)
		}
		return
	}
	rt.mu.Unlock()
	rec := httptest.NewRecorder()
	rt.inner.ServeHTTP(rec, r)
	if rec.Code == http.StatusOK && rec.Header().Get(hdrRecords) != "0" {
		rt.mu.Lock()
		rt.last = append([]byte(nil), rec.Body.Bytes()...)
		rt.lastHdr = rec.Header().Clone()
		rt.mu.Unlock()
	}
	for k, vs := range rec.Header() {
		w.Header()[k] = vs
	}
	w.WriteHeader(rec.Code)
	if _, err := w.Write(rec.Body.Bytes()); err != nil {
		panic(err)
	}
}

// TestDuplicateDeliveryDropped: a replayed tail chunk (records the
// replica already applied) is dropped record by record — the duplicates
// counter moves, the state does not, and convergence resumes. This is the
// regression test for the apply path's epoch guard.
func TestDuplicateDeliveryDropped(t *testing.T) {
	replay := &replayTailOnce{}
	h := newLeaderHarness(t, func(inner http.Handler) http.Handler {
		replay.inner = inner
		return replay
	})

	rep, err := Bootstrap(context.Background(), h.srv.URL, fastOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	first := h.apply(insDelta(fid("d", 1), map[string]int64{"dup": 1}, 1))
	waitFor(t, "first record", func() bool { return rep.MinApplied() == first })

	// Arm the replay: the next poll re-delivers the chunk just applied.
	replay.mu.Lock()
	replay.armed = true
	replay.mu.Unlock()

	last := h.apply(insDelta(fid("d", 2), map[string]int64{"fresh": 1}, 1))
	waitFor(t, "post-replay convergence", func() bool { return rep.MinApplied() == last })
	waitFor(t, "duplicate counted", func() bool {
		return rep.Stats().PerShard[0].DuplicatesDropped > 0
	})

	if got, want := rep.Single().Dump(), h.live.Dump(); !reflect.DeepEqual(got, want) {
		t.Error("duplicate delivery corrupted the replica state")
	}
}

// severableTransport fails every request while severed — the chaos seam
// on the replica side of the stream.
type severableTransport struct {
	severed atomic.Bool
}

var errSevered = errors.New("transport severed")

func (s *severableTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if s.severed.Load() {
		return nil, errSevered
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestSeverHealReconverges: severing the replication transport degrades
// the replica to stale-but-serving (reads keep answering the last applied
// epoch); healing re-converges without a restart.
func TestSeverHealReconverges(t *testing.T) {
	h := newLeaderHarness(t, nil)
	tr := &severableTransport{}
	rep, err := Bootstrap(context.Background(), h.srv.URL, fastOpts(&http.Client{Transport: tr}))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	first := h.apply(insDelta(fid("s", 1), map[string]int64{"pre": 1}, 1))
	waitFor(t, "pre-sever convergence", func() bool { return rep.MinApplied() == first })

	tr.severed.Store(true)
	waitFor(t, "sever detected", func() bool { return rep.Severed() })

	// Mutations the replica cannot see yet.
	var last uint64
	for i := 0; i < 3; i++ {
		last = h.apply(insDelta(fid("s", int64(10+i)), map[string]int64{"unseen": 1}, 1))
	}
	// Stale-but-serving: the applied epoch holds, the snapshot still reads.
	if rep.MinApplied() != first {
		t.Fatalf("severed replica moved to %d", rep.MinApplied())
	}
	if got := rep.Single().Snapshot().Epoch(); got != first {
		t.Fatalf("severed replica serves epoch %d, want %d", got, first)
	}
	st := rep.Stats()
	if st.State != "severed" || st.PerShard[0].LastError == "" || st.PerShard[0].Reconnects == 0 {
		t.Errorf("severed stats = %+v", st)
	}

	tr.severed.Store(false)
	waitFor(t, "heal convergence", func() bool {
		return !rep.Severed() && rep.MinApplied() == last
	})
	if got, want := rep.Single().Dump(), h.live.Dump(); !reflect.DeepEqual(got, want) {
		t.Error("healed replica diverged from leader")
	}
}

// TestTailTruncatedRebootstraps: while the replica is severed, the leader
// checkpoints enough for retention to prune the journals the replica's
// cursor needs. On heal the leader answers 410 and the replica must
// re-bootstrap from the newest checkpoint — then keep tailing.
func TestTailTruncatedRebootstraps(t *testing.T) {
	h := newLeaderHarness(t, nil)
	tr := &severableTransport{}
	rep, err := Bootstrap(context.Background(), h.srv.URL, fastOpts(&http.Client{Transport: tr}))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	first := h.apply(insDelta(fid("x", 1), map[string]int64{"seed": 1}, 1))
	waitFor(t, "initial convergence", func() bool { return rep.MinApplied() == first })

	tr.severed.Store(true)
	waitFor(t, "sever detected", func() bool { return rep.Severed() })

	// Enough checkpoint generations that retention prunes the journal
	// holding the replica's cursor epoch.
	for round := 0; round < 4; round++ {
		for k := 0; k < 2; k++ {
			h.apply(insDelta(fid("prune", int64(round*10+k)), map[string]int64{"pr": 1}, 1))
		}
		h.checkpoint()
	}
	// Sanity: the cursor really is unservable now.
	if _, terr := h.st.TailFrom(context.Background(), 0, first, 0); !errors.Is(terr, durable.ErrTailTruncated) {
		t.Fatalf("setup: cursor still servable: %v", terr)
	}
	last := h.apply(insDelta(fid("after", 1), map[string]int64{"post": 1}, 1))

	tr.severed.Store(false)
	waitFor(t, "rebootstrap convergence", func() bool { return rep.MinApplied() == last })
	if got := rep.Stats().PerShard[0].Rebootstraps; got < 1 {
		t.Errorf("rebootstraps = %d, want >= 1", got)
	}
	if got, want := rep.Single().Dump(), h.live.Dump(); !reflect.DeepEqual(got, want) {
		t.Error("re-bootstrapped replica diverged from leader")
	}
}

// TestLeaderEndpointErrors: the transport's error contract — bad shard
// 400, stale cursor 410, missing snapshot 404, writes 405.
func TestLeaderEndpointErrors(t *testing.T) {
	h := newLeaderHarness(t, nil)
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(h.srv.URL + Prefix + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if err := resp.Body.Close(); err != nil {
				t.Errorf("body close: %v", err)
			}
		})
		return resp
	}
	if resp := get("/tail?shard=9&from=0"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad shard status = %d", resp.StatusCode)
	}
	if resp := get("/tail?shard=0&from=0"); resp.StatusCode != http.StatusGone {
		t.Errorf("stale cursor status = %d, want 410", resp.StatusCode)
	}
	if resp := get("/snapshot?shard=0&epoch=123456789"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing snapshot status = %d", resp.StatusCode)
	}
	resp, err := http.Post(h.srv.URL+Prefix+"/manifest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Error(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}

	// The client maps the 410 envelope onto ErrTailTruncated.
	c := NewClient(h.srv.URL, nil)
	if _, err := c.Tail(context.Background(), 0, 0, 0, 0); !errors.Is(err, durable.ErrTailTruncated) {
		t.Errorf("client 410 mapping = %v", err)
	}
}

// readyzStub serves a minimal replica readiness report.
func readyzStub(minApplied *atomic.Uint64, healthy *atomic.Bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, `{"status":"ready","replication":{"min_applied_epoch":%d,"max_lag_epochs":0}}`,
			minApplied.Load())
	})
}

// TestRouterBoundedStaleness: the router places reads only on replicas
// at-or-past the requested epoch, falls back to the leader when none
// qualifies, and drops replicas that stop answering.
func TestRouterBoundedStaleness(t *testing.T) {
	var freshEpoch, staleEpoch atomic.Uint64
	var freshUp, staleUp atomic.Bool
	freshEpoch.Store(100)
	staleEpoch.Store(10)
	freshUp.Store(true)
	staleUp.Store(true)
	fresh := httptest.NewServer(readyzStub(&freshEpoch, &freshUp))
	defer fresh.Close()
	stale := httptest.NewServer(readyzStub(&staleEpoch, &staleUp))
	defer stale.Close()

	r := NewRouter([]string{fresh.URL, stale.URL}, RouterOptions{Poll: 10 * time.Millisecond})
	defer r.Stop()
	waitFor(t, "both replicas polled", func() bool {
		st := r.Stats()
		return len(st.Replicas) == 2 && st.Replicas[0].Healthy && st.Replicas[1].Healthy
	})

	// min_epoch 50: only the fresh replica qualifies — always picked.
	for i := 0; i < 4; i++ {
		url, ok := r.Pick(50)
		if !ok || url != fresh.URL {
			t.Fatalf("Pick(50) = %q, %v", url, ok)
		}
	}
	// min_epoch 5: both qualify — round-robin hits both.
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		url, ok := r.Pick(5)
		if !ok {
			t.Fatal("Pick(5) fell back")
		}
		seen[url] = true
	}
	if !seen[fresh.URL] || !seen[stale.URL] {
		t.Errorf("round-robin skipped a qualifying replica: %v", seen)
	}
	// min_epoch 1000: nobody qualifies — leader fallback.
	if _, ok := r.Pick(1000); ok {
		t.Error("Pick(1000) routed to a lagging replica")
	}

	// The fresh replica goes dark: it must drop out of rotation.
	freshUp.Store(false)
	waitFor(t, "fresh replica marked down", func() bool {
		for _, rs := range r.Stats().Replicas {
			if rs.URL == fresh.URL {
				return !rs.Healthy
			}
		}
		return false
	})
	if _, ok := r.Pick(50); ok {
		t.Error("Pick(50) routed to a dead replica")
	}
	st := r.Stats()
	if st.Routed == 0 || st.Fallback == 0 {
		t.Errorf("router counters = %+v", st)
	}
}
