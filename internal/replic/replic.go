// Package replic is the replication tier: it moves the durable layer's
// snapshot generations and journal records from one leader to N read
// replicas over HTTP, so read traffic scales horizontally while writes
// stay on the single durable leader.
//
// The leader side (Leader) serves three endpoints under /v1/replication:
//
//	GET /manifest                  shard topology, index spec, per-shard
//	                               durable epochs and snapshot generations
//	GET /snapshot?shard=S&epoch=E  one snapshot generation, byte-for-byte
//	                               (range requests supported, so an
//	                               interrupted bootstrap resumes mid-file)
//	GET /tail?shard=S&from=E       journal records with epoch > E, framed
//	                               with the journal record codec; long-polls
//	                               up to wait_ms when the cursor is caught up
//
// The replica side (Replica) bootstraps each shard from the newest
// snapshot generation, then tails the journal and applies records through
// fragindex.ApplyReplicated — the same fold the leader's replay loop runs,
// published at the leader's exact epoch via the epoch-swap path. Reads on
// a replica are therefore byte-identical to the leader at the same epoch.
//
// Failure behavior is explicitly bounded: a severed transport leaves the
// replica stale-but-serving (reads keep working at the last applied epoch)
// and tailing resumes on heal; a cursor that fell off the leader's retained
// journal chain (checkpoint pruning, sealed/poisoned segments rotated
// away) re-bootstraps the shard from the newest checkpoint without a
// restart. Router does bounded-staleness read routing against replica
// readiness reports.
//
// replic deliberately depends only on the durable/fragindex/crawl layers —
// the search and facade layers sit above it and consume its stats.
package replic

import (
	"context"
	"time"

	"repro/internal/durable"
	"repro/internal/faultfs"
	"repro/internal/fragindex"
)

// Prefix is the replication surface's URL prefix on the leader.
const Prefix = "/v1/replication"

// manifestFormat versions the wire manifest.
const manifestFormat = 1

// ShardManifest is one shard's replication state in the manifest.
type ShardManifest struct {
	Shard        int                   `json:"shard"`
	DurableEpoch uint64                `json:"durable_epoch"`
	Snapshots    []durable.SegmentInfo `json:"snapshots"`
}

// Manifest describes what a leader replicates: the committed topology and
// spec (a replica must serve the identical shard routing) plus each
// shard's durable epoch and bootstrap-eligible snapshot generations.
type Manifest struct {
	Format    int             `json:"format"`
	Shards    int             `json:"shards"`
	SelAttrs  []string        `json:"sel_attrs"`
	EqAttrs   []string        `json:"eq_attrs"`
	RangeAttr string          `json:"range_attr,omitempty"`
	PerShard  []ShardManifest `json:"per_shard"`
}

// Source is what a leader serves replication from — implemented by
// *durable.Store. Every byte a replica receives originates behind the
// store's faultfs seam, so disk fault injection on the leader severs
// replication exactly like it degrades local durability.
type Source interface {
	NumShards() int
	Spec() fragindex.Spec
	DurableEpoch(shard int) (uint64, error)
	SnapshotGens(shard int) ([]durable.SegmentInfo, error)
	OpenSnapshot(shard int, epoch uint64) (faultfs.File, int64, error)
	TailFrom(ctx context.Context, shard int, from uint64, maxBytes int) (*durable.TailChunk, error)
	WaitForEpoch(ctx context.Context, shard int, after uint64, wait time.Duration) (uint64, error)
}

var _ Source = (*durable.Store)(nil)
