// Package fragment models db-page fragments (paper Definition 2): for a
// parameterized PSJ query, the fragment identified by ⟨v1,…,vm⟩ is
//
//	π a1,…,al σ c1=v1 ∧ … ∧ cm=vm (R1 ⨝ … ⨝ Rn)
//
// — the joined, projected records whose selection attributes all equal the
// identifier values. Fragments are disjoint and every db-page is a union of
// fragments, which is what lets Dash index fragments instead of pages.
//
// The package also owns keyword extraction. Following the paper's counting
// (Example 6: fragment (American,9) holds the eight keywords Bond's, Cafe,
// 9, 4.3, Nice, Coffee, James, 01/11), a keyword is a whitespace-separated
// token of a projected attribute's text rendering, compared
// case-insensitively.
package fragment

import (
	"sort"
	"strings"

	"repro/internal/relation"
)

// Tokenize splits one attribute value's text into lower-cased keywords.
// NULL values contribute nothing.
func Tokenize(v relation.Value) []string {
	if v.IsNull() {
		return nil
	}
	fields := strings.Fields(v.Text())
	if len(fields) == 0 {
		return nil
	}
	for i, f := range fields {
		fields[i] = strings.ToLower(f)
	}
	return fields
}

// CountTokens adds the keywords of v into counts and returns the number of
// tokens added.
func CountTokens(v relation.Value, counts map[string]int) int {
	if v.IsNull() {
		return 0
	}
	n := 0
	for _, f := range strings.Fields(v.Text()) {
		counts[strings.ToLower(f)]++
		n++
	}
	return n
}

// ID is a db-page fragment identifier: the selection-attribute value tuple
// ⟨v1,…,vm⟩.
type ID []relation.Value

// Key returns the canonical string form of the identifier, usable as a map
// or shuffle key.
func (id ID) Key() string { return relation.Key(id) }

// ParseID decodes a key produced by ID.Key.
func ParseID(key string) (ID, error) {
	vals, err := relation.DecodeKey(key)
	if err != nil {
		return nil, err
	}
	return ID(vals), nil
}

// String renders the identifier like the paper: (American,10).
func (id ID) String() string {
	parts := make([]string, len(id))
	for i, v := range id {
		parts[i] = v.Text()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Compare orders identifiers lexicographically.
func (id ID) Compare(other ID) int {
	return relation.CompareRows(relation.Row(id), relation.Row(other))
}

// Stats holds the index-relevant content summary of one fragment: its term
// frequencies and total keyword count. TotalTerms is the node weight in the
// fragment graph (Fig. 9).
type Stats struct {
	ID         ID
	TermCounts map[string]int
	TotalTerms int
}

// Fragment is a fully materialized fragment: stats plus the projected rows.
// The MR crawlers only produce Stats; Fragment is used by the reference
// derivation, tests, and the naive baseline.
type Fragment struct {
	Stats
	Rows []relation.Row
}

// Derive computes all fragments of a crawl-query result. projIdx and selIdx
// give the positions of the projection attributes and selection attributes
// within each row (an attribute may appear in both — budget in the paper's
// running example is projected and a selection attribute). Derive is the
// straightforward single-machine reference the MR algorithms are tested
// against; output is sorted by fragment identifier.
func Derive(rows []relation.Row, projIdx, selIdx []int) []*Fragment {
	byKey := make(map[string]*Fragment)
	for _, r := range rows {
		id := make(ID, len(selIdx))
		for i, j := range selIdx {
			id[i] = r[j]
		}
		k := id.Key()
		f, ok := byKey[k]
		if !ok {
			f = &Fragment{Stats: Stats{ID: id, TermCounts: make(map[string]int)}}
			byKey[k] = f
		}
		projected := make(relation.Row, len(projIdx))
		for i, j := range projIdx {
			projected[i] = r[j]
		}
		f.Rows = append(f.Rows, projected)
		for _, v := range projected {
			f.TotalTerms += CountTokens(v, f.TermCounts)
		}
	}
	out := make([]*Fragment, 0, len(byKey))
	for _, f := range byKey {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Compare(out[j].ID) < 0 })
	return out
}

// Indices resolves projection and selection column positions within a
// crawl-result schema, the layout Derive expects.
func Indices(schema *relation.Schema, projCols, selCols []string) (projIdx, selIdx []int) {
	projIdx = make([]int, len(projCols))
	for i, c := range projCols {
		projIdx[i] = schema.ColumnIndex(c)
	}
	selIdx = make([]int, len(selCols))
	for i, c := range selCols {
		selIdx[i] = schema.ColumnIndex(c)
	}
	return projIdx, selIdx
}
