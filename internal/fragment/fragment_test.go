package fragment

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/fooddb"
	"repro/internal/psj"
	"repro/internal/relation"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		v    relation.Value
		want []string
	}{
		{relation.String("Burger experts"), []string{"burger", "experts"}},
		{relation.String("Bond's Cafe"), []string{"bond's", "cafe"}},
		{relation.Float(4.3), []string{"4.3"}},
		{relation.Int(10), []string{"10"}},
		{relation.String("01/11"), []string{"01/11"}},
		{relation.String("  spaced   out "), []string{"spaced", "out"}},
		{relation.String(""), nil},
		{relation.String("   "), nil},
		{relation.Null(), nil},
	}
	for _, tc := range tests {
		if got := Tokenize(tc.v); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestCountTokens(t *testing.T) {
	counts := make(map[string]int)
	n := CountTokens(relation.String("Burger experts"), counts)
	n += CountTokens(relation.String("Unique burger"), counts)
	n += CountTokens(relation.Null(), counts)
	if n != 4 {
		t.Errorf("total tokens = %d, want 4", n)
	}
	if counts["burger"] != 2 || counts["experts"] != 1 || counts["unique"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestIDKeyRoundTrip(t *testing.T) {
	id := ID{relation.String("American"), relation.Int(10)}
	parsed, err := ParseID(id.Key())
	if err != nil {
		t.Fatalf("ParseID: %v", err)
	}
	if id.Compare(parsed) != 0 {
		t.Errorf("round trip = %v, want %v", parsed, id)
	}
	if got := id.String(); got != "(American,10)" {
		t.Errorf("String = %q", got)
	}
	if _, err := ParseID(string([]byte{255})); err == nil {
		t.Error("ParseID should fail on garbage")
	}
}

func TestIDCompare(t *testing.T) {
	a := ID{relation.String("American"), relation.Int(10)}
	b := ID{relation.String("American"), relation.Int(12)}
	c := ID{relation.String("Thai"), relation.Int(10)}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("numeric component ordering wrong")
	}
	if b.Compare(c) != -1 {
		t.Error("string component ordering wrong")
	}
}

// crawlRows evaluates the fooddb crawl query and returns its rows plus the
// projection and selection column positions.
func crawlRows(t *testing.T) (rows []relation.Row, projIdx, selIdx []int) {
	t.Helper()
	db := fooddb.New()
	b, err := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	joined, err := b.JoinAll(db)
	if err != nil {
		t.Fatalf("JoinAll: %v", err)
	}
	proj, err := joined.Project(b.CrawlProjection())
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	projIdx, selIdx = Indices(proj.Schema, b.Projections, b.SelAttrs)
	return proj.Rows, projIdx, selIdx
}

// TestDeriveFooddbMatchesFig5 asserts the five fragments of Fig. 5 with the
// exact keyword totals of Fig. 9 (8, 8, 17, 8, 10).
func TestDeriveFooddbMatchesFig5(t *testing.T) {
	rows, projIdx, selIdx := crawlRows(t)
	frags := Derive(rows, projIdx, selIdx)
	if len(frags) != 5 {
		t.Fatalf("fragments = %d, want 5", len(frags))
	}
	want := map[string]struct {
		rows  int
		terms int
	}{
		"(American,9)":  {1, 8},
		"(American,10)": {1, 8},
		"(American,12)": {3, 17},
		"(American,18)": {1, 8},
		"(Thai,10)":     {2, 10},
	}
	for _, f := range frags {
		w, ok := want[f.ID.String()]
		if !ok {
			t.Errorf("unexpected fragment %s", f.ID)
			continue
		}
		if len(f.Rows) != w.rows {
			t.Errorf("%s rows = %d, want %d", f.ID, len(f.Rows), w.rows)
		}
		if f.TotalTerms != w.terms {
			t.Errorf("%s total terms = %d, want %d", f.ID, f.TotalTerms, w.terms)
		}
	}
}

// TestDeriveFooddbMatchesFig6 asserts the inverted-file sample of Fig. 6:
// burger -> (American,10):2, (American,12):1, (Thai,10):1; coffee ->
// (American,9):1; fries -> (American,12):1.
func TestDeriveFooddbMatchesFig6(t *testing.T) {
	rows, projIdx, selIdx := crawlRows(t)
	frags := Derive(rows, projIdx, selIdx)
	occ := func(keyword, id string) int {
		for _, f := range frags {
			if f.ID.String() == id {
				return f.TermCounts[keyword]
			}
		}
		return -1
	}
	checks := []struct {
		kw, id string
		want   int
	}{
		{"burger", "(American,10)", 2},
		{"burger", "(American,12)", 1},
		{"burger", "(Thai,10)", 1},
		{"burger", "(American,9)", 0},
		{"coffee", "(American,9)", 1},
		{"fries", "(American,12)", 1},
	}
	for _, c := range checks {
		if got := occ(c.kw, c.id); got != c.want {
			t.Errorf("occurrences(%q, %s) = %d, want %d", c.kw, c.id, got, c.want)
		}
	}
}

// TestDeriveDisjointAndComplete property: fragments partition the crawl
// result — every row lands in exactly one fragment and totals add up.
func TestDeriveDisjointAndComplete(t *testing.T) {
	rows, projIdx, selIdx := crawlRows(t)
	frags := Derive(rows, projIdx, selIdx)
	totalRows := 0
	seen := make(map[string]bool)
	for _, f := range frags {
		if seen[f.ID.Key()] {
			t.Fatalf("duplicate fragment %s", f.ID)
		}
		seen[f.ID.Key()] = true
		totalRows += len(f.Rows)
		// Stats totals match the sum of term counts.
		sum := 0
		for _, c := range f.TermCounts {
			sum += c
		}
		if sum != f.TotalTerms {
			t.Errorf("%s: term count sum %d != TotalTerms %d", f.ID, sum, f.TotalTerms)
		}
	}
	if totalRows != len(rows) {
		t.Errorf("fragment rows = %d, want %d", totalRows, len(rows))
	}
}

func TestDeriveSorted(t *testing.T) {
	rows, projIdx, selIdx := crawlRows(t)
	frags := Derive(rows, projIdx, selIdx)
	if !sort.SliceIsSorted(frags, func(i, j int) bool {
		return frags[i].ID.Compare(frags[j].ID) < 0
	}) {
		t.Error("Derive output not sorted by ID")
	}
}

func TestDeriveEmpty(t *testing.T) {
	if got := Derive(nil, []int{0, 1}, []int{2}); len(got) != 0 {
		t.Errorf("Derive(nil) = %v", got)
	}
}
