// Package tpch generates TPC-H-like databases for Dash's performance
// evaluation (paper §VII). The paper used TPC-H dbgen at three scales
// (Table II); this generator produces the same six relations — region,
// nation, customer, orders, lineitem, part — with the same key structure
// and relative sizes, scaled to laptop proportions, plus the three
// application queries of Table III as servlet-style web applications.
//
// Text columns draw words from a Zipf-distributed vocabulary so keyword
// document frequencies span the hot/warm/cold bands the paper's top-k
// search experiment selects from.
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// Scale sizes one generated dataset. Row counts keep the paper's relative
// relation sizes (customer ≪ orders ≪ lineitem).
type Scale struct {
	Name          string
	Customers     int
	OrdersPerCust int
	LinesPerOrder int
	Parts         int
}

// The three dataset scales of Table II, shrunk proportionally to run on one
// machine (the paper's small/medium/large were 0.9/4.7/9.5 GB on a Hadoop
// cluster; relative sizes C:O:L are preserved).
var (
	Small  = Scale{Name: "small", Customers: 800, OrdersPerCust: 5, LinesPerOrder: 3, Parts: 300}
	Medium = Scale{Name: "medium", Customers: 2400, OrdersPerCust: 7, LinesPerOrder: 4, Parts: 900}
	Large  = Scale{Name: "large", Customers: 4800, OrdersPerCust: 8, LinesPerOrder: 4, Parts: 1800}
)

// Scales lists the presets in size order.
func Scales() []Scale { return []Scale{Small, Medium, Large} }

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, error) {
	for _, s := range Scales() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scale{}, fmt.Errorf("tpch: unknown scale %q (want small, medium, or large)", name)
}

// vocabulary returns the deterministic word pool. Rank correlates with
// popularity through the Zipf sampler, so low-numbered words become hot
// keywords and the long tail stays cold.
func vocabulary(n int) []string {
	syllables := []string{"ca", "to", "ri", "mun", "del", "sor", "bex", "lin", "qua", "fen",
		"dor", "vel", "tam", "pol", "gri", "hax", "neb", "ost", "ruk", "zam"}
	out := make([]string, n)
	for i := range out {
		w := ""
		x := i + 7
		for len(w) < 4 || x > 0 {
			w += syllables[x%len(syllables)]
			x /= len(syllables)
		}
		out[i] = fmt.Sprintf("%s%d", w, i%97)
	}
	return out
}

// textGen samples comment strings with Zipf-distributed word choice.
type textGen struct {
	words []string
	zipf  *rand.Zipf
	r     *rand.Rand
}

func newTextGen(r *rand.Rand) *textGen {
	words := vocabulary(1500)
	return &textGen{
		words: words,
		zipf:  rand.NewZipf(r, 1.2, 1.0, uint64(len(words)-1)),
		r:     r,
	}
}

// comment produces a 3..3+spread word comment.
func (g *textGen) comment(spread int) string {
	n := 3 + g.r.Intn(spread+1)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += g.words[g.zipf.Uint64()]
	}
	return out
}

var (
	regionNames = []string{"africa", "america", "asia", "europe", "mideast"}
	statuses    = []string{"open", "filled", "pending"}
	shipmodes   = []string{"air", "rail", "ship", "truck", "mail"}
	brands      = []string{"acme", "borel", "colda", "drimm", "eonix"}
	ptypes      = []string{"anodized brass", "burnished copper", "economy tin", "polished steel", "standard nickel"}
)

// Generate builds a database at the given scale. The same (scale, seed)
// always produces the same database.
func Generate(scale Scale, seed int64) *relation.Database {
	r := rand.New(rand.NewSource(seed))
	text := newTextGen(r)
	db := relation.NewDatabase("tpch-" + scale.Name)

	region := relation.NewTable(relation.MustSchema("region",
		relation.Column{Name: "regionkey", Kind: relation.KindInt},
		relation.Column{Name: "rname", Kind: relation.KindString},
		relation.Column{Name: "rcomment", Kind: relation.KindString},
	))
	for i := 0; i < 5; i++ {
		mustAppend(region, relation.Row{
			relation.Int(int64(i)),
			relation.String(regionNames[i]),
			relation.String(text.comment(3)),
		})
	}

	nation := relation.NewTable(relation.MustSchema("nation",
		relation.Column{Name: "nationkey", Kind: relation.KindInt},
		relation.Column{Name: "regionkey", Kind: relation.KindInt},
		relation.Column{Name: "nname", Kind: relation.KindString},
		relation.Column{Name: "ncomment", Kind: relation.KindString},
	))
	for i := 0; i < 25; i++ {
		mustAppend(nation, relation.Row{
			relation.Int(int64(i)),
			relation.Int(int64(i % 5)),
			relation.String(fmt.Sprintf("nation%02d", i)),
			relation.String(text.comment(4)),
		})
	}

	customer := relation.NewTable(relation.MustSchema("customer",
		relation.Column{Name: "custkey", Kind: relation.KindInt},
		relation.Column{Name: "nationkey", Kind: relation.KindInt},
		relation.Column{Name: "cname", Kind: relation.KindString},
		relation.Column{Name: "acctbal", Kind: relation.KindInt},
		relation.Column{Name: "ccomment", Kind: relation.KindString},
	))
	for i := 0; i < scale.Customers; i++ {
		mustAppend(customer, relation.Row{
			relation.Int(int64(i)),
			relation.Int(int64(r.Intn(25))),
			relation.String(fmt.Sprintf("customer%06d", i)),
			relation.Int(int64(r.Intn(1000))),
			relation.String(text.comment(12)),
		})
	}

	orders := relation.NewTable(relation.MustSchema("orders",
		relation.Column{Name: "orderkey", Kind: relation.KindInt},
		relation.Column{Name: "custkey", Kind: relation.KindInt},
		relation.Column{Name: "ostatus", Kind: relation.KindString},
		relation.Column{Name: "odate", Kind: relation.KindString},
		relation.Column{Name: "ocomment", Kind: relation.KindString},
	))
	lineitem := relation.NewTable(relation.MustSchema("lineitem",
		relation.Column{Name: "orderkey", Kind: relation.KindInt},
		relation.Column{Name: "partkey", Kind: relation.KindInt},
		relation.Column{Name: "linenum", Kind: relation.KindInt},
		relation.Column{Name: "qty", Kind: relation.KindInt},
		relation.Column{Name: "price", Kind: relation.KindFloat},
		relation.Column{Name: "shipmode", Kind: relation.KindString},
		relation.Column{Name: "lcomment", Kind: relation.KindString},
	))
	orderkey := int64(0)
	for c := 0; c < scale.Customers; c++ {
		for o := 0; o < scale.OrdersPerCust; o++ {
			mustAppend(orders, relation.Row{
				relation.Int(orderkey),
				relation.Int(int64(c)),
				relation.String(statuses[r.Intn(len(statuses))]),
				relation.String(fmt.Sprintf("19%02d-%02d-%02d", 92+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28))),
				relation.String(text.comment(9)),
			})
			for l := 0; l < scale.LinesPerOrder; l++ {
				mustAppend(lineitem, relation.Row{
					relation.Int(orderkey),
					relation.Int(int64(r.Intn(scale.Parts))),
					relation.Int(int64(l + 1)),
					relation.Int(int64(1 + r.Intn(50))),
					relation.Float(float64(5+r.Intn(495)) + 0.5*float64(r.Intn(2))),
					relation.String(shipmodes[r.Intn(len(shipmodes))]),
					relation.String(text.comment(4)),
				})
			}
			orderkey++
		}
	}

	part := relation.NewTable(relation.MustSchema("part",
		relation.Column{Name: "partkey", Kind: relation.KindInt},
		relation.Column{Name: "pname", Kind: relation.KindString},
		relation.Column{Name: "brand", Kind: relation.KindString},
		relation.Column{Name: "ptype", Kind: relation.KindString},
		relation.Column{Name: "pcomment", Kind: relation.KindString},
	))
	for i := 0; i < scale.Parts; i++ {
		mustAppend(part, relation.Row{
			relation.Int(int64(i)),
			relation.String(fmt.Sprintf("part%05d %s", i, text.comment(1))),
			relation.String(brands[r.Intn(len(brands))]),
			relation.String(ptypes[r.Intn(len(ptypes))]),
			relation.String(text.comment(4)),
		})
	}

	db.AddTable(region)
	db.AddTable(nation)
	db.AddTable(customer)
	db.AddTable(orders)
	db.AddTable(lineitem)
	db.AddTable(part)

	db.AddForeignKey(relation.ForeignKey{FromTable: "nation", FromCol: "regionkey", ToTable: "region", ToCol: "regionkey"})
	db.AddForeignKey(relation.ForeignKey{FromTable: "customer", FromCol: "nationkey", ToTable: "nation", ToCol: "nationkey"})
	db.AddForeignKey(relation.ForeignKey{FromTable: "orders", FromCol: "custkey", ToTable: "customer", ToCol: "custkey"})
	db.AddForeignKey(relation.ForeignKey{FromTable: "lineitem", FromCol: "orderkey", ToTable: "orders", ToCol: "orderkey"})
	db.AddForeignKey(relation.ForeignKey{FromTable: "lineitem", FromCol: "partkey", ToTable: "part", ToCol: "partkey"})
	return db
}

func mustAppend(t *relation.Table, row relation.Row) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}
