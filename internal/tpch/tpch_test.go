package tpch

import (
	"context"
	"sort"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fragindex"
	"repro/internal/relation"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Small, 42)
	b := Generate(Small, 42)
	for _, name := range a.TableNames() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if ta.Len() != tb.Len() {
			t.Fatalf("%s: %d vs %d rows", name, ta.Len(), tb.Len())
		}
		for i := range ta.Rows {
			if relation.CompareRows(ta.Rows[i], tb.Rows[i]) != 0 {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
	c := Generate(Small, 43)
	tc, _ := c.Table("customer")
	ta, _ := a.Table("customer")
	same := true
	for i := range ta.Rows {
		if relation.CompareRows(ta.Rows[i], tc.Rows[i]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical customers")
	}
}

func TestScaleShape(t *testing.T) {
	db := Generate(Small, 1)
	counts := map[string]int{}
	for _, st := range db.Stats() {
		counts[st.Name] = st.Rows
	}
	if counts["region"] != 5 || counts["nation"] != 25 {
		t.Errorf("region/nation = %d/%d", counts["region"], counts["nation"])
	}
	if counts["customer"] != Small.Customers {
		t.Errorf("customers = %d", counts["customer"])
	}
	if counts["orders"] != Small.Customers*Small.OrdersPerCust {
		t.Errorf("orders = %d", counts["orders"])
	}
	if counts["lineitem"] != counts["orders"]*Small.LinesPerOrder {
		t.Errorf("lineitem = %d", counts["lineitem"])
	}
	// The paper's ordering: customer ≪ orders ≪ lineitem.
	if !(counts["customer"] < counts["orders"] && counts["orders"] < counts["lineitem"]) {
		t.Errorf("relative sizes broken: %v", counts)
	}
}

func TestScaleByName(t *testing.T) {
	s, err := ScaleByName("medium")
	if err != nil || s.Name != "medium" {
		t.Errorf("ScaleByName(medium) = %v, %v", s, err)
	}
	if _, err := ScaleByName("giant"); err == nil {
		t.Error("unknown scale should fail")
	}
	if got := len(Scales()); got != 3 {
		t.Errorf("Scales() = %d", got)
	}
}

func TestAppsAnalyzeAndBind(t *testing.T) {
	db := Generate(Small, 7)
	for _, name := range QueryNames() {
		app, err := App(name)
		if err != nil {
			t.Fatalf("App(%s): %v", name, err)
		}
		if app.Name != name {
			t.Errorf("app name = %s, want %s", app.Name, name)
		}
		if err := app.Bind(db); err != nil {
			t.Fatalf("Bind(%s): %v", name, err)
		}
		b, err := app.Bound()
		if err != nil {
			t.Fatal(err)
		}
		if got := len(b.SelAttrs); got != 2 {
			t.Errorf("%s sel attrs = %v", name, b.SelAttrs)
		}
		if _, err := fragindex.SpecFromBound(b); err != nil {
			t.Errorf("%s spec: %v", name, err)
		}
	}
	if _, err := Servlet("Q9"); err == nil {
		t.Error("unknown query should fail")
	}
}

// TestQ1EndToEnd crawls Q1 on a small dataset with both algorithms and
// verifies they agree; Q1's operand relations are tiny so this stays fast.
func TestQ1EndToEnd(t *testing.T) {
	db := Generate(Small, 3)
	app, err := App("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	b, _ := app.Bound()
	ref, err := crawl.Reference(db, b)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	in, err := crawl.Integrated(context.Background(), db, b, crawl.Options{})
	if err != nil {
		t.Fatalf("Integrated: %v", err)
	}
	if len(ref.FragmentTerms) != len(in.FragmentTerms) {
		t.Fatalf("fragment counts differ: %d vs %d", len(ref.FragmentTerms), len(in.FragmentTerms))
	}
	for k, v := range ref.FragmentTerms {
		if in.FragmentTerms[k] != v {
			t.Fatalf("fragment terms differ for a fragment: %d vs %d", v, in.FragmentTerms[k])
		}
	}
	// Q1 fragments are (regionkey, acctbal) pairs — at most 5×1000.
	if len(ref.FragmentTerms) > 5000 {
		t.Errorf("Q1 fragments = %d, want ≤ 5000", len(ref.FragmentTerms))
	}
}

// TestQ2AndQ3ShareFragmentCount verifies Table IV's structural fact: Q2 and
// Q3 have identical selection attributes, hence identical fragment counts,
// while Q3's fragments carry more keywords (part attributes join in).
func TestQ2AndQ3ShareFragmentCount(t *testing.T) {
	db := Generate(Scale{Name: "tiny", Customers: 60, OrdersPerCust: 3, LinesPerOrder: 2, Parts: 40}, 5)
	outs := make(map[string]*crawl.Output)
	for _, name := range []string{"Q2", "Q3"} {
		app, err := App(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Bind(db); err != nil {
			t.Fatal(err)
		}
		b, _ := app.Bound()
		out, err := crawl.Reference(db, b)
		if err != nil {
			t.Fatalf("Reference(%s): %v", name, err)
		}
		outs[name] = out
	}
	if len(outs["Q2"].FragmentTerms) != len(outs["Q3"].FragmentTerms) {
		t.Errorf("fragment counts: Q2 = %d, Q3 = %d — paper says equal",
			len(outs["Q2"].FragmentTerms), len(outs["Q3"].FragmentTerms))
	}
	var sum2, sum3 int64
	for _, v := range outs["Q2"].FragmentTerms {
		sum2 += v
	}
	for _, v := range outs["Q3"].FragmentTerms {
		sum3 += v
	}
	if sum3 <= sum2 {
		t.Errorf("avg keywords: Q3 (%d total) should exceed Q2 (%d total)", sum3, sum2)
	}
}

// TestZipfVocabulary checks the keyword DF distribution is skewed: the most
// frequent word should appear in far more fragments than the median word.
func TestZipfVocabulary(t *testing.T) {
	db := Generate(Small, 11)
	app, err := App("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	b, _ := app.Bound()
	out, err := crawl.Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	dfs := make([]int, 0, len(out.Inverted))
	for _, ps := range out.Inverted {
		dfs = append(dfs, len(ps))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dfs)))
	if len(dfs) < 100 {
		t.Fatalf("vocabulary too small: %d keywords", len(dfs))
	}
	hot, median := dfs[0], dfs[len(dfs)/2]
	if hot < 20*median {
		t.Errorf("DF skew too flat: hot=%d median=%d", hot, median)
	}
}

func TestExecutePageQ2(t *testing.T) {
	db := Generate(Scale{Name: "tiny", Customers: 30, OrdersPerCust: 2, LinesPerOrder: 2, Parts: 20}, 9)
	app, err := App("Q2")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Bind(db); err != nil {
		t.Fatal(err)
	}
	page, err := app.Execute("r=3&l=1&u=50")
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Customer 3 has 2 orders × 2 lines = 4 joined rows.
	if page.Len() != 4 {
		t.Errorf("page rows = %d, want 4", page.Len())
	}
	if !page.Schema.HasColumn("qty") || !page.Schema.HasColumn("cname") {
		t.Errorf("page columns = %v", page.Schema.ColumnNames())
	}
}
