package tpch

import (
	"fmt"

	"repro/internal/webapp"
)

// The three application queries of Table III, written as the servlet-style
// web applications Dash's analyzer reverse-engineers. Q1 touches the small
// relations (region, nation, customer); Q2 the three large ones (customer,
// orders, lineitem); Q3 adds part through a bushy join.
const (
	// Q1Servlet: select * from (R ⨝ N) ⨝ C
	// where R.RID = $r and C.ACCBAL between $min and $max.
	Q1Servlet = `
public class Q1 extends HttpServlet {
  public void doGet(HttpServletRequest q, HttpServletResponse p) {
    String r = q.getParameter("r");
    String min = q.getParameter("l");
    String max = q.getParameter("u");
    Connection cn = DB.connect();
    Query = "SELECT * FROM (region JOIN nation) JOIN customer " +
        "WHERE (region.regionkey = " + r + ") AND (acctbal BETWEEN " + min + " AND " + max + ")";
    ResultSet rs = cn.createStatement().executeQuery(Query);
    output(p, rs);
  }
}`

	// Q2Servlet: select * from (C ⨝ O) ⨝ L
	// where C.CID = $r and L.QTY between $min and $max.
	Q2Servlet = `
public class Q2 extends HttpServlet {
  public void doGet(HttpServletRequest q, HttpServletResponse p) {
    String r = q.getParameter("r");
    String min = q.getParameter("l");
    String max = q.getParameter("u");
    Connection cn = DB.connect();
    Query = "SELECT * FROM (customer JOIN orders) JOIN lineitem " +
        "WHERE (customer.custkey = " + r + ") AND (qty BETWEEN " + min + " AND " + max + ")";
    ResultSet rs = cn.createStatement().executeQuery(Query);
    output(p, rs);
  }
}`

	// Q3Servlet: select * from (C ⨝ O) ⨝ (L ⨝ P)
	// where C.CID = $r and L.QTY between $min and $max.
	Q3Servlet = `
public class Q3 extends HttpServlet {
  public void doGet(HttpServletRequest q, HttpServletResponse p) {
    String r = q.getParameter("r");
    String min = q.getParameter("l");
    String max = q.getParameter("u");
    Connection cn = DB.connect();
    Query = "SELECT * FROM (customer JOIN orders) JOIN (lineitem JOIN part) " +
        "WHERE (customer.custkey = " + r + ") AND (qty BETWEEN " + min + " AND " + max + ")";
    ResultSet rs = cn.createStatement().executeQuery(Query);
    output(p, rs);
  }
}`
)

// QueryNames lists the workload queries in paper order.
func QueryNames() []string { return []string{"Q1", "Q2", "Q3"} }

// Servlet returns the servlet source of a named query.
func Servlet(name string) (string, error) {
	switch name {
	case "Q1":
		return Q1Servlet, nil
	case "Q2":
		return Q2Servlet, nil
	case "Q3":
		return Q3Servlet, nil
	default:
		return "", fmt.Errorf("tpch: unknown query %q (want Q1, Q2, or Q3)", name)
	}
}

// App analyzes a named query's servlet into a web application rooted at a
// synthetic URL.
func App(name string) (*webapp.Application, error) {
	src, err := Servlet(name)
	if err != nil {
		return nil, err
	}
	return webapp.Analyze(src, "http://tpch.example.com/"+name)
}
