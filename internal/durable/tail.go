package durable

// Replication support: the durable layer already owns everything a read
// replica needs — epoch-stamped CRC-framed journal records and versioned
// snapshot generations — so this file exposes them as a cursor API the
// replication transport (internal/replic) serves over HTTP. Three ideas:
//
//   - The durable epoch of a shard is the epoch of its last acknowledged
//     journal record (or the journal base right after a checkpoint). It
//     advances under the shard lock and wakes long-poll tail waiters.
//   - TailFrom reads journal records strictly after a cursor epoch and
//     re-frames them with the journal record codec. The open journal is
//     read capped at its acknowledged extent, so bytes from a failed
//     (unacknowledged, possibly poisoned) append are never replicated.
//   - A cursor older than the oldest retained journal's base epoch is
//     unservable — pruning ate the history — and returns ErrTailTruncated
//     so the replica re-bootstraps from the newest snapshot generation.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"time"

	"repro/internal/crawl"
	"repro/internal/faultfs"
)

// ErrTailTruncated reports a tail cursor that predates the oldest retained
// journal: checkpoint pruning removed the records between the cursor and
// the retained chain, so the only way forward is a fresh snapshot
// bootstrap.
var ErrTailTruncated = errors.New("durable: tail truncated: cursor predates retained journals")

// defaultTailBytes bounds one tail chunk when the caller does not.
const defaultTailBytes = 4 << 20

// SegmentInfo describes one on-disk generation file of a shard.
type SegmentInfo struct {
	Epoch    uint64 `json:"epoch"`
	Size     int64  `json:"size"`
	Open     bool   `json:"open,omitempty"`     // journal currently accepting appends
	Poisoned bool   `json:"poisoned,omitempty"` // unrepaired bytes past the acknowledged extent
}

// ShardDurability is one shard's durability state: its durable epoch and
// segment inventory. Surfaced through Stats.PerShard and the replication
// manifest.
type ShardDurability struct {
	Shard        int           `json:"shard"`
	DurableEpoch uint64        `json:"durable_epoch"`
	Snapshots    []SegmentInfo `json:"snapshots,omitempty"`
	Journals     []SegmentInfo `json:"journals,omitempty"`
	Error        string        `json:"error,omitempty"`
}

// TailRecord is one decoded replication frame: the epoch-stamped delta of
// one acknowledged publish.
type TailRecord struct {
	Epoch uint64
	Delta crawl.Delta
}

// TailChunk is one TailFrom result: zero or more codec frames, ready to
// ship verbatim, plus cursor bookkeeping.
type TailChunk struct {
	// Frames holds Records frames in the journal record codec
	// (length + CRC + epoch-stamped delta payload); ParseTailFrames
	// decodes them.
	Frames  []byte
	Records int
	// Next is the cursor for the next poll: the epoch of the last
	// included record, or the request cursor when nothing qualified.
	Next uint64
	// DurableEpoch is the shard's durable epoch when the chunk was cut;
	// Next < DurableEpoch means more records are immediately available.
	DurableEpoch uint64
}

func (s *Store) checkShard(shard int) error {
	if s.man == nil {
		return fmt.Errorf("%w: %s", ErrNotInitialized, s.dir)
	}
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("durable: shard %d out of range [0,%d)", shard, len(s.shards))
	}
	return nil
}

// DurableEpoch returns a shard's durable epoch: the last acknowledged
// journal record's epoch (the journal base when none followed it).
func (s *Store) DurableEpoch(shard int) (uint64, error) {
	if err := s.checkShard(shard); err != nil {
		return 0, err
	}
	ss := s.shards[shard]
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastEpoch, nil
}

// WaitForEpoch blocks until the shard's durable epoch exceeds after, the
// wait elapses, the ctx is done, or the store closes — the long-poll
// primitive behind tail streaming. It returns the durable epoch observed
// last; the error is non-nil only for ctx cancellation.
func (s *Store) WaitForEpoch(ctx context.Context, shard int, after uint64, wait time.Duration) (uint64, error) {
	if err := s.checkShard(shard); err != nil {
		return 0, err
	}
	ss := s.shards[shard]
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		ss.mu.Lock()
		cur := ss.lastEpoch
		if cur > after {
			ss.mu.Unlock()
			return cur, nil
		}
		if ss.tailWatch == nil {
			ss.tailWatch = make(chan struct{})
		}
		ch := ss.tailWatch
		ss.mu.Unlock()
		select {
		case <-ctx.Done():
			return cur, ctx.Err()
		case <-s.stop:
			return cur, nil
		case <-timer.C:
			return cur, nil
		case <-ch:
		}
	}
}

// SnapshotGens enumerates a shard's snapshot generations, oldest first.
func (s *Store) SnapshotGens(shard int) ([]SegmentInfo, error) {
	if err := s.checkShard(shard); err != nil {
		return nil, err
	}
	return s.segmentList(s.shards[shard].dir, snapPrefix, snapSuffix)
}

func (s *Store) segmentList(dir, prefix, suffix string) ([]SegmentInfo, error) {
	gens, err := listGens(s.fs, dir, prefix, suffix)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(gens))
	for _, g := range gens {
		seg := SegmentInfo{Epoch: g.epoch}
		if fi, serr := s.fs.Stat(g.path); serr == nil {
			seg.Size = fi.Size()
		}
		out = append(out, seg)
	}
	return out, nil
}

// ShardDurability reports one shard's durable epoch and segment inventory.
// Enumeration failures land in the Error field rather than failing the
// call — this feeds stats endpoints, which must not go dark with the disk.
func (s *Store) ShardDurability(shard int) ShardDurability {
	sd := ShardDurability{Shard: shard}
	if err := s.checkShard(shard); err != nil {
		sd.Error = err.Error()
		return sd
	}
	ss := s.shards[shard]
	ss.mu.Lock()
	sd.DurableEpoch = ss.lastEpoch
	var openPath string
	var openSeg SegmentInfo
	if ss.j != nil {
		openPath = ss.j.path
		openSeg = SegmentInfo{
			Epoch:    ss.j.baseEpoch,
			Size:     ss.j.size,
			Open:     true,
			Poisoned: ss.j.poisoned,
		}
	}
	ss.mu.Unlock()
	if snaps, err := s.segmentList(ss.dir, snapPrefix, snapSuffix); err != nil {
		sd.Error = err.Error()
	} else {
		sd.Snapshots = snaps
	}
	wals, err := s.segmentList(ss.dir, walPrefix, walSuffix)
	if err != nil {
		sd.Error = err.Error()
		return sd
	}
	for i := range wals {
		if filepath.Join(ss.dir, walName(wals[i].Epoch)) == openPath {
			wals[i] = openSeg
		}
	}
	sd.Journals = wals
	return sd
}

// OpenSnapshot opens one snapshot generation read-only through the
// filesystem seam, returning the file and its size. The caller owns the
// close. The file is a ReadSeeker, so HTTP range requests can resume an
// interrupted bootstrap fetch mid-file.
func (s *Store) OpenSnapshot(shard int, epoch uint64) (faultfs.File, int64, error) {
	if err := s.checkShard(shard); err != nil {
		return nil, 0, err
	}
	path := filepath.Join(s.shards[shard].dir, snapName(epoch))
	fi, err := s.fs.Stat(path)
	if err != nil {
		return nil, 0, err
	}
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// TailFrom cuts one tail chunk: every acknowledged journal record with
// epoch strictly greater than from, oldest first, re-framed with the
// record codec, up to roughly maxBytes (at least one record always fits).
// A cursor older than the retained chain returns ErrTailTruncated.
//
// The open journal is read capped at its acknowledged extent as sampled
// under the shard lock, so a poisoned journal's garbage suffix and any
// record whose fsync never completed are invisible to replicas — a replica
// can never get ahead of what the leader acknowledged durable.
func (s *Store) TailFrom(ctx context.Context, shard int, from uint64, maxBytes int) (*TailChunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.checkShard(shard); err != nil {
		return nil, err
	}
	if maxBytes <= 0 {
		maxBytes = defaultTailBytes
	}
	ss := s.shards[shard]

	// Sample a consistent view under the shard lock: the segment listing,
	// the open journal's identity, and its acknowledged extent. Records
	// appended after the sample ride the next poll.
	ss.mu.Lock()
	durable := ss.lastEpoch
	var openPath string
	var openSize int64
	if ss.j != nil {
		openPath = ss.j.path
		openSize = ss.j.size
	}
	wals, err := listGens(s.fs, ss.dir, walPrefix, walSuffix)
	ss.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if len(wals) == 0 {
		return nil, fmt.Errorf("durable: shard %d has no journals", shard)
	}
	if from < wals[0].epoch {
		return nil, fmt.Errorf("%w (cursor %d, oldest retained base %d)", ErrTailTruncated, from, wals[0].epoch)
	}

	chunk := &TailChunk{Next: from, DurableEpoch: durable}
	for k, w := range wals {
		// A journal with base b holds records in (b, nextBase]; skip any
		// the cursor already covers.
		if k+1 < len(wals) && wals[k+1].epoch <= from {
			continue
		}
		b, rerr := s.fs.ReadFile(w.path)
		if rerr != nil {
			return nil, rerr
		}
		if w.path == openPath && int64(len(b)) > openSize {
			b = b[:openSize]
		}
		scan, perr := parseJournal(b, filepath.Base(w.path), false)
		if perr != nil {
			return nil, perr
		}
		for _, rec := range scan.records {
			if rec.epoch <= chunk.Next {
				continue
			}
			if chunk.Records > 0 && len(chunk.Frames) >= maxBytes {
				return chunk, nil
			}
			chunk.Frames = AppendTailFrame(chunk.Frames, rec.epoch, rec.delta)
			chunk.Records++
			chunk.Next = rec.epoch
		}
	}
	return chunk, nil
}

// AppendTailFrame appends one record in the journal record codec: length,
// payload CRC, then epoch-stamped encoded delta — byte-compatible with
// what journal appends write after the file header.
func AppendTailFrame(buf []byte, epoch uint64, del crawl.Delta) []byte {
	payload := binary.LittleEndian.AppendUint64(nil, epoch)
	payload = appendDelta(payload, del)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// ParseTailFrames decodes a chunk of tail frames. Strict: a short, torn,
// or checksum-failing frame is an error — the transport delivers whole
// chunks or nothing, so every defect is corruption, not a crash artifact.
func ParseTailFrames(b []byte) ([]TailRecord, error) {
	var out []TailRecord
	off := int64(0)
	total := int64(len(b))
	for off < total {
		if total-off < recHeaderSize {
			return nil, fmt.Errorf("%w: tail frame: partial header at %d", ErrCorruptJournal, off)
		}
		length := int64(binary.LittleEndian.Uint32(b[off:]))
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if length > maxRecordSize {
			return nil, fmt.Errorf("%w: tail frame: implausible length %d at %d", ErrCorruptJournal, length, off)
		}
		if total-off-recHeaderSize < length {
			return nil, fmt.Errorf("%w: tail frame: partial payload at %d", ErrCorruptJournal, off)
		}
		payload := b[off+recHeaderSize : off+recHeaderSize+length]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: tail frame: checksum mismatch at %d", ErrCorruptJournal, off)
		}
		if length < 8 {
			return nil, fmt.Errorf("%w: tail frame: too short for an epoch at %d", ErrCorruptJournal, off)
		}
		epoch := binary.LittleEndian.Uint64(payload[:8])
		del, derr := decodeDelta(payload[8:])
		if derr != nil {
			return nil, fmt.Errorf("%w: tail frame at %d: %v", ErrCorruptJournal, off, derr)
		}
		if n := len(out); n > 0 && epoch <= out[n-1].Epoch {
			return nil, fmt.Errorf("%w: tail frame: non-monotonic epoch %d at %d", ErrCorruptJournal, epoch, off)
		}
		out = append(out, TailRecord{Epoch: epoch, Delta: del})
		off += recHeaderSize + length
	}
	return out, nil
}
