package durable

// Durability state machine. The store is normally *healthy*: appends and
// checkpoints that hit transient disk faults retry in place with capped
// exponential backoff + jitter. Once RetryPolicy.FailureThreshold
// consecutive operations fail even after their retries, the store trips
// to *degraded*: reads are unaffected (snapshots already serve from
// memory), but every durable mutation fails fast with ErrDegraded — no
// new bytes are risked on a disk that just proved unreliable. A
// background prober then re-tests the data directory on a backed-off
// schedule; when a probe succeeds, recovery seals any poisoned journal
// (truncating back to the acknowledged extent), writes a fresh forced
// checkpoint from the live index via the installed BaselineFunc, rotates
// every journal past the poisoned segment, and the store returns to
// healthy — all without a restart and without a read ever blocking.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fragindex"
)

// Typed lifecycle errors the dash facade re-exports.
var (
	// ErrClosed marks durable operations attempted after Close — the
	// typed replacement for raw "file already closed" fd errors.
	ErrClosed = errors.New("durable: store closed")
	// ErrDegraded marks durable mutations refused in degraded mode.
	// Searches keep serving published snapshots; writes fail fast until
	// the prober restores the data directory to service.
	ErrDegraded = errors.New("durable: durability degraded")
)

// State names the durability state machine's two states.
type State string

const (
	// StateHealthy: appends and checkpoints reach stable storage
	// (retrying transient faults in place).
	StateHealthy State = "healthy"
	// StateDegraded: the data dir failed repeatedly; mutations fail fast
	// with ErrDegraded while the prober works on automatic recovery.
	StateDegraded State = "degraded"
)

// RetryPolicy tunes durability retry/backoff and degraded-mode probing.
// The zero value means defaults everywhere.
type RetryPolicy struct {
	// MaxRetries is how many times a failed append/checkpoint is retried
	// before the failure counts toward degradation (default 2; negative
	// disables retries).
	MaxRetries int
	// Backoff is the delay before the first retry (default 5ms); each
	// subsequent retry doubles it, capped at MaxBackoff (default 100ms),
	// with up to 50% jitter added.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// FailureThreshold is how many consecutive operations must fail
	// (after their retries) before the store degrades (default 2).
	FailureThreshold int
	// ProbeInterval is the delay before the first degraded-mode probe
	// (default 500ms); failed probes back off exponentially up to
	// MaxProbeInterval (default 5s).
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	} else if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff <= 0 {
		p.Backoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff < p.Backoff {
		p.MaxBackoff = p.Backoff
	}
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = 2
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = 500 * time.Millisecond
	}
	if p.MaxProbeInterval <= 0 {
		p.MaxProbeInterval = 5 * time.Second
	}
	if p.MaxProbeInterval < p.ProbeInterval {
		p.MaxProbeInterval = p.ProbeInterval
	}
	return p
}

// BaselineFunc supplies a shard's current state for the fresh checkpoint
// degraded-mode recovery writes. The dash facade installs one that dumps
// the live index; the builder rolls every failed publish back, so the
// dump is exactly the last acknowledged state.
type BaselineFunc func(ctx context.Context, shard int) (*fragindex.Dump, error)

// SetBaseline installs the recovery baseline provider. Without one, a
// poisoned journal keeps the store degraded (a standalone store has no
// way to re-checkpoint state it does not hold).
func (s *Store) SetBaseline(fn BaselineFunc) { s.baseline.Store(fn) }

// State reports the durability state machine's current state.
func (s *Store) State() State {
	if s.degraded.Load() {
		return StateDegraded
	}
	return StateHealthy
}

// DegradedErr returns nil while healthy, or the typed fail-fast error
// (wrapping ErrDegraded) mutations must return while degraded.
func (s *Store) DegradedErr() error {
	if !s.degraded.Load() {
		return nil
	}
	if msg, ok := s.lastFault.Load().(string); ok && msg != "" {
		return fmt.Errorf("%w (last fault: %s)", ErrDegraded, msg)
	}
	return ErrDegraded
}

// NextProbeIn reports how long until the prober's next data-dir test
// (zero while healthy) — the Retry-After hint for degraded writes.
func (s *Store) NextProbeIn() time.Duration {
	at := s.nextProbeAt.Load()
	if at == 0 {
		return 0
	}
	d := time.Until(time.Unix(0, at))
	if d < 0 {
		return 0
	}
	return d
}

// withRetry runs one durable operation under the retry schedule: capped
// exponential backoff with jitter between attempts. Success resets the
// consecutive-failure count; exhausting the retries records the failure
// and, at the threshold, trips degraded mode. Retrying stops early when
// the journal is poisoned (re-appending cannot help) or the caller's ctx
// is done.
func (s *Store) withRetry(ctx context.Context, op func() error) error {
	backoff := s.retry.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			s.consecFails.Store(0)
			return nil
		}
		if errors.Is(err, errPoisoned) || ctx.Err() != nil || attempt >= s.retry.MaxRetries {
			break
		}
		s.retries.Add(1)
		delay := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-s.stop:
			t.Stop()
		case <-t.C:
		}
		backoff = min(2*backoff, s.retry.MaxBackoff)
	}
	s.opFailed(err)
	return err
}

// opFailed records one operation failure (post-retry) and trips degraded
// mode at the threshold.
func (s *Store) opFailed(err error) {
	s.lastFault.Store(err.Error())
	if s.consecFails.Add(1) >= uint64(s.retry.FailureThreshold) {
		s.degrade()
	}
}

// sweepFailed is the interval-sync analogue of opFailed, counted
// separately so successful page-cache appends between failing sweeps
// cannot mask a dying disk.
func (s *Store) sweepFailed(err error) {
	s.lastFault.Store(err.Error())
	if s.sweepConsec.Add(1) >= uint64(s.retry.FailureThreshold) {
		s.degrade()
	}
}

// degrade trips the state machine (idempotent) and wakes the prober.
func (s *Store) degrade() {
	if !s.degraded.CompareAndSwap(false, true) {
		return
	}
	s.degradations.Add(1)
	now := time.Now()
	s.degradedAt.Store(now.UnixNano())
	s.nextProbeAt.Store(now.Add(s.retry.ProbeInterval).UnixNano())
	select {
	case s.probeWake <- struct{}{}:
	default:
	}
}

// markRecovered returns the machine to healthy after a successful
// probe + baseline re-checkpoint.
func (s *Store) markRecovered() {
	s.consecFails.Store(0)
	s.sweepConsec.Store(0)
	s.nextProbeAt.Store(0)
	s.degradedAt.Store(0)
	s.degraded.Store(false)
	s.recoveries.Add(1)
}

// startProber launches the degraded-mode prober goroutine (idle until
// the first degradation wakes it).
func (s *Store) startProber() {
	s.proberOnce.Do(func() {
		s.wg.Add(1)
		go s.proberLoop()
	})
}

// proberLoop sleeps until a degradation wakes it, then probes the data
// dir on a backed-off schedule; each published next-probe time is what
// serving layers derive Retry-After from. A successful probe triggers
// recovery; recovery failures (the disk answered the probe but not the
// checkpoint) back off and re-probe.
func (s *Store) proberLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.probeWake:
		}
		interval := s.retry.ProbeInterval
		for s.degraded.Load() {
			t := time.NewTimer(time.Until(time.Unix(0, s.nextProbeAt.Load())))
			select {
			case <-s.stop:
				t.Stop()
				return
			case <-t.C:
			}
			s.probes.Add(1)
			interval = min(2*interval, s.retry.MaxProbeInterval)
			s.nextProbeAt.Store(time.Now().Add(interval).UnixNano())
			if err := s.probe(); err != nil {
				s.probeFails.Add(1)
				s.lastFault.Store(err.Error())
				continue
			}
			// The prober owns no caller context: it outlives every request
			// and is cancelled through s.stop at Close instead.
			//lint:ignore ctxfirst background prober has no caller to inherit a deadline from; Close cancels it via the stop channel
			ctx := context.Background()
			if err := s.recoverFromDegraded(ctx); err != nil {
				s.probeFails.Add(1)
				s.lastFault.Store(err.Error())
				continue
			}
			s.markRecovered()
		}
	}
}

// probe re-tests the data directory end to end: create, write, fsync,
// remove. The file carries the temp suffix so a crash mid-probe is swept
// like any other temp leftover.
func (s *Store) probe() error {
	path := filepath.Join(s.dir, "probe.tmp")
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("dash durability probe\n")); err != nil {
		//lint:ignore droppederr already failing: the probe-write error is returned; close is best-effort fd cleanup
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore droppederr already failing: the probe-sync error is returned; close is best-effort fd cleanup
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.Remove(path)
}

// recoverFromDegraded restores full service after a successful probe:
// per shard, seal the poisoned journal at the acknowledged extent, write
// a forced fresh checkpoint from the baseline provider's dump, and
// rotate to a new journal — re-establishing the recovery baseline past
// the poisoned segment. Without a baseline provider only intact journals
// can return to service.
func (s *Store) recoverFromDegraded(ctx context.Context) error {
	fn, _ := s.baseline.Load().(BaselineFunc)
	crashPoint("degraded.recover.before-checkpoint")
	for i := range s.shards {
		if err := s.recoverShardDegraded(ctx, i, fn); err != nil {
			return fmt.Errorf("durable: shard %d: degraded recovery: %w", i, err)
		}
	}
	crashPoint("degraded.recover.after-checkpoint")
	return nil
}

func (s *Store) recoverShardDegraded(ctx context.Context, i int, fn BaselineFunc) error {
	ss := s.shards[i]
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.j == nil {
		return ErrClosed
	}
	if fn == nil {
		if ss.j.poisoned {
			return fmt.Errorf("no baseline provider to re-checkpoint past a %w", errPoisoned)
		}
		return ss.j.sync()
	}
	d, err := fn(ctx, i)
	if err != nil {
		return err
	}
	if err := ss.j.seal(s.fs); err != nil {
		return err
	}
	return s.checkpointLocked(ctx, ss, d, true)
}
