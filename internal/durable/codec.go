package durable

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/crawl"
	"repro/internal/fragment"
)

// The on-disk encodings below follow the crawl package's uvarint idiom:
// length-prefixed strings and uvarint integers, concatenated with no
// framing — framing (lengths, CRCs) belongs to the snapshot sections and
// journal records that carry these payloads.

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

// decoder walks a payload, turning any overrun or malformed varint into an
// error instead of a panic — corrupt bytes must fail loudly, not crash.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated or malformed payload")
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) strings() []string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		// Empty decodes to nil, matching the canonical in-memory form
		// (Dump and Delta never hold empty non-nil slices).
		return nil
	}
	// A corrupt count must not size an allocation; each element consumes at
	// least one byte, so the payload length bounds any honest count.
	if n > uint64(len(d.b))+1 {
		d.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *decoder) done() bool { return d.err == nil && len(d.b) == 0 }

// appendDelta encodes a coalesced delta for the journal. Term-count maps
// are written in sorted keyword order so identical deltas encode to
// identical bytes — corruption tests and byte-level comparisons depend on
// deterministic output.
func appendDelta(dst []byte, del crawl.Delta) []byte {
	dst = appendStrings(dst, del.SelAttrs)
	dst = binary.AppendUvarint(dst, uint64(len(del.Changes)))
	for _, ch := range del.Changes {
		dst = append(dst, byte(ch.Op))
		dst = appendString(dst, ch.ID.Key())
		dst = binary.AppendUvarint(dst, uint64(ch.TotalTerms))
		kws := make([]string, 0, len(ch.TermCounts))
		for kw := range ch.TermCounts {
			kws = append(kws, kw)
		}
		sort.Strings(kws)
		dst = binary.AppendUvarint(dst, uint64(len(kws)))
		for _, kw := range kws {
			dst = appendString(dst, kw)
			dst = binary.AppendUvarint(dst, uint64(ch.TermCounts[kw]))
		}
	}
	return dst
}

// decodeDelta decodes a journal delta payload, validating structure (ops,
// identifier keys, exact consumption) but not index semantics — replay
// against the index is the semantic check.
func decodeDelta(b []byte) (crawl.Delta, error) {
	d := &decoder{b: b}
	var del crawl.Delta
	del.SelAttrs = d.strings()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b))+1 {
		d.fail()
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		if len(d.b) == 0 {
			d.fail()
			break
		}
		op := crawl.ChangeOp(d.b[0])
		d.b = d.b[1:]
		if op != crawl.OpInsertFragment && op != crawl.OpRemoveFragment && op != crawl.OpUpdateFragment {
			return crawl.Delta{}, fmt.Errorf("unknown delta op %d", op)
		}
		key := d.str()
		total := d.uvarint()
		nkw := d.uvarint()
		if d.err != nil {
			break
		}
		if nkw > uint64(len(d.b))+1 {
			d.fail()
			break
		}
		var counts map[string]int64
		if nkw > 0 {
			counts = make(map[string]int64, nkw)
		}
		for j := uint64(0); j < nkw && d.err == nil; j++ {
			kw := d.str()
			tf := d.uvarint()
			if d.err == nil {
				counts[kw] = int64(tf)
			}
		}
		if d.err != nil {
			break
		}
		id, err := fragment.ParseID(key)
		if err != nil {
			return crawl.Delta{}, fmt.Errorf("bad fragment key: %v", err)
		}
		del.Changes = append(del.Changes, crawl.FragmentChange{
			Op: op, ID: id, TermCounts: counts, TotalTerms: int64(total),
		})
	}
	if d.err != nil {
		return crawl.Delta{}, d.err
	}
	if !d.done() {
		return crawl.Delta{}, fmt.Errorf("trailing bytes after delta")
	}
	return del, nil
}
