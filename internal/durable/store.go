package durable

// Package durable persists the serving index: versioned snapshot files
// plus a per-shard write-ahead journal of publish deltas, with recovery
// that survives kill -9 at any point.
//
// Layout under the data directory:
//
//	MANIFEST            format version, shard count, index spec (JSON)
//	shard-0000/
//	    snap-<epoch>.snap   versioned snapshot generations
//	    wal-<epoch>.wal     journal extending the same-epoch snapshot
//	shard-0001/ ...
//
// The MANIFEST is written last during initialization — it is the commit
// point; a directory without one is re-initialized from scratch. Each
// checkpoint writes a new snapshot generation and rotates the journal; the
// two newest generations are retained so a corrupt newest snapshot falls
// back to its predecessor and replays the full journal chain across both.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crawl"
	"repro/internal/faultfs"
	"repro/internal/fragindex"
)

// crashPoint is the crash-injection seam the recovery tests drive: named
// points bracket every durability-critical step (journal append around its
// fsync, snapshot write, checkpoint rotation). In production it is a no-op
// closure; when DASH_CRASHPOINT=<name>:<n> is set in the environment, the
// n-th arrival at the named point dies on the spot — no deferred cleanup,
// no flushes — so the test harness can kill a child process at any chosen
// instant and assert recovery from exactly the bytes that had reached the
// filesystem.
var crashPoint = crashPointFromEnv(os.Getenv("DASH_CRASHPOINT"))

func crashPointFromEnv(spec string) func(string) {
	name, nstr, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return func(string) {}
	}
	n, err := strconv.Atoi(nstr)
	if err != nil || n < 1 {
		return func(string) {}
	}
	var hits atomic.Int64
	return func(point string) {
		if point == name && hits.Add(1) == int64(n) {
			// Exit without running any Go cleanup — the closest portable
			// stand-in for kill -9 (kernel-level file state is identical).
			os.Exit(137)
		}
	}
}

// SyncMode selects when journal appends reach stable storage.
type SyncMode string

const (
	// SyncAlways fsyncs every journal append before the publish swap: an
	// acknowledged apply is durable, full stop.
	SyncAlways SyncMode = "always"
	// SyncInterval batches fsyncs on a timer: acknowledged applies within
	// the last interval may be lost to a crash — the throughput trade.
	SyncInterval SyncMode = "interval"
)

// SyncPolicy configures journal durability.
type SyncPolicy struct {
	Mode SyncMode
	// Interval is the background fsync period for SyncInterval
	// (default 100ms); ignored by SyncAlways.
	Interval time.Duration
}

func (p SyncPolicy) withDefaults() (SyncPolicy, error) {
	if p.Mode == "" {
		p.Mode = SyncAlways
	}
	if p.Mode != SyncAlways && p.Mode != SyncInterval {
		return p, fmt.Errorf("durable: unknown sync mode %q (want %q or %q)", p.Mode, SyncAlways, SyncInterval)
	}
	if p.Interval <= 0 {
		p.Interval = 100 * time.Millisecond
	}
	return p, nil
}

const (
	manifestName   = "MANIFEST"
	manifestFormat = 1
	snapPrefix     = "snap-"
	snapSuffix     = ".snap"
	walPrefix      = "wal-"
	walSuffix      = ".wal"
	corruptSuffix  = ".corrupt"
	// keepSnapshots is the retained generation count: the newest snapshot
	// plus one fallback, with every journal covering them.
	keepSnapshots = 2
)

type manifest struct {
	Format    int      `json:"format"`
	Shards    int      `json:"shards"`
	SelAttrs  []string `json:"sel_attrs"`
	EqAttrs   []string `json:"eq_attrs"`
	RangeAttr string   `json:"range_attr,omitempty"`
}

// ErrNotInitialized marks a data directory with no committed MANIFEST.
var ErrNotInitialized = errors.New("durable: data dir not initialized")

// RecoveryInfo reports what recovering one shard took.
type RecoveryInfo struct {
	Shard int `json:"shard"`
	// SnapshotEpoch is the epoch of the snapshot generation that loaded.
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	// Fallback is true when the newest snapshot failed verification and an
	// older generation served instead.
	Fallback         bool `json:"fallback"`
	CorruptSnapshots int  `json:"corrupt_snapshots,omitempty"`
	ReplayedRecords  int  `json:"replayed_records"`
	// TruncatedTail is true when a torn final journal record was cut.
	TruncatedTail bool `json:"truncated_tail,omitempty"`
	// FinalEpoch is the epoch the shard serves at after replay — the last
	// acknowledged durable publish.
	FinalEpoch uint64 `json:"final_epoch"`
}

// Stats is the durability report surfaced through admin stats.
type Stats struct {
	Dir                 string         `json:"dir"`
	Shards              int            `json:"shards"`
	SyncMode            string         `json:"sync_mode"`
	SyncIntervalMS      int64          `json:"sync_interval_ms,omitempty"`
	JournalBytes        int64          `json:"journal_bytes"`
	JournalRecords      uint64         `json:"journal_records"`
	Checkpoints         uint64         `json:"checkpoints"`
	LastCheckpointEpoch uint64         `json:"last_checkpoint_epoch"`
	Recovered           bool           `json:"recovered"`
	Recovery            []RecoveryInfo `json:"recovery,omitempty"`
	// SyncFailures counts background fsync sweeps that failed under
	// SyncInterval; LastSyncError is the most recent failure. Non-zero
	// means recently acknowledged applies may not be durable yet.
	SyncFailures  uint64 `json:"sync_failures,omitempty"`
	LastSyncError string `json:"last_sync_error,omitempty"`
	// State is the durability state machine's current state ("healthy"
	// or "degraded"), with its transition and retry counters.
	State               string `json:"state"`
	ConsecutiveFailures uint64 `json:"consecutive_failures,omitempty"`
	Degradations        uint64 `json:"degradations,omitempty"`
	Recoveries          uint64 `json:"recoveries,omitempty"`
	Retries             uint64 `json:"retries,omitempty"`
	Probes              uint64 `json:"probes,omitempty"`
	ProbeFailures       uint64 `json:"probe_failures,omitempty"`
	LastFault           string `json:"last_fault,omitempty"`
	// NextProbeInMS is how long until the prober re-tests the data dir
	// (0 while healthy) — what degraded-mode Retry-After derives from.
	NextProbeInMS int64 `json:"next_probe_in_ms,omitempty"`
	DegradedForMS int64 `json:"degraded_for_ms,omitempty"`
	// PerShard enumerates each shard's durable epoch and on-disk segment
	// generations — what the replication surface and bounded-staleness
	// router consume.
	PerShard []ShardDurability `json:"per_shard,omitempty"`
}

// Store owns one data directory: per-shard snapshot generations and open
// journals. Append and Checkpoint are safe for concurrent use across
// shards; within a shard they serialize on the shard lock.
type Store struct {
	dir    string
	policy SyncPolicy
	fs     faultfs.FS
	retry  RetryPolicy

	man    *manifest
	shards []*shardStore

	recovered bool
	recovery  []RecoveryInfo

	checkpoints atomic.Uint64
	lastCkpt    atomic.Uint64

	// syncFailures counts background fsync sweeps that failed;
	// lastSyncErr holds the most recent failure's message. A failing
	// interval sweep narrows the durability window silently, so the
	// condition is surfaced through Stats rather than dropped.
	syncFailures atomic.Uint64
	lastSyncErr  atomic.Value // string

	// Durability state machine (see health.go). consecFails counts
	// consecutive failed appends/checkpoints after their retries;
	// sweepConsec the interval-sync sweeps; either crossing
	// RetryPolicy.FailureThreshold trips degraded mode.
	closed       atomic.Bool
	degraded     atomic.Bool
	consecFails  atomic.Uint64
	sweepConsec  atomic.Uint64
	degradations atomic.Uint64
	recoveries   atomic.Uint64
	retries      atomic.Uint64
	probes       atomic.Uint64
	probeFails   atomic.Uint64
	lastFault    atomic.Value // string
	nextProbeAt  atomic.Int64 // unixnano; 0 while healthy
	degradedAt   atomic.Int64 // unixnano; 0 while healthy
	probeWake    chan struct{}
	baseline     atomic.Value // BaselineFunc

	syncOnce   sync.Once
	proberOnce sync.Once
	closeOnce  sync.Once
	stop       chan struct{}
	wg         sync.WaitGroup
}

type shardStore struct {
	mu  sync.Mutex
	dir string
	j   *journal

	// lastEpoch is the shard's durable epoch: the epoch of the last
	// acknowledged journal record (or the journal base after a checkpoint
	// ran ahead of it). tailWatch, when non-nil, is closed on every
	// advance so long-poll tail readers wake without polling. Both are
	// guarded by mu.
	lastEpoch uint64
	tailWatch chan struct{}
}

// advanceEpochLocked moves the shard's durable epoch forward (never back)
// and wakes any tail waiters. Caller holds ss.mu.
func (ss *shardStore) advanceEpochLocked(e uint64) {
	if e <= ss.lastEpoch {
		return
	}
	ss.lastEpoch = e
	if ss.tailWatch != nil {
		close(ss.tailWatch)
		ss.tailWatch = nil
	}
}

// IsInitialized reports whether dir holds a committed data directory (a
// MANIFEST exists). Callers use it to decide between seeding a fresh
// directory with a built index and recovering the persisted one.
//
//lint:ignore ctxfirst single metadata stat probe; there is no blocking work a context could usefully cancel
func IsInitialized(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Options carries the optional knobs OpenWith accepts beyond the sync
// policy. The zero value is the production default.
type Options struct {
	// FS is the filesystem seam every data-dir operation goes through
	// (faultfs.OS when nil); chaos tests substitute a fault injector.
	FS faultfs.FS
	// Retry tunes durability retry/backoff and degraded-mode probing.
	Retry RetryPolicy
}

// Open opens (or creates) a data directory. A directory without a
// committed MANIFEST comes back fresh: NumShards reports 0 and Init must
// seed it before appends. An initialized directory is ready for Recover.
func Open(ctx context.Context, dir string, policy SyncPolicy) (*Store, error) {
	return OpenWith(ctx, dir, policy, Options{})
}

// OpenWith is Open with explicit Options (filesystem seam, retry policy).
func OpenWith(ctx context.Context, dir string, policy SyncPolicy, opts Options) (*Store, error) {
	policy, err := policy.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		policy:    policy,
		fs:        fsys,
		retry:     opts.Retry.withDefaults(),
		probeWake: make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	b, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("durable: corrupt MANIFEST: %v", err)
	}
	if man.Format != manifestFormat {
		return nil, fmt.Errorf("durable: unsupported MANIFEST format %d", man.Format)
	}
	if man.Shards < 1 {
		return nil, fmt.Errorf("durable: corrupt MANIFEST: shard count %d", man.Shards)
	}
	s.man = &man
	s.shards = make([]*shardStore, man.Shards)
	for i := range s.shards {
		s.shards[i] = &shardStore{dir: s.shardDir(i)}
	}
	return s, nil
}

// Fresh reports whether the directory still needs Init.
func (s *Store) Fresh() bool { return s.man == nil }

// NumShards returns the committed shard count (0 while fresh). A data
// directory pins its topology: reopening must serve the same shard count
// it journaled, since routing is part of what the per-shard files mean.
func (s *Store) NumShards() int {
	if s.man == nil {
		return 0
	}
	return s.man.Shards
}

// Spec returns the committed index spec (zero while fresh).
func (s *Store) Spec() fragindex.Spec {
	if s.man == nil {
		return fragindex.Spec{}
	}
	return fragindex.Spec{
		SelAttrs:  s.man.SelAttrs,
		EqAttrs:   s.man.EqAttrs,
		RangeAttr: s.man.RangeAttr,
	}
}

func (s *Store) shardDir(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%04d", i))
}

func snapName(epoch uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, epoch, snapSuffix)
}

func walName(epoch uint64) string {
	return fmt.Sprintf("%s%016x%s", walPrefix, epoch, walSuffix)
}

// Init seeds a fresh directory: one snapshot + empty journal per dump
// (dump order is shard order), then the MANIFEST as commit point. Any
// half-written state from a previously interrupted Init is wiped first —
// without a MANIFEST nothing was ever acknowledged from this directory.
func (s *Store) Init(ctx context.Context, dumps []*fragindex.Dump) error {
	if s.man != nil {
		return fmt.Errorf("durable: %s is already initialized", s.dir)
	}
	if len(dumps) == 0 {
		return fmt.Errorf("durable: Init with no shard dumps")
	}
	shards := make([]*shardStore, len(dumps))
	for i, d := range dumps {
		// A cancellation between shards leaves no MANIFEST, so the
		// directory stays fresh and a later Init rewipes it.
		if err := ctx.Err(); err != nil {
			return err
		}
		sd := s.shardDir(i)
		if err := s.fs.RemoveAll(sd); err != nil {
			return err
		}
		if err := s.fs.MkdirAll(sd, 0o755); err != nil {
			return err
		}
		if err := writeSnapshot(ctx, s.fs, filepath.Join(sd, snapName(d.Epoch)), d); err != nil {
			return err
		}
		j, err := createJournal(s.fs, filepath.Join(sd, walName(d.Epoch)), d.Epoch)
		if err != nil {
			return err
		}
		if err := syncDir(s.fs, sd); err != nil {
			return err
		}
		shards[i] = &shardStore{dir: sd, j: j, lastEpoch: d.Epoch}
	}
	man := &manifest{
		Format:    manifestFormat,
		Shards:    len(dumps),
		SelAttrs:  dumps[0].SelAttrs,
		EqAttrs:   dumps[0].EqAttrs,
		RangeAttr: dumps[0].RangeAttr,
	}
	if err := s.writeManifest(man); err != nil {
		return err
	}
	s.man = man
	s.shards = shards
	s.lastCkpt.Store(maxDumpEpoch(dumps))
	s.startSyncLoop()
	s.startProber()
	return nil
}

func maxDumpEpoch(dumps []*fragindex.Dump) uint64 {
	var e uint64
	for _, d := range dumps {
		if d.Epoch > e {
			e = d.Epoch
		}
	}
	return e
}

func (s *Store) writeManifest(man *manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, manifestName)
	tmp := path + ".tmp"
	if err := s.fs.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	f, err := s.fs.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore droppederr already failing: the sync error is returned; close is best-effort cleanup of the temp fd
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(s.fs, s.dir)
}

// Recover rebuilds every shard's index: newest verifiable snapshot (with
// fallback to the previous generation on corruption), then the journal
// chain replayed in epoch order, with a torn final record truncated away.
// On success the journals are open for appends and the returned builders
// (in shard order) serve exactly the last acknowledged durable publish.
// Unrecoverable corruption — every snapshot generation bad, a journal
// record damaged mid-chain, a replay that cannot apply — returns an error
// and the store must not serve.
func (s *Store) Recover(ctx context.Context) ([]*fragindex.Index, []RecoveryInfo, error) {
	if s.man == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotInitialized, s.dir)
	}
	if s.recovered {
		return nil, nil, fmt.Errorf("durable: %s already recovered", s.dir)
	}
	idxs := make([]*fragindex.Index, len(s.shards))
	infos := make([]RecoveryInfo, len(s.shards))
	for i := range s.shards {
		// Replay can be long (the whole retained journal chain); a
		// cancellation between shards aborts recovery with nothing
		// served and the on-disk state untouched.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		idx, info, err := s.recoverShard(ctx, i)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: shard %d: %w", i, err)
		}
		idxs[i] = idx
		infos[i] = info
	}
	s.recovered = true
	s.recovery = infos
	var maxSnap uint64
	for _, info := range infos {
		if info.SnapshotEpoch > maxSnap {
			maxSnap = info.SnapshotEpoch
		}
	}
	s.lastCkpt.Store(maxSnap)
	s.startSyncLoop()
	s.startProber()
	return idxs, infos, nil
}

// gen is one generation file (snapshot or journal) keyed by epoch.
type gen struct {
	epoch uint64
	path  string
}

func listGens(fsys faultfs.FS, dir, prefix, suffix string) ([]gen, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []gen
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		epoch, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
		if err != nil {
			continue
		}
		out = append(out, gen{epoch: epoch, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].epoch < out[j].epoch })
	return out, nil
}

// sweepTemps removes stale temp files a crash mid-write left behind.
func sweepTemps(fsys faultfs.FS, dir string) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			//lint:ignore droppederr best-effort cleanup of crash leftovers; a stale temp file is harmless and reswept next recovery
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

func (s *Store) recoverShard(ctx context.Context, i int) (*fragindex.Index, RecoveryInfo, error) {
	ss := s.shards[i]
	info := RecoveryInfo{Shard: i}
	sweepTemps(s.fs, ss.dir)

	snaps, err := listGens(s.fs, ss.dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, info, err
	}
	if len(snaps) == 0 {
		return nil, info, fmt.Errorf("%w: no snapshot generations", ErrCorruptSnapshot)
	}
	// Newest verifiable snapshot wins; a corrupt generation is set aside
	// (renamed for post-mortem) and the previous one tried.
	var idx *fragindex.Index
	var snapEpoch uint64
	var snapErrs []error
	for k := len(snaps) - 1; k >= 0; k-- {
		d, rerr := readSnapshot(ctx, s.fs, snaps[k].path)
		if rerr == nil {
			var built *fragindex.Index
			if built, rerr = fragindex.Restore(d); rerr == nil {
				idx = built
				snapEpoch = d.Epoch
				break
			}
		}
		snapErrs = append(snapErrs, rerr)
		info.CorruptSnapshots++
		//lint:ignore droppederr best-effort post-mortem set-aside; if the rename fails the corrupt file is simply retried (and re-rejected) next recovery
		s.fs.Rename(snaps[k].path, snaps[k].path+corruptSuffix)
	}
	if idx == nil {
		return nil, info, fmt.Errorf("unrecoverable: every snapshot generation failed verification: %v", errors.Join(snapErrs...))
	}
	info.SnapshotEpoch = snapEpoch
	info.Fallback = info.CorruptSnapshots > 0

	// Replay the whole retained journal chain in ascending epoch order,
	// skipping records the snapshot already contains. Only the newest
	// journal may carry a torn tail; older journals were sealed by the
	// checkpoint that rotated them.
	wals, err := listGens(s.fs, ss.dir, walPrefix, walSuffix)
	if err != nil {
		return nil, info, err
	}
	cur := snapEpoch
	for k, w := range wals {
		newest := k == len(wals)-1
		scan, serr := readJournal(s.fs, w.path, newest)
		if serr != nil {
			return nil, info, serr
		}
		for _, rec := range scan.records {
			if rec.epoch <= cur {
				continue
			}
			if aerr := applyToBuilder(idx, rec.delta); aerr != nil {
				return nil, info, fmt.Errorf("%w: %s: replaying epoch %d: %v",
					ErrCorruptJournal, filepath.Base(w.path), rec.epoch, aerr)
			}
			cur = rec.epoch
			info.ReplayedRecords++
		}
		if !newest {
			continue
		}
		// Seal the tail: cut a torn suffix, then reopen for appends.
		if scan.torn {
			info.TruncatedTail = true
		}
		if scan.validSize < walHeaderSize {
			// Torn during creation — recreate with the epoch from its name.
			j, jerr := createJournal(s.fs, w.path, w.epoch)
			if jerr != nil {
				return nil, info, jerr
			}
			ss.j = j
		} else {
			if scan.torn {
				if terr := s.fs.Truncate(w.path, scan.validSize); terr != nil {
					return nil, info, terr
				}
			}
			j, jerr := openJournal(s.fs, w.path, scan.baseEpoch, scan.validSize, uint64(len(scan.records)))
			if jerr != nil {
				return nil, info, jerr
			}
			if scan.torn {
				if serr := j.f.Sync(); serr != nil {
					//lint:ignore droppederr already failing: the sync error aborts recovery; close is best-effort fd cleanup
					j.f.Close()
					return nil, info, serr
				}
			}
			ss.j = j
		}
	}
	if ss.j == nil {
		// No journal survived (possible only through external deletion);
		// open a fresh one at the recovered epoch so appends can proceed.
		j, jerr := createJournal(s.fs, filepath.Join(ss.dir, walName(cur)), cur)
		if jerr != nil {
			return nil, info, jerr
		}
		ss.j = j
	}
	if err := syncDir(s.fs, ss.dir); err != nil {
		return nil, info, err
	}
	idx.SetEpoch(cur)
	info.FinalEpoch = cur
	ss.advanceEpochLocked(cur)
	return idx, info, nil
}

// applyToBuilder replays one journaled delta against a recovering builder.
// Journaled deltas folded successfully before they were written, so any
// replay failure indicates the journal does not match the snapshot chain.
func applyToBuilder(idx *fragindex.Index, del crawl.Delta) error {
	for _, ch := range del.Changes {
		var err error
		switch ch.Op {
		case crawl.OpInsertFragment:
			_, err = idx.InsertFragment(ch.ID, ch.TermCounts, ch.TotalTerms)
		case crawl.OpRemoveFragment:
			err = idx.RemoveFragment(ch.ID)
		case crawl.OpUpdateFragment:
			err = idx.UpdateFragment(ch.ID, ch.TermCounts, ch.TotalTerms)
		default:
			err = fmt.Errorf("unknown op %v", ch.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Append journals one publish's folded delta for a shard — the write-ahead
// half of the publish hook. Under SyncAlways the record is on stable
// storage when Append returns. The ctx is checked before any bytes are
// written: past that point the append runs to completion, because a
// half-written record would read as a torn tail on recovery.
//
// Transient failures retry in place per the store's RetryPolicy; a
// degraded store fails fast with ErrDegraded and a closed one with
// ErrClosed (see health.go for the state machine).
func (s *Store) Append(ctx context.Context, shard int, del crawl.Delta, epoch uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closed.Load() {
		return fmt.Errorf("%w: append to shard %d", ErrClosed, shard)
	}
	if err := s.DegradedErr(); err != nil {
		return err
	}
	ss := s.shards[shard]
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.j == nil {
		return fmt.Errorf("%w: shard %d has no open journal", ErrClosed, shard)
	}
	err := s.withRetry(ctx, func() error {
		return ss.j.append(del, epoch, s.policy.Mode == SyncAlways)
	})
	if err == nil {
		ss.advanceEpochLocked(epoch)
	}
	return err
}

// Checkpoint writes a shard's current state as a new snapshot generation,
// rotates its journal, and prunes generations beyond the retained two.
// A checkpoint at the journal's own base epoch (nothing published since
// the last one) is a no-op.
//
// Appends for the shard block for the duration; the write-ahead contract
// is never relaxed mid-checkpoint. Crash-safe at every step: the snapshot
// appears atomically, the old journal stays replayable until pruning, and
// pruning never touches the retained generations.
//
// Transient failures retry per the store's RetryPolicy; a degraded store
// fails fast with ErrDegraded and a closed one with ErrClosed.
func (s *Store) Checkpoint(ctx context.Context, shard int, d *fragindex.Dump) error {
	if s.closed.Load() {
		return fmt.Errorf("%w: checkpoint of shard %d", ErrClosed, shard)
	}
	if err := s.DegradedErr(); err != nil {
		return err
	}
	ss := s.shards[shard]
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.j == nil {
		return fmt.Errorf("%w: shard %d has no open journal", ErrClosed, shard)
	}
	return s.withRetry(ctx, func() error {
		return s.checkpointLocked(ctx, ss, d, false)
	})
}

// checkpointLocked is the checkpoint body, shard lock held. Forced mode
// (degraded-mode recovery) skips the no-op guard, recreates the journal
// even at an unchanged epoch, and tolerates close failures on the
// outgoing journal — the snapshot just written supersedes its records.
func (s *Store) checkpointLocked(ctx context.Context, ss *shardStore, d *fragindex.Dump, force bool) error {
	if !force && d.Epoch <= ss.j.baseEpoch && ss.j.records == 0 {
		return nil
	}
	if err := writeSnapshot(ctx, s.fs, filepath.Join(ss.dir, snapName(d.Epoch)), d); err != nil {
		return err
	}
	crashPoint("checkpoint.after-snapshot")
	walPath := filepath.Join(ss.dir, walName(d.Epoch))
	old := ss.j
	if force && walPath == old.path {
		// Nothing was acknowledged past the last checkpoint, so the fresh
		// journal reuses the old one's name: close the old fd before
		// recreating the file under it. ss.j keeps pointing at the stale
		// journal until the new one is adopted; mutations are fail-fast
		// degraded for the duration.
		//lint:ignore droppederr forced rotation recreates this very file and the snapshot above supersedes its records; a close failure must not block recovery
		old.close()
		old = nil
	}
	nj, err := createJournal(s.fs, walPath, d.Epoch)
	if err != nil {
		return err
	}
	if err := syncDir(s.fs, ss.dir); err != nil {
		//lint:ignore droppederr already failing: the directory-sync error is returned; close is best-effort cleanup of the unadopted journal
		nj.f.Close()
		return err
	}
	ss.j = nj
	if old != nil {
		if cerr := old.close(); cerr != nil {
			if !force {
				return cerr
			}
			s.lastFault.Store(cerr.Error())
		}
	}
	crashPoint("checkpoint.before-prune")
	if err := pruneGenerations(s.fs, ss.dir); err != nil {
		return err
	}
	ss.advanceEpochLocked(d.Epoch)
	s.checkpoints.Add(1)
	for {
		cur := s.lastCkpt.Load()
		if d.Epoch <= cur || s.lastCkpt.CompareAndSwap(cur, d.Epoch) {
			break
		}
	}
	return nil
}

// pruneGenerations removes snapshot generations beyond the newest
// keepSnapshots and every journal older than the oldest retained
// snapshot (the journal chain must reach back to any snapshot recovery
// may fall back to).
func pruneGenerations(fsys faultfs.FS, dir string) error {
	snaps, err := listGens(fsys, dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	if len(snaps) <= keepSnapshots {
		return nil
	}
	oldestKept := snaps[len(snaps)-keepSnapshots].epoch
	for _, g := range snaps[:len(snaps)-keepSnapshots] {
		if err := fsys.Remove(g.path); err != nil {
			return err
		}
	}
	wals, err := listGens(fsys, dir, walPrefix, walSuffix)
	if err != nil {
		return err
	}
	for _, g := range wals {
		if g.epoch < oldestKept {
			if err := fsys.Remove(g.path); err != nil {
				return err
			}
		}
	}
	return syncDir(fsys, dir)
}

// Sync flushes every shard's unsynced journal appends — the interval
// policy's sweep, also usable as an explicit barrier.
func (s *Store) Sync() error {
	for _, ss := range s.shards {
		ss.mu.Lock()
		err := error(nil)
		if ss.j != nil {
			err = ss.j.sync()
		}
		ss.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// sweep runs one background fsync pass, recording rather than dropping a
// failure: a failed sweep means applies acknowledged under SyncInterval
// within the window are not yet durable, which operators must be able to
// see (Stats.SyncFailures / Stats.LastSyncError).
func (s *Store) sweep() {
	if err := s.Sync(); err != nil {
		s.syncFailures.Add(1)
		s.lastSyncErr.Store(err.Error())
		s.sweepFailed(err)
	} else {
		s.sweepConsec.Store(0)
	}
}

func (s *Store) startSyncLoop() {
	if s.policy.Mode != SyncInterval {
		return
	}
	s.syncOnce.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(s.policy.Interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.sweep()
				}
			}
		}()
	})
}

// Recovery returns the per-shard recovery report (nil when the directory
// was freshly initialized).
func (s *Store) Recovery() []RecoveryInfo { return s.recovery }

// Stats reports journal sizes and checkpoint/recovery counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Dir:                 s.dir,
		Shards:              s.NumShards(),
		SyncMode:            string(s.policy.Mode),
		Checkpoints:         s.checkpoints.Load(),
		LastCheckpointEpoch: s.lastCkpt.Load(),
		Recovered:           s.recovered,
		Recovery:            s.recovery,
		SyncFailures:        s.syncFailures.Load(),
	}
	if msg, ok := s.lastSyncErr.Load().(string); ok {
		st.LastSyncError = msg
	}
	if s.policy.Mode == SyncInterval {
		st.SyncIntervalMS = s.policy.Interval.Milliseconds()
	}
	st.State = string(s.State())
	st.ConsecutiveFailures = s.consecFails.Load()
	st.Degradations = s.degradations.Load()
	st.Recoveries = s.recoveries.Load()
	st.Retries = s.retries.Load()
	st.Probes = s.probes.Load()
	st.ProbeFailures = s.probeFails.Load()
	if msg, ok := s.lastFault.Load().(string); ok {
		st.LastFault = msg
	}
	st.NextProbeInMS = s.NextProbeIn().Milliseconds()
	if at := s.degradedAt.Load(); at != 0 {
		st.DegradedForMS = time.Since(time.Unix(0, at)).Milliseconds()
	}
	for i, ss := range s.shards {
		ss.mu.Lock()
		if ss.j != nil {
			st.JournalBytes += ss.j.size
			st.JournalRecords += ss.j.records
		}
		ss.mu.Unlock()
		st.PerShard = append(st.PerShard, s.ShardDurability(i))
	}
	return st
}

// Close stops the sync loop and closes every journal, flushing unsynced
// appends first. The store must not be used afterwards.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.stop)
		s.wg.Wait()
		for _, ss := range s.shards {
			ss.mu.Lock()
			if ss.j != nil {
				if cerr := ss.j.close(); cerr != nil && err == nil {
					err = cerr
				}
				ss.j = nil
			}
			ss.mu.Unlock()
		}
	})
	return err
}
