package durable

// Fault-injection suite for the durability state machine: the store
// writes through a faultfs.Injector with programmed fault schedules, so
// every disk-failure behavior — transient retry, degradation, fail-fast,
// journal poisoning, prober-driven recovery — is reproduced exactly and
// deterministically. When DASH_FAULT_ARTIFACT_DIR is set (the CI chaos
// step), each test saves its injector transcript there for post-mortem.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/fragindex"
)

// fastRetry keeps the fault tests quick: one retry, millisecond backoff,
// two strikes to degrade, and a prober that re-tests every 10ms.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		MaxRetries:       1,
		Backoff:          time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		FailureThreshold: 2,
		ProbeInterval:    10 * time.Millisecond,
		MaxProbeInterval: 20 * time.Millisecond,
	}
}

// openFaultStore seeds a fresh store writing through a new injector and
// returns the store, the injector, and the tracked twin of the seeded
// index.
func openFaultStore(t *testing.T, dir string) (*Store, *faultfs.Injector, *fragindex.Index) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS)
	st, err := OpenWith(context.Background(), dir, SyncPolicy{}, Options{FS: inj, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	idx := smallIndex(t, 4)
	track := cloneIndex(t, idx)
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	saveTranscript(t, inj)
	return st, inj, track
}

// saveTranscript writes the injector's fault transcript into
// DASH_FAULT_ARTIFACT_DIR (when set) at test cleanup — the CI chaos
// step's uploaded artifact.
func saveTranscript(t *testing.T, inj *faultfs.Injector) {
	t.Helper()
	base := os.Getenv("DASH_FAULT_ARTIFACT_DIR")
	if base == "" {
		return
	}
	t.Cleanup(func() {
		name := strings.NewReplacer("/", "_", "=", "-").Replace(t.Name()) + ".jsonl"
		f, err := os.OpenFile(filepath.Join(base, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Errorf("fault transcript: %v", err)
			return
		}
		defer f.Close()
		if err := inj.WriteTranscript(f); err != nil {
			t.Errorf("fault transcript: %v", err)
		}
	})
}

// waitForState polls until the store reaches the wanted state (the prober
// runs on wall-clock time) or the deadline passes.
func waitForState(t *testing.T, st *Store, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for st.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("store did not reach %s within %v (stats %+v)", want, within, st.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAppendRetriesTransientFault: a single injected fsync failure is
// absorbed by the retry schedule — the append succeeds, the record is
// durable, and the store stays healthy with the retry counted.
func TestAppendRetriesTransientFault(t *testing.T) {
	dir := t.TempDir()
	st, inj, track := openFaultStore(t, dir)
	defer st.Close()

	inj.SetRules(faultfs.Rule{Op: faultfs.OpSync, Path: walSuffix, Count: 1})
	d := insDelta(fid("new", 100), map[string]int64{"fresh": 2}, 2)
	epoch := applyTracked(t, track, d)
	if err := st.Append(context.Background(), 0, d, epoch); err != nil {
		t.Fatalf("append with one transient sync fault: %v", err)
	}
	stats := st.Stats()
	if stats.State != string(StateHealthy) {
		t.Errorf("state %q after absorbed fault", stats.State)
	}
	if stats.Retries != 1 {
		t.Errorf("retries = %d, want 1", stats.Retries)
	}
	if stats.ConsecutiveFailures != 0 {
		t.Errorf("consecutive failures = %d after success", stats.ConsecutiveFailures)
	}

	// The retried record really is on disk: a cold reopen replays it.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if !reflect.DeepEqual(idxs[0].Dump(), track.Dump()) {
		t.Error("recovered state lost the retried append")
	}
}

// TestStoreDegradesAndFailsFast: persistent faults exhaust the retries of
// FailureThreshold consecutive appends, the store trips to degraded, and
// every further mutation fails fast with ErrDegraded — without touching
// the broken disk again.
func TestStoreDegradesAndFailsFast(t *testing.T) {
	st, inj, track := openFaultStore(t, t.TempDir())
	defer st.Close()

	inj.Break(nil)
	d := insDelta(fid("new", 100), map[string]int64{"fresh": 2}, 2)
	epoch := applyTracked(t, track, d)
	for i := 0; st.State() != StateDegraded; i++ {
		if err := st.Append(context.Background(), 0, d, epoch); err == nil {
			t.Fatal("append succeeded on a broken disk")
		}
		if i > 10 {
			t.Fatalf("no degradation after %d failed appends (stats %+v)", i, st.Stats())
		}
	}
	// Fail-fast mutations must never reach the journal. The background
	// prober legitimately touches probe.tmp while degraded, so count only
	// journal-path operations in the transcript.
	walOps := func() int {
		n := 0
		for _, e := range inj.Transcript() {
			if strings.Contains(e.Path, walSuffix) {
				n++
			}
		}
		return n
	}
	before := walOps()
	if err := st.Append(context.Background(), 0, d, epoch); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded append err = %v, want ErrDegraded", err)
	}
	if err := st.Checkpoint(context.Background(), 0, track.Dump()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded checkpoint err = %v, want ErrDegraded", err)
	}
	if got := walOps(); got != before {
		t.Errorf("fail-fast mutations touched the journal: %d ops grew to %d", before, got)
	}
	stats := st.Stats()
	if stats.State != string(StateDegraded) || stats.Degradations != 1 {
		t.Errorf("stats after degradation: state=%q degradations=%d", stats.State, stats.Degradations)
	}
	if stats.LastFault == "" || stats.NextProbeInMS < 0 {
		t.Errorf("degraded stats missing fault context: %+v", stats)
	}
}

// TestProberRecoversStore is the full cycle at the store level: healthy →
// degraded under a broken disk → disk heals → the prober re-tests, seals,
// re-checkpoints from the installed baseline, and the store returns to
// healthy — then a cold reopen proves the acknowledged state survived and
// the never-acknowledged writes did not sneak in.
func TestProberRecoversStore(t *testing.T) {
	dir := t.TempDir()
	st, inj, track := openFaultStore(t, dir)
	defer st.Close()
	st.SetBaseline(func(context.Context, int) (*fragindex.Dump, error) {
		return track.Dump(), nil
	})

	// One acknowledged append before the disk breaks.
	d1 := insDelta(fid("acked", 1), map[string]int64{"acked": 1}, 1)
	e1 := applyTracked(t, track, d1)
	if err := st.Append(context.Background(), 0, d1, e1); err != nil {
		t.Fatal(err)
	}

	inj.Break(nil)
	// The failed delta is never folded into track: the builder rolls a
	// failed publish back, so the baseline is exactly the acked state.
	bad := insDelta(fid("lost", 2), map[string]int64{"lost": 1}, 1)
	for st.State() != StateDegraded {
		if err := st.Append(context.Background(), 0, bad, e1+1); err == nil {
			t.Fatal("append succeeded on a broken disk")
		}
	}

	inj.Heal()
	waitForState(t, st, StateHealthy, 5*time.Second)
	stats := st.Stats()
	if stats.Recoveries != 1 || stats.Probes == 0 {
		t.Errorf("recovery stats: %+v", stats)
	}
	if stats.Checkpoints == 0 {
		t.Error("recovery did not write the fresh baseline checkpoint")
	}

	// Post-recovery appends work.
	d2 := insDelta(fid("after", 3), map[string]int64{"after": 1}, 1)
	e2 := applyTracked(t, track, d2)
	if err := st.Append(context.Background(), 0, d2, e2); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if !reflect.DeepEqual(idxs[0].Dump(), track.Dump()) {
		t.Error("recovered state diverged from the acknowledged applies")
	}
}

// TestPoisonedJournalSealedOnRecovery: when the append's repair truncate
// also fails, the journal is poisoned — appends stop retrying — and
// recovery seals it at the acknowledged extent before rotating to a
// fresh journal behind the baseline checkpoint.
func TestPoisonedJournalSealedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	st, inj, track := openFaultStore(t, dir)
	defer st.Close()
	st.SetBaseline(func(context.Context, int) (*fragindex.Dump, error) {
		return track.Dump(), nil
	})

	d1 := insDelta(fid("acked", 1), map[string]int64{"acked": 1}, 1)
	e1 := applyTracked(t, track, d1)
	if err := st.Append(context.Background(), 0, d1, e1); err != nil {
		t.Fatal(err)
	}

	// Tear the next journal write mid-record AND fail the repair truncate:
	// garbage sits past the acknowledged extent, so the journal poisons.
	inj.SetRules(
		faultfs.Rule{Op: faultfs.OpWrite, Path: walSuffix, Torn: true, Count: 1},
		faultfs.Rule{Op: faultfs.OpTruncate, Path: walSuffix, Count: 1},
	)
	bad := insDelta(fid("lost", 2), map[string]int64{"lost": 1}, 1)
	if err := st.Append(context.Background(), 0, bad, e1+1); err == nil {
		t.Fatal("torn append reported success")
	}
	// The poisoned journal refuses the retry outright (no second repair
	// attempt) and the failure count walks the store to degraded.
	if err := st.Append(context.Background(), 0, bad, e1+1); err == nil {
		t.Fatal("poisoned journal accepted an append")
	}
	if st.State() != StateDegraded {
		t.Fatalf("state %s after poisoning, want degraded", st.State())
	}

	// The disk is fine again (rules exhausted): recovery must seal the
	// poisoned tail and re-baseline.
	waitForState(t, st, StateHealthy, 5*time.Second)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if !reflect.DeepEqual(idxs[0].Dump(), track.Dump()) {
		t.Error("sealed recovery diverged from the acknowledged applies")
	}
	ri := st2.Recovery()
	if len(ri) != 1 || ri[0].TruncatedTail {
		t.Errorf("reopen saw a torn tail past the seal: %+v", ri)
	}
}

// TestProbeFailuresKeepDegraded: while the disk stays broken the prober
// keeps failing and the store stays degraded, with the probe counters and
// the next-probe schedule visible in Stats.
func TestProbeFailuresKeepDegraded(t *testing.T) {
	st, inj, track := openFaultStore(t, t.TempDir())
	defer st.Close()

	inj.Break(nil)
	d := insDelta(fid("x", 1), map[string]int64{"x": 1}, 1)
	e := applyTracked(t, track, d)
	for st.State() != StateDegraded {
		if err := st.Append(context.Background(), 0, d, e); err == nil {
			t.Fatal("append succeeded on a broken disk")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().ProbeFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no probe failures recorded: %+v", st.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State() != StateDegraded {
		t.Fatal("store recovered while the disk was still broken")
	}
}

// TestClosedStoreTypedErr is the regression test for the typed ErrClosed
// contract: durable mutations on a closed store answer ErrClosed — not a
// raw "file already closed" fd error.
func TestClosedStoreTypedErr(t *testing.T) {
	st, _, track := openFaultStore(t, t.TempDir())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	d := insDelta(fid("x", 1), map[string]int64{"x": 1}, 1)
	if err := st.Append(context.Background(), 0, d, 99); !errors.Is(err, ErrClosed) {
		t.Errorf("append on closed store: err = %v, want ErrClosed", err)
	}
	if err := st.Checkpoint(context.Background(), 0, track.Dump()); !errors.Is(err, ErrClosed) {
		t.Errorf("checkpoint on closed store: err = %v, want ErrClosed", err)
	}
}
