package durable

// Tests for the replication cursor API: durable epochs, tail chunks,
// truncation after pruning, the long-poll primitive, and the frame codec.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/crawl"
	"repro/internal/fragindex"
)

// seedTailStore initializes a one-shard store from a 4-fragment index and
// returns it with the seed epoch (the journal base).
func seedTailStore(t *testing.T, dir string) (*Store, uint64) {
	t.Helper()
	idx := smallIndex(t, 4)
	st, _ := openStore(t, dir, SyncPolicy{})
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		st.Close()
		t.Fatal(err)
	}
	return st, idx.Dump().Epoch
}

// appendN appends n single-insert deltas with consecutive epochs after
// base and returns them in order.
func appendN(t *testing.T, st *Store, base uint64, n int, tag string) []crawl.Delta {
	t.Helper()
	out := make([]crawl.Delta, 0, n)
	for i := 0; i < n; i++ {
		d := insDelta(fid(tag, int64(i)), map[string]int64{fmt.Sprintf("%s%d", tag, i): 1}, 1)
		if err := st.Append(context.Background(), 0, d, base+uint64(i)+1); err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestDurableEpochAdvances: Init seeds the durable epoch at the journal
// base; every Append advances it to the record's epoch.
func TestDurableEpochAdvances(t *testing.T) {
	st, seed := seedTailStore(t, t.TempDir())
	defer st.Close()
	if e, err := st.DurableEpoch(0); err != nil || e != seed {
		t.Fatalf("seed durable epoch = %d, %v; want %d", e, err, seed)
	}
	appendN(t, st, seed, 3, "t")
	if e, _ := st.DurableEpoch(0); e != seed+3 {
		t.Fatalf("post-append durable epoch = %d, want %d", e, seed+3)
	}
	if _, err := st.DurableEpoch(7); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// TestTailFromStream: TailFrom returns exactly the records past the
// cursor, oldest first, and the decoded frames reproduce the appended
// deltas byte-for-byte; a caught-up cursor returns an empty chunk whose
// DurableEpoch equals the cursor.
func TestTailFromStream(t *testing.T) {
	st, seed := seedTailStore(t, t.TempDir())
	defer st.Close()
	deltas := appendN(t, st, seed, 3, "s")

	chunk, err := st.TailFrom(context.Background(), 0, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Records != 3 || chunk.Next != seed+3 || chunk.DurableEpoch != seed+3 {
		t.Fatalf("chunk = %+v", chunk)
	}
	recs, err := ParseTailFrames(chunk.Frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if rec.Epoch != seed+uint64(i)+1 {
			t.Errorf("record %d epoch %d, want %d", i, rec.Epoch, seed+uint64(i)+1)
		}
		if !reflect.DeepEqual(rec.Delta, deltas[i]) {
			t.Errorf("record %d delta diverged:\ngot  %+v\nwant %+v", i, rec.Delta, deltas[i])
		}
	}

	// A mid-stream cursor skips what it already covers.
	chunk, err = st.TailFrom(context.Background(), 0, seed+2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Records != 1 || chunk.Next != seed+3 {
		t.Fatalf("mid-cursor chunk = %+v", chunk)
	}

	// Caught up: empty chunk, cursor unchanged.
	chunk, err = st.TailFrom(context.Background(), 0, seed+3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Records != 0 || chunk.Next != seed+3 || chunk.DurableEpoch != seed+3 {
		t.Fatalf("caught-up chunk = %+v", chunk)
	}
}

// TestTailFromMaxBytes: a tiny byte budget still ships at least one
// record per chunk, and chaining chunks by Next drains the stream.
func TestTailFromMaxBytes(t *testing.T) {
	st, seed := seedTailStore(t, t.TempDir())
	defer st.Close()
	appendN(t, st, seed, 5, "b")

	got := 0
	cursor := seed
	for i := 0; i < 10 && got < 5; i++ {
		chunk, err := st.TailFrom(context.Background(), 0, cursor, 1)
		if err != nil {
			t.Fatal(err)
		}
		if chunk.Records < 1 {
			t.Fatalf("budget starved the chunk at cursor %d", cursor)
		}
		got += chunk.Records
		cursor = chunk.Next
	}
	if got != 5 || cursor != seed+5 {
		t.Fatalf("drained %d records to cursor %d, want 5 to %d", got, cursor, seed+5)
	}
}

// TestTailSpansRotation: a checkpoint rotates the journal; a cursor from
// before the rotation still streams the full record sequence across both
// retained journal files.
func TestTailSpansRotation(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 4)
	track := cloneIndex(t, idx)
	st, _ := openStore(t, dir, SyncPolicy{})
	defer st.Close()
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	seed := idx.Dump().Epoch

	var want []uint64
	for k := 0; k < 3; k++ {
		d := insDelta(fid("pre", int64(k)), map[string]int64{"pre": 1}, 1)
		epoch := applyTracked(t, track, d)
		if err := st.Append(context.Background(), 0, d, epoch); err != nil {
			t.Fatal(err)
		}
		want = append(want, epoch)
	}
	if err := st.Checkpoint(context.Background(), 0, track.Dump()); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		d := insDelta(fid("post", int64(k)), map[string]int64{"post": 1}, 1)
		epoch := applyTracked(t, track, d)
		if err := st.Append(context.Background(), 0, d, epoch); err != nil {
			t.Fatal(err)
		}
		want = append(want, epoch)
	}

	chunk, err := st.TailFrom(context.Background(), 0, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ParseTailFrames(chunk.Frames)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, rec := range recs {
		got = append(got, rec.Epoch)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("epochs across rotation = %v, want %v", got, want)
	}
}

// TestTailTruncatedAfterPrune: once checkpoint retention prunes the
// journals a stale cursor needs, TailFrom reports ErrTailTruncated — the
// signal that forces a replica re-bootstrap.
func TestTailTruncatedAfterPrune(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 4)
	track := cloneIndex(t, idx)
	st, _ := openStore(t, dir, SyncPolicy{})
	defer st.Close()
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	seed := idx.Dump().Epoch

	// keepSnapshots generations plus one: the seed journal must be pruned.
	for round := 0; round <= keepSnapshots+1; round++ {
		for k := 0; k < 2; k++ {
			d := insDelta(fid("r", int64(round*10+k)), map[string]int64{"r": 1}, 1)
			epoch := applyTracked(t, track, d)
			if err := st.Append(context.Background(), 0, d, epoch); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Checkpoint(context.Background(), 0, track.Dump()); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := st.TailFrom(context.Background(), 0, seed, 0); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("stale cursor error = %v, want ErrTailTruncated", err)
	}
	// The current epoch still tails fine.
	cur, _ := st.DurableEpoch(0)
	if _, err := st.TailFrom(context.Background(), 0, cur, 0); err != nil {
		t.Fatalf("fresh cursor failed: %v", err)
	}
}

// TestTailOpenSegmentExtentGuard: garbage appended to the open journal
// file past the acknowledged extent (what a torn or poisoned append
// leaves behind) is invisible to TailFrom — replicas only ever see
// acknowledged records.
func TestTailOpenSegmentExtentGuard(t *testing.T) {
	dir := t.TempDir()
	st, seed := seedTailStore(t, dir)
	defer st.Close()
	appendN(t, st, seed, 2, "g")

	// Find the open journal and append garbage directly, bypassing the
	// store — simulating a failed append's partial write.
	sd := st.ShardDurability(0)
	if len(sd.Journals) == 0 {
		t.Fatal("no journals listed")
	}
	var open SegmentInfo
	for _, j := range sd.Journals {
		if j.Open {
			open = j
		}
	}
	if !open.Open {
		t.Fatal("no open journal in inventory")
	}
	path := filepath.Join(dir, "shard-0000", walName(open.Epoch))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage past the acknowledged extent")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	chunk, err := st.TailFrom(context.Background(), 0, seed, 0)
	if err != nil {
		t.Fatalf("tail over dirty suffix failed: %v", err)
	}
	if chunk.Records != 2 {
		t.Fatalf("chunk shipped %d records, want 2", chunk.Records)
	}
	if _, err := ParseTailFrames(chunk.Frames); err != nil {
		t.Fatalf("frames corrupted by unacknowledged bytes: %v", err)
	}
}

// TestWaitForEpoch: the long-poll primitive wakes on an append, times out
// quietly when nothing happens, and honors ctx cancellation.
func TestWaitForEpoch(t *testing.T) {
	st, seed := seedTailStore(t, t.TempDir())
	defer st.Close()

	// Timeout path: no append, short wait, current epoch back, no error.
	e, err := st.WaitForEpoch(context.Background(), 0, seed, 20*time.Millisecond)
	if err != nil || e != seed {
		t.Fatalf("timeout wait = %d, %v; want %d, nil", e, err, seed)
	}

	// Wake path: an append lands while a waiter is parked.
	done := make(chan struct{})
	var woke uint64
	var werr error
	go func() {
		defer close(done)
		woke, werr = st.WaitForEpoch(context.Background(), 0, seed, 5*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	appendN(t, st, seed, 1, "w")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke on append")
	}
	if werr != nil || woke != seed+1 {
		t.Fatalf("woken wait = %d, %v; want %d, nil", woke, werr, seed+1)
	}

	// Cancellation path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.WaitForEpoch(ctx, 0, seed+1, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait error = %v", err)
	}
}

// TestShardDurabilityInventory: Stats' per-shard block reports the
// durable epoch and the live segment inventory, marking the open journal.
func TestShardDurabilityInventory(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 4)
	track := cloneIndex(t, idx)
	st, _ := openStore(t, dir, SyncPolicy{})
	defer st.Close()
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	d := insDelta(fid("x", 1), map[string]int64{"x": 1}, 1)
	epoch := applyTracked(t, track, d)
	if err := st.Append(context.Background(), 0, d, epoch); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(context.Background(), 0, track.Dump()); err != nil {
		t.Fatal(err)
	}

	full := st.Stats()
	if len(full.PerShard) != 1 {
		t.Fatalf("PerShard count = %d", len(full.PerShard))
	}
	sd := full.PerShard[0]
	if sd.Error != "" {
		t.Fatalf("inventory error: %s", sd.Error)
	}
	if sd.DurableEpoch != epoch {
		t.Errorf("durable epoch %d, want %d", sd.DurableEpoch, epoch)
	}
	if len(sd.Snapshots) != 2 {
		t.Errorf("snapshot inventory %+v, want seed + checkpoint", sd.Snapshots)
	}
	opens := 0
	for _, j := range sd.Journals {
		if j.Open {
			opens++
		}
		if j.Size == 0 {
			t.Errorf("journal %+v reports zero size", j)
		}
	}
	if opens != 1 {
		t.Errorf("%d open journals in inventory, want 1", opens)
	}
}

// TestOpenSnapshotServesBytes: OpenSnapshot hands back the exact on-disk
// generation — decoding what it serves reproduces the checkpoint dump.
func TestOpenSnapshotServesBytes(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 6)
	st, _ := openStore(t, dir, SyncPolicy{})
	defer st.Close()
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	gens, err := st.SnapshotGens(0)
	if err != nil || len(gens) != 1 {
		t.Fatalf("gens = %+v, %v", gens, err)
	}
	f, size, err := st.OpenSnapshot(0, gens[0].Epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		t.Fatal(err)
	}
	dump, err := DecodeSnapshot(b, "served")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dump, idx.Dump()) {
		t.Error("served snapshot decoded to a different dump")
	}
	if _, _, err := st.OpenSnapshot(0, gens[0].Epoch+999); err == nil {
		t.Error("nonexistent generation opened")
	}
}

// TestParseTailFramesRejectsDamage: every class of frame damage — torn
// header, torn payload, flipped byte, non-monotonic epochs — is an error,
// never a silent partial decode.
func TestParseTailFramesRejectsDamage(t *testing.T) {
	var buf []byte
	buf = AppendTailFrame(buf, 10, insDelta(fid("a", 1), map[string]int64{"x": 2}, 2))
	frameBoundary := len(buf) // a cut exactly here is a valid 1-frame stream
	buf = AppendTailFrame(buf, 12, rmDelta(fid("a", 1)))

	if recs, err := ParseTailFrames(buf); err != nil || len(recs) != 2 {
		t.Fatalf("clean parse = %d recs, %v", len(recs), err)
	}
	if recs, err := ParseTailFrames(nil); err != nil || len(recs) != 0 {
		t.Fatalf("empty parse = %d recs, %v", len(recs), err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if cut == frameBoundary {
			continue
		}
		if _, err := ParseTailFrames(buf[:cut]); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("truncation at %d: err = %v", cut, err)
		}
	}
	for i := 0; i < len(buf); i++ {
		dam := append([]byte(nil), buf...)
		dam[i] ^= 0x40
		if _, err := ParseTailFrames(dam); err == nil {
			t.Fatalf("flipped byte %d parsed cleanly", i)
		}
	}

	// Non-monotonic epochs: two individually valid frames out of order.
	var rev []byte
	rev = AppendTailFrame(rev, 12, rmDelta(fid("a", 1)))
	rev = AppendTailFrame(rev, 10, insDelta(fid("a", 1), map[string]int64{"x": 2}, 2))
	if _, err := ParseTailFrames(rev); !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("epoch regression parsed: %v", err)
	}
}
