package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/crawl"
	"repro/internal/faultfs"
)

// Journal file format:
//
//	magic     [8]byte  "DASHWAL1"
//	version   uint32   little-endian
//	baseEpoch uint64   epoch of the snapshot this journal extends
//	headerCRC uint32   CRC-32 (IEEE) of the 20 bytes above
//	records...
//
// Each record:
//
//	length  uint32  payload bytes
//	crc     uint32  CRC-32 (IEEE) of the payload
//	payload         epoch uint64 (little-endian) + encoded delta
//
// A record is appended with one Write and (policy permitting) fsynced
// before the publish swap that makes its delta visible. Crashes therefore
// leave at most a torn suffix: a partial record at end-of-file, which
// replay truncates. A CRC failure on a complete record that is *not* the
// final one cannot come from a torn write — that is corruption, and replay
// refuses it.

const (
	walMagic      = "DASHWAL1"
	walVersion    = 1
	walHeaderSize = 8 + 4 + 8 + 4
	recHeaderSize = 4 + 4
	maxRecordSize = 1 << 28
)

// journal is one shard's open write-ahead log. Not self-locking: the
// owning shardStore serializes access.
type journal struct {
	f         faultfs.File
	path      string
	baseEpoch uint64
	size      int64  // bytes of acknowledged records (header + records)
	records   uint64 // records in file
	dirty     bool   // unsynced appends (interval policy)
	// poisoned marks a journal whose failed append could not be truncated
	// back to the acknowledged extent: bytes of unknown validity sit past
	// size, so further appends would interleave with garbage. A poisoned
	// journal only leaves service through degraded-mode recovery, which
	// seals (re-truncates) it and rotates to a fresh journal.
	poisoned bool
}

// createJournal writes a fresh journal file (truncating any uncommitted
// predecessor at the same path) with a fsynced header, open for appends.
// The caller fsyncs the directory.
func createJournal(fsys faultfs.FS, path string, baseEpoch uint64) (*journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, walHeaderSize)
	hdr = append(hdr, walMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, walVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, baseEpoch)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err := f.Write(hdr); err != nil {
		//lint:ignore droppederr already failing: the header-write error is returned; close is best-effort fd cleanup
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore droppederr already failing: the sync error is returned; close is best-effort fd cleanup
		f.Close()
		return nil, err
	}
	return &journal{f: f, path: path, baseEpoch: baseEpoch, size: walHeaderSize}, nil
}

// openJournal opens an existing, already-verified journal for appends at
// the given size (replay reports the valid extent; anything past it has
// been truncated away).
func openJournal(fsys faultfs.FS, path string, baseEpoch uint64, size int64, records uint64) (*journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		//lint:ignore droppederr already failing: the seek error is returned; close is best-effort fd cleanup
		f.Close()
		return nil, err
	}
	return &journal{f: f, path: path, baseEpoch: baseEpoch, size: size, records: records}, nil
}

// errPoisoned marks append failures on a journal whose tail could not be
// repaired; retrying is pointless until recovery rotates the journal.
var errPoisoned = fmt.Errorf("journal poisoned: unrepaired bytes past the acknowledged extent")

// append writes one record; with syncNow it is fsynced before returning —
// the write-ahead guarantee for the `always` policy. Under `interval` the
// record is only marked dirty and a background sweep fsyncs it.
//
// On failure the record is not acknowledged, so append repairs the file
// back to the acknowledged extent (truncate + re-seek) before returning;
// a clean repair leaves the journal ready for a retry. If the repair
// itself fails the journal is poisoned: the failed record's bytes linger
// past size, and only degraded-mode recovery (seal + rotate behind a
// fresh checkpoint) returns the shard to service.
func (j *journal) append(del crawl.Delta, epoch uint64, syncNow bool) error {
	if j.poisoned {
		return fmt.Errorf("durable: %s: %w", filepath.Base(j.path), errPoisoned)
	}
	payload := binary.LittleEndian.AppendUint64(nil, epoch)
	payload = appendDelta(payload, del)
	rec := make([]byte, 0, recHeaderSize+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if _, err := j.f.Write(rec); err != nil {
		j.repair()
		return err
	}
	crashPoint("journal.append.before-sync")
	if syncNow {
		if err := j.f.Sync(); err != nil {
			// The record reached the file but its durability is unknown;
			// it was never acknowledged, so cut it back out — a retry
			// rewrites it whole (leaving it would double-append the epoch).
			j.repair()
			return err
		}
		crashPoint("journal.append.after-sync")
	} else {
		j.dirty = true
	}
	j.size += int64(len(rec))
	j.records++
	return nil
}

// repair restores the file to the acknowledged extent after a failed
// append: truncate away whatever the failed write left behind and re-seek
// so the next append lands at size. Either step failing poisons the
// journal.
func (j *journal) repair() {
	if err := j.f.Truncate(j.size); err != nil {
		j.poisoned = true
		return
	}
	if _, err := j.f.Seek(j.size, io.SeekStart); err != nil {
		j.poisoned = true
	}
}

// seal makes a poisoned journal's on-disk bytes end exactly at the
// acknowledged extent, trying the (possibly damaged) fd first and the
// path as fallback. Called by degraded-mode recovery with the disk
// reprobed healthy, right before the journal is rotated out.
func (j *journal) seal(fsys faultfs.FS) error {
	if !j.poisoned {
		return nil
	}
	if err := j.f.Truncate(j.size); err != nil {
		if perr := fsys.Truncate(j.path, j.size); perr != nil {
			return fmt.Errorf("durable: sealing %s: %w", filepath.Base(j.path), perr)
		}
	}
	j.poisoned = false
	return nil
}

// sync flushes any unsynced appends (the interval policy's sweep).
func (j *journal) sync() error {
	if !j.dirty {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.dirty = false
	return nil
}

func (j *journal) close() error {
	if err := j.sync(); err != nil {
		//lint:ignore droppederr already failing: the final-sync error (unsynced appends!) is returned; close is best-effort fd cleanup
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// walRecord is one decoded journal record.
type walRecord struct {
	epoch uint64
	delta crawl.Delta
}

// walScan is the result of reading one journal file.
type walScan struct {
	baseEpoch uint64
	records   []walRecord
	validSize int64 // bytes up to and including the last valid record
	torn      bool  // file extends past validSize with a torn suffix
}

// readJournal reads and verifies one journal file.
//
// A torn suffix — a partial header, a partial record, or a CRC failure on
// the *final* record — is reported via torn/validSize when allowTorn is
// set (the newest journal, whose tail a crash can legitimately tear). A
// complete record failing its CRC with more data after it is never a torn
// write, and a torn condition in an older journal means acknowledged
// records vanished from the middle of the chain: both return
// ErrCorruptJournal.
func readJournal(fsys faultfs.FS, path string, allowTorn bool) (*walScan, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseJournal(b, filepath.Base(path), allowTorn)
}

// parseJournal verifies and decodes journal bytes already in memory. The
// tail server uses it directly on a size-capped read of the open journal
// (capped at the acknowledged extent, so unacknowledged bytes past a
// failed append are never parsed, let alone replicated).
func parseJournal(b []byte, name string, allowTorn bool) (*walScan, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrCorruptJournal, name, fmt.Sprintf(format, args...))
	}
	headerOK := len(b) >= walHeaderSize &&
		string(b[:8]) == walMagic &&
		crc32.ChecksumIEEE(b[:walHeaderSize-4]) == binary.LittleEndian.Uint32(b[walHeaderSize-4:walHeaderSize])
	if !headerOK {
		// A header can only be torn by a crash during journal creation, in
		// which case nothing follows it.
		if allowTorn && len(b) <= walHeaderSize {
			return &walScan{validSize: 0, torn: true}, nil
		}
		return nil, corrupt("bad header")
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != walVersion {
		return nil, fmt.Errorf("durable: journal %s: unsupported format version %d", name, v)
	}
	scan := &walScan{
		baseEpoch: binary.LittleEndian.Uint64(b[12:20]),
		validSize: walHeaderSize,
	}
	off := int64(walHeaderSize)
	total := int64(len(b))
	torn := func(format string, args ...any) (*walScan, error) {
		if !allowTorn {
			return nil, corrupt("torn record mid-chain: "+format, args...)
		}
		scan.torn = true
		return scan, nil
	}
	for off < total {
		if total-off < recHeaderSize {
			return torn("partial record header at %d", off)
		}
		length := int64(binary.LittleEndian.Uint32(b[off:]))
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if length > maxRecordSize {
			return nil, corrupt("implausible record length %d at %d", length, off)
		}
		if total-off-recHeaderSize < length {
			return torn("partial record payload at %d", off)
		}
		payload := b[off+recHeaderSize : off+recHeaderSize+length]
		if crc32.ChecksumIEEE(payload) != crc {
			if off+recHeaderSize+length == total {
				return torn("checksum mismatch in final record at %d", off)
			}
			return nil, corrupt("checksum mismatch at %d with valid data after it", off)
		}
		if length < 8 {
			return nil, corrupt("record at %d too short for an epoch", off)
		}
		epoch := binary.LittleEndian.Uint64(payload[:8])
		del, derr := decodeDelta(payload[8:])
		if derr != nil {
			return nil, corrupt("record at %d: %v", off, derr)
		}
		if n := len(scan.records); (n == 0 && epoch <= scan.baseEpoch) ||
			(n > 0 && epoch <= scan.records[n-1].epoch) {
			return nil, corrupt("non-monotonic epoch %d at %d", epoch, off)
		}
		scan.records = append(scan.records, walRecord{epoch: epoch, delta: del})
		off += recHeaderSize + length
		scan.validSize = off
	}
	return scan, nil
}
