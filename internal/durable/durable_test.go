package durable

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/crawl"
	"repro/internal/faultfs"
	"repro/internal/fragindex"
	"repro/internal/fragment"
	"repro/internal/relation"
)

func testSpec() fragindex.Spec {
	return fragindex.Spec{SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v"}
}

func fid(g string, v int64) fragment.ID {
	return fragment.ID{relation.String(g), relation.Int(v)}
}

// smallIndex builds an n-fragment index with overlapping keywords.
func smallIndex(t *testing.T, n int) *fragindex.Index {
	t.Helper()
	idx, err := fragindex.New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		counts := map[string]int64{
			"common":                int64(i%3 + 1),
			fmt.Sprintf("w%d", i):   2,
			fmt.Sprintf("g%d", i%4): 1,
		}
		if _, err := idx.InsertFragment(fid(fmt.Sprintf("p%d", i%4), int64(i)), counts, int64(i%3+4)); err != nil {
			t.Fatal(err)
		}
	}
	return idx
}

func insDelta(id fragment.ID, counts map[string]int64, total int64) crawl.Delta {
	return crawl.Delta{Changes: []crawl.FragmentChange{{
		Op: crawl.OpInsertFragment, ID: id, TermCounts: counts, TotalTerms: total,
	}}}
}

func updDelta(id fragment.ID, counts map[string]int64, total int64) crawl.Delta {
	return crawl.Delta{Changes: []crawl.FragmentChange{{
		Op: crawl.OpUpdateFragment, ID: id, TermCounts: counts, TotalTerms: total,
	}}}
}

func rmDelta(id fragment.ID) crawl.Delta {
	return crawl.Delta{Changes: []crawl.FragmentChange{{Op: crawl.OpRemoveFragment, ID: id}}}
}

// cloneIndex duplicates an index through its canonical dump — the tracked
// twin the recovery tests compare against.
func cloneIndex(t *testing.T, idx *fragindex.Index) *fragindex.Index {
	t.Helper()
	c, err := fragindex.Restore(idx.Dump())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// applyTracked folds a delta into a builder the way a live publish would and
// returns the resulting epoch, mirroring what the journal must reproduce.
func applyTracked(t *testing.T, idx *fragindex.Index, d crawl.Delta) uint64 {
	t.Helper()
	if err := applyToBuilder(idx, d); err != nil {
		t.Fatal(err)
	}
	return idx.Freeze().Epoch()
}

// TestDeltaCodecRoundTrip: encode/decode is lossless and deterministic.
func TestDeltaCodecRoundTrip(t *testing.T) {
	del := crawl.Delta{
		SelAttrs: []string{"g", "v"},
		Changes: []crawl.FragmentChange{
			{Op: crawl.OpInsertFragment, ID: fid("a", 1),
				TermCounts: map[string]int64{"x": 3, "y": 1, "a": 9}, TotalTerms: 13},
			{Op: crawl.OpRemoveFragment, ID: fid("b", 2)},
			{Op: crawl.OpUpdateFragment, ID: fid("c", 3),
				TermCounts: map[string]int64{"z": 1}, TotalTerms: 1},
		},
	}
	b1 := appendDelta(nil, del)
	b2 := appendDelta(nil, del)
	if string(b1) != string(b2) {
		t.Error("same delta encoded to different bytes")
	}
	got, err := decodeDelta(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, del) {
		t.Errorf("round trip changed the delta:\nin  %+v\nout %+v", del, got)
	}
	// Every truncation of a valid payload must error, never panic or
	// succeed.
	for i := 0; i < len(b1); i++ {
		if _, err := decodeDelta(b1[:i]); err == nil {
			t.Errorf("truncation at %d decoded successfully", i)
		}
	}
	if _, err := decodeDelta(append(b1, 0)); err == nil {
		t.Error("trailing byte decoded successfully")
	}
}

// TestSnapshotRoundTrip: WriteSnapshot → ReadSnapshot reproduces the dump
// exactly, including multi-chunk layouts.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 3, 2*fragsPerChunk + 17} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			if n > 100 && testing.Short() {
				t.Skip("large layout in -short")
			}
			d := smallIndex(t, n).Dump()
			d.Epoch = 7
			path := filepath.Join(t.TempDir(), "x.snap")
			if err := WriteSnapshot(context.Background(), path, d); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSnapshot(context.Background(), path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, d) {
				t.Error("snapshot round trip changed the dump")
			}
			if _, err := fragindex.Restore(got); err != nil {
				t.Errorf("restored dump rejected: %v", err)
			}
		})
	}
}

// TestSnapshotCorruptionDetected: flipping any single byte of a snapshot
// file fails verification — nothing decodes silently wrong.
func TestSnapshotCorruptionDetected(t *testing.T) {
	d := smallIndex(t, 12).Dump()
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := WriteSnapshot(context.Background(), path, d); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		b := append([]byte(nil), orig...)
		b[i] ^= 0x40
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(context.Background(), path); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
	// Truncations at every prefix fail too.
	for _, cut := range []int{0, 7, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(context.Background(), path); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("truncation at %d: err = %v, want ErrCorruptSnapshot", cut, err)
		}
	}
}

// TestSnapshotUnsupportedVersion gets its own error, distinct from
// corruption — a newer format must not be "fallback-ed" away from.
func TestSnapshotUnsupportedVersion(t *testing.T) {
	d := smallIndex(t, 2).Dump()
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := WriteSnapshot(context.Background(), path, d); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[8] = 99 // version field
	os.WriteFile(path, b, 0o644)
	_, err := ReadSnapshot(context.Background(), path)
	if err == nil || errors.Is(err, ErrCorruptSnapshot) || !strings.Contains(err.Error(), "unsupported format version") {
		t.Errorf("err = %v, want a distinct unsupported-version error", err)
	}
}

// TestJournalAppendReplay: appended records come back in order with their
// epochs and deltas intact.
func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	j, err := createJournal(faultfs.OS, path, 10)
	if err != nil {
		t.Fatal(err)
	}
	deltas := []crawl.Delta{
		insDelta(fid("a", 1), map[string]int64{"x": 1}, 1),
		updDelta(fid("a", 1), map[string]int64{"x": 2, "y": 1}, 3),
		rmDelta(fid("a", 1)),
	}
	for i, d := range deltas {
		if err := j.append(d, 11+uint64(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	for _, allowTorn := range []bool{true, false} {
		scan, err := readJournal(faultfs.OS, path, allowTorn)
		if err != nil {
			t.Fatal(err)
		}
		if scan.baseEpoch != 10 || scan.torn || len(scan.records) != len(deltas) {
			t.Fatalf("scan = base %d torn %v records %d", scan.baseEpoch, scan.torn, len(scan.records))
		}
		for i, rec := range scan.records {
			if rec.epoch != 11+uint64(i) || !reflect.DeepEqual(rec.delta, deltas[i]) {
				t.Errorf("record %d = epoch %d %+v", i, rec.epoch, rec.delta)
			}
		}
	}
}

// TestJournalTornTail: a partial final record is reported torn (and its
// valid prefix preserved) in the newest journal, but is corruption
// mid-chain.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	j, err := createJournal(faultfs.OS, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(insDelta(fid("a", 1), map[string]int64{"x": 1}, 1), 1, true); err != nil {
		t.Fatal(err)
	}
	if err := j.append(insDelta(fid("a", 2), map[string]int64{"y": 1}, 1), 2, true); err != nil {
		t.Fatal(err)
	}
	full := j.size
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{1, 3, recHeaderSize + 2} {
		if err := os.Truncate(path, full-cut); err != nil {
			t.Fatal(err)
		}
		scan, err := readJournal(faultfs.OS, path, true)
		if err != nil {
			t.Fatal(err)
		}
		if !scan.torn || len(scan.records) != 1 || scan.records[0].epoch != 1 {
			t.Errorf("cut %d: torn %v records %d", cut, scan.torn, len(scan.records))
		}
		if _, err := readJournal(faultfs.OS, path, false); !errors.Is(err, ErrCorruptJournal) {
			t.Errorf("cut %d mid-chain: err = %v, want ErrCorruptJournal", cut, err)
		}
	}
	// Torn during creation: a sub-header file is recoverable only as the
	// newest journal.
	if err := os.WriteFile(path, []byte("DASH"), 0o644); err != nil {
		t.Fatal(err)
	}
	scan, err := readJournal(faultfs.OS, path, true)
	if err != nil || !scan.torn || scan.validSize != 0 {
		t.Errorf("torn header: scan %+v err %v", scan, err)
	}
	if _, err := readJournal(faultfs.OS, path, false); !errors.Is(err, ErrCorruptJournal) {
		t.Errorf("torn header mid-chain: err = %v", err)
	}
}

// TestJournalMidFileCorruption: a CRC failure with valid data after it is
// corruption regardless of allowTorn — a torn write cannot produce it.
func TestJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	j, err := createJournal(faultfs.OS, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(insDelta(fid("a", 1), map[string]int64{"x": 1}, 1), 1, true); err != nil {
		t.Fatal(err)
	}
	firstEnd := j.size
	if err := j.append(insDelta(fid("a", 2), map[string]int64{"y": 1}, 1), 2, true); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[firstEnd-1] ^= 0xff // inside the first record's payload
	os.WriteFile(path, b, 0o644)
	for _, allowTorn := range []bool{true, false} {
		if _, err := readJournal(faultfs.OS, path, allowTorn); !errors.Is(err, ErrCorruptJournal) {
			t.Errorf("allowTorn=%v: err = %v, want ErrCorruptJournal", allowTorn, err)
		}
	}
}

// openStore opens and, when initialized, recovers a store rooted at dir.
func openStore(t *testing.T, dir string, policy SyncPolicy) (*Store, []*fragindex.Index) {
	t.Helper()
	st, err := Open(context.Background(), dir, policy)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fresh() {
		return st, nil
	}
	idxs, _, err := st.Recover(context.Background())
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return st, idxs
}

// TestStoreInitRecover: a seeded store with journaled appends recovers to
// exactly the tracked state — same canonical dump, same epoch.
func TestStoreInitRecover(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 6)
	track := cloneIndex(t, idx)

	st, _ := openStore(t, dir, SyncPolicy{})
	if !st.Fresh() || st.NumShards() != 0 {
		t.Fatal("new dir not fresh")
	}
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	if !IsInitialized(dir) {
		t.Fatal("Init left no MANIFEST")
	}

	deltas := []crawl.Delta{
		insDelta(fid("new", 100), map[string]int64{"fresh": 2}, 2),
		updDelta(fid("p0", 0), map[string]int64{"common": 5}, 5),
		rmDelta(fid("p1", 1)),
	}
	for _, d := range deltas {
		epoch := applyTracked(t, track, d)
		if err := st.Append(context.Background(), 0, d, epoch); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if got := st2.NumShards(); got != 1 {
		t.Fatalf("NumShards = %d", got)
	}
	if !reflect.DeepEqual(st2.Spec(), testSpec()) {
		t.Errorf("recovered spec %+v", st2.Spec())
	}
	want := track.Dump()
	if !reflect.DeepEqual(idxs[0].Dump(), want) {
		t.Error("recovered state diverged from the tracked applies")
	}
	ri := st2.Recovery()
	if len(ri) != 1 || ri[0].ReplayedRecords != len(deltas) || ri[0].Fallback || ri[0].TruncatedTail {
		t.Errorf("recovery info %+v", ri)
	}
	if ri[0].FinalEpoch != want.Epoch {
		t.Errorf("final epoch %d, want %d", ri[0].FinalEpoch, want.Epoch)
	}
	// The reopened journal accepts further appends.
	d := insDelta(fid("later", 1), map[string]int64{"later": 1}, 1)
	if err := st2.Append(context.Background(), 0, d, want.Epoch+5); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCheckpointRotatesAndPrunes: checkpoints create generations,
// retention keeps exactly two snapshots plus covering journals, and
// recovery replays the full retained chain.
func TestStoreCheckpointRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 4)
	track := cloneIndex(t, idx)

	st, _ := openStore(t, dir, SyncPolicy{})
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for k := 0; k < 3; k++ {
			d := insDelta(fid("r", int64(round*10+k)), map[string]int64{fmt.Sprintf("rk%d%d", round, k): 1}, 1)
			epoch := applyTracked(t, track, d)
			if err := st.Append(context.Background(), 0, d, epoch); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Checkpoint(context.Background(), 0, track.Dump()); err != nil {
			t.Fatal(err)
		}
	}
	// One more checkpoint at the same epoch must be a no-op.
	cks := st.Stats().Checkpoints
	if err := st.Checkpoint(context.Background(), 0, track.Dump()); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != cks {
		t.Errorf("no-op checkpoint counted: %d -> %d", cks, got)
	}

	sd := filepath.Join(dir, "shard-0000")
	snaps, _ := listGens(faultfs.OS, sd, snapPrefix, snapSuffix)
	wals, _ := listGens(faultfs.OS, sd, walPrefix, walSuffix)
	if len(snaps) != keepSnapshots {
		t.Errorf("retained %d snapshots, want %d", len(snaps), keepSnapshots)
	}
	for _, w := range wals {
		if w.epoch < snaps[0].epoch {
			t.Errorf("journal %x predates oldest retained snapshot %x", w.epoch, snaps[0].epoch)
		}
	}
	stt := st.Stats()
	if stt.Checkpoints != 4 || stt.LastCheckpointEpoch != track.Dump().Epoch {
		t.Errorf("stats %+v", stt)
	}
	// A post-checkpoint append lands in the new journal and survives.
	d := insDelta(fid("tail", 1), map[string]int64{"tail": 1}, 1)
	epoch := applyTracked(t, track, d)
	if err := st.Append(context.Background(), 0, d, epoch); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if !reflect.DeepEqual(idxs[0].Dump(), track.Dump()) {
		t.Error("recovered state diverged after checkpoint rotation")
	}
}

// TestStoreSnapshotFallback: a corrupt newest snapshot falls back to the
// previous generation, replays the whole journal chain across both, and
// still lands on the exact acknowledged state.
func TestStoreSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 4)
	track := cloneIndex(t, idx)

	st, _ := openStore(t, dir, SyncPolicy{})
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	appendOne := func(name string, v int64) {
		d := insDelta(fid(name, v), map[string]int64{name: 1}, 1)
		epoch := applyTracked(t, track, d)
		if err := st.Append(context.Background(), 0, d, epoch); err != nil {
			t.Fatal(err)
		}
	}
	appendOne("pre", 1)
	if err := st.Checkpoint(context.Background(), 0, track.Dump()); err != nil {
		t.Fatal(err)
	}
	appendOne("post", 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	sd := filepath.Join(dir, "shard-0000")
	snaps, _ := listGens(faultfs.OS, sd, snapPrefix, snapSuffix)
	if len(snaps) != 2 {
		t.Fatalf("have %d snapshots, want 2", len(snaps))
	}
	newest := snaps[1].path
	b, _ := os.ReadFile(newest)
	b[len(b)/2] ^= 0xff
	os.WriteFile(newest, b, 0o644)

	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if !reflect.DeepEqual(idxs[0].Dump(), track.Dump()) {
		t.Error("fallback recovery diverged from the acknowledged state")
	}
	ri := st2.Recovery()[0]
	if !ri.Fallback || ri.CorruptSnapshots != 1 || ri.SnapshotEpoch != snaps[0].epoch {
		t.Errorf("recovery info %+v", ri)
	}
	// The bad generation was set aside for post-mortem, not deleted.
	if _, err := os.Stat(newest + corruptSuffix); err != nil {
		t.Errorf("corrupt snapshot not renamed: %v", err)
	}
}

// TestStoreUnrecoverable: with every snapshot generation corrupt, recovery
// refuses loudly instead of serving partial state.
func TestStoreUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 3)
	st, _ := openStore(t, dir, SyncPolicy{})
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sd := filepath.Join(dir, "shard-0000")
	snaps, _ := listGens(faultfs.OS, sd, snapPrefix, snapSuffix)
	for _, g := range snaps {
		b, _ := os.ReadFile(g.path)
		b[len(b)-1] ^= 0xff
		os.WriteFile(g.path, b, 0o644)
	}
	st2, err := Open(context.Background(), dir, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, _, err := st2.Recover(context.Background()); err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Errorf("Recover = %v, want unrecoverable error", err)
	}
}

// TestStoreCorruptJournalRefusesRecovery: mid-chain journal damage is not a
// torn tail and must refuse recovery.
func TestStoreCorruptJournalRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 3)
	track := cloneIndex(t, idx)
	st, _ := openStore(t, dir, SyncPolicy{})
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	var firstEnd int64
	for k := 0; k < 2; k++ {
		d := insDelta(fid("j", int64(k)), map[string]int64{"j": 1}, 1)
		epoch := applyTracked(t, track, d)
		if err := st.Append(context.Background(), 0, d, epoch); err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			firstEnd = st.Stats().JournalBytes
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sd := filepath.Join(dir, "shard-0000")
	wals, _ := listGens(faultfs.OS, sd, walPrefix, walSuffix)
	b, _ := os.ReadFile(wals[0].path)
	b[firstEnd-1] ^= 0xff
	os.WriteFile(wals[0].path, b, 0o644)

	st2, err := Open(context.Background(), dir, SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, _, err := st2.Recover(context.Background()); !errors.Is(err, ErrCorruptJournal) {
		t.Errorf("Recover = %v, want ErrCorruptJournal", err)
	}
}

// TestStoreTornTailTruncated: a torn final journal record is cut and
// recovery lands on the previous acknowledged epoch; the sealed journal
// accepts appends again.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 3)
	track := cloneIndex(t, idx)
	st, _ := openStore(t, dir, SyncPolicy{})
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	d1 := insDelta(fid("keep", 1), map[string]int64{"keep": 1}, 1)
	e1 := applyTracked(t, track, d1)
	if err := st.Append(context.Background(), 0, d1, e1); err != nil {
		t.Fatal(err)
	}
	acked := track.Dump()
	// The second publish crashes mid-write: simulate by tearing its record.
	d2 := insDelta(fid("torn", 2), map[string]int64{"torn": 1}, 1)
	if err := st.Append(context.Background(), 0, d2, e1+3); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sd := filepath.Join(dir, "shard-0000")
	wals, _ := listGens(faultfs.OS, sd, walPrefix, walSuffix)
	info, _ := os.Stat(wals[0].path)
	if err := os.Truncate(wals[0].path, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	st2, idxs := openStore(t, dir, SyncPolicy{})
	if !reflect.DeepEqual(idxs[0].Dump(), acked) {
		t.Error("torn-tail recovery did not land on the last complete record")
	}
	ri := st2.Recovery()[0]
	if !ri.TruncatedTail || ri.ReplayedRecords != 1 || ri.FinalEpoch != e1 {
		t.Errorf("recovery info %+v", ri)
	}
	// The sealed journal keeps working: append, close, recover again.
	d3 := insDelta(fid("again", 3), map[string]int64{"again": 1}, 1)
	e3 := applyTracked(t, track, d3)
	if err := st2.Append(context.Background(), 0, d3, e3); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, idxs3 := openStore(t, dir, SyncPolicy{})
	defer st3.Close()
	if !reflect.DeepEqual(idxs3[0].Dump(), track.Dump()) {
		t.Error("recovery after sealing diverged")
	}
}

// TestStoreShardedRecovery: per-shard journals recover independently to
// their own epochs.
func TestStoreShardedRecovery(t *testing.T) {
	dir := t.TempDir()
	a, b := smallIndex(t, 3), smallIndex(t, 5)
	ta, tb := cloneIndex(t, a), cloneIndex(t, b)
	st, _ := openStore(t, dir, SyncPolicy{})
	if err := st.Init(context.Background(), []*fragindex.Dump{a.Dump(), b.Dump()}); err != nil {
		t.Fatal(err)
	}
	d := insDelta(fid("onlyb", 9), map[string]int64{"onlyb": 1}, 1)
	epoch := applyTracked(t, tb, d)
	if err := st.Append(context.Background(), 1, d, epoch); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if st2.NumShards() != 2 {
		t.Fatalf("NumShards = %d", st2.NumShards())
	}
	if !reflect.DeepEqual(idxs[0].Dump(), ta.Dump()) {
		t.Error("shard 0 diverged")
	}
	if !reflect.DeepEqual(idxs[1].Dump(), tb.Dump()) {
		t.Error("shard 1 diverged")
	}
	if ri := st2.Recovery(); ri[0].ReplayedRecords != 0 || ri[1].ReplayedRecords != 1 {
		t.Errorf("recovery info %+v", ri)
	}
}

// TestStoreSyncInterval: the interval policy defers fsync (appends are only
// dirty) and Sync flushes; durability of the synced prefix holds across a
// reopen.
func TestStoreSyncInterval(t *testing.T) {
	dir := t.TempDir()
	idx := smallIndex(t, 3)
	track := cloneIndex(t, idx)
	st, _ := openStore(t, dir, SyncPolicy{Mode: SyncInterval, Interval: time.Hour})
	if err := st.Init(context.Background(), []*fragindex.Dump{idx.Dump()}); err != nil {
		t.Fatal(err)
	}
	d := insDelta(fid("iv", 1), map[string]int64{"iv": 1}, 1)
	epoch := applyTracked(t, track, d)
	if err := st.Append(context.Background(), 0, d, epoch); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.SyncMode != string(SyncInterval) || stats.SyncIntervalMS != time.Hour.Milliseconds() {
		t.Errorf("stats %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, idxs := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if !reflect.DeepEqual(idxs[0].Dump(), track.Dump()) {
		t.Error("interval-synced append lost")
	}
}

// TestStoreBadPolicy: unknown sync modes are rejected at Open.
func TestStoreBadPolicy(t *testing.T) {
	if _, err := Open(context.Background(), t.TempDir(), SyncPolicy{Mode: "sometimes"}); err == nil {
		t.Error("unknown sync mode accepted")
	}
}

// TestStoreRecoverGuards: Recover on a fresh store and double-recovery both
// refuse.
func TestStoreRecoverGuards(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncPolicy{})
	if _, _, err := st.Recover(context.Background()); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("fresh Recover = %v, want ErrNotInitialized", err)
	}
	if err := st.Init(context.Background(), []*fragindex.Dump{smallIndex(t, 2).Dump()}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, _ := openStore(t, dir, SyncPolicy{})
	defer st2.Close()
	if _, _, err := st2.Recover(context.Background()); err == nil {
		t.Error("second Recover succeeded")
	}
}

// TestSweepSurfacesSyncFailure pins the background-fsync observability
// contract: an interval-policy sweep that fails must not vanish — it
// increments Stats.SyncFailures and records Stats.LastSyncError, because
// a silently failing sweep means applies acknowledged inside the window
// are not actually durable.
func TestSweepSurfacesSyncFailure(t *testing.T) {
	dir := t.TempDir()
	// An hour-long interval keeps the background loop out of the test's
	// way; sweeps are driven by hand.
	st, err := Open(context.Background(), dir, SyncPolicy{Mode: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(context.Background(), []*fragindex.Dump{smallIndex(t, 2).Dump()}); err != nil {
		t.Fatal(err)
	}
	d := insDelta(fid("s", 1), map[string]int64{"kw": 1}, 1)
	if err := st.Append(context.Background(), 0, d, 2); err != nil {
		t.Fatal(err)
	}

	// A healthy sweep flushes the dirty journal and records nothing.
	st.sweep()
	if got := st.Stats(); got.SyncFailures != 0 || got.LastSyncError != "" {
		t.Fatalf("healthy sweep recorded a failure: %+v", got)
	}

	// Sabotage: dirty the journal again, then close its fd out from
	// under the store so the next fsync fails.
	if err := st.Append(context.Background(), 0, d, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.shards[0].j.f.Close(); err != nil {
		t.Fatal(err)
	}
	st.sweep()
	st.sweep()
	got := st.Stats()
	if got.SyncFailures != 2 {
		t.Fatalf("SyncFailures = %d, want 2", got.SyncFailures)
	}
	if got.LastSyncError == "" {
		t.Fatal("LastSyncError empty after failed sweep")
	}
	_ = st.Close() // the sabotaged fd makes the final flush fail; nothing left to assert
}
