package durable

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
	"repro/internal/fragindex"
)

// Snapshot file format (versioned, self-checking):
//
//	magic        [8]byte  "DASHSNP1"
//	version      uint32   little-endian
//	sections     uint32   section count
//	table        sections × { offset uint64, length uint64, crc uint32 }
//	headerCRC    uint32   CRC-32 (IEEE) of everything above
//	section data ...      each section CRC-checked independently
//
// Section 0 is the spec block: selection attributes, epoch, and the chunk
// layout. The remaining sections are fragment-metadata chunks followed by
// posting chunks, so a reader verifies and decodes the file section by
// section and a single flipped bit is pinned to one section's CRC. Writes
// are atomic: everything goes to a temp file that is fsynced, renamed over
// the final name, and sealed with a directory fsync — a crash mid-write
// leaves at worst a stale temp file, never a half-visible snapshot.

const (
	snapMagic   = "DASHSNP1"
	snapVersion = 1

	fragsPerChunk = 4096
	kwsPerChunk   = 1024
	maxSections   = 1 << 20

	snapFixedHeader  = 8 + 4 + 4 // magic + version + section count
	snapTableEntry   = 8 + 8 + 4 // offset + length + crc
	snapHeaderTrailer = 4        // header CRC
)

// Errors the durable layer classifies corruption with. Both wrap into
// recovery decisions: a corrupt snapshot falls back to the previous
// generation, a corrupt journal (beyond a torn tail) refuses recovery.
var (
	ErrCorruptSnapshot = errors.New("durable: corrupt snapshot")
	ErrCorruptJournal  = errors.New("durable: corrupt journal")
)

type sectionEntry struct {
	off uint64
	len uint64
	crc uint32
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable — the rename itself lives in the directory, not the file.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		//lint:ignore droppederr already failing: the directory-sync error is returned; close is best-effort fd cleanup
		d.Close()
		return err
	}
	return d.Close()
}

// WriteSnapshot atomically writes a dump to path in the versioned section
// format. On any error the target is untouched (at worst a temp file
// remains, which recovery sweeps). The ctx is honored before the write
// starts; once the temp file is being filled the write runs to completion
// so the atomic rename stays all-or-nothing.
func WriteSnapshot(ctx context.Context, path string, d *fragindex.Dump) error {
	return writeSnapshot(ctx, faultfs.OS, path, d)
}

// writeSnapshot is WriteSnapshot through an explicit filesystem seam —
// the store threads its own (possibly fault-injected) FS here.
func writeSnapshot(ctx context.Context, fsys faultfs.FS, path string, d *fragindex.Dump) (err error) {
	if err := ctx.Err(); err != nil {
		return err
	}
	fragChunks := (len(d.FragKeys) + fragsPerChunk - 1) / fragsPerChunk
	postChunks := (len(d.Keywords) + kwsPerChunk - 1) / kwsPerChunk
	count := 1 + fragChunks + postChunks
	headerSize := snapFixedHeader + count*snapTableEntry + snapHeaderTrailer

	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			//lint:ignore droppederr already failing: the write error is returned; close+remove are best-effort temp cleanup (recovery resweeps)
			f.Close()
			//lint:ignore droppederr same: a surviving temp file is swept by the next recovery
			fsys.Remove(tmp)
		}
	}()

	// Placeholder header; patched once section offsets are known.
	if _, err = f.Write(make([]byte, headerSize)); err != nil {
		return err
	}
	table := make([]sectionEntry, 0, count)
	off := uint64(headerSize)
	writeSection := func(payload []byte) error {
		crashPoint("snapshot.section")
		if _, werr := f.Write(payload); werr != nil {
			return werr
		}
		table = append(table, sectionEntry{
			off: off, len: uint64(len(payload)), crc: crc32.ChecksumIEEE(payload),
		})
		off += uint64(len(payload))
		return nil
	}

	// Section 0: spec + layout.
	spec := appendStrings(nil, d.SelAttrs)
	spec = appendStrings(spec, d.EqAttrs)
	spec = appendString(spec, d.RangeAttr)
	spec = binary.AppendUvarint(spec, d.Epoch)
	spec = binary.AppendUvarint(spec, uint64(len(d.FragKeys)))
	spec = binary.AppendUvarint(spec, uint64(fragChunks))
	spec = binary.AppendUvarint(spec, uint64(len(d.Keywords)))
	spec = binary.AppendUvarint(spec, uint64(postChunks))
	if err = writeSection(spec); err != nil {
		return err
	}

	for lo := 0; lo < len(d.FragKeys); lo += fragsPerChunk {
		hi := min(lo+fragsPerChunk, len(d.FragKeys))
		chunk := binary.AppendUvarint(nil, uint64(hi-lo))
		for i := lo; i < hi; i++ {
			chunk = appendString(chunk, d.FragKeys[i])
			chunk = binary.AppendUvarint(chunk, uint64(d.Terms[i]))
		}
		if err = writeSection(chunk); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(d.Keywords); lo += kwsPerChunk {
		hi := min(lo+kwsPerChunk, len(d.Keywords))
		chunk := binary.AppendUvarint(nil, uint64(hi-lo))
		for i := lo; i < hi; i++ {
			chunk = appendString(chunk, d.Keywords[i])
			chunk = binary.AppendUvarint(chunk, uint64(len(d.Postings[i])))
			for _, p := range d.Postings[i] {
				chunk = binary.AppendUvarint(chunk, uint64(p.Frag))
				chunk = binary.AppendUvarint(chunk, uint64(p.TF))
			}
		}
		if err = writeSection(chunk); err != nil {
			return err
		}
	}

	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, snapVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(count))
	for _, e := range table {
		hdr = binary.LittleEndian.AppendUint64(hdr, e.off)
		hdr = binary.LittleEndian.AppendUint64(hdr, e.len)
		hdr = binary.LittleEndian.AppendUint32(hdr, e.crc)
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err = f.WriteAt(hdr, 0); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	crashPoint("snapshot.before-rename")
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	crashPoint("snapshot.after-rename")
	return syncDir(fsys, filepath.Dir(path))
}

// ReadSnapshot reads and fully verifies a snapshot file, returning the
// decoded dump. Every failure — bad magic, version, header CRC, section
// CRC, or malformed section payload — wraps ErrCorruptSnapshot so callers
// can fall back to an older generation.
func ReadSnapshot(ctx context.Context, path string) (*fragindex.Dump, error) {
	return readSnapshot(ctx, faultfs.OS, path)
}

// readSnapshot is ReadSnapshot through an explicit filesystem seam.
func readSnapshot(ctx context.Context, fsys faultfs.FS, path string) (*fragindex.Dump, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(b, filepath.Base(path))
}

// DecodeSnapshot verifies and decodes snapshot bytes already in memory —
// the same full verification ReadSnapshot performs (magic, version, header
// CRC, per-section CRCs, payload shape). Replicas use it on snapshot bytes
// fetched over the replication transport, so a bit flipped in transit is
// caught exactly like one flipped on disk. name labels errors.
func DecodeSnapshot(b []byte, name string) (*fragindex.Dump, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrCorruptSnapshot, name, fmt.Sprintf(format, args...))
	}
	if len(b) < snapFixedHeader {
		return nil, corrupt("file shorter than header")
	}
	if string(b[:8]) != snapMagic {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != snapVersion {
		return nil, fmt.Errorf("durable: snapshot %s: unsupported format version %d", name, v)
	}
	count := int(binary.LittleEndian.Uint32(b[12:16]))
	if count < 1 || count > maxSections {
		return nil, corrupt("implausible section count %d", count)
	}
	headerSize := snapFixedHeader + count*snapTableEntry + snapHeaderTrailer
	if len(b) < headerSize {
		return nil, corrupt("file shorter than section table")
	}
	if got, want := crc32.ChecksumIEEE(b[:headerSize-4]), binary.LittleEndian.Uint32(b[headerSize-4:headerSize]); got != want {
		return nil, corrupt("header checksum mismatch")
	}
	sections := make([][]byte, count)
	for i := 0; i < count; i++ {
		at := snapFixedHeader + i*snapTableEntry
		e := sectionEntry{
			off: binary.LittleEndian.Uint64(b[at:]),
			len: binary.LittleEndian.Uint64(b[at+8:]),
			crc: binary.LittleEndian.Uint32(b[at+16:]),
		}
		if e.off < uint64(headerSize) || e.off+e.len < e.off || e.off+e.len > uint64(len(b)) {
			return nil, corrupt("section %d outside file bounds", i)
		}
		payload := b[e.off : e.off+e.len]
		if crc32.ChecksumIEEE(payload) != e.crc {
			return nil, corrupt("section %d checksum mismatch", i)
		}
		sections[i] = payload
	}

	sd := &decoder{b: sections[0]}
	d := &fragindex.Dump{
		SelAttrs:  sd.strings(),
		EqAttrs:   sd.strings(),
		RangeAttr: sd.str(),
		Epoch:     sd.uvarint(),
	}
	numFrags := sd.uvarint()
	fragChunks := sd.uvarint()
	numKws := sd.uvarint()
	postChunks := sd.uvarint()
	if sd.err != nil || !sd.done() {
		return nil, corrupt("malformed spec section")
	}
	if uint64(count) != 1+fragChunks+postChunks {
		return nil, corrupt("section count disagrees with layout")
	}
	if numFrags > uint64(len(b)) || numKws > uint64(len(b)) {
		return nil, corrupt("implausible entry counts")
	}

	d.FragKeys = make([]string, 0, numFrags)
	d.Terms = make([]int64, 0, numFrags)
	for c := uint64(0); c < fragChunks; c++ {
		cd := &decoder{b: sections[1+c]}
		n := cd.uvarint()
		if cd.err == nil && n > uint64(len(cd.b))+1 {
			cd.fail()
		}
		for i := uint64(0); i < n && cd.err == nil; i++ {
			d.FragKeys = append(d.FragKeys, cd.str())
			d.Terms = append(d.Terms, int64(cd.uvarint()))
		}
		if cd.err != nil || !cd.done() {
			return nil, corrupt("malformed fragment chunk %d", c)
		}
	}
	if uint64(len(d.FragKeys)) != numFrags {
		return nil, corrupt("fragment count disagrees with spec")
	}

	d.Keywords = make([]string, 0, numKws)
	d.Postings = make([][]fragindex.Posting, 0, numKws)
	for c := uint64(0); c < postChunks; c++ {
		cd := &decoder{b: sections[1+fragChunks+c]}
		n := cd.uvarint()
		if cd.err == nil && n > uint64(len(cd.b))+1 {
			cd.fail()
		}
		for i := uint64(0); i < n && cd.err == nil; i++ {
			kw := cd.str()
			np := cd.uvarint()
			if cd.err != nil || np > uint64(len(cd.b))+1 {
				cd.fail()
				break
			}
			ps := make([]fragindex.Posting, 0, np)
			for j := uint64(0); j < np && cd.err == nil; j++ {
				ref := cd.uvarint()
				tf := cd.uvarint()
				if cd.err == nil {
					if ref >= numFrags {
						return nil, corrupt("posting ref %d out of range in %q", ref, kw)
					}
					ps = append(ps, fragindex.Posting{Frag: fragindex.FragRef(ref), TF: int64(tf)})
				}
			}
			if cd.err != nil {
				break
			}
			d.Keywords = append(d.Keywords, kw)
			d.Postings = append(d.Postings, ps)
		}
		if cd.err != nil || !cd.done() {
			return nil, corrupt("malformed posting chunk %d", c)
		}
	}
	if uint64(len(d.Keywords)) != numKws {
		return nil, corrupt("keyword count disagrees with spec")
	}
	return d, nil
}
