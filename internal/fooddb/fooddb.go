// Package fooddb provides the paper's running example: the fooddb database
// (Fig. 2) and the Search web application (Example 1, Fig. 3). It is both a
// demo dataset and the ground truth for unit tests — the expected fragments
// (Fig. 5), inverted fragment index (Fig. 6), fragment graph (Fig. 9), and
// top-k walk-through (Example 7) are all derived from it.
package fooddb

import (
	"repro/internal/relation"
)

// New builds the fooddb database exactly as printed in Fig. 2.
func New() *relation.Database {
	db := relation.NewDatabase("fooddb")

	restaurant := relation.NewTable(relation.MustSchema("restaurant",
		relation.Column{Name: "rid", Kind: relation.KindInt},
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "cuisine", Kind: relation.KindString},
		relation.Column{Name: "budget", Kind: relation.KindInt},
		relation.Column{Name: "rate", Kind: relation.KindFloat},
	))
	mustAppend(restaurant,
		relation.Row{relation.Int(1), relation.String("Burger Queen"), relation.String("American"), relation.Int(10), relation.Float(4.3)},
		relation.Row{relation.Int(2), relation.String("McRonald's"), relation.String("American"), relation.Int(18), relation.Float(2.2)},
		relation.Row{relation.Int(3), relation.String("Wandy's"), relation.String("American"), relation.Int(12), relation.Float(4.1)},
		relation.Row{relation.Int(4), relation.String("Wandy's"), relation.String("American"), relation.Int(12), relation.Float(4.2)},
		relation.Row{relation.Int(5), relation.String("Thaifood"), relation.String("Thai"), relation.Int(10), relation.Float(4.8)},
		relation.Row{relation.Int(6), relation.String("Bangkok"), relation.String("Thai"), relation.Int(10), relation.Float(3.9)},
		relation.Row{relation.Int(7), relation.String("Bond's Cafe"), relation.String("American"), relation.Int(9), relation.Float(4.3)},
	)

	comment := relation.NewTable(relation.MustSchema("comment",
		relation.Column{Name: "cid", Kind: relation.KindInt},
		relation.Column{Name: "rid", Kind: relation.KindInt},
		relation.Column{Name: "uid", Kind: relation.KindInt},
		relation.Column{Name: "comment", Kind: relation.KindString},
		relation.Column{Name: "date", Kind: relation.KindString},
	))
	mustAppend(comment,
		relation.Row{relation.Int(201), relation.Int(1), relation.Int(109), relation.String("Burger experts"), relation.String("06/10")},
		relation.Row{relation.Int(202), relation.Int(4), relation.Int(132), relation.String("Unique burger"), relation.String("05/10")},
		relation.Row{relation.Int(203), relation.Int(4), relation.Int(132), relation.String("Bad fries"), relation.String("06/10")},
		relation.Row{relation.Int(204), relation.Int(2), relation.Int(109), relation.String("Regret taking it"), relation.String("06/10")},
		relation.Row{relation.Int(205), relation.Int(6), relation.Int(180), relation.String("Thai burger"), relation.String("08/11")},
		relation.Row{relation.Int(206), relation.Int(7), relation.Int(171), relation.String("Nice coffee"), relation.String("01/11")},
	)

	customer := relation.NewTable(relation.MustSchema("customer",
		relation.Column{Name: "uid", Kind: relation.KindInt},
		relation.Column{Name: "uname", Kind: relation.KindString},
	))
	mustAppend(customer,
		relation.Row{relation.Int(109), relation.String("David")},
		relation.Row{relation.Int(120), relation.String("Ben")},
		relation.Row{relation.Int(132), relation.String("Bill")},
		relation.Row{relation.Int(171), relation.String("James")},
		relation.Row{relation.Int(180), relation.String("Alan")},
	)

	db.AddTable(restaurant)
	db.AddTable(comment)
	db.AddTable(customer)
	db.AddForeignKey(relation.ForeignKey{FromTable: "comment", FromCol: "rid", ToTable: "restaurant", ToCol: "rid"})
	db.AddForeignKey(relation.ForeignKey{FromTable: "comment", FromCol: "uid", ToTable: "customer", ToCol: "uid"})
	return db
}

// SearchSQL is the application query of the Search servlet (Fig. 3).
//
// Note one deliberate deviation from the figure: the paper's SQL joins
// customer with an inner JOIN, but its own Fig. 1/Fig. 5 contents keep
// restaurants that have no comments (and hence no customer match), which
// requires the second join to be outer as well. We use LEFT JOIN so the
// derived fragments match Fig. 5 exactly.
const SearchSQL = `SELECT name, budget, rate, comment, uname, date ` +
	`FROM (restaurant LEFT JOIN comment) LEFT JOIN customer ` +
	`WHERE (cuisine = "$cuisine") AND (budget BETWEEN $min AND $max)`

// ServletSource is the Search web application as servlet-style source code
// (Fig. 3). Dash's web-application analyzer reverse-engineers this text into
// a parameterized PSJ query plus query-string bindings.
const ServletSource = `
public class Search extends HttpServlet {
  public void doGet(HttpServletRequest q, HttpServletResponse p) {
    String cuisine = q.getParameter("c");
    String min = q.getParameter("l");
    String max = q.getParameter("u");
    Connection cn = DB.connect();
    Query = "SELECT name, budget, rate, comment, uname, date " +
        "FROM (restaurant LEFT JOIN comment) LEFT JOIN customer " +
        "WHERE (cuisine = '" + cuisine + "') AND (budget BETWEEN " + min + " AND " + max + ")";
    ResultSet r = cn.createStatement().executeQuery(Query);
    output(p, r);
  }
}
`

// BaseURL is the URI the Search application is served under (Example 1).
const BaseURL = "http://www.example.com/Search"

func mustAppend(t *relation.Table, rows ...relation.Row) {
	if err := t.Append(rows...); err != nil {
		panic(err)
	}
}
