package fooddb

import (
	"testing"

	"repro/internal/relation"
)

// TestFig2Contents pins the running-example database to the paper's Fig. 2.
func TestFig2Contents(t *testing.T) {
	db := New()
	want := map[string]int{"restaurant": 7, "comment": 6, "customer": 5}
	for name, rows := range want {
		tbl, err := db.Table(name)
		if err != nil {
			t.Fatalf("Table(%s): %v", name, err)
		}
		if tbl.Len() != rows {
			t.Errorf("%s rows = %d, want %d", name, tbl.Len(), rows)
		}
	}
	if got := len(db.ForeignKeys()); got != 2 {
		t.Errorf("foreign keys = %d, want 2", got)
	}
}

// TestReferentialIntegrity: every comment's rid/uid references an existing
// restaurant/customer (Fig. 2 is consistent).
func TestReferentialIntegrity(t *testing.T) {
	db := New()
	for _, fk := range db.ForeignKeys() {
		from, err := db.Table(fk.FromTable)
		if err != nil {
			t.Fatal(err)
		}
		to, err := db.Table(fk.ToTable)
		if err != nil {
			t.Fatal(err)
		}
		fi := from.Schema.ColumnIndex(fk.FromCol)
		ti := to.Schema.ColumnIndex(fk.ToCol)
		if fi < 0 || ti < 0 {
			t.Fatalf("fk %v references missing columns", fk)
		}
		keys := make(map[string]bool, to.Len())
		for _, row := range to.Rows {
			keys[relation.Key([]relation.Value{row[ti]})] = true
		}
		for _, row := range from.Rows {
			if !keys[relation.Key([]relation.Value{row[fi]})] {
				t.Errorf("%s.%s value %v dangles", fk.FromTable, fk.FromCol, row[fi])
			}
		}
	}
}

// TestFreshInstances: New returns independent databases.
func TestFreshInstances(t *testing.T) {
	a, b := New(), New()
	ta, _ := a.Table("restaurant")
	tb, _ := b.Table("restaurant")
	ta.Rows[0][1] = relation.String("Mutated")
	if tb.Rows[0][1].AsString() == "Mutated" {
		t.Error("New() shares row storage between instances")
	}
}

// TestServletSourceParses: the embedded Fig. 3 source mentions every
// query-string field the paper's URLs use.
func TestServletSourceParses(t *testing.T) {
	for _, needle := range []string{`getParameter("c")`, `getParameter("l")`, `getParameter("u")`, "SELECT"} {
		if !contains(ServletSource, needle) {
			t.Errorf("ServletSource missing %q", needle)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
