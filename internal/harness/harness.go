// Package harness drives the paper's performance evaluation (§VII): it sets
// up the Table I–III workloads, times database crawling and fragment
// indexing per phase (Fig. 10), measures fragment-graph construction
// (Table IV), and sweeps the top-k search parameter grid (Fig. 11). Both
// the repository's testing.B benchmarks and cmd/dashbench print through it.
package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/crawl"
	"repro/internal/fooddb"
	"repro/internal/fragindex"
	"repro/internal/psj"
	"repro/internal/relation"
	"repro/internal/search"
	"repro/internal/tpch"
	"repro/internal/webapp"
)

// Workload identifies one dataset+query cell of the experiment grid.
type Workload struct {
	Scale tpch.Scale
	Seed  int64
	Query string // Q1, Q2, Q3
}

// Setup generates the dataset and analyzes/binds the query's application.
func (w Workload) Setup() (*relation.Database, *webapp.Application, error) {
	db := tpch.Generate(w.Scale, w.Seed)
	app, err := tpch.App(w.Query)
	if err != nil {
		return nil, nil, err
	}
	if err := app.Bind(db); err != nil {
		return nil, nil, err
	}
	return db, app, nil
}

// Fooddb sets up the running example as a workload (used by examples and
// smoke benchmarks).
func Fooddb() (*relation.Database, *webapp.Application, error) {
	db := fooddb.New()
	app, err := webapp.Analyze(fooddb.ServletSource, fooddb.BaseURL)
	if err != nil {
		return nil, nil, err
	}
	if err := app.Bind(db); err != nil {
		return nil, nil, err
	}
	return db, app, nil
}

// CrawlRow is one bar of Fig. 10: a (dataset, query, algorithm) cell with
// its per-phase breakdown.
type CrawlRow struct {
	Dataset   string
	Query     string
	Algorithm string
	Phases    []crawl.Phase
	Total     time.Duration
	// ShuffledBytes sums intermediate bytes over all phases — the
	// quantity that separates SW from INT.
	ShuffledBytes int64
}

// RunCrawl executes one crawl and times it.
func RunCrawl(ctx context.Context, db *relation.Database, app *webapp.Application,
	alg crawl.Algorithm, opts crawl.Options, dataset string) (*crawl.Output, CrawlRow, error) {

	bound, err := app.Bound()
	if err != nil {
		return nil, CrawlRow{}, err
	}
	start := time.Now()
	var out *crawl.Output
	switch alg {
	case crawl.AlgStepwise:
		out, err = crawl.Stepwise(ctx, db, bound, opts)
	case crawl.AlgIntegrated:
		out, err = crawl.Integrated(ctx, db, bound, opts)
	default:
		return nil, CrawlRow{}, fmt.Errorf("harness: unknown algorithm %q", alg)
	}
	if err != nil {
		return nil, CrawlRow{}, err
	}
	row := CrawlRow{
		Dataset:   dataset,
		Query:     app.Name,
		Algorithm: string(alg),
		Phases:    out.Phases,
		Total:     time.Since(start),
	}
	for _, p := range out.Phases {
		row.ShuffledBytes += p.Metrics.IntermediateBytes
	}
	return out, row, nil
}

// GraphRow is one line of Table IV.
type GraphRow struct {
	Query       string
	BuildTime   time.Duration
	Fragments   int
	AvgKeywords float64
}

// BuildGraph constructs the fragment index from a crawl output, timing it
// (Table IV's "building time" covers fragment-graph construction).
func BuildGraph(out *crawl.Output, bound *psj.Bound, query string) (*fragindex.Index, GraphRow, error) {
	spec, err := fragindex.SpecFromBound(bound)
	if err != nil {
		return nil, GraphRow{}, err
	}
	start := time.Now()
	idx, err := fragindex.Build(out, spec)
	if err != nil {
		return nil, GraphRow{}, err
	}
	row := GraphRow{
		Query:       query,
		BuildTime:   time.Since(start),
		Fragments:   idx.NumFragments(),
		AvgKeywords: idx.AvgTermsPerFragment(),
	}
	return idx, row, nil
}

// Bands holds the §VII-B keyword selections: 30 keywords each from the top,
// middle, and bottom 10% of keywords ordered by document frequency.
type Bands struct {
	Hot, Warm, Cold []string
}

// KeywordBands orders all indexed keywords by DF and samples n from each
// band deterministically. It reads one index snapshot, so the bands are
// consistent even while the index absorbs updates.
func KeywordBands(idx *fragindex.Snapshot, n int) Bands {
	type kwDF struct {
		kw string
		df int
	}
	kws := idx.Keywords()
	all := make([]kwDF, 0, len(kws))
	for _, kw := range kws {
		all = append(all, kwDF{kw: kw, df: idx.DF(kw)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df > all[j].df
		}
		return all[i].kw < all[j].kw
	})
	pick := func(lo, hi int) []string {
		if hi > len(all) {
			hi = len(all)
		}
		if lo >= hi {
			return nil
		}
		seg := all[lo:hi]
		out := make([]string, 0, n)
		step := len(seg) / n
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(seg) && len(out) < n; i += step {
			out = append(out, seg[i].kw)
		}
		return out
	}
	tenth := len(all) / 10
	if tenth == 0 {
		tenth = 1
	}
	mid := len(all) / 2
	return Bands{
		Hot:  pick(0, tenth),
		Warm: pick(mid-tenth/2, mid-tenth/2+tenth),
		Cold: pick(len(all)-tenth, len(all)),
	}
}

// SearchPoint is one bar of Fig. 11: average search latency for a keyword
// band at fixed k and s.
type SearchPoint struct {
	Band     string
	K, S     int
	Searches int
	Avg      time.Duration
}

// Fig11Grid returns the paper's parameter grid (Table I): k ∈ {1,5,10,20},
// s ∈ {100,200,500,1000}.
func Fig11Grid() (ks, ss []int) {
	return []int{1, 5, 10, 20}, []int{100, 200, 500, 1000}
}

// RunSearchSweep measures average top-k latency for every (band, k, s)
// combination.
func RunSearchSweep(engine *search.Engine, bands Bands, ks, ss []int) ([]SearchPoint, error) {
	var out []SearchPoint
	named := []struct {
		name string
		kws  []string
	}{
		{"cold", bands.Cold},
		{"warm", bands.Warm},
		{"hot", bands.Hot},
	}
	for _, band := range named {
		if len(band.kws) == 0 {
			continue
		}
		for _, s := range ss {
			for _, k := range ks {
				var total time.Duration
				for _, kw := range band.kws {
					start := time.Now()
					if _, err := engine.Search(context.Background(), search.Request{
						Keywords: []string{kw}, K: k, SizeThreshold: s,
					}); err != nil {
						return nil, fmt.Errorf("harness: search %q: %w", kw, err)
					}
					total += time.Since(start)
				}
				out = append(out, SearchPoint{
					Band:     band.name,
					K:        k,
					S:        s,
					Searches: len(band.kws),
					Avg:      total / time.Duration(len(band.kws)),
				})
			}
		}
	}
	return out, nil
}

// PrepareEngine runs the full pipeline for a workload and returns the
// search engine plus the intermediate artifacts benchmarks reuse.
func PrepareEngine(ctx context.Context, w Workload, opts crawl.Options) (*search.Engine, *crawl.Output, GraphRow, error) {
	db, app, err := w.Setup()
	if err != nil {
		return nil, nil, GraphRow{}, err
	}
	out, _, err := RunCrawl(ctx, db, app, crawl.AlgIntegrated, opts, w.Scale.Name)
	if err != nil {
		return nil, nil, GraphRow{}, err
	}
	bound, err := app.Bound()
	if err != nil {
		return nil, nil, GraphRow{}, err
	}
	idx, row, err := BuildGraph(out, bound, w.Query)
	if err != nil {
		return nil, nil, GraphRow{}, err
	}
	return search.New(idx, app), out, row, nil
}
