package harness

import (
	"context"
	"testing"

	"repro/internal/crawl"
	"repro/internal/tpch"
)

var tiny = tpch.Scale{Name: "tiny", Customers: 50, OrdersPerCust: 2, LinesPerOrder: 2, Parts: 30}

func TestWorkloadSetup(t *testing.T) {
	w := Workload{Scale: tiny, Seed: 1, Query: "Q2"}
	db, app, err := w.Setup()
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if db.TotalRows() == 0 || app.Name != "Q2" {
		t.Errorf("setup = %v rows, app %s", db.TotalRows(), app.Name)
	}
	if _, _, err := (Workload{Scale: tiny, Query: "Q9"}).Setup(); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestRunCrawlBothAlgorithms(t *testing.T) {
	w := Workload{Scale: tiny, Seed: 2, Query: "Q1"}
	db, app, err := w.Setup()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []crawl.Algorithm{crawl.AlgStepwise, crawl.AlgIntegrated} {
		out, row, err := RunCrawl(context.Background(), db, app, alg, crawl.Options{}, "tiny")
		if err != nil {
			t.Fatalf("RunCrawl(%s): %v", alg, err)
		}
		if len(out.FragmentTerms) == 0 {
			t.Errorf("%s: no fragments", alg)
		}
		if row.Total <= 0 || len(row.Phases) != 3 || row.ShuffledBytes <= 0 {
			t.Errorf("%s: row = %+v", alg, row)
		}
	}
	if _, _, err := RunCrawl(context.Background(), db, app, "nope", crawl.Options{}, "tiny"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestKeywordBandsOrdering(t *testing.T) {
	w := Workload{Scale: tiny, Seed: 3, Query: "Q2"}
	engine, _, _, err := PrepareEngine(context.Background(), w, crawl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bands := KeywordBands(engine.Snapshot(), 10)
	if len(bands.Hot) == 0 || len(bands.Warm) == 0 || len(bands.Cold) == 0 {
		t.Fatalf("bands = %+v", bands)
	}
	idx := engine.Index()
	// Hot keywords live in more fragments than cold keywords.
	hotMin := idx.DF(bands.Hot[0])
	for _, kw := range bands.Hot {
		if df := idx.DF(kw); df < hotMin {
			hotMin = df
		}
	}
	coldMax := 0
	for _, kw := range bands.Cold {
		if df := idx.DF(kw); df > coldMax {
			coldMax = df
		}
	}
	if hotMin < coldMax {
		t.Errorf("band inversion: hot min DF %d < cold max DF %d", hotMin, coldMax)
	}
}

func TestRunSearchSweep(t *testing.T) {
	w := Workload{Scale: tiny, Seed: 4, Query: "Q2"}
	engine, _, graphRow, err := PrepareEngine(context.Background(), w, crawl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if graphRow.Fragments == 0 || graphRow.AvgKeywords <= 0 {
		t.Errorf("graph row = %+v", graphRow)
	}
	bands := KeywordBands(engine.Snapshot(), 3)
	points, err := RunSearchSweep(engine, bands, []int{1, 5}, []int{100, 500})
	if err != nil {
		t.Fatalf("RunSearchSweep: %v", err)
	}
	if len(points) != 3*2*2 {
		t.Fatalf("points = %d, want 12", len(points))
	}
	for _, p := range points {
		if p.Searches != 3 || p.Avg < 0 {
			t.Errorf("point = %+v", p)
		}
	}
}

func TestFooddbWorkload(t *testing.T) {
	db, app, err := Fooddb()
	if err != nil {
		t.Fatal(err)
	}
	if db.Name != "fooddb" || app.Name != "Search" {
		t.Errorf("fooddb setup = %s/%s", db.Name, app.Name)
	}
}

func TestFig11Grid(t *testing.T) {
	ks, ss := Fig11Grid()
	if len(ks) != 4 || len(ss) != 4 || ks[3] != 20 || ss[3] != 1000 {
		t.Errorf("grid = %v %v", ks, ss)
	}
}
