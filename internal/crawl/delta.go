package crawl

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
)

// Errors returned by delta derivation and coalescing.
var (
	ErrPinArity     = errors.New("crawl: fragment identifier arity does not match selection attributes")
	ErrPinParam     = errors.New("crawl: query parameter not pinned by any selection attribute")
	ErrCoalesce     = errors.New("crawl: conflicting changes for fragment")
	ErrCoalesceSpec = errors.New("crawl: coalesced deltas disagree on selection attributes")
)

// ChangeOp classifies one fragment change within a Delta.
type ChangeOp uint8

// The three fragment maintenance operations.
const (
	OpInsertFragment ChangeOp = iota + 1
	OpRemoveFragment
	OpUpdateFragment
)

// String names the operation.
func (op ChangeOp) String() string {
	switch op {
	case OpInsertFragment:
		return "insert"
	case OpRemoveFragment:
		return "remove"
	case OpUpdateFragment:
		return "update"
	}
	return fmt.Sprintf("ChangeOp(%d)", uint8(op))
}

// FragmentChange is one fragment's worth of index maintenance: the fragment
// to touch and, for inserts and updates, its recomputed keyword statistics.
type FragmentChange struct {
	Op         ChangeOp
	ID         fragment.ID
	TermCounts map[string]int64 // nil for removals
	TotalTerms int64            // 0 for removals
}

// Delta is a batch of fragment changes derived from database updates — the
// incremental counterpart of Output. fragindex.LiveIndex.Apply folds a
// Delta into the next published snapshot in one atomic swap.
type Delta struct {
	// SelAttrs names the selection attribute columns the change IDs are
	// tuples over, in WHERE order; empty skips the spec check on apply.
	SelAttrs []string
	Changes  []FragmentChange
}

// Coalesce folds a sequence of deltas — in application order — into one
// delta holding at most one change per fragment identifier, so a batched
// apply pays one publish (and one pass over each touched fragment) for the
// whole sequence. The folding rules preserve the net effect of applying
// the deltas one by one:
//
//	insert + update → insert with the update's statistics
//	insert + remove → nothing (the remove cancels the insert)
//	update + update → the last update
//	update + remove → remove
//	remove + insert → update (the fragment existed before the batch)
//
// Sequences that could not have applied cleanly one by one — a second
// insert of a live fragment, an update or remove of a fragment the batch
// already removed — return ErrCoalesce rather than silently masking the
// conflict. Deltas with non-empty SelAttrs must agree; the folded delta
// carries the first non-empty set.
//
// Surviving changes keep the order their identifiers were first touched
// in; a cancelled insert that is later re-inserted keeps its original
// position (fragment changes for distinct identifiers commute).
func Coalesce(ds []Delta) (Delta, error) {
	var out Delta
	byKey := make(map[string]int) // identifier key -> index into out.Changes
	for _, d := range ds {
		if len(d.SelAttrs) > 0 {
			if out.SelAttrs == nil {
				out.SelAttrs = append([]string(nil), d.SelAttrs...)
			} else if !slices.Equal(out.SelAttrs, d.SelAttrs) {
				return Delta{}, fmt.Errorf("%w: %v vs %v", ErrCoalesceSpec, out.SelAttrs, d.SelAttrs)
			}
		}
		for _, ch := range d.Changes {
			key := ch.ID.Key()
			at, ok := byKey[key]
			if !ok {
				byKey[key] = len(out.Changes)
				out.Changes = append(out.Changes, ch)
				continue
			}
			prev := &out.Changes[at]
			switch {
			case prev.Op == OpInsertFragment && ch.Op == OpUpdateFragment:
				prev.TermCounts, prev.TotalTerms = ch.TermCounts, ch.TotalTerms
			case prev.Op == OpInsertFragment && ch.Op == OpRemoveFragment:
				// The slot stays in byKey as a cancellation marker: the
				// fragment is absent again, so only a re-insert may follow.
				prev.Op, prev.TermCounts, prev.TotalTerms = opCancelled, nil, 0
			case prev.Op == opCancelled && ch.Op == OpInsertFragment:
				prev.Op, prev.TermCounts, prev.TotalTerms = OpInsertFragment, ch.TermCounts, ch.TotalTerms
			case prev.Op == OpUpdateFragment && ch.Op == OpUpdateFragment:
				prev.TermCounts, prev.TotalTerms = ch.TermCounts, ch.TotalTerms
			case prev.Op == OpUpdateFragment && ch.Op == OpRemoveFragment:
				prev.Op, prev.TermCounts, prev.TotalTerms = OpRemoveFragment, nil, 0
			case prev.Op == OpRemoveFragment && ch.Op == OpInsertFragment:
				prev.Op, prev.TermCounts, prev.TotalTerms = OpUpdateFragment, ch.TermCounts, ch.TotalTerms
			default:
				prevDesc := prev.Op.String()
				if prev.Op == opCancelled {
					prevDesc = "cancelled insert"
				}
				return Delta{}, fmt.Errorf("%w %s: %s after %s", ErrCoalesce, ch.ID, ch.Op, prevDesc)
			}
		}
	}
	// Drop cancelled entries, preserving order.
	kept := out.Changes[:0]
	for _, ch := range out.Changes {
		if ch.Op != opCancelled {
			kept = append(kept, ch)
		}
	}
	out.Changes = kept
	if len(out.Changes) == 0 {
		out.Changes = nil
	}
	return out, nil
}

// opCancelled marks a change slot neutralized during coalescing (an insert
// annihilated by a later remove). The slot keeps its byKey entry so a
// later update/remove of the same identifier is still recognized as a
// conflict — the fragment is absent mid-batch, exactly as a sequential
// apply would observe. Never present in a returned Delta.
const opCancelled ChangeOp = 0

// PinParams returns the parameter assignment that restricts the bound query
// to exactly one fragment's partition: every condition over a selection
// attribute receives that attribute's value from the fragment identifier.
// With Dash's comparison set (=, >=, <=) the pinned evaluation selects
// precisely the rows whose selection values equal the identifier's.
func PinParams(b *psj.Bound, id fragment.ID) (map[string]relation.Value, error) {
	if len(id) != len(b.SelAttrs) {
		return nil, fmt.Errorf("%w: id %v over attrs %v", ErrPinArity, id, b.SelAttrs)
	}
	params := make(map[string]relation.Value, len(b.Conds))
	for _, c := range b.Conds {
		for i, col := range b.SelAttrs {
			if c.Attr.Col == col {
				params[c.Param] = id[i]
			}
		}
	}
	for _, p := range b.Query.Params() {
		if _, ok := params[p]; !ok {
			return nil, fmt.Errorf("%w: $%s", ErrPinParam, p)
		}
	}
	return params, nil
}

// RecrawlFragment recomputes one fragment's keyword statistics by executing
// the application query pinned to the fragment's partition — re-crawling
// only the rows that can contribute to this fragment, not the whole
// database. exists is false when the partition currently selects no rows
// (the fragment no longer exists). The counts match what a full crawl
// (Reference or the MR algorithms) would derive for the same fragment.
func RecrawlFragment(db *relation.Database, b *psj.Bound, id fragment.ID) (counts map[string]int64, total int64, exists bool, err error) {
	params, err := PinParams(b, id)
	if err != nil {
		return nil, 0, false, err
	}
	tbl, err := b.Execute(db, params)
	if err != nil {
		return nil, 0, false, err
	}
	if tbl.Len() == 0 {
		return nil, 0, false, nil
	}
	// Execute projects to the application's projection attributes — exactly
	// the values a full crawl counts tokens over (fragment.Derive's projIdx).
	acc := make(map[string]int)
	for _, row := range tbl.Rows {
		for _, v := range row {
			total += int64(fragment.CountTokens(v, acc))
		}
	}
	counts = make(map[string]int64, len(acc))
	for kw, n := range acc {
		counts[kw] = int64(n)
	}
	return counts, total, true, nil
}

// DeriveDelta re-crawls the partitions of the candidate fragment
// identifiers (typically: every fragment whose underlying rows changed,
// orBackground tolerates a nil context at the API boundary so a forgotten
// ctx degrades to "not cancellable" instead of a panic between partitions.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// plus any identifiers newly introduced by inserted rows) and classifies
// each against the serving index via have, which reports whether a live
// fragment with that identifier currently exists. Identifiers whose
// partition is empty and unknown to the index are dropped as no-ops.
// Derivation re-executes one query per identifier, so the ctx is checked
// between partitions; a cancellation returns ctx.Err() with no delta.
func DeriveDelta(ctx context.Context, db *relation.Database, b *psj.Bound, ids []fragment.ID, have func(fragment.ID) bool) (Delta, error) {
	ctx = orBackground(ctx)
	d := Delta{SelAttrs: append([]string(nil), b.SelAttrs...)}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return Delta{}, err
		}
		counts, total, exists, err := RecrawlFragment(db, b, id)
		if err != nil {
			return Delta{}, err
		}
		known := have(id)
		switch {
		case exists && known:
			d.Changes = append(d.Changes, FragmentChange{
				Op: OpUpdateFragment, ID: id, TermCounts: counts, TotalTerms: total,
			})
		case exists:
			d.Changes = append(d.Changes, FragmentChange{
				Op: OpInsertFragment, ID: id, TermCounts: counts, TotalTerms: total,
			})
		case known:
			d.Changes = append(d.Changes, FragmentChange{Op: OpRemoveFragment, ID: id})
		}
	}
	return d, nil
}
