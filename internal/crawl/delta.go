package crawl

import (
	"errors"
	"fmt"

	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
)

// Errors returned by delta derivation.
var (
	ErrPinArity = errors.New("crawl: fragment identifier arity does not match selection attributes")
	ErrPinParam = errors.New("crawl: query parameter not pinned by any selection attribute")
)

// ChangeOp classifies one fragment change within a Delta.
type ChangeOp uint8

// The three fragment maintenance operations.
const (
	OpInsertFragment ChangeOp = iota + 1
	OpRemoveFragment
	OpUpdateFragment
)

// String names the operation.
func (op ChangeOp) String() string {
	switch op {
	case OpInsertFragment:
		return "insert"
	case OpRemoveFragment:
		return "remove"
	case OpUpdateFragment:
		return "update"
	}
	return fmt.Sprintf("ChangeOp(%d)", uint8(op))
}

// FragmentChange is one fragment's worth of index maintenance: the fragment
// to touch and, for inserts and updates, its recomputed keyword statistics.
type FragmentChange struct {
	Op         ChangeOp
	ID         fragment.ID
	TermCounts map[string]int64 // nil for removals
	TotalTerms int64            // 0 for removals
}

// Delta is a batch of fragment changes derived from database updates — the
// incremental counterpart of Output. fragindex.LiveIndex.Apply folds a
// Delta into the next published snapshot in one atomic swap.
type Delta struct {
	// SelAttrs names the selection attribute columns the change IDs are
	// tuples over, in WHERE order; empty skips the spec check on apply.
	SelAttrs []string
	Changes  []FragmentChange
}

// PinParams returns the parameter assignment that restricts the bound query
// to exactly one fragment's partition: every condition over a selection
// attribute receives that attribute's value from the fragment identifier.
// With Dash's comparison set (=, >=, <=) the pinned evaluation selects
// precisely the rows whose selection values equal the identifier's.
func PinParams(b *psj.Bound, id fragment.ID) (map[string]relation.Value, error) {
	if len(id) != len(b.SelAttrs) {
		return nil, fmt.Errorf("%w: id %v over attrs %v", ErrPinArity, id, b.SelAttrs)
	}
	params := make(map[string]relation.Value, len(b.Conds))
	for _, c := range b.Conds {
		for i, col := range b.SelAttrs {
			if c.Attr.Col == col {
				params[c.Param] = id[i]
			}
		}
	}
	for _, p := range b.Query.Params() {
		if _, ok := params[p]; !ok {
			return nil, fmt.Errorf("%w: $%s", ErrPinParam, p)
		}
	}
	return params, nil
}

// RecrawlFragment recomputes one fragment's keyword statistics by executing
// the application query pinned to the fragment's partition — re-crawling
// only the rows that can contribute to this fragment, not the whole
// database. exists is false when the partition currently selects no rows
// (the fragment no longer exists). The counts match what a full crawl
// (Reference or the MR algorithms) would derive for the same fragment.
func RecrawlFragment(db *relation.Database, b *psj.Bound, id fragment.ID) (counts map[string]int64, total int64, exists bool, err error) {
	params, err := PinParams(b, id)
	if err != nil {
		return nil, 0, false, err
	}
	tbl, err := b.Execute(db, params)
	if err != nil {
		return nil, 0, false, err
	}
	if tbl.Len() == 0 {
		return nil, 0, false, nil
	}
	// Execute projects to the application's projection attributes — exactly
	// the values a full crawl counts tokens over (fragment.Derive's projIdx).
	acc := make(map[string]int)
	for _, row := range tbl.Rows {
		for _, v := range row {
			total += int64(fragment.CountTokens(v, acc))
		}
	}
	counts = make(map[string]int64, len(acc))
	for kw, n := range acc {
		counts[kw] = int64(n)
	}
	return counts, total, true, nil
}

// DeriveDelta re-crawls the partitions of the candidate fragment
// identifiers (typically: every fragment whose underlying rows changed,
// plus any identifiers newly introduced by inserted rows) and classifies
// each against the serving index via have, which reports whether a live
// fragment with that identifier currently exists. Identifiers whose
// partition is empty and unknown to the index are dropped as no-ops.
func DeriveDelta(db *relation.Database, b *psj.Bound, ids []fragment.ID, have func(fragment.ID) bool) (Delta, error) {
	d := Delta{SelAttrs: append([]string(nil), b.SelAttrs...)}
	for _, id := range ids {
		counts, total, exists, err := RecrawlFragment(db, b, id)
		if err != nil {
			return Delta{}, err
		}
		known := have(id)
		switch {
		case exists && known:
			d.Changes = append(d.Changes, FragmentChange{
				Op: OpUpdateFragment, ID: id, TermCounts: counts, TotalTerms: total,
			})
		case exists:
			d.Changes = append(d.Changes, FragmentChange{
				Op: OpInsertFragment, ID: id, TermCounts: counts, TotalTerms: total,
			})
		case known:
			d.Changes = append(d.Changes, FragmentChange{Op: OpRemoveFragment, ID: id})
		}
	}
	return d, nil
}
