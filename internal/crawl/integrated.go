package crawl

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/fragment"
	"repro/internal/mapreduce"
	"repro/internal/psj"
	"repro/internal/relation"
)

// thetaPrefix names the per-relation record-count column in aggregate rows.
const thetaPrefix = "θ_"

// Integrated runs the integrated crawling and indexing algorithm (paper
// §V-B). Instead of dragging projection attributes through every join, it:
//
//	INT-Jn:   computes, per operand relation, the aggregate
//	          (cᵢ, jᵢ) G count(*) as θᵢ — only selection attributes, join
//	          attributes, and a count — and joins these narrow aggregates
//	          over the query's join tree, yielding R: every fragment's
//	          join composition;
//	INT-Ext:  joins each base relation with R on (cᵢ, jᵢ) to extract
//	          keywords, scaling each record's counts by the replication
//	          factor Θᵢ = (Π θx)/θᵢ — how many joined rows the record
//	          appears in;
//	INT-Cnsd: consolidates per-keyword counts per fragment and sorts each
//	          inverted list.
func Integrated(ctx context.Context, db *relation.Database, b *psj.Bound, opts Options) (*Output, error) {
	jnMetrics := mapreduce.Metrics{Job: "INT-Jn"}

	// ---- Phase INT-Jn step 1: per-relation aggregates ----
	aggSchemas := make(map[string]*relation.Schema, len(b.Leaves))
	aggRows := make(map[string][]mapreduce.KV, len(b.Leaves))
	for _, li := range b.Leaves {
		schema, rows, err := aggregateRelation(ctx, db, li, opts, &jnMetrics)
		if err != nil {
			return nil, err
		}
		aggSchemas[li.Relation] = schema
		aggRows[li.Relation] = rows
	}

	// ---- Phase INT-Jn step 2: join the aggregates over the tree ----
	rKVs, rSchema, err := joinAggregates(ctx, b, b.Query.From, aggSchemas, aggRows, opts, &jnMetrics)
	if err != nil {
		return nil, err
	}

	// Locate the global selection attributes and every θ column in R.
	globalSelIdx, err := columnIndices(rSchema, b.SelAttrs)
	if err != nil {
		return nil, err
	}
	thetaIdx := make([]int, len(b.Leaves))
	for i, li := range b.Leaves {
		thetaIdx[i], err = thetaIndex(rSchema, li.Relation)
		if err != nil {
			return nil, err
		}
	}

	// ---- Phase INT-Ext: keyword extraction with multiplicities ----
	extMetrics := mapreduce.Metrics{Job: "INT-Ext"}
	var extOutput []mapreduce.KV
	for i, li := range b.Leaves {
		if len(li.ProjAttrs) == 0 {
			continue // relation contributes no keywords
		}
		res, err := extractRelation(ctx, db, b, li, i, rKVs, rSchema, globalSelIdx, thetaIdx, opts)
		if err != nil {
			return nil, err
		}
		extMetrics.Add(res.Metrics)
		extOutput = append(extOutput, res.Output...)
	}

	// ---- Phase INT-Cnsd: consolidate and sort ----
	cnsdJob := mapreduce.Job{
		Name:  "INT-Cnsd",
		Input: extOutput,
		Map: func(in mapreduce.KV, emit mapreduce.Emit) error {
			emit(in)
			return nil
		},
		Combine: indexReducer,
		Reduce:  indexReducer,
	}
	opts.apply(&cnsdJob)
	cnsdRes, err := mapreduce.Run(ctx, cnsdJob)
	if err != nil {
		return nil, err
	}
	cnsdMetrics := cnsdRes.Metrics
	cnsdMetrics.Job = "INT-Cnsd"

	phases := []Phase{
		{Name: "INT-Jn", Metrics: jnMetrics},
		{Name: "INT-Ext", Metrics: extMetrics},
		{Name: "INT-Cnsd", Metrics: cnsdMetrics},
	}
	return assembleOutput(AlgIntegrated, b.SelAttrs, cnsdRes.Output, phases)
}

// leafKeyCols returns the columns a relation is aggregated and re-joined on:
// its selection attributes followed by its join attributes (deduplicated —
// an attribute can be both, like custkey in Q2).
func leafKeyCols(li psj.LeafInfo) []string {
	out := make([]string, 0, len(li.SelAttrs)+len(li.JoinAttrs))
	seen := make(map[string]bool, cap(out))
	for _, c := range li.SelAttrs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range li.JoinAttrs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// aggregateRelation runs the aggregate query of §V-B step (1) as one MR job:
// group relation records by (cᵢ, jᵢ) and count them. Records whose selection
// attributes contain NULL belong to no db-page and are skipped.
func aggregateRelation(ctx context.Context, db *relation.Database, li psj.LeafInfo,
	opts Options, metrics *mapreduce.Metrics) (*relation.Schema, []mapreduce.KV, error) {

	t, err := db.Table(li.Relation)
	if err != nil {
		return nil, nil, err
	}
	keyCols := leafKeyCols(li)
	keyIdx, err := columnIndices(t.Schema, keyCols)
	if err != nil {
		return nil, nil, err
	}
	selIdx, err := columnIndices(t.Schema, li.SelAttrs)
	if err != nil {
		return nil, nil, err
	}

	cols := make([]relation.Column, 0, len(keyCols)+1)
	for _, c := range keyCols {
		j := t.Schema.ColumnIndex(c)
		cols = append(cols, t.Schema.Columns[j])
	}
	cols = append(cols, relation.Column{Name: thetaPrefix + li.Relation, Kind: relation.KindInt})
	schema, err := relation.NewSchema("agg:"+li.Relation, cols...)
	if err != nil {
		return nil, nil, err
	}

	sumReducer := func(key string, values [][]byte, emit mapreduce.Emit) error {
		var total uint64
		for _, v := range values {
			n, used := binary.Uvarint(v)
			if used <= 0 {
				return ErrCorruptPosting
			}
			total += n
		}
		emit(mapreduce.KV{Key: key, Value: binary.AppendUvarint(nil, total)})
		return nil
	}
	job := mapreduce.Job{
		Name:  "INT-Jn(agg " + li.Relation + ")",
		Input: tableToKVs(t),
		Map: func(in mapreduce.KV, emit mapreduce.Emit) error {
			row, _, err := relation.DecodeRow(in.Value)
			if err != nil {
				return err
			}
			for _, j := range selIdx {
				if row[j].IsNull() {
					return nil
				}
			}
			vals := make([]relation.Value, len(keyIdx))
			for i, j := range keyIdx {
				vals[i] = row[j]
			}
			emit(mapreduce.KV{Key: relation.Key(vals), Value: binary.AppendUvarint(nil, 1)})
			return nil
		},
		Combine: sumReducer,
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			var out []mapreduce.KV
			collect := func(kv mapreduce.KV) { out = append(out, kv) }
			if err := sumReducer(key, values, collect); err != nil {
				return err
			}
			for _, kv := range out {
				vals, err := relation.DecodeKey(kv.Key)
				if err != nil {
					return err
				}
				theta, used := binary.Uvarint(kv.Value)
				if used <= 0 {
					return ErrCorruptPosting
				}
				row := make(relation.Row, 0, len(vals)+1)
				row = append(row, vals...)
				row = append(row, relation.Int(int64(theta)))
				emit(mapreduce.KV{Value: relation.EncodeRow(row)})
			}
			return nil
		},
	}
	opts.apply(&job)
	res, err := mapreduce.Run(ctx, job)
	if err != nil {
		return nil, nil, err
	}
	metrics.Add(res.Metrics)
	return schema, res.Output, nil
}

// joinAggregates joins the per-relation aggregates over the query's join
// tree, producing R (§V-B): one row per distinct combination of selection
// and join attribute values, with every relation's θ.
func joinAggregates(ctx context.Context, b *psj.Bound, node *psj.JoinExpr,
	schemas map[string]*relation.Schema, rows map[string][]mapreduce.KV,
	opts Options, metrics *mapreduce.Metrics) ([]mapreduce.KV, *relation.Schema, error) {

	if node.IsLeaf() {
		return rows[node.Relation], schemas[node.Relation], nil
	}
	left, ls, err := joinAggregates(ctx, b, node.Left, schemas, rows, opts, metrics)
	if err != nil {
		return nil, nil, err
	}
	right, rs, err := joinAggregates(ctx, b, node.Right, schemas, rows, opts, metrics)
	if err != nil {
		return nil, nil, err
	}
	on := b.NodeOn(node)
	res, err := mrJoin(ctx, "INT-Jn(join)", left, right, ls, rs, on, node.Kind, opts)
	if err != nil {
		return nil, nil, err
	}
	metrics.Add(res.Metrics)
	schema, err := mergeJoinSchema(ls, rs, on)
	if err != nil {
		return nil, nil, err
	}
	return res.Output, schema, nil
}

// mergeJoinSchema mirrors the column layout mrJoin produces: left columns
// then right columns minus the join columns.
func mergeJoinSchema(ls, rs *relation.Schema, on []string) (*relation.Schema, error) {
	cols := make([]relation.Column, 0, len(ls.Columns)+len(rs.Columns))
	cols = append(cols, ls.Columns...)
	for _, c := range rs.Columns {
		isJoin := false
		for _, o := range on {
			if c.Name == o {
				isJoin = true
				break
			}
		}
		if !isJoin {
			cols = append(cols, c)
		}
	}
	return relation.NewSchema(ls.Name+"⨝"+rs.Name, cols...)
}

// thetaIndex locates a relation's θ column in R.
func thetaIndex(schema *relation.Schema, rel string) (int, error) {
	j := schema.ColumnIndex(thetaPrefix + rel)
	if j < 0 {
		return 0, fmt.Errorf("crawl: internal: θ column for %s missing from %s", rel, schema.Name)
	}
	return j, nil
}

// extractRelation runs one relation's INT-Ext job (§V-B step 2): a tagged
// join of R rows ('G') with the relation's records ('D') on (cᵢ, jᵢ). Every
// record's keyword counts are multiplied by Θᵢ = (Π θx)/θᵢ, the number of
// full join rows it is replicated into.
func extractRelation(ctx context.Context, db *relation.Database, b *psj.Bound,
	li psj.LeafInfo, leafPos int, rKVs []mapreduce.KV, rSchema *relation.Schema,
	globalSelIdx, thetaIdx []int, opts Options) (*mapreduce.Result, error) {

	t, err := db.Table(li.Relation)
	if err != nil {
		return nil, err
	}
	keyCols := leafKeyCols(li)
	keyIdxR, err := columnIndices(rSchema, keyCols)
	if err != nil {
		return nil, err
	}
	keyIdxD, err := columnIndices(t.Schema, keyCols)
	if err != nil {
		return nil, err
	}
	projIdx, err := columnIndices(t.Schema, li.ProjAttrs)
	if err != nil {
		return nil, err
	}
	selIdxD, err := columnIndices(t.Schema, li.SelAttrs)
	if err != nil {
		return nil, err
	}

	input := make([]mapreduce.KV, 0, len(rKVs)+t.Len())
	input = append(input, tagValues(rKVs, tagLeft)...)           // 'L' = R rows (group info)
	input = append(input, tagValues(tableToKVs(t), tagRight)...) // 'R' = data records

	job := mapreduce.Job{
		Name:  "INT-Ext(" + li.Relation + ")",
		Input: input,
		Map: func(in mapreduce.KV, emit mapreduce.Emit) error {
			tag := in.Value[0]
			row, _, err := relation.DecodeRow(in.Value[1:])
			if err != nil {
				return err
			}
			if tag == tagLeft {
				// R row: precompute the fragment key and Θᵢ.
				id := make(fragment.ID, len(globalSelIdx))
				for i, j := range globalSelIdx {
					if row[j].IsNull() {
						return nil // fragment excluded (NULL selection value)
					}
					id[i] = row[j]
				}
				prod := int64(1)
				for _, j := range thetaIdx {
					if !row[j].IsNull() {
						prod *= row[j].AsInt()
					}
				}
				self := int64(1)
				if v := row[thetaIdx[leafPos]]; !v.IsNull() {
					self = v.AsInt()
				}
				thetaI := prod / self
				keyVals := make([]relation.Value, len(keyIdxR))
				for i, j := range keyIdxR {
					keyVals[i] = row[j]
				}
				fragKey := id.Key()
				value := make([]byte, 0, 1+binary.MaxVarintLen64+len(fragKey))
				value = append(value, tagLeft)
				value = binary.AppendUvarint(value, uint64(thetaI))
				value = append(value, fragKey...)
				emit(mapreduce.KV{Key: relation.Key(keyVals), Value: value})
				return nil
			}
			// Data record: skip NULL selection attributes (no db-page).
			for _, j := range selIdxD {
				if row[j].IsNull() {
					return nil
				}
			}
			keyVals := make([]relation.Value, len(keyIdxD))
			for i, j := range keyIdxD {
				keyVals[i] = row[j]
			}
			emit(mapreduce.KV{Key: relation.Key(keyVals), Value: in.Value})
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			type group struct {
				fragKey string
				theta   int64
			}
			var groups []group
			var records [][]byte
			for _, v := range values {
				if v[0] == tagLeft {
					theta, used := binary.Uvarint(v[1:])
					if used <= 0 {
						return ErrCorruptPosting
					}
					groups = append(groups, group{fragKey: string(v[1+used:]), theta: int64(theta)})
				} else {
					records = append(records, v[1:])
				}
			}
			if len(groups) == 0 || len(records) == 0 {
				return nil
			}
			// Aggregate the whole reduce group before emitting: all
			// records here share (cᵢ, jᵢ), so their keyword counts can
			// be pooled, and per-keyword postings across groups packed
			// into one pair. This in-reducer combining is what keeps
			// the extraction phase's shuffle small — the point of the
			// integrated algorithm.
			counts := make(map[string]int64)
			var total int64
			for _, rec := range records {
				row, _, err := relation.DecodeRow(rec)
				if err != nil {
					return err
				}
				perRec := make(map[string]int)
				n := 0
				for _, j := range projIdx {
					n += fragment.CountTokens(row[j], perRec)
				}
				total += int64(n)
				for kw, c := range perRec {
					counts[kw] += int64(c)
				}
			}
			// Distinct R rows can map to the same fragment (they differ
			// only in join-attribute values); pool their multiplicities
			// so each fragment appears once per emitted blob.
			fragTheta := make(map[string]int64, len(groups))
			fragOrder := make([]string, 0, len(groups))
			for _, g := range groups {
				if _, ok := fragTheta[g.fragKey]; !ok {
					fragOrder = append(fragOrder, g.fragKey)
				}
				fragTheta[g.fragKey] += g.theta
			}
			for kw, n := range counts {
				var blob []byte
				for _, fk := range fragOrder {
					blob = appendPosting(blob, fk, n*fragTheta[fk])
				}
				emit(mapreduce.KV{Key: keywordKeyPrefix + kw, Value: blob})
			}
			for _, fk := range fragOrder {
				emit(mapreduce.KV{
					Key:   sizeKeyPrefix + fk,
					Value: binary.AppendUvarint(nil, uint64(total*fragTheta[fk])),
				})
			}
			return nil
		},
	}
	opts.apply(&job)
	return mapreduce.Run(ctx, job)
}
