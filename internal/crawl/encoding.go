package crawl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/relation"
)

// Key prefixes distinguish record classes that flow through the same MR
// jobs. Keyword keys and fragment-size keys share the final job's shuffle;
// join inputs carry a side tag in the value.
const (
	keywordKeyPrefix = "k" // key = "k"+keyword, value = posting(s)
	sizeKeyPrefix    = "s" // key = "s"+fragKey, value = uvarint term count
	// nullJoinKeyPrefix marks left-side rows whose join key contains
	// NULL: they must never match, so they shuffle under a private key.
	nullJoinKeyPrefix = "\x00unmatched\x00"

	tagLeft  byte = 'L'
	tagRight byte = 'R'
)

// ErrCorruptPosting is returned when a serialized posting cannot be decoded.
var ErrCorruptPosting = errors.New("crawl: corrupt posting encoding")

// appendPosting encodes one (fragment, tf) posting.
func appendPosting(dst []byte, fragKey string, tf int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(tf))
	dst = binary.AppendUvarint(dst, uint64(len(fragKey)))
	return append(dst, fragKey...)
}

// decodePostings decodes a concatenation of postings.
func decodePostings(b []byte) ([]Posting, error) {
	var out []Posting
	for len(b) > 0 {
		tf, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, ErrCorruptPosting
		}
		b = b[n:]
		l, n := binary.Uvarint(b)
		if n <= 0 || int(l) > len(b)-n {
			return nil, ErrCorruptPosting
		}
		b = b[n:]
		out = append(out, Posting{FragKey: string(b[:l]), TF: int64(tf)})
		b = b[l:]
	}
	return out, nil
}

// tableToKVs encodes a table's rows as untagged MR input pairs.
func tableToKVs(t *relation.Table) []mapreduce.KV {
	kvs := make([]mapreduce.KV, len(t.Rows))
	for i, r := range t.Rows {
		kvs[i] = mapreduce.KV{Value: relation.EncodeRow(r)}
	}
	return kvs
}

// tagValues prefixes every pair's value with a side tag for join jobs.
func tagValues(kvs []mapreduce.KV, tag byte) []mapreduce.KV {
	out := make([]mapreduce.KV, len(kvs))
	for i, kv := range kvs {
		v := make([]byte, 0, len(kv.Value)+1)
		v = append(v, tag)
		v = append(v, kv.Value...)
		out[i] = mapreduce.KV{Key: kv.Key, Value: v}
	}
	return out
}

// columnIndices resolves column positions in a schema, failing loudly if a
// column is missing (which would be a binder bug, not user error).
func columnIndices(schema *relation.Schema, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := schema.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("crawl: internal: column %s missing from %s", c, schema.Name)
		}
		idx[i] = j
	}
	return idx, nil
}

// joinKeyFor extracts the shuffle key for a row's join columns. ok is false
// if any join column is NULL (NULL never matches in an equi-join).
func joinKeyFor(row relation.Row, idx []int, buf []relation.Value) (key string, ok bool) {
	for i, j := range idx {
		if row[j].IsNull() {
			return "", false
		}
		buf[i] = row[j]
	}
	return relation.Key(buf), true
}

// assembleOutput converts the final indexing job's output pairs into the
// crawl Output maps. Both algorithms' last jobs emit the same format:
// "k"+keyword -> sorted posting list, "s"+fragKey -> uvarint total terms.
func assembleOutput(alg Algorithm, selAttrs []string, kvs []mapreduce.KV, phases []Phase) (*Output, error) {
	out := &Output{
		Algorithm:     alg,
		SelAttrs:      append([]string(nil), selAttrs...),
		FragmentTerms: make(map[string]int64),
		Inverted:      make(map[string][]Posting),
		Phases:        phases,
	}
	for _, kv := range kvs {
		switch {
		case len(kv.Key) > 0 && kv.Key[0] == keywordKeyPrefix[0]:
			ps, err := decodePostings(kv.Value)
			if err != nil {
				return nil, err
			}
			out.Inverted[kv.Key[1:]] = ps
		case len(kv.Key) > 0 && kv.Key[0] == sizeKeyPrefix[0]:
			n, used := binary.Uvarint(kv.Value)
			if used <= 0 {
				return nil, fmt.Errorf("%w: size entry", ErrCorruptPosting)
			}
			out.FragmentTerms[kv.Key[1:]] += int64(n)
		default:
			return nil, fmt.Errorf("crawl: internal: unexpected output key %q", kv.Key)
		}
	}
	return out, nil
}
