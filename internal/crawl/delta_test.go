package crawl

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fooddb"
	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
)

func boundFooddb(t *testing.T) (*relation.Database, *psj.Bound) {
	t.Helper()
	db := fooddb.New()
	b, err := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	if err != nil {
		t.Fatal(err)
	}
	return db, b
}

// TestRecrawlMatchesReference: re-crawling any single partition yields
// byte-identical keyword statistics to what the full crawl derives for
// that fragment — the property that lets a delta patch an index built by
// Reference or the MR algorithms without drift.
func TestRecrawlMatchesReference(t *testing.T) {
	db, b := boundFooddb(t)
	out, err := Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	// Full-crawl per-fragment counts from the inverted lists.
	want := make(map[string]map[string]int64)
	for kw, ps := range out.Inverted {
		for _, p := range ps {
			m, ok := want[p.FragKey]
			if !ok {
				m = make(map[string]int64)
				want[p.FragKey] = m
			}
			m[kw] = p.TF
		}
	}
	ids, err := out.Fragments()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		counts, total, exists, err := RecrawlFragment(db, b, id)
		if err != nil {
			t.Fatalf("RecrawlFragment(%s): %v", id, err)
		}
		if !exists {
			t.Fatalf("fragment %s vanished on recrawl", id)
		}
		if total != out.FragmentTerms[id.Key()] {
			t.Errorf("%s total = %d, full crawl %d", id, total, out.FragmentTerms[id.Key()])
		}
		if !reflect.DeepEqual(counts, want[id.Key()]) {
			t.Errorf("%s counts = %v, full crawl %v", id, counts, want[id.Key()])
		}
	}
}

// TestRecrawlMissingPartition: an identifier selecting no rows reports
// exists=false.
func TestRecrawlMissingPartition(t *testing.T) {
	db, b := boundFooddb(t)
	_, _, exists, err := RecrawlFragment(db, b,
		fragment.ID{relation.String("Klingon"), relation.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if exists {
		t.Error("empty partition reported as existing")
	}
}

// TestDeriveDeltaClassifies drives all four cases: a changed partition the
// index knows (update), a new partition (insert), a vanished partition the
// index still holds (remove), and an unknown empty partition (no-op).
func TestDeriveDeltaClassifies(t *testing.T) {
	db, b := boundFooddb(t)
	// A new restaurant opens a (American, 25) partition the index has
	// never seen, and a comment lands on Bond's Cafe (American, 9).
	restaurant, err := db.Table("restaurant")
	if err != nil {
		t.Fatal(err)
	}
	err = restaurant.Append(relation.Row{
		relation.Int(8), relation.String("Deluxe Diner"), relation.String("American"),
		relation.Int(25), relation.Float(4.9),
	})
	if err != nil {
		t.Fatal(err)
	}
	comments, err := db.Table("comment")
	if err != nil {
		t.Fatal(err)
	}
	err = comments.Append(relation.Row{
		relation.Int(207), relation.Int(7), relation.Int(120),
		relation.String("Great froyo"), relation.String("03/12"),
	})
	if err != nil {
		t.Fatal(err)
	}

	updated := fragment.ID{relation.String("American"), relation.Int(9)}
	inserted := fragment.ID{relation.String("American"), relation.Int(25)}
	removed := fragment.ID{relation.String("Mythical"), relation.Int(1)} // index-known, db-empty
	noop := fragment.ID{relation.String("Klingon"), relation.Int(7)}

	have := func(id fragment.ID) bool {
		return id.Key() == updated.Key() || id.Key() == removed.Key()
	}
	d, err := DeriveDelta(context.Background(), db, b, []fragment.ID{updated, inserted, removed, noop}, have)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.SelAttrs, b.SelAttrs) {
		t.Errorf("delta SelAttrs = %v", d.SelAttrs)
	}
	if len(d.Changes) != 3 {
		t.Fatalf("changes = %d, want 3 (no-op dropped): %+v", len(d.Changes), d.Changes)
	}
	ops := map[string]ChangeOp{}
	for _, ch := range d.Changes {
		ops[ch.ID.Key()] = ch.Op
		if ch.Op != OpRemoveFragment {
			if ch.TotalTerms <= 0 || len(ch.TermCounts) == 0 {
				t.Errorf("%s %s carries no statistics", ch.Op, ch.ID)
			}
		} else if ch.TermCounts != nil || ch.TotalTerms != 0 {
			t.Errorf("remove %s carries statistics", ch.ID)
		}
	}
	if ops[updated.Key()] != OpUpdateFragment {
		t.Errorf("updated partition classified as %v", ops[updated.Key()])
	}
	if ops[inserted.Key()] != OpInsertFragment {
		t.Errorf("new partition classified as %v", ops[inserted.Key()])
	}
	if ops[removed.Key()] != OpRemoveFragment {
		t.Errorf("vanished partition classified as %v", ops[removed.Key()])
	}
	// The update's statistics include the new comment's keyword.
	for _, ch := range d.Changes {
		if ch.ID.Key() == updated.Key() && ch.TermCounts["froyo"] != 1 {
			t.Errorf("update misses the new comment: %v", ch.TermCounts)
		}
	}
}

// delta test helpers: one-change deltas over a synthetic (g, v) id space.
func deltaID(g string, v int64) fragment.ID {
	return fragment.ID{relation.String(g), relation.Int(v)}
}

func ins(id fragment.ID, terms map[string]int64, total int64) Delta {
	return Delta{Changes: []FragmentChange{{Op: OpInsertFragment, ID: id, TermCounts: terms, TotalTerms: total}}}
}

func upd(id fragment.ID, terms map[string]int64, total int64) Delta {
	return Delta{Changes: []FragmentChange{{Op: OpUpdateFragment, ID: id, TermCounts: terms, TotalTerms: total}}}
}

func rem(id fragment.ID) Delta {
	return Delta{Changes: []FragmentChange{{Op: OpRemoveFragment, ID: id}}}
}

// TestCoalesceFolds exercises every legal folding rule: the net delta
// carries at most one change per identifier and the same end state as
// applying the sequence one by one.
func TestCoalesceFolds(t *testing.T) {
	a, b, c, d, e := deltaID("g", 1), deltaID("g", 2), deltaID("g", 3), deltaID("g", 4), deltaID("g", 5)
	got, err := Coalesce([]Delta{
		ins(a, map[string]int64{"old": 1}, 1),  // insert+update → insert(new)
		upd(a, map[string]int64{"new": 2}, 2),  //
		ins(b, map[string]int64{"gone": 1}, 1), // insert+remove → cancelled
		rem(b),                                 //
		upd(c, map[string]int64{"v1": 1}, 1),   // update+update → last update
		upd(c, map[string]int64{"v2": 3}, 3),   //
		upd(d, map[string]int64{"x": 1}, 1),    // update+remove → remove
		rem(d),                                 //
		rem(e),                                 // remove+insert → update
		ins(e, map[string]int64{"re": 4}, 4),   //
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]FragmentChange{
		a.Key(): {Op: OpInsertFragment, ID: a, TermCounts: map[string]int64{"new": 2}, TotalTerms: 2},
		c.Key(): {Op: OpUpdateFragment, ID: c, TermCounts: map[string]int64{"v2": 3}, TotalTerms: 3},
		d.Key(): {Op: OpRemoveFragment, ID: d},
		e.Key(): {Op: OpUpdateFragment, ID: e, TermCounts: map[string]int64{"re": 4}, TotalTerms: 4},
	}
	if len(got.Changes) != len(want) {
		t.Fatalf("coalesced to %d changes, want %d: %+v", len(got.Changes), len(want), got.Changes)
	}
	for _, ch := range got.Changes {
		w, ok := want[ch.ID.Key()]
		if !ok {
			t.Errorf("unexpected change for %s (cancelled id leaked?)", ch.ID)
			continue
		}
		if !reflect.DeepEqual(ch, w) {
			t.Errorf("change for %s = %+v, want %+v", ch.ID, ch, w)
		}
	}
}

// TestCoalesceCancelThenReinsert: an insert annihilated by a remove may be
// re-inserted later in the batch; the net effect is a plain insert.
func TestCoalesceCancelThenReinsert(t *testing.T) {
	a := deltaID("g", 1)
	got, err := Coalesce([]Delta{
		ins(a, map[string]int64{"v1": 1}, 1),
		rem(a),
		ins(a, map[string]int64{"v2": 2}, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Changes) != 1 {
		t.Fatalf("changes = %+v, want one insert", got.Changes)
	}
	ch := got.Changes[0]
	if ch.Op != OpInsertFragment || ch.TermCounts["v2"] != 2 {
		t.Errorf("net change = %+v, want insert with v2 stats", ch)
	}
}

// TestCoalesceConflicts: sequences that could not have applied cleanly one
// by one are rejected instead of silently masked.
func TestCoalesceConflicts(t *testing.T) {
	a := deltaID("g", 1)
	stats := map[string]int64{"w": 1}
	for name, ds := range map[string][]Delta{
		"insert+insert": {ins(a, stats, 1), ins(a, stats, 1)},
		"update+insert": {upd(a, stats, 1), ins(a, stats, 1)},
		"remove+remove": {rem(a), rem(a)},
		"remove+update": {rem(a), upd(a, stats, 1)},
		// A cancelled insert leaves the fragment absent mid-batch: only a
		// re-insert may follow; update/remove are the sequential failures
		// the cancellation must not mask.
		"cancel+remove": {ins(a, stats, 1), rem(a), rem(a)},
		"cancel+update": {ins(a, stats, 1), rem(a), upd(a, stats, 1)},
	} {
		if _, err := Coalesce(ds); !errors.Is(err, ErrCoalesce) {
			t.Errorf("%s: err = %v, want ErrCoalesce", name, err)
		}
	}
}

// TestCoalesceSelAttrs: the folded delta carries the first non-empty
// attribute set; disagreeing sets are rejected.
func TestCoalesceSelAttrs(t *testing.T) {
	a := deltaID("g", 1)
	d1 := upd(a, map[string]int64{"w": 1}, 1)
	d2 := upd(deltaID("g", 2), map[string]int64{"w": 1}, 1)
	d2.SelAttrs = []string{"cuisine", "budget"}
	got, err := Coalesce([]Delta{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.SelAttrs, d2.SelAttrs) {
		t.Errorf("SelAttrs = %v, want %v", got.SelAttrs, d2.SelAttrs)
	}
	d3 := rem(deltaID("g", 3))
	d3.SelAttrs = []string{"other"}
	if _, err := Coalesce([]Delta{d2, d3}); !errors.Is(err, ErrCoalesceSpec) {
		t.Errorf("disagreeing SelAttrs: err = %v, want ErrCoalesceSpec", err)
	}
	if empty, err := Coalesce(nil); err != nil || len(empty.Changes) != 0 {
		t.Errorf("Coalesce(nil) = %+v, %v", empty, err)
	}
}

// TestPinParamsErrors: arity mismatches are rejected.
func TestPinParamsErrors(t *testing.T) {
	_, b := boundFooddb(t)
	if _, err := PinParams(b, fragment.ID{relation.String("American")}); !errors.Is(err, ErrPinArity) {
		t.Errorf("arity err = %v", err)
	}
	params, err := PinParams(b, fragment.ID{relation.String("American"), relation.Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	// cuisine pins $cuisine; budget pins both $min and $max.
	want := map[string]relation.Value{
		"cuisine": relation.String("American"),
		"min":     relation.Int(9),
		"max":     relation.Int(9),
	}
	if !reflect.DeepEqual(params, want) {
		t.Errorf("params = %v, want %v", params, want)
	}
}
