package crawl

import (
	"context"
	"testing"
	"time"

	"repro/internal/fooddb"
	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
)

// TestEmptyOperandRelations: inner joins over an empty relation yield an
// empty (but valid) index; left-outer keeps the left side.
func TestEmptyOperandRelations(t *testing.T) {
	db := relation.NewDatabase("empty")
	left := relation.NewTable(relation.MustSchema("l",
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "g", Kind: relation.KindString},
		relation.Column{Name: "n", Kind: relation.KindInt},
		relation.Column{Name: "txt", Kind: relation.KindString}))
	_ = left.Append(relation.Row{
		relation.Int(1), relation.String("a"), relation.Int(2), relation.String("hello world"),
	})
	right := relation.NewTable(relation.MustSchema("r",
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "rtxt", Kind: relation.KindString}))
	db.AddTable(left)
	db.AddTable(right)

	for _, sql := range []string{
		"SELECT txt, rtxt FROM l JOIN r WHERE g = $g AND n BETWEEN $lo AND $hi",
		"SELECT txt, rtxt FROM l LEFT JOIN r WHERE g = $g AND n BETWEEN $lo AND $hi",
	} {
		b, err := psj.Bind(psj.MustParse(sql), db)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Reference(db, b)
		if err != nil {
			t.Fatalf("Reference: %v", err)
		}
		sw, err := Stepwise(context.Background(), db, b, Options{})
		if err != nil {
			t.Fatalf("Stepwise(%s): %v", sql, err)
		}
		in, err := Integrated(context.Background(), db, b, Options{})
		if err != nil {
			t.Fatalf("Integrated(%s): %v", sql, err)
		}
		if err := equalOutputs(ref, sw); err != nil {
			t.Errorf("%s: ref vs sw: %v", sql, err)
		}
		if err := equalOutputs(ref, in); err != nil {
			t.Errorf("%s: ref vs int: %v", sql, err)
		}
	}
}

// TestAllNullProjections: rows whose projected values are all NULL still
// form fragments (with zero keywords) consistently across algorithms.
func TestAllNullProjections(t *testing.T) {
	db := relation.NewDatabase("nulls")
	tbl := relation.NewTable(relation.MustSchema("t",
		relation.Column{Name: "g", Kind: relation.KindString},
		relation.Column{Name: "n", Kind: relation.KindInt},
		relation.Column{Name: "txt", Kind: relation.KindString}))
	_ = tbl.Append(
		relation.Row{relation.String("a"), relation.Int(1), relation.Null()},
		relation.Row{relation.String("a"), relation.Int(2), relation.String("words here")},
	)
	db.AddTable(tbl)
	b, err := psj.Bind(psj.MustParse("SELECT txt FROM t WHERE g = $g AND n BETWEEN $lo AND $hi"), db)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Stepwise(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := Integrated(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalOutputs(ref, sw); err != nil {
		t.Errorf("ref vs sw: %v", err)
	}
	if err := equalOutputs(ref, in); err != nil {
		t.Errorf("ref vs int: %v", err)
	}
	if len(ref.FragmentTerms) != 2 {
		t.Errorf("fragments = %d, want 2 (one empty)", len(ref.FragmentTerms))
	}
}

// TestSingleTaskConfiguration: everything works with parallelism and task
// counts pinned to 1 (fully sequential MR).
func TestSingleTaskConfiguration(t *testing.T) {
	db, b := fooddbBound(t)
	opts := Options{Parallelism: 1, MapTasks: 1, ReduceTasks: 1}
	sw, err := Stepwise(context.Background(), db, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Integrated(context.Background(), db, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkFooddbOutput(t, sw)
	checkFooddbOutput(t, in)
}

// TestDeadlinePropagation: an already-expired deadline aborts the crawl
// quickly instead of completing.
func TestDeadlinePropagation(t *testing.T) {
	db, b := fooddbBound(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	if _, err := Integrated(ctx, db, b, Options{}); err == nil {
		t.Error("expired deadline should abort")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("abort took %v", elapsed)
	}
}

// TestOutputTotalWallPositive: phase accounting produces positive wall
// times that sum into TotalWall.
func TestOutputTotalWallPositive(t *testing.T) {
	db, b := fooddbBound(t)
	out, err := Stepwise(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalWall() <= 0 {
		t.Errorf("TotalWall = %d", out.TotalWall())
	}
	var sum int64
	for _, p := range out.Phases {
		if p.Metrics.Wall <= 0 {
			t.Errorf("phase %s wall = %v", p.Name, p.Metrics.Wall)
		}
		sum += int64(p.Metrics.Wall)
	}
	if sum != out.TotalWall() {
		t.Errorf("TotalWall %d != phase sum %d", out.TotalWall(), sum)
	}
}

// TestDuplicateTextAcrossRelations: the same keyword appearing in several
// operand relations consolidates into a single posting per fragment.
func TestDuplicateTextAcrossRelations(t *testing.T) {
	db := fooddb.New()
	// "burger" appears in restaurant.name (Burger Queen) and in comments.
	b, err := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []func() (*Output, error){
		func() (*Output, error) { return Reference(db, b) },
		func() (*Output, error) { return Stepwise(context.Background(), db, b, Options{}) },
		func() (*Output, error) { return Integrated(context.Background(), db, b, Options{}) },
	} {
		out, err := alg()
		if err != nil {
			t.Fatal(err)
		}
		// (American,10) has burger ×2: once from name, once from comment —
		// exactly one posting with TF 2.
		count := 0
		for _, p := range out.Inverted["burger"] {
			id, err := decodeFragName(p.FragKey)
			if err != nil {
				t.Fatal(err)
			}
			if id == "(American,10)" {
				count++
				if p.TF != 2 {
					t.Errorf("%s: TF = %d, want 2", out.Algorithm, p.TF)
				}
			}
		}
		if count != 1 {
			t.Errorf("%s: postings for (American,10) = %d, want 1", out.Algorithm, count)
		}
	}
}

func decodeFragName(key string) (string, error) {
	id, err := fragment.ParseID(key)
	if err != nil {
		return "", err
	}
	return id.String(), nil
}
