package crawl

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fooddb"
	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
)

func fooddbBound(t *testing.T) (*relation.Database, *psj.Bound) {
	t.Helper()
	db := fooddb.New()
	b, err := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return db, b
}

// fragTermsByName renders FragmentTerms with human-readable fragment names.
func fragTermsByName(t *testing.T, out *Output) map[string]int64 {
	t.Helper()
	got := make(map[string]int64, len(out.FragmentTerms))
	for k, n := range out.FragmentTerms {
		id, err := fragment.ParseID(k)
		if err != nil {
			t.Fatalf("ParseID: %v", err)
		}
		got[id.String()] = n
	}
	return got
}

// wantFig9Terms is the fragment graph node weights of Fig. 9.
var wantFig9Terms = map[string]int64{
	"(American,9)":  8,
	"(American,10)": 8,
	"(American,12)": 17,
	"(American,18)": 8,
	"(Thai,10)":     10,
}

func checkFooddbOutput(t *testing.T, out *Output) {
	t.Helper()
	if got := fragTermsByName(t, out); !reflect.DeepEqual(got, wantFig9Terms) {
		t.Errorf("fragment terms = %v, want %v", got, wantFig9Terms)
	}
	// Fig. 6: burger appears in three fragments with counts 2,1,1 sorted
	// by TF descending.
	ps := out.Inverted["burger"]
	if len(ps) != 3 {
		t.Fatalf("burger postings = %v", ps)
	}
	if ps[0].TF != 2 {
		t.Errorf("top burger posting TF = %d, want 2", ps[0].TF)
	}
	id, err := fragment.ParseID(ps[0].FragKey)
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "(American,10)" {
		t.Errorf("top burger fragment = %s, want (American,10)", id)
	}
	if ps[1].TF != 1 || ps[2].TF != 1 {
		t.Errorf("burger tail TFs = %d,%d, want 1,1", ps[1].TF, ps[2].TF)
	}
	for kw, want := range map[string]int{"coffee": 1, "fries": 1} {
		if got := out.Inverted[kw]; len(got) != want {
			t.Errorf("%s postings = %v, want %d", kw, got, want)
		}
	}
}

func TestReferenceFooddb(t *testing.T) {
	db, b := fooddbBound(t)
	out, err := Reference(db, b)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	checkFooddbOutput(t, out)
}

func TestStepwiseFooddb(t *testing.T) {
	db, b := fooddbBound(t)
	out, err := Stepwise(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatalf("Stepwise: %v", err)
	}
	checkFooddbOutput(t, out)
	if out.Algorithm != AlgStepwise {
		t.Errorf("Algorithm = %q", out.Algorithm)
	}
	wantPhases := []string{"SW-Jn", "SW-Grp", "SW-Idx"}
	if len(out.Phases) != 3 {
		t.Fatalf("phases = %v", out.Phases)
	}
	for i, p := range out.Phases {
		if p.Name != wantPhases[i] {
			t.Errorf("phase[%d] = %s, want %s", i, p.Name, wantPhases[i])
		}
	}
	if out.Phases[0].Metrics.IntermediateRecords == 0 {
		t.Error("join phase should shuffle records")
	}
}

func TestIntegratedFooddb(t *testing.T) {
	db, b := fooddbBound(t)
	out, err := Integrated(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatalf("Integrated: %v", err)
	}
	checkFooddbOutput(t, out)
	if out.Algorithm != AlgIntegrated {
		t.Errorf("Algorithm = %q", out.Algorithm)
	}
	wantPhases := []string{"INT-Jn", "INT-Ext", "INT-Cnsd"}
	for i, p := range out.Phases {
		if p.Name != wantPhases[i] {
			t.Errorf("phase[%d] = %s, want %s", i, p.Name, wantPhases[i])
		}
	}
}

// equalOutputs compares the index content (not metrics) of two outputs.
func equalOutputs(a, b *Output) error {
	if !reflect.DeepEqual(a.FragmentTerms, b.FragmentTerms) {
		return fmt.Errorf("fragment terms differ:\n%v\n%v", a.FragmentTerms, b.FragmentTerms)
	}
	if len(a.Inverted) != len(b.Inverted) {
		return fmt.Errorf("keyword counts differ: %d vs %d", len(a.Inverted), len(b.Inverted))
	}
	for kw, ap := range a.Inverted {
		bp, ok := b.Inverted[kw]
		if !ok {
			return fmt.Errorf("keyword %q missing", kw)
		}
		if !reflect.DeepEqual(ap, bp) {
			return fmt.Errorf("postings for %q differ: %v vs %v", kw, ap, bp)
		}
	}
	return nil
}

func TestAllAlgorithmsAgreeOnFooddb(t *testing.T) {
	db, b := fooddbBound(t)
	ref, err := Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Stepwise(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := Integrated(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalOutputs(ref, sw); err != nil {
		t.Errorf("reference vs stepwise: %v", err)
	}
	if err := equalOutputs(ref, in); err != nil {
		t.Errorf("reference vs integrated: %v", err)
	}
}

func TestFragmentsAccessor(t *testing.T) {
	db, b := fooddbBound(t)
	out, err := Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := out.Fragments()
	if err != nil {
		t.Fatalf("Fragments: %v", err)
	}
	if len(ids) != 5 {
		t.Fatalf("fragments = %d, want 5", len(ids))
	}
	// Sorted by identifier: American group before Thai group.
	if ids[0].String() != "(American,9)" || ids[4].String() != "(Thai,10)" {
		t.Errorf("fragment order = %v … %v", ids[0], ids[4])
	}
}

func TestCancelledContext(t *testing.T) {
	db, b := fooddbBound(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Stepwise(ctx, db, b, Options{}); err == nil {
		t.Error("Stepwise with cancelled ctx should fail")
	}
	if _, err := Integrated(ctx, db, b, Options{}); err == nil {
		t.Error("Integrated with cancelled ctx should fail")
	}
}

// randomTestDB builds a three-relation database with (r1 ⋈ r2) ⋈ r3
// chains, random data, and occasional NULLs in projected and selection
// columns (join columns stay non-NULL, as in real key/foreign-key data).
func randomTestDB(r *rand.Rand) *relation.Database {
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox hen", "gnu ibis"}
	randText := func() relation.Value {
		if r.Intn(10) == 0 {
			return relation.Null()
		}
		return relation.String(words[r.Intn(len(words))])
	}
	db := relation.NewDatabase("rand")

	r1 := relation.NewTable(relation.MustSchema("r1",
		relation.Column{Name: "j1", Kind: relation.KindInt},
		relation.Column{Name: "s1", Kind: relation.KindString},
		relation.Column{Name: "n1", Kind: relation.KindInt},
		relation.Column{Name: "x1", Kind: relation.KindString},
	))
	for i := 0; i < 2+r.Intn(12); i++ {
		var sel relation.Value = relation.String([]string{"a", "b"}[r.Intn(2)])
		if r.Intn(12) == 0 {
			sel = relation.Null() // excluded from every fragment
		}
		_ = r1.Append(relation.Row{
			relation.Int(int64(r.Intn(4))), sel,
			relation.Int(int64(r.Intn(3))), randText(),
		})
	}

	r2 := relation.NewTable(relation.MustSchema("r2",
		relation.Column{Name: "j1", Kind: relation.KindInt},
		relation.Column{Name: "j2", Kind: relation.KindInt},
		relation.Column{Name: "x2", Kind: relation.KindString},
	))
	for i := 0; i < r.Intn(15); i++ {
		_ = r2.Append(relation.Row{
			relation.Int(int64(r.Intn(4))), relation.Int(int64(r.Intn(4))), randText(),
		})
	}

	r3 := relation.NewTable(relation.MustSchema("r3",
		relation.Column{Name: "j2", Kind: relation.KindInt},
		relation.Column{Name: "x3", Kind: relation.KindString},
	))
	for i := 0; i < r.Intn(8); i++ {
		_ = r3.Append(relation.Row{relation.Int(int64(r.Intn(4))), randText()})
	}

	db.AddTable(r1)
	db.AddTable(r2)
	db.AddTable(r3)
	return db
}

// TestPropAlgorithmsAgreeOnRandomDatabases is the central equivalence
// property of §V: stepwise, integrated, and the non-MR reference produce
// identical fragment indexes, across join kinds and random data.
func TestPropAlgorithmsAgreeOnRandomDatabases(t *testing.T) {
	joins := []string{"JOIN", "LEFT JOIN"}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randomTestDB(r)
		sql := fmt.Sprintf(
			"SELECT x1, x2, x3, s1 FROM (r1 %s r2) %s r3 WHERE s1 = $a AND n1 BETWEEN $lo AND $hi",
			joins[r.Intn(2)], joins[r.Intn(2)])
		b, err := psj.Bind(psj.MustParse(sql), db)
		if err != nil {
			t.Fatalf("seed %d: Bind: %v", seed, err)
		}
		ref, err := Reference(db, b)
		if err != nil {
			t.Fatalf("seed %d: Reference: %v", seed, err)
		}
		opts := Options{Parallelism: 1 + r.Intn(4), ReduceTasks: 1 + r.Intn(4)}
		sw, err := Stepwise(context.Background(), db, b, opts)
		if err != nil {
			t.Fatalf("seed %d: Stepwise: %v", seed, err)
		}
		in, err := Integrated(context.Background(), db, b, opts)
		if err != nil {
			t.Fatalf("seed %d: Integrated: %v", seed, err)
		}
		if err := equalOutputs(ref, sw); err != nil {
			t.Fatalf("seed %d (%s): reference vs stepwise: %v", seed, sql, err)
		}
		if err := equalOutputs(ref, in); err != nil {
			t.Fatalf("seed %d (%s): reference vs integrated: %v", seed, sql, err)
		}
	}
}

// TestPropBushyTreeAgrees exercises the bushy (Q3-like) join shape.
func TestPropBushyTreeAgrees(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randomTestDB(r)
		// r4 joins r3 on a fresh key to build (r1⋈r2)⋈(r3⋈r4).
		r4 := relation.NewTable(relation.MustSchema("r4",
			relation.Column{Name: "j2", Kind: relation.KindInt},
			relation.Column{Name: "x4", Kind: relation.KindString},
		))
		for i := 0; i < r.Intn(6); i++ {
			_ = r4.Append(relation.Row{
				relation.Int(int64(r.Intn(4))),
				relation.String([]string{"pea", "oak", "fir elm"}[r.Intn(3)]),
			})
		}
		db.AddTable(r4)
		sql := "SELECT x1, x2, x3, x4 FROM (r1 JOIN r2) JOIN (r3 JOIN r4 ON j2) WHERE s1 = $a AND n1 BETWEEN $lo AND $hi"
		b, err := psj.Bind(psj.MustParse(sql), db)
		if err != nil {
			t.Fatalf("seed %d: Bind: %v", seed, err)
		}
		ref, err := Reference(db, b)
		if err != nil {
			t.Fatalf("seed %d: Reference: %v", seed, err)
		}
		sw, err := Stepwise(context.Background(), db, b, Options{})
		if err != nil {
			t.Fatalf("seed %d: Stepwise: %v", seed, err)
		}
		in, err := Integrated(context.Background(), db, b, Options{})
		if err != nil {
			t.Fatalf("seed %d: Integrated: %v", seed, err)
		}
		if err := equalOutputs(ref, sw); err != nil {
			t.Fatalf("seed %d: reference vs stepwise: %v", seed, err)
		}
		if err := equalOutputs(ref, in); err != nil {
			t.Fatalf("seed %d: reference vs integrated: %v", seed, err)
		}
	}
}

// TestIntegratedShufflesFewerBytes verifies the headline claim of §V-B: on
// a workload with wide projection attributes and joins, the integrated
// algorithm moves less intermediate data than the stepwise algorithm.
func TestIntegratedShufflesFewerBytes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := relation.NewDatabase("wide")
	// High join fan-out (many children per parent) and wide parent text:
	// the stepwise join replicates each parent's text once per child,
	// which is exactly the overhead §V-B eliminates.
	longText := "parent description " + fmt.Sprint(r.Int63()) + " " +
		"alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu " +
		"nu xi omicron pi rho sigma tau upsilon phi chi psi omega " +
		"one two three four five six seven eight nine ten"
	parent := relation.NewTable(relation.MustSchema("parent",
		relation.Column{Name: "pk", Kind: relation.KindInt},
		relation.Column{Name: "grp", Kind: relation.KindInt},
		relation.Column{Name: "ptext", Kind: relation.KindString},
	))
	for i := 0; i < 20; i++ {
		_ = parent.Append(relation.Row{
			relation.Int(int64(i)), relation.Int(int64(i % 4)),
			relation.String(fmt.Sprintf("%s block%d", longText, i)),
		})
	}
	child := relation.NewTable(relation.MustSchema("child",
		relation.Column{Name: "pk", Kind: relation.KindInt},
		relation.Column{Name: "score", Kind: relation.KindInt},
		relation.Column{Name: "ctext", Kind: relation.KindString},
	))
	for i := 0; i < 2000; i++ {
		_ = child.Append(relation.Row{
			relation.Int(int64(r.Intn(20))), relation.Int(int64(r.Intn(4))),
			relation.String("short note"),
		})
	}
	db.AddTable(parent)
	db.AddTable(child)

	b, err := psj.Bind(psj.MustParse(
		"SELECT ptext, ctext FROM parent JOIN child WHERE grp = $g AND score BETWEEN $lo AND $hi"), db)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Stepwise(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := Integrated(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalOutputs(sw, in); err != nil {
		t.Fatalf("outputs differ: %v", err)
	}
	var swBytes, inBytes int64
	for _, p := range sw.Phases {
		swBytes += p.Metrics.IntermediateBytes
	}
	for _, p := range in.Phases {
		inBytes += p.Metrics.IntermediateBytes
	}
	if inBytes >= swBytes {
		t.Errorf("integrated shuffled %d bytes, stepwise %d — expected integrated < stepwise",
			inBytes, swBytes)
	}
	if sw.TotalWall() <= 0 || in.TotalWall() <= 0 {
		t.Error("wall times should be positive")
	}
}

func TestDecodePostingsCorrupt(t *testing.T) {
	if _, err := decodePostings([]byte{0x80}); err == nil {
		t.Error("truncated varint should fail")
	}
	blob := appendPosting(nil, "frag", 3)
	if ps, err := decodePostings(blob); err != nil || len(ps) != 1 || ps[0].TF != 3 {
		t.Errorf("round trip = %v, %v", ps, err)
	}
	if _, err := decodePostings(blob[:len(blob)-2]); err == nil {
		t.Error("truncated key should fail")
	}
}

// TestSingleRelationQuery exercises the degenerate no-join case.
func TestSingleRelationQuery(t *testing.T) {
	db := fooddb.New()
	b, err := psj.Bind(psj.MustParse(
		"SELECT name, rate FROM restaurant WHERE cuisine = $c AND budget BETWEEN $l AND $u"), db)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Stepwise(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := Integrated(context.Background(), db, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalOutputs(ref, sw); err != nil {
		t.Errorf("reference vs stepwise: %v", err)
	}
	if err := equalOutputs(ref, in); err != nil {
		t.Errorf("reference vs integrated: %v", err)
	}
	if len(ref.FragmentTerms) != 5 {
		t.Errorf("fragments = %d, want 5", len(ref.FragmentTerms))
	}
}
