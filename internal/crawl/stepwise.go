package crawl

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/fragment"
	"repro/internal/mapreduce"
	"repro/internal/psj"
	"repro/internal/relation"
)

// Stepwise runs the stepwise crawling and indexing algorithm (paper §V-A):
//
//	SW-Jn:  one MR join job per join-tree node, carrying all columns —
//	        including the projection attributes — through every join;
//	SW-Grp: one MR job grouping joined records by selection-attribute
//	        values into db-page fragments;
//	SW-Idx: one MR job building the inverted fragment index, treating each
//	        fragment as a document.
func Stepwise(ctx context.Context, db *relation.Database, b *psj.Bound, opts Options) (*Output, error) {
	// ---- Phase SW-Jn ----
	joinMetrics := mapreduce.Metrics{Job: "SW-Jn"}
	rows, err := stepwiseJoin(ctx, db, b, b.Query.From, opts, &joinMetrics)
	if err != nil {
		return nil, err
	}
	fullSchema := b.NodeSchema(b.Query.From)

	projIdx, err := columnIndices(fullSchema, b.Projections)
	if err != nil {
		return nil, err
	}
	selIdx, err := columnIndices(fullSchema, b.SelAttrs)
	if err != nil {
		return nil, err
	}

	// ---- Phase SW-Grp: group records into fragments ----
	grpJob := mapreduce.Job{
		Name:  "SW-Grp",
		Input: rows,
		Map: func(in mapreduce.KV, emit mapreduce.Emit) error {
			row, _, err := relation.DecodeRow(in.Value)
			if err != nil {
				return err
			}
			id := make(fragment.ID, len(selIdx))
			for i, j := range selIdx {
				if row[j].IsNull() {
					// A NULL selection attribute satisfies no
					// comparison, so the record is in no db-page.
					return nil
				}
				id[i] = row[j]
			}
			projected := make(relation.Row, len(projIdx))
			for i, j := range projIdx {
				projected[i] = row[j]
			}
			emit(mapreduce.KV{Key: id.Key(), Value: relation.EncodeRow(projected)})
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			// Concatenate the fragment's records into one blob; this
			// materialization is the point of the stepwise approach
			// (and its cost).
			n := 0
			for _, v := range values {
				n += len(v)
			}
			blob := make([]byte, 0, n)
			for _, v := range values {
				blob = append(blob, v...)
			}
			emit(mapreduce.KV{Key: key, Value: blob})
			return nil
		},
	}
	opts.apply(&grpJob)
	grpRes, err := mapreduce.Run(ctx, grpJob)
	if err != nil {
		return nil, err
	}
	grpMetrics := grpRes.Metrics
	grpMetrics.Job = "SW-Grp"

	// ---- Phase SW-Idx: index fragments against keywords ----
	idxJob := mapreduce.Job{
		Name:  "SW-Idx",
		Input: grpRes.Output,
		Map: func(in mapreduce.KV, emit mapreduce.Emit) error {
			counts := make(map[string]int)
			total := 0
			rest := in.Value
			for len(rest) > 0 {
				row, used, err := relation.DecodeRow(rest)
				if err != nil {
					return err
				}
				rest = rest[used:]
				for _, v := range row {
					total += fragment.CountTokens(v, counts)
				}
			}
			for kw, n := range counts {
				emit(mapreduce.KV{
					Key:   keywordKeyPrefix + kw,
					Value: appendPosting(nil, in.Key, int64(n)),
				})
			}
			emit(mapreduce.KV{
				Key:   sizeKeyPrefix + in.Key,
				Value: binary.AppendUvarint(nil, uint64(total)),
			})
			return nil
		},
		Combine: indexReducer,
		Reduce:  indexReducer,
	}
	opts.apply(&idxJob)
	idxRes, err := mapreduce.Run(ctx, idxJob)
	if err != nil {
		return nil, err
	}
	idxMetrics := idxRes.Metrics
	idxMetrics.Job = "SW-Idx"

	phases := []Phase{
		{Name: "SW-Jn", Metrics: joinMetrics},
		{Name: "SW-Grp", Metrics: grpMetrics},
		{Name: "SW-Idx", Metrics: idxMetrics},
	}
	return assembleOutput(AlgStepwise, b.SelAttrs, idxRes.Output, phases)
}

// stepwiseJoin evaluates a join-tree node with one MR job per internal node,
// returning the node's rows as untagged pairs.
func stepwiseJoin(ctx context.Context, db *relation.Database, b *psj.Bound,
	node *psj.JoinExpr, opts Options, metrics *mapreduce.Metrics) ([]mapreduce.KV, error) {
	if node.IsLeaf() {
		t, err := db.Table(node.Relation)
		if err != nil {
			return nil, err
		}
		return tableToKVs(t), nil
	}
	left, err := stepwiseJoin(ctx, db, b, node.Left, opts, metrics)
	if err != nil {
		return nil, err
	}
	right, err := stepwiseJoin(ctx, db, b, node.Right, opts, metrics)
	if err != nil {
		return nil, err
	}
	ls, rs := b.NodeSchema(node.Left), b.NodeSchema(node.Right)
	name := fmt.Sprintf("SW-Jn(%s)", strings.Join(b.NodeOn(node), ","))
	res, err := mrJoin(ctx, name, left, right, ls, rs, b.NodeOn(node), node.Kind, opts)
	if err != nil {
		return nil, err
	}
	metrics.Add(res.Metrics)
	return res.Output, nil
}

// mrJoin is the MR equi-join shared by the stepwise join phase and the
// integrated algorithm's aggregate join: left and right rows shuffle on
// their join-column values; each reduce group cross-products the sides.
// Left rows whose join key contains NULL shuffle under a private key so they
// match nothing (SQL semantics) yet still surface for left-outer joins.
func mrJoin(ctx context.Context, name string, left, right []mapreduce.KV,
	ls, rs *relation.Schema, on []string, kind relation.JoinKind,
	opts Options) (*mapreduce.Result, error) {

	leftIdx, err := columnIndices(ls, on)
	if err != nil {
		return nil, err
	}
	rightIdx, err := columnIndices(rs, on)
	if err != nil {
		return nil, err
	}
	// Right columns that survive the join.
	rightKeep := make([]int, 0, len(rs.Columns))
	for j := range rs.Columns {
		isJoin := false
		for _, ri := range rightIdx {
			if ri == j {
				isJoin = true
				break
			}
		}
		if !isJoin {
			rightKeep = append(rightKeep, j)
		}
	}

	input := make([]mapreduce.KV, 0, len(left)+len(right))
	input = append(input, tagValues(left, tagLeft)...)
	input = append(input, tagValues(right, tagRight)...)

	job := mapreduce.Job{
		Name:  name,
		Input: input,
		Map: func(in mapreduce.KV, emit mapreduce.Emit) error {
			tag := in.Value[0]
			row, _, err := relation.DecodeRow(in.Value[1:])
			if err != nil {
				return err
			}
			var idx []int
			if tag == tagLeft {
				idx = leftIdx
			} else {
				idx = rightIdx
			}
			buf := make([]relation.Value, len(idx))
			key, ok := joinKeyFor(row, idx, buf)
			if !ok {
				if tag == tagLeft && kind == relation.JoinLeftOuter {
					// Never matches, but must survive null-extended.
					emit(mapreduce.KV{
						Key:   nullJoinKeyPrefix + string(in.Value[1:]),
						Value: in.Value,
					})
				}
				return nil
			}
			emit(mapreduce.KV{Key: key, Value: in.Value})
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			var lrows, rrows [][]byte
			for _, v := range values {
				if v[0] == tagLeft {
					lrows = append(lrows, v[1:])
				} else {
					rrows = append(rrows, v[1:])
				}
			}
			for _, lv := range lrows {
				lrow, _, err := relation.DecodeRow(lv)
				if err != nil {
					return err
				}
				if len(rrows) == 0 {
					if kind == relation.JoinLeftOuter {
						merged := make(relation.Row, 0, len(lrow)+len(rightKeep))
						merged = append(merged, lrow...)
						for range rightKeep {
							merged = append(merged, relation.Null())
						}
						emit(mapreduce.KV{Value: relation.EncodeRow(merged)})
					}
					continue
				}
				for _, rv := range rrows {
					rrow, _, err := relation.DecodeRow(rv)
					if err != nil {
						return err
					}
					merged := make(relation.Row, 0, len(lrow)+len(rightKeep))
					merged = append(merged, lrow...)
					for _, j := range rightKeep {
						merged = append(merged, rrow[j])
					}
					emit(mapreduce.KV{Value: relation.EncodeRow(merged)})
				}
			}
			return nil
		},
	}
	opts.apply(&job)
	return mapreduce.Run(ctx, job)
}

// indexReducer is the shared final reducer of both algorithms: keyword keys
// merge per-fragment counts and sort postings by TF descending; size keys
// sum term counts.
func indexReducer(key string, values [][]byte, emit mapreduce.Emit) error {
	switch key[0] {
	case keywordKeyPrefix[0]:
		sums := make(map[string]int64)
		for _, v := range values {
			ps, err := decodePostings(v)
			if err != nil {
				return err
			}
			for _, p := range ps {
				sums[p.FragKey] += p.TF
			}
		}
		merged := make([]Posting, 0, len(sums))
		for fk, tf := range sums {
			merged = append(merged, Posting{FragKey: fk, TF: tf})
		}
		sortPostings(merged)
		var blob []byte
		for _, p := range merged {
			blob = appendPosting(blob, p.FragKey, p.TF)
		}
		emit(mapreduce.KV{Key: key, Value: blob})
	case sizeKeyPrefix[0]:
		var total uint64
		for _, v := range values {
			n, used := binary.Uvarint(v)
			if used <= 0 {
				return ErrCorruptPosting
			}
			total += n
		}
		emit(mapreduce.KV{Key: key, Value: binary.AppendUvarint(nil, total)})
	default:
		return fmt.Errorf("crawl: internal: unexpected reduce key %q", key)
	}
	return nil
}
