// Package crawl implements Dash's database crawling and fragment indexing
// (paper §V): deriving every db-page fragment of a parameterized PSJ query
// from the underlying database and indexing fragment contents, as MapReduce
// workflows.
//
// Two algorithms are provided. Stepwise (§V-A) joins the operand relations
// with one MR job per join-tree node — carrying the (bulky) projection
// attributes through every join — then groups joined records into fragments
// and indexes them. Integrated (§V-B) first computes per-relation aggregates
// (selection attributes, join attributes, record count θ), joins only those
// narrow aggregates to learn each fragment's composition, then extracts
// keywords directly from base relations with multiplicities
// Θi = (Πθx)/θi, and finally consolidates per-keyword counts. Both produce
// identical output; the difference is how many bytes move between phases,
// which the per-phase metrics expose (Fig. 10).
package crawl

import (
	"sort"

	"repro/internal/fragment"
	"repro/internal/mapreduce"
	"repro/internal/psj"
	"repro/internal/relation"
)

// Algorithm names the crawling strategy.
type Algorithm string

// The two crawling/indexing algorithms of §V.
const (
	AlgStepwise   Algorithm = "stepwise"
	AlgIntegrated Algorithm = "integrated"
)

// Options configures a crawl run.
type Options struct {
	// Parallelism bounds concurrent tasks per phase (default GOMAXPROCS).
	Parallelism int
	// MapTasks and ReduceTasks per MR job (default Parallelism). The
	// paper's cluster-size sensitivity experiment varies ReduceTasks.
	MapTasks    int
	ReduceTasks int
}

func (o Options) apply(job *mapreduce.Job) {
	job.Parallelism = o.Parallelism
	job.MapTasks = o.MapTasks
	job.ReduceTasks = o.ReduceTasks
}

// Posting is one inverted-list entry: a fragment and the keyword's
// occurrence count in it.
type Posting struct {
	FragKey string
	TF      int64
}

// Phase is one named stage of a crawl with its aggregated MR metrics —
// the stacked bars of Fig. 10 (SW-Jn/SW-Grp/SW-Idx, INT-Jn/INT-Ext/INT-Cnsd).
type Phase struct {
	Name    string
	Metrics mapreduce.Metrics
}

// Output is the crawl result: fragment sizes and the inverted fragment
// index content, plus phase metrics. It is the input to fragindex.Build.
type Output struct {
	Algorithm Algorithm
	// SelAttrs are the selection attribute column names, in WHERE order;
	// fragment keys encode value tuples in this order.
	SelAttrs []string
	// FragmentTerms maps fragment key -> total keyword count (the node
	// weights of the fragment graph, Fig. 9).
	FragmentTerms map[string]int64
	// Inverted maps keyword -> postings sorted by TF descending
	// (ties broken by fragment key ascending), as in Fig. 6.
	Inverted map[string][]Posting
	Phases   []Phase
}

// Fragments returns the fragment identifiers sorted by identifier order.
func (o *Output) Fragments() ([]fragment.ID, error) {
	ids := make([]fragment.ID, 0, len(o.FragmentTerms))
	for k := range o.FragmentTerms {
		id, err := fragment.ParseID(k)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	return ids, nil
}

// TotalWall sums the wall time of all phases.
func (o *Output) TotalWall() (total int64) {
	for _, p := range o.Phases {
		total += int64(p.Metrics.Wall)
	}
	return total
}

// Reference derives the same output without MapReduce: evaluate the crawl
// query with the relational engine and fragment.Derive. It is the oracle
// the MR algorithms are tested against, and the natural choice for small
// embedded deployments.
func Reference(db *relation.Database, b *psj.Bound) (*Output, error) {
	joined, err := b.JoinAll(db)
	if err != nil {
		return nil, err
	}
	crawlCols := b.CrawlProjection()
	proj, err := joined.Project(crawlCols)
	if err != nil {
		return nil, err
	}
	projIdx, selIdx := fragment.Indices(proj.Schema, b.Projections, b.SelAttrs)
	// A NULL selection attribute satisfies no comparison, so such records
	// appear in no db-page and belong to no fragment.
	rows := proj.Select(func(r relation.Row) bool {
		for _, j := range selIdx {
			if r[j].IsNull() {
				return false
			}
		}
		return true
	}).Rows
	frags := fragment.Derive(rows, projIdx, selIdx)

	out := &Output{
		Algorithm:     "reference",
		SelAttrs:      append([]string(nil), b.SelAttrs...),
		FragmentTerms: make(map[string]int64, len(frags)),
		Inverted:      make(map[string][]Posting),
	}
	for _, f := range frags {
		key := f.ID.Key()
		out.FragmentTerms[key] = int64(f.TotalTerms)
		for kw, n := range f.TermCounts {
			out.Inverted[kw] = append(out.Inverted[kw], Posting{FragKey: key, TF: int64(n)})
		}
	}
	for kw := range out.Inverted {
		sortPostings(out.Inverted[kw])
	}
	return out, nil
}

// sortPostings orders postings by TF descending, breaking ties by fragment
// identifier order (the semantic ordering fragindex uses, not raw key
// bytes — varint length prefixes would invert it).
func sortPostings(ps []Posting) {
	ids := make(map[string]fragment.ID, len(ps))
	for _, p := range ps {
		if _, ok := ids[p.FragKey]; !ok {
			id, err := fragment.ParseID(p.FragKey)
			if err != nil {
				id = nil // corrupt keys sort first; callers surface the error later
			}
			ids[p.FragKey] = id
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].TF != ps[j].TF {
			return ps[i].TF > ps[j].TF
		}
		return ids[ps[i].FragKey].Compare(ids[ps[j].FragKey]) < 0
	})
}
