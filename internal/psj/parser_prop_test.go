package psj

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
)

// genQuery builds a random but well-formed PSJ query over a synthetic
// catalog of relation/column names.
func genQuery(r *rand.Rand) *Query {
	nRels := 1 + r.Intn(4)
	q := &Query{}

	// Join tree: left-deep or one bushy split.
	makeLeaf := func(i int) *JoinExpr { return &JoinExpr{Relation: fmt.Sprintf("rel%d", i)} }
	tree := makeLeaf(0)
	for i := 1; i < nRels; i++ {
		kind := relation.JoinInner
		if r.Intn(3) == 0 {
			kind = relation.JoinLeftOuter
		}
		node := &JoinExpr{Left: tree, Right: makeLeaf(i), Kind: kind}
		if r.Intn(2) == 0 {
			node.On = []string{fmt.Sprintf("k%d", i)}
		}
		tree = node
	}
	q.From = tree

	// Projections or star.
	if r.Intn(4) == 0 {
		q.Star = true
	} else {
		for i := 0; i <= r.Intn(4); i++ {
			ref := ColRef{Col: fmt.Sprintf("col%d", i)}
			if r.Intn(3) == 0 {
				ref.Table = fmt.Sprintf("rel%d", r.Intn(nRels))
			}
			q.Projections = append(q.Projections, ref)
		}
	}

	// Conditions: one equality plus optionally a range pair.
	q.Conditions = append(q.Conditions, Condition{
		Attr: ColRef{Col: "eqattr"}, Op: OpEQ, Param: "p0",
	})
	if r.Intn(2) == 0 {
		q.Conditions = append(q.Conditions,
			Condition{Attr: ColRef{Col: "rgattr"}, Op: OpGE, Param: "lo"},
			Condition{Attr: ColRef{Col: "rgattr"}, Op: OpLE, Param: "hi"},
		)
	}
	if r.Intn(3) == 0 {
		q.Conditions = append(q.Conditions, Condition{
			Attr: ColRef{Table: fmt.Sprintf("rel%d", r.Intn(nRels)), Col: "other"},
			Op:   OpEQ, Param: "p1",
		})
	}
	return q
}

// TestPropParserRoundTrip: String() output re-parses to an identical query,
// for thousands of randomly generated queries.
func TestPropParserRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 2000; seed++ {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		text := q.String()
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, text, err)
		}
		if parsed.String() != text {
			t.Fatalf("seed %d: round trip\n in: %s\nout: %s", seed, text, parsed.String())
		}
	}
}

// TestPropParserCaseInsensitiveKeywords: keyword case never changes the
// parse.
func TestPropParserCaseInsensitiveKeywords(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		text := q.String()
		lower := strings.NewReplacer(
			"SELECT", "select", "FROM", "from", "WHERE", "where",
			"JOIN", "join", "LEFT", "left", "AND", "and", "ON", "on",
		).Replace(text)
		a, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Parse(lower)
		if err != nil {
			t.Fatalf("seed %d: lower-case parse failed: %v", seed, err)
		}
		if a.String() != b.String() {
			t.Fatalf("seed %d: case sensitivity:\n%s\n%s", seed, a, b)
		}
	}
}

// TestPropSelectionAttrsStable: SelectionAttrs/EqAttrs/RangeAttrs partition
// correctly on generated queries.
func TestPropSelectionAttrsStable(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		sel := q.SelectionAttrs()
		eq, rg := q.EqAttrs(), q.RangeAttrs()
		if len(eq)+len(rg) != len(sel) {
			t.Fatalf("seed %d: eq %v + range %v != sel %v", seed, eq, rg, sel)
		}
		seen := make(map[ColRef]bool)
		for _, a := range sel {
			if seen[a] {
				t.Fatalf("seed %d: duplicate selection attr %v", seed, a)
			}
			seen[a] = true
		}
		for _, a := range rg {
			ops := q.AttrOps()[a]
			hasRange := false
			for _, op := range ops {
				if op != OpEQ {
					hasRange = true
				}
			}
			if !hasRange {
				t.Fatalf("seed %d: %v classified range without >=/<=", seed, a)
			}
		}
	}
}

// TestParseWhitespaceInsensitive: arbitrary extra whitespace is harmless.
func TestParseWhitespaceInsensitive(t *testing.T) {
	compact := `SELECT a,b FROM (x JOIN y) WHERE a = $p AND b BETWEEN $l AND $h`
	spaced := "SELECT   a ,  b\n FROM ( x \t JOIN y )\nWHERE  a=$p  AND  b  BETWEEN  $l  AND  $h"
	qa, err := Parse(compact)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := Parse(spaced)
	if err != nil {
		t.Fatal(err)
	}
	if qa.String() != qb.String() {
		t.Errorf("whitespace changed parse:\n%s\n%s", qa, qb)
	}
}
