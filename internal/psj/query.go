// Package psj models parameterized project-select-join (PSJ) queries —
// the paper's Definition 1:
//
//	π a1,…,al σ c1⊗1v1 ∧ … ∧ cm⊗mvm (R1 ⨝ R2 ⨝ … ⨝ Rn)
//
// where each selection attribute ci is compared against one query parameter
// vi with ⊗ ∈ {=, ≥, ≤} and the Ri are joined through inner or left-outer
// joins. The package provides an SQL-subset parser (the dialect used by the
// paper's application queries, Fig. 3 and Table III), binding against a
// relation.Database, and a reference evaluator with predicate push-down.
package psj

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Errors returned by parsing, binding, and evaluation.
var (
	ErrSyntax    = errors.New("psj: syntax error")
	ErrUnbound   = errors.New("psj: cannot bind query against database")
	ErrAmbiguous = errors.New("psj: ambiguous column reference")
	ErrNoParam   = errors.New("psj: missing parameter value")
)

// CompareOp is a selection comparison operator (Definition 1 restricts the
// operators to =, ≥, ≤; BETWEEN desugars into one ≥ and one ≤ condition).
type CompareOp uint8

// Supported comparison operators.
const (
	OpEQ CompareOp = iota + 1
	OpGE
	OpLE
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpGE:
		return ">="
	case OpLE:
		return "<="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ColRef names a column, optionally qualified by a relation name.
type ColRef struct {
	Table string // optional qualifier; "" means unqualified
	Col   string
}

// String renders the reference in SQL form.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// Condition is one conjunct of the selection predicate: Attr ⊗ $Param.
type Condition struct {
	Attr  ColRef
	Op    CompareOp
	Param string // parameter name without the $ sigil
}

// String renders the condition in SQL form.
func (c Condition) String() string {
	return fmt.Sprintf("%s %s $%s", c.Attr, c.Op, c.Param)
}

// JoinExpr is a binary join tree. A node is either a leaf (Relation != "")
// or an internal node joining Left and Right. On optionally names the join
// columns; when empty the shared column names of the two sides are used
// (natural equi-join — Dash databases name foreign keys after the keys they
// reference).
type JoinExpr struct {
	Relation    string
	Left, Right *JoinExpr
	Kind        relation.JoinKind
	On          []string
}

// IsLeaf reports whether the node references a base relation.
func (j *JoinExpr) IsLeaf() bool { return j.Relation != "" }

// Leaves appends the base relation names in left-to-right order.
func (j *JoinExpr) Leaves() []string {
	var out []string
	var walk func(*JoinExpr)
	walk = func(n *JoinExpr) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n.Relation)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(j)
	return out
}

// String renders the join tree in SQL form with explicit parentheses.
func (j *JoinExpr) String() string {
	if j.IsLeaf() {
		return j.Relation
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(j.Left.String())
	b.WriteByte(' ')
	b.WriteString(j.Kind.String())
	b.WriteByte(' ')
	b.WriteString(j.Right.String())
	if len(j.On) > 0 {
		b.WriteString(" ON ")
		b.WriteString(strings.Join(j.On, ", "))
	}
	b.WriteByte(')')
	return b.String()
}

// Query is a parsed parameterized PSJ query.
type Query struct {
	Star        bool     // SELECT *
	Projections []ColRef // empty iff Star
	From        *JoinExpr
	Conditions  []Condition
}

// String renders the query in parseable SQL form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Star {
		b.WriteByte('*')
	} else {
		for i, p := range q.Projections {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(q.From.String())
	if len(q.Conditions) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range q.Conditions {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// SelectionAttrs returns the distinct selection attributes in order of first
// appearance in the WHERE clause. Their value tuples are the db-page
// fragment identifiers (Definition 2).
func (q *Query) SelectionAttrs() []ColRef {
	var out []ColRef
	seen := make(map[ColRef]bool, len(q.Conditions))
	for _, c := range q.Conditions {
		if !seen[c.Attr] {
			seen[c.Attr] = true
			out = append(out, c.Attr)
		}
	}
	return out
}

// Params returns the distinct parameter names in order of first appearance.
func (q *Query) Params() []string {
	var out []string
	seen := make(map[string]bool, len(q.Conditions))
	for _, c := range q.Conditions {
		if !seen[c.Param] {
			seen[c.Param] = true
			out = append(out, c.Param)
		}
	}
	return out
}

// AttrOps returns, for each selection attribute, the set of operators it is
// compared with. An attribute is an equality attribute if it only appears
// with =, and a range attribute if it appears with ≥ and/or ≤.
func (q *Query) AttrOps() map[ColRef][]CompareOp {
	out := make(map[ColRef][]CompareOp, len(q.Conditions))
	for _, c := range q.Conditions {
		out[c.Attr] = append(out[c.Attr], c.Op)
	}
	return out
}

// EqAttrs returns the selection attributes used only with equality.
func (q *Query) EqAttrs() []ColRef {
	var out []ColRef
	ops := q.AttrOps()
	for _, a := range q.SelectionAttrs() {
		eq := true
		for _, op := range ops[a] {
			if op != OpEQ {
				eq = false
				break
			}
		}
		if eq {
			out = append(out, a)
		}
	}
	return out
}

// RangeAttrs returns the selection attributes used with ≥ or ≤.
func (q *Query) RangeAttrs() []ColRef {
	var out []ColRef
	ops := q.AttrOps()
	for _, a := range q.SelectionAttrs() {
		for _, op := range ops[a] {
			if op != OpEQ {
				out = append(out, a)
				break
			}
		}
	}
	return out
}
