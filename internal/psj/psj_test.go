package psj

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/fooddb"
	"repro/internal/relation"
)

const searchSQL = `SELECT name, budget, rate, comment, uname, date ` +
	`FROM (restaurant LEFT JOIN comment) LEFT JOIN customer ` +
	`WHERE (cuisine = "$cuisine") AND (budget BETWEEN $min AND $max)`

func TestParseSearchQuery(t *testing.T) {
	q, err := Parse(searchSQL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Star {
		t.Error("Star = true, want false")
	}
	if len(q.Projections) != 6 || q.Projections[0].Col != "name" || q.Projections[5].Col != "date" {
		t.Errorf("Projections = %v", q.Projections)
	}
	if got := q.From.Leaves(); strings.Join(got, ",") != "restaurant,comment,customer" {
		t.Errorf("Leaves = %v", got)
	}
	if q.From.Kind != relation.JoinLeftOuter || q.From.Left.Kind != relation.JoinLeftOuter {
		t.Errorf("join kinds = %v, %v", q.From.Kind, q.From.Left.Kind)
	}
	// BETWEEN desugars: cuisine=, budget>=, budget<=.
	if len(q.Conditions) != 3 {
		t.Fatalf("Conditions = %v", q.Conditions)
	}
	want := []Condition{
		{Attr: ColRef{Col: "cuisine"}, Op: OpEQ, Param: "cuisine"},
		{Attr: ColRef{Col: "budget"}, Op: OpGE, Param: "min"},
		{Attr: ColRef{Col: "budget"}, Op: OpLE, Param: "max"},
	}
	for i, c := range q.Conditions {
		if c != want[i] {
			t.Errorf("Conditions[%d] = %v, want %v", i, c, want[i])
		}
	}
}

func TestParseTPCHStyleQueries(t *testing.T) {
	// Table III queries (paper §VII), in our schema's column names.
	for _, sql := range []string{
		`select * from (region join nation) join customer where region.regionkey = $r and acctbal between $min and $max`,
		`select * from (customer join orders) join lineitem where customer.custkey = $r and qty between $min and $max`,
		`select * from (customer join orders) join (lineitem join part) where customer.custkey = $r and qty between $min and $max`,
	} {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if !q.Star {
			t.Errorf("%q: Star = false", sql)
		}
		if len(q.SelectionAttrs()) != 2 {
			t.Errorf("%q: SelectionAttrs = %v", sql, q.SelectionAttrs())
		}
	}
	// Bushy tree shape for Q3.
	q := MustParse(`select * from (customer join orders) join (lineitem join part) where customer.custkey = $r and qty between $min and $max`)
	if q.From.Left.IsLeaf() || q.From.Right.IsLeaf() {
		t.Error("Q3 should be a bushy join of two internal nodes")
	}
}

func TestParseOnClause(t *testing.T) {
	q, err := Parse(`SELECT a FROM x JOIN y ON k = k WHERE a = $p`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.From.On) != 1 || q.From.On[0] != "k" {
		t.Errorf("On = %v", q.From.On)
	}
	if _, err := Parse(`SELECT a FROM x JOIN y ON k = j`); err == nil {
		t.Error("ON with differing column names should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT a, FROM x`,
		`SELECT * FROM (x JOIN y`,
		`SELECT * FROM x WHERE a > $p`, // strict inequality unsupported
		`SELECT * FROM x WHERE a = 5`,  // literal, not parameter
		`SELECT * FROM x WHERE a BETWEEN $l`,
		`SELECT * FROM x WHERE (a = $p`,
		`SELECT * FROM x extra`,
		`SELECT * FROM x WHERE a = "p"`, // quoted non-parameter
		`SELECT * FROM x WHERE a = $`,   // missing name
		"SELECT * FROM x WHERE a = 'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", sql, err)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q := MustParse(searchSQL)
	again, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", q.String(), err)
	}
	if again.String() != q.String() {
		t.Errorf("round trip mismatch:\n%s\n%s", q.String(), again.String())
	}
}

func TestSelectionAttrClassification(t *testing.T) {
	q := MustParse(searchSQL)
	sel := q.SelectionAttrs()
	if len(sel) != 2 || sel[0].Col != "cuisine" || sel[1].Col != "budget" {
		t.Errorf("SelectionAttrs = %v", sel)
	}
	if eq := q.EqAttrs(); len(eq) != 1 || eq[0].Col != "cuisine" {
		t.Errorf("EqAttrs = %v", eq)
	}
	if rg := q.RangeAttrs(); len(rg) != 1 || rg[0].Col != "budget" {
		t.Errorf("RangeAttrs = %v", rg)
	}
	if p := q.Params(); strings.Join(p, ",") != "cuisine,min,max" {
		t.Errorf("Params = %v", p)
	}
}

func TestBindSearchQuery(t *testing.T) {
	db := fooddb.New()
	b, err := Bind(MustParse(searchSQL), db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if got := strings.Join(b.SelAttrs, ","); got != "cuisine,budget" {
		t.Errorf("SelAttrs = %v", got)
	}
	if got := strings.Join(b.Projections, ","); got != "name,budget,rate,comment,uname,date" {
		t.Errorf("Projections = %v", got)
	}
	// Leaf partition drives the integrated algorithm.
	wantLeaves := map[string]struct{ sel, join, proj string }{
		"restaurant": {"cuisine,budget", "rid", "name,budget,rate"},
		"comment":    {"", "rid,uid", "comment,date"},
		"customer":   {"", "uid", "uname"},
	}
	for _, li := range b.Leaves {
		w, ok := wantLeaves[li.Relation]
		if !ok {
			t.Errorf("unexpected leaf %s", li.Relation)
			continue
		}
		if got := strings.Join(li.SelAttrs, ","); got != w.sel {
			t.Errorf("%s SelAttrs = %q, want %q", li.Relation, got, w.sel)
		}
		gotJoin := append([]string(nil), li.JoinAttrs...)
		sort.Strings(gotJoin)
		if got := strings.Join(gotJoin, ","); got != w.join {
			t.Errorf("%s JoinAttrs = %q, want %q", li.Relation, got, w.join)
		}
		if got := strings.Join(li.ProjAttrs, ","); got != w.proj {
			t.Errorf("%s ProjAttrs = %q, want %q", li.Relation, got, w.proj)
		}
	}
	if got := strings.Join(b.CrawlProjection(), ","); got != "name,budget,rate,comment,uname,date,cuisine" {
		t.Errorf("CrawlProjection = %v", got)
	}
	kinds := b.SelAttrKinds()
	if kinds[0] != relation.KindString || kinds[1] != relation.KindInt {
		t.Errorf("SelAttrKinds = %v", kinds)
	}
	if k, err := b.ParamKind("min"); err != nil || k != relation.KindInt {
		t.Errorf("ParamKind(min) = %v, %v", k, err)
	}
	if _, err := b.ParamKind("zzz"); !errors.Is(err, ErrNoParam) {
		t.Errorf("ParamKind(zzz) err = %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	db := fooddb.New()
	cases := []string{
		`SELECT * FROM nosuch WHERE a = $p`,
		`SELECT * FROM restaurant JOIN customer WHERE cuisine = $p`,          // no shared cols
		`SELECT nope FROM restaurant WHERE cuisine = $p`,                     // bad projection
		`SELECT name FROM restaurant WHERE nosuchcol = $p`,                   // bad condition attr
		`SELECT name FROM restaurant WHERE zzz.cuisine = $p`,                 // unknown qualifier
		`SELECT name FROM restaurant JOIN restaurant WHERE cuisine = $p`,     // duplicate relation
		`SELECT * FROM restaurant JOIN comment ON nosuch WHERE cuisine = $p`, // bad ON col
	}
	for _, sql := range cases {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if _, err := Bind(q, db); !errors.Is(err, ErrUnbound) {
			t.Errorf("Bind(%q) err = %v, want ErrUnbound", sql, err)
		}
	}
}

func TestJoinAllFooddb(t *testing.T) {
	db := fooddb.New()
	b, err := Bind(MustParse(searchSQL), db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	joined, err := b.JoinAll(db)
	if err != nil {
		t.Fatalf("JoinAll: %v", err)
	}
	// Fig. 5 lists 8 joined rows (6 commented + 2 comment-less).
	if joined.Len() != 8 {
		t.Fatalf("JoinAll rows = %d, want 8", joined.Len())
	}
}

// TestExecuteP1 reproduces db-page P1 (Example 1): American restaurants with
// budget between 10 and 15, with customer comments.
func TestExecuteP1(t *testing.T) {
	db := fooddb.New()
	b, err := Bind(MustParse(searchSQL), db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	page, err := b.Execute(db, map[string]relation.Value{
		"cuisine": relation.String("American"),
		"min":     relation.Int(10),
		"max":     relation.Int(15),
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// P1: Burger Queen (1 row), Wandy's 4.1 (no comment), Wandy's 4.2 (2
	// comments) = 4 rows.
	if page.Len() != 4 {
		t.Fatalf("P1 rows = %d, want 4; got %v", page.Len(), page.Rows)
	}
	names := map[string]int{}
	for _, r := range page.Rows {
		names[r[0].AsString()]++
	}
	if names["Burger Queen"] != 1 || names["Wandy's"] != 3 {
		t.Errorf("P1 restaurant mix = %v", names)
	}
	// Columns are exactly the projections, in order.
	if got := strings.Join(page.Schema.ColumnNames(), ","); got != "name,budget,rate,comment,uname,date" {
		t.Errorf("P1 columns = %v", got)
	}
}

// TestExecuteP2 reproduces db-page P2: budget 10..20 adds McRonald's.
func TestExecuteP2(t *testing.T) {
	db := fooddb.New()
	b, _ := Bind(MustParse(searchSQL), db)
	page, err := b.Execute(db, map[string]relation.Value{
		"cuisine": relation.String("American"),
		"min":     relation.Int(10),
		"max":     relation.Int(20),
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if page.Len() != 5 {
		t.Fatalf("P2 rows = %d, want 5", page.Len())
	}
}

func TestExecuteMissingParam(t *testing.T) {
	db := fooddb.New()
	b, _ := Bind(MustParse(searchSQL), db)
	_, err := b.Execute(db, map[string]relation.Value{"cuisine": relation.String("Thai")})
	if !errors.Is(err, ErrNoParam) {
		t.Errorf("Execute err = %v, want ErrNoParam", err)
	}
}

// TestExecuteMatchesJoinAllFilter cross-checks push-down evaluation against
// filtering the full join.
func TestExecuteMatchesJoinAllFilter(t *testing.T) {
	db := fooddb.New()
	b, _ := Bind(MustParse(searchSQL), db)
	for _, params := range []map[string]relation.Value{
		{"cuisine": relation.String("American"), "min": relation.Int(9), "max": relation.Int(12)},
		{"cuisine": relation.String("Thai"), "min": relation.Int(10), "max": relation.Int(10)},
		{"cuisine": relation.String("French"), "min": relation.Int(0), "max": relation.Int(99)},
	} {
		fast, err := b.Execute(db, params)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		joined, err := b.JoinAll(db)
		if err != nil {
			t.Fatalf("JoinAll: %v", err)
		}
		cuisineIdx := joined.Schema.ColumnIndex("cuisine")
		budgetIdx := joined.Schema.ColumnIndex("budget")
		slow := joined.Select(func(r relation.Row) bool {
			return r[cuisineIdx].Equal(params["cuisine"]) &&
				!r[budgetIdx].IsNull() &&
				r[budgetIdx].Compare(params["min"]) >= 0 &&
				r[budgetIdx].Compare(params["max"]) <= 0
		})
		if fast.Len() != slow.Len() {
			t.Errorf("params %v: Execute rows = %d, filtered JoinAll = %d",
				params, fast.Len(), slow.Len())
		}
	}
}
