package psj

import (
	"fmt"

	"repro/internal/relation"
)

// LeafInfo describes how one base relation participates in a bound query.
// The integrated crawl algorithm (paper §V-B) is driven by exactly this
// partition: per relation, its selection attributes cᵢ, join attributes jᵢ,
// and the projection attributes whose text it contributes.
type LeafInfo struct {
	Relation  string
	SelAttrs  []string // selection attributes owned by this relation
	JoinAttrs []string // columns this relation is joined on
	ProjAttrs []string // projection attributes this relation contributes
}

// BoundCond is a condition resolved against a concrete schema.
type BoundCond struct {
	Condition
	Relation string        // owning base relation
	Kind     relation.Kind // column type, for parameter parsing
}

// Bound is a query validated against a database: every column reference is
// resolved, join columns are computed per tree node, and attribute ownership
// is assigned.
type Bound struct {
	Query  *Query
	Output *relation.Schema // schema of the full join result
	// Projections lists resolved projection column names (Star expanded)
	// in output order.
	Projections []string
	// SelAttrs lists resolved selection attribute column names in WHERE
	// order. Their value tuples identify db-page fragments.
	SelAttrs []string
	Conds    []BoundCond
	Leaves   []LeafInfo
	// nodeOn records the resolved join columns of each internal node;
	// used by the MR crawlers to drive shuffle keys.
	nodeOn map[*JoinExpr][]string
	// nodeSchema records the output schema of every tree node (leaves
	// included), so MR crawlers can locate columns in intermediate rows.
	nodeSchema map[*JoinExpr]*relation.Schema
}

// Bind resolves the query against db. It checks that every relation exists,
// every column reference resolves to exactly one relation, every join has
// join columns, and every selection attribute is typed.
func Bind(q *Query, db *relation.Database) (*Bound, error) {
	b := &Bound{
		Query:      q,
		nodeOn:     make(map[*JoinExpr][]string),
		nodeSchema: make(map[*JoinExpr]*relation.Schema),
	}

	// Resolve the join tree bottom-up, computing output schemas.
	schema, err := b.bindJoin(q.From, db)
	if err != nil {
		return nil, err
	}
	b.Output = schema

	// Leaf bookkeeping.
	leafIdx := make(map[string]int)
	for _, name := range q.From.Leaves() {
		if _, dup := leafIdx[name]; dup {
			return nil, fmt.Errorf("%w: relation %s appears twice in FROM", ErrUnbound, name)
		}
		leafIdx[name] = len(b.Leaves)
		b.Leaves = append(b.Leaves, LeafInfo{Relation: name})
	}

	// Join attributes per leaf: every node's ON columns attach to the
	// leaves (within that node's subtree) whose schema contains them.
	for node, on := range b.nodeOn {
		for _, col := range on {
			for _, side := range []*JoinExpr{node.Left, node.Right} {
				for _, leaf := range side.Leaves() {
					t, err := db.Table(leaf)
					if err != nil {
						return nil, err
					}
					if t.Schema.HasColumn(col) {
						li := &b.Leaves[leafIdx[leaf]]
						li.JoinAttrs = appendUnique(li.JoinAttrs, col)
					}
				}
			}
		}
	}

	// resolve maps a ColRef to its owning leaf relation. Unqualified
	// references that appear in several relations are owned by the first
	// (in FROM order) — join columns hold equal values on all sides, so
	// any owner yields the same result; determinism is what matters.
	resolve := func(ref ColRef) (string, relation.Kind, error) {
		if ref.Table != "" {
			i, ok := leafIdx[ref.Table]
			if !ok {
				return "", 0, fmt.Errorf("%w: %s references unknown relation %s", ErrUnbound, ref, ref.Table)
			}
			t, err := db.Table(b.Leaves[i].Relation)
			if err != nil {
				return "", 0, err
			}
			k, err := t.Schema.ColumnKind(ref.Col)
			if err != nil {
				return "", 0, fmt.Errorf("%w: %v", ErrUnbound, err)
			}
			return ref.Table, k, nil
		}
		owner := ""
		var kind relation.Kind
		for _, li := range b.Leaves {
			t, err := db.Table(li.Relation)
			if err != nil {
				return "", 0, err
			}
			if t.Schema.HasColumn(ref.Col) {
				if owner != "" {
					// Shared join columns are equal-valued on all
					// sides; first owner wins. Non-join duplicates
					// cannot occur (schema names are unique).
					break
				}
				owner = li.Relation
				//lint:ignore droppederr HasColumn above guarantees the column exists; ColumnKind cannot fail here
				kind, _ = t.Schema.ColumnKind(ref.Col)
			}
		}
		if owner == "" {
			return "", 0, fmt.Errorf("%w: column %s not found in any FROM relation", ErrUnbound, ref)
		}
		return owner, kind, nil
	}

	// Projections.
	if q.Star {
		b.Projections = schema.ColumnNames()
	} else {
		for _, ref := range q.Projections {
			if !schema.HasColumn(ref.Col) {
				return nil, fmt.Errorf("%w: projection %s not in join result", ErrUnbound, ref)
			}
			b.Projections = append(b.Projections, ref.Col)
		}
	}
	// Assign each projection to the first leaf containing it, so keyword
	// extraction counts each projected value exactly once.
	for _, col := range b.Projections {
		for i := range b.Leaves {
			t, err := db.Table(b.Leaves[i].Relation)
			if err != nil {
				return nil, err
			}
			if t.Schema.HasColumn(col) {
				b.Leaves[i].ProjAttrs = append(b.Leaves[i].ProjAttrs, col)
				break
			}
		}
	}

	// Conditions and selection attributes.
	seenSel := make(map[string]bool)
	for _, c := range q.Conditions {
		owner, kind, err := resolve(c.Attr)
		if err != nil {
			return nil, err
		}
		b.Conds = append(b.Conds, BoundCond{Condition: c, Relation: owner, Kind: kind})
		if !seenSel[c.Attr.Col] {
			seenSel[c.Attr.Col] = true
			b.SelAttrs = append(b.SelAttrs, c.Attr.Col)
			li := &b.Leaves[leafIdx[owner]]
			li.SelAttrs = appendUnique(li.SelAttrs, c.Attr.Col)
		}
	}
	return b, nil
}

// bindJoin computes the output schema of a join node and records resolved
// ON columns for every internal node.
func (b *Bound) bindJoin(node *JoinExpr, db *relation.Database) (*relation.Schema, error) {
	if node.IsLeaf() {
		t, err := db.Table(node.Relation)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnbound, err)
		}
		b.nodeSchema[node] = t.Schema
		return t.Schema, nil
	}
	ls, err := b.bindJoin(node.Left, db)
	if err != nil {
		return nil, err
	}
	rs, err := b.bindJoin(node.Right, db)
	if err != nil {
		return nil, err
	}
	on := node.On
	if len(on) == 0 {
		on = relation.SharedColumns(ls, rs)
		if len(on) == 0 {
			return nil, fmt.Errorf("%w: no join columns between %s and %s",
				ErrUnbound, ls.Name, rs.Name)
		}
	} else {
		for _, col := range on {
			if !ls.HasColumn(col) || !rs.HasColumn(col) {
				return nil, fmt.Errorf("%w: ON column %s missing from %s or %s",
					ErrUnbound, col, ls.Name, rs.Name)
			}
		}
	}
	b.nodeOn[node] = on

	cols := make([]relation.Column, 0, len(ls.Columns)+len(rs.Columns))
	cols = append(cols, ls.Columns...)
	for _, c := range rs.Columns {
		isJoin := false
		for _, o := range on {
			if c.Name == o {
				isJoin = true
				break
			}
		}
		if !isJoin {
			cols = append(cols, c)
		}
	}
	schema, err := relation.NewSchema(ls.Name+"⨝"+rs.Name, cols...)
	if err != nil {
		return nil, err
	}
	b.nodeSchema[node] = schema
	return schema, nil
}

// NodeOn returns the resolved join columns of an internal node. It is valid
// only for nodes of the bound query's tree.
func (b *Bound) NodeOn(node *JoinExpr) []string { return b.nodeOn[node] }

// NodeSchema returns the output schema of a node of the bound query's tree
// (for a leaf, the base relation's schema).
func (b *Bound) NodeSchema(node *JoinExpr) *relation.Schema { return b.nodeSchema[node] }

// EqAttrCols returns the resolved column names of equality attributes, in
// selection order.
func (b *Bound) EqAttrCols() []string {
	var out []string
	for _, a := range b.Query.EqAttrs() {
		out = append(out, a.Col)
	}
	return out
}

// RangeAttrCols returns the resolved column names of range attributes.
func (b *Bound) RangeAttrCols() []string {
	var out []string
	for _, a := range b.Query.RangeAttrs() {
		out = append(out, a.Col)
	}
	return out
}

// SelAttrKinds returns the column kind of each selection attribute in
// b.SelAttrs order.
func (b *Bound) SelAttrKinds() []relation.Kind {
	kinds := make([]relation.Kind, len(b.SelAttrs))
	for i, col := range b.SelAttrs {
		for _, c := range b.Conds {
			if c.Attr.Col == col {
				kinds[i] = c.Kind
				break
			}
		}
	}
	return kinds
}

// ParamKind returns the column kind a parameter is compared against.
func (b *Bound) ParamKind(param string) (relation.Kind, error) {
	for _, c := range b.Conds {
		if c.Param == param {
			return c.Kind, nil
		}
	}
	return 0, fmt.Errorf("%w: parameter $%s not in query", ErrNoParam, param)
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
