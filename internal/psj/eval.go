package psj

import (
	"fmt"

	"repro/internal/relation"
)

// JoinAll evaluates the query's join tree over db without applying any
// selection or projection. This is the reference evaluator behind the
// crawling query (paper §V-A):
//
//	π a1,…,al,c1,…,cm (R1 ⨝ R2 ⨝ … ⨝ Rn)
//
// The caller projects as needed. The MapReduce crawlers compute the same
// result via shuffle joins; tests assert both paths agree.
func (b *Bound) JoinAll(db *relation.Database) (*relation.Table, error) {
	return b.evalJoin(b.Query.From, db, nil)
}

// Execute evaluates the full parameterized query for concrete parameter
// values, pushing selections down to the owning leaf relations before
// joining. This is how a web application generates one db-page's content.
func (b *Bound) Execute(db *relation.Database, params map[string]relation.Value) (*relation.Table, error) {
	for _, p := range b.Query.Params() {
		if _, ok := params[p]; !ok {
			return nil, fmt.Errorf("%w: $%s", ErrNoParam, p)
		}
	}
	// Group conditions per owning relation.
	perLeaf := make(map[string][]BoundCond, len(b.Conds))
	for _, c := range b.Conds {
		perLeaf[c.Relation] = append(perLeaf[c.Relation], c)
	}
	filter := func(leaf string, t *relation.Table) *relation.Table {
		conds := perLeaf[leaf]
		if len(conds) == 0 {
			return t
		}
		idx := make([]int, len(conds))
		for i, c := range conds {
			idx[i] = t.Schema.ColumnIndex(c.Attr.Col)
		}
		return t.Select(func(row relation.Row) bool {
			for i, c := range conds {
				v := row[idx[i]]
				if v.IsNull() {
					return false
				}
				cmp := v.Compare(params[c.Param])
				switch c.Op {
				case OpEQ:
					if cmp != 0 {
						return false
					}
				case OpGE:
					if cmp < 0 {
						return false
					}
				case OpLE:
					if cmp > 0 {
						return false
					}
				}
			}
			return true
		})
	}
	joined, err := b.evalJoin(b.Query.From, db, filter)
	if err != nil {
		return nil, err
	}
	return joined.Project(b.Projections)
}

// evalJoin walks the join tree; filter (optional) is applied to each leaf
// before joining.
func (b *Bound) evalJoin(node *JoinExpr, db *relation.Database,
	filter func(string, *relation.Table) *relation.Table) (*relation.Table, error) {
	if node.IsLeaf() {
		t, err := db.Table(node.Relation)
		if err != nil {
			return nil, err
		}
		if filter != nil {
			t = filter(node.Relation, t)
		}
		return t, nil
	}
	left, err := b.evalJoin(node.Left, db, filter)
	if err != nil {
		return nil, err
	}
	right, err := b.evalJoin(node.Right, db, filter)
	if err != nil {
		return nil, err
	}
	return relation.Join(left, right, b.nodeOn[node], node.Kind)
}

// CrawlProjection returns the column list of the crawling query: the
// projection attributes followed by any selection attributes not already
// projected (paper §V-A).
func (b *Bound) CrawlProjection() []string {
	out := make([]string, 0, len(b.Projections)+len(b.SelAttrs))
	out = append(out, b.Projections...)
	seen := make(map[string]bool, len(out))
	for _, c := range out {
		seen[c] = true
	}
	for _, c := range b.SelAttrs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
