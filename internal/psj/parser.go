package psj

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/relation"
)

// Parse parses an SQL-subset PSJ query. The dialect covers the paper's
// application queries (Fig. 3, Table III):
//
//	SELECT * | col[, col…]
//	FROM rel | (joinExpr) [LEFT|INNER] JOIN rel|(joinExpr) [ON col [= col]] …
//	WHERE (attr = $p) AND attr BETWEEN $lo AND $hi AND attr >= $x …
//
// Parameters are $-prefixed identifiers and may be quoted ("$p" or '$p'),
// matching how string parameters appear inside reconstructed SQL text.
func Parse(sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

// MustParse is Parse for statically known queries; it panics on error and is
// intended for tests and built-in workload definitions.
func MustParse(sql string) *Query {
	q, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind uint8

const (
	tokIdent tokKind = iota + 1
	tokNumber
	tokString
	tokSymbol // ( ) , = >= <= * . $
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '.' || c == '$' || c == '=':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '>' || c == '<':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("%w: strict inequality at offset %d (only =, >=, <= are allowed)", ErrSyntax, i)
			}
			toks = append(toks, token{tokSymbol, string(c) + "=", i})
			i += 2
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("%w: unterminated string at offset %d", ErrSyntax, i)
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrSyntax, c, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSyntax, fmt.Sprintf(format, args...))
}

// acceptKeyword consumes the next token if it is the given (case-insensitive)
// keyword.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s near %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.acceptSymbol("*") {
		q.Star = true
	} else {
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.Projections = append(q.Projections, ref)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseJoinExpr()
	if err != nil {
		return nil, err
	}
	q.From = from
	if p.acceptKeyword("WHERE") {
		for {
			conds, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			q.Conditions = append(q.Conditions, conds...)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	return q, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColRef{}, p.errorf("expected column name, got %q", t.text)
	}
	ref := ColRef{Col: t.text}
	if p.acceptSymbol(".") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return ColRef{}, p.errorf("expected column after %q.", t.text)
		}
		ref = ColRef{Table: t.text, Col: t2.text}
	}
	return ref, nil
}

func (p *parser) parseJoinExpr() (*JoinExpr, error) {
	left, err := p.parseJoinTerm()
	if err != nil {
		return nil, err
	}
	for {
		kind, ok := p.parseJoinOp()
		if !ok {
			return left, nil
		}
		right, err := p.parseJoinTerm()
		if err != nil {
			return nil, err
		}
		node := &JoinExpr{Left: left, Right: right, Kind: kind}
		if p.acceptKeyword("ON") {
			for {
				a, err := p.parseColRef()
				if err != nil {
					return nil, err
				}
				if p.acceptSymbol("=") {
					b, err := p.parseColRef()
					if err != nil {
						return nil, err
					}
					if a.Col != b.Col {
						return nil, p.errorf("ON %s = %s: join columns must share a name", a, b)
					}
				}
				node.On = append(node.On, a.Col)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
		left = node
	}
}

func (p *parser) parseJoinOp() (relation.JoinKind, bool) {
	switch {
	case p.acceptKeyword("LEFT"):
		_ = p.acceptKeyword("OUTER")
		if !p.acceptKeyword("JOIN") {
			p.pos-- // restore; will fail upstream
			return 0, false
		}
		return relation.JoinLeftOuter, true
	case p.acceptKeyword("INNER"):
		if !p.acceptKeyword("JOIN") {
			p.pos--
			return 0, false
		}
		return relation.JoinInner, true
	case p.acceptKeyword("JOIN"):
		return relation.JoinInner, true
	default:
		return 0, false
	}
}

func (p *parser) parseJoinTerm() (*JoinExpr, error) {
	if p.acceptSymbol("(") {
		inner, err := p.parseJoinExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptSymbol(")") {
			return nil, p.errorf("expected ) near %q", p.peek().text)
		}
		return inner, nil
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errorf("expected relation name, got %q", t.text)
	}
	return &JoinExpr{Relation: t.text}, nil
}

// parseCondition parses one WHERE conjunct, desugaring BETWEEN into two
// conditions. Redundant parentheses around a conjunct are allowed, as in the
// paper's Fig. 3 SQL.
func (p *parser) parseCondition() ([]Condition, error) {
	if p.acceptSymbol("(") {
		conds, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		for p.acceptKeyword("AND") {
			more, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			conds = append(conds, more...)
		}
		if !p.acceptSymbol(")") {
			return nil, p.errorf("expected ) in condition near %q", p.peek().text)
		}
		return conds, nil
	}
	attr, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptSymbol("="):
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		return []Condition{{Attr: attr, Op: OpEQ, Param: param}}, nil
	case p.acceptSymbol(">="):
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		return []Condition{{Attr: attr, Op: OpGE, Param: param}}, nil
	case p.acceptSymbol("<="):
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		return []Condition{{Attr: attr, Op: OpLE, Param: param}}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		return []Condition{
			{Attr: attr, Op: OpGE, Param: lo},
			{Attr: attr, Op: OpLE, Param: hi},
		}, nil
	default:
		return nil, p.errorf("expected comparison operator after %s, got %q", attr, p.peek().text)
	}
}

// parseParam accepts $name, "$name", or '$name'.
func (p *parser) parseParam() (string, error) {
	t := p.peek()
	if t.kind == tokString {
		p.pos++
		name := strings.TrimSpace(t.text)
		if !strings.HasPrefix(name, "$") || len(name) < 2 {
			return "", p.errorf("expected quoted parameter like \"$p\", got %q", t.text)
		}
		return name[1:], nil
	}
	if p.acceptSymbol("$") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return "", p.errorf("expected parameter name after $, got %q", t2.text)
		}
		return t2.text, nil
	}
	return "", p.errorf("expected parameter ($name), got %q", t.text)
}
