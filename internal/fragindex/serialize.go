package fragindex

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/fragment"
)

// indexWire is the gob-serialized form of an Index. Only live fragments are
// written; groups are rebuilt on load.
type indexWire struct {
	SelAttrs  []string
	EqAttrs   []string
	RangeAttr string
	FragKeys  []string
	Terms     []int64
	Inverted  map[string][]wirePosting
}

type wirePosting struct {
	Frag int32
	TF   int64
}

// Save serializes the index. Tombstoned fragments are compacted away.
func (idx *Index) Save(w io.Writer) error {
	if idx.NumFragments() != idx.s.numRefs {
		compacted, err := idx.Compact()
		if err != nil {
			return err
		}
		idx = compacted
	}
	src := idx.s
	wire := indexWire{
		SelAttrs:  src.spec.SelAttrs,
		EqAttrs:   src.spec.EqAttrs,
		RangeAttr: src.spec.RangeAttr,
		FragKeys:  make([]string, src.numRefs),
		Terms:     make([]int64, src.numRefs),
		Inverted:  make(map[string][]wirePosting, src.liveKws),
	}
	for i := 0; i < src.numRefs; i++ {
		m := src.metaAt(FragRef(i))
		wire.FragKeys[i] = m.ID.Key()
		wire.Terms[i] = m.Terms
	}
	src.eachList(func(kw string, pl *postingList) {
		wps := make([]wirePosting, len(pl.ps))
		for i, p := range pl.ps {
			wps[i] = wirePosting{Frag: int32(p.Frag), TF: p.TF}
		}
		wire.Inverted[kw] = wps
	})
	return gob.NewEncoder(w).Encode(&wire)
}

// Load deserializes an index written by Save.
func Load(r io.Reader) (*Index, error) {
	var wire indexWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
	}
	if len(wire.FragKeys) != len(wire.Terms) {
		return nil, fmt.Errorf("%w: fragment arrays disagree", ErrCorruptIndex)
	}
	idx, err := New(Spec{
		SelAttrs:  wire.SelAttrs,
		EqAttrs:   wire.EqAttrs,
		RangeAttr: wire.RangeAttr,
	})
	if err != nil {
		return nil, err
	}
	s := idx.s
	for i, key := range wire.FragKeys {
		id, err := fragment.ParseID(key)
		if err != nil {
			return nil, fmt.Errorf("%w: bad fragment key: %v", ErrCorruptIndex, err)
		}
		if len(id) != len(wire.SelAttrs) {
			return nil, fmt.Errorf("%w: fragment arity", ErrCorruptIndex)
		}
		idx.appendRef(Meta{ID: id, Terms: wire.Terms[i], Alive: true}, nil, -1)
		s.liveTerms += wire.Terms[i]
	}
	s.liveFrags = s.numRefs
	// Rebuild groups: identifier-sorted insertion keeps members ordered.
	order := make([]FragRef, s.numRefs)
	for i := range order {
		order[i] = FragRef(i)
	}
	for i := 1; i < len(order); i++ {
		// Saved indexes are identifier-sorted by construction; tolerate
		// arbitrary order anyway by sorting.
		if s.metaAt(order[i-1]).ID.Compare(s.metaAt(order[i]).ID) > 0 {
			sortRefsByID(s, order)
			break
		}
	}
	for _, ref := range order {
		m := s.metaAt(ref)
		g := idx.groupFor(m.ID, true)
		idx.setMemberAt(ref, len(g.members))
		idx.setGroupOf(ref, g)
		g.members = append(g.members, ref)
		g.weights = append(g.weights, m.Terms)
	}
	for kw, wps := range wire.Inverted {
		if len(wps) == 0 {
			continue
		}
		ps := make([]Posting, len(wps))
		for i, p := range wps {
			if int(p.Frag) < 0 || int(p.Frag) >= s.numRefs {
				return nil, fmt.Errorf("%w: posting ref out of range", ErrCorruptIndex)
			}
			ps[i] = Posting{Frag: FragRef(p.Frag), TF: p.TF}
			idx.appendKw(FragRef(p.Frag), kw)
		}
		pl := &postingList{ps: ps}
		pl.recompute()
		s.shards[shardIndex(kw)].lists[kw] = pl
		s.liveKws++
	}
	return idx, nil
}

func sortRefsByID(s *Snapshot, refs []FragRef) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && s.metaAt(refs[j-1]).ID.Compare(s.metaAt(refs[j]).ID) > 0; j-- {
			refs[j-1], refs[j] = refs[j], refs[j-1]
		}
	}
}
