package fragindex

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/fragment"
)

// indexWire is the gob-serialized form of an Index. Only live fragments are
// written; groups are rebuilt on load.
type indexWire struct {
	SelAttrs  []string
	EqAttrs   []string
	RangeAttr string
	FragKeys  []string
	Terms     []int64
	Inverted  map[string][]wirePosting
}

type wirePosting struct {
	Frag int32
	TF   int64
}

// Dump is an index's complete logical state in canonical, storage-neutral
// form: live fragments sorted by identifier, keywords sorted, and each
// posting list ordered (TF descending, fragment identifier ascending).
// Postings reference fragments by their position in FragKeys. Two indexes
// holding the same logical state produce identical Dumps regardless of the
// mutation history that led there — the property the durable layer's
// recovery-equivalence checks rest on. Epoch carries the mutation epoch the
// state was captured at, so a restored index publishes at the epoch its
// source served.
type Dump struct {
	SelAttrs  []string
	EqAttrs   []string
	RangeAttr string
	Epoch     uint64
	FragKeys  []string // live fragments, identifier-sorted
	Terms     []int64  // parallel to FragKeys
	Keywords  []string // sorted
	Postings  [][]Posting // parallel to Keywords; Frag indexes FragKeys
}

// Dump captures the index's current logical state (see Dump's type doc).
// Tombstones are compacted away: dumped refs are positions in the
// identifier-sorted live fragment list, not the builder's ref space.
func (idx *Index) Dump() *Dump {
	s := idx.s
	order, counts := s.liveFragmentsByID()
	d := &Dump{
		SelAttrs:  append([]string(nil), s.spec.SelAttrs...),
		EqAttrs:   append([]string(nil), s.spec.EqAttrs...),
		RangeAttr: s.spec.RangeAttr,
		Epoch:     s.epoch,
		FragKeys:  make([]string, len(order)),
		Terms:     make([]int64, len(order)),
	}
	pos := make(map[FragRef]int, len(order))
	for i, ref := range order {
		m := s.metaAt(ref)
		d.FragKeys[i] = m.ID.Key()
		d.Terms[i] = m.Terms
		pos[ref] = i
	}
	lists := make(map[string][]Posting)
	for ref, kws := range counts {
		if !s.aliveAt(ref) {
			continue
		}
		for kw, tf := range kws {
			lists[kw] = append(lists[kw], Posting{Frag: FragRef(pos[ref]), TF: tf})
		}
	}
	d.Keywords = make([]string, 0, len(lists))
	for kw := range lists {
		d.Keywords = append(d.Keywords, kw)
	}
	sort.Strings(d.Keywords)
	d.Postings = make([][]Posting, len(d.Keywords))
	for i, kw := range d.Keywords {
		ps := lists[kw]
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].TF != ps[b].TF {
				return ps[a].TF > ps[b].TF
			}
			return ps[a].Frag < ps[b].Frag // dump refs are identifier-sorted
		})
		d.Postings[i] = ps
	}
	return d
}

// Restore rebuilds an index from a Dump, validating it as untrusted input:
// duplicate fragment keys, postings referencing out-of-range fragments, and
// duplicate postings within one keyword list all return ErrCorruptIndex —
// each silently corrupts group or document-frequency invariants if accepted.
func Restore(d *Dump) (*Index, error) {
	if len(d.FragKeys) != len(d.Terms) {
		return nil, fmt.Errorf("%w: fragment arrays disagree", ErrCorruptIndex)
	}
	if len(d.Keywords) != len(d.Postings) {
		return nil, fmt.Errorf("%w: keyword arrays disagree", ErrCorruptIndex)
	}
	idx, err := New(Spec{
		SelAttrs:  d.SelAttrs,
		EqAttrs:   d.EqAttrs,
		RangeAttr: d.RangeAttr,
	})
	if err != nil {
		return nil, err
	}
	s := idx.s
	for i, key := range d.FragKeys {
		id, err := fragment.ParseID(key)
		if err != nil {
			return nil, fmt.Errorf("%w: bad fragment key: %v", ErrCorruptIndex, err)
		}
		if len(id) != len(d.SelAttrs) {
			return nil, fmt.Errorf("%w: fragment arity", ErrCorruptIndex)
		}
		idx.appendRef(Meta{ID: id, Terms: d.Terms[i], Alive: true}, nil, -1)
		s.liveTerms += d.Terms[i]
	}
	s.liveFrags = s.numRefs
	// Rebuild groups: identifier-sorted insertion keeps members ordered.
	// Dumps are identifier-sorted by construction; tolerate arbitrary order
	// anyway by sorting. Sorted adjacency also makes duplicate keys — which
	// would silently split one fragment across two group slots — adjacent
	// and therefore cheap to reject.
	order := make([]FragRef, s.numRefs)
	for i := range order {
		order[i] = FragRef(i)
	}
	sortRefsByID(s, order)
	for i, ref := range order {
		m := s.metaAt(ref)
		if i > 0 && s.metaAt(order[i-1]).ID.Compare(m.ID) == 0 {
			return nil, fmt.Errorf("%w: duplicate fragment %s", ErrCorruptIndex, m.ID)
		}
		g := idx.groupFor(m.ID, true)
		idx.setMemberAt(ref, len(g.members))
		idx.setGroupOf(ref, g)
		g.members = append(g.members, ref)
		g.weights = append(g.weights, m.Terms)
	}
	seen := make(map[FragRef]struct{})
	for i, kw := range d.Keywords {
		wps := d.Postings[i]
		if len(wps) == 0 {
			continue
		}
		if kw == "" {
			return nil, fmt.Errorf("%w: empty keyword", ErrCorruptIndex)
		}
		clear(seen)
		ps := make([]Posting, len(wps))
		for j, p := range wps {
			if int(p.Frag) < 0 || int(p.Frag) >= s.numRefs {
				return nil, fmt.Errorf("%w: posting ref out of range", ErrCorruptIndex)
			}
			if _, dup := seen[p.Frag]; dup {
				return nil, fmt.Errorf("%w: duplicate posting for fragment %d in %q",
					ErrCorruptIndex, p.Frag, kw)
			}
			seen[p.Frag] = struct{}{}
			ps[j] = p
			idx.appendKw(p.Frag, kw)
		}
		pl := &postingList{ps: ps}
		pl.recompute()
		if s.shards[shardIndex(kw)].lists[kw] != nil {
			return nil, fmt.Errorf("%w: duplicate keyword %q", ErrCorruptIndex, kw)
		}
		s.shards[shardIndex(kw)].lists[kw] = pl
		s.liveKws++
	}
	s.epoch = d.Epoch
	return idx, nil
}

// SetEpoch forces the builder's mutation epoch so the next published
// snapshot reports it. The durable layer uses it during recovery: a journal
// replay must land on exactly the epoch the pre-crash index acknowledged,
// not on whatever a from-scratch reconstruction happens to count to. Like
// any mutation, it requires exclusive builder access.
func (idx *Index) SetEpoch(e uint64) { idx.s.epoch = e }

// Save serializes the index. Tombstoned fragments are compacted away.
func (idx *Index) Save(w io.Writer) error {
	d := idx.Dump()
	wire := indexWire{
		SelAttrs:  d.SelAttrs,
		EqAttrs:   d.EqAttrs,
		RangeAttr: d.RangeAttr,
		FragKeys:  d.FragKeys,
		Terms:     d.Terms,
		Inverted:  make(map[string][]wirePosting, len(d.Keywords)),
	}
	for i, kw := range d.Keywords {
		wps := make([]wirePosting, len(d.Postings[i]))
		for j, p := range d.Postings[i] {
			wps[j] = wirePosting{Frag: int32(p.Frag), TF: p.TF}
		}
		wire.Inverted[kw] = wps
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// Load deserializes an index written by Save, with the same corruption
// validation as Restore (ErrCorruptIndex on duplicate fragments, duplicate
// postings, or out-of-range refs).
func Load(r io.Reader) (*Index, error) {
	var wire indexWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
	}
	d := &Dump{
		SelAttrs:  wire.SelAttrs,
		EqAttrs:   wire.EqAttrs,
		RangeAttr: wire.RangeAttr,
		FragKeys:  wire.FragKeys,
		Terms:     wire.Terms,
		Keywords:  make([]string, 0, len(wire.Inverted)),
	}
	for kw := range wire.Inverted {
		d.Keywords = append(d.Keywords, kw)
	}
	sort.Strings(d.Keywords)
	d.Postings = make([][]Posting, len(d.Keywords))
	for i, kw := range d.Keywords {
		wps := wire.Inverted[kw]
		ps := make([]Posting, len(wps))
		for j, p := range wps {
			ps[j] = Posting{Frag: FragRef(p.Frag), TF: p.TF}
		}
		d.Postings[i] = ps
	}
	return Restore(d)
}

// sortRefsByID sorts refs by fragment identifier. Saved indexes arrive
// already sorted, so check first — sort.Slice on sorted input still pays
// the full O(n log n) comparisons, while a linear scan confirms order in
// one pass.
func sortRefsByID(s *Snapshot, refs []FragRef) {
	sorted := true
	for i := 1; i < len(refs); i++ {
		if s.metaAt(refs[i-1]).ID.Compare(s.metaAt(refs[i]).ID) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sort.Slice(refs, func(i, j int) bool {
		return s.metaAt(refs[i]).ID.Compare(s.metaAt(refs[j]).ID) < 0
	})
}
