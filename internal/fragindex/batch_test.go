package fragindex

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// logicalState captures everything a reader can observe about a snapshot
// keyed by fragment identifier rather than ref, so index versions that
// reached the same content along different mutation paths (and therefore
// different ref numberings) compare equal.
func logicalState(s *Snapshot) map[string]any {
	out := map[string]any{
		"fragments": s.NumFragments(),
		"keywords":  s.NumKeywords(),
		"avg":       s.AvgTermsPerFragment(),
	}
	type post struct {
		ID string
		TF int64
	}
	for _, kw := range s.Keywords() {
		ps := s.Postings(kw)
		posts := make([]post, len(ps))
		for i, p := range ps {
			posts[i] = post{ID: s.metaAt(p.Frag).ID.String(), TF: p.TF}
		}
		sort.Slice(posts, func(i, j int) bool { return posts[i].ID < posts[j].ID })
		out["ps:"+kw] = posts
		out["df:"+kw] = s.DF(kw)
		out["idf:"+kw] = s.IDF(kw)
	}
	var edges []string
	for _, e := range s.Edges() {
		edges = append(edges, s.metaAt(e[0]).ID.String()+"|"+s.metaAt(e[1]).ID.String())
	}
	sort.Strings(edges)
	out["edges"] = edges
	return out
}

// TestLiveApplyEmptyDeltaNoOp: an empty delta publishes nothing — same
// snapshot pointer, same epoch, untouched counters, zero copy-on-write
// work — instead of cloning metadata and swapping in an identical version.
func TestLiveApplyEmptyDeltaNoOp(t *testing.T) {
	l := liveFooddb(t)
	s0 := l.Snapshot()
	before := l.Stats()

	st, err := l.Apply(context.Background(), crawl.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != s0.Epoch() {
		t.Errorf("no-op epoch = %d, want current %d", st.Epoch, s0.Epoch())
	}
	if st.ClonedChunks != 0 || st.ClonedShards != 0 || st.ClonedLists != 0 || st.ClonedGroups != 0 {
		t.Errorf("no-op cloned something: %+v", st)
	}
	if l.Snapshot() != s0 {
		t.Error("empty delta published a new snapshot")
	}
	if after := l.Stats(); !reflect.DeepEqual(after, before) {
		t.Errorf("empty delta moved counters: %+v -> %+v", before, after)
	}
	// Batched form: a batch whose net effect is empty is equally a no-op.
	id := fragment.ID{relation.String("Nordic"), relation.Int(3)}
	st, err = l.ApplyBatch(context.Background(), []crawl.Delta{
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment, ID: id,
			TermCounts: map[string]int64{"herring": 1}, TotalTerms: 1}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpRemoveFragment, ID: id}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Snapshot() != s0 {
		t.Error("cancelled-out batch published a new snapshot")
	}
	if st.Deltas != 2 || st.Inserted != 0 {
		t.Errorf("cancelled batch stats = %+v", st)
	}
}

// TestApplyBatchMatchesSequential: a batch of deltas folded into one
// publish reaches the same logical index state as applying them one by
// one, across every coalescing rule (insert+update, insert+remove,
// update+update) — while paying a single publish.
func TestApplyBatchMatchesSequential(t *testing.T) {
	nordic := fragment.ID{relation.String("Nordic"), relation.Int(3)}
	doomed := fragment.ID{relation.String("Doomed"), relation.Int(1)}
	amer10 := fragment.ID{relation.String("American"), relation.Int(10)}
	ds := []crawl.Delta{
		// insert + update on the same new fragment.
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment, ID: nordic,
			TermCounts: map[string]int64{"herring": 1}, TotalTerms: 1}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpUpdateFragment, ID: nordic,
			TermCounts: map[string]int64{"herring": 2, "rye": 1}, TotalTerms: 3}}},
		// insert + remove cancels.
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment, ID: doomed,
			TermCounts: map[string]int64{"nothing": 1}, TotalTerms: 1}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpRemoveFragment, ID: doomed}}},
		// update + update keeps the last statistics.
		{Changes: []crawl.FragmentChange{{Op: crawl.OpUpdateFragment, ID: amer10,
			TermCounts: map[string]int64{"burger": 9}, TotalTerms: 9}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpUpdateFragment, ID: amer10,
			TermCounts: map[string]int64{"burger": 1, "shake": 2}, TotalTerms: 3}}},
	}

	seq := liveFooddb(t)
	for i, d := range ds {
		if _, err := seq.Apply(context.Background(), d); err != nil {
			t.Fatalf("sequential apply %d: %v", i, err)
		}
	}
	batched := liveFooddb(t)
	st, err := batched.ApplyBatch(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas != len(ds) {
		t.Errorf("batch stats deltas = %d, want %d", st.Deltas, len(ds))
	}
	if got, want := logicalState(batched.Snapshot()), logicalState(seq.Snapshot()); !reflect.DeepEqual(got, want) {
		t.Errorf("batched apply diverged from sequential:\nbatch %v\nseq   %v", got, want)
	}
	if seqSt, batchSt := seq.Stats(), batched.Stats(); batchSt.Publishes != 1 || seqSt.Publishes != uint64(len(ds)) {
		t.Errorf("publishes: batch %d (want 1), sequential %d (want %d)",
			batchSt.Publishes, seqSt.Publishes, len(ds))
	}
}

// TestApplyBatchTransactional: a batch that cannot apply — here a remove
// of a fragment that never existed — publishes nothing.
func TestApplyBatchTransactional(t *testing.T) {
	l := liveFooddb(t)
	s0 := l.Snapshot()
	_, err := l.ApplyBatch(context.Background(), []crawl.Delta{
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment,
			ID:         fragment.ID{relation.String("Nordic"), relation.Int(3)},
			TermCounts: map[string]int64{"herring": 1}, TotalTerms: 1}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpRemoveFragment,
			ID: fragment.ID{relation.String("Klingon"), relation.Int(7)}}}},
	})
	if !errors.Is(err, ErrNoFragment) {
		t.Fatalf("err = %v, want ErrNoFragment", err)
	}
	if l.Snapshot() != s0 {
		t.Error("failed batch published a snapshot")
	}
	if st := l.Stats(); st.Publishes != 0 || st.DeltasApplied != 0 {
		t.Errorf("failed batch counted: %+v", st)
	}
	// Conflicting batches are rejected by coalescing before touching
	// anything.
	dup := fragment.ID{relation.String("Nordic"), relation.Int(4)}
	_, err = l.ApplyBatch(context.Background(), []crawl.Delta{
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment, ID: dup,
			TermCounts: map[string]int64{"a": 1}, TotalTerms: 1}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment, ID: dup,
			TermCounts: map[string]int64{"b": 1}, TotalTerms: 1}}},
	})
	if !errors.Is(err, crawl.ErrCoalesce) {
		t.Fatalf("conflicting batch err = %v, want ErrCoalesce", err)
	}
	if l.Snapshot() != s0 {
		t.Error("conflicting batch published a snapshot")
	}
}

// TestQueueFlush: queued deltas accumulate without publishing, and one
// Flush folds them all into a single publish.
func TestQueueFlush(t *testing.T) {
	l := liveFooddb(t)
	s0 := l.Snapshot()
	id := fragment.ID{relation.String("American"), relation.Int(10)}
	for i := 1; i <= 3; i++ {
		n := l.Queue(updateDelta(id, map[string]int64{"burger": int64(i)}, int64(i)))
		if n != i {
			t.Errorf("Queue returned %d, want %d", n, i)
		}
	}
	if l.Snapshot() != s0 {
		t.Error("Queue published a snapshot")
	}
	if l.Pending() != 3 {
		t.Errorf("Pending = %d, want 3", l.Pending())
	}
	st, err := l.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas != 3 || st.Updated != 1 {
		t.Errorf("flush stats = %+v, want 3 deltas folded to 1 update", st)
	}
	if l.Pending() != 0 {
		t.Errorf("Pending after flush = %d", l.Pending())
	}
	if stats := l.Stats(); stats.Publishes != 1 || stats.DeltasApplied != 3 {
		t.Errorf("stats after flush = %+v", stats)
	}
	// The folded update carries the last queued statistics.
	s := l.Snapshot()
	ref, ok := s.Lookup(id)
	if !ok {
		t.Fatal("updated fragment vanished")
	}
	if got := s.TermsOf(ref); got != 3 {
		t.Errorf("terms after fold = %d, want 3 (last update wins)", got)
	}
	// Flushing an empty queue is a no-op.
	sBefore := l.Snapshot()
	if st, err := l.Flush(context.Background()); err != nil || l.Snapshot() != sBefore {
		t.Errorf("empty flush: stats %+v err %v, snapshot changed=%v", st, err, l.Snapshot() != sBefore)
	}
}

// TestStalePlanApplyFails reproduces the maintenance race the derive/apply
// split exposes: a delta derived against one snapshot (classifying an
// identifier as update) can meet an index where a concurrent writer has
// since removed the fragment. The stale apply must fail transactionally —
// wrong-guess classification never half-applies.
func TestStalePlanApplyFails(t *testing.T) {
	l := liveFooddb(t)
	id := fragment.ID{relation.String("American"), relation.Int(10)}
	// "DeriveDelta" ran while the fragment existed: classified as update.
	stale := updateDelta(id, map[string]int64{"burger": 5}, 5)
	// Another writer removes the fragment between derive and apply.
	if _, err := l.Apply(context.Background(), crawl.Delta{Changes: []crawl.FragmentChange{
		{Op: crawl.OpRemoveFragment, ID: id},
	}}); err != nil {
		t.Fatal(err)
	}
	s1 := l.Snapshot()
	before := logicalState(s1)
	if _, err := l.Apply(context.Background(), stale); !errors.Is(err, ErrNoFragment) {
		t.Fatalf("stale update err = %v, want ErrNoFragment", err)
	}
	if l.Snapshot() != s1 {
		t.Error("failed stale apply published a snapshot")
	}
	if got := logicalState(l.Snapshot()); !reflect.DeepEqual(got, before) {
		t.Error("failed stale apply changed the serving state")
	}
	// The same race inside a batch: the good leading change rolls back too.
	extra := fragment.ID{relation.String("Fusion"), relation.Int(42)}
	_, err := l.ApplyBatch(context.Background(), []crawl.Delta{
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment, ID: extra,
			TermCounts: map[string]int64{"fusion": 1}, TotalTerms: 1}}},
		stale,
	})
	if !errors.Is(err, ErrNoFragment) {
		t.Fatalf("stale batch err = %v, want ErrNoFragment", err)
	}
	if l.Snapshot().Has(extra) {
		t.Error("rolled-back batch insert leaked into the serving snapshot")
	}
}

// TestBatchPublishCostSharesUntouchedChunks pins the point of batching on
// a multi-chunk index: applying N single-change deltas as one batch pays
// one publish whose cloned-chunk count reflects the touched chunks only,
// while untouched chunks stay pointer-shared with the previous snapshot.
func TestBatchPublishCostSharesUntouchedChunks(t *testing.T) {
	spec := Spec{SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v"}
	idx, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := 2*chunkSize + 100
	for i := 0; i < n; i++ {
		id := fragment.ID{relation.String(fmt.Sprintf("g%06d", i/16)), relation.Int(int64(i % 16))}
		if _, err := idx.InsertFragment(id, map[string]int64{fmt.Sprintf("w%d", i%97): 1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	l := NewLive(idx)
	s0 := l.Snapshot()

	// 10 single-change updates confined to chunk 0, batched.
	var ds []crawl.Delta
	for i := 0; i < 10; i++ {
		id := fragment.ID{relation.String(fmt.Sprintf("g%06d", i)), relation.Int(0)}
		ds = append(ds, updateDelta(id, map[string]int64{fmt.Sprintf("w%d", i): 2}, 2))
	}
	st, err := l.ApplyBatch(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	s1 := l.Snapshot()
	if st.Deltas != 10 || st.Updated != 10 {
		t.Errorf("batch stats = %+v", st)
	}
	// Updates tombstone in chunk 0 and re-insert at the tail (last chunk):
	// exactly two dirty chunks, not O(refs/chunkSize).
	if st.ClonedChunks > 2 {
		t.Errorf("cloned %d chunks for a 2-chunk-touching batch", st.ClonedChunks)
	}
	shared := 0
	for i := range s0.chunks {
		if i < len(s1.chunks) && s0.chunks[i] == s1.chunks[i] {
			shared++
		}
	}
	if want := len(s0.chunks) - st.ClonedChunks; shared != want {
		t.Errorf("%d of %d chunks shared across publish, want %d", shared, len(s0.chunks), want)
	}
}
