package fragindex

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// dumpOf round-trips an index through Dump for comparisons.
func dumpOf(t *testing.T, idx *Index) *Dump {
	t.Helper()
	d := idx.Dump()
	if len(d.FragKeys) != len(d.Terms) || len(d.Keywords) != len(d.Postings) {
		t.Fatalf("inconsistent dump: %d/%d frags, %d/%d keywords",
			len(d.FragKeys), len(d.Terms), len(d.Keywords), len(d.Postings))
	}
	return d
}

// TestDumpRestoreRoundTrip: Restore(Dump()) reproduces the exact logical
// state — the restored index dumps byte-identically and serves the same
// postings.
func TestDumpRestoreRoundTrip(t *testing.T) {
	idx := fooddbIndex(t)
	// Mix in mutations so tombstones and updated lists are exercised.
	id := fragment.ID{relation.String("American"), relation.Int(10)}
	if err := idx.UpdateFragment(id, map[string]int64{"burger": 3, "shake": 2}, 5); err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveFragment(fragment.ID{relation.String("Thai"), relation.Int(10)}); err != nil {
		t.Fatal(err)
	}
	d := dumpOf(t, idx)

	got, err := Restore(d)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !reflect.DeepEqual(got.Dump(), d) {
		t.Error("restored index dumps differently from its source")
	}
	a, b := idx.Freeze(), got.Freeze()
	if a.Epoch() != b.Epoch() {
		t.Errorf("epochs differ: %d vs %d", a.Epoch(), b.Epoch())
	}
	if a.NumFragments() != b.NumFragments() || a.NumKeywords() != b.NumKeywords() {
		t.Errorf("cardinality differs: %d/%d vs %d/%d",
			a.NumFragments(), a.NumKeywords(), b.NumFragments(), b.NumKeywords())
	}
	for _, kw := range a.Keywords() {
		if a.DF(kw) != b.DF(kw) {
			t.Errorf("%q: DF %d vs %d", kw, a.DF(kw), b.DF(kw))
		}
	}
}

// TestDumpCanonical: two indexes reaching the same logical state through
// different mutation histories dump identically (modulo epoch, which counts
// mutations) — the recovery-equivalence bedrock.
func TestDumpCanonical(t *testing.T) {
	direct := fooddbIndex(t)
	id := fragment.ID{relation.String("Nordic"), relation.Int(7)}
	if _, err := direct.InsertFragment(id, map[string]int64{"herring": 2, "rye": 1}, 3); err != nil {
		t.Fatal(err)
	}

	detour := fooddbIndex(t)
	// Insert wrong, update right, plus an insert/remove pair that must leave
	// no trace in the canonical form.
	tmp := fragment.ID{relation.String("Zanzibar"), relation.Int(1)}
	if _, err := detour.InsertFragment(id, map[string]int64{"lutefisk": 9}, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := detour.InsertFragment(tmp, map[string]int64{"clove": 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := detour.UpdateFragment(id, map[string]int64{"herring": 2, "rye": 1}, 3); err != nil {
		t.Fatal(err)
	}
	if err := detour.RemoveFragment(tmp); err != nil {
		t.Fatal(err)
	}

	da, db := direct.Dump(), detour.Dump()
	da.Epoch, db.Epoch = 0, 0
	if !reflect.DeepEqual(da, db) {
		t.Error("same logical state dumped differently across mutation histories")
	}
}

// TestSetEpoch: the forced epoch is what the next snapshot reports — the
// contract journal replay leans on to land on the acknowledged epoch.
func TestSetEpoch(t *testing.T) {
	idx := fooddbIndex(t)
	idx.SetEpoch(41)
	if got := idx.Freeze().Epoch(); got != 41 {
		t.Fatalf("epoch after SetEpoch(41) = %d", got)
	}
	l := NewLive(idx)
	id := fragment.ID{relation.String("American"), relation.Int(10)}
	st, err := l.Apply(context.Background(), updateDelta(id, map[string]int64{"burger": 1}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Snapshot().Epoch(); got <= 41 || got != st.Epoch {
		t.Fatalf("epoch after one apply = %d (stats %d), want > 41 and agreeing", got, st.Epoch)
	}
}

// corruptDump builds a small valid dump, lets the caller damage it, and
// expects Restore to answer ErrCorruptIndex.
func corruptDump(t *testing.T, name string, damage func(d *Dump)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		idx := fooddbIndex(t)
		d := idx.Dump()
		damage(d)
		if _, err := Restore(d); !errors.Is(err, ErrCorruptIndex) {
			t.Errorf("err = %v, want ErrCorruptIndex", err)
		}
	})
}

// TestRestoreRejectsCorruption: every invariant violation Restore guards —
// each would silently corrupt group or document-frequency state if accepted.
func TestRestoreRejectsCorruption(t *testing.T) {
	corruptDump(t, "fragment arrays disagree", func(d *Dump) {
		d.Terms = d.Terms[:len(d.Terms)-1]
	})
	corruptDump(t, "keyword arrays disagree", func(d *Dump) {
		d.Postings = d.Postings[:len(d.Postings)-1]
	})
	corruptDump(t, "bad fragment key", func(d *Dump) {
		d.FragKeys[0] = "not a fragment key"
	})
	corruptDump(t, "fragment arity", func(d *Dump) {
		d.FragKeys[0] = fragment.ID{relation.String("x")}.Key()
	})
	corruptDump(t, "duplicate fragment key", func(d *Dump) {
		d.FragKeys[1] = d.FragKeys[0]
	})
	corruptDump(t, "empty keyword", func(d *Dump) {
		d.Keywords[0] = ""
	})
	corruptDump(t, "posting ref out of range", func(d *Dump) {
		d.Postings[0][0].Frag = FragRef(len(d.FragKeys))
	})
	corruptDump(t, "negative posting ref", func(d *Dump) {
		d.Postings[0][0].Frag = -1
	})
	corruptDump(t, "duplicate posting", func(d *Dump) {
		d.Postings[0] = append(d.Postings[0], d.Postings[0][0])
	})
	corruptDump(t, "duplicate keyword", func(d *Dump) {
		d.Keywords[1] = d.Keywords[0]
	})
}

// TestSaveLoadCanonicalState: the gob envelope preserves the canonical
// dump exactly (the broader round-trip lives in TestSaveLoadRoundTrip).
func TestSaveLoadCanonicalState(t *testing.T) {
	idx := fooddbIndex(t)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := idx.Dump(), got.Dump()
	// Save does not carry the epoch; everything else must survive.
	d1.Epoch, d2.Epoch = 0, 0
	if !reflect.DeepEqual(d1, d2) {
		t.Error("Save/Load changed the logical state")
	}
}

// loadWire gob-encodes a hand-built wire struct and runs it through Load —
// corruption below the Dump level, as a damaged or malicious file would
// carry it.
func loadWire(t *testing.T, wire *indexWire) error {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	return err
}

// TestLoadRejectsCorruptFiles: Load refuses wire-level corruption with
// ErrCorruptIndex instead of building a broken index — duplicate fragment
// keys, out-of-range postings, and duplicate postings were previously
// accepted silently.
func TestLoadRejectsCorruptFiles(t *testing.T) {
	base := func() *indexWire {
		return &indexWire{
			SelAttrs: []string{"c", "v"},
			EqAttrs:  []string{"c"},
			FragKeys: []string{
				fragment.ID{relation.String("a"), relation.Int(1)}.Key(),
				fragment.ID{relation.String("a"), relation.Int(2)}.Key(),
			},
			Terms: []int64{3, 4},
			Inverted: map[string][]wirePosting{
				"kw": {{Frag: 0, TF: 2}, {Frag: 1, TF: 1}},
			},
		}
	}
	if err := loadWire(t, base()); err != nil {
		t.Fatalf("baseline wire rejected: %v", err)
	}
	cases := []struct {
		name   string
		damage func(w *indexWire)
	}{
		{"truncated gob", nil}, // handled separately below
		{"duplicate fragment key", func(w *indexWire) { w.FragKeys[1] = w.FragKeys[0] }},
		{"posting ref out of range", func(w *indexWire) { w.Inverted["kw"][1].Frag = 2 }},
		{"negative posting ref", func(w *indexWire) { w.Inverted["kw"][1].Frag = -1 }},
		{"duplicate posting", func(w *indexWire) {
			w.Inverted["kw"] = append(w.Inverted["kw"], wirePosting{Frag: 0, TF: 1})
		}},
		{"terms array mismatch", func(w *indexWire) { w.Terms = w.Terms[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.damage == nil {
				_, err = Load(bytes.NewReader([]byte{0x01, 0x02, 0x03}))
			} else {
				w := base()
				tc.damage(w)
				err = loadWire(t, w)
			}
			if !errors.Is(err, ErrCorruptIndex) {
				t.Errorf("err = %v, want ErrCorruptIndex", err)
			}
		})
	}
}

// TestSortRefsByID covers both paths of the sorted-check fast path: already
// sorted input returns untouched, unsorted input comes out fully ordered.
func TestSortRefsByID(t *testing.T) {
	idx := fooddbIndex(t)
	s := idx.s
	n := s.numRefs
	refs := make([]FragRef, n)
	for i := range refs {
		refs[i] = FragRef(i)
	}
	sortRefsByID(s, refs)
	for i := 1; i < n; i++ {
		if s.metaAt(refs[i-1]).ID.Compare(s.metaAt(refs[i]).ID) > 0 {
			t.Fatalf("refs not sorted at %d", i)
		}
	}
	sorted := append([]FragRef(nil), refs...)
	// Reverse and re-sort: must match the first ordering exactly.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		refs[i], refs[j] = refs[j], refs[i]
	}
	sortRefsByID(s, refs)
	if !reflect.DeepEqual(refs, sorted) {
		t.Error("sorting reversed input diverged from sorted input")
	}
}

// TestPublishHookWriteAhead: the hook observes the folded delta and epoch
// before the swap; a hook error aborts the publish entirely — nothing
// served, builder rolled back.
func TestPublishHookWriteAhead(t *testing.T) {
	l := liveFooddb(t)
	var hooked []uint64
	fail := false
	l.SetPublishHook(func(_ context.Context, d crawl.Delta, epoch uint64) error {
		if fail {
			return errors.New("journal down")
		}
		if len(d.Changes) == 0 {
			t.Error("hook saw an empty delta")
		}
		// The swap must not have happened yet: the serving snapshot still
		// reports the previous epoch.
		if got := l.Snapshot().Epoch(); got >= epoch {
			t.Errorf("hook ran after publish: serving epoch %d >= hooked %d", got, epoch)
		}
		hooked = append(hooked, epoch)
		return nil
	})
	id := fragment.ID{relation.String("American"), relation.Int(10)}
	if _, err := l.Apply(context.Background(), updateDelta(id, map[string]int64{"burger": 2}, 2)); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != l.Snapshot().Epoch() {
		t.Fatalf("hooked epochs %v, serving epoch %d", hooked, l.Snapshot().Epoch())
	}

	fail = true
	before := l.Snapshot()
	if _, err := l.Apply(context.Background(), updateDelta(id, map[string]int64{"burger": 9}, 9)); err == nil {
		t.Fatal("apply succeeded with a failing hook")
	}
	if l.Snapshot() != before {
		t.Error("failed hook still published")
	}
	fail = false
	// The builder rolled back: the next apply publishes cleanly with no
	// trace of the aborted delta. "zanzibar" is new to the corpus, so its
	// DF isolates this update.
	if _, err := l.Apply(context.Background(), updateDelta(id, map[string]int64{"zanzibar": 1}, 1)); err != nil {
		t.Fatal(err)
	}
	s := l.Snapshot()
	if s.DF("zanzibar") != 1 {
		t.Error("post-abort apply missing its change")
	}
	if tf := postingTF(s, "burger", id); tf == 9 {
		t.Error("aborted delta leaked into a later snapshot")
	}
}

func postingTF(s *Snapshot, kw string, id fragment.ID) int64 {
	for _, p := range s.Postings(kw) {
		if m, err := s.Meta(p.Frag); err == nil && m.ID.Compare(id) == 0 {
			return p.TF
		}
	}
	return -1
}
