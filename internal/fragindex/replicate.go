package fragindex

// Replica-side publishing. A read replica applies journal records tailed
// from a leader, so its epochs are dictated, not generated: each record
// carries the epoch the leader published at (mutation epochs skip numbers —
// a ten-change delta advances the counter ten times), and the replica must
// serve the identical epoch for the identical bytes. ApplyReplicated is
// Apply with the epoch stamped from the record instead of counted locally,
// plus the duplicate-delivery guard: a record at or below the published
// epoch is rejected with ErrStaleEpoch rather than double-applied —
// tail-reconnect replays the cursor record, and folding the same delta
// twice would corrupt the index (duplicate inserts, double-counted terms).

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/crawl"
)

// ErrStaleEpoch rejects a replicated record whose epoch is at or below the
// replica's published epoch — duplicate delivery, not new state.
var ErrStaleEpoch = errors.New("fragindex: replicated record epoch not past published epoch")

// ApplyReplicated folds a leader-journaled delta and publishes it at
// exactly the given epoch. Transactional like Apply. An empty delta with a
// newer epoch publishes an epoch-only advance (the leader's snapshot-GC
// compaction bumps its epoch without journaling a record, and the replica
// closes that gap when the tail reports a record-free durable advance).
//
// ApplyReplicated never runs the publish hook: replicas are not
// write-ahead leaders — durability stays with the leader they tail.
func (l *LiveIndex) ApplyReplicated(ctx context.Context, d crawl.Delta, epoch uint64) (ApplyStats, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return ApplyStats{}, err
	}
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	published := l.cur.Load()
	if epoch <= published.epoch {
		return ApplyStats{Epoch: published.epoch},
			fmt.Errorf("%w: record epoch %d, published %d", ErrStaleEpoch, epoch, published.epoch)
	}
	if err := l.checkSpec(d.SelAttrs); err != nil {
		return ApplyStats{}, err
	}
	st := ApplyStats{Deltas: 1}
	for _, ch := range d.Changes {
		if err := ctx.Err(); err != nil {
			l.builder.discardTo(published)
			return ApplyStats{}, err
		}
		var err error
		switch ch.Op {
		case crawl.OpInsertFragment:
			_, err = l.builder.InsertFragment(ch.ID, ch.TermCounts, ch.TotalTerms)
			st.Inserted++
		case crawl.OpRemoveFragment:
			err = l.builder.RemoveFragment(ch.ID)
			st.Removed++
		case crawl.OpUpdateFragment:
			err = l.builder.UpdateFragment(ch.ID, ch.TermCounts, ch.TotalTerms)
			st.Updated++
		default:
			err = fmt.Errorf("fragindex: unknown delta op %v", ch.Op)
		}
		if err != nil {
			l.builder.discardTo(published)
			return ApplyStats{}, fmt.Errorf("applying %s %s: %w", ch.Op, ch.ID, err)
		}
	}
	st.ClonedChunks, st.ClonedShards, st.ClonedLists, st.ClonedGroups = l.builder.pendingClones()
	// Stamp the leader's epoch. beginWrite first: with an empty delta the
	// builder still shares the published snapshot struct, and the stamp
	// must never mutate a version readers already hold.
	l.builder.beginWrite()
	l.builder.SetEpoch(epoch)
	snap := l.builder.Freeze()
	st.Epoch = snap.epoch
	l.cur.Store(snap)
	l.deltas.Add(1)
	l.publishes.Add(1)
	l.inserted.Add(uint64(st.Inserted))
	l.removed.Add(uint64(st.Removed))
	l.updated.Add(uint64(st.Updated))
	return st, nil
}

// ResetTo replaces the serving state wholesale with a rebuilt index — the
// replica re-bootstrap path after its tail cursor fell off the leader's
// retained journal chain (ErrTailTruncated). The new index must be at or
// past the published epoch: a replica never moves a reader-visible epoch
// backwards. Takes ownership of idx.
func (l *LiveIndex) ResetTo(idx *Index) error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	published := l.cur.Load()
	if e := idx.s.epoch; e < published.epoch {
		return fmt.Errorf("%w: reset to epoch %d behind published %d", ErrStaleEpoch, e, published.epoch)
	}
	l.builder = idx
	l.cur.Store(idx.Freeze())
	l.publishes.Add(1)
	return nil
}
