package fragindex

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/crawl"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// ShardedLiveIndex partitions the fragment space across S independent
// LiveIndex shards so the serving path scales with cores: every shard owns
// its own freeze-and-swap publish cycle (an apply touching one shard clones
// and publishes only there), and a scatter-gather search pins one snapshot
// per shard and runs the read path on all of them concurrently.
//
// # Routing
//
// A fragment's shard is the FNV-1a hash of its equality-group key (the
// fragment identifier's equality-attribute values) modulo the shard count.
// Hashing the group key — not the whole identifier — guarantees an equality
// group never straddles shards, so the fragment graph's paths stay intact:
// every db-page a search can assemble lives wholly inside one shard, and
// per-shard top-k results merge into a global top-k without cross-shard
// page stitching. (A query with no equality attributes has a single group
// and therefore degenerates to one busy shard; sharding pays off in
// proportion to group-key cardinality.)
//
// # Concurrency
//
// Reads never lock: PinAll is one atomic load per shard, and the pinned set
// is immutable for the query's lifetime. Writes scale with shards:
// Apply/ApplyBatch route changes to their shards and run the per-shard
// applies concurrently — each shard keeps its single-writer discipline
// behind its own lock, and there is no global write lock. Like LiveIndex,
// the structure is designed for one logical maintenance writer: concurrent
// Apply calls are safe structurally, but insert-vs-update classification of
// the same fragment races at the application level.
//
// Each per-shard apply is transactional (a failing shard publishes
// nothing), but cross-shard atomicity is intentionally not provided: when
// one shard's changes fail, other shards' publishes stand, and the error
// names the failing shard. A scatter-gather search is likewise internally
// consistent per shard — each pinned snapshot is immutable — while the
// pinned set as a whole is an exact point-in-time cut only between
// publishes.
type ShardedLiveIndex struct {
	spec   Spec
	eqIdx  []int
	shards []*LiveIndex

	// deltas counts the logical deltas routed through Apply/ApplyBatch
	// that published somewhere — the same meaning LiveIndex.Stats reports
	// for a single index, independent of how many shards each batch
	// touched (each touched shard's own counter records one shard-local
	// apply per routed publish).
	deltas atomic.Uint64
}

// NewShardedLive partitions a built index across n shards and takes
// ownership of idx: all further access must go through the returned
// ShardedLiveIndex. With n == 1 the index is wrapped directly (no copy);
// for n > 1 the fragments are re-inserted into per-shard builders in
// identifier order — the same order fragindex.Build uses — so per-shard
// posting lists and group paths match what building each shard from a
// routed crawl output would produce.
func NewShardedLive(idx *Index, n int) (*ShardedLiveIndex, error) {
	if n < 1 {
		return nil, fmt.Errorf("fragindex: shard count %d, want >= 1", n)
	}
	s := idx.s
	eqIdx, _, err := s.spec.indices()
	if err != nil {
		return nil, err
	}
	sl := &ShardedLiveIndex{spec: s.spec, eqIdx: eqIdx}
	if n == 1 {
		sl.shards = []*LiveIndex{NewLive(idx)}
		return sl, nil
	}
	builders := make([]*Index, n)
	for i := range builders {
		b, err := New(s.spec)
		if err != nil {
			return nil, err
		}
		b.compactNum, b.compactDen = idx.compactNum, idx.compactDen
		builders[i] = b
	}
	// Re-insert the live fragments into their routed shards, in the same
	// identifier-ordered reconstruction Compact rebuilds from.
	order, counts := s.liveFragmentsByID()
	sl.shards = make([]*LiveIndex, n)
	for _, ref := range order {
		m := s.metaAt(ref)
		if _, err := builders[sl.shardOf(m.ID)].InsertFragment(m.ID, counts[ref], m.Terms); err != nil {
			return nil, fmt.Errorf("fragindex: partitioning %s: %w", m.ID, err)
		}
	}
	for i, b := range builders {
		sl.shards[i] = NewLive(b)
	}
	return sl, nil
}

// NewShardedLiveFrom assembles a sharded index from per-shard builders that
// were already partitioned — the durable layer's recovery path, where each
// shard's builder is restored from its own snapshot + journal and must NOT be
// re-routed (re-partitioning would move fragments whose routed shard already
// journaled them). The builders must share one spec and their order is the
// shard order; ownership transfers to the returned index.
func NewShardedLiveFrom(builders []*Index) (*ShardedLiveIndex, error) {
	if len(builders) == 0 {
		return nil, fmt.Errorf("fragindex: no shard builders")
	}
	spec := builders[0].s.spec
	eqIdx, _, err := spec.indices()
	if err != nil {
		return nil, err
	}
	sl := &ShardedLiveIndex{spec: spec, eqIdx: eqIdx, shards: make([]*LiveIndex, len(builders))}
	for i, b := range builders {
		bs := b.s.spec
		if !slices.Equal(bs.SelAttrs, spec.SelAttrs) ||
			!slices.Equal(bs.EqAttrs, spec.EqAttrs) || bs.RangeAttr != spec.RangeAttr {
			return nil, fmt.Errorf("fragindex: shard %d spec %v disagrees with shard 0 spec %v",
				i, bs.SelAttrs, spec.SelAttrs)
		}
		sl.shards[i] = NewLive(b)
	}
	return sl, nil
}

// NumShards returns the shard count.
func (sl *ShardedLiveIndex) NumShards() int { return len(sl.shards) }

// Shard returns shard i's LiveIndex for direct access (per-shard stats,
// queueing, explicit snapshots).
func (sl *ShardedLiveIndex) Shard(i int) *LiveIndex { return sl.shards[i] }

// Spec returns the index's selection-attribute structure.
func (sl *ShardedLiveIndex) Spec() Spec { return sl.spec }

// shardOf routes an identifier of validated arity to its shard.
func (sl *ShardedLiveIndex) shardOf(id fragment.ID) int {
	eq := make([]relation.Value, len(sl.eqIdx))
	for i, j := range sl.eqIdx {
		eq[i] = id[j]
	}
	return int(fnv32(relation.Key(eq)) % uint32(len(sl.shards)))
}

// ShardFor returns the shard a fragment identifier routes to: the hash of
// its equality-group key, so all members of one group share a shard.
func (sl *ShardedLiveIndex) ShardFor(id fragment.ID) (int, error) {
	if len(id) != len(sl.spec.SelAttrs) {
		return 0, fmt.Errorf("%w: id %v has %d values, want %d",
			ErrBadIDArity, id, len(id), len(sl.spec.SelAttrs))
	}
	return sl.shardOf(id), nil
}

// PinAll resolves the current published snapshot of every shard — one
// atomic load each, no locks. Each snapshot is immutable; the set is the
// read view a scatter-gather search runs against.
func (sl *ShardedLiveIndex) PinAll() []*Snapshot {
	out := make([]*Snapshot, len(sl.shards))
	for i, sh := range sl.shards {
		out[i] = sh.Snapshot()
	}
	return out
}

// Has reports whether a live fragment with the given identifier exists in
// its routed shard's current snapshot.
func (sl *ShardedLiveIndex) Has(id fragment.ID) bool {
	si, err := sl.ShardFor(id)
	if err != nil {
		return false
	}
	return sl.shards[si].Snapshot().Has(id)
}

// checkSpec rejects deltas whose selection attributes disagree with the
// index spec (empty SelAttrs skips the check).
func (sl *ShardedLiveIndex) checkSpec(selAttrs []string) error {
	if len(selAttrs) > 0 && !slices.Equal(selAttrs, sl.spec.SelAttrs) {
		return fmt.Errorf("%w: delta %v, index %v", ErrDeltaSpec, selAttrs, sl.spec.SelAttrs)
	}
	return nil
}

// ShardApply is one shard's share of a routed apply. Its embedded stats
// are the shard's own report: Deltas is 1 (the shard applied one routed,
// already-coalesced delta), and the clone counters cover that shard's
// publish only.
type ShardApply struct {
	Shard int `json:"shard"`
	ApplyStats
}

// ShardedApplyStats reports a routed apply: the summed totals plus what
// each touched shard published. Total.Deltas is the logical delta count
// of the call (1 for Apply, the batch size for ApplyBatch) and
// Total.Epoch the highest epoch across shards after the apply — for a
// no-op that is the current highest published epoch, matching
// LiveIndex's no-op contract (shards advance their epochs
// independently).
type ShardedApplyStats struct {
	Total ApplyStats `json:"total"`
	// PerShard lists only the shards the apply touched, ascending.
	PerShard []ShardApply `json:"per_shard,omitempty"`
}

// maxEpoch returns the highest currently published epoch across shards.
func (sl *ShardedLiveIndex) maxEpoch() uint64 {
	var max uint64
	for _, sh := range sl.shards {
		if e := sh.Snapshot().epoch; e > max {
			max = e
		}
	}
	return max
}

// Apply routes a delta's changes to their shards and applies them
// concurrently, one transactional publish per touched shard. Changes for
// the same fragment keep their order (they route to the same shard).
// Cross-shard atomicity is not provided: on error the failing shard has
// published nothing, but other shards' publishes stand. A cancelled ctx
// behaves the same way — each shard's apply observes the cancellation
// independently and rolls its own slice back; an already-cancelled ctx
// publishes nowhere.
func (sl *ShardedLiveIndex) Apply(ctx context.Context, d crawl.Delta) (ShardedApplyStats, error) {
	if err := sl.checkSpec(d.SelAttrs); err != nil {
		return ShardedApplyStats{}, err
	}
	return sl.applyRouted(ctx, d.SelAttrs, d.Changes, 1)
}

// ApplyBatch coalesces a sequence of deltas (crawl.Coalesce) and routes the
// net changes to their shards, applying concurrently — each touched shard
// pays one publish for the whole batch, and untouched shards pay nothing.
// Like Apply, per-shard applies are transactional but cross-shard atomicity
// is not provided.
func (sl *ShardedLiveIndex) ApplyBatch(ctx context.Context, ds []crawl.Delta) (ShardedApplyStats, error) {
	for _, d := range ds {
		if err := sl.checkSpec(d.SelAttrs); err != nil {
			return ShardedApplyStats{}, err
		}
	}
	folded, err := crawl.Coalesce(ds)
	if err != nil {
		return ShardedApplyStats{}, err
	}
	return sl.applyRouted(ctx, folded.SelAttrs, folded.Changes, len(ds))
}

// applyRouted partitions changes by shard and applies each shard's slice
// concurrently. deltas is the logical delta count for stats.
func (sl *ShardedLiveIndex) applyRouted(ctx context.Context, selAttrs []string, changes []crawl.FragmentChange, deltas int) (ShardedApplyStats, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return ShardedApplyStats{}, err
	}
	out := ShardedApplyStats{Total: ApplyStats{Deltas: deltas}}
	if len(changes) == 0 {
		out.Total.Epoch = sl.maxEpoch()
		return out, nil
	}
	per := make([][]crawl.FragmentChange, len(sl.shards))
	for _, ch := range changes {
		si, err := sl.ShardFor(ch.ID)
		if err != nil {
			return ShardedApplyStats{}, err
		}
		per[si] = append(per[si], ch)
	}
	stats := make([]ApplyStats, len(sl.shards))
	errs := make([]error, len(sl.shards))
	var wg sync.WaitGroup
	for si, chs := range per {
		if len(chs) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, chs []crawl.FragmentChange) {
			defer wg.Done()
			stats[si], errs[si] = sl.shards[si].Apply(ctx, crawl.Delta{SelAttrs: selAttrs, Changes: chs})
		}(si, chs)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return ShardedApplyStats{}, fmt.Errorf("fragindex: shard %d: %w", si, err)
		}
	}
	for si, chs := range per {
		if len(chs) == 0 {
			continue
		}
		st := stats[si]
		out.Total.Inserted += st.Inserted
		out.Total.Removed += st.Removed
		out.Total.Updated += st.Updated
		out.Total.ClonedChunks += st.ClonedChunks
		out.Total.ClonedShards += st.ClonedShards
		out.Total.ClonedLists += st.ClonedLists
		out.Total.ClonedGroups += st.ClonedGroups
		if st.Epoch > out.Total.Epoch {
			out.Total.Epoch = st.Epoch
		}
		out.PerShard = append(out.PerShard, ShardApply{Shard: si, ApplyStats: st})
	}
	sl.deltas.Add(uint64(deltas))
	return out, nil
}

// CompactIfNeeded runs the snapshot garbage collector on every shard
// concurrently (see LiveIndex.CompactIfNeeded) and returns how many shards
// compacted. Shards decide independently — a removal-heavy shard compacts
// while its siblings keep serving their current lineages untouched. A
// cancelled ctx stops shards that have not started their rebuild yet.
func (sl *ShardedLiveIndex) CompactIfNeeded(ctx context.Context, maxDeadRatio float64) (int, error) {
	ran := make([]bool, len(sl.shards))
	errs := make([]error, len(sl.shards))
	var wg sync.WaitGroup
	for si, sh := range sl.shards {
		wg.Add(1)
		go func(si int, sh *LiveIndex) {
			defer wg.Done()
			ran[si], errs[si] = sh.CompactIfNeeded(ctx, maxDeadRatio)
		}(si, sh)
	}
	wg.Wait()
	n := 0
	for si, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("fragindex: shard %d: %w", si, err)
		}
		if ran[si] {
			n++
		}
	}
	return n, nil
}

// SetPostingCompaction tunes every shard's posting-list compaction
// threshold (see Index.SetPostingCompaction).
func (sl *ShardedLiveIndex) SetPostingCompaction(num, den int) error {
	for _, sh := range sl.shards {
		if err := sh.SetPostingCompaction(num, den); err != nil {
			return err
		}
	}
	return nil
}

// ShardedLiveStats aggregates the per-shard serving statistics. Counters
// are sums across shards, except DeltasApplied, which counts logical
// deltas routed through Apply/ApplyBatch — the same meaning a single
// LiveIndex reports — while each PerShard row's DeltasApplied counts that
// shard's own applies (one per routed publish). MaxEpoch is the highest
// per-shard epoch (shards advance independently). KeywordLists counts
// posting lists across shards — a keyword whose fragments span k shards
// contributes k lists.
type ShardedLiveStats struct {
	Shards         int     `json:"shards"`
	Fragments      int     `json:"fragments"`
	KeywordLists   int     `json:"keyword_lists"`
	TombstonedRefs int     `json:"tombstoned_refs"`
	AvgTerms       float64 `json:"avg_terms_per_fragment"`
	MaxEpoch       uint64  `json:"max_epoch"`
	DeltasApplied  uint64  `json:"deltas_applied"`
	Publishes      uint64  `json:"publishes"`
	Queued         int     `json:"queued_deltas"`
	Inserted       uint64  `json:"fragments_inserted"`
	Removed        uint64  `json:"fragments_removed"`
	Updated        uint64  `json:"fragments_updated"`
	Compactions    uint64  `json:"compactions"`
	// PerShard carries each shard's own stats (epoch, pending queue,
	// publish counters) in shard order.
	PerShard []LiveStats `json:"per_shard"`
}

// Stats reads every shard's current snapshot and maintenance counters.
// Safe to call concurrently with searches and applies.
func (sl *ShardedLiveIndex) Stats() ShardedLiveStats {
	out := ShardedLiveStats{Shards: len(sl.shards), DeltasApplied: sl.deltas.Load()}
	var terms float64
	for _, sh := range sl.shards {
		st := sh.Stats()
		out.Fragments += st.Fragments
		out.KeywordLists += st.Keywords
		out.TombstonedRefs += st.TombstonedRefs
		terms += st.AvgTerms * float64(st.Fragments)
		if st.Epoch > out.MaxEpoch {
			out.MaxEpoch = st.Epoch
		}
		out.Publishes += st.Publishes
		out.Queued += st.Queued
		out.Inserted += st.Inserted
		out.Removed += st.Removed
		out.Updated += st.Updated
		out.Compactions += st.Compactions
		out.PerShard = append(out.PerShard, st)
	}
	if out.Fragments > 0 {
		out.AvgTerms = terms / float64(out.Fragments)
	}
	return out
}
