package fragindex

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// chunkID derives the i-th synthetic identifier: groups of 16 consecutive
// refs, ordered so incremental insertion appends at each group's tail.
func chunkID(i int) fragment.ID {
	return fragment.ID{relation.String(fmt.Sprintf("g%06d", i/16)), relation.Int(int64(i % 16))}
}

// chunkedIndex builds an index spanning multiple metadata chunks: ref i
// carries a unique keyword u<i> and a shared keyword s<i mod 97>.
func chunkedIndex(t *testing.T, n int) *Index {
	t.Helper()
	idx, err := New(Spec{SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		counts := map[string]int64{
			fmt.Sprintf("u%d", i):    int64(1 + i%3),
			fmt.Sprintf("s%d", i%97): 1,
		}
		if _, err := idx.InsertFragment(chunkID(i), counts, int64(2+i%3)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return idx
}

// checkFragment asserts ref-independent invariants for one identifier: it
// resolves, its unique keyword posts to it, and its group membership is
// positionally consistent.
func checkFragment(t *testing.T, s *Snapshot, i int, wantTF int64) {
	t.Helper()
	id := chunkID(i)
	ref, ok := s.Lookup(id)
	if !ok {
		t.Fatalf("fragment %d (%s) does not resolve", i, id)
	}
	if !s.AliveRef(ref) {
		t.Fatalf("fragment %d resolved to dead ref %d", i, ref)
	}
	ps := s.Postings(fmt.Sprintf("u%d", i))
	if len(ps) != 1 || ps[0].Frag != ref || ps[0].TF != wantTF {
		t.Fatalf("fragment %d postings = %+v, want [{%d %d}]", i, ps, ref, wantTF)
	}
	members, pos, err := s.GroupMembers(ref)
	if err != nil {
		t.Fatal(err)
	}
	if members[pos] != ref {
		t.Fatalf("fragment %d group position broken: members[%d]=%d, ref %d", i, pos, members[pos], ref)
	}
}

// boundaryRefs are the ref positions the chunked layout must get right:
// the first ref, both sides of the first chunk boundary, and the last ref
// of the trailing partial chunk.
func boundaryRefs(n int) []int {
	return []int{0, chunkSize - 1, chunkSize, n - 1}
}

// TestChunkBoundaryUpdateRemoveInsert drives update, remove, and
// re-insert at every chunk-boundary position of a multi-chunk index,
// checking the mutated version and the isolation of the previously
// published snapshot after each step.
func TestChunkBoundaryUpdateRemoveInsert(t *testing.T) {
	const n = chunkSize + 40
	idx := chunkedIndex(t, n)
	live := NewLive(idx)
	for _, i := range boundaryRefs(n) {
		i := i
		t.Run(fmt.Sprintf("ref=%d", i), func(t *testing.T) {
			id := chunkID(i)
			before := live.Snapshot()
			beforeRef, ok := before.Lookup(id)
			if !ok {
				t.Fatal("fragment missing before mutation")
			}
			beforeTerms := before.TermsOf(beforeRef)

			// Update with fresh statistics.
			st, err := live.Apply(context.Background(), crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: crawl.OpUpdateFragment, ID: id,
				TermCounts: map[string]int64{fmt.Sprintf("u%d", i): 7}, TotalTerms: 7,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			checkFragment(t, live.Snapshot(), i, 7)
			if before.TermsOf(beforeRef) != beforeTerms {
				t.Error("published snapshot observed the update")
			}
			// An update tombstones in the fragment's chunk and re-inserts at
			// the tail: at most two dirty chunks however large the index is.
			if st.ClonedChunks > 2 {
				t.Errorf("update cloned %d chunks", st.ClonedChunks)
			}

			// Remove, then verify the old version still serves it.
			mid := live.Snapshot()
			if _, err := live.Apply(context.Background(), crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: crawl.OpRemoveFragment, ID: id,
			}}}); err != nil {
				t.Fatal(err)
			}
			if live.Snapshot().Has(id) {
				t.Fatal("removed fragment still resolves")
			}
			checkFragment(t, mid, i, 7)

			// Re-insert; the fragment returns under a fresh tail ref.
			if _, err := live.Apply(context.Background(), crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: crawl.OpInsertFragment, ID: id,
				TermCounts: map[string]int64{fmt.Sprintf("u%d", i): int64(1 + i%3), fmt.Sprintf("s%d", i%97): 1},
				TotalTerms: int64(2 + i%3),
			}}}); err != nil {
				t.Fatal(err)
			}
			checkFragment(t, live.Snapshot(), i, int64(1+i%3))
		})
	}
}

// TestChunkBoundaryAppendGrowsTable: inserting the ref that starts a new
// chunk appends to the chunk table without disturbing the published
// snapshot, whose table keeps its length.
func TestChunkBoundaryAppendGrowsTable(t *testing.T) {
	idx := chunkedIndex(t, chunkSize) // exactly one full chunk
	frozen := idx.Freeze()
	if got := len(frozen.chunks); got != 1 {
		t.Fatalf("full chunk table has %d chunks, want 1", got)
	}
	ref, err := idx.InsertFragment(chunkID(chunkSize),
		map[string]int64{fmt.Sprintf("u%d", chunkSize): 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if int(ref) != chunkSize {
		t.Fatalf("boundary insert got ref %d, want %d", ref, chunkSize)
	}
	next := idx.Freeze()
	if len(next.chunks) != 2 || next.NumRefs() != chunkSize+1 {
		t.Errorf("new table: %d chunks / %d refs, want 2 / %d", len(next.chunks), next.NumRefs(), chunkSize+1)
	}
	if len(frozen.chunks) != 1 || frozen.NumRefs() != chunkSize {
		t.Errorf("published table grew: %d chunks / %d refs", len(frozen.chunks), frozen.NumRefs())
	}
	// The full first chunk was untouched by the append: still shared.
	if frozen.chunks[0] != next.chunks[0] {
		t.Error("untouched full chunk was cloned by a tail append")
	}
	checkFragment(t, next, chunkSize, 1)
}

// TestChunkBoundaryPartialChunkIsolation: appending into a partially
// filled tail chunk after a publish clones that chunk — the published
// snapshot's view of the shared prefix stays frozen.
func TestChunkBoundaryPartialChunkIsolation(t *testing.T) {
	const n = chunkSize + 10 // tail chunk holds 10 refs
	idx := chunkedIndex(t, n)
	frozen := idx.Freeze()
	ref, err := idx.InsertFragment(chunkID(n), map[string]int64{fmt.Sprintf("u%d", n): 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if int(ref) != n {
		t.Fatalf("tail insert got ref %d, want %d", ref, n)
	}
	if frozen.NumRefs() != n {
		t.Errorf("published ref space grew to %d", frozen.NumRefs())
	}
	if frozen.Has(chunkID(n)) {
		t.Error("published snapshot sees the new fragment")
	}
	next := idx.Freeze()
	if next.chunks[0] != frozen.chunks[0] {
		t.Error("full chunk cloned by a tail-chunk append")
	}
	if next.chunks[1] == frozen.chunks[1] {
		t.Error("tail chunk shared after an append into it")
	}
	checkFragment(t, next, n, 1)
}

// TestChunkBoundaryCompact: compaction across chunk boundaries renumbers
// refs contiguously and preserves every surviving fragment, with removals
// placed at each boundary position.
func TestChunkBoundaryCompact(t *testing.T) {
	const n = 2*chunkSize + 25
	idx := chunkedIndex(t, n)
	live := NewLive(idx)
	removed := map[int]bool{}
	var changes []crawl.FragmentChange
	for _, i := range []int{0, chunkSize - 1, chunkSize, 2 * chunkSize, n - 1} {
		removed[i] = true
		changes = append(changes, crawl.FragmentChange{Op: crawl.OpRemoveFragment, ID: chunkID(i)})
	}
	if _, err := live.Apply(context.Background(), crawl.Delta{Changes: changes}); err != nil {
		t.Fatal(err)
	}
	ran, err := live.CompactIfNeeded(context.Background(), 0.000001) // any tombstone triggers
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("compaction did not run")
	}
	s := live.Snapshot()
	if s.NumRefs() != n-len(removed) || s.NumFragments() != n-len(removed) {
		t.Fatalf("compacted to %d refs / %d fragments, want %d", s.NumRefs(), s.NumFragments(), n-len(removed))
	}
	for i := 0; i < n; i++ {
		if removed[i] {
			if s.Has(chunkID(i)) {
				t.Errorf("removed fragment %d survived compaction", i)
			}
			continue
		}
		checkFragment(t, s, i, int64(1+i%3))
	}
}
