package fragindex

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/fragment"
	"repro/internal/relation"
)

// Posting lists are grouped into a fixed number of hash shards. The shard is
// the copy-on-write unit between snapshots: publishing a new snapshot clones
// only the shard maps (and within them, only the posting lists) touched by
// the delta, so untouched shards — the overwhelming majority of index
// memory — are shared by pointer across every live snapshot. Shard counts
// trade the fixed per-publish table copy (numShards+numGroupShards
// pointers, a few KB) against the per-touched-shard map-clone cost
// (entries/numShards); the values below keep both in the microseconds even
// at millions of keywords/groups.
const numShards = 256 // power of two; shardIndex masks with numShards-1

// Equality groups hash into their own shard table so a delta that touches
// one group clones one small map instead of the whole group directory.
const numGroupShards = 512 // power of two

// shard is one hash bucket of the inverted fragment index.
type shard struct {
	lists map[string]*postingList
}

// fnv32 hashes a string with FNV-1a.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// shardIndex hashes a keyword to its posting shard.
func shardIndex(kw string) uint32 { return fnv32(kw) & (numShards - 1) }

// groupShardIndex hashes an equality key to its group shard.
func groupShardIndex(key string) uint32 { return fnv32(key) & (numGroupShards - 1) }

func newShards() []*shard {
	out := make([]*shard, numShards)
	for i := range out {
		out[i] = &shard{lists: make(map[string]*postingList)}
	}
	return out
}

// groupShard is one hash bucket of the equality-group directory.
type groupShard struct {
	groups map[string]*group
}

func newGroupShards() []*groupShard {
	out := make([]*groupShard, numGroupShards)
	for i := range out {
		out[i] = &groupShard{groups: make(map[string]*group)}
	}
	return out
}

// Fragment metadata is stored in fixed-size chunks of chunkSize refs behind
// a chunk-pointer table. The chunk is the metadata copy-on-write unit:
// publishing a new snapshot copies the chunk table (O(refs/chunkSize)
// pointers) plus only the chunks a delta dirtied, so a single-fragment
// change on a million-ref index no longer pays an O(refs) metadata copy per
// publish.
const (
	chunkShift = 12
	chunkSize  = 1 << chunkShift // refs per metadata chunk
	chunkMask  = chunkSize - 1
)

// metaChunk holds chunkSize refs' worth of the four per-ref metadata
// arrays, in parallel: the fragment summary, the builder-side forward
// keyword map, the equality-group pointer, and the position within the
// group (-1 when dead).
type metaChunk struct {
	frags    []Meta
	kwOf     [][]string
	groupOf  []*group
	memberAt []int
}

// clone returns a deep copy of the chunk's arrays (slice contents such as
// keyword strings stay shared — they are immutable per ref).
func (c *metaChunk) clone() *metaChunk {
	return &metaChunk{
		frags:    append([]Meta(nil), c.frags...),
		kwOf:     append([][]string(nil), c.kwOf...),
		groupOf:  append([]*group(nil), c.groupOf...),
		memberAt: append([]int(nil), c.memberAt...),
	}
}

// Snapshot is one immutable version of the fragment index: the inverted
// fragment index (sharded posting lists), the fragment graph, and the O(1)
// statistics counters, all frozen at a mutation epoch.
//
// A Snapshot obtained from LiveIndex.Snapshot (or Index.Freeze) never
// changes: any number of goroutines may run the entire query read path
// against it lock-free, concurrently with a writer publishing later
// snapshots. The only internally mutable field is the lazily built sorted
// keyword cache, which is swapped through an atomic pointer and is
// idempotent to race on.
//
// Every per-ref structure is behind a copy-on-write table so publishing a
// new version costs only what the delta touched: fragment metadata lives in
// fixed-size chunks behind a chunk-pointer table (the chunk is the metadata
// CoW unit — see metaChunk), posting lists hash into shards, and equality
// groups hash into their own shard table. Untouched chunks, shards, lists,
// and groups are shared by pointer across every live snapshot.
//
// A Snapshot obtained from Index.Snapshot on an index that has never been
// frozen is a live view, not an isolated version: it shares the index's
// storage and observes its mutations, under the index's exclusive-mutation
// contract.
type Snapshot struct {
	spec     Spec
	eqIdx    []int
	rangeIdx int

	numRefs int          // ref-space size; chunk i holds refs [i<<chunkShift, ...)
	chunks  []*metaChunk // per-ref metadata behind the chunk table
	shards  []*shard     // inverted index posting shards
	gshards []*groupShard

	// Live counters: maintained on insert/remove so the Table IV stats
	// (NumFragments, AvgTermsPerFragment, NumKeywords) are O(1).
	liveFrags int
	liveTerms int64
	liveKws   int

	// epoch counts mutations; kwCache holds the sorted Keywords() slice
	// built at a given epoch (atomic so concurrent readers may refresh it).
	epoch   uint64
	kwCache atomic.Pointer[kwCache]
}

// clone returns a builder-writable copy sharing every chunk, posting shard,
// and group shard with the receiver. Only the top-level pointer tables are
// copied — O(refs/chunkSize) for the chunk table plus two fixed-size shard
// tables — so publish cost is proportional to what the delta then dirties,
// not to index size. The payloads (chunks, posting lists, groups) are
// cloned lazily, one by one, only where mutations touch them.
func (s *Snapshot) clone() *Snapshot {
	return &Snapshot{
		spec:      s.spec,
		eqIdx:     s.eqIdx,
		rangeIdx:  s.rangeIdx,
		numRefs:   s.numRefs,
		chunks:    append([]*metaChunk(nil), s.chunks...),
		shards:    append([]*shard(nil), s.shards...),
		gshards:   append([]*groupShard(nil), s.gshards...),
		liveFrags: s.liveFrags,
		liveTerms: s.liveTerms,
		liveKws:   s.liveKws,
		epoch:     s.epoch,
	}
}

// metaAt returns a pointer to ref's summary without bounds checking.
func (s *Snapshot) metaAt(ref FragRef) *Meta {
	return &s.chunks[ref>>chunkShift].frags[ref&chunkMask]
}

// aliveAt reports ref's liveness without bounds checking.
func (s *Snapshot) aliveAt(ref FragRef) bool {
	return s.chunks[ref>>chunkShift].frags[ref&chunkMask].Alive
}

// kwsAt returns ref's forward keyword list without bounds checking.
func (s *Snapshot) kwsAt(ref FragRef) []string {
	return s.chunks[ref>>chunkShift].kwOf[ref&chunkMask]
}

// groupAt returns ref's equality group without bounds checking.
func (s *Snapshot) groupAt(ref FragRef) *group {
	return s.chunks[ref>>chunkShift].groupOf[ref&chunkMask]
}

// posAt returns ref's position within its group (-1 when dead) without
// bounds checking.
func (s *Snapshot) posAt(ref FragRef) int {
	return s.chunks[ref>>chunkShift].memberAt[ref&chunkMask]
}

// Snapshot returns the receiver, making *Snapshot a search.Source: an
// engine constructed over a snapshot is permanently pinned to it.
func (s *Snapshot) Snapshot() *Snapshot { return s }

// list returns the keyword's posting list, nil when absent.
func (s *Snapshot) list(kw string) *postingList {
	return s.shards[shardIndex(kw)].lists[kw]
}

// eachList visits every posting list (any order).
func (s *Snapshot) eachList(f func(kw string, pl *postingList)) {
	for _, sh := range s.shards {
		for kw, pl := range sh.lists {
			f(kw, pl)
		}
	}
}

// eachGroup visits every equality group (any order), including groups whose
// member path is currently empty.
func (s *Snapshot) eachGroup(f func(g *group)) {
	for _, gs := range s.gshards {
		for _, g := range gs.groups {
			f(g)
		}
	}
}

// Spec returns the snapshot's selection-attribute structure.
func (s *Snapshot) Spec() Spec { return s.spec }

// Epoch returns the mutation epoch the snapshot was frozen at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumFragments returns the number of live fragments (O(1)).
func (s *Snapshot) NumFragments() int { return s.liveFrags }

// NumKeywords returns the number of distinct indexed keywords with at
// least one live posting (O(1)).
func (s *Snapshot) NumKeywords() int { return s.liveKws }

// AvgTermsPerFragment reports the average keyword count over live fragments
// (Table IV's third column). O(1).
func (s *Snapshot) AvgTermsPerFragment() float64 {
	if s.liveFrags == 0 {
		return 0
	}
	return float64(s.liveTerms) / float64(s.liveFrags)
}

// Meta returns a fragment's summary.
func (s *Snapshot) Meta(ref FragRef) (Meta, error) {
	if int(ref) < 0 || int(ref) >= s.numRefs {
		return Meta{}, fmt.Errorf("%w: ref %d", ErrNoFragment, ref)
	}
	return *s.metaAt(ref), nil
}

// NumRefs returns the size of the ref space (live fragments plus
// tombstones): every FragRef handed out by this snapshot is in [0, NumRefs).
// Callers that validate refs once against it may then use the unchecked
// accessors TermsOf and AliveRef on the hot path.
func (s *Snapshot) NumRefs() int { return s.numRefs }

// TermsOf returns a fragment's total keyword count without bounds
// checking. The caller must have validated ref (see NumRefs).
func (s *Snapshot) TermsOf(ref FragRef) int64 {
	return s.chunks[ref>>chunkShift].frags[ref&chunkMask].Terms
}

// AliveRef reports whether ref is within range and not tombstoned.
func (s *Snapshot) AliveRef(ref FragRef) bool {
	return int(ref) >= 0 && int(ref) < s.numRefs && s.aliveAt(ref)
}

// Lookup resolves a fragment identifier to its ref: the identifier's
// equality values locate the group, and a binary search over the group's
// range-ordered member path locates the fragment. Only live fragments
// resolve. (There is deliberately no whole-index key map: it would have to
// be copied on every publish, defeating the chunked metadata CoW.)
func (s *Snapshot) Lookup(id fragment.ID) (FragRef, bool) {
	if len(id) != len(s.spec.SelAttrs) {
		return 0, false
	}
	g := s.lookupGroup(id)
	if g == nil {
		return 0, false
	}
	if s.rangeIdx < 0 {
		for _, ref := range g.members {
			if s.metaAt(ref).ID.Compare(id) == 0 {
				return ref, true
			}
		}
		return 0, false
	}
	rv := id[s.rangeIdx]
	pos := sort.Search(len(g.members), func(i int) bool {
		return s.rangeValOf(g.members[i]).Compare(rv) >= 0
	})
	for ; pos < len(g.members) && s.rangeValOf(g.members[pos]).Compare(rv) == 0; pos++ {
		if s.metaAt(g.members[pos]).ID.Compare(id) == 0 {
			return g.members[pos], true
		}
	}
	return 0, false
}

// lookupGroup locates the equality group an identifier belongs to, nil when
// absent.
func (s *Snapshot) lookupGroup(id fragment.ID) *group {
	eq := make([]relation.Value, len(s.eqIdx))
	for i, j := range s.eqIdx {
		eq[i] = id[j]
	}
	key := relation.Key(eq)
	return s.gshards[groupShardIndex(key)].groups[key]
}

// Has reports whether a live fragment with the given identifier exists.
func (s *Snapshot) Has(id fragment.ID) bool {
	_, ok := s.Lookup(id)
	return ok
}

// Postings returns the live postings of a keyword, sorted by TF descending.
// The returned slice must not be modified. Lists without tombstones — the
// common case, since RemoveFragment compacts any list whose dead ratio
// crosses the threshold — are returned by reference without scanning.
func (s *Snapshot) Postings(keyword string) []Posting {
	pl := s.list(keyword)
	if pl == nil {
		return nil
	}
	if pl.dead == 0 {
		return pl.ps
	}
	out := make([]Posting, 0, pl.liveDF())
	for _, p := range pl.ps {
		if s.aliveAt(p.Frag) {
			out = append(out, p)
		}
	}
	return out
}

// DF returns the document frequency of a keyword: the number of live
// fragments containing it. O(1): each list counts its own tombstones.
func (s *Snapshot) DF(keyword string) int {
	pl := s.list(keyword)
	if pl == nil {
		return 0
	}
	return pl.liveDF()
}

// IDF returns the keyword's inverse document frequency, Dash's 1/DF
// approximation (§VI). The value is precomputed when the list mutates, so
// query scoring reads it in O(1).
func (s *Snapshot) IDF(keyword string) float64 {
	pl := s.list(keyword)
	if pl == nil {
		return 0
	}
	return pl.idf
}

// PostingsIDF returns Postings(keyword) and IDF(keyword) with a single
// list lookup — the form the search engine's seeding loop uses, so each
// queried keyword costs one shard hash instead of two.
func (s *Snapshot) PostingsIDF(keyword string) ([]Posting, float64) {
	pl := s.list(keyword)
	if pl == nil {
		return nil, 0
	}
	if pl.dead == 0 {
		return pl.ps, pl.idf
	}
	out := make([]Posting, 0, pl.liveDF())
	for _, p := range pl.ps {
		if s.aliveAt(p.Frag) {
			out = append(out, p)
		}
	}
	return out, pl.idf
}

// Keywords returns all keywords with at least one live posting, sorted; the
// benchmark harness uses it to pick hot/warm/cold terms. The sorted slice
// is cached per epoch — for a frozen snapshot the first call builds it and
// every later call reuses it — and must not be modified by the caller.
func (s *Snapshot) Keywords() []string {
	if c := s.kwCache.Load(); c != nil && c.epoch == s.epoch {
		return c.kws
	}
	var out []string
	for _, sh := range s.shards {
		for kw, pl := range sh.lists {
			if pl.liveDF() > 0 {
				out = append(out, kw)
			}
		}
	}
	sort.Strings(out)
	s.kwCache.Store(&kwCache{epoch: s.epoch, kws: out})
	return out
}

// EqValues returns a fragment's equality-attribute values keyed by column.
func (s *Snapshot) EqValues(ref FragRef) (map[string]relation.Value, error) {
	m, err := s.Meta(ref)
	if err != nil {
		return nil, err
	}
	out := make(map[string]relation.Value, len(s.eqIdx))
	for i, j := range s.eqIdx {
		out[s.spec.EqAttrs[i]] = m.ID[j]
	}
	return out, nil
}

// RangeValue returns a fragment's range-attribute value (NULL when the
// query has no range attribute).
func (s *Snapshot) RangeValue(ref FragRef) (relation.Value, error) {
	m, err := s.Meta(ref)
	if err != nil {
		return relation.Value{}, err
	}
	if s.rangeIdx < 0 {
		return relation.Null(), nil
	}
	return m.ID[s.rangeIdx], nil
}

// rangeValOf is RangeValue without bounds checks, for internal use.
func (s *Snapshot) rangeValOf(ref FragRef) relation.Value {
	if s.rangeIdx < 0 {
		return relation.Null()
	}
	return s.metaAt(ref).ID[s.rangeIdx]
}

// Neighbors returns the fragment-graph neighbours of a live fragment: the
// adjacent members of its equality group in range order. A fragment has at
// most two neighbours (the graph is a union of paths, as in Fig. 9).
func (s *Snapshot) Neighbors(ref FragRef) ([]FragRef, error) {
	if int(ref) < 0 || int(ref) >= s.numRefs {
		return nil, fmt.Errorf("%w: ref %d", ErrNoFragment, ref)
	}
	c := s.chunks[ref>>chunkShift]
	i := int(ref) & chunkMask
	if !c.frags[i].Alive {
		return nil, fmt.Errorf("%w: ref %d is removed", ErrNoFragment, ref)
	}
	g, pos := c.groupOf[i], c.memberAt[i]
	var out []FragRef
	if pos > 0 {
		out = append(out, g.members[pos-1])
	}
	if pos+1 < len(g.members) {
		out = append(out, g.members[pos+1])
	}
	return out, nil
}

// GroupMembers returns the full equality group of a fragment in range
// order. The slice must not be modified.
func (s *Snapshot) GroupMembers(ref FragRef) ([]FragRef, int, error) {
	members, _, _, pos, err := s.GroupPath(ref)
	return members, pos, err
}

// GroupPath returns a live fragment's equality group in range order along
// with the parallel node weights (each member's total keyword count), the
// group's canonical equality key, and the fragment's position on the path.
// Neither slice may be modified. This is the search engine's seeding
// accessor: one chunk lookup hands the expansion loop everything it walks,
// so growing a db-page along the path reads neighbour weights without
// touching fragment metadata again — and the key gives every assembled
// page a content-based identity independent of ref numbering.
func (s *Snapshot) GroupPath(ref FragRef) (members []FragRef, weights []int64, key string, pos int, err error) {
	if int(ref) < 0 || int(ref) >= s.numRefs {
		return nil, nil, "", 0, fmt.Errorf("%w: ref %d", ErrNoFragment, ref)
	}
	c := s.chunks[ref>>chunkShift]
	i := int(ref) & chunkMask
	if !c.frags[i].Alive {
		return nil, nil, "", 0, fmt.Errorf("%w: ref %d is removed", ErrNoFragment, ref)
	}
	g := c.groupOf[i]
	return g.members, g.weights, g.key, c.memberAt[i], nil
}

// Edges enumerates all fragment-graph edges as (smaller, larger) ref pairs,
// sorted. Mostly useful for tests and stats.
func (s *Snapshot) Edges() [][2]FragRef {
	var out [][2]FragRef
	s.eachGroup(func(g *group) {
		for i := 1; i < len(g.members); i++ {
			a, b := g.members[i-1], g.members[i]
			if a > b {
				a, b = b, a
			}
			out = append(out, [2]FragRef{a, b})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the number of fragment-graph edges.
func (s *Snapshot) NumEdges() int {
	n := 0
	s.eachGroup(func(g *group) {
		if len(g.members) > 1 {
			n += len(g.members) - 1
		}
	})
	return n
}
