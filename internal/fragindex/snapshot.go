package fragindex

import (
	"fmt"
	"maps"
	"sort"
	"sync/atomic"

	"repro/internal/fragment"
	"repro/internal/relation"
)

// Posting lists are grouped into a fixed number of hash shards. The shard is
// the copy-on-write unit between snapshots: publishing a new snapshot clones
// only the shard maps (and within them, only the posting lists) touched by
// the delta, so untouched shards — the overwhelming majority of index
// memory — are shared by pointer across every live snapshot.
const numShards = 64 // power of two; shardIndex masks with numShards-1

// shard is one hash bucket of the inverted fragment index.
type shard struct {
	lists map[string]*postingList
}

// shardIndex hashes a keyword to its shard (FNV-1a, masked).
func shardIndex(kw string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(kw); i++ {
		h = (h ^ uint32(kw[i])) * 16777619
	}
	return h & (numShards - 1)
}

func newShards() []*shard {
	out := make([]*shard, numShards)
	for i := range out {
		out[i] = &shard{lists: make(map[string]*postingList)}
	}
	return out
}

// Snapshot is one immutable version of the fragment index: the inverted
// fragment index (sharded posting lists), the fragment graph, and the O(1)
// statistics counters, all frozen at a mutation epoch.
//
// A Snapshot obtained from LiveIndex.Snapshot (or Index.Freeze) never
// changes: any number of goroutines may run the entire query read path
// against it lock-free, concurrently with a writer publishing later
// snapshots. The only internally mutable field is the lazily built sorted
// keyword cache, which is swapped through an atomic pointer and is
// idempotent to race on.
//
// A Snapshot obtained from Index.Snapshot on an index that has never been
// frozen is a live view, not an isolated version: it shares the index's
// storage and observes its mutations, under the index's exclusive-mutation
// contract.
type Snapshot struct {
	spec     Spec
	eqIdx    []int
	rangeIdx int

	frags  []Meta
	byKey  map[string]FragRef
	shards []*shard
	kwOf   [][]string // builder-side forward map: per FragRef, its keywords

	groups   map[string]*group
	groupOf  []*group // per FragRef: its group, so lookups skip key building
	memberAt []int    // per FragRef: position within its group (-1 when dead)

	// Live counters: maintained on insert/remove so the Table IV stats
	// (NumFragments, AvgTermsPerFragment, NumKeywords) are O(1).
	liveFrags int
	liveTerms int64
	liveKws   int

	// epoch counts mutations; kwCache holds the sorted Keywords() slice
	// built at a given epoch (atomic so concurrent readers may refresh it).
	epoch   uint64
	kwCache atomic.Pointer[kwCache]
}

// clone returns a builder-writable copy sharing all posting-list shards and
// groups with the receiver. The fragment metadata arrays and top-level maps
// are copied (a flat memcpy / pointer copy, amortized over a delta batch);
// the posting payload — the dominant share of index memory — is cloned
// lazily, shard by shard, only where the delta touches it.
func (s *Snapshot) clone() *Snapshot {
	return &Snapshot{
		spec:      s.spec,
		eqIdx:     s.eqIdx,
		rangeIdx:  s.rangeIdx,
		frags:     append([]Meta(nil), s.frags...),
		byKey:     maps.Clone(s.byKey),
		shards:    append([]*shard(nil), s.shards...),
		kwOf:      append([][]string(nil), s.kwOf...),
		groups:    maps.Clone(s.groups),
		groupOf:   append([]*group(nil), s.groupOf...),
		memberAt:  append([]int(nil), s.memberAt...),
		liveFrags: s.liveFrags,
		liveTerms: s.liveTerms,
		liveKws:   s.liveKws,
		epoch:     s.epoch,
	}
}

// Snapshot returns the receiver, making *Snapshot a search.Source: an
// engine constructed over a snapshot is permanently pinned to it.
func (s *Snapshot) Snapshot() *Snapshot { return s }

// list returns the keyword's posting list, nil when absent.
func (s *Snapshot) list(kw string) *postingList {
	return s.shards[shardIndex(kw)].lists[kw]
}

// eachList visits every posting list (any order).
func (s *Snapshot) eachList(f func(kw string, pl *postingList)) {
	for _, sh := range s.shards {
		for kw, pl := range sh.lists {
			f(kw, pl)
		}
	}
}

// Spec returns the snapshot's selection-attribute structure.
func (s *Snapshot) Spec() Spec { return s.spec }

// Epoch returns the mutation epoch the snapshot was frozen at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumFragments returns the number of live fragments (O(1)).
func (s *Snapshot) NumFragments() int { return s.liveFrags }

// NumKeywords returns the number of distinct indexed keywords with at
// least one live posting (O(1)).
func (s *Snapshot) NumKeywords() int { return s.liveKws }

// AvgTermsPerFragment reports the average keyword count over live fragments
// (Table IV's third column). O(1).
func (s *Snapshot) AvgTermsPerFragment() float64 {
	if s.liveFrags == 0 {
		return 0
	}
	return float64(s.liveTerms) / float64(s.liveFrags)
}

// Meta returns a fragment's summary.
func (s *Snapshot) Meta(ref FragRef) (Meta, error) {
	if int(ref) < 0 || int(ref) >= len(s.frags) {
		return Meta{}, fmt.Errorf("%w: ref %d", ErrNoFragment, ref)
	}
	return s.frags[ref], nil
}

// NumRefs returns the size of the ref space (live fragments plus
// tombstones): every FragRef handed out by this snapshot is in [0, NumRefs).
// Callers that validate refs once against it may then use the unchecked
// accessors TermsOf and AliveRef on the hot path.
func (s *Snapshot) NumRefs() int { return len(s.frags) }

// TermsOf returns a fragment's total keyword count without bounds
// checking. The caller must have validated ref (see NumRefs).
func (s *Snapshot) TermsOf(ref FragRef) int64 { return s.frags[ref].Terms }

// AliveRef reports whether ref is within range and not tombstoned.
func (s *Snapshot) AliveRef(ref FragRef) bool {
	return int(ref) >= 0 && int(ref) < len(s.frags) && s.frags[ref].Alive
}

// Lookup resolves a fragment identifier to its ref.
func (s *Snapshot) Lookup(id fragment.ID) (FragRef, bool) {
	ref, ok := s.byKey[id.Key()]
	return ref, ok
}

// Has reports whether a live fragment with the given identifier exists.
func (s *Snapshot) Has(id fragment.ID) bool {
	_, ok := s.byKey[id.Key()]
	return ok
}

// Postings returns the live postings of a keyword, sorted by TF descending.
// The returned slice must not be modified. Lists without tombstones — the
// common case, since RemoveFragment compacts any list whose dead ratio
// crosses the threshold — are returned by reference without scanning.
func (s *Snapshot) Postings(keyword string) []Posting {
	pl := s.list(keyword)
	if pl == nil {
		return nil
	}
	if pl.dead == 0 {
		return pl.ps
	}
	out := make([]Posting, 0, pl.liveDF())
	for _, p := range pl.ps {
		if s.frags[p.Frag].Alive {
			out = append(out, p)
		}
	}
	return out
}

// DF returns the document frequency of a keyword: the number of live
// fragments containing it. O(1): each list counts its own tombstones.
func (s *Snapshot) DF(keyword string) int {
	pl := s.list(keyword)
	if pl == nil {
		return 0
	}
	return pl.liveDF()
}

// IDF returns the keyword's inverse document frequency, Dash's 1/DF
// approximation (§VI). The value is precomputed when the list mutates, so
// query scoring reads it in O(1).
func (s *Snapshot) IDF(keyword string) float64 {
	pl := s.list(keyword)
	if pl == nil {
		return 0
	}
	return pl.idf
}

// PostingsIDF returns Postings(keyword) and IDF(keyword) with a single
// list lookup — the form the search engine's seeding loop uses, so each
// queried keyword costs one shard hash instead of two.
func (s *Snapshot) PostingsIDF(keyword string) ([]Posting, float64) {
	pl := s.list(keyword)
	if pl == nil {
		return nil, 0
	}
	if pl.dead == 0 {
		return pl.ps, pl.idf
	}
	out := make([]Posting, 0, pl.liveDF())
	for _, p := range pl.ps {
		if s.frags[p.Frag].Alive {
			out = append(out, p)
		}
	}
	return out, pl.idf
}

// Keywords returns all keywords with at least one live posting, sorted; the
// benchmark harness uses it to pick hot/warm/cold terms. The sorted slice
// is cached per epoch — for a frozen snapshot the first call builds it and
// every later call reuses it — and must not be modified by the caller.
func (s *Snapshot) Keywords() []string {
	if c := s.kwCache.Load(); c != nil && c.epoch == s.epoch {
		return c.kws
	}
	var out []string
	for _, sh := range s.shards {
		for kw, pl := range sh.lists {
			if pl.liveDF() > 0 {
				out = append(out, kw)
			}
		}
	}
	sort.Strings(out)
	s.kwCache.Store(&kwCache{epoch: s.epoch, kws: out})
	return out
}

// EqValues returns a fragment's equality-attribute values keyed by column.
func (s *Snapshot) EqValues(ref FragRef) (map[string]relation.Value, error) {
	m, err := s.Meta(ref)
	if err != nil {
		return nil, err
	}
	out := make(map[string]relation.Value, len(s.eqIdx))
	for i, j := range s.eqIdx {
		out[s.spec.EqAttrs[i]] = m.ID[j]
	}
	return out, nil
}

// RangeValue returns a fragment's range-attribute value (NULL when the
// query has no range attribute).
func (s *Snapshot) RangeValue(ref FragRef) (relation.Value, error) {
	m, err := s.Meta(ref)
	if err != nil {
		return relation.Value{}, err
	}
	if s.rangeIdx < 0 {
		return relation.Null(), nil
	}
	return m.ID[s.rangeIdx], nil
}

// rangeValOf is RangeValue without bounds checks, for internal use.
func (s *Snapshot) rangeValOf(ref FragRef) relation.Value {
	if s.rangeIdx < 0 {
		return relation.Null()
	}
	return s.frags[ref].ID[s.rangeIdx]
}

// Neighbors returns the fragment-graph neighbours of a live fragment: the
// adjacent members of its equality group in range order. A fragment has at
// most two neighbours (the graph is a union of paths, as in Fig. 9).
func (s *Snapshot) Neighbors(ref FragRef) ([]FragRef, error) {
	m, err := s.Meta(ref)
	if err != nil {
		return nil, err
	}
	if !m.Alive {
		return nil, fmt.Errorf("%w: ref %d is removed", ErrNoFragment, ref)
	}
	g := s.groupOf[ref]
	pos := s.memberAt[ref]
	var out []FragRef
	if pos > 0 {
		out = append(out, g.members[pos-1])
	}
	if pos+1 < len(g.members) {
		out = append(out, g.members[pos+1])
	}
	return out, nil
}

// GroupMembers returns the full equality group of a fragment in range
// order. The slice must not be modified.
func (s *Snapshot) GroupMembers(ref FragRef) ([]FragRef, int, error) {
	m, err := s.Meta(ref)
	if err != nil {
		return nil, 0, err
	}
	if !m.Alive {
		return nil, 0, fmt.Errorf("%w: ref %d is removed", ErrNoFragment, ref)
	}
	return s.groupOf[ref].members, s.memberAt[ref], nil
}

// Edges enumerates all fragment-graph edges as (smaller, larger) ref pairs,
// sorted. Mostly useful for tests and stats.
func (s *Snapshot) Edges() [][2]FragRef {
	var out [][2]FragRef
	for _, g := range s.groups {
		for i := 1; i < len(g.members); i++ {
			a, b := g.members[i-1], g.members[i]
			if a > b {
				a, b = b, a
			}
			out = append(out, [2]FragRef{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the number of fragment-graph edges.
func (s *Snapshot) NumEdges() int {
	n := 0
	for _, g := range s.groups {
		if len(g.members) > 1 {
			n += len(g.members) - 1
		}
	}
	return n
}
