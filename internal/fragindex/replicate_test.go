package fragindex

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// replicaPair returns a live leader over the fooddb index and a live
// replica restored from the identical starting dump.
func replicaPair(t *testing.T) (*LiveIndex, *LiveIndex) {
	t.Helper()
	idx := fooddbIndex(t)
	clone, err := Restore(idx.Dump())
	if err != nil {
		t.Fatal(err)
	}
	return NewLive(idx), NewLive(clone)
}

func repID(g string, v int64) fragment.ID {
	return fragment.ID{relation.String(g), relation.Int(v)}
}

// TestApplyReplicatedMirrorsApply: replaying the leader's (delta, epoch)
// journal through ApplyReplicated converges the replica to the leader's
// exact logical state and epoch after every record.
func TestApplyReplicatedMirrorsApply(t *testing.T) {
	leader, replica := replicaPair(t)
	deltas := []crawl.Delta{
		{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment, ID: repID("Nordic", 3),
			TermCounts: map[string]int64{"herring": 2, "rye": 1}, TotalTerms: 3}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpUpdateFragment, ID: repID("Nordic", 3),
			TermCounts: map[string]int64{"herring": 1, "dill": 4}, TotalTerms: 5}}},
		{Changes: []crawl.FragmentChange{{Op: crawl.OpRemoveFragment, ID: repID("Nordic", 3)}}},
		{Changes: []crawl.FragmentChange{
			{Op: crawl.OpInsertFragment, ID: repID("Baltic", 7),
				TermCounts: map[string]int64{"sprat": 1}, TotalTerms: 1},
			{Op: crawl.OpInsertFragment, ID: repID("Baltic", 8),
				TermCounts: map[string]int64{"sprat": 2, "smoke": 1}, TotalTerms: 3},
		}},
	}
	for i, d := range deltas {
		lst, err := leader.Apply(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		rst, err := replica.ApplyReplicated(context.Background(), d, lst.Epoch)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rst.Epoch != lst.Epoch {
			t.Fatalf("record %d: replica epoch %d, leader %d", i, rst.Epoch, lst.Epoch)
		}
		ls, rs := leader.Snapshot(), replica.Snapshot()
		if ls.Epoch() != rs.Epoch() {
			t.Fatalf("record %d: snapshot epochs diverged %d vs %d", i, ls.Epoch(), rs.Epoch())
		}
		if !reflect.DeepEqual(logicalState(ls), logicalState(rs)) {
			t.Fatalf("record %d: logical state diverged", i)
		}
	}
}

// TestApplyReplicatedRejectsStale: a record at or below the published
// epoch — duplicate delivery after a tail reconnect — is refused with
// ErrStaleEpoch and changes nothing. The regression this pins: without
// the guard, a re-delivered insert after reconnect would double-apply.
func TestApplyReplicatedRejectsStale(t *testing.T) {
	_, replica := replicaPair(t)
	d := crawl.Delta{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment,
		ID: repID("Dup", 1), TermCounts: map[string]int64{"once": 1}, TotalTerms: 1}}}
	base := replica.Snapshot().Epoch()
	if _, err := replica.ApplyReplicated(context.Background(), d, base+1); err != nil {
		t.Fatal(err)
	}
	s1 := replica.Snapshot()
	state := logicalState(s1)

	// Exact duplicate: same record, same epoch.
	if _, err := replica.ApplyReplicated(context.Background(), d, base+1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("duplicate record error = %v, want ErrStaleEpoch", err)
	}
	// Regression: an older epoch is equally refused.
	if _, err := replica.ApplyReplicated(context.Background(), d, base); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale record error = %v, want ErrStaleEpoch", err)
	}
	if replica.Snapshot() != s1 {
		t.Error("rejected record published a snapshot")
	}
	if !reflect.DeepEqual(logicalState(replica.Snapshot()), state) {
		t.Error("rejected record mutated state")
	}
}

// TestApplyReplicatedEmptyDeltaStampsEpoch: a record-free epoch advance
// (the leader compacted, which bumps its epoch without journaling a
// record) publishes a new snapshot at the stamped epoch with identical
// content — and must not mutate the previously published snapshot in
// place (readers may still hold it).
func TestApplyReplicatedEmptyDeltaStampsEpoch(t *testing.T) {
	_, replica := replicaPair(t)
	s0 := replica.Snapshot()
	e0 := s0.Epoch()
	state := logicalState(s0)

	if _, err := replica.ApplyReplicated(context.Background(), crawl.Delta{}, e0+5); err != nil {
		t.Fatal(err)
	}
	s1 := replica.Snapshot()
	if s1.Epoch() != e0+5 {
		t.Fatalf("stamped epoch = %d, want %d", s1.Epoch(), e0+5)
	}
	if s0.Epoch() != e0 {
		t.Fatalf("old published snapshot mutated in place: epoch %d", s0.Epoch())
	}
	if !reflect.DeepEqual(logicalState(s1), state) {
		t.Error("epoch stamp changed logical state")
	}
}

// TestApplyReplicatedFailureRollsBack: a record the fold cannot apply
// (removing a fragment that does not exist) errors without publishing —
// the snapshot and epoch stay put, so the caller can re-bootstrap.
func TestApplyReplicatedFailureRollsBack(t *testing.T) {
	_, replica := replicaPair(t)
	s0 := replica.Snapshot()
	bad := crawl.Delta{Changes: []crawl.FragmentChange{{Op: crawl.OpRemoveFragment, ID: repID("Ghost", 99)}}}
	if _, err := replica.ApplyReplicated(context.Background(), bad, s0.Epoch()+1); err == nil {
		t.Fatal("impossible record applied")
	}
	if replica.Snapshot() != s0 {
		t.Error("failed record published a snapshot")
	}
	// The replica still accepts the next good record at the same epoch.
	good := crawl.Delta{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment,
		ID: repID("Next", 1), TermCounts: map[string]int64{"ok": 1}, TotalTerms: 1}}}
	if _, err := replica.ApplyReplicated(context.Background(), good, s0.Epoch()+1); err != nil {
		t.Fatal(err)
	}
}

// TestResetTo: re-bootstrap swaps in a restored index wholesale when it
// is at or past the published epoch, and refuses to travel backwards.
func TestResetTo(t *testing.T) {
	leader, replica := replicaPair(t)
	// Advance the leader well past the replica.
	for i := 0; i < 4; i++ {
		d := crawl.Delta{Changes: []crawl.FragmentChange{{Op: crawl.OpInsertFragment,
			ID: repID("Adv", int64(i)), TermCounts: map[string]int64{"adv": 1}, TotalTerms: 1}}}
		if _, err := leader.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := Restore(leader.Dump())
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ResetTo(fresh); err != nil {
		t.Fatal(err)
	}
	ls, rs := leader.Snapshot(), replica.Snapshot()
	if ls.Epoch() != rs.Epoch() || !reflect.DeepEqual(logicalState(ls), logicalState(rs)) {
		t.Fatal("ResetTo did not converge to the leader state")
	}

	// Going backwards is refused: restore the original fooddb state (a
	// lower epoch) and try to reset to it.
	old, err := Restore(fooddbIndex(t).Dump())
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ResetTo(old); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("backwards reset error = %v, want ErrStaleEpoch", err)
	}
	if replica.Snapshot().Epoch() != ls.Epoch() {
		t.Error("failed reset moved the published snapshot")
	}
}
