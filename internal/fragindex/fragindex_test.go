package fragindex

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fooddb"
	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
)

func fooddbIndex(t *testing.T) *Index {
	t.Helper()
	db := fooddb.New()
	b, err := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	out, err := crawl.Reference(db, b)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	spec, err := SpecFromBound(b)
	if err != nil {
		t.Fatalf("SpecFromBound: %v", err)
	}
	idx, err := Build(out, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx
}

func refByName(t *testing.T, idx *Index, name string) FragRef {
	t.Helper()
	for i := 0; i < idx.NumRefs(); i++ {
		m, err := idx.Meta(FragRef(i))
		if err != nil {
			t.Fatal(err)
		}
		if m.Alive && m.ID.String() == name {
			return FragRef(i)
		}
	}
	t.Fatalf("fragment %s not found", name)
	return 0
}

func TestSpecFromBound(t *testing.T) {
	db := fooddb.New()
	b, _ := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	spec, err := SpecFromBound(b)
	if err != nil {
		t.Fatalf("SpecFromBound: %v", err)
	}
	want := Spec{SelAttrs: []string{"cuisine", "budget"}, EqAttrs: []string{"cuisine"}, RangeAttr: "budget"}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("spec = %+v, want %+v", spec, want)
	}

	// Two range attributes are rejected.
	b2, err := psj.Bind(psj.MustParse(
		"SELECT name FROM restaurant WHERE budget BETWEEN $a AND $b AND rate BETWEEN $c AND $d"), db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpecFromBound(b2); !errors.Is(err, ErrMultiRange) {
		t.Errorf("multi-range err = %v", err)
	}
}

// TestGraphMatchesFig9 asserts the exact fragment graph of Fig. 9: the
// American fragments form the path 9–10–12–18, (Thai,10) is isolated, and
// node weights are 8, 8, 17, 8, 10.
func TestGraphMatchesFig9(t *testing.T) {
	idx := fooddbIndex(t)
	if got := idx.NumFragments(); got != 5 {
		t.Fatalf("fragments = %d, want 5", got)
	}
	if got := idx.NumEdges(); got != 3 {
		t.Errorf("edges = %d, want 3", got)
	}
	wantWeights := map[string]int64{
		"(American,9)": 8, "(American,10)": 8, "(American,12)": 17,
		"(American,18)": 8, "(Thai,10)": 10,
	}
	wantNeighbors := map[string][]string{
		"(American,9)":  {"(American,10)"},
		"(American,10)": {"(American,9)", "(American,12)"},
		"(American,12)": {"(American,10)", "(American,18)"},
		"(American,18)": {"(American,12)"},
		"(Thai,10)":     nil,
	}
	for name, weight := range wantWeights {
		ref := refByName(t, idx, name)
		m, _ := idx.Meta(ref)
		if m.Terms != weight {
			t.Errorf("%s weight = %d, want %d", name, m.Terms, weight)
		}
		ns, err := idx.Neighbors(ref)
		if err != nil {
			t.Fatalf("Neighbors(%s): %v", name, err)
		}
		var got []string
		for _, n := range ns {
			nm, _ := idx.Meta(n)
			got = append(got, nm.ID.String())
		}
		if !reflect.DeepEqual(got, wantNeighbors[name]) {
			t.Errorf("%s neighbors = %v, want %v", name, got, wantNeighbors[name])
		}
	}
}

func TestPostingsAndDF(t *testing.T) {
	idx := fooddbIndex(t)
	ps := idx.Postings("burger")
	if len(ps) != 3 || idx.DF("burger") != 3 {
		t.Fatalf("burger postings = %v, DF = %d", ps, idx.DF("burger"))
	}
	if ps[0].TF != 2 {
		t.Errorf("top TF = %d, want 2", ps[0].TF)
	}
	m, _ := idx.Meta(ps[0].Frag)
	if m.ID.String() != "(American,10)" {
		t.Errorf("top fragment = %s", m.ID)
	}
	if idx.DF("nosuchword") != 0 {
		t.Error("DF of unknown word should be 0")
	}
	if kws := idx.Keywords(); len(kws) == 0 {
		t.Error("Keywords() empty")
	}
}

func TestEqAndRangeAccess(t *testing.T) {
	idx := fooddbIndex(t)
	ref := refByName(t, idx, "(American,12)")
	eq, err := idx.EqValues(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !eq["cuisine"].Equal(relation.String("American")) {
		t.Errorf("eq vals = %v", eq)
	}
	rv, err := idx.RangeValue(ref)
	if err != nil || !rv.Equal(relation.Int(12)) {
		t.Errorf("range val = %v, %v", rv, err)
	}
	members, pos, err := idx.GroupMembers(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 || pos != 2 {
		t.Errorf("group members = %d, pos = %d; want 4, 2", len(members), pos)
	}
	if idx.AvgTermsPerFragment() != (8+8+17+8+10)/5.0 {
		t.Errorf("avg terms = %v", idx.AvgTermsPerFragment())
	}
}

func TestMetaErrors(t *testing.T) {
	idx := fooddbIndex(t)
	if _, err := idx.Meta(FragRef(99)); !errors.Is(err, ErrNoFragment) {
		t.Errorf("Meta(99) err = %v", err)
	}
	if _, err := idx.Neighbors(FragRef(-1)); !errors.Is(err, ErrNoFragment) {
		t.Errorf("Neighbors(-1) err = %v", err)
	}
}

// buildIncremental reconstructs an index by inserting the crawl output's
// fragments one at a time in the given order.
func buildIncremental(t *testing.T, out *crawl.Output, spec Spec, order []string) *Index {
	t.Helper()
	idx, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Gather per-fragment term counts from the posting lists.
	counts := make(map[string]map[string]int64)
	for kw, ps := range out.Inverted {
		for _, p := range ps {
			m, ok := counts[p.FragKey]
			if !ok {
				m = make(map[string]int64)
				counts[p.FragKey] = m
			}
			m[kw] = p.TF
		}
	}
	for _, key := range order {
		id, err := fragment.ParseID(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.InsertFragment(id, counts[key], out.FragmentTerms[key]); err != nil {
			t.Fatalf("InsertFragment(%s): %v", id, err)
		}
	}
	return idx
}

// graphShape renders the edge set with human-readable names for comparison.
func graphShape(t *testing.T, idx *Index) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for _, e := range idx.Edges() {
		a, _ := idx.Meta(e[0])
		b, _ := idx.Meta(e[1])
		s1, s2 := a.ID.String(), b.ID.String()
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		out[s1+"--"+s2] = true
	}
	return out
}

// TestPropIncrementalEqualsBatch: inserting fragments in any order yields
// the same graph and the same posting lists as the batch construction
// (§VI-A's incremental algorithm is order-independent).
func TestPropIncrementalEqualsBatch(t *testing.T) {
	db := fooddb.New()
	b, _ := psj.Bind(psj.MustParse(fooddb.SearchSQL), db)
	out, err := crawl.Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := SpecFromBound(b)
	batch, err := Build(out, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantShape := graphShape(t, batch)

	keys := make([]string, 0, len(out.FragmentTerms))
	for k := range out.FragmentTerms {
		keys = append(keys, k)
	}
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		order := append([]string(nil), keys...)
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		inc := buildIncremental(t, out, spec, order)
		if got := graphShape(t, inc); !reflect.DeepEqual(got, wantShape) {
			t.Fatalf("trial %d: graph = %v, want %v (order %v)", trial, got, wantShape, order)
		}
		if inc.NumFragments() != batch.NumFragments() {
			t.Fatalf("trial %d: fragments differ", trial)
		}
		// Posting lists agree keyword by keyword (compare by ID+TF).
		for _, kw := range batch.Keywords() {
			bp, ip := batch.Postings(kw), inc.Postings(kw)
			if len(bp) != len(ip) {
				t.Fatalf("trial %d: %q list lengths differ", trial, kw)
			}
			for i := range bp {
				bm, _ := batch.Meta(bp[i].Frag)
				im, _ := inc.Meta(ip[i].Frag)
				if bp[i].TF != ip[i].TF || bm.ID.Compare(im.ID) != 0 {
					t.Fatalf("trial %d: %q posting %d: (%s,%d) vs (%s,%d)",
						trial, kw, i, bm.ID, bp[i].TF, im.ID, ip[i].TF)
				}
			}
		}
	}
}

func TestInsertErrors(t *testing.T) {
	idx := fooddbIndex(t)
	ref := refByName(t, idx, "(Thai,10)")
	m, _ := idx.Meta(ref)
	if _, err := idx.InsertFragment(m.ID, nil, 1); !errors.Is(err, ErrDupFragment) {
		t.Errorf("dup insert err = %v", err)
	}
	if _, err := idx.InsertFragment(fragment.ID{relation.Int(1)}, nil, 1); !errors.Is(err, ErrBadIDArity) {
		t.Errorf("arity err = %v", err)
	}
}

func TestRemoveFragmentHealsGraph(t *testing.T) {
	idx := fooddbIndex(t)
	mid := refByName(t, idx, "(American,12)")
	m, _ := idx.Meta(mid)
	if err := idx.RemoveFragment(m.ID); err != nil {
		t.Fatalf("RemoveFragment: %v", err)
	}
	// 9–10–12–18 collapses to 9–10–18.
	if got := idx.NumEdges(); got != 2 {
		t.Errorf("edges after removal = %d, want 2", got)
	}
	ten := refByName(t, idx, "(American,10)")
	ns, err := idx.Neighbors(ten)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, n := range ns {
		nm, _ := idx.Meta(n)
		names = append(names, nm.ID.String())
	}
	if !reflect.DeepEqual(names, []string{"(American,9)", "(American,18)"}) {
		t.Errorf("neighbors of (American,10) = %v", names)
	}
	// Postings hide the tombstone.
	if idx.DF("fries") != 0 {
		t.Errorf("fries DF = %d, want 0", idx.DF("fries"))
	}
	if idx.DF("burger") != 2 {
		t.Errorf("burger DF = %d, want 2", idx.DF("burger"))
	}
	if idx.NumFragments() != 4 {
		t.Errorf("fragments = %d, want 4", idx.NumFragments())
	}
	if err := idx.RemoveFragment(m.ID); !errors.Is(err, ErrNoFragment) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestUpdateFragment(t *testing.T) {
	idx := fooddbIndex(t)
	ref := refByName(t, idx, "(American,10)")
	m, _ := idx.Meta(ref)
	// The restaurant gained a comment mentioning "froyo".
	err := idx.UpdateFragment(m.ID, map[string]int64{
		"burger": 2, "queen": 1, "10": 1, "4.3": 1, "froyo": 3,
	}, 8+3)
	if err != nil {
		t.Fatalf("UpdateFragment: %v", err)
	}
	if idx.DF("froyo") != 1 {
		t.Errorf("froyo DF = %d, want 1", idx.DF("froyo"))
	}
	// burger still has three fragments, with the refreshed one on top.
	ps := idx.Postings("burger")
	if len(ps) != 3 || ps[0].TF != 2 {
		t.Fatalf("burger postings after update = %v", ps)
	}
	nref := refByName(t, idx, "(American,10)")
	nm, _ := idx.Meta(nref)
	if nm.Terms != 11 {
		t.Errorf("updated terms = %d, want 11", nm.Terms)
	}
	// Graph intact: still 3 edges.
	if idx.NumEdges() != 3 {
		t.Errorf("edges after update = %d, want 3", idx.NumEdges())
	}
	if err := idx.UpdateFragment(fragment.ID{relation.String("X"), relation.Int(1)}, nil, 0); !errors.Is(err, ErrNoFragment) {
		t.Errorf("update missing err = %v", err)
	}
}

func TestCompact(t *testing.T) {
	idx := fooddbIndex(t)
	mid := refByName(t, idx, "(American,12)")
	m, _ := idx.Meta(mid)
	if err := idx.RemoveFragment(m.ID); err != nil {
		t.Fatal(err)
	}
	compacted, err := idx.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if compacted.NumFragments() != 4 || compacted.NumRefs() != 4 {
		t.Errorf("compacted fragments = %d/%d, want 4/4",
			compacted.NumFragments(), compacted.NumRefs())
	}
	if compacted.NumEdges() != 2 {
		t.Errorf("compacted edges = %d, want 2", compacted.NumEdges())
	}
	if compacted.DF("burger") != 2 {
		t.Errorf("compacted burger DF = %d", compacted.DF("burger"))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	idx := fooddbIndex(t)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumFragments() != idx.NumFragments() {
		t.Errorf("fragments = %d, want %d", loaded.NumFragments(), idx.NumFragments())
	}
	if loaded.NumEdges() != idx.NumEdges() {
		t.Errorf("edges = %d, want %d", loaded.NumEdges(), idx.NumEdges())
	}
	if !reflect.DeepEqual(graphShape(t, loaded), graphShape(t, idx)) {
		t.Error("graph shape changed through serialization")
	}
	if !reflect.DeepEqual(loaded.Spec(), idx.Spec()) {
		t.Errorf("spec = %+v, want %+v", loaded.Spec(), idx.Spec())
	}
	for _, kw := range []string{"burger", "coffee", "fries"} {
		if loaded.DF(kw) != idx.DF(kw) {
			t.Errorf("%s DF = %d, want %d", kw, loaded.DF(kw), idx.DF(kw))
		}
	}
}

func TestSaveCompactsTombstones(t *testing.T) {
	idx := fooddbIndex(t)
	ref := refByName(t, idx, "(Thai,10)")
	m, _ := idx.Meta(ref)
	if err := idx.RemoveFragment(m.ID); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumFragments() != 4 || loaded.NumRefs() != 4 {
		t.Errorf("loaded fragments = %d/%d, want 4/4", loaded.NumFragments(), loaded.NumRefs())
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob"))); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("corrupt err = %v", err)
	}
}

// TestPropRandomInsertRemoveInvariants drives a random operation sequence
// and checks the structural invariants: the graph is always the union of
// consecutive-member paths, memberAt is consistent, and DF matches live
// posting counts.
func TestPropRandomInsertRemoveInvariants(t *testing.T) {
	spec := Spec{SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v"}
	for trial := 0; trial < 15; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		idx, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		live := make(map[string]fragment.ID)
		for step := 0; step < 120; step++ {
			g := r.Intn(3)
			v := r.Intn(10)
			id := fragment.ID{relation.String(fmt.Sprintf("g%d", g)), relation.Int(int64(v))}
			key := id.Key()
			if _, ok := live[key]; ok && r.Intn(2) == 0 {
				if err := idx.RemoveFragment(id); err != nil {
					t.Fatalf("trial %d step %d: remove: %v", trial, step, err)
				}
				delete(live, key)
			} else if _, ok := live[key]; !ok {
				counts := map[string]int64{fmt.Sprintf("w%d", r.Intn(5)): int64(1 + r.Intn(3))}
				if _, err := idx.InsertFragment(id, counts, 3); err != nil {
					t.Fatalf("trial %d step %d: insert: %v", trial, step, err)
				}
				live[key] = id
			}
			if idx.NumFragments() != len(live) {
				t.Fatalf("trial %d step %d: live count %d, want %d",
					trial, step, idx.NumFragments(), len(live))
			}
			// Per-group edges = members-1; all members alive and sorted.
			edges := 0
			idx.s.eachGroup(func(grp *group) {
				if len(grp.members) > 0 {
					edges += len(grp.members) - 1
				}
				for i, ref := range grp.members {
					if !idx.s.aliveAt(ref) {
						t.Fatalf("trial %d: dead member in group", trial)
					}
					if idx.s.posAt(ref) != i {
						t.Fatalf("trial %d: memberAt inconsistent", trial)
					}
					if i > 0 {
						prev := idx.s.rangeValOf(grp.members[i-1])
						if prev.Compare(idx.s.rangeValOf(ref)) >= 0 {
							t.Fatalf("trial %d: group not sorted", trial)
						}
					}
				}
			})
			if idx.NumEdges() != edges {
				t.Fatalf("trial %d: NumEdges = %d, want %d", trial, idx.NumEdges(), edges)
			}
		}
	}
}

// TestNoRangeAttrIndex covers equality-only queries: every fragment is its
// own group, the graph has no edges.
func TestNoRangeAttrIndex(t *testing.T) {
	db := fooddb.New()
	b, err := psj.Bind(psj.MustParse("SELECT name, rate FROM restaurant WHERE cuisine = $c"), db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := crawl.Reference(db, b)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := SpecFromBound(b)
	if err != nil {
		t.Fatal(err)
	}
	if spec.RangeAttr != "" {
		t.Fatalf("spec = %+v", spec)
	}
	idx, err := Build(out, spec)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumFragments() != 2 { // American, Thai
		t.Errorf("fragments = %d, want 2", idx.NumFragments())
	}
	if idx.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", idx.NumEdges())
	}
}
