package fragindex

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/crawl"
)

// BenchmarkPostingCompactionThreshold measures the posting-list compaction
// trade-off (ROADMAP "tune the serving-path knobs"): update churn through a
// LiveIndex interleaved with Postings reads of a hot keyword shared by
// every fragment, at eager (1/8), default (1/4), and lazy (1/2)
// thresholds. Each update tombstones one entry of the hot list, so the
// threshold decides between frequent O(list) compaction rewrites (eager)
// and Postings paying a filtered copy while tombstones linger (lazy) — the
// read/write mix here has reads outnumber writes 4:1, the serving shape
// the default was picked for.
func BenchmarkPostingCompactionThreshold(b *testing.B) {
	const frags = 4096
	for _, th := range []struct{ num, den int }{{1, 8}, {1, 4}, {1, 2}} {
		b.Run(fmt.Sprintf("threshold=%d-%d", th.num, th.den), func(b *testing.B) {
			idx, err := New(shardedSpec)
			if err != nil {
				b.Fatal(err)
			}
			if err := idx.SetPostingCompaction(th.num, th.den); err != nil {
				b.Fatal(err)
			}
			counts := func(i, bump int) map[string]int64 {
				return map[string]int64{
					"hot":                          int64(1 + bump%3),
					fmt.Sprintf("cold%04d", i%512): 2,
				}
			}
			for i := 0; i < frags; i++ {
				if _, err := idx.InsertFragment(synthID(i/8, i%8), counts(i, 0), 3); err != nil {
					b.Fatal(err)
				}
			}
			live := NewLive(idx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := i % frags
				_, err := live.Apply(context.Background(), crawl.Delta{Changes: []crawl.FragmentChange{{
					Op: crawl.OpUpdateFragment, ID: synthID(at/8, at%8),
					TermCounts: counts(at, i+1), TotalTerms: 3,
				}}})
				if err != nil {
					b.Fatal(err)
				}
				snap := live.Snapshot()
				for r := 0; r < 4; r++ {
					if ps := snap.Postings("hot"); len(ps) == 0 {
						b.Fatal("hot list empty")
					}
				}
				if i%1024 == 1023 {
					if _, err := live.CompactIfNeeded(context.Background(), 0.5); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
