package fragindex

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/crawl"
	"repro/internal/fragment"
	"repro/internal/relation"
)

// snapState captures everything a reader can observe about a snapshot, for
// before/after comparisons across published versions.
func snapState(s *Snapshot) map[string]any {
	out := map[string]any{
		"fragments": s.NumFragments(),
		"keywords":  s.NumKeywords(),
		"avg":       s.AvgTermsPerFragment(),
		"edges":     s.NumEdges(),
		"epoch":     s.Epoch(),
	}
	for _, kw := range s.Keywords() {
		out["df:"+kw] = s.DF(kw)
		out["idf:"+kw] = s.IDF(kw)
		out["ps:"+kw] = append([]Posting(nil), s.Postings(kw)...)
	}
	return out
}

// TestFreezeIsolatesSnapshot: after Freeze, mutations through the builder
// never change what the frozen snapshot returns, and only touched posting
// lists are physically cloned — untouched lists stay shared by pointer.
func TestFreezeIsolatesSnapshot(t *testing.T) {
	idx := fooddbIndex(t)
	frozen := idx.Freeze()
	before := snapState(frozen)

	// "coffee" appears only in (American,9); "burger" elsewhere too. The
	// update touches burger/queen/10/4.3 lists but not coffee's.
	coffeeList := frozen.list("coffee")
	burgerBefore := frozen.list("burger")

	ten := refByName(t, idx, "(American,10)")
	m, _ := idx.Meta(ten)
	if err := idx.UpdateFragment(m.ID, map[string]int64{"burger": 5, "zzz": 1}, 6); err != nil {
		t.Fatal(err)
	}
	id2 := fragment.ID{relation.String("Nordic"), relation.Int(3)}
	if _, err := idx.InsertFragment(id2, map[string]int64{"herring": 2}, 2); err != nil {
		t.Fatal(err)
	}

	if got := snapState(frozen); !reflect.DeepEqual(got, before) {
		t.Fatalf("frozen snapshot changed under builder mutations:\nbefore %v\nafter  %v", before, got)
	}
	next := idx.Freeze()
	if next == frozen {
		t.Fatal("Freeze after mutations returned the old snapshot")
	}
	if next.DF("zzz") != 1 || next.DF("herring") != 1 {
		t.Errorf("new snapshot missing mutations: zzz DF=%d herring DF=%d", next.DF("zzz"), next.DF("herring"))
	}
	if frozen.DF("zzz") != 0 || frozen.Has(id2) {
		t.Error("old snapshot observed the mutations")
	}
	// Structural sharing: the untouched list is the same object in both
	// versions; the touched one is not.
	if next.list("coffee") != coffeeList {
		t.Error("untouched posting list was cloned")
	}
	if next.list("burger") == burgerBefore {
		t.Error("touched posting list is shared with the frozen snapshot")
	}
}

// liveFooddb builds a fooddb LiveIndex.
func liveFooddb(t *testing.T) *LiveIndex {
	t.Helper()
	return NewLive(fooddbIndex(t))
}

func updateDelta(id fragment.ID, counts map[string]int64, total int64) crawl.Delta {
	return crawl.Delta{Changes: []crawl.FragmentChange{{
		Op: crawl.OpUpdateFragment, ID: id, TermCounts: counts, TotalTerms: total,
	}}}
}

// TestLiveApplyPublishesAtomically: Apply swaps in a new version with the
// delta folded in; snapshots resolved before the swap are untouched.
func TestLiveApplyPublishesAtomically(t *testing.T) {
	l := liveFooddb(t)
	s0 := l.Snapshot()
	before := snapState(s0)

	id := fragment.ID{relation.String("American"), relation.Int(10)}
	st, err := l.Apply(context.Background(), updateDelta(id, map[string]int64{"burger": 1, "espresso": 4}, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st.Updated != 1 || st.Inserted != 0 || st.Removed != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.ClonedLists == 0 || st.ClonedShards == 0 {
		t.Errorf("expected copy-on-write clones, got %+v", st)
	}
	s1 := l.Snapshot()
	if s1 == s0 {
		t.Fatal("Apply did not publish a new snapshot")
	}
	if s1.DF("espresso") != 1 {
		t.Errorf("new snapshot espresso DF = %d, want 1", s1.DF("espresso"))
	}
	if got := snapState(s0); !reflect.DeepEqual(got, before) {
		t.Error("pre-apply snapshot changed")
	}
	stats := l.Stats()
	if stats.DeltasApplied != 1 || stats.Updated != 1 || stats.Epoch != s1.Epoch() {
		t.Errorf("live stats = %+v", stats)
	}
}

// TestLiveApplyTransactional: a delta failing mid-batch publishes nothing —
// the serving snapshot, the builder, and the counters are exactly as
// before the call.
func TestLiveApplyTransactional(t *testing.T) {
	l := liveFooddb(t)
	s0 := l.Snapshot()
	before := snapState(s0)

	d := crawl.Delta{Changes: []crawl.FragmentChange{
		{Op: crawl.OpInsertFragment, ID: fragment.ID{relation.String("Nordic"), relation.Int(1)},
			TermCounts: map[string]int64{"herring": 1}, TotalTerms: 1},
		// Fails: fragment does not exist.
		{Op: crawl.OpRemoveFragment, ID: fragment.ID{relation.String("Klingon"), relation.Int(7)}},
	}}
	if _, err := l.Apply(context.Background(), d); !errors.Is(err, ErrNoFragment) {
		t.Fatalf("err = %v, want ErrNoFragment", err)
	}
	if l.Snapshot() != s0 {
		t.Fatal("failed Apply published a snapshot")
	}
	if got := snapState(s0); !reflect.DeepEqual(got, before) {
		t.Error("failed Apply changed the serving snapshot")
	}
	if st := l.Stats(); st.DeltasApplied != 0 || st.Inserted != 0 {
		t.Errorf("failed Apply counted: %+v", st)
	}
	// The builder rolled back too: the half-applied insert is gone, and a
	// following good delta applies cleanly on the published state.
	st, err := l.Apply(context.Background(), updateDelta(fragment.ID{relation.String("Thai"), relation.Int(10)},
		map[string]int64{"thai": 2}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Updated != 1 {
		t.Errorf("post-rollback apply stats = %+v", st)
	}
	if l.Snapshot().Has(fragment.ID{relation.String("Nordic"), relation.Int(1)}) {
		t.Error("rolled-back insert leaked into a later snapshot")
	}
}

// TestLiveDeltaSpecMismatch: deltas over the wrong selection attributes are
// rejected before touching anything.
func TestLiveDeltaSpecMismatch(t *testing.T) {
	l := liveFooddb(t)
	d := crawl.Delta{SelAttrs: []string{"wrong", "attrs"}}
	if _, err := l.Apply(context.Background(), d); !errors.Is(err, ErrDeltaSpec) {
		t.Errorf("err = %v, want ErrDeltaSpec", err)
	}
}

// TestLiveCompactIfNeeded: once removals tombstone enough of the ref
// space, the GC publishes a compacted, renumbered snapshot; earlier
// snapshots keep serving their own contents.
func TestLiveCompactIfNeeded(t *testing.T) {
	spec := Spec{SelAttrs: []string{"g", "v"}, EqAttrs: []string{"g"}, RangeAttr: "v"}
	idx, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		id := fragment.ID{relation.String("g"), relation.Int(int64(i))}
		if _, err := idx.InsertFragment(id, map[string]int64{fmt.Sprintf("w%d", i): 1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	l := NewLive(idx)
	if ran, _ := l.CompactIfNeeded(context.Background(), 0.5); ran {
		t.Fatal("compacted with zero tombstones")
	}
	var removes []crawl.FragmentChange
	for i := 0; i < n/2; i++ {
		removes = append(removes, crawl.FragmentChange{
			Op: crawl.OpRemoveFragment,
			ID: fragment.ID{relation.String("g"), relation.Int(int64(i))},
		})
	}
	if _, err := l.Apply(context.Background(), crawl.Delta{Changes: removes}); err != nil {
		t.Fatal(err)
	}
	tombstoned := l.Snapshot()
	if got := tombstoned.NumRefs() - tombstoned.NumFragments(); got != n/2 {
		t.Fatalf("tombstoned refs = %d, want %d", got, n/2)
	}
	epochBefore := tombstoned.Epoch()
	ran, err := l.CompactIfNeeded(context.Background(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("compaction did not run at 50% tombstones")
	}
	s := l.Snapshot()
	if s.NumRefs() != n/2 || s.NumFragments() != n/2 {
		t.Errorf("compacted refs/fragments = %d/%d, want %d/%d", s.NumRefs(), s.NumFragments(), n/2, n/2)
	}
	if s.Epoch() <= epochBefore {
		t.Errorf("epoch went backwards: %d -> %d", epochBefore, s.Epoch())
	}
	if tombstoned.NumRefs() != n {
		t.Error("pre-compaction snapshot was disturbed")
	}
	if st := l.Stats(); st.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", st.Compactions)
	}
	// Still serving the right content.
	for i := n / 2; i < n; i++ {
		if !s.Has(fragment.ID{relation.String("g"), relation.Int(int64(i))}) {
			t.Errorf("compacted snapshot lost fragment %d", i)
		}
	}
}

// TestLiveConcurrentReadersAndWriter hammers the raw LiveIndex read path
// from many goroutines while a writer applies deltas and compactions (run
// under -race in CI): every read must see internally consistent state —
// DF agreeing with Postings, counters agreeing with the keyword set.
func TestLiveConcurrentReadersAndWriter(t *testing.T) {
	l := liveFooddb(t)
	const readers = 16
	const writes = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers)

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := l.Snapshot()
				for _, kw := range s.Keywords() {
					ps := s.Postings(kw)
					if len(ps) != s.DF(kw) {
						errc <- fmt.Errorf("%q: %d postings vs DF %d on one snapshot", kw, len(ps), s.DF(kw))
						return
					}
					for _, p := range ps {
						if !s.AliveRef(p.Frag) {
							errc <- fmt.Errorf("%q: dead ref %d in postings", kw, p.Frag)
							return
						}
						if _, _, err := s.GroupMembers(p.Frag); err != nil {
							errc <- err
							return
						}
					}
				}
			}
		}()
	}

	id := fragment.ID{relation.String("American"), relation.Int(10)}
	extra := fragment.ID{relation.String("Fusion"), relation.Int(42)}
	for i := 0; i < writes; i++ {
		kw := fmt.Sprintf("special%d", i%7)
		if _, err := l.Apply(context.Background(), updateDelta(id, map[string]int64{"burger": 2, kw: 1}, 3)); err != nil {
			t.Fatal(err)
		}
		switch i % 4 {
		case 0:
			d := crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: crawl.OpInsertFragment, ID: extra,
				TermCounts: map[string]int64{"fusion": 1}, TotalTerms: 1,
			}}}
			if _, err := l.Apply(context.Background(), d); err != nil {
				t.Fatal(err)
			}
		case 2:
			d := crawl.Delta{Changes: []crawl.FragmentChange{{
				Op: crawl.OpRemoveFragment, ID: extra,
			}}}
			if _, err := l.Apply(context.Background(), d); err != nil {
				t.Fatal(err)
			}
			if _, err := l.CompactIfNeeded(context.Background(), 0.3); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
