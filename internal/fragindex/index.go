// Package fragindex implements Dash's fragment index (paper §V–§VI): the
// inverted fragment index, which maps keywords to the fragments containing
// them sorted by term frequency, and the fragment graph, whose nodes are
// fragments weighted by their total keyword counts and whose edges connect
// fragments that can combine into a db-page with nothing in between
// (Fig. 9).
//
// Fragments whose equality attributes agree form a group; within a group
// fragments are ordered by their range-attribute value, and the graph
// connects consecutive members. The graph supports the paper's incremental
// construction (§VI-A) — inserting a fragment between two connected nodes
// splits their edge — as well as removal and replacement, which is the
// update mechanism the paper lists as future work.
//
// # Performance
//
// The query-serving read path (Postings, DF, IDF, NumKeywords,
// NumFragments, AvgTermsPerFragment, Keywords, Meta, GroupMembers) is
// designed to be O(1) or O(result) and free of whole-index rescans:
//
//   - Each posting list carries a dead-posting counter, so Postings and DF
//     never scan for tombstones on clean lists; a list is returned by
//     reference when it has no tombstones (the common case).
//   - RemoveFragment maintains the counters through a per-fragment forward
//     keyword map, and triggers CompactPostings on any list whose dead
//     ratio reaches compactDeadNum/compactDeadDen — lazy, amortized-O(1)
//     tombstone reclamation instead of the eager rescan the seed did.
//   - IDF is precomputed per list at mutation time, so query scoring does
//     no division or liveness counting.
//   - Live fragment/term/keyword counters make the Table IV statistics O(1).
//   - Keywords() is cached sorted and stamped with a mutation epoch; any
//     insert or remove invalidates it.
//
// Concurrency contract: any number of goroutines may read concurrently
// (the cached Keywords slice is swapped through an atomic pointer and
// reads never mutate the index), but mutations (InsertFragment,
// RemoveFragment, UpdateFragment, CompactPostings) require exclusive
// access — the same single-writer/multi-reader discipline as the rest of
// the repository.
package fragindex

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/crawl"
	"repro/internal/fragment"
	"repro/internal/psj"
	"repro/internal/relation"
)

// Errors returned by index construction and maintenance.
var (
	ErrMultiRange   = errors.New("fragindex: queries with more than one range attribute are not supported")
	ErrUnknownAttr  = errors.New("fragindex: selection attribute mismatch")
	ErrDupFragment  = errors.New("fragindex: fragment already present")
	ErrNoFragment   = errors.New("fragindex: no such fragment")
	ErrBadIDArity   = errors.New("fragindex: fragment identifier arity mismatch")
	ErrCorruptIndex = errors.New("fragindex: corrupt serialized index")
)

// FragRef identifies a fragment within one Index. Refs are stable for the
// index's lifetime; removed fragments leave tombstones until Compact.
type FragRef int32

// Posting is one inverted-list entry.
type Posting struct {
	Frag FragRef
	TF   int64
}

// Meta is a fragment's indexed summary: its identifier and total keyword
// count (the node weight in the fragment graph).
type Meta struct {
	ID    fragment.ID
	Terms int64
	Alive bool
}

// postingList is one keyword's inverted list plus its maintenance state:
// how many entries are tombstones of removed fragments, and the
// precomputed IDF (1/liveDF) the search engine reads per query.
type postingList struct {
	ps   []Posting // TF-descending; may contain up to `dead` tombstones
	dead int       // tombstoned entries within ps
	idf  float64   // 1/liveDF, 0 when the list has no live postings
}

// liveDF returns the number of live postings in the list.
func (pl *postingList) liveDF() int { return len(pl.ps) - pl.dead }

// recompute refreshes the precomputed IDF after a liveness change.
func (pl *postingList) recompute() {
	if df := pl.liveDF(); df > 0 {
		pl.idf = 1 / float64(df)
	} else {
		pl.idf = 0
	}
}

// Lists whose tombstones reach compactDeadNum/compactDeadDen of their
// length are compacted on the spot; below the threshold Postings filters a
// copy. Each compaction is O(list) after Ω(list) removals, so tombstone
// reclamation is amortized O(1) per removal.
const (
	compactDeadNum = 1
	compactDeadDen = 4
)

// kwCache is the epoch-stamped sorted-keyword cache behind Keywords().
type kwCache struct {
	epoch uint64
	kws   []string
}

// Spec describes the selection-attribute structure the index is built over:
// which identifier components are equality attributes and which one (if
// any) is the range attribute.
type Spec struct {
	SelAttrs  []string
	EqAttrs   []string
	RangeAttr string // "" when the query has no range attribute
}

// SpecFromBound derives a Spec from a bound query. Dash's fragment graph
// assumes at most one range attribute (all the paper's application queries
// have exactly one); more are rejected.
func SpecFromBound(b *psj.Bound) (Spec, error) {
	ranges := b.RangeAttrCols()
	if len(ranges) > 1 {
		return Spec{}, fmt.Errorf("%w: %v", ErrMultiRange, ranges)
	}
	s := Spec{
		SelAttrs: append([]string(nil), b.SelAttrs...),
		EqAttrs:  append([]string(nil), b.EqAttrCols()...),
	}
	if len(ranges) == 1 {
		s.RangeAttr = ranges[0]
	}
	return s, nil
}

// eqIdx and rangeIdx locate attribute positions within fragment IDs.
func (s Spec) indices() (eqIdx []int, rangeIdx int, err error) {
	rangeIdx = -1
	pos := make(map[string]int, len(s.SelAttrs))
	for i, a := range s.SelAttrs {
		pos[a] = i
	}
	for _, a := range s.EqAttrs {
		i, ok := pos[a]
		if !ok {
			return nil, 0, fmt.Errorf("%w: equality attribute %s", ErrUnknownAttr, a)
		}
		eqIdx = append(eqIdx, i)
	}
	if s.RangeAttr != "" {
		i, ok := pos[s.RangeAttr]
		if !ok {
			return nil, 0, fmt.Errorf("%w: range attribute %s", ErrUnknownAttr, s.RangeAttr)
		}
		rangeIdx = i
	}
	return eqIdx, rangeIdx, nil
}

// group is one equality-value class: its members sorted by range value form
// a path in the fragment graph.
type group struct {
	eqVals  []relation.Value
	members []FragRef // sorted ascending by range value
}

// Index is the fragment index: inverted fragment index + fragment graph.
type Index struct {
	spec     Spec
	eqIdx    []int
	rangeIdx int

	frags    []Meta
	byKey    map[string]FragRef
	inverted map[string]*postingList
	kwOf     [][]string // per FragRef: distinct keywords it appears in

	groups   map[string]*group
	groupOf  []*group // per FragRef: its group, so lookups skip key building
	memberAt []int    // per FragRef: position within its group (-1 when dead)

	// Live counters: maintained on insert/remove so the Table IV stats
	// (NumFragments, AvgTermsPerFragment, NumKeywords) are O(1).
	liveFrags int
	liveTerms int64
	liveKws   int

	// epoch counts mutations; kwCache holds the sorted Keywords() slice
	// built at a given epoch (atomic so concurrent readers may refresh it).
	epoch   uint64
	kwCache atomic.Pointer[kwCache]
}

// New creates an empty index for incremental construction.
func New(spec Spec) (*Index, error) {
	eqIdx, rangeIdx, err := spec.indices()
	if err != nil {
		return nil, err
	}
	return &Index{
		spec:     spec,
		eqIdx:    eqIdx,
		rangeIdx: rangeIdx,
		byKey:    make(map[string]FragRef),
		inverted: make(map[string]*postingList),
		groups:   make(map[string]*group),
	}, nil
}

// Build constructs the index from a crawl output in one pass: fragments are
// pre-sorted by identifier (the paper's §VI-A optimization), grouped, and
// the crawl's already-sorted posting lists are adopted directly.
func Build(out *crawl.Output, spec Spec) (*Index, error) {
	if len(spec.SelAttrs) != len(out.SelAttrs) {
		return nil, fmt.Errorf("%w: spec has %v, crawl output has %v",
			ErrUnknownAttr, spec.SelAttrs, out.SelAttrs)
	}
	idx, err := New(spec)
	if err != nil {
		return nil, err
	}
	ids, err := out.Fragments() // sorted by identifier
	if err != nil {
		return nil, err
	}
	idx.frags = make([]Meta, 0, len(ids))
	idx.memberAt = make([]int, 0, len(ids))
	idx.kwOf = make([][]string, len(ids))
	for _, id := range ids {
		key := id.Key()
		ref := FragRef(len(idx.frags))
		terms := out.FragmentTerms[key]
		idx.frags = append(idx.frags, Meta{ID: id, Terms: terms, Alive: true})
		idx.byKey[key] = ref
		idx.memberAt = append(idx.memberAt, 0)
		idx.liveTerms += terms
	}
	idx.liveFrags = len(idx.frags)
	// Identifier order sorts by equality values first, then range value,
	// so each group's members arrive already ordered.
	idx.groupOf = make([]*group, len(idx.frags))
	for ref := range idx.frags {
		g := idx.groupFor(idx.frags[ref].ID, true)
		idx.memberAt[ref] = len(g.members)
		idx.groupOf[ref] = g
		g.members = append(g.members, FragRef(ref))
	}
	for kw, ps := range out.Inverted {
		list := make([]Posting, 0, len(ps))
		for _, p := range ps {
			ref, ok := idx.byKey[p.FragKey]
			if !ok {
				return nil, fmt.Errorf("%w: posting for unknown fragment", ErrNoFragment)
			}
			list = append(list, Posting{Frag: ref, TF: p.TF})
			idx.kwOf[ref] = append(idx.kwOf[ref], kw)
		}
		if len(list) == 0 {
			continue
		}
		pl := &postingList{ps: list}
		pl.recompute()
		idx.inverted[kw] = pl
		idx.liveKws++
	}
	return idx, nil
}

// groupFor locates (optionally creating) the group of an identifier.
func (idx *Index) groupFor(id fragment.ID, create bool) *group {
	eq := make([]relation.Value, len(idx.eqIdx))
	for i, j := range idx.eqIdx {
		eq[i] = id[j]
	}
	key := relation.Key(eq)
	g, ok := idx.groups[key]
	if !ok && create {
		g = &group{eqVals: eq}
		idx.groups[key] = g
	}
	return g
}

// Spec returns the index's selection-attribute structure.
func (idx *Index) Spec() Spec { return idx.spec }

// NumFragments returns the number of live fragments (O(1): maintained as a
// counter on insert/remove).
func (idx *Index) NumFragments() int { return idx.liveFrags }

// NumKeywords returns the number of distinct indexed keywords with at
// least one live posting (O(1): maintained as a counter).
func (idx *Index) NumKeywords() int { return idx.liveKws }

// AvgTermsPerFragment reports the average keyword count over live fragments
// (Table IV's third column). O(1): live term and fragment totals are
// maintained as counters.
func (idx *Index) AvgTermsPerFragment() float64 {
	if idx.liveFrags == 0 {
		return 0
	}
	return float64(idx.liveTerms) / float64(idx.liveFrags)
}

// Meta returns a fragment's summary.
func (idx *Index) Meta(ref FragRef) (Meta, error) {
	if int(ref) < 0 || int(ref) >= len(idx.frags) {
		return Meta{}, fmt.Errorf("%w: ref %d", ErrNoFragment, ref)
	}
	return idx.frags[ref], nil
}

// NumRefs returns the size of the ref space (live fragments plus
// tombstones): every FragRef handed out by this index is in [0, NumRefs).
// Callers that validate refs once against it may then use the unchecked
// accessors TermsOf and AliveRef on the hot path.
func (idx *Index) NumRefs() int { return len(idx.frags) }

// TermsOf returns a fragment's total keyword count without bounds
// checking. The caller must have validated ref (see NumRefs); index-issued
// refs — postings, group members, neighbours — are always valid.
func (idx *Index) TermsOf(ref FragRef) int64 { return idx.frags[ref].Terms }

// AliveRef reports whether ref is within range and not tombstoned.
func (idx *Index) AliveRef(ref FragRef) bool {
	return int(ref) >= 0 && int(ref) < len(idx.frags) && idx.frags[ref].Alive
}

// Lookup resolves a fragment identifier to its ref.
func (idx *Index) Lookup(id fragment.ID) (FragRef, bool) {
	ref, ok := idx.byKey[id.Key()]
	return ref, ok
}

// Postings returns the live postings of a keyword, sorted by TF descending.
// The returned slice must not be modified. Lists without tombstones — the
// common case, since RemoveFragment compacts any list whose dead ratio
// crosses the threshold — are returned by reference without scanning.
func (idx *Index) Postings(keyword string) []Posting {
	pl := idx.inverted[keyword]
	if pl == nil {
		return nil
	}
	if pl.dead == 0 {
		return pl.ps
	}
	out := make([]Posting, 0, pl.liveDF())
	for _, p := range pl.ps {
		if idx.frags[p.Frag].Alive {
			out = append(out, p)
		}
	}
	return out
}

// DF returns the document frequency of a keyword: the number of live
// fragments containing it. O(1): each list counts its own tombstones.
func (idx *Index) DF(keyword string) int {
	pl := idx.inverted[keyword]
	if pl == nil {
		return 0
	}
	return pl.liveDF()
}

// IDF returns the keyword's inverse document frequency, Dash's 1/DF
// approximation (§VI). The value is precomputed when the list mutates, so
// query scoring reads it in O(1).
func (idx *Index) IDF(keyword string) float64 {
	pl := idx.inverted[keyword]
	if pl == nil {
		return 0
	}
	return pl.idf
}

// CompactPostings drops tombstoned entries from one keyword's inverted
// list in place, reclaiming their slots. RemoveFragment calls it
// automatically once a list's dead ratio reaches the compaction threshold;
// it is exported for callers that want eager reclamation.
func (idx *Index) CompactPostings(keyword string) {
	pl := idx.inverted[keyword]
	if pl == nil || pl.dead == 0 {
		return
	}
	live := pl.ps[:0]
	for _, p := range pl.ps {
		if idx.frags[p.Frag].Alive {
			live = append(live, p)
		}
	}
	pl.ps = live
	pl.dead = 0
	if len(pl.ps) == 0 {
		delete(idx.inverted, keyword)
	}
}

// Keywords returns all keywords with at least one live posting, sorted; the
// benchmark harness uses it to pick hot/warm/cold terms. The sorted slice
// is cached and invalidated by any mutation (epoch-stamped); it must not
// be modified by the caller.
func (idx *Index) Keywords() []string {
	if c := idx.kwCache.Load(); c != nil && c.epoch == idx.epoch {
		return c.kws
	}
	out := make([]string, 0, len(idx.inverted))
	for kw, pl := range idx.inverted {
		if pl.liveDF() > 0 {
			out = append(out, kw)
		}
	}
	sort.Strings(out)
	idx.kwCache.Store(&kwCache{epoch: idx.epoch, kws: out})
	return out
}

// EqValues returns a fragment's equality-attribute values keyed by column.
func (idx *Index) EqValues(ref FragRef) (map[string]relation.Value, error) {
	m, err := idx.Meta(ref)
	if err != nil {
		return nil, err
	}
	out := make(map[string]relation.Value, len(idx.eqIdx))
	for i, j := range idx.eqIdx {
		out[idx.spec.EqAttrs[i]] = m.ID[j]
	}
	return out, nil
}

// RangeValue returns a fragment's range-attribute value (NULL when the
// query has no range attribute).
func (idx *Index) RangeValue(ref FragRef) (relation.Value, error) {
	m, err := idx.Meta(ref)
	if err != nil {
		return relation.Value{}, err
	}
	if idx.rangeIdx < 0 {
		return relation.Null(), nil
	}
	return m.ID[idx.rangeIdx], nil
}

// rangeValOf is RangeValue without bounds checks, for internal use.
func (idx *Index) rangeValOf(ref FragRef) relation.Value {
	if idx.rangeIdx < 0 {
		return relation.Null()
	}
	return idx.frags[ref].ID[idx.rangeIdx]
}
